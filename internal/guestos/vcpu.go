// Package guestos models the guest operating system's thread scheduler on a
// single VCPU: round-robin dispatch, wakeup preemption after a minimum
// granularity, and voluntary/involuntary context-switch accounting.
//
// This substrate exists for the Figure 14 result: with a fast local backend
// (Elvis + ramdisk), I/O completions wake threads while others are still
// computing, and the guest suffers involuntary context switches "two orders
// of magnitude" more often than under vRIO, whose extra latency naturally
// spaces completions out.
package guestos

import (
	"fmt"

	"vrio/internal/sim"
)

// VCPU is one virtual CPU running cooperating threads.
type VCPU struct {
	eng     *sim.Engine
	csCost  sim.Time
	minGran sim.Time

	current *Thread
	last    *Thread
	// runq is a head-indexed FIFO; the backing array is reused once drained
	// so steady-state scheduling does not allocate.
	runq       []*Thread
	runqHead   int
	runStart   sim.Time
	completion sim.EventID
	// scheduling is true while the scheduler itself runs a completion
	// callback; wakeups during it enqueue rather than dispatch, preserving
	// round-robin order.
	scheduling bool

	// InvoluntaryCS counts wakeup preemptions; VoluntaryCS counts switches
	// at block points. The ratio of the two is Figure 14's explanation.
	InvoluntaryCS uint64
	VoluntaryCS   uint64
	// BusyTime accumulates compute time (excluding switch overhead);
	// CSTime accumulates context-switch overhead.
	BusyTime sim.Time
	CSTime   sim.Time
}

// NewVCPU builds a VCPU. csCost is charged per context switch; minGran is
// the minimum uninterrupted run time before a wakeup may preempt.
func NewVCPU(eng *sim.Engine, csCost, minGran sim.Time) *VCPU {
	if csCost < 0 || minGran < 0 {
		panic("guestos: negative scheduler parameter")
	}
	return &VCPU{eng: eng, csCost: csCost, minGran: minGran}
}

type threadState int

const (
	stateBlocked threadState = iota
	stateReady
	stateRunning
)

// Thread is one guest thread. Threads alternate between computing (Do) and
// being blocked (typically on I/O); calling Do on a blocked thread is the
// wakeup.
type Thread struct {
	vcpu      *VCPU
	name      string
	state     threadState
	remaining sim.Time
	then      func()
	// completeFn is the prebound completion callback: a VCPU has at most one
	// completion event in flight, so dispatch reuses it instead of closing
	// over the thread per dispatch.
	completeFn func()

	// Completions counts finished Do calls.
	Completions uint64
}

// Spawn creates a blocked thread.
func (v *VCPU) Spawn(name string) *Thread {
	t := &Thread{vcpu: v, name: name}
	t.completeFn = func() { v.complete(t) }
	return t
}

// Name reports the thread name.
func (t *Thread) Name() string { return t.name }

// Runnable reports threads that are ready or running.
func (v *VCPU) Runnable() int {
	n := len(v.runq) - v.runqHead
	if v.current != nil {
		n++
	}
	return n
}

// Do schedules compute time for t, after which then runs (it may issue I/O
// whose completion calls Do again — that is the wakeup path). Calling Do on
// a non-blocked thread is a programming error.
func (t *Thread) Do(compute sim.Time, then func()) {
	if t.state != stateBlocked {
		panic(fmt.Sprintf("guestos: Do on %s in state %d", t.name, t.state))
	}
	if compute < 0 {
		panic("guestos: negative compute time")
	}
	v := t.vcpu
	t.remaining = compute
	t.then = then
	t.state = stateReady

	if v.current == nil {
		if v.scheduling {
			v.runq = append(v.runq, t)
		} else {
			v.dispatch(t)
		}
		return
	}
	// Wakeup preemption: if the running thread has had its minimum
	// granularity, it yields the VCPU to the waker.
	ran := v.eng.Now() - v.runStart
	if ran >= v.minGran {
		v.preempt()
		v.dispatch(t)
		return
	}
	v.runq = append(v.runq, t)
}

// preempt stops the current thread and requeues it.
func (v *VCPU) preempt() {
	cur := v.current
	ran := v.eng.Now() - v.runStart
	v.eng.Cancel(v.completion)
	cur.remaining -= ran
	if cur.remaining < 0 {
		cur.remaining = 0
	}
	v.BusyTime += ran
	cur.state = stateReady
	v.current = nil
	v.runq = append(v.runq, cur)
	v.InvoluntaryCS++
}

func (v *VCPU) dispatch(t *Thread) {
	overhead := sim.Time(0)
	if v.last != nil && v.last != t {
		overhead = v.csCost
		v.CSTime += overhead
	}
	v.current = t
	v.last = t
	t.state = stateRunning
	v.runStart = v.eng.Now() + overhead
	v.completion = v.eng.After(overhead+t.remaining, t.completeFn)
}

func (v *VCPU) complete(t *Thread) {
	v.BusyTime += t.remaining
	t.remaining = 0
	t.state = stateBlocked
	t.Completions++
	v.current = nil
	then := t.then
	t.then = nil
	if then != nil {
		v.scheduling = true
		then() // may wake threads, including t itself
		v.scheduling = false
	}
	if v.runqHead < len(v.runq) {
		next := v.runq[v.runqHead]
		v.runq[v.runqHead] = nil
		v.runqHead++
		if v.runqHead == len(v.runq) {
			v.runq = v.runq[:0]
			v.runqHead = 0
		}
		v.VoluntaryCS++
		v.dispatch(next)
	}
}

// Utilization reports busy (compute + switch) time over elapsed time.
func (v *VCPU) Utilization() float64 {
	now := v.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(v.BusyTime+v.CSTime) / float64(now)
}
