package guestos

import (
	"testing"

	"vrio/internal/sim"
)

func TestSingleThreadRuns(t *testing.T) {
	e := sim.NewEngine()
	v := NewVCPU(e, 0, 0)
	th := v.Spawn("t0")
	var doneAt sim.Time
	th.Do(100, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 100 {
		t.Errorf("done at %v, want 100", doneAt)
	}
	if th.Completions != 1 {
		t.Errorf("Completions = %d", th.Completions)
	}
	if v.BusyTime != 100 {
		t.Errorf("BusyTime = %v", v.BusyTime)
	}
}

func TestThreadLoopViaCallback(t *testing.T) {
	e := sim.NewEngine()
	v := NewVCPU(e, 0, 0)
	th := v.Spawn("loop")
	iterations := 0
	var step func()
	step = func() {
		iterations++
		if iterations < 5 {
			// Simulate I/O latency, then wake and compute again.
			e.After(50, func() { th.Do(10, step) })
		}
	}
	th.Do(10, step)
	e.Run()
	if iterations != 5 {
		t.Errorf("iterations = %d", iterations)
	}
	// 5 computes of 10 + 4 waits of 50.
	if e.Now() != 5*10+4*50 {
		t.Errorf("finished at %v", e.Now())
	}
}

func TestTwoThreadsShareVCPU(t *testing.T) {
	e := sim.NewEngine()
	v := NewVCPU(e, 0, 0)
	a, b := v.Spawn("a"), v.Spawn("b")
	var aDone, bDone sim.Time
	a.Do(100, func() { aDone = e.Now() })
	b.Do(100, func() { bDone = e.Now() })
	e.Run()
	// b wakes while a runs at t=0; a has run 0 < any minGran... with
	// minGran 0 the wakeup preempts immediately but a keeps its place in
	// the queue; total still serializes to 200.
	if aDone+bDone != 300 || e.Now() != 200 {
		t.Errorf("aDone=%v bDone=%v end=%v", aDone, bDone, e.Now())
	}
	if v.Runnable() != 0 {
		t.Errorf("Runnable = %d at end", v.Runnable())
	}
}

func TestWakeupPreemptionAfterMinGranularity(t *testing.T) {
	e := sim.NewEngine()
	v := NewVCPU(e, 0, 10)
	long := v.Spawn("long")
	short := v.Spawn("short")
	var shortDone, longDone sim.Time
	long.Do(100, func() { longDone = e.Now() })
	// Wake "short" at t=50: long has run 50 >= 10, so it is preempted.
	e.At(50, func() { short.Do(5, func() { shortDone = e.Now() }) })
	e.Run()
	if shortDone != 55 {
		t.Errorf("short done at %v, want 55 (preempted long)", shortDone)
	}
	if longDone != 105 {
		t.Errorf("long done at %v, want 105 (resumed remainder)", longDone)
	}
	if v.InvoluntaryCS != 1 {
		t.Errorf("InvoluntaryCS = %d, want 1", v.InvoluntaryCS)
	}
}

func TestNoPreemptionBeforeMinGranularity(t *testing.T) {
	e := sim.NewEngine()
	v := NewVCPU(e, 0, 1000)
	long := v.Spawn("long")
	short := v.Spawn("short")
	var shortDone sim.Time
	long.Do(100, nil)
	e.At(50, func() { short.Do(5, func() { shortDone = e.Now() }) })
	e.Run()
	if shortDone != 105 {
		t.Errorf("short done at %v, want 105 (no preemption)", shortDone)
	}
	if v.InvoluntaryCS != 0 {
		t.Errorf("InvoluntaryCS = %d, want 0", v.InvoluntaryCS)
	}
	if v.VoluntaryCS != 1 {
		t.Errorf("VoluntaryCS = %d, want 1", v.VoluntaryCS)
	}
}

func TestContextSwitchCostCharged(t *testing.T) {
	e := sim.NewEngine()
	v := NewVCPU(e, 7, 0)
	a, b := v.Spawn("a"), v.Spawn("b")
	var bDone sim.Time
	a.Do(10, nil)
	b.Do(10, func() { bDone = e.Now() })
	e.Run()
	// a runs 0..10 (preempt attempt at t=0: a has run 0 >= minGran 0 →
	// preempted immediately; but switching a->b costs 7).
	if v.CSTime == 0 {
		t.Error("no context-switch time charged")
	}
	if bDone == 20 {
		t.Error("context-switch cost did not stretch completion")
	}
}

func TestSameThreadNoSwitchCost(t *testing.T) {
	e := sim.NewEngine()
	v := NewVCPU(e, 7, 0)
	a := v.Spawn("a")
	a.Do(10, func() { a.Do(10, nil) })
	e.Run()
	if v.CSTime != 0 {
		t.Errorf("CSTime = %v for a single thread", v.CSTime)
	}
	if e.Now() != 20 {
		t.Errorf("end = %v, want 20", e.Now())
	}
}

func TestDoOnRunningThreadPanics(t *testing.T) {
	e := sim.NewEngine()
	v := NewVCPU(e, 0, 0)
	a := v.Spawn("a")
	a.Do(10, nil)
	defer func() {
		if recover() == nil {
			t.Error("Do on ready thread did not panic")
		}
	}()
	a.Do(10, nil)
}

func TestNegativeComputePanics(t *testing.T) {
	e := sim.NewEngine()
	v := NewVCPU(e, 0, 0)
	a := v.Spawn("a")
	defer func() {
		if recover() == nil {
			t.Error("negative compute did not panic")
		}
	}()
	a.Do(-1, nil)
}

func TestUtilization(t *testing.T) {
	e := sim.NewEngine()
	v := NewVCPU(e, 0, 0)
	a := v.Spawn("a")
	a.Do(50, nil)
	e.At(100, func() {})
	e.Run()
	if u := v.Utilization(); u != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", u)
	}
}

// The Figure 14 mechanism: with identical threads doing compute+I/O loops,
// a low-latency backend causes far more involuntary context switches than a
// high-latency one.
func TestFastIOCausesMoreInvoluntarySwitches(t *testing.T) {
	run := func(ioLatency sim.Time) (uint64, uint64) {
		e := sim.NewEngine()
		rng := sim.NewRNG(7)
		v := NewVCPU(e, 1500, 4000)
		const compute = 5500
		for i := 0; i < 4; i++ {
			th := v.Spawn("worker")
			var loop func()
			loop = func() {
				// Jitter both phases ±20% as a real workload would.
				wait := rng.Range(ioLatency*8/10, ioLatency*12/10)
				e.After(wait, func() {
					th.Do(rng.Range(compute*8/10, compute*12/10), loop)
				})
			}
			th.Do(rng.Range(compute*8/10, compute*12/10), loop)
		}
		e.RunUntil(50 * sim.Millisecond)
		e.Stop()
		return v.InvoluntaryCS, v.VoluntaryCS
	}
	fastInv, _ := run(8 * sim.Microsecond)   // Elvis-like local ramdisk
	slowInv, _ := run(100 * sim.Microsecond) // vRIO-like remote path
	if fastInv <= slowInv*3 {
		t.Errorf("fast backend should cause far more involuntary switches: fast=%d slow=%d",
			fastInv, slowInv)
	}
}
