package link

import (
	"strings"
	"testing"

	"vrio/internal/ethernet"
	"vrio/internal/sim"
)

// validSpec is a buildable 2-rack fabric the error cases mutate.
func validSpec() FabricSpec {
	return FabricSpec{
		Tors:             []TorSpec{{ID: 0, Hosts: 4, Uplinks: 2}, {ID: 1, Hosts: 4, Uplinks: 2}},
		Spines:           2,
		Oversubscription: 4,
		DownlinkBps:      10e9,
	}
}

func TestFabricSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*FabricSpec)
		wantSub string
	}{
		{"no racks", func(s *FabricSpec) { s.Tors = nil }, "no ToR"},
		{"no spines", func(s *FabricSpec) { s.Spines = 0 }, "spine"},
		{"zero oversubscription", func(s *FabricSpec) { s.Oversubscription = 0 }, "oversubscription"},
		{"negative oversubscription", func(s *FabricSpec) { s.Oversubscription = -2 }, "oversubscription"},
		{"zero downlink", func(s *FabricSpec) { s.DownlinkBps = 0 }, "downlink"},
		{"duplicate ToR id", func(s *FabricSpec) { s.Tors[1].ID = 0 }, "duplicate ToR id 0"},
		{"no host ports", func(s *FabricSpec) { s.Tors[0].Hosts = 0 }, "host ports"},
		{"disconnected rack", func(s *FabricSpec) { s.Tors[1].Uplinks = 0 }, "disconnected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(&s)
			err := s.Validate() // must return an error, never panic
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestFabricSpecUplinkBps(t *testing.T) {
	s := validSpec() // 4 hosts x 10G, 4:1 oversub, 2 uplinks
	got := s.UplinkBps(s.Tors[0])
	want := 4 * 10e9 / (4.0 * 2.0) // 5 Gb/s per uplink
	if got != want {
		t.Fatalf("UplinkBps = %g, want %g", got, want)
	}
	s.Oversubscription = 1 // non-blocking: uplinks collectively match downlinks
	if got := s.UplinkBps(s.Tors[0]) * 2; got != 4*10e9 {
		t.Fatalf("non-blocking uplink capacity = %g, want %g", got, 4*10e9)
	}
}

// miniFabric is a hand-built 2-rack, 1-spine fabric on one engine: one host
// per rack, locator mapping each host MAC to its rack.
type miniFabric struct {
	eng          *sim.Engine
	leaf0, leaf1 *Switch
	spine        *Switch
	mac0, mac1   ethernet.MAC
	hc0, hc1     *Duplex // host cables (host owns the A side)
	got0, got1   [][]byte
}

func buildMiniFabric(t *testing.T) *miniFabric {
	t.Helper()
	m := &miniFabric{
		eng:  sim.NewEngine(),
		mac0: ethernet.NewMAC(100),
		mac1: ethernet.NewMAC(200),
	}
	m.leaf0 = NewSwitch(m.eng, 10)
	m.leaf1 = NewSwitch(m.eng, 10)
	m.spine = NewSwitch(m.eng, 10)
	locate := func(mac ethernet.MAC) (int, bool) {
		switch mac {
		case m.mac0:
			return 0, true
		case m.mac1:
			return 1, true
		}
		return 0, false
	}
	m.leaf0.SetLocator(0, locate)
	m.leaf1.SetLocator(1, locate)
	m.spine.SetLocator(-1, locate)

	m.hc0 = NewDuplex(m.eng, 10e9, 100)
	m.leaf0.AttachPort(m.hc0)
	m.hc0.BtoA.SetReceiver(ReceiverFunc(func(f []byte) { m.got0 = append(m.got0, f) }))
	m.hc1 = NewDuplex(m.eng, 10e9, 100)
	m.leaf1.AttachPort(m.hc1)
	m.hc1.BtoA.SetReceiver(ReceiverFunc(func(f []byte) { m.got1 = append(m.got1, f) }))

	// One uplink per leaf: the leaf owns the A side, the spine the B side.
	up0 := NewDuplex(m.eng, 10e9, 500)
	m.leaf0.AttachUplink(up0)
	m.spine.SetRackPort(0, m.spine.AttachPort(up0))
	up1 := NewDuplex(m.eng, 10e9, 500)
	m.leaf1.AttachUplink(up1)
	m.spine.SetRackPort(1, m.spine.AttachPort(up1))
	return m
}

func TestFabricUnicastCrossRack(t *testing.T) {
	m := buildMiniFabric(t)
	m.hc0.AtoB.Send(frameBytes(t, m.mac0, m.mac1, "cross-rack"))
	m.eng.Run()
	if len(m.got1) != 1 {
		t.Fatalf("host1 received %d frames, want 1", len(m.got1))
	}
	if len(m.got0) != 0 {
		t.Fatalf("host0 received its own frame back")
	}
	if m.leaf0.Forwarded != 1 || m.spine.Forwarded != 1 {
		t.Fatalf("leaf0 forwarded %d, spine forwarded %d; want 1 and 1",
			m.leaf0.Forwarded, m.spine.Forwarded)
	}
	// leaf1 has never seen mac1 transmit, so the last hop floods its hosts
	// (split horizon keeps it off the uplink).
	if m.leaf1.Flooded != 1 {
		t.Fatalf("leaf1 flooded %d, want 1", m.leaf1.Flooded)
	}
	// The reply takes the learned path end to end.
	m.got0, m.got1 = nil, nil
	m.hc1.AtoB.Send(frameBytes(t, m.mac1, m.mac0, "reply"))
	m.eng.Run()
	if len(m.got0) != 1 || len(m.got1) != 0 {
		t.Fatalf("reply: host0 got %d, host1 got %d; want 1 and 0", len(m.got0), len(m.got1))
	}
	if total := m.leaf0.Drops.Total() + m.leaf1.Drops.Total() + m.spine.Drops.Total(); total != 0 {
		t.Fatalf("fabric dropped %d frames", total)
	}
}

func TestFabricUnicastIntraRack(t *testing.T) {
	// A second host in rack 0: local traffic must never touch the uplink.
	m := buildMiniFabric(t)
	mac2 := ethernet.NewMAC(300)
	hc2 := NewDuplex(m.eng, 10e9, 100)
	m.leaf0.AttachPort(hc2)
	var got2 [][]byte
	hc2.BtoA.SetReceiver(ReceiverFunc(func(f []byte) { got2 = append(got2, f) }))

	// mac2 is unknown to the locator: the leaf floods its host ports AND one
	// uplink (it cannot prove the destination is local).
	m.hc0.AtoB.Send(frameBytes(t, m.mac0, mac2, "unknown"))
	m.eng.Run()
	if len(got2) != 1 {
		t.Fatalf("host2 received %d frames, want 1", len(got2))
	}
	// Once mac2 replies, the leaf has learned it and keeps traffic local.
	spineSeen := m.spine.Forwarded + m.spine.Flooded + m.spine.Drops.Total()
	got2 = nil
	hc2.AtoB.Send(frameBytes(t, mac2, m.mac0, "learn me"))
	m.hc0.AtoB.Send(frameBytes(t, m.mac0, mac2, "local now"))
	m.eng.Run()
	if len(got2) != 1 || len(m.got0) != 1 {
		t.Fatalf("local exchange: host2 got %d, host0 got %d; want 1 and 1", len(got2), len(m.got0))
	}
	afterSpine := m.spine.Forwarded + m.spine.Flooded + m.spine.Drops.Total()
	if afterSpine != spineSeen {
		t.Fatalf("learned local traffic reached the spine (%d -> %d events)", spineSeen, afterSpine)
	}
}

func TestFabricBroadcastReachesEveryHostOnce(t *testing.T) {
	m := buildMiniFabric(t)
	m.hc0.AtoB.Send(frameBytes(t, m.mac0, ethernet.Broadcast, "hello all"))
	m.eng.Run()
	if len(m.got0) != 0 {
		t.Fatalf("broadcast echoed to its sender (%d copies)", len(m.got0))
	}
	if len(m.got1) != 1 {
		t.Fatalf("host1 received %d broadcast copies, want exactly 1", len(m.got1))
	}
}

func TestFabricSplitHorizonAndNoRoute(t *testing.T) {
	// A leaf with a locator but no uplinks: remote traffic has no route.
	eng := sim.NewEngine()
	leaf := NewSwitch(eng, 10)
	mac0, mac1 := ethernet.NewMAC(1), ethernet.NewMAC(2)
	leaf.SetLocator(0, func(mac ethernet.MAC) (int, bool) {
		if mac == mac1 {
			return 1, true // remote rack
		}
		return 0, mac == mac0
	})
	hc := NewDuplex(eng, 10e9, 100)
	leaf.AttachPort(hc)
	hc.AtoB.Send(frameBytes(t, mac0, mac1, "nowhere to go"))
	eng.Run()
	if got := leaf.Drops.Get(DropNoRoute); got != 1 {
		t.Fatalf("DropNoRoute = %d, want 1", got)
	}

	// A spine with no port registered for the destination rack drops too.
	spine := NewSwitch(eng, 10)
	spine.SetLocator(-1, func(mac ethernet.MAC) (int, bool) { return 7, mac == mac1 })
	spine.SetRackPort(0, spine.AttachPort(NewDuplex(eng, 10e9, 100)))
	in := NewDuplex(eng, 10e9, 100)
	spine.SetRackPort(3, spine.AttachPort(in))
	in.AtoB.Send(frameBytes(t, mac0, mac1, "rack 7 is not cabled"))
	eng.Run()
	if got := spine.Drops.Get(DropNoRoute); got != 1 {
		t.Fatalf("spine DropNoRoute = %d, want 1", got)
	}
}

func TestWireRemotePath(t *testing.T) {
	eng := sim.NewEngine()
	var postedAt sim.Time
	var posted []byte
	var received []byte
	w := NewWire(eng, 8e9, 100, ReceiverFunc(func(f []byte) { received = f }))
	w.SetRemote(func(at sim.Time, frame []byte) {
		postedAt, posted = at, frame
	})
	frame := frameBytes(t, ethernet.NewMAC(1), ethernet.NewMAC(2), "over the boundary")
	wireTime := sim.Time(float64((len(frame)+24)*8) / 8e9 * float64(sim.Second))
	w.Send(frame)
	eng.Run()
	if posted == nil {
		t.Fatal("remote hook never ran")
	}
	if want := wireTime + 100; postedAt != want {
		t.Fatalf("posted delivery time %v, want %v", postedAt, want)
	}
	// The posted frame is a private copy: mutating the original must not
	// leak across the shard boundary.
	orig := append([]byte(nil), frame...)
	frame[0] ^= 0xff
	if string(posted) != string(orig) {
		t.Fatal("remote hook received an aliased (not copied) frame")
	}
	if w.Delivered != 1 {
		t.Fatalf("Delivered = %d, want 1 (counted at post time)", w.Delivered)
	}
	// The destination half: RemoteDeliver hands to the receiver untouched.
	w.RemoteDeliver(posted)
	if string(received) != string(orig) {
		t.Fatal("RemoteDeliver did not hand the frame to the receiver")
	}
}
