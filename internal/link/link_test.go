package link

import (
	"testing"

	"vrio/internal/ethernet"
	"vrio/internal/sim"
)

func TestWireDeliversWithLatencyAndSerialization(t *testing.T) {
	e := sim.NewEngine()
	var arrived sim.Time
	w := NewWire(e, 8e9, 100, ReceiverFunc(func(frame []byte) { arrived = e.Now() })) // 1 byte/ns
	w.Send(make([]byte, 976))                                                         // +24 overhead = 1000 bytes = 1000ns
	e.Run()
	if arrived != 1100 {
		t.Errorf("arrived at %v, want 1100 (1000 serialization + 100 latency)", arrived)
	}
	if w.Frames != 1 || w.Bytes != 976 {
		t.Errorf("Frames=%d Bytes=%d", w.Frames, w.Bytes)
	}
}

func TestWireSerializesBackToBack(t *testing.T) {
	e := sim.NewEngine()
	var arrivals []sim.Time
	w := NewWire(e, 8e9, 0, ReceiverFunc(func([]byte) { arrivals = append(arrivals, e.Now()) }))
	// Two frames sent at t=0: second must wait for the first's serialization.
	w.Send(make([]byte, 976))
	w.Send(make([]byte, 976))
	e.Run()
	if len(arrivals) != 2 || arrivals[0] != 1000 || arrivals[1] != 2000 {
		t.Errorf("arrivals = %v, want [1000 2000]", arrivals)
	}
}

func TestWireBandwidthMatters(t *testing.T) {
	e := sim.NewEngine()
	var slow, fast sim.Time
	w10 := NewWire(e, 10e9, 0, ReceiverFunc(func([]byte) { slow = e.Now() }))
	w40 := NewWire(e, 40e9, 0, ReceiverFunc(func([]byte) { fast = e.Now() }))
	frame := make([]byte, 9976) // 10000 wire bytes
	w10.Send(frame)
	w40.Send(frame)
	e.Run()
	if slow != 4*fast {
		t.Errorf("10G took %v, 40G took %v; want exactly 4x", slow, fast)
	}
}

func TestWireValidation(t *testing.T) {
	e := sim.NewEngine()
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { NewWire(e, 0, 0, nil) })
	mustPanic(func() { NewWire(e, 1e9, -1, nil) })
}

func TestWireUtilization(t *testing.T) {
	e := sim.NewEngine()
	w := NewWire(e, 8e9, 0, ReceiverFunc(func([]byte) {}))
	w.Send(make([]byte, 976)) // 1000ns serialization at 1B/ns
	e.At(2000, func() {})
	e.Run()
	// 976 bytes carried in 2000ns on an 8Gbps wire: 976*8/2000e-9/8e9.
	want := float64(976*8) / (2000e-9) / 8e9
	if got := w.Utilization(); got < want*0.99 || got > want*1.01 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}

func frameBytes(t *testing.T, src, dst ethernet.MAC, payload string) []byte {
	t.Helper()
	f := ethernet.Frame{Dst: dst, Src: src, EtherType: ethernet.EtherTypePlain, Payload: []byte(payload)}
	b, err := f.Encode(0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// endpoint collects frames for switch tests.
type endpoint struct {
	mac    ethernet.MAC
	cable  *Duplex
	frames []string
}

func attachEndpoint(t *testing.T, e *sim.Engine, sw *Switch, node uint32) *endpoint {
	t.Helper()
	ep := &endpoint{mac: ethernet.NewMAC(node)}
	ep.cable = NewDuplex(e, 10e9, 10)
	sw.AttachPort(ep.cable)
	ep.cable.BtoA.SetReceiver(ReceiverFunc(func(frame []byte) {
		f, err := ethernet.Decode(frame)
		if err != nil {
			t.Errorf("endpoint decode: %v", err)
			return
		}
		ep.frames = append(ep.frames, string(f.Payload))
	}))
	return ep
}

func TestSwitchLearnsAndForwards(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, 50)
	a := attachEndpoint(t, e, sw, 1)
	b := attachEndpoint(t, e, sw, 2)
	c := attachEndpoint(t, e, sw, 3)

	// First frame to an unknown MAC floods.
	a.cable.AtoB.Send(frameBytes(t, a.mac, b.mac, "hello"))
	e.Run()
	if len(b.frames) != 1 || b.frames[0] != "hello" {
		t.Errorf("b got %v", b.frames)
	}
	if len(c.frames) != 1 {
		t.Errorf("first frame should flood to c too, got %v", c.frames)
	}
	if sw.Flooded != 1 {
		t.Errorf("Flooded = %d, want 1", sw.Flooded)
	}

	// b replies; switch has learned a's port, so c sees nothing new.
	b.cable.AtoB.Send(frameBytes(t, b.mac, a.mac, "re:hello"))
	e.Run()
	if len(a.frames) != 1 || a.frames[0] != "re:hello" {
		t.Errorf("a got %v", a.frames)
	}
	if len(c.frames) != 1 {
		t.Errorf("reply leaked to c: %v", c.frames)
	}
	if sw.Forwarded != 1 {
		t.Errorf("Forwarded = %d, want 1", sw.Forwarded)
	}

	// Now a->b is learned: no flooding.
	a.cable.AtoB.Send(frameBytes(t, a.mac, b.mac, "again"))
	e.Run()
	if len(b.frames) != 2 {
		t.Errorf("b got %v", b.frames)
	}
	if len(c.frames) != 1 {
		t.Errorf("learned forward leaked to c: %v", c.frames)
	}
}

func TestSwitchBroadcast(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, 0)
	a := attachEndpoint(t, e, sw, 1)
	b := attachEndpoint(t, e, sw, 2)
	c := attachEndpoint(t, e, sw, 3)
	a.cable.AtoB.Send(frameBytes(t, a.mac, ethernet.Broadcast, "bcast"))
	e.Run()
	if len(a.frames) != 0 {
		t.Error("broadcast echoed to sender")
	}
	if len(b.frames) != 1 || len(c.frames) != 1 {
		t.Errorf("broadcast not delivered: b=%v c=%v", b.frames, c.frames)
	}
}

func TestSwitchHairpinSuppressed(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, 0)
	a := attachEndpoint(t, e, sw, 1)
	b := attachEndpoint(t, e, sw, 2)
	// Learn both ports.
	a.cable.AtoB.Send(frameBytes(t, a.mac, b.mac, "x"))
	b.cable.AtoB.Send(frameBytes(t, b.mac, a.mac, "y"))
	e.Run()
	// A frame from a addressed to a's own learned port must not come back.
	before := len(a.frames)
	a.cable.AtoB.Send(frameBytes(t, a.mac, a.mac, "self"))
	e.Run()
	if len(a.frames) != before {
		t.Error("switch hairpinned a frame back out its ingress port")
	}
}

func TestSwitchDropsRuntFrames(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, 0)
	a := attachEndpoint(t, e, sw, 1)
	b := attachEndpoint(t, e, sw, 2)
	a.cable.AtoB.Send([]byte{1, 2, 3}) // shorter than an Ethernet header
	e.Run()
	if len(b.frames) != 0 {
		t.Error("runt frame forwarded")
	}
	if sw.Flooded != 0 && sw.Forwarded != 0 {
		t.Error("runt frame counted")
	}
	if got := sw.Drops.Get(DropRunt); got != 1 {
		t.Errorf("runt drop tally = %d, want 1 — drops must never be silent", got)
	}
	if sw.Drops.Total() != 1 {
		t.Errorf("Drops.Total() = %d, want 1", sw.Drops.Total())
	}
}

// scriptedFault replays a fixed verdict sequence, for wire-level tests.
type scriptedFault struct {
	verdicts []FaultVerdict
	corrupt  func(frame []byte) // mutation applied on FaultCorrupt
	i        int
}

func (s *scriptedFault) Apply(frame []byte) FaultVerdict {
	if s.i >= len(s.verdicts) {
		return FaultVerdict{}
	}
	v := s.verdicts[s.i]
	s.i++
	if v.Action == FaultCorrupt && s.corrupt != nil {
		s.corrupt(frame)
	}
	return v
}

// TestWireFaultConservation is the accounting invariant: every frame offered
// to a faulted wire is either delivered or tallied under exactly one drop
// reason — frames in == delivered + sum(drops{reason}).
func TestWireFaultConservation(t *testing.T) {
	e := sim.NewEngine()
	delivered := 0
	w := NewWire(e, 8e9, 100, ReceiverFunc(func([]byte) { delivered++ }))
	w.SetFault(&scriptedFault{
		verdicts: []FaultVerdict{
			{},                     // clean
			{Action: FaultDrop},    // lost in flight
			{Action: FaultCorrupt}, // bit flip → FCS drop at delivery
			{Extra: 5000},          // jittered but intact
			{},                     // clean
			{Action: FaultDrop},    // lost
			{Action: FaultCorrupt}, // another flip
			{Extra: 200},           // small jitter
		},
		corrupt: func(f []byte) { f[len(f)-1] ^= 0x40 },
	})
	for i := 0; i < 8; i++ {
		w.Send(frameBytes(t, ethernet.NewMAC(1), ethernet.NewMAC(2), "payload"))
	}
	e.Run()
	if delivered != 4 {
		t.Errorf("delivered %d frames, want 4", delivered)
	}
	if w.Delivered != uint64(delivered) {
		t.Errorf("Delivered counter = %d, receiver saw %d", w.Delivered, delivered)
	}
	if got := w.Drops.Get(DropInjected); got != 2 {
		t.Errorf("injected drops = %d, want 2", got)
	}
	if got := w.Drops.Get(DropCorruptFCS); got != 2 {
		t.Errorf("corrupt-FCS drops = %d, want 2", got)
	}
	if w.Corrupted != 2 {
		t.Errorf("Corrupted = %d, want 2", w.Corrupted)
	}
	if w.Frames != w.Delivered+w.Drops.Total() {
		t.Errorf("conservation violated: %d sent != %d delivered + %d dropped",
			w.Frames, w.Delivered, w.Drops.Total())
	}
}

// TestWireFCSDetectsCorruption: a single bit flipped in flight must never
// reach the receiver — CRC32 catches all single-bit errors.
func TestWireFCSDetectsCorruption(t *testing.T) {
	e := sim.NewEngine()
	w := NewWire(e, 8e9, 0, ReceiverFunc(func([]byte) {
		t.Error("corrupt frame delivered to receiver")
	}))
	w.SetFault(&scriptedFault{
		verdicts: []FaultVerdict{{Action: FaultCorrupt}},
		corrupt:  func(f []byte) { f[0] ^= 0x01 },
	})
	w.Send(frameBytes(t, ethernet.NewMAC(1), ethernet.NewMAC(2), "x"))
	e.Run()
	if got := w.Drops.Get(DropCorruptFCS); got != 1 {
		t.Errorf("corrupt-FCS drops = %d, want 1", got)
	}
}

// TestWireJitterReorders: a jittered frame leaves the FIFO fast path, so a
// later clean frame overtakes it — delay faults produce reordering.
func TestWireJitterReorders(t *testing.T) {
	e := sim.NewEngine()
	var order []string
	w := NewWire(e, 8e9, 100, ReceiverFunc(func(frame []byte) {
		f, err := ethernet.Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, string(f.Payload))
	}))
	w.SetFault(&scriptedFault{verdicts: []FaultVerdict{{Extra: 50000}, {}}})
	w.Send(frameBytes(t, ethernet.NewMAC(1), ethernet.NewMAC(2), "first"))
	w.Send(frameBytes(t, ethernet.NewMAC(1), ethernet.NewMAC(2), "second"))
	e.Run()
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Errorf("arrival order = %v, want [second first]", order)
	}
	if w.Frames != w.Delivered+w.Drops.Total() {
		t.Errorf("conservation violated under jitter")
	}
}

// TestWireNilFaultUnchanged: detaching the injector restores the exact
// fast-path behaviour (no FCS verification, strict FIFO).
func TestWireNilFaultUnchanged(t *testing.T) {
	e := sim.NewEngine()
	delivered := 0
	w := NewWire(e, 8e9, 0, ReceiverFunc(func([]byte) { delivered++ }))
	w.SetFault(&scriptedFault{verdicts: []FaultVerdict{{Action: FaultDrop}}})
	w.Send(frameBytes(t, ethernet.NewMAC(1), ethernet.NewMAC(2), "a"))
	w.SetFault(nil)
	w.Send(frameBytes(t, ethernet.NewMAC(1), ethernet.NewMAC(2), "b"))
	e.Run()
	if delivered != 1 {
		t.Errorf("delivered %d, want 1 (first dropped, second clean)", delivered)
	}
	if w.Frames != w.Delivered+w.Drops.Total() {
		t.Errorf("conservation violated across attach/detach")
	}
}

// TestDropReasonStrings pins the metric label names.
func TestDropReasonStrings(t *testing.T) {
	want := map[DropReason]string{
		DropRunt: "runt", DropCorruptFCS: "corrupt_fcs", DropInjected: "injected",
		DropReason(99): "unknown",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("DropReason(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestSwitchLatencyAddsUp(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, 500)
	a := attachEndpoint(t, e, sw, 1)
	b := attachEndpoint(t, e, sw, 2)
	var arrival sim.Time
	b.cable.BtoA.SetReceiver(ReceiverFunc(func(frame []byte) { arrival = e.Now() }))
	a.cable.AtoB.Send(frameBytes(t, a.mac, b.mac, "t"))
	e.Run()
	// serialization (tiny) + wire 10 + switch 500 + serialization + wire 10.
	if arrival < 520 || arrival > 600 {
		t.Errorf("arrival = %v, want ≈520-600", arrival)
	}
}

// Merge folds per-carrier drop tallies into one breakdown, reason by
// reason, preserving the conservation identity across the roll-up.
func TestDropStatsMerge(t *testing.T) {
	var a, b DropStats
	a.Count(DropRunt)
	a.Count(DropInjected)
	b.Count(DropInjected)
	b.Count(DropCorruptFCS)
	b.Count(DropCorruptFCS)
	a.Merge(&b)
	if a.Get(DropRunt) != 1 || a.Get(DropInjected) != 2 || a.Get(DropCorruptFCS) != 2 {
		t.Fatalf("merged tallies wrong: %v", a)
	}
	if a.Total() != 5 {
		t.Fatalf("merged total = %d, want 5", a.Total())
	}
	if b.Total() != 3 {
		t.Fatalf("merge mutated its argument: %v", b)
	}
}
