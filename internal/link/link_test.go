package link

import (
	"testing"

	"vrio/internal/ethernet"
	"vrio/internal/sim"
)

func TestWireDeliversWithLatencyAndSerialization(t *testing.T) {
	e := sim.NewEngine()
	var arrived sim.Time
	w := NewWire(e, 8e9, 100, ReceiverFunc(func(frame []byte) { arrived = e.Now() })) // 1 byte/ns
	w.Send(make([]byte, 976))                                                         // +24 overhead = 1000 bytes = 1000ns
	e.Run()
	if arrived != 1100 {
		t.Errorf("arrived at %v, want 1100 (1000 serialization + 100 latency)", arrived)
	}
	if w.Frames != 1 || w.Bytes != 976 {
		t.Errorf("Frames=%d Bytes=%d", w.Frames, w.Bytes)
	}
}

func TestWireSerializesBackToBack(t *testing.T) {
	e := sim.NewEngine()
	var arrivals []sim.Time
	w := NewWire(e, 8e9, 0, ReceiverFunc(func([]byte) { arrivals = append(arrivals, e.Now()) }))
	// Two frames sent at t=0: second must wait for the first's serialization.
	w.Send(make([]byte, 976))
	w.Send(make([]byte, 976))
	e.Run()
	if len(arrivals) != 2 || arrivals[0] != 1000 || arrivals[1] != 2000 {
		t.Errorf("arrivals = %v, want [1000 2000]", arrivals)
	}
}

func TestWireBandwidthMatters(t *testing.T) {
	e := sim.NewEngine()
	var slow, fast sim.Time
	w10 := NewWire(e, 10e9, 0, ReceiverFunc(func([]byte) { slow = e.Now() }))
	w40 := NewWire(e, 40e9, 0, ReceiverFunc(func([]byte) { fast = e.Now() }))
	frame := make([]byte, 9976) // 10000 wire bytes
	w10.Send(frame)
	w40.Send(frame)
	e.Run()
	if slow != 4*fast {
		t.Errorf("10G took %v, 40G took %v; want exactly 4x", slow, fast)
	}
}

func TestWireValidation(t *testing.T) {
	e := sim.NewEngine()
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { NewWire(e, 0, 0, nil) })
	mustPanic(func() { NewWire(e, 1e9, -1, nil) })
}

func TestWireUtilization(t *testing.T) {
	e := sim.NewEngine()
	w := NewWire(e, 8e9, 0, ReceiverFunc(func([]byte) {}))
	w.Send(make([]byte, 976)) // 1000ns serialization at 1B/ns
	e.At(2000, func() {})
	e.Run()
	// 976 bytes carried in 2000ns on an 8Gbps wire: 976*8/2000e-9/8e9.
	want := float64(976*8) / (2000e-9) / 8e9
	if got := w.Utilization(); got < want*0.99 || got > want*1.01 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}

func frameBytes(t *testing.T, src, dst ethernet.MAC, payload string) []byte {
	t.Helper()
	f := ethernet.Frame{Dst: dst, Src: src, EtherType: ethernet.EtherTypePlain, Payload: []byte(payload)}
	b, err := f.Encode(0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// endpoint collects frames for switch tests.
type endpoint struct {
	mac    ethernet.MAC
	cable  *Duplex
	frames []string
}

func attachEndpoint(t *testing.T, e *sim.Engine, sw *Switch, node uint32) *endpoint {
	t.Helper()
	ep := &endpoint{mac: ethernet.NewMAC(node)}
	ep.cable = NewDuplex(e, 10e9, 10)
	sw.AttachPort(ep.cable)
	ep.cable.BtoA.SetReceiver(ReceiverFunc(func(frame []byte) {
		f, err := ethernet.Decode(frame)
		if err != nil {
			t.Errorf("endpoint decode: %v", err)
			return
		}
		ep.frames = append(ep.frames, string(f.Payload))
	}))
	return ep
}

func TestSwitchLearnsAndForwards(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, 50)
	a := attachEndpoint(t, e, sw, 1)
	b := attachEndpoint(t, e, sw, 2)
	c := attachEndpoint(t, e, sw, 3)

	// First frame to an unknown MAC floods.
	a.cable.AtoB.Send(frameBytes(t, a.mac, b.mac, "hello"))
	e.Run()
	if len(b.frames) != 1 || b.frames[0] != "hello" {
		t.Errorf("b got %v", b.frames)
	}
	if len(c.frames) != 1 {
		t.Errorf("first frame should flood to c too, got %v", c.frames)
	}
	if sw.Flooded != 1 {
		t.Errorf("Flooded = %d, want 1", sw.Flooded)
	}

	// b replies; switch has learned a's port, so c sees nothing new.
	b.cable.AtoB.Send(frameBytes(t, b.mac, a.mac, "re:hello"))
	e.Run()
	if len(a.frames) != 1 || a.frames[0] != "re:hello" {
		t.Errorf("a got %v", a.frames)
	}
	if len(c.frames) != 1 {
		t.Errorf("reply leaked to c: %v", c.frames)
	}
	if sw.Forwarded != 1 {
		t.Errorf("Forwarded = %d, want 1", sw.Forwarded)
	}

	// Now a->b is learned: no flooding.
	a.cable.AtoB.Send(frameBytes(t, a.mac, b.mac, "again"))
	e.Run()
	if len(b.frames) != 2 {
		t.Errorf("b got %v", b.frames)
	}
	if len(c.frames) != 1 {
		t.Errorf("learned forward leaked to c: %v", c.frames)
	}
}

func TestSwitchBroadcast(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, 0)
	a := attachEndpoint(t, e, sw, 1)
	b := attachEndpoint(t, e, sw, 2)
	c := attachEndpoint(t, e, sw, 3)
	a.cable.AtoB.Send(frameBytes(t, a.mac, ethernet.Broadcast, "bcast"))
	e.Run()
	if len(a.frames) != 0 {
		t.Error("broadcast echoed to sender")
	}
	if len(b.frames) != 1 || len(c.frames) != 1 {
		t.Errorf("broadcast not delivered: b=%v c=%v", b.frames, c.frames)
	}
}

func TestSwitchHairpinSuppressed(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, 0)
	a := attachEndpoint(t, e, sw, 1)
	b := attachEndpoint(t, e, sw, 2)
	// Learn both ports.
	a.cable.AtoB.Send(frameBytes(t, a.mac, b.mac, "x"))
	b.cable.AtoB.Send(frameBytes(t, b.mac, a.mac, "y"))
	e.Run()
	// A frame from a addressed to a's own learned port must not come back.
	before := len(a.frames)
	a.cable.AtoB.Send(frameBytes(t, a.mac, a.mac, "self"))
	e.Run()
	if len(a.frames) != before {
		t.Error("switch hairpinned a frame back out its ingress port")
	}
}

func TestSwitchDropsRuntFrames(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, 0)
	a := attachEndpoint(t, e, sw, 1)
	b := attachEndpoint(t, e, sw, 2)
	a.cable.AtoB.Send([]byte{1, 2, 3}) // shorter than an Ethernet header
	e.Run()
	if len(b.frames) != 0 {
		t.Error("runt frame forwarded")
	}
	if sw.Flooded != 0 && sw.Forwarded != 0 {
		t.Error("runt frame counted")
	}
}

func TestSwitchLatencyAddsUp(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, 500)
	a := attachEndpoint(t, e, sw, 1)
	b := attachEndpoint(t, e, sw, 2)
	var arrival sim.Time
	b.cable.BtoA.SetReceiver(ReceiverFunc(func(frame []byte) { arrival = e.Now() }))
	a.cable.AtoB.Send(frameBytes(t, a.mac, b.mac, "t"))
	e.Run()
	// serialization (tiny) + wire 10 + switch 500 + serialization + wire 10.
	if arrival < 520 || arrival > 600 {
		t.Errorf("arrival = %v, want ≈520-600", arrival)
	}
}
