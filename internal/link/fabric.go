// Fabric topology: the spec for a spine-leaf fabric and its validation.
//
// A fabric is racks of hosts under ToR (leaf) switches, every ToR cabled to
// the spine tier. Cross-rack paths are host → ToR → spine → ToR → host: each
// hop is an ordinary Wire, so path latency is the sum of the hop latencies
// and the minimum ToR↔spine wire latency is the lookahead bound a sharded
// simulation of the fabric synchronizes on (see internal/sim's ShardGroup).
//
// Oversubscription follows datacenter convention: the ratio of downlink
// capacity (host ports) to uplink capacity at the ToR. 1:1 is non-blocking;
// 4:1 means hosts can offer four times what the uplinks carry, and the
// uplink wires become the contention point — which is exactly the behavior
// the spec's UplinkBps derives.
package link

import "fmt"

// TorSpec describes one ToR (leaf) switch and its rack.
type TorSpec struct {
	// ID is the rack identifier; unique across the fabric.
	ID int
	// Hosts is the number of host-facing ports (VMhosts + IOhosts).
	Hosts int
	// Uplinks is the number of core-facing cables, spread across the
	// spines round-robin. Zero means the rack is disconnected from the
	// fabric — a validation error, not a silent island.
	Uplinks int
}

// FabricSpec describes a spine-leaf fabric.
type FabricSpec struct {
	// Tors lists the leaves, one per rack.
	Tors []TorSpec
	// Spines is the number of spine switches.
	Spines int
	// Oversubscription is the downlink:uplink capacity ratio at each ToR
	// (1 = non-blocking, 4 = classic 4:1). Must be positive.
	Oversubscription float64
	// DownlinkBps is the bandwidth of each host-facing port in bits/s.
	DownlinkBps float64
}

// Validate checks the fabric is buildable and returns a descriptive error
// naming the first problem found. It never panics: specs arrive from CLI
// flags and experiment configs, so bad input is an expected condition.
func (s FabricSpec) Validate() error {
	if len(s.Tors) == 0 {
		return fmt.Errorf("link: fabric has no ToR switches (no racks)")
	}
	if s.Spines <= 0 {
		return fmt.Errorf("link: fabric needs at least one spine, got %d", s.Spines)
	}
	if s.Oversubscription <= 0 {
		return fmt.Errorf("link: oversubscription ratio must be positive, got %g", s.Oversubscription)
	}
	if s.DownlinkBps <= 0 {
		return fmt.Errorf("link: downlink bandwidth must be positive, got %g", s.DownlinkBps)
	}
	seen := make(map[int]bool, len(s.Tors))
	for i, t := range s.Tors {
		if seen[t.ID] {
			return fmt.Errorf("link: duplicate ToR id %d (tor index %d)", t.ID, i)
		}
		seen[t.ID] = true
		if t.Hosts <= 0 {
			return fmt.Errorf("link: ToR %d has no host ports", t.ID)
		}
		if t.Uplinks <= 0 {
			return fmt.Errorf("link: ToR %d has no uplinks — rack %d is disconnected from the fabric", t.ID, t.ID)
		}
	}
	return nil
}

// UplinkBps derives the per-uplink bandwidth that realizes the fabric's
// oversubscription ratio for one ToR: total downlink capacity divided by
// (ratio × uplinks). With ratio 1 the uplinks collectively match the
// downlinks; with ratio 4 they carry a quarter of the offered load.
func (s FabricSpec) UplinkBps(t TorSpec) float64 {
	return float64(t.Hosts) * s.DownlinkBps / (s.Oversubscription * float64(t.Uplinks))
}
