// Package link models the rack's networking fabric: point-to-point wires
// with bandwidth and propagation delay, and a store-and-forward switch with
// MAC learning. Frames are real encoded Ethernet bytes (package ethernet);
// the fabric only sees opaque frames, exactly like real cabling.
package link

import (
	"vrio/internal/ethernet"
	"vrio/internal/sim"
)

// Receiver consumes frames arriving at the end of a wire.
type Receiver interface {
	ReceiveFrame(frame []byte)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(frame []byte)

// ReceiveFrame implements Receiver.
func (f ReceiverFunc) ReceiveFrame(frame []byte) { f(frame) }

// Wire is a unidirectional link. Frames serialize at the link's bandwidth
// (FIFO — a wire cannot interleave frames) and then propagate with fixed
// latency. A pair of Wires forms a full-duplex cable.
type Wire struct {
	eng  *sim.Engine
	bps  float64  // bits per second
	lat  sim.Time // propagation + PHY latency
	dst  Receiver
	busy sim.Time // when the transmitter frees up

	// pend holds frames in flight, drained FIFO by the prebound deliver
	// callback. Delivery times are strictly increasing per wire (departures
	// serialize and latency is constant), so FIFO pop order matches the
	// per-frame closures this replaces — and the datapath sheds one
	// allocation per frame.
	pend     [][]byte
	pendHead int
	deliver  func()

	// Bytes and Frames count traffic carried.
	Bytes  uint64
	Frames uint64
}

// NewWire builds a wire delivering to dst.
func NewWire(eng *sim.Engine, bps float64, latency sim.Time, dst Receiver) *Wire {
	if bps <= 0 {
		panic("link: non-positive bandwidth")
	}
	if latency < 0 {
		panic("link: negative latency")
	}
	w := &Wire{eng: eng, bps: bps, lat: latency, dst: dst}
	w.deliver = func() {
		f := w.pend[w.pendHead]
		w.pend[w.pendHead] = nil
		w.pendHead++
		if w.pendHead == len(w.pend) {
			w.pend = w.pend[:0]
			w.pendHead = 0
		}
		if w.dst != nil {
			w.dst.ReceiveFrame(f)
		}
	}
	return w
}

// SetReceiver rebinds the wire's destination (used while assembling
// topologies).
func (w *Wire) SetReceiver(dst Receiver) { w.dst = dst }

// serialization returns the time to clock size bytes onto the wire.
func (w *Wire) serialization(size int) sim.Time {
	return sim.Time(float64(size*8) / w.bps * float64(sim.Second))
}

// Send transmits one encoded frame. Wire-level overhead (preamble/FCS/IFG)
// is included via ethernet.Frame.WireSize's convention: callers pass encoded
// frame bytes; 24 bytes of overhead are added here.
func (w *Wire) Send(frame []byte) {
	w.Frames++
	w.Bytes += uint64(len(frame))
	start := w.eng.Now()
	if w.busy > start {
		start = w.busy
	}
	depart := start + w.serialization(len(frame)+24)
	w.busy = depart
	deliverAt := depart + w.lat
	w.pend = append(w.pend, frame)
	w.eng.At(deliverAt, w.deliver)
}

// Utilization reports the carried load in bits/s over elapsed time.
func (w *Wire) Utilization() float64 {
	now := w.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(w.Bytes*8) / now.Seconds() / w.bps
}

// Duplex is a full-duplex cable: two wires between endpoints A and B.
type Duplex struct {
	AtoB *Wire
	BtoA *Wire
}

// NewDuplex builds a cable; receivers are attached later via SetReceiver.
func NewDuplex(eng *sim.Engine, bps float64, latency sim.Time) *Duplex {
	return &Duplex{
		AtoB: NewWire(eng, bps, latency, nil),
		BtoA: NewWire(eng, bps, latency, nil),
	}
}

// Switch is a store-and-forward rack switch with MAC learning. Each port is
// a Duplex cable; the switch owns the "B" side of every port.
type Switch struct {
	eng     *sim.Engine
	latency sim.Time
	ports   []*Duplex
	fib     map[ethernet.MAC]int

	// Forwarded and Flooded count frames by forwarding decision.
	Forwarded uint64
	Flooded   uint64
}

// NewSwitch builds a switch with the given store-and-forward latency.
func NewSwitch(eng *sim.Engine, latency sim.Time) *Switch {
	return &Switch{eng: eng, latency: latency, fib: make(map[ethernet.MAC]int)}
}

// AttachPort plugs a cable into the switch: frames arriving on cable.AtoB
// enter the switch; the switch transmits to the device via cable.BtoA. It
// returns the port index.
func (s *Switch) AttachPort(cable *Duplex) int {
	idx := len(s.ports)
	s.ports = append(s.ports, cable)
	cable.AtoB.SetReceiver(ReceiverFunc(func(frame []byte) { s.ingress(idx, frame) }))
	return idx
}

func (s *Switch) ingress(port int, frame []byte) {
	f, err := ethernet.Decode(frame)
	if err != nil {
		return // runt frame: dropped silently, as hardware would
	}
	s.fib[f.Src] = port
	s.eng.After(s.latency, func() { s.egress(port, f.Dst, frame) })
}

func (s *Switch) egress(ingress int, dst ethernet.MAC, frame []byte) {
	if dst != ethernet.Broadcast {
		if out, ok := s.fib[dst]; ok {
			if out != ingress {
				s.Forwarded++
				s.ports[out].BtoA.Send(frame)
			}
			return
		}
	}
	// Unknown destination or broadcast: flood all ports but ingress.
	s.Flooded++
	for i, p := range s.ports {
		if i != ingress {
			p.BtoA.Send(frame)
		}
	}
}
