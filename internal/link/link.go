// Package link models the rack's networking fabric: point-to-point wires
// with bandwidth and propagation delay, and a store-and-forward switch with
// MAC learning. Frames are real encoded Ethernet bytes (package ethernet);
// the fabric only sees opaque frames, exactly like real cabling.
//
// A Wire optionally carries a TxFault injector (package fault supplies the
// implementations). When one is attached, every frame's FCS is computed at
// transmit time and re-verified at delivery, so in-flight corruption is
// detected and dropped exactly as a real NIC discards bad-CRC frames. Every
// way a frame can vanish — injected loss, corrupt FCS, runt at the switch —
// is tallied in a DropStats by reason; no frame disappears untallied.
package link

import (
	"vrio/internal/ethernet"
	"vrio/internal/sim"
	"vrio/internal/trace"
)

// Receiver consumes frames arriving at the end of a wire.
type Receiver interface {
	ReceiveFrame(frame []byte)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(frame []byte)

// ReceiveFrame implements Receiver.
func (f ReceiverFunc) ReceiveFrame(frame []byte) { f(frame) }

// DropReason classifies every way the fabric can lose a frame.
type DropReason int

const (
	// DropRunt: the frame was too short to carry an Ethernet header.
	DropRunt DropReason = iota
	// DropCorruptFCS: the delivered bytes failed the FCS check (in-flight
	// corruption detected and discarded, as hardware would).
	DropCorruptFCS
	// DropInjected: a fault injector consumed the frame (simulated loss).
	DropInjected
	// DropNoRoute: a fabric switch had no path toward the destination —
	// a leaf with no uplinks, a frame for a remote rack arriving on an
	// uplink (split horizon forbids re-forwarding it up), or a spine with
	// no port registered for the destination's rack.
	DropNoRoute

	// NumDropReasons sizes DropStats; new reasons append above.
	NumDropReasons
)

// String names the reason the way metrics label it.
func (r DropReason) String() string {
	switch r {
	case DropRunt:
		return "runt"
	case DropCorruptFCS:
		return "corrupt_fcs"
	case DropInjected:
		return "injected"
	case DropNoRoute:
		return "no_route"
	}
	return "unknown"
}

// DropStats tallies dropped frames by reason. It is the single accounting
// helper every drop path in the fabric routes through, so conservation
// holds: frames sent == frames delivered + DropStats total.
type DropStats [NumDropReasons]uint64

// Count records one drop for the reason.
func (d *DropStats) Count(r DropReason) { d[r]++ }

// Get returns the tally for one reason.
func (d *DropStats) Get(r DropReason) uint64 { return d[r] }

// Merge folds another tally into this one — how the loadgen's per-worker
// carriers and the fabric's per-wire stats roll up to one breakdown.
func (d *DropStats) Merge(other *DropStats) {
	for i, n := range other {
		d[i] += n
	}
}

// Total sums drops across all reasons.
func (d *DropStats) Total() uint64 {
	var t uint64
	for _, n := range d {
		t += n
	}
	return t
}

// FaultAction is a TxFault's decision for one frame.
type FaultAction int

const (
	// FaultNone delivers the frame untouched.
	FaultNone FaultAction = iota
	// FaultDrop loses the frame in flight (it still occupied the wire).
	FaultDrop
	// FaultCorrupt means the injector flipped bits in place; the FCS
	// computed before the flip no longer matches, so the receive-side
	// check detects and drops the frame.
	FaultCorrupt
)

// FaultVerdict is what a TxFault does to one frame: an action, plus extra
// in-flight delay (jitter). Extra > 0 routes the frame off the FIFO fast
// path, so a delayed frame can overtake or be overtaken — reordering
// emerges from jitter exactly as on a real multi-path fabric.
type FaultVerdict struct {
	Action FaultAction
	Extra  sim.Time
}

// TxFault inspects (and may mutate) each frame entering a wire. Injectors
// must be deterministic: the same seed and call sequence must yield the
// same verdicts, because simulation output is byte-identical per seed.
type TxFault interface {
	Apply(frame []byte) FaultVerdict
}

// pendFrame is one in-flight frame on the FIFO path. When check is set
// (fault attached at send time), fcs holds the transmit-time CRC32 and
// delivery re-verifies it.
type pendFrame struct {
	b     []byte
	fcs   uint32
	check bool
}

// Wire is a unidirectional link. Frames serialize at the link's bandwidth
// (FIFO — a wire cannot interleave frames) and then propagate with fixed
// latency. A pair of Wires forms a full-duplex cable.
type Wire struct {
	eng   *sim.Engine
	bps   float64  // bits per second
	lat   sim.Time // propagation + PHY latency
	dst   Receiver
	busy  sim.Time // when the transmitter frees up
	fault TxFault  // nil on the zero-alloc fast path

	// pend holds frames in flight, drained FIFO by the prebound deliver
	// callback. Delivery times are strictly increasing per wire (departures
	// serialize and latency is constant), so FIFO pop order matches the
	// per-frame closures this replaces — and the datapath sheds one
	// allocation per frame. Jitter-delayed frames bypass this queue via a
	// per-frame closure, keeping the FIFO invariant intact.
	pend     []pendFrame
	pendHead int
	deliver  func()

	// remote, when set, diverts delivery across a shard boundary: instead
	// of scheduling on the local engine, the wire hands (deliverAt, frame)
	// to the hook, which posts it into the destination shard's inbox. The
	// frame passed to the hook is a private copy — the sender's pooled
	// buffer never crosses the boundary, because buffer pools are
	// single-threaded per shard. All wire accounting (including the FCS
	// verdict of a faulted frame) happens on the sending shard, so every
	// counter on this Wire stays owned by one goroutine.
	remote func(deliverAt sim.Time, frame []byte)

	// hop, when set, records a CatFabric span per frame on this wire — the
	// fabric cables of a multi-rack topology use it for per-hop timing. The
	// tracer belongs to the sending shard (counters and spans alike stay
	// single-goroutine); hopName labels the cable, e.g. "tor2-spine0".
	hop     *trace.Tracer
	hopName string

	// Bytes and Frames count traffic offered to the wire; Delivered counts
	// frames handed to the receiver; Corrupted counts frames an injector
	// damaged in flight (detected or not — with CRC32 they always are).
	Bytes     uint64
	Frames    uint64
	Delivered uint64
	Corrupted uint64

	// Drops tallies every frame this wire lost, by reason.
	Drops DropStats
}

// NewWire builds a wire delivering to dst.
func NewWire(eng *sim.Engine, bps float64, latency sim.Time, dst Receiver) *Wire {
	if bps <= 0 {
		panic("link: non-positive bandwidth")
	}
	if latency < 0 {
		panic("link: negative latency")
	}
	w := &Wire{eng: eng, bps: bps, lat: latency, dst: dst}
	w.deliver = func() {
		f := w.pend[w.pendHead]
		w.pend[w.pendHead] = pendFrame{}
		w.pendHead++
		if w.pendHead == len(w.pend) {
			w.pend = w.pend[:0]
			w.pendHead = 0
		}
		w.handoff(f.b, f.fcs, f.check)
	}
	return w
}

// SetReceiver rebinds the wire's destination (used while assembling
// topologies).
func (w *Wire) SetReceiver(dst Receiver) { w.dst = dst }

// SetFault attaches a fault injector (nil detaches). With no injector the
// send path is untouched: no FCS work, no extra allocation.
func (w *Wire) SetFault(f TxFault) { w.fault = f }

// SetHopTracer arms per-hop span recording: each frame sent on this wire
// becomes one completed CatFabric span named name, from serialization start
// to modeled delivery, with the source MAC in Arg and the destination MAC
// folded into Flow so the hop joins its request's other spans in a merged
// export. A nil tracer (the disabled tracer) keeps Send on the untraced
// path — the guard in Send is the same inlined nil test the datapath uses.
func (w *Wire) SetHopTracer(t *trace.Tracer, name string) {
	w.hop = t
	w.hopName = name
}

// SetRemote marks the wire as crossing a shard boundary: post receives each
// surviving frame (as a private copy) with its delivery time, and is
// responsible for running RemoteDeliver on the destination shard at that
// time. The wire's serialization, busy-tracking, fault injection, and drop
// accounting all stay on the sending side.
func (w *Wire) SetRemote(post func(deliverAt sim.Time, frame []byte)) { w.remote = post }

// RemoteDeliver hands a frame to the receiver. It is the destination-shard
// half of a remote wire's delivery and touches no counters, so it is safe
// to run on a different goroutine than Send (the shard barrier orders them).
func (w *Wire) RemoteDeliver(frame []byte) {
	if w.dst != nil {
		w.dst.ReceiveFrame(frame)
	}
}

// sendRemote finishes a Send on a boundary wire: the fault verdict and the
// FCS check both resolve on the sending shard (a corrupted frame dies here,
// exactly as the receive-side check would have dropped it), and survivors
// are copied and posted for delivery on the far shard.
func (w *Wire) sendRemote(frame []byte, deliverAt sim.Time) {
	if w.fault != nil {
		fcs := ethernet.FCS(frame)
		v := w.fault.Apply(frame)
		switch v.Action {
		case FaultDrop:
			w.Drops.Count(DropInjected)
			return
		case FaultCorrupt:
			w.Corrupted++
		}
		deliverAt += v.Extra
		if ethernet.FCS(frame) != fcs {
			w.Drops.Count(DropCorruptFCS)
			return
		}
	}
	w.Delivered++
	cp := make([]byte, len(frame))
	copy(cp, frame)
	w.remote(deliverAt, cp)
}

// serialization returns the time to clock size bytes onto the wire.
func (w *Wire) serialization(size int) sim.Time {
	return sim.Time(float64(size*8) / w.bps * float64(sim.Second))
}

// Send transmits one encoded frame. Wire-level overhead (preamble/FCS/IFG)
// is included via ethernet.Frame.WireSize's convention: callers pass encoded
// frame bytes; 24 bytes of overhead are added here.
func (w *Wire) Send(frame []byte) {
	w.Frames++
	w.Bytes += uint64(len(frame))
	start := w.eng.Now()
	if w.busy > start {
		start = w.busy
	}
	depart := start + w.serialization(len(frame)+24)
	w.busy = depart
	deliverAt := depart + w.lat
	if w.hop.Enabled() {
		// The whole hop is determined at send time (FIFO serialization plus
		// fixed propagation), so record it as one completed span now. Frames
		// an injector later drops still occupied the wire; their hop span
		// simply has no downstream spans sharing its Flow.
		if f, err := ethernet.Decode(frame); err == nil {
			w.hop.Complete(trace.CatFabric, w.hopName,
				trace.Key48(f.Src), trace.Key48(f.Dst), start, deliverAt)
		}
	}
	if w.remote != nil {
		w.sendRemote(frame, deliverAt)
		return
	}
	if w.fault != nil {
		w.sendFaulted(frame, deliverAt)
		return
	}
	w.pend = append(w.pend, pendFrame{b: frame})
	w.eng.At(deliverAt, w.deliver)
}

// sendFaulted is the injected path: FCS is snapshotted before the injector
// may mutate the frame, loss is charged after the frame occupied the wire
// (the transmitter clocked it out; it died in flight), and jittered frames
// take a per-frame closure so they can reorder past FIFO traffic.
func (w *Wire) sendFaulted(frame []byte, deliverAt sim.Time) {
	fcs := ethernet.FCS(frame)
	v := w.fault.Apply(frame)
	switch v.Action {
	case FaultDrop:
		w.Drops.Count(DropInjected)
		return
	case FaultCorrupt:
		w.Corrupted++
	}
	if v.Extra > 0 {
		w.eng.At(deliverAt+v.Extra, func() { w.handoff(frame, fcs, true) })
		return
	}
	w.pend = append(w.pend, pendFrame{b: frame, fcs: fcs, check: true})
	w.eng.At(deliverAt, w.deliver)
}

// handoff completes delivery: verify FCS if armed, then hand the frame to
// the receiver. Every non-delivery routes through Drops.
func (w *Wire) handoff(frame []byte, fcs uint32, check bool) {
	if check && ethernet.FCS(frame) != fcs {
		w.Drops.Count(DropCorruptFCS)
		return
	}
	w.Delivered++
	if w.dst != nil {
		w.dst.ReceiveFrame(frame)
	}
}

// Utilization reports the carried load in bits/s over elapsed time.
func (w *Wire) Utilization() float64 {
	now := w.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(w.Bytes*8) / now.Seconds() / w.bps
}

// Duplex is a full-duplex cable: two wires between endpoints A and B.
type Duplex struct {
	AtoB *Wire
	BtoA *Wire
}

// NewDuplex builds a cable; receivers are attached later via SetReceiver.
func NewDuplex(eng *sim.Engine, bps float64, latency sim.Time) *Duplex {
	return &Duplex{
		AtoB: NewWire(eng, bps, latency, nil),
		BtoA: NewWire(eng, bps, latency, nil),
	}
}

// swPort is one switch port: the wire the switch transmits on, and whether
// the port faces the fabric core (uplink) rather than a host.
type swPort struct {
	tx     *Wire
	uplink bool
}

// Switch is a store-and-forward switch with MAC learning. It serves three
// roles with one forwarding pipeline:
//
//   - Classic rack switch (the seed behavior): host ports only, learned
//     switching with flooding for unknown destinations. Nothing below
//     changes a single-switch topology's output by a byte.
//   - Fabric leaf (ToR): SetLocator teaches it which rack owns each MAC.
//     Frames for remote racks ride a hash-chosen uplink; frames arriving ON
//     an uplink are never re-forwarded up (split horizon), so the fabric
//     cannot loop even with multiple spines. Remote MACs are routed by the
//     locator, not learned — cross-fabric MAC learning would let the first
//     frame of every flow flood through every rack.
//   - Fabric spine: SetRackPort registers which port reaches each rack; the
//     locator maps the destination MAC to its rack. A spine never floods
//     unicast — an unroutable frame is dropped and tallied DropNoRoute.
type Switch struct {
	eng     *sim.Engine
	latency sim.Time
	ports   []swPort
	fib     map[ethernet.MAC]int

	// Fabric role state, all nil/zero for a classic rack switch.
	rack      int                               // this leaf's rack id
	locate    func(ethernet.MAC) (int, bool)    // MAC -> owning rack
	uplinks   []int                             // leaf: uplink port indices
	rackPorts map[int][]int                     // spine: rack -> ports

	// Forwarded and Flooded count frames by forwarding decision; Drops
	// tallies frames the switch discarded (runts that failed to decode,
	// and fabric frames with no route toward their destination).
	Forwarded uint64
	Flooded   uint64
	Drops     DropStats

	// OnDrop, when set, observes every switch drop as it is tallied — the
	// flight recorder hooks in here so a no-route storm leaves evidence even
	// with full tracing off. Runs on the switch's shard, synchronously.
	OnDrop func(DropReason)
}

// drop tallies a discarded frame and notifies the observer, if any.
func (s *Switch) drop(r DropReason) {
	s.Drops.Count(r)
	if s.OnDrop != nil {
		s.OnDrop(r)
	}
}

// NewSwitch builds a switch with the given store-and-forward latency.
func NewSwitch(eng *sim.Engine, latency sim.Time) *Switch {
	return &Switch{eng: eng, latency: latency, fib: make(map[ethernet.MAC]int)}
}

// AttachPort plugs a host-facing cable into the switch: frames arriving on
// cable.AtoB enter the switch; the switch transmits to the device via
// cable.BtoA. It returns the port index.
func (s *Switch) AttachPort(cable *Duplex) int {
	idx := len(s.ports)
	s.ports = append(s.ports, swPort{tx: cable.BtoA})
	cable.AtoB.SetReceiver(ReceiverFunc(func(frame []byte) { s.ingress(idx, frame) }))
	return idx
}

// AttachUplink plugs a core-facing cable into a leaf with the opposite
// orientation: the leaf owns the "A" side (transmits on cable.AtoB, receives
// from cable.BtoA), so the same Duplex plugs into a spine's AttachPort on
// the "B" side. Returns the port index.
func (s *Switch) AttachUplink(cable *Duplex) int {
	idx := len(s.ports)
	s.ports = append(s.ports, swPort{tx: cable.AtoB, uplink: true})
	s.uplinks = append(s.uplinks, idx)
	cable.BtoA.SetReceiver(ReceiverFunc(func(frame []byte) { s.ingress(idx, frame) }))
	return idx
}

// SetLocator turns the switch into a fabric node of rack `rack` (spines pass
// -1): locate maps a MAC to the rack that owns it. MACs the locator does not
// know fall back to classic learned switching on a leaf.
func (s *Switch) SetLocator(rack int, locate func(ethernet.MAC) (int, bool)) {
	s.rack = rack
	s.locate = locate
}

// SetRackPort turns the switch into a spine: frames for MACs in `rack` leave
// via `port`. Multiple ports per rack load-balance by destination MAC hash.
func (s *Switch) SetRackPort(rack, port int) {
	if s.rackPorts == nil {
		s.rackPorts = make(map[int][]int)
	}
	s.rackPorts[rack] = append(s.rackPorts[rack], port)
}

// Uplinks reports how many uplink ports the switch has.
func (s *Switch) Uplinks() int { return len(s.uplinks) }

// macHash is the deterministic FNV-1a hash used to spread flows across
// equal-cost uplinks. It depends only on frame bytes, never on runtime
// state, so path choice is reproducible per seed.
func macHash(m ethernet.MAC) uint32 {
	h := uint32(2166136261)
	for _, b := range m {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

func (s *Switch) ingress(port int, frame []byte) {
	f, err := ethernet.Decode(frame)
	if err != nil {
		// Too short to carry a header: discard as hardware would, but
		// never silently — the tally keeps frame conservation auditable.
		s.drop(DropRunt)
		return
	}
	s.fib[f.Src] = port
	s.eng.After(s.latency, func() { s.egress(port, f.Dst, frame) })
}

func (s *Switch) egress(ingress int, dst ethernet.MAC, frame []byte) {
	if s.rackPorts != nil {
		s.egressSpine(ingress, dst, frame)
		return
	}
	if dst != ethernet.Broadcast {
		if s.locate != nil {
			if rack, ok := s.locate(dst); ok && rack != s.rack {
				s.egressRemote(ingress, dst, frame)
				return
			}
		}
		if out, ok := s.fib[dst]; ok {
			if out != ingress {
				s.Forwarded++
				s.ports[out].tx.Send(frame)
			}
			return
		}
	}
	// Unknown destination or broadcast: flood all host ports but ingress.
	// A frame that came DOWN an uplink stays down (split horizon); a local
	// frame additionally rides one hash-chosen uplink so broadcasts reach
	// the rest of the fabric exactly once.
	s.Flooded++
	for i, p := range s.ports {
		if i != ingress && !p.uplink {
			p.tx.Send(frame)
		}
	}
	if len(s.uplinks) > 0 && !s.ports[ingress].uplink {
		// Suppress the uplink copy when the locator proves the destination
		// is local to this rack — the flood above already covers it.
		if rack, ok := s.locateRack(dst); !ok || rack != s.rack {
			out := s.uplinks[macHash(dst)%uint32(len(s.uplinks))]
			s.ports[out].tx.Send(frame)
		}
	}
}

// locateRack wraps locate for callers that must tolerate a nil locator.
func (s *Switch) locateRack(m ethernet.MAC) (int, bool) {
	if s.locate == nil {
		return 0, false
	}
	return s.locate(m)
}

// egressRemote sends a unicast frame toward another rack via an uplink.
func (s *Switch) egressRemote(ingress int, dst ethernet.MAC, frame []byte) {
	if s.ports[ingress].uplink {
		// Split horizon: a remote-rack frame arriving on an uplink means a
		// spine misrouted it; re-forwarding up could loop, so drop loudly.
		s.drop(DropNoRoute)
		return
	}
	if len(s.uplinks) == 0 {
		s.drop(DropNoRoute)
		return
	}
	out := s.uplinks[macHash(dst)%uint32(len(s.uplinks))]
	s.Forwarded++
	s.ports[out].tx.Send(frame)
}

// egressSpine routes by the destination's rack. Spines never flood unicast.
func (s *Switch) egressSpine(ingress int, dst ethernet.MAC, frame []byte) {
	if dst == ethernet.Broadcast {
		s.Flooded++
		for i, p := range s.ports {
			if i != ingress {
				p.tx.Send(frame)
			}
		}
		return
	}
	if rack, ok := s.locateRack(dst); ok {
		if outs := s.rackPorts[rack]; len(outs) > 0 {
			out := outs[macHash(dst)%uint32(len(outs))]
			if out != ingress {
				s.Forwarded++
				s.ports[out].tx.Send(frame)
			}
			return
		}
	}
	s.drop(DropNoRoute)
}
