package transport

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"vrio/internal/bufpool"
	"vrio/internal/ethernet"
	"vrio/internal/sim"
)

// testFabric is an in-memory channel between transport peers with
// programmable loss and delay, standing in for the dedicated Ethernet
// channel.
type testFabric struct {
	eng   *sim.Engine
	nodes map[ethernet.MAC]func(src ethernet.MAC, payload []byte)
	// drop decides per message whether to lose it.
	drop  func(payload []byte) bool
	delay sim.Time
	sent  int
}

func newTestFabric(eng *sim.Engine) *testFabric {
	return &testFabric{
		eng:   eng,
		nodes: make(map[ethernet.MAC]func(ethernet.MAC, []byte)),
		delay: 5 * sim.Microsecond,
	}
}

type testPort struct {
	fabric *testFabric
	mac    ethernet.MAC
}

func (f *testFabric) port(mac ethernet.MAC, recv func(src ethernet.MAC, payload []byte)) *testPort {
	f.nodes[mac] = recv
	return &testPort{fabric: f, mac: mac}
}

func (p *testPort) LocalMAC() ethernet.MAC { return p.mac }

func (p *testPort) Send(dst ethernet.MAC, payload []byte) {
	f := p.fabric
	f.sent++
	if f.drop != nil && f.drop(payload) {
		return
	}
	msg := append([]byte{}, payload...)
	src := p.mac
	f.eng.After(f.delay, func() {
		if recv := f.nodes[dst]; recv != nil {
			recv(src, msg)
		}
	})
}

// harness wires one Driver to one Endpoint over a fabric.
type harness struct {
	eng      *sim.Engine
	fabric   *testFabric
	driver   *Driver
	endpoint *Endpoint
	client   ethernet.MAC
	iohost   ethernet.MAC
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{
		eng:    sim.NewEngine(),
		client: ethernet.NewMAC(1),
		iohost: ethernet.NewMAC(100),
	}
	h.fabric = newTestFabric(h.eng)
	var clientPort, hostPort *testPort
	clientPort = h.fabric.port(h.client, func(_ ethernet.MAC, payload []byte) {
		if err := h.driver.Deliver(payload); err != nil {
			t.Errorf("driver.Deliver: %v", err)
		}
	})
	hostPort = h.fabric.port(h.iohost, func(src ethernet.MAC, payload []byte) {
		if err := h.endpoint.Deliver(src, payload); err != nil {
			t.Errorf("endpoint.Deliver: %v", err)
		}
	})
	h.driver = NewDriver(h.eng, clientPort, h.iohost, cfg)
	h.endpoint = NewEndpoint(h.eng, hostPort, cfg)
	return h
}

// echoBlk makes the endpoint respond to every block request by echoing the
// payload.
func (h *harness) echoBlk() {
	h.endpoint.BlkReq = func(src ethernet.MAC, hdr Header, req *bufpool.Frame) {
		h.endpoint.RespondBlk(src, hdr, req.B)
		req.Release()
	}
}

func TestBlockRoundTrip(t *testing.T) {
	h := newHarness(t, Config{})
	h.echoBlk()
	var got []byte
	h.driver.SendBlk(2, 7, []byte("read sector 5"), func(resp []byte, err error) {
		if err != nil {
			t.Errorf("unexpected error: %v", err)
		}
		got = resp
	})
	h.eng.Run()
	if string(got) != "read sector 5" {
		t.Errorf("response = %q", got)
	}
	if h.driver.InFlightBlk() != 0 {
		t.Error("request still pending after completion")
	}
	if h.driver.Counters.Get("retransmits") != 0 {
		t.Error("retransmitted without loss")
	}
}

func TestBlockChunkingLargeRequestAndResponse(t *testing.T) {
	cfg := Config{MaxChunk: 1000}
	h := newHarness(t, cfg)
	var serverSaw []byte
	h.endpoint.BlkReq = func(src ethernet.MAC, hdr Header, req *bufpool.Frame) {
		serverSaw = append([]byte{}, req.B...)
		// Respond with a large payload too (a big read).
		resp := make([]byte, 5500)
		for i := range resp {
			resp[i] = byte(i * 3)
		}
		h.endpoint.RespondBlk(src, hdr, resp)
		req.Release()
	}
	req := make([]byte, 4096)
	for i := range req {
		req[i] = byte(i)
	}
	var got []byte
	h.driver.SendBlk(2, 1, req, func(resp []byte, err error) {
		if err != nil {
			t.Errorf("err: %v", err)
		}
		got = resp
	})
	h.eng.Run()
	if !bytes.Equal(serverSaw, req) {
		t.Error("chunked request corrupted at endpoint")
	}
	if len(got) != 5500 {
		t.Fatalf("response len = %d, want 5500", len(got))
	}
	for i := range got {
		if got[i] != byte(i*3) {
			t.Fatalf("response corrupt at %d", i)
		}
	}
	if h.endpoint.PendingRequests() != 0 {
		t.Error("endpoint leaked partial requests")
	}
}

func TestBlockRetransmissionRecoversFromLoss(t *testing.T) {
	h := newHarness(t, Config{})
	h.echoBlk()
	// Drop the first two block requests on the wire.
	drops := 0
	h.fabric.drop = func(payload []byte) bool {
		hdr, _, err := Decode(payload)
		if err == nil && hdr.Type == MsgBlkReq && drops < 2 {
			drops++
			return true
		}
		return false
	}
	var got []byte
	var doneAt sim.Time
	h.driver.SendBlk(2, 1, []byte("lossy"), func(resp []byte, err error) {
		if err != nil {
			t.Errorf("err: %v", err)
		}
		got = resp
		doneAt = h.eng.Now()
	})
	h.eng.Run()
	if string(got) != "lossy" {
		t.Fatalf("response = %q", got)
	}
	if rt := h.driver.Counters.Get("retransmits"); rt != 2 {
		t.Errorf("retransmits = %d, want 2", rt)
	}
	// Two expiries: 10ms + 20ms, then success.
	if doneAt < 30*sim.Millisecond || doneAt > 31*sim.Millisecond {
		t.Errorf("completed at %v, want just past 30ms (10+20 doubling)", doneAt)
	}
}

func TestBlockDeviceErrorAfterBudget(t *testing.T) {
	h := newHarness(t, Config{MaxRetransmits: 3})
	h.echoBlk()
	h.fabric.drop = func(payload []byte) bool {
		hdr, _, err := Decode(payload)
		return err == nil && hdr.Type == MsgBlkReq // lose every request
	}
	var gotErr error
	calls := 0
	h.driver.SendBlk(2, 1, []byte("doomed"), func(resp []byte, err error) {
		calls++
		gotErr = err
	})
	h.eng.Run()
	if calls != 1 {
		t.Fatalf("callback invoked %d times, want exactly 1", calls)
	}
	if !errors.Is(gotErr, ErrDeviceError) {
		t.Errorf("err = %v, want ErrDeviceError", gotErr)
	}
	// 10+20+40+80 ms of timeouts for initial + 3 retries.
	if now := h.eng.Now(); now < 150*sim.Millisecond || now > 151*sim.Millisecond {
		t.Errorf("gave up at %v, want 150ms", now)
	}
	if h.driver.InFlightBlk() != 0 {
		t.Error("failed request still pending")
	}
}

func TestBlockStaleResponseIgnored(t *testing.T) {
	h := newHarness(t, Config{})
	// The endpoint delays its first response beyond the 10ms timeout, so
	// the driver retransmits; then BOTH responses arrive. The stale one
	// (old ReqID) must be ignored and the callback run once.
	respCount := 0
	h.endpoint.BlkReq = func(src ethernet.MAC, hdr Header, req *bufpool.Frame) {
		respCount++
		delay := sim.Time(0)
		if respCount == 1 {
			delay = 15 * sim.Millisecond
		}
		hdrCopy := hdr
		h.eng.After(delay, func() {
			h.endpoint.RespondBlk(src, hdrCopy, req.B)
			req.Release()
		})
	}
	calls := 0
	h.driver.SendBlk(2, 1, []byte("dup"), func(resp []byte, err error) {
		calls++
		if err != nil || string(resp) != "dup" {
			t.Errorf("resp=%q err=%v", resp, err)
		}
	})
	h.eng.Run()
	if calls != 1 {
		t.Errorf("callback ran %d times, want 1", calls)
	}
	if respCount != 2 {
		t.Errorf("endpoint served %d times, want 2 (original + retransmission)", respCount)
	}
	if stale := h.driver.Counters.Get("stale"); stale != 1 {
		t.Errorf("stale = %d, want 1", stale)
	}
}

func TestNetTxRx(t *testing.T) {
	h := newHarness(t, Config{})
	var hostGot []byte
	var hostDev uint16
	h.endpoint.NetTx = func(src ethernet.MAC, deviceID uint16, frame []byte) {
		hostGot = frame
		hostDev = deviceID
		// Reflect a frame back down to the client.
		h.endpoint.SendNetRx(src, deviceID, []byte("pong"))
	}
	var clientGot []byte
	h.driver.NetRx = func(deviceID uint16, frame []byte) { clientGot = frame }
	h.driver.SendNet(1, 3, []byte("ping"))
	h.eng.Run()
	if string(hostGot) != "ping" || hostDev != 3 {
		t.Errorf("endpoint got %q dev %d", hostGot, hostDev)
	}
	if string(clientGot) != "pong" {
		t.Errorf("client got %q", clientGot)
	}
}

// RecycleNetRx tightens the net-rx contract: the frame is only borrowed for
// the callback, and the payload slab goes straight back to the pool — the
// steady state takes no allocations. Off (the default), the buffer escapes
// to the garbage collector exactly as before.
func TestNetRxRecycle(t *testing.T) {
	h := newHarness(t, Config{})
	h.driver.RecycleNetRx = true
	got := 0
	h.driver.NetRx = func(_ uint16, frame []byte) { got++ }
	p := h.driver.pool()
	payload := []byte("inbound-frame-bytes")
	deliver := func() {
		buf := p.GetRaw(EncodedSize(len(payload)))
		EncodeInto(buf, Header{Type: MsgNetRx, DeviceID: 1, ReqID: 1, ChunkCount: 1}, payload)
		if err := h.driver.Deliver(buf); err != nil {
			t.Fatal(err)
		}
	}
	deliver() // first delivery warms the size class
	base := p.Stats.Misses
	for i := 0; i < 100; i++ {
		deliver()
	}
	if got != 101 {
		t.Fatalf("NetRx ran %d times, want 101", got)
	}
	if p.Stats.Misses != base {
		t.Errorf("misses grew %d -> %d; recycled slab not reused", base, p.Stats.Misses)
	}

	// Default contract unchanged: the slab leaves the pool and never
	// returns (the guest may retain it).
	h.driver.RecycleNetRx = false
	free := p.FreeSlabs()
	deliver()
	if p.FreeSlabs() != free-1 {
		t.Errorf("FreeSlabs = %d after escaping delivery, want %d", p.FreeSlabs(), free-1)
	}
}

func TestNetIsUnreliable(t *testing.T) {
	h := newHarness(t, Config{})
	h.fabric.drop = func([]byte) bool { return true }
	delivered := false
	h.endpoint.NetTx = func(ethernet.MAC, uint16, []byte) { delivered = true }
	h.driver.SendNet(1, 1, []byte("gone"))
	h.eng.Run()
	if delivered {
		t.Error("dropped net frame was delivered")
	}
	if h.driver.Counters.Get("retransmits") != 0 {
		t.Error("net traffic must not be retransmitted")
	}
}

func TestControlCreateDestroy(t *testing.T) {
	h := newHarness(t, Config{})
	var created, destroyed []uint16
	h.driver.CreateDev = func(devType uint8, id uint16) { created = append(created, id) }
	h.driver.DestroyDev = func(id uint16) { destroyed = append(destroyed, id) }
	ackA, ackB := false, false
	h.endpoint.CreateDevice(h.client, 1, 10, func(ok bool) { ackA = ok })
	h.endpoint.DestroyDevice(h.client, 10, func(ok bool) { ackB = ok })
	h.eng.Run()
	if len(created) != 1 || created[0] != 10 {
		t.Errorf("created = %v", created)
	}
	if len(destroyed) != 1 || destroyed[0] != 10 {
		t.Errorf("destroyed = %v", destroyed)
	}
	if !ackA || !ackB {
		t.Errorf("acks: create=%v destroy=%v", ackA, ackB)
	}
}

func TestControlRetriesUnderLoss(t *testing.T) {
	h := newHarness(t, Config{})
	drops := 0
	h.fabric.drop = func(payload []byte) bool {
		hdr, _, err := Decode(payload)
		if err == nil && hdr.Type == MsgCtrlCreateDev && drops < 2 {
			drops++
			return true
		}
		return false
	}
	acked := false
	h.driver.CreateDev = func(uint8, uint16) {}
	h.endpoint.CreateDevice(h.client, 1, 5, func(ok bool) { acked = ok })
	h.eng.Run()
	if !acked {
		t.Error("control not acked despite retries")
	}
	if r := h.endpoint.Counters.Get("ctrl_retries"); r != 2 {
		t.Errorf("ctrl_retries = %d, want 2", r)
	}
}

func TestControlGivesUpWhenClientGone(t *testing.T) {
	h := newHarness(t, Config{MaxRetransmits: 2})
	h.fabric.drop = func([]byte) bool { return true }
	result := true
	h.endpoint.CreateDevice(h.client, 1, 5, func(ok bool) { result = ok })
	h.eng.Run()
	if result {
		t.Error("control reported success with an unreachable client")
	}
}

func TestDriverRejectsGarbage(t *testing.T) {
	h := newHarness(t, Config{})
	if err := h.driver.Deliver([]byte("junk")); err == nil {
		t.Error("garbage accepted by driver")
	}
	if err := h.endpoint.Deliver(h.client, []byte("junk")); err == nil {
		t.Error("garbage accepted by endpoint")
	}
}

func TestDriverRejectsServerOnlyTypes(t *testing.T) {
	h := newHarness(t, Config{})
	msg := Encode(Header{Type: MsgBlkReq, ChunkCount: 1}, []byte("x"))
	if err := h.driver.Deliver(msg); err == nil {
		t.Error("driver accepted a server-bound message type")
	}
	msg2 := Encode(Header{Type: MsgNetRx, ChunkCount: 1}, []byte("x"))
	if err := h.endpoint.Deliver(h.client, msg2); err == nil {
		t.Error("endpoint accepted a client-bound message type")
	}
}

func TestSendBlkPanicsWithoutCallback(t *testing.T) {
	h := newHarness(t, Config{})
	defer func() {
		if recover() == nil {
			t.Error("SendBlk without callback did not panic")
		}
	}()
	h.driver.SendBlk(2, 1, []byte("x"), nil)
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(devType uint8, devID uint16, reqID, origID uint64, chunk, count uint16, payload []byte) bool {
		h := Header{
			Type: MsgBlkReq, DeviceType: devType, DeviceID: devID,
			ReqID: reqID, OrigID: origID, Chunk: chunk, ChunkCount: count,
		}
		enc := Encode(h, payload)
		dec, body, err := Decode(enc)
		if err != nil {
			return false
		}
		h.Length = uint32(len(payload)) // Decode fills Length
		return dec == h && bytes.Equal(body, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsLengthMismatch(t *testing.T) {
	enc := Encode(Header{Type: MsgNetTx, ChunkCount: 1}, []byte("abc"))
	if _, _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Error("truncated message accepted")
	}
}

func TestDecodeRejectsBadType(t *testing.T) {
	enc := Encode(Header{Type: 0, ChunkCount: 1}, nil)
	if _, _, err := Decode(enc); !errors.Is(err, ErrBadType) {
		t.Errorf("err = %v, want ErrBadType", err)
	}
	enc2 := Encode(Header{Type: 200, ChunkCount: 1}, nil)
	if _, _, err := Decode(enc2); !errors.Is(err, ErrBadType) {
		t.Errorf("err = %v, want ErrBadType", err)
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		MsgNetTx: "net-tx", MsgNetRx: "net-rx", MsgBlkReq: "blk-req",
		MsgBlkResp: "blk-resp", MsgCtrlCreateDev: "ctrl-create",
		MsgCtrlDestroyDev: "ctrl-destroy", MsgCtrlAck: "ctrl-ack",
	}
	for ty, want := range names {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if MsgType(99).String() != "MsgType(99)" {
		t.Error("unknown type misprinted")
	}
}

// Property: under random loss, every block request either completes with the
// right payload or fails with ErrDeviceError — never silently disappears,
// never completes twice. This is §4.5's validation ("artificially dropping
// I/O requests arriving at the IOhost").
func TestBlockLossInjectionProperty(t *testing.T) {
	seed := uint64(1)
	next := func() uint64 { seed = seed*6364136223846793005 + 1442695040888963407; return seed >> 33 }
	for trial := 0; trial < 30; trial++ {
		h := newHarness(t, Config{MaxRetransmits: 8})
		h.echoBlk()
		lossPct := next() % 60 // up to 60% loss
		h.fabric.drop = func([]byte) bool { return next()%100 < lossPct }
		const reqs = 20
		completions := make([]int, reqs)
		for i := 0; i < reqs; i++ {
			i := i
			payload := []byte{byte(i), byte(trial)}
			h.driver.SendBlk(2, 1, payload, func(resp []byte, err error) {
				completions[i]++
				if err == nil && !bytes.Equal(resp, payload) {
					t.Errorf("trial %d req %d: wrong payload %v", trial, i, resp)
				}
			})
		}
		h.eng.Run()
		for i, c := range completions {
			if c != 1 {
				t.Fatalf("trial %d (loss %d%%): request %d completed %d times",
					trial, lossPct, i, c)
			}
		}
	}
}
