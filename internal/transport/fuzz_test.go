package transport_test

import (
	"testing"

	"vrio/internal/bufpool"
	"vrio/internal/ethernet"
	"vrio/internal/sim"
	"vrio/internal/transport"
)

// sinkPort swallows transmissions; the fuzz target only cares that the
// receive path survives the bytes.
type sinkPort struct {
	mac  ethernet.MAC
	pool *bufpool.Pool
}

func (p *sinkPort) Send(dst ethernet.MAC, payload []byte) {}
func (p *sinkPort) LocalMAC() ethernet.MAC                { return p.mac }
func (p *sinkPort) BufPool() *bufpool.Pool                { return p.pool }

func fuzzEnc(h transport.Header, payload []byte) []byte {
	b := make([]byte, transport.EncodedSize(len(payload)))
	transport.EncodeInto(b, h, payload)
	return b
}

// FuzzWireDecode feeds untrusted bytes to the full §4.2 receive path —
// header decode, chunk reassembly, response matching — on both the
// endpoint and the driver. On a real-wire carrier these bytes come off a
// socket from an untrusted peer, so nothing here may panic, over-read, or
// allocate beyond the configured reassembly cap; hostile inputs must die
// in the bad_msgs/stale counters.
func FuzzWireDecode(f *testing.F) {
	body := make([]byte, 300)
	for i := range body {
		body[i] = byte(i)
	}
	// Well-formed messages of every type, plus hostile shapes the decode
	// hardening exists for.
	f.Add(fuzzEnc(transport.Header{Type: transport.MsgBlkReq, ReqID: 9, OrigID: 9, ChunkCount: 1}, body))
	f.Add(fuzzEnc(transport.Header{Type: transport.MsgBlkReq, ReqID: 9, OrigID: 9, Chunk: 0, ChunkCount: 3}, body[:256]))
	f.Add(fuzzEnc(transport.Header{Type: transport.MsgBlkReq, ReqID: 9, OrigID: 9, Chunk: 2, ChunkCount: 3}, body[:40]))
	f.Add(fuzzEnc(transport.Header{Type: transport.MsgBlkReq, ReqID: 9, OrigID: 9, Chunk: 0, ChunkCount: 65535}, body[:256]))
	f.Add(fuzzEnc(transport.Header{Type: transport.MsgBlkResp, ReqID: 2, OrigID: 1, Chunk: 1, ChunkCount: 3}, body[:256]))
	f.Add(fuzzEnc(transport.Header{Type: transport.MsgNetTx, DeviceID: 3, ReqID: 5, ChunkCount: 1}, body))
	f.Add(fuzzEnc(transport.Header{Type: transport.MsgNetRx, DeviceID: 3, ReqID: 5, ChunkCount: 1}, body))
	f.Add(fuzzEnc(transport.Header{Type: transport.MsgCtrlAck, ReqID: 1, ChunkCount: 1}, nil))
	f.Add(fuzzEnc(transport.Header{Type: transport.MsgCtrlCreateDev, DeviceType: 1, DeviceID: 1, ReqID: 1, ChunkCount: 1}, nil))
	f.Add([]byte{})
	f.Add(fuzzEnc(transport.Header{Type: transport.MsgBlkReq, ChunkCount: 1}, body)[:transport.HeaderSize-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			return
		}
		// Layer 1: the codec itself. A decode that succeeds must describe
		// exactly the bytes it was given.
		if h, msgBody, err := transport.Decode(data); err == nil {
			if int(h.Length) != len(msgBody) {
				t.Fatalf("Decode: Length %d but body %d bytes", h.Length, len(msgBody))
			}
		}

		// Layer 2: the endpoint, under a deliberately small reassembly cap
		// so the fuzzer can reach the allocation guards. The same bytes
		// are delivered twice plus a truncation: duplicate and partial
		// chunks must be as harmless as clean ones.
		eng := sim.NewEngine()
		pool := bufpool.New()
		cfg := transport.Config{MaxChunk: 256, MaxReassembly: 1 << 12, InitialTimeout: sim.Millisecond}
		srcMAC := ethernet.NewMAC(1)
		ep := transport.NewEndpoint(eng, &sinkPort{mac: ethernet.NewMAC(2), pool: pool}, cfg)
		ep.BlkReq = func(src ethernet.MAC, h transport.Header, req *bufpool.Frame) {
			ep.RespondBlk(src, h, req.B)
			req.Release()
		}
		deliver := func(b []byte) {
			buf := pool.GetRaw(len(b))
			copy(buf, b)
			_ = ep.Deliver(srcMAC, buf)
		}
		deliver(data)
		deliver(data)
		if len(data) > 4 {
			deliver(data[:len(data)*3/4])
		}

		// Layer 3: the driver, with one real request in flight so fuzzed
		// responses can reach the pending/reassembly machinery (the seeds
		// include its OrigID/ReqID).
		drv := transport.NewDriver(eng, &sinkPort{mac: srcMAC, pool: pool}, ethernet.NewMAC(2), cfg)
		req := make([]byte, 600) // 3 chunks
		drv.SendBlk(1, 1, req, func([]byte, error) {})
		dDeliver := func(b []byte) {
			buf := pool.GetRaw(len(b))
			copy(buf, b)
			_ = drv.Deliver(buf)
		}
		dDeliver(data)
		dDeliver(data)
		eng.RunUntil(eng.Now() + 100*sim.Millisecond) // let retransmit timers run out
	})
}
