package transport

import (
	"fmt"

	"vrio/internal/ethernet"
	"vrio/internal/sim"
	"vrio/internal/stats"
	"vrio/internal/trace"
)

// Endpoint is the IOhost-side transport peer: it reassembles chunked block
// requests, dispatches messages to the I/O hypervisor, sends (possibly
// chunked) responses, and pushes control commands to IOclients with a small
// ack/retry protocol.
type Endpoint struct {
	eng  *sim.Engine
	port Port
	cfg  Config

	reqAsm map[endpointKey]*chunkAsm
	// asmSeq orders partial assemblies for eviction: a retransmission uses
	// a fresh ReqID, so a superseded attempt's partial assembly would
	// otherwise linger forever.
	asmSeq uint64
	maxAsm int
	// Evictions counts abandoned partial assemblies.
	Evictions uint64

	// NetTx is invoked when an IOclient's net front-end transmits a frame.
	NetTx func(src ethernet.MAC, deviceID uint16, frame []byte)
	// BlkReq is invoked with a fully reassembled block request. The I/O
	// hypervisor responds via RespondBlk with the same header. Duplicate
	// executions due to retransmission are safe by §4.5's argument (the
	// guest disk scheduler guarantees one outstanding request per block).
	BlkReq func(src ethernet.MAC, h Header, req []byte)

	nextID  uint64
	ctrl    map[uint64]*pendingCtrl
	noRetry bool // tests can disable control retries

	// Counters: "net_tx", "blk_req", "blk_resp", "ctrl_sent", "ctrl_acked",
	// "ctrl_retries", "bad_msgs".
	Counters stats.Counters

	// Tracer records completion spans for the return path (blk-resp and
	// net-rx leaving the IOhost until the client driver delivers them). Nil
	// is the zero-cost disabled tracer.
	Tracer *trace.Tracer
}

type endpointKey struct {
	src   ethernet.MAC
	reqID uint64
}

type pendingCtrl struct {
	reqID   uint64
	msg     []byte
	dst     ethernet.MAC
	timeout sim.Time
	retries int
	timer   sim.EventID
	done    func(acked bool)
}

// NewEndpoint builds the IOhost transport peer.
func NewEndpoint(eng *sim.Engine, port Port, cfg Config) *Endpoint {
	if cfg.InitialTimeout <= 0 {
		cfg.InitialTimeout = DefaultConfig().InitialTimeout
	}
	if cfg.MaxRetransmits <= 0 {
		cfg.MaxRetransmits = DefaultConfig().MaxRetransmits
	}
	if cfg.MaxChunk <= 0 {
		cfg.MaxChunk = DefaultConfig().MaxChunk
	}
	return &Endpoint{
		eng:    eng,
		port:   port,
		cfg:    cfg,
		reqAsm: make(map[endpointKey]*chunkAsm),
		maxAsm: 1024,
		ctrl:   make(map[uint64]*pendingCtrl),
	}
}

// Deliver ingests one transport message arriving from an IOclient.
func (e *Endpoint) Deliver(src ethernet.MAC, payload []byte) error {
	h, body, err := Decode(payload)
	if err != nil {
		e.Counters.Inc("bad_msgs", 1)
		return err
	}
	switch h.Type {
	case MsgNetTx:
		e.Counters.Inc("net_tx", 1)
		if e.NetTx != nil {
			e.NetTx(src, h.DeviceID, body)
		}
	case MsgBlkReq:
		e.deliverBlkReq(src, h, body)
	case MsgCtrlAck:
		e.ackCtrl(h.ReqID)
	default:
		e.Counters.Inc("bad_msgs", 1)
		return fmt.Errorf("transport: endpoint received unexpected %v", h.Type)
	}
	return nil
}

func (e *Endpoint) deliverBlkReq(src ethernet.MAC, h Header, body []byte) {
	if h.ChunkCount <= 1 {
		e.Counters.Inc("blk_req", 1)
		if e.BlkReq != nil {
			e.BlkReq(src, h, body)
		}
		return
	}
	key := endpointKey{src, h.ReqID}
	asm := e.reqAsm[key]
	if asm == nil {
		if len(e.reqAsm) >= e.maxAsm {
			e.evictOldestAsm()
		}
		e.asmSeq++
		asm = &chunkAsm{chunks: make([][]byte, h.ChunkCount), seq: e.asmSeq}
		e.reqAsm[key] = asm
	}
	if int(h.Chunk) >= len(asm.chunks) {
		e.Counters.Inc("bad_msgs", 1)
		return
	}
	if asm.chunks[h.Chunk] == nil {
		asm.chunks[h.Chunk] = append([]byte{}, body...)
		asm.got++
	}
	if asm.got < len(asm.chunks) {
		return
	}
	delete(e.reqAsm, key)
	var req []byte
	for _, c := range asm.chunks {
		req = append(req, c...)
	}
	e.Counters.Inc("blk_req", 1)
	if e.BlkReq != nil {
		e.BlkReq(src, h, req)
	}
}

// PendingRequests reports block requests still being reassembled.
func (e *Endpoint) PendingRequests() int { return len(e.reqAsm) }

func (e *Endpoint) evictOldestAsm() {
	var oldestKey endpointKey
	var oldest *chunkAsm
	for k, a := range e.reqAsm {
		if oldest == nil || a.seq < oldest.seq {
			oldest = a
			oldestKey = k
		}
	}
	if oldest != nil {
		delete(e.reqAsm, oldestKey)
		e.Evictions++
	}
}

// SendNetRx delivers a network frame to an IOclient front-end.
func (e *Endpoint) SendNetRx(dst ethernet.MAC, deviceID uint16, frame []byte) {
	e.nextID++
	if e.Tracer.Enabled() {
		comp := e.Tracer.BeginArg(trace.CatCompletion, "net-rx", 0, e.nextID)
		e.Tracer.Link(trace.FlowKey{Kind: FlowNetRx, A: trace.Key48(dst), B: e.nextID}, comp)
	}
	e.port.Send(dst, Encode(Header{
		Type:       MsgNetRx,
		DeviceID:   deviceID,
		ReqID:      e.nextID,
		ChunkCount: 1,
	}, frame))
}

// RespondBlk sends a (possibly chunked) block response, echoing the
// request's ReqID/OrigID so the client can match and de-duplicate it.
func (e *Endpoint) RespondBlk(dst ethernet.MAC, req Header, resp []byte) {
	e.Counters.Inc("blk_resp", 1)
	if e.Tracer.Enabled() {
		// Parent the completion under the request's guest_ring root so the
		// whole round trip renders on one track.
		mac := trace.Key48(dst)
		root := e.Tracer.Lookup(trace.FlowKey{Kind: FlowBlkRoot, A: mac, B: req.OrigID})
		comp := e.Tracer.BeginArg(trace.CatCompletion, "blk-resp", root, req.OrigID)
		e.Tracer.Link(trace.FlowKey{Kind: FlowBlkComp, A: mac, B: req.OrigID}, comp)
	}
	var chunks [][]byte
	for off := 0; off == 0 || off < len(resp); off += e.cfg.MaxChunk {
		end := off + e.cfg.MaxChunk
		if end > len(resp) {
			end = len(resp)
		}
		chunks = append(chunks, resp[off:end])
	}
	for i, c := range chunks {
		e.port.Send(dst, Encode(Header{
			Type:       MsgBlkResp,
			DeviceType: req.DeviceType,
			DeviceID:   req.DeviceID,
			ReqID:      req.ReqID,
			OrigID:     req.OrigID,
			Chunk:      uint16(i),
			ChunkCount: uint16(len(chunks)),
		}, c))
	}
}

// CreateDevice instructs an IOclient to instantiate a paravirtual front-end
// (§4.1: device creation is done via the I/O hypervisor). done, if non-nil,
// reports whether the client acked within the retry budget.
func (e *Endpoint) CreateDevice(dst ethernet.MAC, devType uint8, deviceID uint16, done func(acked bool)) {
	e.sendCtrl(dst, MsgCtrlCreateDev, devType, deviceID, done)
}

// DestroyDevice instructs an IOclient to tear a front-end down.
func (e *Endpoint) DestroyDevice(dst ethernet.MAC, deviceID uint16, done func(acked bool)) {
	e.sendCtrl(dst, MsgCtrlDestroyDev, 0, deviceID, done)
}

func (e *Endpoint) sendCtrl(dst ethernet.MAC, t MsgType, devType uint8, deviceID uint16, done func(acked bool)) {
	e.nextID++
	p := &pendingCtrl{
		reqID: e.nextID,
		msg: Encode(Header{
			Type:       t,
			DeviceType: devType,
			DeviceID:   deviceID,
			ReqID:      e.nextID,
			ChunkCount: 1,
		}, nil),
		dst:     dst,
		timeout: e.cfg.InitialTimeout,
		done:    done,
	}
	e.ctrl[p.reqID] = p
	e.Counters.Inc("ctrl_sent", 1)
	e.transmitCtrl(p)
}

func (e *Endpoint) transmitCtrl(p *pendingCtrl) {
	e.port.Send(p.dst, p.msg)
	p.timer = e.eng.After(p.timeout, func() { e.expireCtrl(p) })
}

func (e *Endpoint) expireCtrl(p *pendingCtrl) {
	if e.ctrl[p.reqID] != p {
		return
	}
	if p.retries >= e.cfg.MaxRetransmits {
		delete(e.ctrl, p.reqID)
		if p.done != nil {
			p.done(false)
		}
		return
	}
	p.retries++
	p.timeout *= 2
	e.Counters.Inc("ctrl_retries", 1)
	e.transmitCtrl(p)
}

func (e *Endpoint) ackCtrl(reqID uint64) {
	p := e.ctrl[reqID]
	if p == nil {
		return // duplicate ack
	}
	delete(e.ctrl, reqID)
	e.eng.Cancel(p.timer)
	e.Counters.Inc("ctrl_acked", 1)
	if p.done != nil {
		p.done(true)
	}
}
