package transport

import (
	"fmt"

	"vrio/internal/bufpool"
	"vrio/internal/ethernet"
	"vrio/internal/sim"
	"vrio/internal/stats"
	"vrio/internal/trace"
)

// Endpoint is the IOhost-side transport peer: it reassembles chunked block
// requests, dispatches messages to the I/O hypervisor, sends (possibly
// chunked) responses, and pushes control commands to IOclients with a small
// ack/retry protocol.
//
// Buffer ownership: Deliver takes ownership of each incoming message buffer
// and recycles it to the pool once consumed. Block requests are handed to
// the BlkReq handler as a leased *bufpool.Frame — a single-chunk request
// wraps the message buffer itself (zero copy); a multi-chunk request wraps
// the pooled reassembly buffer. The handler Releases the frame when the
// request's payload is no longer needed.
type Endpoint struct {
	clk  sim.Clock
	port Port
	cfg  Config

	reqAsm map[endpointKey]*chunkAsm
	// asmSeq orders partial assemblies for eviction: a retransmission uses
	// a fresh ReqID, so a superseded attempt's partial assembly would
	// otherwise linger forever.
	asmSeq uint64
	maxAsm int
	// Evictions counts abandoned partial assemblies.
	Evictions uint64

	bp      *bufpool.Pool
	asmFree []*chunkAsm

	// NetTx is invoked when an IOclient's net front-end transmits a frame.
	// The frame is only valid for the duration of the call (its buffer is
	// recycled afterwards); a handler that needs it later must copy.
	NetTx func(src ethernet.MAC, deviceID uint16, frame []byte)
	// BlkReq is invoked with a fully reassembled block request, leased as a
	// pooled frame the handler must Release. The I/O hypervisor responds
	// via RespondBlk with the same header. Duplicate executions due to
	// retransmission are safe by §4.5's argument (the guest disk scheduler
	// guarantees one outstanding request per block).
	BlkReq func(src ethernet.MAC, h Header, req *bufpool.Frame)

	nextID  uint64
	ctrl    map[uint64]*pendingCtrl
	noRetry bool // tests can disable control retries

	// Counters: "net_tx", "blk_req", "blk_resp", "ctrl_sent", "ctrl_acked",
	// "ctrl_retries", "bad_msgs".
	Counters stats.Counters

	// Tracer records completion spans for the return path (blk-resp and
	// net-rx leaving the IOhost until the client driver delivers them). Nil
	// is the zero-cost disabled tracer.
	Tracer *trace.Tracer
}

type endpointKey struct {
	src   ethernet.MAC
	reqID uint64
}

type pendingCtrl struct {
	reqID   uint64
	msg     []byte
	dst     ethernet.MAC
	timeout sim.Time
	retries int
	timer   sim.TimerID
	done    func(acked bool)
}

// NewEndpoint builds the IOhost transport peer. clk is the timer service —
// the simulation engine or a real-wire wall clock (see NewDriver).
func NewEndpoint(clk sim.Clock, port Port, cfg Config) *Endpoint {
	if cfg.InitialTimeout <= 0 {
		cfg.InitialTimeout = DefaultConfig().InitialTimeout
	}
	if cfg.MaxRetransmits <= 0 {
		cfg.MaxRetransmits = DefaultConfig().MaxRetransmits
	}
	if cfg.MaxChunk <= 0 {
		cfg.MaxChunk = DefaultConfig().MaxChunk
	}
	if cfg.MaxReassembly <= 0 {
		cfg.MaxReassembly = DefaultConfig().MaxReassembly
	}
	return &Endpoint{
		clk:    clk,
		port:   port,
		cfg:    cfg,
		reqAsm: make(map[endpointKey]*chunkAsm),
		maxAsm: 1024,
		ctrl:   make(map[uint64]*pendingCtrl),
	}
}

// pool returns the endpoint's buffer pool: the port's shared pool when it
// has one, else a private pool.
func (e *Endpoint) pool() *bufpool.Pool {
	if e.bp == nil {
		if pp, ok := e.port.(Pooler); ok {
			e.bp = pp.BufPool()
		} else {
			e.bp = bufpool.New()
		}
	}
	return e.bp
}

func (e *Endpoint) getAsm(count int) *chunkAsm {
	var a *chunkAsm
	if n := len(e.asmFree); n > 0 {
		a = e.asmFree[n-1]
		e.asmFree[n-1] = nil
		e.asmFree = e.asmFree[:n-1]
	} else {
		a = &chunkAsm{}
	}
	e.asmSeq++
	a.reset(count, e.asmSeq, e.cfg.MaxReassembly)
	return a
}

func (e *Endpoint) recycleAsm(a *chunkAsm) {
	a.release(e.pool())
	e.asmFree = append(e.asmFree, a)
}

// sendEncoded encodes h+payload into a pooled buffer, transmits it, and
// recycles the buffer (Port.Send only borrows it).
func (e *Endpoint) sendEncoded(dst ethernet.MAC, h Header, payload []byte) {
	pool := e.pool()
	buf := pool.GetRaw(EncodedSize(len(payload)))
	EncodeInto(buf, h, payload)
	e.port.Send(dst, buf)
	pool.PutRaw(buf)
}

// Deliver ingests one transport message arriving from an IOclient, taking
// ownership of payload (it is recycled once consumed; a single-chunk block
// request's buffer lives on inside the leased frame until Released).
func (e *Endpoint) Deliver(src ethernet.MAC, payload []byte) error {
	h, body, err := Decode(payload)
	if err != nil {
		e.Counters.Inc("bad_msgs", 1)
		e.pool().PutRaw(payload)
		return err
	}
	switch h.Type {
	case MsgNetTx:
		e.Counters.Inc("net_tx", 1)
		if e.NetTx != nil {
			e.NetTx(src, h.DeviceID, body)
		}
		e.pool().PutRaw(payload)
	case MsgBlkReq:
		e.deliverBlkReq(src, h, payload, body)
	case MsgCtrlAck:
		e.ackCtrl(h.ReqID)
		e.pool().PutRaw(payload)
	default:
		e.Counters.Inc("bad_msgs", 1)
		e.pool().PutRaw(payload)
		return fmt.Errorf("transport: endpoint received unexpected %v", h.Type)
	}
	return nil
}

// deliverBlkReq handles one blk-req message. payload is the whole owned
// message buffer; body is its payload view.
func (e *Endpoint) deliverBlkReq(src ethernet.MAC, h Header, payload, body []byte) {
	if h.ChunkCount <= 1 {
		e.Counters.Inc("blk_req", 1)
		if e.BlkReq != nil {
			// Zero copy: lease the message buffer itself; the slab recycles
			// when the handler Releases the frame.
			e.BlkReq(src, h, e.pool().Wrap(payload, body))
		} else {
			e.pool().PutRaw(payload)
		}
		return
	}
	if int(h.ChunkCount) > e.cfg.maxChunks() {
		// No legitimate MaxChunk stride yields this many chunks within the
		// reassembly cap — an untrusted peer probing for an allocation DoS.
		e.Counters.Inc("bad_msgs", 1)
		e.pool().PutRaw(payload)
		return
	}
	key := endpointKey{src, h.ReqID}
	asm := e.reqAsm[key]
	if asm == nil {
		if len(e.reqAsm) >= e.maxAsm {
			e.evictOldestAsm()
		}
		asm = e.getAsm(int(h.ChunkCount))
		e.reqAsm[key] = asm
	}
	if int(h.Chunk) >= asm.count || asm.count != int(h.ChunkCount) {
		e.Counters.Inc("bad_msgs", 1)
		e.pool().PutRaw(payload)
		return
	}
	complete := asm.add(e.pool(), int(h.Chunk), body)
	e.pool().PutRaw(payload) // body copied (or ignored); buffer is free
	if !complete {
		return
	}
	delete(e.reqAsm, key)
	req := asm.assembled()
	buf := asm.take()
	e.recycleAsm(asm)
	e.Counters.Inc("blk_req", 1)
	if e.BlkReq != nil {
		e.BlkReq(src, h, e.pool().Wrap(buf, req))
	} else {
		e.pool().PutRaw(buf)
	}
}

// PendingRequests reports block requests still being reassembled.
func (e *Endpoint) PendingRequests() int { return len(e.reqAsm) }

func (e *Endpoint) evictOldestAsm() {
	var oldestKey endpointKey
	var oldest *chunkAsm
	for k, a := range e.reqAsm {
		if oldest == nil || a.seq < oldest.seq {
			oldest = a
			oldestKey = k
		}
	}
	if oldest != nil {
		delete(e.reqAsm, oldestKey)
		e.recycleAsm(oldest)
		e.Evictions++
	}
}

// SendNetRx delivers a network frame to an IOclient front-end. The frame is
// only borrowed for the duration of the call.
func (e *Endpoint) SendNetRx(dst ethernet.MAC, deviceID uint16, frame []byte) {
	e.nextID++
	if e.Tracer.Enabled() {
		// Flow-key the completion by the inner frame's destination F-MAC —
		// the same key the fabric hops recorded — so a cross-rack request's
		// final delivery joins its hops in the merged export.
		comp := e.Tracer.BeginFlow(trace.CatCompletion, "net-rx", 0, e.nextID, NetFlow(frame))
		e.Tracer.Link(trace.FlowKey{Kind: FlowNetRx, A: trace.Key48(dst), B: e.nextID}, comp)
	}
	e.sendEncoded(dst, Header{
		Type:       MsgNetRx,
		DeviceID:   deviceID,
		ReqID:      e.nextID,
		ChunkCount: 1,
	}, frame)
}

// RespondBlk sends a (possibly chunked) block response, echoing the
// request's ReqID/OrigID so the client can match and de-duplicate it. resp
// is only borrowed for the duration of the call.
func (e *Endpoint) RespondBlk(dst ethernet.MAC, req Header, resp []byte) {
	e.Counters.Inc("blk_resp", 1)
	if e.Tracer.Enabled() {
		// Parent the completion under the request's guest_ring root so the
		// whole round trip renders on one track.
		mac := trace.Key48(dst)
		root := e.Tracer.Lookup(trace.FlowKey{Kind: FlowBlkRoot, A: mac, B: req.OrigID})
		comp := e.Tracer.BeginArg(trace.CatCompletion, "blk-resp", root, req.OrigID)
		e.Tracer.Link(trace.FlowKey{Kind: FlowBlkComp, A: mac, B: req.OrigID}, comp)
	}
	count := 1
	if len(resp) > e.cfg.MaxChunk {
		count = (len(resp) + e.cfg.MaxChunk - 1) / e.cfg.MaxChunk
	}
	for i := 0; i < count; i++ {
		off := i * e.cfg.MaxChunk
		end := off + e.cfg.MaxChunk
		if end > len(resp) {
			end = len(resp)
		}
		e.sendEncoded(dst, Header{
			Type:       MsgBlkResp,
			DeviceType: req.DeviceType,
			DeviceID:   req.DeviceID,
			ReqID:      req.ReqID,
			OrigID:     req.OrigID,
			Chunk:      uint16(i),
			ChunkCount: uint16(count),
		}, resp[off:end])
	}
}

// CreateDevice instructs an IOclient to instantiate a paravirtual front-end
// (§4.1: device creation is done via the I/O hypervisor). done, if non-nil,
// reports whether the client acked within the retry budget.
func (e *Endpoint) CreateDevice(dst ethernet.MAC, devType uint8, deviceID uint16, done func(acked bool)) {
	e.sendCtrl(dst, MsgCtrlCreateDev, devType, deviceID, done)
}

// DestroyDevice instructs an IOclient to tear a front-end down.
func (e *Endpoint) DestroyDevice(dst ethernet.MAC, deviceID uint16, done func(acked bool)) {
	e.sendCtrl(dst, MsgCtrlDestroyDev, 0, deviceID, done)
}

func (e *Endpoint) sendCtrl(dst ethernet.MAC, t MsgType, devType uint8, deviceID uint16, done func(acked bool)) {
	e.nextID++
	p := &pendingCtrl{
		reqID: e.nextID,
		msg: Encode(Header{
			Type:       t,
			DeviceType: devType,
			DeviceID:   deviceID,
			ReqID:      e.nextID,
			ChunkCount: 1,
		}, nil),
		dst:     dst,
		timeout: e.cfg.InitialTimeout,
		done:    done,
	}
	e.ctrl[p.reqID] = p
	e.Counters.Inc("ctrl_sent", 1)
	e.transmitCtrl(p)
}

func (e *Endpoint) transmitCtrl(p *pendingCtrl) {
	e.port.Send(p.dst, p.msg)
	p.timer = e.clk.AfterFunc(p.timeout, func() { e.expireCtrl(p) })
}

func (e *Endpoint) expireCtrl(p *pendingCtrl) {
	if e.ctrl[p.reqID] != p {
		return
	}
	if p.retries >= e.cfg.MaxRetransmits {
		delete(e.ctrl, p.reqID)
		if p.done != nil {
			p.done(false)
		}
		return
	}
	p.retries++
	p.timeout *= 2
	e.Counters.Inc("ctrl_retries", 1)
	e.transmitCtrl(p)
}

func (e *Endpoint) ackCtrl(reqID uint64) {
	p := e.ctrl[reqID]
	if p == nil {
		return // duplicate ack
	}
	delete(e.ctrl, reqID)
	e.clk.CancelTimer(p.timer)
	e.Counters.Inc("ctrl_acked", 1)
	if p.done != nil {
		p.done(true)
	}
}
