package transport

import (
	"bytes"
	"testing"

	"vrio/internal/bufpool"
	"vrio/internal/ethernet"
	"vrio/internal/sim"
)

// Stress tests for the §4.5 machinery under adversarial channel behaviour
// beyond plain loss: chunked requests where individual chunks drop, delayed
// duplicate delivery, and interleaved concurrent clients.

func TestChunkedRequestSurvivesPartialChunkLoss(t *testing.T) {
	cfg := Config{MaxChunk: 1000, MaxRetransmits: 8}
	h := newHarness(t, cfg)
	h.echoBlk()
	// Drop exactly one data chunk of the first transmission.
	dropped := false
	h.fabric.drop = func(payload []byte) bool {
		hdr, _, err := Decode(payload)
		if err == nil && hdr.Type == MsgBlkReq && hdr.Chunk == 2 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	req := make([]byte, 4500) // 5 chunks
	for i := range req {
		req[i] = byte(i)
	}
	var got []byte
	h.driver.SendBlk(2, 1, req, func(resp []byte, err error) {
		if err != nil {
			t.Errorf("err: %v", err)
		}
		got = resp
	})
	h.eng.Run()
	if !bytes.Equal(got, req) {
		t.Fatal("chunked request corrupted after partial loss")
	}
	if !dropped {
		t.Fatal("the drop never triggered")
	}
	// The whole request retransmits (all chunks), under a fresh ReqID.
	if rt := h.driver.Counters.Get("retransmits"); rt != 1 {
		t.Errorf("retransmits = %d, want 1", rt)
	}
	// The half-assembled first attempt stays behind (its ReqID was
	// superseded) but is bounded: the endpoint evicts the oldest partial
	// beyond its cap, so sustained partial loss cannot grow memory.
	if h.endpoint.PendingRequests() > 1 {
		t.Errorf("endpoint holds %d partial requests, want <= 1", h.endpoint.PendingRequests())
	}
}

func TestEndpointEvictsAbandonedPartials(t *testing.T) {
	h := newHarness(t, Config{MaxChunk: 100})
	// Deliver only chunk 0 of many distinct multi-chunk requests, directly,
	// so every one stays partial.
	for i := uint64(1); i <= 2000; i++ {
		msg := Encode(Header{
			Type: MsgBlkReq, DeviceID: 1, ReqID: i, OrigID: i,
			Chunk: 0, ChunkCount: 3,
		}, []byte("partial"))
		if err := h.endpoint.Deliver(h.client, msg); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.endpoint.PendingRequests(); got > 1024 {
		t.Errorf("partial assemblies unbounded: %d", got)
	}
	if h.endpoint.Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestChunkedResponsePartialLoss(t *testing.T) {
	cfg := Config{MaxChunk: 800, MaxRetransmits: 8}
	h := newHarness(t, cfg)
	h.echoBlk()
	dropped := false
	h.fabric.drop = func(payload []byte) bool {
		hdr, _, err := Decode(payload)
		if err == nil && hdr.Type == MsgBlkResp && hdr.Chunk == 1 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	req := make([]byte, 3000)
	for i := range req {
		req[i] = byte(i * 7)
	}
	var got []byte
	calls := 0
	h.driver.SendBlk(2, 1, req, func(resp []byte, err error) {
		calls++
		if err != nil {
			t.Errorf("err: %v", err)
		}
		got = resp
	})
	h.eng.Run()
	if calls != 1 {
		t.Fatalf("callback ran %d times", calls)
	}
	if !bytes.Equal(got, req) {
		t.Fatal("response corrupted after partial chunk loss")
	}
}

func TestDuplicateDeliveryIsIdempotent(t *testing.T) {
	h := newHarness(t, Config{})
	served := 0
	h.endpoint.BlkReq = func(src wireMAC, hdr Header, req *bufpool.Frame) {
		served++
		h.endpoint.RespondBlk(src, hdr, req.B)
		req.Release()
	}
	// The fabric delivers every message twice. Deliver consumes its buffer
	// (the endpoint recycles it), so the duplicate must be a copy.
	orig := h.fabric.nodes[h.iohost]
	h.fabric.nodes[h.iohost] = func(src wireMAC, payload []byte) {
		dup := append([]byte{}, payload...)
		orig(src, payload)
		orig(src, dup)
	}
	calls := 0
	h.driver.SendBlk(2, 1, []byte("dup-me"), func(resp []byte, err error) {
		calls++
		if err != nil || string(resp) != "dup-me" {
			t.Errorf("resp=%q err=%v", resp, err)
		}
	})
	h.eng.Run()
	if calls != 1 {
		t.Errorf("completion ran %d times under duplicate delivery", calls)
	}
	if served != 2 {
		t.Errorf("endpoint served %d times (duplicates are re-executed, safely)", served)
	}
	// The duplicate response is dropped as stale/unknown.
	if h.driver.Counters.Get("stale") == 0 {
		t.Error("duplicate response not counted as stale")
	}
}

// harnessMAC / wireMAC alias the fabric's address type.
type harnessMAC = ethernet.MAC
type wireMAC = harnessMAC

func TestManyClientsOneEndpoint(t *testing.T) {
	// 8 drivers share one endpoint through the fabric; all requests
	// complete with their own payloads under 20% loss.
	eng := sim.NewEngine()
	fabric := newTestFabric(eng)
	seed := uint64(5)
	next := func() uint64 { seed = seed*6364136223846793005 + 1; return seed >> 33 }
	fabric.drop = func([]byte) bool { return next()%100 < 20 }

	iohost := ethernet.NewMAC(200)
	var endpoint *Endpoint
	hostPort := fabric.port(iohost, func(src harnessMAC, payload []byte) {
		_ = endpoint.Deliver(src, payload)
	})
	endpoint = NewEndpoint(eng, hostPort, Config{})
	endpoint.BlkReq = func(src harnessMAC, hdr Header, req *bufpool.Frame) {
		endpoint.RespondBlk(src, hdr, req.B)
		req.Release()
	}

	const clients = 8
	completions := make([]int, clients)
	for c := 0; c < clients; c++ {
		c := c
		mac := ethernet.NewMAC(uint32(c + 1))
		var drv *Driver
		clientPort := fabric.port(mac, func(_ harnessMAC, payload []byte) {
			_ = drv.Deliver(payload)
		})
		drv = NewDriver(eng, clientPort, iohost, Config{MaxRetransmits: 10})
		for r := 0; r < 5; r++ {
			payload := []byte{byte(c), byte(r)}
			drv.SendBlk(2, uint16(c), payload, func(resp []byte, err error) {
				if err == nil && bytes.Equal(resp, payload) {
					completions[c]++
				}
			})
		}
	}
	eng.Run()
	for c, n := range completions {
		if n != 5 {
			t.Errorf("client %d completed %d/5", c, n)
		}
	}
}

func TestControlPlaneDeviceLifecycle(t *testing.T) {
	h := newHarness(t, Config{})
	var events []string
	h.driver.CreateDev = func(devType uint8, id uint16) {
		events = append(events, "create")
	}
	h.driver.DestroyDev = func(id uint16) {
		events = append(events, "destroy")
	}
	h.endpoint.CreateDevice(h.client, 1, 3, func(ok bool) {
		if !ok {
			t.Error("create not acked")
		}
		h.endpoint.DestroyDevice(h.client, 3, func(ok bool) {
			if !ok {
				t.Error("destroy not acked")
			}
		})
	})
	h.eng.Run()
	if len(events) != 2 || events[0] != "create" || events[1] != "destroy" {
		t.Errorf("lifecycle events = %v", events)
	}
}
