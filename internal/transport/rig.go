package transport

import (
	"vrio/internal/bufpool"
	"vrio/internal/ethernet"
	"vrio/internal/link"
	"vrio/internal/nic"
	"vrio/internal/params"
	"vrio/internal/sim"
)

// Rig wires one Driver to one Endpoint over the real datapath — pooled TSO
// segmentation, NIC receive rings, wire serialization, and reassembly — with
// both NICs in poll mode and the rig pumping the rings by hand. It exists
// for the datapath benchmarks and the zero-allocation guard test: after
// warmup, one net-tx round through Send is allocation-free, so the rig is
// the reference harness for measuring (and enforcing) that.
type Rig struct {
	Eng      *sim.Engine
	P        *params.P
	Pool     *bufpool.Pool
	Driver   *Driver
	Endpoint *Endpoint

	ClientVF   *nic.VF
	HostVF     *nic.VF
	ClientPort *nic.MessagePort
	HostPort   *nic.MessagePort

	// Cable is the 40G duplex joining the two NICs (AtoB: client->host).
	// Fault-injection tests attach TxFaults to its wires to exercise the
	// retransmission machinery over the real datapath.
	Cable *link.Duplex

	// NetTxMsgs/NetTxBytes count messages arriving at the endpoint's NetTx
	// handler (the rig's default handler).
	NetTxMsgs  uint64
	NetTxBytes uint64

	scratch [][]byte
}

// NewRig assembles the two-NIC testbed with default parameters: a client
// NIC and an IOhost NIC joined by a 40G cable, sharing one buffer pool.
func NewRig() *Rig { return NewRigConfig(Config{}) }

// NewRigConfig assembles the rig with transport-config overrides; zero
// fields keep the calibrated defaults. Fault-injection tests use a small
// MaxChunk so multi-chunk requests ride distinct wire frames.
func NewRigConfig(cfg Config) *Rig {
	def := params.Default()
	p := &def
	r := &Rig{Eng: sim.NewEngine(), P: p, Pool: bufpool.New()}

	nicCfg := nic.Config{
		ProcessCost:   p.NICProcessCost,
		CoalesceDelay: p.IRQCoalesceDelay,
		RxRingSize:    p.RxRingSize,
	}
	cable := link.NewDuplex(r.Eng, p.LinkBandwidth40G, p.WireLatency)
	r.Cable = cable
	clientNIC := nic.New(r.Eng, "rig-client", nicCfg, cable.AtoB)
	hostNIC := nic.New(r.Eng, "rig-host", nicCfg, cable.BtoA)
	clientNIC.SetPool(r.Pool)
	hostNIC.SetPool(r.Pool)
	cable.AtoB.SetReceiver(hostNIC)
	cable.BtoA.SetReceiver(clientNIC)

	clientMAC := ethernet.NewMAC(1)
	hostMAC := ethernet.NewMAC(2)
	r.ClientVF = clientNIC.AddVF(clientMAC, nic.ModePoll)
	r.HostVF = hostNIC.AddVF(hostMAC, nic.ModePoll)
	r.ClientPort = nic.NewMessagePort(r.ClientVF, p.MTU)
	r.HostPort = nic.NewMessagePort(r.HostVF, p.MTU)

	if cfg.InitialTimeout == 0 {
		cfg.InitialTimeout = p.RetransmitTimeout
	}
	if cfg.MaxRetransmits == 0 {
		cfg.MaxRetransmits = p.MaxRetransmits
	}
	r.Driver = NewDriver(r.Eng, r.ClientPort, hostMAC, cfg)
	r.Endpoint = NewEndpoint(r.Eng, r.HostPort, cfg)

	r.ClientPort.OnMessage = func(_ ethernet.MAC, msg []byte, _ bool, _ int) {
		_ = r.Driver.Deliver(msg)
	}
	r.HostPort.OnMessage = func(src ethernet.MAC, msg []byte, _ bool, _ int) {
		_ = r.Endpoint.Deliver(src, msg)
	}
	r.Endpoint.NetTx = func(_ ethernet.MAC, _ uint16, frame []byte) {
		r.NetTxMsgs++
		r.NetTxBytes += uint64(len(frame))
	}
	// Default block behaviour: echo the request (the benchmark's round
	// trip). RespondBlk borrows req.B, so releasing right after is safe.
	r.Endpoint.BlkReq = func(src ethernet.MAC, h Header, req *bufpool.Frame) {
		r.Endpoint.RespondBlk(src, h, req.B)
		req.Release()
	}
	return r
}

// Step harvests both receive rings and advances the engine, interleaved,
// until the rig is quiescent. Both VFs are in poll mode, so the rig plays
// sidecore: rings are drained between every event batch (never letting a
// retransmit timer fire ahead of a response sitting in the ring), and
// pending-but-cancelled timers left behind by completed requests drain to
// nothing.
func (r *Rig) Step() {
	for {
		if r.pollOnce() {
			continue
		}
		t, ok := r.Eng.NextAt()
		if !ok {
			return
		}
		r.Eng.RunUntil(t)
	}
}

// pollOnce drains both receive rings once, reporting whether any frame moved.
func (r *Rig) pollOnce() bool {
	moved := false
	r.scratch = r.scratch[:0]
	if r.HostVF.PollInto(&r.scratch, 0) > 0 {
		moved = true
		r.HostPort.HandleBatch(r.scratch)
	}
	r.scratch = r.scratch[:0]
	if r.ClientVF.PollInto(&r.scratch, 0) > 0 {
		moved = true
		r.ClientPort.HandleBatch(r.scratch)
	}
	return moved
}
