//go:build !race

package transport

// raceEnabled reports whether the race detector is compiled in. The
// zero-allocation guard skips under -race: the detector instruments
// allocations and would fail the guard for reasons unrelated to the datapath.
const raceEnabled = false
