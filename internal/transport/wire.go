// Package transport implements vRIO's transport driver (§4.1) and its wire
// protocol: the encapsulation that carries virtio requests between IOclients
// and the I/O hypervisor over the dedicated Ethernet channel, the block-I/O
// chunking for messages above the 64 KiB TSO limit (§4.3), and the
// retransmission machinery that makes block traffic reliable over lossy
// Ethernet (§4.5).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vrio/internal/trace"
)

// MsgType discriminates transport messages.
type MsgType uint8

// Message types. Net traffic is fire-and-forget (TCP/UDP above recover);
// block traffic is reliable via ReqID + retransmission.
const (
	MsgNetTx MsgType = iota + 1 // IOclient -> IOhost: guest transmitted a frame
	MsgNetRx                    // IOhost -> IOclient: frame destined for the guest
	MsgBlkReq
	MsgBlkResp
	MsgCtrlCreateDev // IOhost -> IOclient: create a paravirtual front-end
	MsgCtrlDestroyDev
	MsgCtrlAck // IOclient -> IOhost: control acknowledgement
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgNetTx:
		return "net-tx"
	case MsgNetRx:
		return "net-rx"
	case MsgBlkReq:
		return "blk-req"
	case MsgBlkResp:
		return "blk-resp"
	case MsgCtrlCreateDev:
		return "ctrl-create"
	case MsgCtrlDestroyDev:
		return "ctrl-destroy"
	case MsgCtrlAck:
		return "ctrl-ack"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Flow kinds for trace.FlowKey: they let the driver, endpoint, and I/O
// hypervisor hand trace spans across components using only wire-visible
// identifiers (the client's transport MAC in A, a ReqID/OrigID in B), so
// request tracing needs no wire-format change. Blk keys use OrigID where
// the id must survive retransmission (ReqID changes per attempt).
const (
	FlowBlkRoot uint8 = iota + 1 // guest_ring root span, by OrigID
	FlowBlkWire                  // in-flight blk-req wire span, by ReqID
	FlowBlkComp                  // blk-resp completion span, by OrigID
	FlowNetRoot                  // net-tx guest_ring root span, by ReqID
	FlowNetWire                  // in-flight net-tx wire span, by ReqID
	FlowNetRx                    // net-rx completion span, by endpoint ReqID
)

// Multi-queue block submission partitions the block id space per queue: the
// top byte of OrigID (and of every per-attempt ReqID) carries the submission
// queue, while the low 56 bits come from the driver's shared id counter, so
// ids stay unique across queues. Queue 0 leaves ids untouched, which keeps
// single-queue traffic byte-identical to the pre-multi-queue wire format.
const QueueShift = 56

// QueueOf extracts the submission queue a block id was stamped with.
func QueueOf(id uint64) uint8 { return uint8(id >> QueueShift) }

// NetFlow derives the fabric-global flow key of a guest Ethernet frame: its
// destination F-MAC folded to 48 bits — the same key the fabric wires record
// on their per-hop spans (they see the identical dst on the wire), so every
// span of one cross-rack request shares it in a merged export. Returns 0
// (no flow) for frames too short to carry an address.
func NetFlow(frame []byte) uint64 {
	if len(frame) < 6 {
		return 0
	}
	var dst [6]byte
	copy(dst[:], frame[:6])
	return trace.Key48(dst)
}

// Header is the transport header prepended to every message. ReqID is the
// §4.5 unique identifier: a fresh one is assigned per block transmission
// *and per retransmission*, so stale responses are recognizable. Chunk
// fields split block payloads larger than the 64 KiB TSO ceiling.
type Header struct {
	Type       MsgType
	DeviceType uint8 // virtio.DeviceType of the front-end
	DeviceID   uint16
	ReqID      uint64
	OrigID     uint64 // stable id across retransmissions (ReqID changes)
	Chunk      uint16
	ChunkCount uint16
	Length     uint32 // payload bytes in this message
}

// HeaderSize is the encoded header length.
const HeaderSize = 28

// Errors returned by the codec.
var (
	ErrShort   = errors.New("transport: message shorter than header")
	ErrBadType = errors.New("transport: unknown message type")
	ErrBadLen  = errors.New("transport: header length disagrees with payload")
)

// Encode serializes the header followed by payload.
func Encode(h Header, payload []byte) []byte {
	b := make([]byte, HeaderSize+len(payload))
	EncodeInto(b, h, payload)
	return b
}

// EncodedSize reports the wire size of a message with the given payload.
func EncodedSize(payloadLen int) int { return HeaderSize + payloadLen }

// EncodeInto is the scatter-gather variant of Encode: it writes header and
// payload into b, which must be exactly HeaderSize+len(payload) long —
// typically a pooled slab, so the steady-state datapath encodes without
// allocating. The header's Length field is taken from the payload.
func EncodeInto(b []byte, h Header, payload []byte) {
	if len(b) != HeaderSize+len(payload) {
		panic(fmt.Sprintf("transport: EncodeInto buffer %d for payload %d", len(b), len(payload)))
	}
	b[0] = uint8(h.Type)
	b[1] = h.DeviceType
	binary.LittleEndian.PutUint16(b[2:], h.DeviceID)
	binary.LittleEndian.PutUint64(b[4:], h.ReqID)
	binary.LittleEndian.PutUint64(b[12:], h.OrigID)
	binary.LittleEndian.PutUint16(b[20:], h.Chunk)
	binary.LittleEndian.PutUint16(b[22:], h.ChunkCount)
	binary.LittleEndian.PutUint32(b[24:], uint32(len(payload)))
	copy(b[HeaderSize:], payload)
}

// Decode parses a transport message. The returned payload aliases b.
func Decode(b []byte) (Header, []byte, error) {
	if len(b) < HeaderSize {
		return Header{}, nil, ErrShort
	}
	h := Header{
		Type:       MsgType(b[0]),
		DeviceType: b[1],
		DeviceID:   binary.LittleEndian.Uint16(b[2:]),
		ReqID:      binary.LittleEndian.Uint64(b[4:]),
		OrigID:     binary.LittleEndian.Uint64(b[12:]),
		Chunk:      binary.LittleEndian.Uint16(b[20:]),
		ChunkCount: binary.LittleEndian.Uint16(b[22:]),
		Length:     binary.LittleEndian.Uint32(b[24:]),
	}
	if h.Type < MsgNetTx || h.Type > MsgCtrlAck {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrBadType, b[0])
	}
	if int(h.Length) != len(b)-HeaderSize {
		return Header{}, nil, fmt.Errorf("%w: header %d, actual %d", ErrBadLen, h.Length, len(b)-HeaderSize)
	}
	return h, b[HeaderSize:], nil
}
