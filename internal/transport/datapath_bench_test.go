package transport

import (
	"testing"
)

// Datapath benchmarks over the full wire path (Rig): driver send → TSO
// segmentation into pooled frames → NIC rings → wire → reassembly into a
// pooled buffer → endpoint handler, plus ack/response traffic back. These
// are the numbers BENCH_*.json records as datapath_* metrics.

func benchPayload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 31)
	}
	return b
}

// BenchmarkDatapathNetTx measures one MTU-sized net-tx message end to end.
// Steady state is allocation-free (see TestHotPathZeroAlloc).
func BenchmarkDatapathNetTx(b *testing.B) {
	r := NewRig()
	frame := benchPayload(1400)
	for i := 0; i < 100; i++ { // warm pools, rings, and timer wheels
		r.Driver.SendNet(1, 3, frame)
		r.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Driver.SendNet(1, 3, frame)
		r.Step()
	}
	b.StopTimer()
	if r.NetTxMsgs != uint64(100+b.N) {
		b.Fatalf("delivered %d messages, want %d", r.NetTxMsgs, 100+b.N)
	}
}

// BenchmarkDatapathBlkRoundtrip measures a 4 KiB block request echoed back
// through the endpoint: chunked both ways, reassembled on each side.
func BenchmarkDatapathBlkRoundtrip(b *testing.B) {
	r := NewRig()
	req := benchPayload(4096)
	done := 0
	complete := func(resp []byte, err error) {
		if err != nil {
			b.Fatalf("blk roundtrip: %v", err)
		}
		done++
	}
	send := func() {
		r.Driver.SendBlk(2, 1, req, complete)
		r.Step()
	}
	for i := 0; i < 100; i++ {
		send()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
	}
	b.StopTimer()
	if done != 100+b.N {
		b.Fatalf("completed %d roundtrips, want %d", done, 100+b.N)
	}
}

// BenchmarkDatapathBlkMQ measures the multi-queue block path at QD=8 over
// NQ=4 queues: 32 outstanding 4 KiB requests, every completion reissuing on
// its own queue, echoed back through the endpoint. This is the submission
// shape the mqscaling experiment drives; BENCH_*.json records it as
// datapath_blk_mq_*.
func BenchmarkDatapathBlkMQ(b *testing.B) {
	const nq, qd = 4, 8
	r := NewRig()
	req := benchPayload(4096)
	done, remaining := 0, 0
	var cbs [nq]BlkCallback
	for q := 0; q < nq; q++ {
		queue := uint8(q)
		var cb BlkCallback
		cb = func(resp []byte, err error) {
			if err != nil {
				b.Fatalf("blk mq roundtrip: %v", err)
			}
			done++
			if remaining > 0 {
				remaining--
				r.Driver.SendBlkQ(2, 1, queue, req, cb)
			}
		}
		cbs[q] = cb
	}
	// run completes n requests with up to nq*qd in flight, spread round-robin
	// across the queues; completions keep their queue (closed loop).
	run := func(n int) {
		inflight := n
		if inflight > nq*qd {
			inflight = nq * qd
		}
		remaining = n - inflight
		for i := 0; i < inflight; i++ {
			q := i % nq
			r.Driver.SendBlkQ(2, 1, uint8(q), req, cbs[q])
		}
		r.Step()
	}
	run(100) // warm pools, rings, pending tables, and timer wheels
	b.ReportAllocs()
	b.ResetTimer()
	run(b.N)
	b.StopTimer()
	if done != 100+b.N {
		b.Fatalf("completed %d roundtrips, want %d", done, 100+b.N)
	}
}

// TestHotPathZeroAllocMQ extends the zero-allocation guard to the
// multi-queue block path: after warmup, one 4 KiB request per queue through
// SendBlkQ — queue-tagged ids, chunking, rings, wire, reassembly, echo, and
// completion dispatch — performs zero heap allocations.
func TestHotPathZeroAllocMQ(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; guard runs in the non-race pass")
	}
	const nq = 4
	r := NewRig()
	req := benchPayload(4096)
	done := 0
	var cbs [nq]BlkCallback
	for q := 0; q < nq; q++ {
		cbs[q] = func(resp []byte, err error) {
			if err != nil {
				t.Errorf("blk mq roundtrip: %v", err)
			}
			done++
		}
	}
	send := func() {
		for q := 0; q < nq; q++ {
			r.Driver.SendBlkQ(2, 1, uint8(q), req, cbs[q])
		}
		r.Step()
	}
	for i := 0; i < 100; i++ {
		send()
	}
	allocs := testing.AllocsPerRun(200, send)
	if allocs != 0 {
		t.Fatalf("blk mq hot path allocates %.1f allocs/op, want 0 — "+
			"a pending entry, pooled buffer, or queue table is escaping to the heap", allocs)
	}
	if done == 0 {
		t.Fatal("no completions observed")
	}
}

// TestHotPathZeroAlloc is the tier-1 guard for the zero-allocation datapath:
// after warmup, a steady-state net-tx message through the full path — encode,
// rings, wire, reassembly, delivery, ack — performs zero heap allocations.
func TestHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; guard runs in the non-race pass")
	}
	r := NewRig()
	frame := benchPayload(1400)
	send := func() {
		r.Driver.SendNet(1, 3, frame)
		r.Step()
	}
	for i := 0; i < 100; i++ {
		send()
	}
	allocs := testing.AllocsPerRun(200, send)
	if allocs != 0 {
		t.Fatalf("net-tx hot path allocates %.1f allocs/op, want 0 — "+
			"a pooled buffer or reusable batch is escaping to the heap", allocs)
	}
}
