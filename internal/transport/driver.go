package transport

import (
	"errors"
	"fmt"

	"vrio/internal/bufpool"
	"vrio/internal/ethernet"
	"vrio/internal/sim"
	"vrio/internal/stats"
	"vrio/internal/trace"
)

// Port is the channel the transport driver sends messages through: an SRIOV
// VF in the normal configuration, or a traditional virtio NIC during live
// migration (§4.6 shows both work; "Our vRIO implementation correctly runs
// using Tvirtio, Tsriov, and any other NIC"). Send carries one complete
// transport message; frame-level segmentation (TSO) happens inside the NIC
// model on its way to the wire.
type Port interface {
	// Send transmits one message to dst. It must not fail synchronously;
	// loss is a property of the channel, handled by retransmission. The
	// payload is only borrowed for the duration of the call (the NIC copies
	// it into fragment frames), so callers may reuse the buffer afterwards.
	Send(dst ethernet.MAC, payload []byte)
	// LocalMAC reports this port's address (the T interface's MAC).
	LocalMAC() ethernet.MAC
}

// Pooler is implemented by ports backed by a shared buffer pool (the NIC
// message port). The driver and endpoint draw their encode/reassembly
// buffers from it so slabs circulate within one simulation cell.
type Pooler interface {
	BufPool() *bufpool.Pool
}

// Config holds the reliability knobs (§4.5).
type Config struct {
	// InitialTimeout is the first block-request retransmission timeout
	// (the paper uses 10 ms), doubled on every expiry.
	InitialTimeout sim.Time
	// MaxRetransmits is how many retransmissions are attempted before the
	// request is failed with a device error.
	MaxRetransmits int
	// MaxChunk caps the payload per transport message; block requests
	// larger than this are chunked (the 64 KiB TSO ceiling minus headers).
	MaxChunk int
	// MaxReassembly caps the bytes a chunked message may reassemble into.
	// On the simulated carrier this is a formality (the sim only produces
	// well-formed traffic); on a real-wire carrier the peer is untrusted,
	// and without the cap a single hostile header (ChunkCount 65535 × a
	// 64 KiB stride) would make the receiver allocate gigabytes. Messages
	// that would exceed it — or whose ChunkCount no legitimate MaxChunk
	// stride could produce within it — are dropped and counted.
	MaxReassembly int
}

// maxChunks bounds ChunkCount for untrusted messages: a legitimate sender
// strides non-final chunks at MaxChunk, so a message within MaxReassembly
// carries at most MaxReassembly/MaxChunk full chunks plus a final one.
func (c Config) maxChunks() int { return c.MaxReassembly/c.MaxChunk + 1 }

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{
		InitialTimeout: 10 * sim.Millisecond,
		MaxRetransmits: 6,
		MaxChunk:       ethernet.MaxMessage - HeaderSize,
		MaxReassembly:  16 << 20, // 16 MiB; far above any modeled request
	}
}

// ErrDeviceError is reported when a block request exhausts its
// retransmission budget (§4.5: "vRIO concludes that the request cannot be
// served and raises a device error").
var ErrDeviceError = errors.New("transport: device error (retransmission budget exhausted)")

// BlkCallback receives a block response or a device error. The response
// bytes are only valid for the duration of the call: the driver recycles
// the buffer when the callback returns, so a callback that needs the data
// later must copy it.
type BlkCallback func(resp []byte, err error)

// Driver is the IOclient-side transport driver. It is the second driver
// layer of §4.1: front-ends hand it requests; it encapsulates, segments,
// retransmits, reassembles, and calls front-end handlers on completion.
//
// The steady-state datapath does not allocate: wire messages are encoded
// into pooled buffers, in-flight block bookkeeping and chunk assemblers are
// recycled through free lists, and chunked responses reassemble directly
// into one pooled buffer.
type Driver struct {
	clk    sim.Clock
	port   Port
	iohost ethernet.MAC
	cfg    Config

	nextID  uint64
	pending map[uint64]*pendingBlk // keyed by OrigID

	respAsm map[uint64]*chunkAsm // block responses being reassembled, by OrigID

	bp      *bufpool.Pool
	pbFree  []*pendingBlk
	asmFree []*chunkAsm

	// NetRx is invoked for every frame the IOhost delivers to a net
	// front-end. The frame may be retained by the guest (it escapes into
	// the tenant stack), so net-rx buffers are never recycled by default.
	NetRx func(deviceID uint16, frame []byte)
	// RecycleNetRx tightens the NetRx contract: when set, the frame is
	// only borrowed for the duration of the callback and its buffer is
	// returned to the pool as soon as NetRx returns. Opt in only when the
	// receiver consumes frames synchronously (vrio-loadgen does; the
	// simulated guest stack, which defers processing, must not).
	RecycleNetRx bool
	// CreateDev / DestroyDev are invoked for I/O-hypervisor control
	// commands (§4.1: "receiving commands from the I/O hypervisor to
	// create and destroy paravirtual devices").
	CreateDev  func(devType uint8, deviceID uint16)
	DestroyDev func(deviceID uint16)

	// Counters: "blk_sent", "blk_completed", "retransmits", "stale",
	// "device_errors", "net_tx", "net_rx", "ctrl".
	Counters stats.Counters

	// Tracer records per-request datapath spans; nil (the default) is the
	// zero-cost disabled tracer. The driver opens the guest_ring root span
	// at submission and the transport_wire span per transmission, linking
	// both under flow keys the IOhost side picks up.
	Tracer *trace.Tracer
}

type pendingBlk struct {
	origID   uint64
	curReqID uint64
	span     trace.SpanID // guest_ring root span, 0 when tracing is off
	deviceID uint16
	devType  uint8
	queue    uint8 // submission queue; stamps the top byte of every id
	chunks   [][]byte // raw payload chunks for retransmission (alias the request)
	timeout  sim.Time
	retries  int
	timer    sim.TimerID
	done     BlkCallback
	// expireFn is the prebound timeout callback; it survives recycling, so
	// arming a retransmission timer does not allocate.
	expireFn func()
}

// chunkAsm reassembles a chunked payload directly into one pooled buffer.
// All non-final chunks of one message share a single stride (the sender's
// MaxChunk), so chunk i lands at offset i*stride; the final chunk may be
// shorter. Used only for multi-chunk messages (single-chunk payloads take
// a zero-copy fast path at both ends).
type chunkAsm struct {
	seq      uint64 // insertion order, for endpoint-side eviction
	count    int
	limit    int    // reassembly byte cap; add refuses to allocate past it
	stride   int    // len of non-final chunks; 0 until the first one arrives
	buf      []byte // pooled assembly buffer, stride*count capacity
	seen     []bool
	got      int
	final    []byte // holdover if the final chunk precedes stride discovery
	finalLen int
}

func (a *chunkAsm) reset(count int, seq uint64, limit int) {
	a.seq = seq
	a.count = count
	a.limit = limit
	a.stride = 0
	a.buf = nil
	a.got = 0
	a.final = nil
	a.finalLen = -1
	if cap(a.seen) < count {
		a.seen = make([]bool, count)
	} else {
		a.seen = a.seen[:count]
		for i := range a.seen {
			a.seen[i] = false
		}
	}
}

// add ingests chunk idx, copying body into the assembly buffer. It reports
// whether the message is now complete. Duplicate or inconsistent chunks
// are ignored.
func (a *chunkAsm) add(pool *bufpool.Pool, idx int, body []byte) bool {
	if idx < 0 || idx >= a.count || a.seen[idx] {
		return false
	}
	if len(body) > a.limit {
		return false // one chunk alone past the reassembly cap
	}
	if idx < a.count-1 {
		if a.stride == 0 {
			if len(body) == 0 {
				return false // degenerate non-final chunk; drop
			}
			if len(body)*a.count > a.limit {
				// A hostile stride×count would allocate past the cap; never
				// set the stride, so the assembly stays empty and cheap.
				return false
			}
			a.stride = len(body)
			a.buf = pool.GetRaw(a.stride * a.count)
			if a.finalLen >= 0 {
				copy(a.buf[a.stride*(a.count-1):], a.final[:a.finalLen])
				pool.PutRaw(a.final)
				a.final = nil
			}
		} else if len(body) != a.stride {
			return false // chunks of one generation share a stride
		}
		copy(a.buf[a.stride*idx:], body)
	} else {
		if a.stride != 0 {
			if len(body) > a.stride {
				return false
			}
			copy(a.buf[a.stride*idx:], body)
		} else {
			a.final = pool.GetRaw(len(body))
			copy(a.final, body)
		}
		a.finalLen = len(body)
	}
	a.seen[idx] = true
	a.got++
	return a.got == a.count
}

// assembled returns the contiguous payload; valid only once add reported
// completion. The buffer remains owned by the assembler (release or take
// recycles it).
func (a *chunkAsm) assembled() []byte {
	return a.buf[:a.stride*(a.count-1)+a.finalLen]
}

// take transfers ownership of the assembly buffer to the caller.
func (a *chunkAsm) take() []byte {
	b := a.buf
	a.buf = nil
	return b
}

// release returns any held pooled buffers.
func (a *chunkAsm) release(pool *bufpool.Pool) {
	if a.buf != nil {
		pool.PutRaw(a.buf)
		a.buf = nil
	}
	if a.final != nil {
		pool.PutRaw(a.final)
		a.final = nil
	}
}

// NewDriver builds a transport driver bound to its IOhost's MAC. clk is the
// timer service: the simulation engine for simulated carriers, a
// netwire.Loop wall clock for real sockets — the driver itself cannot tell
// the difference.
func NewDriver(clk sim.Clock, port Port, iohost ethernet.MAC, cfg Config) *Driver {
	if cfg.InitialTimeout <= 0 {
		cfg.InitialTimeout = DefaultConfig().InitialTimeout
	}
	if cfg.MaxRetransmits <= 0 {
		cfg.MaxRetransmits = DefaultConfig().MaxRetransmits
	}
	if cfg.MaxChunk <= 0 {
		cfg.MaxChunk = DefaultConfig().MaxChunk
	}
	if cfg.MaxReassembly <= 0 {
		cfg.MaxReassembly = DefaultConfig().MaxReassembly
	}
	return &Driver{
		clk:     clk,
		port:    port,
		iohost:  iohost,
		cfg:     cfg,
		pending: make(map[uint64]*pendingBlk),
		respAsm: make(map[uint64]*chunkAsm),
	}
}

// InFlightBlk reports how many block requests await completion.
func (d *Driver) InFlightBlk() int { return len(d.pending) }

// SetPort switches the channel the driver transmits through — the §4.6
// live-migration mechanism ("F can dynamically switch between channeling
// traffic via Tsriov and Tvirtio"). In-flight block requests keep their
// timers and simply retransmit through the new port.
func (d *Driver) SetPort(port Port) {
	d.port = port
	d.bp = nil // rebind to the new port's pool on next use
}

// Port reports the current channel.
func (d *Driver) Port() Port { return d.port }

// SetRemote points the driver at a different IOhost channel address (the
// destination VMhost's cable lands on a different IOhost NIC).
func (d *Driver) SetRemote(iohost ethernet.MAC) { d.iohost = iohost }

// pool returns the driver's buffer pool: the port's shared pool when it has
// one, else a private pool.
func (d *Driver) pool() *bufpool.Pool {
	if d.bp == nil {
		if pp, ok := d.port.(Pooler); ok {
			d.bp = pp.BufPool()
		} else {
			d.bp = bufpool.New()
		}
	}
	return d.bp
}

func (d *Driver) allocID() uint64 {
	d.nextID++
	return d.nextID
}

// tagID draws the next id and stamps the submission queue into its top byte
// (see QueueShift). All queues share one counter, so ids never collide.
func (d *Driver) tagID(queue uint8) uint64 {
	return uint64(queue)<<QueueShift | d.allocID()
}

// getPending returns a recycled (or fresh) pendingBlk with its prebound
// expiry callback.
func (d *Driver) getPending() *pendingBlk {
	if n := len(d.pbFree); n > 0 {
		p := d.pbFree[n-1]
		d.pbFree[n-1] = nil
		d.pbFree = d.pbFree[:n-1]
		return p
	}
	p := &pendingBlk{}
	p.expireFn = func() { d.expire(p) }
	return p
}

// recyclePending returns a completed pendingBlk to the free list. The
// caller must have removed it from d.pending and canceled (or consumed)
// its timer.
func (d *Driver) recyclePending(p *pendingBlk) {
	p.chunks = p.chunks[:0]
	p.done = nil
	p.span = 0
	p.retries = 0
	p.queue = 0
	d.pbFree = append(d.pbFree, p)
}

func (d *Driver) getAsm(count int) *chunkAsm {
	var a *chunkAsm
	if n := len(d.asmFree); n > 0 {
		a = d.asmFree[n-1]
		d.asmFree[n-1] = nil
		d.asmFree = d.asmFree[:n-1]
	} else {
		a = &chunkAsm{}
	}
	a.reset(count, 0, d.cfg.MaxReassembly)
	return a
}

func (d *Driver) recycleAsm(a *chunkAsm) {
	a.release(d.pool())
	d.asmFree = append(d.asmFree, a)
}

// dropAsm discards any partial reassembly for origID, returning its pooled
// buffers.
func (d *Driver) dropAsm(origID uint64) {
	if a := d.respAsm[origID]; a != nil {
		delete(d.respAsm, origID)
		d.recycleAsm(a)
	}
}

// sendEncoded encodes h+payload into a pooled buffer, transmits it, and
// recycles the buffer (Port.Send only borrows it).
func (d *Driver) sendEncoded(h Header, payload []byte) {
	pool := d.pool()
	buf := pool.GetRaw(EncodedSize(len(payload)))
	EncodeInto(buf, h, payload)
	d.port.Send(d.iohost, buf)
	pool.PutRaw(buf)
}

// SendNet transmits a guest network frame to the IOhost. Net traffic is
// deliberately unreliable (§4.5: TCP above retransmits; UDP may lose
// anyhow). The frame is only borrowed for the duration of the call.
func (d *Driver) SendNet(devType uint8, deviceID uint16, frame []byte) {
	d.Counters.Inc("net_tx", 1)
	id := d.allocID()
	if d.Tracer.Enabled() {
		// Root = submission occupancy (ends when the IOhyp worker finishes
		// forwarding); child wire span ends on IOhost message pickup.
		mac := trace.Key48(d.port.LocalMAC())
		// The frame's destination F-MAC keys the fabric-global flow, tying
		// this submission to the fabric-hop and remote-side spans of a
		// cross-rack request in the merged export.
		ring := d.Tracer.BeginFlow(trace.CatGuestRing, "net-tx", 0, id, NetFlow(frame))
		wire := d.Tracer.BeginArg(trace.CatWire, "net-tx", ring, id)
		d.Tracer.Link(trace.FlowKey{Kind: FlowNetRoot, A: mac, B: id}, ring)
		d.Tracer.Link(trace.FlowKey{Kind: FlowNetWire, A: mac, B: id}, wire)
	}
	d.sendEncoded(Header{
		Type:       MsgNetTx,
		DeviceType: devType,
		DeviceID:   deviceID,
		ReqID:      id,
		ChunkCount: 1,
	}, frame)
}

// SendBlk transmits a block request reliably. done is invoked exactly once,
// with the response payload or ErrDeviceError. req must remain valid until
// then (chunks alias it across retransmissions).
func (d *Driver) SendBlk(devType uint8, deviceID uint16, req []byte, done BlkCallback) {
	d.SendBlkQ(devType, deviceID, 0, req, done)
}

// SendBlkQ transmits a block request reliably on submission queue `queue`.
// The queue rides in the top byte of OrigID and of every per-attempt ReqID
// (QueueOf recovers it), so a multi-queue IOhost can steer each queue to its
// pinned worker without any wire-format change: queue 0 is byte-identical to
// SendBlk. The driver imposes no depth limit per queue — callers (the guest
// workload) enforce QD by running closed loops.
func (d *Driver) SendBlkQ(devType uint8, deviceID uint16, queue uint8, req []byte, done BlkCallback) {
	if done == nil {
		panic("transport: SendBlk requires a completion callback")
	}
	d.Counters.Inc("blk_sent", 1)
	p := d.getPending()
	p.origID = d.tagID(queue)
	p.deviceID = deviceID
	p.devType = devType
	p.queue = queue
	p.timeout = d.cfg.InitialTimeout
	p.done = done
	for off := 0; off == 0 || off < len(req); off += d.cfg.MaxChunk {
		end := off + d.cfg.MaxChunk
		if end > len(req) {
			end = len(req)
		}
		p.chunks = append(p.chunks, req[off:end])
	}
	d.pending[p.origID] = p
	if d.Tracer.Enabled() {
		p.span = d.Tracer.BeginArg(trace.CatGuestRing, "blk", 0, p.origID)
		d.Tracer.Link(trace.FlowKey{Kind: FlowBlkRoot, A: trace.Key48(d.port.LocalMAC()), B: p.origID}, p.span)
	}
	d.transmit(p)
}

// transmit sends all chunks of p under a fresh ReqID and arms the timer.
func (d *Driver) transmit(p *pendingBlk) {
	p.curReqID = d.tagID(p.queue)
	// Chunks collected from a superseded attempt are discarded: the
	// response must reassemble from a single ReqID generation.
	d.dropAsm(p.origID)
	if d.Tracer.Enabled() {
		// One wire span per attempt; a lost attempt's span stays open and
		// exports as unfinished, which is exactly what happened to it.
		wire := d.Tracer.BeginArg(trace.CatWire, "blk-req", p.span, p.curReqID)
		d.Tracer.Link(trace.FlowKey{Kind: FlowBlkWire, A: trace.Key48(d.port.LocalMAC()), B: p.curReqID}, wire)
	}
	for i, chunk := range p.chunks {
		d.sendEncoded(Header{
			Type:       MsgBlkReq,
			DeviceType: p.devType,
			DeviceID:   p.deviceID,
			ReqID:      p.curReqID,
			OrigID:     p.origID,
			Chunk:      uint16(i),
			ChunkCount: uint16(len(p.chunks)),
		}, chunk)
	}
	p.timer = d.clk.AfterFunc(p.timeout, p.expireFn)
}

func (d *Driver) expire(p *pendingBlk) {
	if d.pending[p.origID] != p {
		return // completed in the meantime
	}
	if p.retries >= d.cfg.MaxRetransmits {
		delete(d.pending, p.origID)
		d.dropAsm(p.origID)
		d.Counters.Inc("device_errors", 1)
		d.Tracer.End(p.span) // device error closes the ring occupancy too
		done := p.done
		retries := p.retries
		origID := p.origID
		d.recyclePending(p)
		done(nil, fmt.Errorf("%w: request %d after %d attempts",
			ErrDeviceError, origID, retries+1))
		return
	}
	p.retries++
	p.timeout *= 2 // §4.5: doubled upon each subsequent expiration
	d.Counters.Inc("retransmits", 1)
	d.transmit(p)
}

// Deliver ingests one transport message arriving from the channel. The NIC
// model calls this once a full message is reassembled from wire fragments.
// The driver takes ownership of payload: block-response and control buffers
// are recycled to the pool; net-rx frames escape into the guest and are
// left to the garbage collector unless RecycleNetRx is set.
func (d *Driver) Deliver(payload []byte) error {
	h, body, err := Decode(payload)
	if err != nil {
		return err
	}
	switch h.Type {
	case MsgNetRx:
		d.Counters.Inc("net_rx", 1)
		if d.Tracer.Enabled() {
			d.Tracer.End(d.Tracer.Take(trace.FlowKey{
				Kind: FlowNetRx, A: trace.Key48(d.port.LocalMAC()), B: h.ReqID,
			}))
		}
		if d.NetRx != nil {
			d.NetRx(h.DeviceID, body)
		}
		if d.RecycleNetRx {
			d.pool().PutRaw(payload)
		}
	case MsgBlkResp:
		d.deliverBlkResp(h, body)
		d.pool().PutRaw(payload)
	case MsgCtrlCreateDev:
		d.Counters.Inc("ctrl", 1)
		if d.CreateDev != nil {
			d.CreateDev(h.DeviceType, h.DeviceID)
		}
		d.sendEncoded(Header{Type: MsgCtrlAck, ReqID: h.ReqID, ChunkCount: 1}, nil)
		d.pool().PutRaw(payload)
	case MsgCtrlDestroyDev:
		d.Counters.Inc("ctrl", 1)
		if d.DestroyDev != nil {
			d.DestroyDev(h.DeviceID)
		}
		d.sendEncoded(Header{Type: MsgCtrlAck, ReqID: h.ReqID, ChunkCount: 1}, nil)
		d.pool().PutRaw(payload)
	default:
		return fmt.Errorf("transport: client received unexpected %v", h.Type)
	}
	return nil
}

// deliverBlkResp handles one blk-resp message. body aliases the caller's
// payload buffer and is copied (or consumed synchronously) before return.
func (d *Driver) deliverBlkResp(h Header, body []byte) {
	p := d.pending[h.OrigID]
	if p == nil {
		d.Counters.Inc("stale", 1) // response to an already-completed request
		return
	}
	if h.ReqID != p.curReqID {
		// §4.5: a response to a superseded transmission is stale; a fresh
		// response for the current ReqID will (or did) arrive.
		d.Counters.Inc("stale", 1)
		return
	}
	count := int(h.ChunkCount)
	if count == 0 || int(h.Chunk) >= count || count > d.cfg.maxChunks() {
		d.Counters.Inc("stale", 1)
		return
	}

	var resp []byte
	var asm *chunkAsm
	if count == 1 {
		// Fast path: the response is this one message; hand the body
		// straight to the callback (it may not retain it).
		resp = body
	} else {
		asm = d.respAsm[h.OrigID]
		if asm == nil {
			asm = d.getAsm(count)
			d.respAsm[h.OrigID] = asm
		}
		if asm.count != count {
			d.Counters.Inc("stale", 1)
			return
		}
		if !asm.add(d.pool(), int(h.Chunk), body) {
			return
		}
		delete(d.respAsm, h.OrigID)
		resp = asm.assembled()
	}
	delete(d.pending, h.OrigID)
	d.clk.CancelTimer(p.timer)
	d.Counters.Inc("blk_completed", 1)
	if d.Tracer.Enabled() {
		d.Tracer.End(d.Tracer.Take(trace.FlowKey{
			Kind: FlowBlkComp, A: trace.Key48(d.port.LocalMAC()), B: h.OrigID,
		}))
		d.Tracer.End(p.span)
	}
	done := p.done
	d.recyclePending(p)
	done(resp, nil)
	if asm != nil {
		d.recycleAsm(asm)
	}
}
