package transport

import (
	"errors"
	"fmt"

	"vrio/internal/ethernet"
	"vrio/internal/sim"
	"vrio/internal/stats"
	"vrio/internal/trace"
)

// Port is the channel the transport driver sends messages through: an SRIOV
// VF in the normal configuration, or a traditional virtio NIC during live
// migration (§4.6 shows both work; "Our vRIO implementation correctly runs
// using Tvirtio, Tsriov, and any other NIC"). Send carries one complete
// transport message; frame-level segmentation (TSO) happens inside the NIC
// model on its way to the wire.
type Port interface {
	// Send transmits one message to dst. It must not fail synchronously;
	// loss is a property of the channel, handled by retransmission.
	Send(dst ethernet.MAC, payload []byte)
	// LocalMAC reports this port's address (the T interface's MAC).
	LocalMAC() ethernet.MAC
}

// Config holds the reliability knobs (§4.5).
type Config struct {
	// InitialTimeout is the first block-request retransmission timeout
	// (the paper uses 10 ms), doubled on every expiry.
	InitialTimeout sim.Time
	// MaxRetransmits is how many retransmissions are attempted before the
	// request is failed with a device error.
	MaxRetransmits int
	// MaxChunk caps the payload per transport message; block requests
	// larger than this are chunked (the 64 KiB TSO ceiling minus headers).
	MaxChunk int
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{
		InitialTimeout: 10 * sim.Millisecond,
		MaxRetransmits: 6,
		MaxChunk:       ethernet.MaxMessage - HeaderSize,
	}
}

// ErrDeviceError is reported when a block request exhausts its
// retransmission budget (§4.5: "vRIO concludes that the request cannot be
// served and raises a device error").
var ErrDeviceError = errors.New("transport: device error (retransmission budget exhausted)")

// BlkCallback receives a block response or a device error.
type BlkCallback func(resp []byte, err error)

// Driver is the IOclient-side transport driver. It is the second driver
// layer of §4.1: front-ends hand it requests; it encapsulates, segments,
// retransmits, reassembles, and calls front-end handlers on completion.
type Driver struct {
	eng    *sim.Engine
	port   Port
	iohost ethernet.MAC
	cfg    Config

	nextID  uint64
	pending map[uint64]*pendingBlk // keyed by OrigID

	respAsm map[uint64]*chunkAsm // block responses being reassembled, by OrigID

	// NetRx is invoked for every frame the IOhost delivers to a net
	// front-end.
	NetRx func(deviceID uint16, frame []byte)
	// CreateDev / DestroyDev are invoked for I/O-hypervisor control
	// commands (§4.1: "receiving commands from the I/O hypervisor to
	// create and destroy paravirtual devices").
	CreateDev  func(devType uint8, deviceID uint16)
	DestroyDev func(deviceID uint16)

	// Counters: "blk_sent", "blk_completed", "retransmits", "stale",
	// "device_errors", "net_tx", "net_rx", "ctrl".
	Counters stats.Counters

	// Tracer records per-request datapath spans; nil (the default) is the
	// zero-cost disabled tracer. The driver opens the guest_ring root span
	// at submission and the transport_wire span per transmission, linking
	// both under flow keys the IOhost side picks up.
	Tracer *trace.Tracer
}

type pendingBlk struct {
	origID   uint64
	curReqID uint64
	span     trace.SpanID // guest_ring root span, 0 when tracing is off
	deviceID uint16
	devType  uint8
	chunks   [][]byte // raw payload chunks for retransmission
	timeout  sim.Time
	retries  int
	timer    sim.EventID
	done     BlkCallback
}

type chunkAsm struct {
	chunks [][]byte
	got    int
	seq    uint64 // insertion order, for endpoint-side eviction
}

// NewDriver builds a transport driver bound to its IOhost's MAC.
func NewDriver(eng *sim.Engine, port Port, iohost ethernet.MAC, cfg Config) *Driver {
	if cfg.InitialTimeout <= 0 {
		cfg.InitialTimeout = DefaultConfig().InitialTimeout
	}
	if cfg.MaxRetransmits <= 0 {
		cfg.MaxRetransmits = DefaultConfig().MaxRetransmits
	}
	if cfg.MaxChunk <= 0 {
		cfg.MaxChunk = DefaultConfig().MaxChunk
	}
	return &Driver{
		eng:     eng,
		port:    port,
		iohost:  iohost,
		cfg:     cfg,
		pending: make(map[uint64]*pendingBlk),
		respAsm: make(map[uint64]*chunkAsm),
	}
}

// InFlightBlk reports how many block requests await completion.
func (d *Driver) InFlightBlk() int { return len(d.pending) }

// SetPort switches the channel the driver transmits through — the §4.6
// live-migration mechanism ("F can dynamically switch between channeling
// traffic via Tsriov and Tvirtio"). In-flight block requests keep their
// timers and simply retransmit through the new port.
func (d *Driver) SetPort(port Port) { d.port = port }

// Port reports the current channel.
func (d *Driver) Port() Port { return d.port }

// SetRemote points the driver at a different IOhost channel address (the
// destination VMhost's cable lands on a different IOhost NIC).
func (d *Driver) SetRemote(iohost ethernet.MAC) { d.iohost = iohost }

func (d *Driver) allocID() uint64 {
	d.nextID++
	return d.nextID
}

// SendNet transmits a guest network frame to the IOhost. Net traffic is
// deliberately unreliable (§4.5: TCP above retransmits; UDP may lose
// anyhow).
func (d *Driver) SendNet(devType uint8, deviceID uint16, frame []byte) {
	d.Counters.Inc("net_tx", 1)
	id := d.allocID()
	if d.Tracer.Enabled() {
		// Root = submission occupancy (ends when the IOhyp worker finishes
		// forwarding); child wire span ends on IOhost message pickup.
		mac := trace.Key48(d.port.LocalMAC())
		ring := d.Tracer.BeginArg(trace.CatGuestRing, "net-tx", 0, id)
		wire := d.Tracer.BeginArg(trace.CatWire, "net-tx", ring, id)
		d.Tracer.Link(trace.FlowKey{Kind: FlowNetRoot, A: mac, B: id}, ring)
		d.Tracer.Link(trace.FlowKey{Kind: FlowNetWire, A: mac, B: id}, wire)
	}
	msg := Encode(Header{
		Type:       MsgNetTx,
		DeviceType: devType,
		DeviceID:   deviceID,
		ReqID:      id,
		ChunkCount: 1,
	}, frame)
	d.port.Send(d.iohost, msg)
}

// SendBlk transmits a block request reliably. done is invoked exactly once,
// with the response payload or ErrDeviceError.
func (d *Driver) SendBlk(devType uint8, deviceID uint16, req []byte, done BlkCallback) {
	if done == nil {
		panic("transport: SendBlk requires a completion callback")
	}
	d.Counters.Inc("blk_sent", 1)
	p := &pendingBlk{
		origID:   d.allocID(),
		deviceID: deviceID,
		devType:  devType,
		timeout:  d.cfg.InitialTimeout,
		done:     done,
	}
	for off := 0; off == 0 || off < len(req); off += d.cfg.MaxChunk {
		end := off + d.cfg.MaxChunk
		if end > len(req) {
			end = len(req)
		}
		p.chunks = append(p.chunks, req[off:end])
	}
	d.pending[p.origID] = p
	if d.Tracer.Enabled() {
		p.span = d.Tracer.BeginArg(trace.CatGuestRing, "blk", 0, p.origID)
		d.Tracer.Link(trace.FlowKey{Kind: FlowBlkRoot, A: trace.Key48(d.port.LocalMAC()), B: p.origID}, p.span)
	}
	d.transmit(p)
}

// transmit sends all chunks of p under a fresh ReqID and arms the timer.
func (d *Driver) transmit(p *pendingBlk) {
	p.curReqID = d.allocID()
	// Chunks collected from a superseded attempt are discarded: the
	// response must reassemble from a single ReqID generation.
	delete(d.respAsm, p.origID)
	if d.Tracer.Enabled() {
		// One wire span per attempt; a lost attempt's span stays open and
		// exports as unfinished, which is exactly what happened to it.
		wire := d.Tracer.BeginArg(trace.CatWire, "blk-req", p.span, p.curReqID)
		d.Tracer.Link(trace.FlowKey{Kind: FlowBlkWire, A: trace.Key48(d.port.LocalMAC()), B: p.curReqID}, wire)
	}
	for i, chunk := range p.chunks {
		msg := Encode(Header{
			Type:       MsgBlkReq,
			DeviceType: p.devType,
			DeviceID:   p.deviceID,
			ReqID:      p.curReqID,
			OrigID:     p.origID,
			Chunk:      uint16(i),
			ChunkCount: uint16(len(p.chunks)),
		}, chunk)
		d.port.Send(d.iohost, msg)
	}
	p.timer = d.eng.After(p.timeout, func() { d.expire(p) })
}

func (d *Driver) expire(p *pendingBlk) {
	if d.pending[p.origID] != p {
		return // completed in the meantime
	}
	if p.retries >= d.cfg.MaxRetransmits {
		delete(d.pending, p.origID)
		delete(d.respAsm, p.origID)
		d.Counters.Inc("device_errors", 1)
		d.Tracer.End(p.span) // device error closes the ring occupancy too
		p.done(nil, fmt.Errorf("%w: request %d after %d attempts",
			ErrDeviceError, p.origID, p.retries+1))
		return
	}
	p.retries++
	p.timeout *= 2 // §4.5: doubled upon each subsequent expiration
	d.Counters.Inc("retransmits", 1)
	d.transmit(p)
}

// Deliver ingests one transport message arriving from the channel. The NIC
// model calls this once a full message is reassembled from wire fragments.
func (d *Driver) Deliver(payload []byte) error {
	h, body, err := Decode(payload)
	if err != nil {
		return err
	}
	switch h.Type {
	case MsgNetRx:
		d.Counters.Inc("net_rx", 1)
		if d.Tracer.Enabled() {
			d.Tracer.End(d.Tracer.Take(trace.FlowKey{
				Kind: FlowNetRx, A: trace.Key48(d.port.LocalMAC()), B: h.ReqID,
			}))
		}
		if d.NetRx != nil {
			d.NetRx(h.DeviceID, body)
		}
	case MsgBlkResp:
		d.deliverBlkResp(h, body)
	case MsgCtrlCreateDev:
		d.Counters.Inc("ctrl", 1)
		if d.CreateDev != nil {
			d.CreateDev(h.DeviceType, h.DeviceID)
		}
		d.port.Send(d.iohost, Encode(Header{Type: MsgCtrlAck, ReqID: h.ReqID, ChunkCount: 1}, nil))
	case MsgCtrlDestroyDev:
		d.Counters.Inc("ctrl", 1)
		if d.DestroyDev != nil {
			d.DestroyDev(h.DeviceID)
		}
		d.port.Send(d.iohost, Encode(Header{Type: MsgCtrlAck, ReqID: h.ReqID, ChunkCount: 1}, nil))
	default:
		return fmt.Errorf("transport: client received unexpected %v", h.Type)
	}
	return nil
}

func (d *Driver) deliverBlkResp(h Header, body []byte) {
	p := d.pending[h.OrigID]
	if p == nil {
		d.Counters.Inc("stale", 1) // response to an already-completed request
		return
	}
	if h.ReqID != p.curReqID {
		// §4.5: a response to a superseded transmission is stale; a fresh
		// response for the current ReqID will (or did) arrive.
		d.Counters.Inc("stale", 1)
		return
	}
	asm := d.respAsm[h.OrigID]
	if asm == nil {
		asm = &chunkAsm{chunks: make([][]byte, h.ChunkCount)}
		d.respAsm[h.OrigID] = asm
	}
	if int(h.Chunk) >= len(asm.chunks) {
		d.Counters.Inc("stale", 1)
		return
	}
	if asm.chunks[h.Chunk] == nil {
		asm.chunks[h.Chunk] = append([]byte{}, body...)
		asm.got++
	}
	if asm.got < len(asm.chunks) {
		return
	}
	delete(d.pending, h.OrigID)
	delete(d.respAsm, h.OrigID)
	d.eng.Cancel(p.timer)
	d.Counters.Inc("blk_completed", 1)
	if d.Tracer.Enabled() {
		d.Tracer.End(d.Tracer.Take(trace.FlowKey{
			Kind: FlowBlkComp, A: trace.Key48(d.port.LocalMAC()), B: h.OrigID,
		}))
		d.Tracer.End(p.span)
	}
	var resp []byte
	for _, c := range asm.chunks {
		resp = append(resp, c...)
	}
	p.done(resp, nil)
}
