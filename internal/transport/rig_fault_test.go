package transport

import (
	"bytes"
	"errors"
	"testing"

	"vrio/internal/link"
	"vrio/internal/sim"
)

// These tests exercise the §4.5 retransmission machinery over the REAL
// datapath — pooled NIC rings, wire serialization, FCS checks — by
// attaching fault injectors directly to the rig's cable, instead of the
// synthetic fabric the unit tests use.

// frameScript is a per-frame TxFault driven by the frame's arrival index.
type frameScript struct {
	n  int
	fn func(i int, frame []byte) link.FaultVerdict
}

func (s *frameScript) Apply(frame []byte) link.FaultVerdict {
	v := s.fn(s.n, frame)
	s.n++
	return v
}

// dropAll loses every frame on the wire.
func dropAll() link.TxFault {
	return &frameScript{fn: func(int, []byte) link.FaultVerdict {
		return link.FaultVerdict{Action: link.FaultDrop}
	}}
}

// delayFrame adds extra in-flight delay to frame idx only.
func delayFrame(idx int, extra sim.Time) link.TxFault {
	return &frameScript{fn: func(i int, _ []byte) link.FaultVerdict {
		if i == idx {
			return link.FaultVerdict{Extra: extra}
		}
		return link.FaultVerdict{}
	}}
}

// TestRigMaxRetransmitsExhaustion: with the client->host wire eating every
// frame, the driver retransmits on the doubling timeout until the budget is
// spent, then raises exactly one device error to the guest.
func TestRigMaxRetransmitsExhaustion(t *testing.T) {
	r := NewRigConfig(Config{MaxRetransmits: 3})
	r.Cable.AtoB.SetFault(dropAll())

	calls := 0
	var gotErr error
	r.Driver.SendBlk(2, 1, []byte("doomed"), func(resp []byte, err error) {
		calls++
		gotErr = err
	})
	r.Step()

	if calls != 1 {
		t.Fatalf("completion ran %d times, want exactly 1", calls)
	}
	if !errors.Is(gotErr, ErrDeviceError) {
		t.Errorf("err = %v, want ErrDeviceError", gotErr)
	}
	if rt := r.Driver.Counters.Get("retransmits"); rt != 3 {
		t.Errorf("retransmits = %d, want 3 (the budget)", rt)
	}
	if de := r.Driver.Counters.Get("device_errors"); de != 1 {
		t.Errorf("device_errors = %d, want 1", de)
	}
	if r.Driver.InFlightBlk() != 0 {
		t.Error("failed request still pending")
	}
	// 10+20+40+80 ms: the initial attempt plus three doubled retries.
	if now := r.Eng.Now(); now < 150*sim.Millisecond || now > 151*sim.Millisecond {
		t.Errorf("gave up at %v, want just past 150ms (10+20+40+80 doubling)", now)
	}
	// Every attempt died on the wire, accounted as injected drops.
	if d := r.Cable.AtoB.Drops.Get(link.DropInjected); d != 4 {
		t.Errorf("injected drops = %d, want 4 (initial + 3 retries)", d)
	}
}

// TestRigStaleLateRetransmittedResponse: the first response is jittered past
// the retransmit timeout, so the driver retransmits and the endpoint serves
// twice. The fresh response completes the request; the late original arrives
// afterwards under a superseded ReqID and must be discarded as stale.
func TestRigStaleLateRetransmittedResponse(t *testing.T) {
	r := NewRig()
	r.Cable.BtoA.SetFault(delayFrame(0, r.P.RetransmitTimeout+2*sim.Millisecond))

	calls := 0
	r.Driver.SendBlk(2, 1, []byte("late"), func(resp []byte, err error) {
		calls++
		if err != nil || string(resp) != "late" {
			t.Errorf("resp=%q err=%v", resp, err)
		}
	})
	r.Step()

	if calls != 1 {
		t.Fatalf("completion ran %d times, want exactly 1", calls)
	}
	if rt := r.Driver.Counters.Get("retransmits"); rt != 1 {
		t.Errorf("retransmits = %d, want 1", rt)
	}
	if st := r.Driver.Counters.Get("stale"); st != 1 {
		t.Errorf("stale = %d, want 1 (the late first response)", st)
	}
	if r.Driver.InFlightBlk() != 0 {
		t.Error("request still pending")
	}
}

// TestRigOutOfOrderChunkReassembly: a multi-chunk request whose first chunk
// is delayed on the wire arrives 1,2,3,4,0 at the endpoint; reassembly must
// still produce the original payload, with no retransmission needed.
func TestRigOutOfOrderChunkReassembly(t *testing.T) {
	r := NewRigConfig(Config{MaxChunk: 1000})
	// 2µs is far below the 10ms retransmit timeout but well above the
	// back-to-back serialization gap, so chunk 0 arrives last.
	r.Cable.AtoB.SetFault(delayFrame(0, 2*sim.Microsecond))

	req := make([]byte, 4500) // 5 chunks of <=1000B, each its own frame
	for i := range req {
		req[i] = byte(i * 13)
	}
	var got []byte
	calls := 0
	r.Driver.SendBlk(2, 1, req, func(resp []byte, err error) {
		calls++
		if err != nil {
			t.Errorf("err: %v", err)
		}
		got = append([]byte{}, resp...)
	})
	r.Step()

	if calls != 1 {
		t.Fatalf("completion ran %d times, want exactly 1", calls)
	}
	if !bytes.Equal(got, req) {
		t.Fatal("out-of-order chunks reassembled to the wrong payload")
	}
	if rt := r.Driver.Counters.Get("retransmits"); rt != 0 {
		t.Errorf("retransmits = %d, want 0 (reordering is not loss)", rt)
	}
	if r.Endpoint.PendingRequests() != 0 {
		t.Error("endpoint leaked a partial assembly")
	}
}

// TestRigCorruptionTriggersRetransmit: a request frame corrupted in flight
// dies at the FCS check and never reaches the endpoint; the driver recovers
// it by retransmission exactly as if it were lost.
func TestRigCorruptionTriggersRetransmit(t *testing.T) {
	r := NewRig()
	r.Cable.AtoB.SetFault(&frameScript{fn: func(i int, frame []byte) link.FaultVerdict {
		if i == 0 {
			frame[len(frame)/2] ^= 0x40
			return link.FaultVerdict{Action: link.FaultCorrupt}
		}
		return link.FaultVerdict{}
	}})

	calls := 0
	r.Driver.SendBlk(2, 1, []byte("bitrot"), func(resp []byte, err error) {
		calls++
		if err != nil || string(resp) != "bitrot" {
			t.Errorf("resp=%q err=%v", resp, err)
		}
	})
	r.Step()

	if calls != 1 {
		t.Fatalf("completion ran %d times, want exactly 1", calls)
	}
	if d := r.Cable.AtoB.Drops.Get(link.DropCorruptFCS); d != 1 {
		t.Errorf("corrupt_fcs drops = %d, want 1", d)
	}
	if rt := r.Driver.Counters.Get("retransmits"); rt != 1 {
		t.Errorf("retransmits = %d, want 1", rt)
	}
}
