package cost

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.2f, want %.2f (±%.2f)", name, got, want, tol)
	}
}

// Figure 1: every CPU pair below the diagonal, every NIC pair on/above it.
func TestFigure1Separation(t *testing.T) {
	for _, p := range CPUPairs() {
		if p.AboveDiagonal() {
			t.Errorf("CPU pair %s above the diagonal (cost %.2f, capability %.2f)",
				p.Name, p.CostRatio(), p.CapabilityRatio())
		}
	}
	for _, p := range NICPairs() {
		if p.CapabilityRatio() < p.CostRatio() {
			t.Errorf("NIC pair %s below the diagonal (cost %.2f, capability %.2f)",
				p.Name, p.CostRatio(), p.CapabilityRatio())
		}
	}
}

// The paper's two worked examples.
func TestFigure1WorkedExamples(t *testing.T) {
	cpu := CPUPairs()[0]
	approx(t, "E7 cost ratio", cpu.CostRatio(), 1.51, 0.01)
	approx(t, "E7 core ratio", cpu.CapabilityRatio(), 1.25, 0.01)
	nic := NICPairs()[0]
	approx(t, "Mellanox cost ratio", nic.CostRatio(), 2.0, 0.01)
	approx(t, "Mellanox bw ratio", nic.CapabilityRatio(), 4.0, 0.01)
}

// Table 1's totals, memory sizes, and bandwidth sufficiency.
func TestTable1Servers(t *testing.T) {
	cases := []struct {
		s        Server
		price    float64
		memoryGB int
		gbps     float64
	}{
		{ElvisServer(), 44465, 288, 40},
		{VMHostServer(), 46994, 432, 80},
		{LightIOHostServer(), 26037, 64, 160},
		{HeavyIOHostServer(), 44291, 64, 320},
	}
	for _, c := range cases {
		approx(t, c.s.Name+" price", c.s.Price(), c.price, 1)
		if got := c.s.MemoryGB(); got != c.memoryGB {
			t.Errorf("%s memory = %dGB, want %d", c.s.Name, got, c.memoryGB)
		}
		approx(t, c.s.Name+" Gbps", c.s.GbpsTotal(), c.gbps, 0.01)
		// The paper's own Table 1 allows a <1% nominal shortfall (required
		// 160.31 vs installed 160.00 on the light IOhost).
		if c.s.GbpsTotal() < c.s.GbpsRequired*0.99 {
			t.Errorf("%s installed %.1f Gbps below required %.1f",
				c.s.Name, c.s.GbpsTotal(), c.s.GbpsRequired)
		}
	}
}

// §3's bandwidth arithmetic: 4x18 cores x 380 Mbps = 26.72 Gbps (unscaled),
// x1.5 = 40.08 for a vRIO VMhost.
func TestRequiredGbps(t *testing.T) {
	approx(t, "elvis required", RequiredGbpsVMHost(4, 18, 1), 27.36, 0.01)
	// The paper quotes 26.72 using 4x18 cores but with 1/3 as sidecores the
	// effective requirement differs slightly; both stay under 3x10G ports.
	if RequiredGbpsVMHost(4, 18, 1) > 30 {
		t.Error("elvis server needs more than its three switch-connected 10G ports")
	}
	approx(t, "vmhost required", RequiredGbpsVMHost(4, 18, 1.5), 41.04, 0.01)
}

// Table 2: -10% and -13%.
func TestTable2RackPrices(t *testing.T) {
	r3 := Rack3()
	approx(t, "3-rack elvis", r3.ElvisPrice, 133395, 1)
	approx(t, "3-rack vrio", r3.VRIOPrice, 120025, 1)
	approx(t, "3-rack diff", r3.Diff(), -0.10, 0.005)

	r6 := Rack6()
	approx(t, "6-rack elvis", r6.ElvisPrice, 266790, 1)
	approx(t, "6-rack vrio", r6.VRIOPrice, 232267, 1)
	approx(t, "6-rack diff", r6.Diff(), -0.13, 0.005)
}

// Figure 3: the consolidation sweep spans roughly 8%-38% savings.
func TestFigure3Range(t *testing.T) {
	rows := Figure3()
	if len(rows) != (3+3)+(6+6) {
		t.Fatalf("rows = %d", len(rows))
	}
	minSave, maxSave := 1.0, 0.0
	for _, r := range rows {
		save := 1 - r.PriceRel
		if save <= 0 {
			t.Errorf("%s %s %s: vRIO not cheaper (ratio %.3f)", r.Rack, r.Drive, r.Ratio, r.PriceRel)
		}
		if save < minSave {
			minSave = save
		}
		if save > maxSave {
			maxSave = save
		}
	}
	if minSave < 0.05 || minSave > 0.11 {
		t.Errorf("min saving = %.1f%%, want ≈8%%", minSave*100)
	}
	if maxSave < 0.34 || maxSave > 0.42 {
		t.Errorf("max saving = %.1f%%, want ≈38%%", maxSave*100)
	}
}

// Figure 3's monotonicity: more consolidation, more savings.
func TestFigure3Monotone(t *testing.T) {
	rack := Rack6()
	prev := math.Inf(1)
	for v := 6; v >= 1; v-- {
		ratio, _, _ := SSDConsolidation(rack, PriceSSD6T4, 6, v)
		if ratio >= prev {
			t.Errorf("consolidating to %d drives did not reduce the ratio (%.3f >= %.3f)",
				v, ratio, prev)
		}
		prev = ratio
	}
}

// The paper's quoted vRIO totals at the sweep extremes of the 6-server
// rack: $311K (6=>6 smaller) and $246K (6=>1 smaller).
func TestFigure3PaperAnchors(t *testing.T) {
	_, _, v66 := SSDConsolidation(Rack6(), PriceSSD3T2, 6, 6)
	approx(t, "6=>6 smaller vrio total", v66, 310745, 10)
	_, _, v61 := SSDConsolidation(Rack6(), PriceSSD3T2, 6, 1)
	approx(t, "6=>1 smaller vrio total", v61, 246094, 10)
}

func TestSSDConsolidationValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid consolidation accepted")
		}
	}()
	SSDConsolidation(Rack3(), PriceSSD3T2, 2, 3)
}

func TestExtraNICScaling(t *testing.T) {
	// 1-3 drives: one NIC; 4-6 drives: two NICs.
	_, _, v3 := SSDConsolidation(Rack6(), PriceSSD3T2, 6, 3)
	_, _, v4 := SSDConsolidation(Rack6(), PriceSSD3T2, 6, 4)
	delta := v4 - v3
	if math.Abs(delta-(PriceSSD3T2+PriceNIC40DP)) > 1 {
		t.Errorf("4th drive should add a drive plus one 40G NIC, added %.0f", delta)
	}
}

func TestRackScaleAnchorsTable2(t *testing.T) {
	// RackScale must reproduce Table 2's two rows exactly.
	for _, tc := range []struct {
		n    int
		want RackSetup
	}{{2, Rack3()}, {4, Rack6()}} {
		got := RackScale(tc.n, false)
		if got.ElvisPrice != tc.want.ElvisPrice || got.VRIOPrice != tc.want.VRIOPrice {
			t.Errorf("RackScale(%d): $%.0f/$%.0f, want Table 2's $%.0f/$%.0f",
				tc.n, got.ElvisPrice, got.VRIOPrice, tc.want.ElvisPrice, tc.want.VRIOPrice)
		}
		if got.ElvisServers != tc.want.ElvisServers || got.IOHosts != tc.want.IOHosts {
			t.Errorf("RackScale(%d) server counts diverge from Table 2", tc.n)
		}
	}
}

func TestIOhostsFor(t *testing.T) {
	cases := []struct{ n, heavy, light int }{
		{0, 0, 0}, {1, 0, 1}, {2, 0, 1}, {3, 1, 0}, {4, 1, 0},
		{5, 1, 1}, {6, 1, 1}, {7, 2, 0}, {8, 2, 0}, {12, 3, 0},
	}
	for _, c := range cases {
		h, l := IOhostsFor(c.n)
		if h != c.heavy || l != c.light {
			t.Errorf("IOhostsFor(%d) = %d heavy, %d light; want %d, %d", c.n, h, l, c.heavy, c.light)
		}
		// The mix must actually carry the load.
		if c.n > 0 && h*VMhostsPerHeavyIOhost+l*VMhostsPerLightIOhost < c.n {
			t.Errorf("IOhostsFor(%d) under-provisions", c.n)
		}
	}
	// One heavy must stay cheaper than the two lights it replaces.
	if HeavyIOHostServer().Price() >= 2*LightIOHostServer().Price() {
		t.Error("heavy IOhost no longer cheaper than two lights; IOhostsFor's remainder rule is stale")
	}
}

func TestRackScaleSweepAmortization(t *testing.T) {
	rows := RackScaleSweep(16)
	if len(rows) != 8 {
		t.Fatalf("sweep rows: %d", len(rows))
	}
	for i, r := range rows {
		if r.Diff >= 0 {
			t.Errorf("vRIO not cheaper at %d VMhosts: %+.1f%%", r.VMHosts, r.Diff*100)
		}
		if r.SpareDiff <= r.Diff {
			t.Errorf("spare cannot make the rack cheaper at %d VMhosts", r.VMHosts)
		}
		if i > 0 {
			// The spare's premium amortizes: its gap to the no-spare diff
			// narrows monotonically with rack size at full-heavy points.
			prev := rows[i-1]
			if r.VMHosts%4 == 0 && prev.VMHosts%4 == 0 &&
				(r.SpareDiff-r.Diff) > (prev.SpareDiff-prev.Diff)+1e-9 {
				t.Errorf("spare premium grew from %d to %d VMhosts", prev.VMHosts, r.VMHosts)
			}
		}
	}
	// At scale the spare'd rack must still beat Elvis.
	last := rows[len(rows)-1]
	if last.SpareDiff >= 0 {
		t.Errorf("16-VMhost rack with spare not cheaper than Elvis: %+.1f%%", last.SpareDiff*100)
	}
}
