// Package cost implements §3's cost-effectiveness analysis: the CPU-vs-NIC
// upgrade-price scatter (Figure 1), the Dell R930 server configurations
// (Table 1), the rack-level Elvis-vs-vRIO comparison (Table 2), and the SSD
// consolidation sweep (Figure 3).
//
// Component prices are embedded as data. The Dell/Intel/Mellanox numbers
// the paper states explicitly are used verbatim; the Figure 1 scatter
// additionally embeds a snapshot of 2015-era adjacent CPU/NIC pairs
// reconstructed from public price lists (the paper's exact list is not
// reproduced in the text — DESIGN.md records this substitution).
package cost

import "fmt"

// Pair is one "adjacent" upgrade: two components identical except for
// capability (cores or bandwidth), per §3's adjacency definition.
type Pair struct {
	Name         string
	LowPrice     float64
	HighPrice    float64
	LowCapacity  float64 // cores or Gbps
	HighCapacity float64
}

// CostRatio is the x-axis of Figure 1 (added cost).
func (p Pair) CostRatio() float64 { return p.HighPrice / p.LowPrice }

// CapabilityRatio is the y-axis of Figure 1 (added hardware).
func (p Pair) CapabilityRatio() float64 { return p.HighCapacity / p.LowCapacity }

// AboveDiagonal reports whether the upgrade gains more capability than it
// costs (NICs in Figure 1 are above; CPUs below).
func (p Pair) AboveDiagonal() bool { return p.CapabilityRatio() > p.CostRatio() }

// CPUPairs is the Figure 1 CPU data: adjacent Xeon pairs. The first entry
// is the paper's worked example (E7-8850 v2 -> E7-8870 v2).
func CPUPairs() []Pair {
	return []Pair{
		{"E7-8850v2->E7-8870v2", 3059, 4616, 12, 15},
		{"E5-2620v3->E5-2630v3", 417, 667, 6, 8},
		{"E5-2630v3->E5-2650v3", 667, 1166, 8, 10},
		{"E5-2650v3->E5-2660v3", 1166, 1445, 10, 10 * 1.05}, // clock-adjusted
		{"E5-2660v3->E5-2680v3", 1445, 1745, 10, 12},
		{"E5-2680v3->E5-2690v3", 1745, 2090, 12, 12 * 1.08},
		{"E5-2683v3->E5-2695v3", 1846, 2424, 14, 14 * 1.10},
		{"E5-2695v3->E5-2698v3", 2424, 3226, 14, 16},
		{"E5-2698v3->E5-2699v3", 3226, 4115, 16, 18},
		{"E7-4820v3->E7-4830v3", 1502, 2170, 10, 12},
		{"E7-4850v3->E7-8860v3", 3003, 4061, 14, 16},
		{"E7-8870v3->E7-8890v3", 5896, 7174, 18, 18 * 1.15},
	}
}

// NICPairs is the Figure 1 NIC data; the first entry is the paper's worked
// Mellanox example (2x10GbE ConnectX-3 -> 2x40GbE ConnectX-3).
func NICPairs() []Pair {
	return []Pair{
		{"MCX312B(2x10G)->MCX314A(2x40G)", 560, 1121, 20, 80},
		{"Intel X520(2x10G)->XL710(2x40G)", 400, 583, 20, 80},
		{"Chelsio T520(2x10G)->T580(2x40G)", 505, 960, 20, 80},
		{"Emulex OCe14102(2x10G)->OCe14401(1x40G)", 459, 630, 20, 40},
		{"SolarFlare SFN7122F(2x10G)->SFN7142Q(2x40G)", 795, 1355, 20, 80},
		{"HotLava 2x10G->4x10G", 470, 705, 20, 40},
		{"Dell X520(2x10G)->X710(4x10G)", 435, 640, 20, 40},
		{"Mellanox CX4(1x25G)->CX4(1x50G)", 420, 630, 25, 50},
	}
}

// --- Table 1 ---

// Component prices for the Dell PowerEdge R930 (paper Table 1, Dell's
// July 2015 configurator).
const (
	PriceBase    = 6407.0
	PriceCPU18c  = 8006.0 // 18-core 2.5GHz Xeon E7-8890 v3
	PriceDIMM8   = 172.0
	PriceDIMM16  = 273.0
	PriceNIC10DP = 560.0  // Mellanox 2x10GbE dual port, incl. cable
	PriceNIC40DP = 1121.0 // Mellanox 2x40GbE dual port, incl. cable
)

// SSD prices (§3: FusionIO SX300).
const (
	PriceSSD3T2 = 12706.0 // 3.2 TB
	PriceSSD6T4 = 24063.0 // 6.4 TB
)

// Server is one R930 configuration row of Table 1.
type Server struct {
	Name    string
	CPUs    int
	DIMM8   int
	DIMM16  int
	NIC10DP int
	NIC40DP int
	// GbpsRequired is the bandwidth the configuration must sustain.
	GbpsRequired float64
}

// Price totals the configuration.
func (s Server) Price() float64 {
	return PriceBase +
		float64(s.CPUs)*PriceCPU18c +
		float64(s.DIMM8)*PriceDIMM8 +
		float64(s.DIMM16)*PriceDIMM16 +
		float64(s.NIC10DP)*PriceNIC10DP +
		float64(s.NIC40DP)*PriceNIC40DP
}

// GbpsTotal reports installed NIC bandwidth.
func (s Server) GbpsTotal() float64 {
	return float64(s.NIC10DP)*20 + float64(s.NIC40DP)*80
}

// MemoryGB reports installed memory.
func (s Server) MemoryGB() int { return s.DIMM8*8 + s.DIMM16*16 }

// The four Table 1 configurations.
func ElvisServer() Server {
	return Server{Name: "elvis", CPUs: 4, DIMM16: 18, NIC10DP: 2, GbpsRequired: 26.72}
}
func VMHostServer() Server {
	return Server{Name: "vmhost", CPUs: 4, DIMM8: 2, DIMM16: 26, NIC40DP: 1, GbpsRequired: 40.08}
}
func LightIOHostServer() Server {
	return Server{Name: "light-iohost", CPUs: 2, DIMM8: 8, NIC40DP: 2, GbpsRequired: 160.31}
}
func HeavyIOHostServer() Server {
	return Server{Name: "heavy-iohost", CPUs: 4, DIMM8: 8, NIC40DP: 4, GbpsRequired: 320.63}
}

// PerCoreMbps is §3's cloud-measured per-core network rate upper bound.
const PerCoreMbps = 380.0

// RequiredGbpsVMHost derives a host's required bandwidth from its core
// count and the VM multiplier (1 for Elvis, 1.5 for a vRIO VMhost that
// absorbed the IOhost's VMs).
func RequiredGbpsVMHost(cpus, coresPerCPU int, multiplier float64) float64 {
	return float64(cpus*coresPerCPU) * PerCoreMbps / 1000 * multiplier
}

// --- Table 2 ---

// RackSetup is one Table 2 row.
type RackSetup struct {
	Name         string
	ElvisPrice   float64
	VRIOPrice    float64
	ElvisServers int
	VMHosts      int
	IOHosts      int
}

// Diff reports the relative price difference (negative = vRIO cheaper).
func (r RackSetup) Diff() float64 { return r.VRIOPrice/r.ElvisPrice - 1 }

// Rack3 is the 3-server comparison (3 Elvis vs 2 VMhosts + 1 light IOhost).
func Rack3() RackSetup {
	return RackSetup{
		Name:         "R930 x 3",
		ElvisPrice:   3 * ElvisServer().Price(),
		VRIOPrice:    2*VMHostServer().Price() + LightIOHostServer().Price(),
		ElvisServers: 3, VMHosts: 2, IOHosts: 1,
	}
}

// Rack6 is the 6-server comparison (6 Elvis vs 4 VMhosts + 1 heavy IOhost).
func Rack6() RackSetup {
	return RackSetup{
		Name:         "R930 x 6",
		ElvisPrice:   6 * ElvisServer().Price(),
		VRIOPrice:    4*VMHostServer().Price() + HeavyIOHostServer().Price(),
		ElvisServers: 6, VMHosts: 4, IOHosts: 1,
	}
}

// --- Rack-scale amortization ("Table 5": Table 2 generalized to NumIOhosts) ---

// Fan-in capacities implied by Table 1's required-vs-installed bandwidth:
// a heavy IOhost (320 Gbps installed) serves four 40 Gbps VMhosts, a light
// one (160 Gbps) serves two.
const (
	VMhostsPerLightIOhost = 2
	VMhostsPerHeavyIOhost = 4
)

// IOhostsFor returns the cheapest IOhost mix able to serve n VMhosts: a
// heavy IOhost per full group of four, a light one for a remainder of one
// or two, and a heavy for a remainder of three (one heavy is cheaper than
// two lights).
func IOhostsFor(vmhosts int) (heavy, light int) {
	if vmhosts <= 0 {
		return 0, 0
	}
	heavy = vmhosts / VMhostsPerHeavyIOhost
	switch vmhosts % VMhostsPerHeavyIOhost {
	case 0:
	case 3:
		heavy++
	default:
		light++
	}
	return heavy, light
}

// RackScale prices a vRIO rack of n VMhosts — plus the IOhost mix from
// IOhostsFor, plus optionally one spare IOhost of the largest deployed kind
// (the §4.6 fault-tolerance fallback, which the rack control plane turns
// into N-way survivorship) — against the Elvis rack with the same guest
// capacity: ceil(1.5*n) Elvis servers, since a VMhost absorbs the paper's
// 1.5x VM multiplier. RackScale(2,false) and RackScale(4,false) reproduce
// Table 2's two rows exactly.
func RackScale(vmhosts int, spare bool) RackSetup {
	heavy, light := IOhostsFor(vmhosts)
	vrio := float64(vmhosts)*VMHostServer().Price() +
		float64(heavy)*HeavyIOHostServer().Price() +
		float64(light)*LightIOHostServer().Price()
	ioHosts := heavy + light
	name := fmt.Sprintf("vmhosts=%d", vmhosts)
	if spare {
		if heavy > 0 {
			vrio += HeavyIOHostServer().Price()
		} else {
			vrio += LightIOHostServer().Price()
		}
		ioHosts++
		name += "+spare"
	}
	elvisServers := (3*vmhosts + 1) / 2 // ceil(1.5 n)
	return RackSetup{
		Name:         name,
		ElvisPrice:   float64(elvisServers) * ElvisServer().Price(),
		VRIOPrice:    vrio,
		ElvisServers: elvisServers,
		VMHosts:      vmhosts,
		IOHosts:      ioHosts,
	}
}

// RackScaleRow is one point of the rack-scale sweep.
type RackScaleRow struct {
	VMHosts      int
	IOHosts      int     // without the spare
	Diff         float64 // vRIO vs Elvis, no spare
	SpareDiff    float64 // vRIO with one spare IOhost vs Elvis
	PerVMhostUSD float64 // vRIO price per VMhost served, spare excluded
}

// RackScaleSweep generates the rack-scale amortization table: the Table 2
// argument extended across rack sizes, with and without a §4.6 spare. The
// spare's premium shrinks as more VMhosts amortize it — the paper's cost
// case only improves at scale.
func RackScaleSweep(maxVMhosts int) []RackScaleRow {
	var rows []RackScaleRow
	for n := 2; n <= maxVMhosts; n += 2 {
		base := RackScale(n, false)
		withSpare := RackScale(n, true)
		rows = append(rows, RackScaleRow{
			VMHosts:      n,
			IOHosts:      base.IOHosts,
			Diff:         base.Diff(),
			SpareDiff:    withSpare.Diff(),
			PerVMhostUSD: base.VRIOPrice / float64(n),
		})
	}
	return rows
}

// --- Figure 3 ---

// SSDConsolidation computes the vRIO/Elvis price ratio for an e=>v drive
// consolidation on the given rack, with the given drive price. Per §3,
// consolidating up to three drives at the IOhost needs one extra 2x40G NIC,
// up to six needs two (the SX300 delivers 21.6 Gbps).
func SSDConsolidation(rack RackSetup, drivePrice float64, elvisDrives, vrioDrives int) (ratio float64, elvisTotal, vrioTotal float64) {
	if vrioDrives < 1 || elvisDrives < vrioDrives {
		panic(fmt.Sprintf("cost: bad consolidation %d=>%d", elvisDrives, vrioDrives))
	}
	extraNICs := (vrioDrives + 2) / 3
	elvisTotal = rack.ElvisPrice + float64(elvisDrives)*drivePrice
	vrioTotal = rack.VRIOPrice + float64(vrioDrives)*drivePrice + float64(extraNICs)*PriceNIC40DP
	return vrioTotal / elvisTotal, elvisTotal, vrioTotal
}

// Figure3Row is one consolidation point.
type Figure3Row struct {
	Rack      string
	Drive     string
	Ratio     string // e.g. "3=>2"
	PriceRel  float64
	VRIOTotal float64
}

// Figure3 sweeps the paper's consolidation ratios for both drive sizes and
// both racks.
func Figure3() []Figure3Row {
	var rows []Figure3Row
	racks := []RackSetup{Rack3(), Rack6()}
	drives := []struct {
		name  string
		price float64
	}{{"3.2TB", PriceSSD3T2}, {"6.4TB", PriceSSD6T4}}
	for _, rack := range racks {
		e := rack.ElvisServers
		for _, d := range drives {
			for v := e; v >= 1; v-- {
				ratio, _, vrioTotal := SSDConsolidation(rack, d.price, e, v)
				rows = append(rows, Figure3Row{
					Rack:      rack.Name,
					Drive:     d.name,
					Ratio:     fmt.Sprintf("%d=>%d", e, v),
					PriceRel:  ratio,
					VRIOTotal: vrioTotal,
				})
			}
		}
	}
	return rows
}
