package cluster

import (
	"fmt"

	"vrio/internal/cpu"
	"vrio/internal/iohyp"
	"vrio/internal/link"
	"vrio/internal/sim"
	"vrio/internal/trace"
)

// vmCounterNames are the per-VM virtualization-event counters every model
// maintains (the Table 3 columns).
var vmCounterNames = []string{"exits", "guest_irqs", "irq_injections", "host_irqs"}

// iohypCounterNames are the I/O hypervisor counters worth sampling.
var iohypCounterNames = []string{
	"msgs", "net_fwd_local", "net_fwd_uplink", "net_in",
	"blk_reqs", "iohost_irqs", "interpose_drops", "copy_bytes",
}

// registerMetrics populates the testbed's registry from the components Build
// just assembled. Everything is registered as a gauge (or an observed
// histogram) over state the components already maintain, so instrumentation
// adds no work to any hot path — cost is paid only when a snapshot reads the
// closures.
func (tb *Testbed) registerMetrics() {
	r := tb.Metrics
	for i, g := range tb.Guests {
		comp := fmt.Sprintf("vm%d", i)
		vm := g.VM
		for _, name := range vmCounterNames {
			r.Gauge(comp, name, func() float64 { return float64(vm.Counters.Get(name)) })
		}
	}
	for i, sc := range tb.Sidecores {
		comp := fmt.Sprintf("sidecore%d", i)
		r.Gauge(comp, "busy_ns", func() float64 { return float64(sc.BusyTime()) })
		r.Gauge(comp, "poll_ns", func() float64 { return float64(sc.Accounted(cpu.KindPoll)) })
		r.ObserveHistogram(comp, "wait_ns", &sc.Wait)
	}
	r.Gauge("switch", "forwarded", func() float64 { return float64(tb.Switch.Forwarded) })
	r.Gauge("switch", "flooded", func() float64 { return float64(tb.Switch.Flooded) })
	for reason := link.DropReason(0); reason < link.NumDropReasons; reason++ {
		reason := reason
		r.Gauge("switch", "drops_"+reason.String(),
			func() float64 { return float64(tb.Switch.Drops.Get(reason)) })
	}
	for i, h := range tb.IOHyps {
		registerIOhyp(r, IOhypComponent(i), h)
	}
	if h := tb.SecondaryIOHyp; h != nil {
		// The legacy cold-standby mirror reports under slot 1's name — it is
		// the rack's second IOhost, it just serves nothing until failover.
		registerIOhyp(r, IOhypComponent(1), h)
	}
	for i, dev := range tb.BlockDevices {
		comp := fmt.Sprintf("blkdev%d", i)
		r.Gauge(comp, "served", func() float64 { return float64(dev.Served) })
		r.Gauge(comp, "queue", func() float64 { return float64(dev.QueueLen()) })
		r.Gauge(comp, "inflight", func() float64 { return float64(dev.InFlight()) })
	}
	for i, s := range tb.BlockSchedulers {
		comp := fmt.Sprintf("blkdev%d", i)
		r.Gauge(comp, "deferred", func() float64 { return float64(s.Deferred) })
	}
	for i, c := range tb.VRIOClients {
		comp := fmt.Sprintf("vm%d-vf", i)
		// Read through the client: migration swaps the port, and the gauge
		// should follow the VF the client currently transmits on.
		r.Gauge(comp, "rx_frames", func() float64 { return float64(c.Port.VF().RxFrames) })
		r.Gauge(comp, "tx_frames", func() float64 { return float64(c.Port.VF().TxFrames) })
		r.Gauge(comp, "drops", func() float64 { return float64(c.Port.VF().Drops) })
	}
	if tb.Spec.BlkQueues > 1 {
		for i, c := range tb.VRIOClients {
			i, c := i, c
			comp := fmt.Sprintf("vm%d-blkq", i)
			for q := 0; q < tb.Spec.BlkQueues; q++ {
				q := q
				// Read through the serving IOhost: a re-home moves the
				// registration (and its queue tables) to the survivor.
				r.Gauge(comp, fmt.Sprintf("q%d_depth", q), func() float64 {
					hyp := tb.IOHyps[tb.ClientIOhost[i]]
					return float64(hyp.BlkQueueDepth(c.TransportMAC(), c.BlkDeviceID(), q))
				})
				r.Gauge(comp, fmt.Sprintf("q%d_worker", q), func() float64 {
					hyp := tb.IOHyps[tb.ClientIOhost[i]]
					return float64(hyp.BlkQueueWorker(c.TransportMAC(), c.BlkDeviceID(), q))
				})
			}
		}
	}
	if pl := tb.Fault; pl.Active() {
		for _, name := range faultCounterNames {
			name := name
			r.Gauge("fault", name, func() float64 { return float64(pl.Counters.Get(name)) })
		}
		r.Gauge("fault", "wire_delivered", func() float64 { return float64(pl.WireDelivered()) })
		r.Gauge("fault", "wire_offered", func() float64 { return float64(pl.WireOffered()) })
		for reason := link.DropReason(0); reason < link.NumDropReasons; reason++ {
			reason := reason
			r.Gauge("fault", "wire_drops_"+reason.String(),
				func() float64 { return float64(pl.WireDrops(reason)) })
		}
	}
}

// faultCounterNames are the fault plan's injection tallies, exported under
// the "fault" component whenever Build armed any injection site.
var faultCounterNames = []string{
	"frames_dropped", "frames_corrupted", "frames_jittered",
	"frames_reordered", "flaps", "stalls", "ring_squeezes",
}

// IOhypComponent names IOhost i's metrics component: "iohyp" for the first
// (the name experiments already read), then "iohyp2", "iohyp3", ...,
// matching the iohost2... host naming. The rack controller reads per-IOhost
// busy time through these components.
func IOhypComponent(i int) string {
	if i == 0 {
		return "iohyp"
	}
	return fmt.Sprintf("iohyp%d", i+1)
}

// registerIOhyp publishes one I/O hypervisor's counters, channel drops, and
// sidecore busy time under comp.
func registerIOhyp(r *trace.Registry, comp string, h *iohyp.IOHypervisor) {
	for _, name := range iohypCounterNames {
		r.Gauge(comp, name, func() float64 { return float64(h.Counters.Get(name)) })
	}
	r.Gauge(comp, "channel_drops", func() float64 { return float64(h.ChannelDrops()) })
	r.Gauge(comp, "busy_ns", func() float64 { return float64(h.BusyTime()) })
	r.Gauge(comp, "utilization", h.Utilization)
}

// StartMetricsSampling snapshots every registered metric each interval of
// sim time via the engine's ticker and returns the accumulating series.
// Sampling is driven by the same deterministic event loop as the workload,
// so the series is byte-identical across same-seed runs.
func (tb *Testbed) StartMetricsSampling(interval sim.Time) *trace.Timeseries {
	ts := tb.Metrics.NewTimeseries()
	tb.Eng.Ticker(interval, func() { ts.Sample(tb.Eng.Now()) })
	return ts
}
