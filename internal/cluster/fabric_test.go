package cluster

import (
	"fmt"
	"strings"
	"testing"

	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

// testFabricSpec is a small 3-rack vRIO fabric the equivalence and traffic
// tests share.
func testFabricSpec() FabricSpec {
	return FabricSpec{
		Rack: Spec{
			Model:        core.ModelVRIO,
			VMHosts:      1,
			VMsPerHost:   2,
			StationPerVM: true,
			Seed:         7,
		},
		NumRacks:  3,
		NumSpines: 2,
	}
}

// crossRackRR starts one Netperf RR per rack whose station lives in rack r
// and whose server guest lives in rack (r+1)%N — every transaction crosses
// the spine twice. Returns the RRs (indexed by client rack) and the
// per-rack collector lists for RunMeasured.
func crossRackRR(f *Fabric) ([]*workload.RR, [][]Measurable) {
	n := len(f.Racks)
	rrs := make([]*workload.RR, n)
	perRack := make([][]Measurable, n)
	for r := 0; r < n; r++ {
		server := f.Racks[(r+1)%n]
		workload.InstallRRServer(server.Guests[0], server.P.NetperfRRProcessCost)
		rr := workload.NewRR(f.Racks[r].StationFor(0), server.Guests[0].MAC(), 16)
		rr.Start()
		rrs[r] = rr
		// The RR's results mutate on the client station's engine: rack r.
		perRack[r] = append(perRack[r], &rr.Results)
	}
	return rrs, perRack
}

// fabricFingerprint serializes everything an experiment could observe:
// per-RR ops and latency stats, per-shard event counts, and the fabric
// switches' forwarding counters. Any divergence between runs shows up here.
func fabricFingerprint(f *Fabric, rrs []*workload.RR) string {
	var b strings.Builder
	for i, rr := range rrs {
		fmt.Fprintf(&b, "rr%d ops=%d errs=%d mean=%.3f p99=%d\n",
			i, rr.Results.Ops, rr.Results.Errors, rr.Results.Latency.Mean(),
			rr.Results.Latency.Percentile(99))
	}
	for r, tb := range f.Racks {
		fmt.Fprintf(&b, "rack%d executed=%d now=%d tor_fwd=%d tor_flood=%d tor_drops=%d\n",
			r, tb.Eng.Executed(), tb.Eng.Now(), tb.Switch.Forwarded, tb.Switch.Flooded,
			tb.Switch.Drops.Total())
	}
	for s, sw := range f.Spines {
		fmt.Fprintf(&b, "spine%d fwd=%d flood=%d drops=%d\n",
			s, sw.Forwarded, sw.Flooded, sw.Drops.Total())
	}
	fmt.Fprintf(&b, "windows=%d spine_executed=%d\n", f.Group.Windows, f.SpineShard.Eng.Executed())
	return b.String()
}

func runFabricCell(t *testing.T, workers int) string {
	t.Helper()
	f, err := BuildFabric(testFabricSpec())
	if err != nil {
		t.Fatalf("BuildFabric: %v", err)
	}
	defer f.Close()
	rrs, perRack := crossRackRR(f)
	f.RunMeasured(2*sim.Millisecond, 20*sim.Millisecond, workers, perRack)
	for i, rr := range rrs {
		if rr.Results.Ops == 0 {
			t.Fatalf("workers=%d: cross-rack RR %d completed no transactions", workers, i)
		}
	}
	return fabricFingerprint(f, rrs)
}

// TestFabricShardedMatchesSerialByteIdentical is the tentpole's determinism
// contract, in the spirit of TestParallelMatchesSerialByteIdentical: the
// same fabric topology and seed must produce byte-identical observable
// output whether the shard windows execute serially or on many workers.
func TestFabricShardedMatchesSerialByteIdentical(t *testing.T) {
	serial := runFabricCell(t, 1)
	for _, workers := range []int{2, 4, 8} {
		if got := runFabricCell(t, workers); got != serial {
			t.Fatalf("workers=%d output diverged from serial run:\n--- serial ---\n%s--- workers=%d ---\n%s",
				workers, serial, workers, got)
		}
	}
}

// TestFabricCrossRackTraffic checks the data actually traverses the spine
// tier: every transaction's request and reply each cross two fabric cables.
func TestFabricCrossRackTraffic(t *testing.T) {
	f, err := BuildFabric(testFabricSpec())
	if err != nil {
		t.Fatalf("BuildFabric: %v", err)
	}
	defer f.Close()
	rrs, perRack := crossRackRR(f)
	f.RunMeasured(2*sim.Millisecond, 20*sim.Millisecond, 2, perRack)
	var spineFwd uint64
	for _, sw := range f.Spines {
		spineFwd += sw.Forwarded
		if sw.Drops.Total() != 0 {
			t.Fatalf("spine dropped %d frames", sw.Drops.Total())
		}
	}
	var ops uint64
	for _, rr := range rrs {
		ops += rr.Results.Ops
	}
	if spineFwd < 2*ops {
		t.Fatalf("spines forwarded %d frames for %d cross-rack transactions; want >= %d",
			spineFwd, ops, 2*ops)
	}
	for _, sh := range f.RackShards {
		if sh.Received == 0 {
			t.Fatalf("rack shard %d received no cross-shard messages", sh.ID)
		}
	}
}

// TestFabricIntraRackStaysLocal: a fabric whose workloads never leave their
// racks must push zero frames through the spine tier.
func TestFabricIntraRackStaysLocal(t *testing.T) {
	f, err := BuildFabric(testFabricSpec())
	if err != nil {
		t.Fatalf("BuildFabric: %v", err)
	}
	defer f.Close()
	perRack := make([][]Measurable, len(f.Racks))
	for r, tb := range f.Racks {
		workload.InstallRRServer(tb.Guests[0], tb.P.NetperfRRProcessCost)
		rr := workload.NewRR(tb.StationFor(0), tb.Guests[0].MAC(), 16)
		rr.Start()
		perRack[r] = append(perRack[r], &rr.Results)
	}
	f.RunMeasured(2*sim.Millisecond, 10*sim.Millisecond, 2, perRack)
	for s, sw := range f.Spines {
		if sw.Forwarded != 0 {
			t.Fatalf("spine %d forwarded %d frames for purely local traffic", s, sw.Forwarded)
		}
	}
}

// TestFabricSpecValidation covers the cluster-level half of the topology
// validation satellite (the link-level half lives in internal/link).
func TestFabricSpecValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*FabricSpec)
		wantSub string
	}{
		{"no racks", func(s *FabricSpec) { s.NumRacks = 0 }, "at least one rack"},
		{"negative oversubscription", func(s *FabricSpec) { s.Oversubscription = -1 }, "oversubscription"},
		{"no spines", func(s *FabricSpec) { s.NumSpines = -1 }, "spine"},
		{"host on nonexistent rack", func(s *FabricSpec) { s.HostRacks = []int{0, 1, 9} },
			"VMhost 2 assigned to nonexistent rack 9"},
		{"rack left empty", func(s *FabricSpec) { s.HostRacks = []int{0, 0, 1} }, "rack 2 has no VMhosts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := testFabricSpec()
			tc.mutate(&fs)
			_, err := BuildFabric(fs) // must error descriptively, never panic
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestFabricHostRacksPlacement: explicit placement reshapes the racks.
func TestFabricHostRacksPlacement(t *testing.T) {
	fs := testFabricSpec()
	fs.HostRacks = []int{0, 0, 1, 2} // 2 VMhosts in rack 0, 1 each in 1 and 2
	f, err := BuildFabric(fs)
	if err != nil {
		t.Fatalf("BuildFabric: %v", err)
	}
	defer f.Close()
	want := []int{2, 1, 1}
	for r, tb := range f.Racks {
		if tb.Spec.VMHosts != want[r] {
			t.Fatalf("rack %d has %d VMhosts, want %d", r, tb.Spec.VMHosts, want[r])
		}
	}
}

// TestFabricMACBlocksDisjoint: every rack's addresses live in its own block,
// and the locator maps each guest back to its rack.
func TestFabricMACBlocksDisjoint(t *testing.T) {
	f, err := BuildFabric(testFabricSpec())
	if err != nil {
		t.Fatalf("BuildFabric: %v", err)
	}
	defer f.Close()
	locate := rackLocator(len(f.Racks))
	seen := make(map[string]string)
	for r, tb := range f.Racks {
		for g, guest := range tb.Guests {
			mac := guest.MAC()
			who := fmt.Sprintf("rack%d guest%d", r, g)
			if prev, dup := seen[mac.String()]; dup {
				t.Fatalf("%s and %s share MAC %s", prev, who, mac)
			}
			seen[mac.String()] = who
			if rr, ok := locate(mac); !ok || rr != r {
				t.Fatalf("locator(%s) = (%d, %v), want (%d, true)", mac, rr, ok, r)
			}
		}
	}
}
