package cluster

import (
	"testing"

	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

// rrLatency runs Netperf RR with n VMs on one VMhost and returns the mean
// round-trip in microseconds.
func rrLatency(t *testing.T, model core.ModelName, n int) float64 {
	t.Helper()
	tb := Build(Spec{Model: model, VMsPerHost: n, Seed: 7})
	var collectors []Measurable
	var rrs []*workload.RR
	for i, g := range tb.Guests {
		workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
		rr := workload.NewRR(tb.StationFor(i), g.MAC(), 16)
		rr.Start()
		rrs = append(rrs, rr)
		collectors = append(collectors, &rr.Results)
	}
	tb.RunMeasured(5*sim.Millisecond, 50*sim.Millisecond, collectors...)
	var total float64
	var ops uint64
	for _, rr := range rrs {
		if rr.Results.Ops == 0 {
			t.Fatalf("%s: a VM completed zero transactions", model)
		}
		total += rr.Results.Latency.Mean() * float64(rr.Results.Ops)
		ops += rr.Results.Ops
	}
	return total / float64(ops) / 1000
}

func TestMultiIOhostTopology(t *testing.T) {
	// 3 IOhosts, 2 VMhosts: every VMhost cabled to every IOhost, per-IOhost
	// sidecores and metrics components all present.
	placed := []int{2, 0, 1, 2}
	tb := Build(Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 2,
		NumIOhosts: 3, IOhostSidecores: 2, NoJitter: true, Seed: 81,
		Placement: func(host, vm int) int { return placed[vm] },
	})
	if len(tb.IOHyps) != 3 || tb.IOHyps[0] != tb.IOHyp {
		t.Fatalf("IOHyps misassembled: %d entries", len(tb.IOHyps))
	}
	if len(tb.SidecoresByIOhost) != 3 || len(tb.Sidecores) != 6 {
		t.Errorf("sidecores: %d groups, %d total, want 3 and 6",
			len(tb.SidecoresByIOhost), len(tb.Sidecores))
	}
	if len(tb.channels) != 3 || len(tb.channels[1]) != 2 {
		t.Fatalf("channel matrix misassembled")
	}
	for vm, want := range placed {
		if tb.ClientIOhost[vm] != want {
			t.Errorf("vm %d homed on %d, want %d", vm, tb.ClientIOhost[vm], want)
		}
	}
	for i := 0; i < 3; i++ {
		comp := IOhypComponent(i)
		// busy_ns gauge registered per IOhost (the rebalancer's input).
		tb.Metrics.Value(comp, "busy_ns")
		tb.Metrics.Value(comp, "channel_drops")
	}
	// Each guest's traffic reaches exactly its placed IOhost.
	g := tb.Guests[1] // placed on IOhost 0
	workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
	rr := workload.NewRR(tb.StationFor(1), g.MAC(), 16)
	rr.Start()
	tb.Eng.RunUntil(5 * sim.Millisecond)
	if tb.IOHyps[0].Counters.Get("msgs") == 0 {
		t.Error("placed IOhost idle")
	}
	if tb.IOHyps[1].Counters.Get("msgs") != 0 {
		t.Error("unplaced IOhost saw traffic")
	}
}

func TestNumIOhostsValidation(t *testing.T) {
	expectPanic := func(name string, spec Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		Build(spec)
	}
	expectPanic("NumIOhosts+SecondaryIOhost", Spec{
		Model: core.ModelVRIO, NumIOhosts: 2, SecondaryIOhost: true, Seed: 1,
	})
	expectPanic("NumIOhosts on elvis", Spec{
		Model: core.ModelElvis, NumIOhosts: 2, Seed: 1,
	})
	expectPanic("Placement out of range", Spec{
		Model: core.ModelVRIO, NumIOhosts: 2, Seed: 1,
		Placement: func(host, vm int) int { return 5 },
	})
}

func TestRRAllModelsComplete(t *testing.T) {
	for _, m := range []core.ModelName{
		core.ModelOptimum, core.ModelElvis, core.ModelVRIO,
		core.ModelVRIONoPoll, core.ModelBaseline,
	} {
		lat := rrLatency(t, m, 1)
		if lat <= 0 || lat > 500 {
			t.Errorf("%s: implausible RR latency %.1fµs", m, lat)
		}
		t.Logf("%s N=1 RR latency: %.1fµs", m, lat)
	}
}

// Figure 7's anchors: optimum fastest; vRIO ≈ optimum + ~12µs;
// Elvis between them at N=1.
func TestRRLatencyOrderingN1(t *testing.T) {
	opt := rrLatency(t, core.ModelOptimum, 1)
	elvis := rrLatency(t, core.ModelElvis, 1)
	vrio := rrLatency(t, core.ModelVRIO, 1)
	base := rrLatency(t, core.ModelBaseline, 1)
	t.Logf("N=1 RR: optimum=%.1f elvis=%.1f vrio=%.1f baseline=%.1f µs", opt, elvis, vrio, base)
	if !(opt < elvis && elvis < vrio) {
		t.Errorf("ordering violated: optimum=%.1f elvis=%.1f vrio=%.1f", opt, elvis, vrio)
	}
	gap := vrio - opt
	if gap < 8 || gap > 18 {
		t.Errorf("vrio-optimum gap = %.1fµs, want ≈12µs", gap)
	}
	if base < elvis {
		t.Errorf("baseline (%.1f) should not beat elvis (%.1f)", base, elvis)
	}
}

// Elvis's latency grows faster with N (host interrupts) until vRIO wins
// (Figure 7's crossover near N=6).
func TestRRElvisVrioCrossover(t *testing.T) {
	e1, v1 := rrLatency(t, core.ModelElvis, 1), rrLatency(t, core.ModelVRIO, 1)
	e7, v7 := rrLatency(t, core.ModelElvis, 7), rrLatency(t, core.ModelVRIO, 7)
	t.Logf("N=1: elvis=%.1f vrio=%.1f; N=7: elvis=%.1f vrio=%.1f", e1, v1, e7, v7)
	if v1 <= e1 {
		t.Errorf("at N=1 vRIO (%.1f) must be slower than Elvis (%.1f)", v1, e1)
	}
	if v7 >= e7 {
		t.Errorf("at N=7 vRIO (%.1f) must be faster than Elvis (%.1f)", v7, e7)
	}
}

func TestTable3EventCounts(t *testing.T) {
	type want struct {
		exits, guestIRQ, inject, hostIRQ uint64
	}
	cases := map[core.ModelName]want{
		core.ModelOptimum:  {0, 2, 0, 0},
		core.ModelVRIO:     {0, 2, 0, 0},
		core.ModelElvis:    {0, 2, 0, 2},
		core.ModelBaseline: {3, 2, 2, 2},
	}
	for model, w := range cases {
		tb := Build(Spec{Model: model, VMsPerHost: 1, Seed: 3})
		g := tb.Guests[0]
		workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
		rr := workload.NewRR(tb.StationFor(0), g.MAC(), 16)
		rr.Start()
		rr.Results.StartMeasuring()
		tb.Eng.RunUntil(200 * sim.Millisecond)
		ops := rr.Results.Ops
		if ops == 0 {
			t.Fatalf("%s: no transactions", model)
		}
		per := func(name string) float64 {
			return float64(g.VM.Counters.Get(name)) / float64(ops)
		}
		check := func(name string, wantV uint64) {
			got := per(name)
			// Allow 15% slack for coalescing and warmup edges.
			lo, hi := float64(wantV)*0.85, float64(wantV)*1.15+0.1
			if got < lo || got > hi {
				t.Errorf("%s: %s per RR = %.2f, want ≈%d", model, name, got, wantV)
			}
		}
		check("exits", w.exits)
		check("guest_irqs", w.guestIRQ)
		check("irq_injections", w.inject)
		check("host_irqs", w.hostIRQ)
		// vRIO with polling must take zero IOhost interrupts.
		if model == core.ModelVRIO && tb.IOHyp.Counters.Get("iohost_irqs") != 0 {
			t.Errorf("vrio polling took IOhost interrupts")
		}
	}
}

func TestVRIONoPollTakesIOhostIRQs(t *testing.T) {
	tb := Build(Spec{Model: core.ModelVRIONoPoll, VMsPerHost: 1, Seed: 3})
	g := tb.Guests[0]
	workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
	rr := workload.NewRR(tb.StationFor(0), g.MAC(), 16)
	rr.Start()
	rr.Results.StartMeasuring()
	tb.Eng.RunUntil(50 * sim.Millisecond)
	if rr.Results.Ops == 0 {
		t.Fatal("no transactions")
	}
	perRR := float64(tb.IOHyp.Counters.Get("iohost_irqs")) / float64(rr.Results.Ops)
	// Table 3 says 4 per request-response (coalescing trims a little).
	if perRR < 2 || perRR > 4.5 {
		t.Errorf("iohost_irqs per RR = %.2f, want ≈4", perRR)
	}
}

func TestBlockDevicesWiredAllModels(t *testing.T) {
	for _, m := range []core.ModelName{core.ModelBaseline, core.ModelElvis, core.ModelVRIO} {
		tb := Build(Spec{Model: m, VMsPerHost: 2, WithBlock: true, Seed: 9})
		done := 0
		for _, g := range tb.Guests {
			g := g
			payload := make([]byte, 4096)
			for i := range payload {
				payload[i] = byte(i)
			}
			g.WriteBlock(80, payload, func(err error) {
				if err != nil {
					t.Errorf("%s write: %v", m, err)
				}
				g.ReadBlock(80, 8, func(data []byte, err error) {
					if err != nil || len(data) != 4096 || data[5] != 5 {
						t.Errorf("%s read-back wrong: err=%v len=%d", m, err, len(data))
					}
					done++
				})
			})
		}
		tb.Eng.RunUntil(100 * sim.Millisecond)
		if done != 2 {
			t.Errorf("%s: %d/2 block round-trips completed", m, done)
		}
	}
}

func TestScalabilityFourVMhosts(t *testing.T) {
	// The Figure 13 topology: 4 VMhosts, one IOhost, 2 sidecores.
	tb := Build(Spec{
		Model: core.ModelVRIO, VMHosts: 4, VMsPerHost: 2,
		IOhostSidecores: 2, Seed: 5,
	})
	var collectors []Measurable
	total := uint64(0)
	var rrs []*workload.RR
	for i, g := range tb.Guests {
		workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
		rr := workload.NewRR(tb.StationFor(i), g.MAC(), 16)
		rr.Start()
		rrs = append(rrs, rr)
		collectors = append(collectors, &rr.Results)
	}
	tb.RunMeasured(5*sim.Millisecond, 30*sim.Millisecond, collectors...)
	for i, rr := range rrs {
		if rr.Results.Ops == 0 {
			t.Errorf("VM %d starved", i)
		}
		total += rr.Results.Ops
	}
	if total == 0 {
		t.Fatal("no traffic across the rack")
	}
}
