package cluster

import (
	"bytes"
	"errors"
	"testing"

	"vrio/internal/blockdev"
	"vrio/internal/core"
	"vrio/internal/sim"
)

// buildVolTestbed assembles one guest with a distributed volume across
// numIO IOhosts: R replicas, write quorum W, 8 extents of 128 sectors.
func buildVolTestbed(numIO, r, w int) *Testbed {
	return Build(Spec{
		Model:              core.ModelVRIO,
		NumIOhosts:         numIO,
		VolReplicas:        r,
		VolQuorum:          w,
		VolExtentSectors:   128,
		VolCapacitySectors: 1024,
		NoJitter:           true,
		Seed:               31,
	})
}

// extentPattern is the fill byte test writes stamp into extent e.
func extentPattern(e uint64) byte { return byte(0xA0 + e) }

// writeAllExtents stamps one sector into every extent through the router
// and runs the engine until the writes complete.
func writeAllExtents(t *testing.T, tb *Testbed, vol *core.VolumeRouter) {
	t.Helper()
	spec := vol.Spec()
	data := make([]byte, tb.P.SectorSize)
	completed := 0
	for e := uint64(0); e < spec.NumExtents(); e++ {
		for i := range data {
			data[i] = extentPattern(e)
		}
		vol.Write(e*spec.ExtentSectors, data, func(err error) {
			if err != nil {
				t.Errorf("write extent: %v", err)
			}
			completed++
		})
		tb.Eng.Run()
	}
	if completed != int(spec.NumExtents()) {
		t.Fatalf("completed %d writes, want %d", completed, spec.NumExtents())
	}
}

// verifyAllExtents reads every extent back through the router and checks
// the pattern, then checks both mapped replica stores hold it too.
func verifyAllExtents(t *testing.T, tb *Testbed, vm int) {
	t.Helper()
	vol := tb.Volumes[vm]
	spec := vol.Spec()
	for e := uint64(0); e < spec.NumExtents(); e++ {
		want := make([]byte, tb.P.SectorSize)
		for i := range want {
			want[i] = extentPattern(e)
		}
		got := false
		vol.Read(e*spec.ExtentSectors, 1, func(data []byte, err error) {
			if err != nil {
				t.Fatalf("read extent %d: %v", e, err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("extent %d: router read returned wrong payload", e)
			}
			got = true
		})
		tb.Eng.Run()
		if !got {
			t.Fatalf("read of extent %d never completed", e)
		}
		for slot := 0; slot < spec.Replicas; slot++ {
			host := vol.ExtentMap().Replica(e, slot)
			stored, err := tb.VolReplicaDevices[vm][host].Store().Read(e*spec.ExtentSectors, 1)
			if err != nil {
				t.Fatalf("extent %d replica on host %d: %v", e, host, err)
			}
			if !bytes.Equal(stored, want) {
				t.Fatalf("extent %d replica on host %d holds wrong payload", e, host)
			}
		}
	}
}

func TestVolumeQuorumWriteAndRead(t *testing.T) {
	tb := buildVolTestbed(3, 2, 2)
	vol := tb.Volumes[0]
	writeAllExtents(t, tb, vol)
	verifyAllExtents(t, tb, 0)
	if n := vol.Counters.Get("vol_writes"); n != 8 {
		t.Fatalf("vol_writes = %d, want 8", n)
	}
	// Every extent committed exactly one version.
	for e := uint64(0); e < vol.Spec().NumExtents(); e++ {
		if v := vol.Committed(e); v != 1 {
			t.Fatalf("Committed(%d) = %d, want 1", e, v)
		}
	}
}

// TestVolumeQuorumLossFailsCleanly covers both flavors of losing the write
// quorum: detected dead replicas fail synchronously, and an undetected dead
// replica fails after the retransmission budget — a clean error either way,
// never a hang.
func TestVolumeQuorumLossFailsCleanly(t *testing.T) {
	tb := buildVolTestbed(3, 2, 2)
	vol := tb.Volumes[0]

	// Undetected: IOhost 1 (slot 1 of extent 0) is dead but not yet
	// declared. The write reaches host 0, never hears from host 1, and
	// fails once the retransmit budget rules the quorum unreachable.
	tb.IOHyps[1].Fail()
	var slowErr error
	fired := false
	vol.Write(0, make([]byte, tb.P.SectorSize), func(err error) { slowErr = err; fired = true })
	tb.Eng.Run()
	if !fired {
		t.Fatal("write against undetected-dead replica hung")
	}
	if !errors.Is(slowErr, blockdev.ErrQuorumLost) {
		t.Fatalf("undetected loss: err = %v, want ErrQuorumLost", slowErr)
	}

	// Detected: after the death is declared, the same write fails
	// immediately — no transport round trip at all.
	tb.IOhostDied(1)
	fired = false
	vol.Write(0, make([]byte, tb.P.SectorSize), func(err error) {
		if !errors.Is(err, blockdev.ErrQuorumLost) {
			t.Errorf("detected loss: err = %v, want ErrQuorumLost", err)
		}
		fired = true
	})
	if !fired {
		t.Fatal("detected quorum loss was not synchronous")
	}
}

// TestVolumeStaleReadRejection drives a replica stale (it misses a write via
// an injected device failure) and shows the version fence at work: reads
// demanding the committed version refuse the stale copy, sub-extent writes
// gap-nack rather than un-fence it, and a full-extent overwrite re-silvers
// it.
func TestVolumeStaleReadRejection(t *testing.T) {
	tb := buildVolTestbed(3, 2, 1) // W=1: a write can succeed on one replica
	vol := tb.Volumes[0]
	devs := tb.VolReplicaDevices[0]

	// Extent 0 lives on hosts 0 (slot 0) and 1 (slot 1). Make host 1's
	// device fail the incoming replica write: host 0 acks (quorum met),
	// host 1 stays at version 0.
	devs[1].FailNext = true
	data := make([]byte, tb.P.SectorSize)
	for i := range data {
		data[i] = 0xEE
	}
	vol.Write(0, data, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
	})
	tb.Eng.Run()
	if v := devs[1].Replica().Version(0); v != 0 {
		t.Fatalf("host 1 should have missed the write, holds v%d", v)
	}
	if v := devs[0].Replica().Version(0); v != 1 {
		t.Fatalf("host 0 should hold v1, holds v%d", v)
	}

	// Kill host 0 (the fresh replica). A read now has only the stale
	// replica to ask; it answers BlkStale and the read fails cleanly
	// rather than returning pre-write data.
	tb.IOHyps[0].Fail()
	tb.IOhostDied(0)
	var readErr error
	vol.Read(0, 1, func(_ []byte, err error) { readErr = err })
	tb.Eng.Run()
	if !errors.Is(readErr, blockdev.ErrNoReplica) {
		t.Fatalf("stale-only read: err = %v, want ErrNoReplica", readErr)
	}
	if n := vol.Counters.Get("stale_reads"); n != 1 {
		t.Fatalf("stale_reads = %d, want 1", n)
	}

	// A newer sub-extent write must NOT un-fence the gapped survivor — it
	// missed v1, and accepting v2 would let v1's sectors read back stale
	// under a lifted fence. The replica gap-nacks, and with the extent's
	// only fresh copy dead there is nothing to heal from: the write fails
	// cleanly and the heal is recorded as stuck.
	var gapErr error
	vol.Write(0, data, func(err error) { gapErr = err })
	tb.Eng.Run()
	if !errors.Is(gapErr, blockdev.ErrQuorumLost) {
		t.Fatalf("sub-extent write to gapped replica: err = %v, want ErrQuorumLost", gapErr)
	}
	if n := vol.Counters.Get("gap_nacks"); n != 1 {
		t.Fatalf("gap_nacks = %d, want 1", n)
	}
	if n := vol.Counters.Get("heal_stuck"); n == 0 {
		t.Fatal("heal_stuck = 0, want > 0 (no live source for the heal)")
	}
	if v := devs[1].Replica().Version(0); v != 0 {
		t.Fatalf("gapped write advanced the survivor to v%d, want v0", v)
	}

	// A full-extent overwrite replaces every byte of the extent, so it may
	// jump the fence: it re-silvers the survivor and reads succeed again.
	full := make([]byte, int(vol.Spec().ExtentSectors)*tb.P.SectorSize)
	for i := range full {
		full[i] = 0xEE
	}
	vol.Write(0, full, func(err error) {
		if err != nil {
			t.Errorf("full-extent overwrite: %v", err)
		}
	})
	tb.Eng.Run()
	ok := false
	vol.Read(0, 1, func(got []byte, err error) {
		if err != nil {
			t.Fatalf("post-overwrite read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("post-overwrite read returned wrong payload")
		}
		ok = true
	})
	tb.Eng.Run()
	if !ok {
		t.Fatal("post-overwrite read never completed")
	}
}

// TestVolumeGapFenceAndHeal replays the reviewer's linearizability scenario:
// under W=1 a replica misses a committed write, a later write to a DIFFERENT
// sector range of the same extent must not quietly advance its fence past the
// gap. Instead the replica gap-nacks, the heal engine re-silvers it with a
// full-extent copy from the fresh replica, and after the fresh replica dies
// the healed copy serves the missed write's data — never stale bytes.
func TestVolumeGapFenceAndHeal(t *testing.T) {
	tb := buildVolTestbed(3, 2, 1)
	vol := tb.Volumes[0]
	devs := tb.VolReplicaDevices[0]
	sectorBytes := tb.P.SectorSize

	// Write A (v1, sector 0): host 1's device fails it, host 0 acks —
	// quorum met at W=1, so A is committed while host 1 missed it.
	devs[1].FailNext = true
	aData := make([]byte, sectorBytes)
	for i := range aData {
		aData[i] = 0x11
	}
	vol.Write(0, aData, func(err error) {
		if err != nil {
			t.Errorf("write A: %v", err)
		}
	})
	tb.Eng.Run()
	if v := devs[1].Replica().Version(0); v != 0 {
		t.Fatalf("host 1 should have missed write A, holds v%d", v)
	}

	// Write B (v2, sector 8 — same extent, disjoint sector range). Host 1
	// must NOT accept it: doing so would fence the extent at v2 with write
	// A's sectors still stale. It gap-nacks, which queues a heal; the heal
	// copies the whole extent from host 0 (which holds A and B) onto host 1.
	bData := make([]byte, sectorBytes)
	for i := range bData {
		bData[i] = 0x22
	}
	vol.Write(8, bData, func(err error) {
		if err != nil {
			t.Errorf("write B: %v", err)
		}
	})
	tb.Eng.Run()
	if n := vol.Counters.Get("gap_nacks"); n == 0 {
		t.Fatal("gap_nacks = 0, want > 0 — the gapped replica accepted a sub-extent write")
	}
	if n := vol.Counters.Get("replica_heals"); n != 1 {
		t.Fatalf("replica_heals = %d, want 1", n)
	}
	if v := devs[1].Replica().Version(0); v != 2 {
		t.Fatalf("healed replica at v%d, want v2", v)
	}

	// Kill the only replica that saw write A directly. The healed copy is
	// all that remains; it must serve A's data, not the pre-A bytes.
	tb.IOHyps[0].Fail()
	tb.IOhostDied(0)
	tb.Eng.Run()
	readSector := func(sector uint64, want []byte, label string) {
		t.Helper()
		ok := false
		vol.Read(sector, 1, func(got []byte, err error) {
			if err != nil {
				t.Fatalf("%s read: %v", label, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s read returned stale bytes", label)
			}
			ok = true
		})
		tb.Eng.Run()
		if !ok {
			t.Fatalf("%s read never completed", label)
		}
	}
	readSector(0, aData, "write A")
	readSector(8, bData, "write B")
}

// TestVolumeHealRestoresWriteQuorum is the W=R liveness half of gap fencing:
// with WriteQuorum equal to Replicas, one missed write would permanently kill
// the quorum if gapped replicas stayed fenced forever. The heal engine must
// restore the replica so later writes succeed.
func TestVolumeHealRestoresWriteQuorum(t *testing.T) {
	tb := buildVolTestbed(3, 2, 2)
	vol := tb.Volumes[0]
	devs := tb.VolReplicaDevices[0]
	data := make([]byte, tb.P.SectorSize)
	write := func() error {
		var werr error
		vol.Write(0, data, func(err error) { werr = err })
		tb.Eng.Run()
		return werr
	}

	// Write 1: host 1's device fails it — quorum lost at W=2.
	devs[1].FailNext = true
	if err := write(); !errors.Is(err, blockdev.ErrQuorumLost) {
		t.Fatalf("write 1: err = %v, want ErrQuorumLost", err)
	}
	// Write 2: host 0 (at v1) acks, host 1 (at v0) gap-nacks — still a
	// quorum loss, but the nack queues a heal from host 0.
	if err := write(); !errors.Is(err, blockdev.ErrQuorumLost) {
		t.Fatalf("write 2: err = %v, want ErrQuorumLost", err)
	}
	if n := vol.Counters.Get("gap_nacks"); n == 0 {
		t.Fatal("gap_nacks = 0, want > 0")
	}
	if n := vol.Counters.Get("replica_heals"); n != 1 {
		t.Fatalf("replica_heals = %d, want 1", n)
	}
	if v0, v1 := devs[0].Replica().Version(0), devs[1].Replica().Version(0); v1 != v0 {
		t.Fatalf("heal left replicas split: host0 v%d, host1 v%d", v0, v1)
	}
	// Write 3: both replicas are contiguous again — the quorum is back.
	if err := write(); err != nil {
		t.Fatalf("write 3 after heal: %v", err)
	}
	ok := false
	vol.Read(0, 1, func(got []byte, err error) {
		if err != nil {
			t.Fatalf("post-heal read: %v", err)
		}
		ok = true
	})
	tb.Eng.Run()
	if !ok {
		t.Fatal("post-heal read never completed")
	}
}

// TestVolumeRebuildAfterCrash crashes one IOhost of a fully written R=2
// volume and checks the rebuild engine restores full replication on the
// survivors, byte-exact.
func TestVolumeRebuildAfterCrash(t *testing.T) {
	tb := buildVolTestbed(3, 2, 1)
	vol := tb.Volumes[0]
	writeAllExtents(t, tb, vol)

	tb.IOHyps[1].Fail()
	tb.IOhostDied(1)
	tb.Eng.Run() // drain the rebuild queue

	if vol.Rebuilding() {
		t.Fatal("rebuild queue did not drain")
	}
	if !vol.FullyReplicated() {
		t.Fatal("volume not fully replicated after rebuild")
	}
	// 8 extents, replica slots (e%3, (e+1)%3): host 1 held 6 cells.
	if n := vol.Counters.Get("rebuild_extents"); n != 6 {
		t.Fatalf("rebuild_extents = %d, want 6", n)
	}
	if vol.RebuildBytes == 0 {
		t.Fatal("RebuildBytes = 0, want > 0")
	}
	// No cell may still point at the dead host, and the data must match.
	spec := vol.Spec()
	for e := uint64(0); e < spec.NumExtents(); e++ {
		for slot := 0; slot < spec.Replicas; slot++ {
			if h := vol.ExtentMap().Replica(e, slot); h == 1 {
				t.Fatalf("extent %d slot %d still on dead host 1", e, slot)
			}
		}
	}
	verifyAllExtents(t, tb, 0)
}

// TestVolumeRebuildRetargetsOntoThirdSurvivor crashes a second IOhost while
// the first crash's rebuild is still in flight: jobs that had picked the
// second victim as their copy target must fail, requeue, and re-target onto
// a third survivor.
func TestVolumeRebuildRetargetsOntoThirdSurvivor(t *testing.T) {
	tb := buildVolTestbed(4, 2, 1)
	vol := tb.Volumes[0]
	writeAllExtents(t, tb, vol)

	// Crash host 2. Under the rotation layout hosts 2 and 0 share no extent
	// (their cell pairs are (1,2)/(2,3) vs (0,1)/(3,0)), so a second crash
	// of host 0 never loses both copies of anything. Every rebuild job for
	// host 2's cells picks host 0 as its copy target first (fewest-cells,
	// lowest-index rule), so those in-flight copies land on a host about to
	// die.
	tb.IOHyps[2].Fail()
	tb.IOhostDied(2)
	// Host 0 dies under the in-flight copies, undetected for 1 ms.
	tb.IOHyps[0].Fail()
	tb.Eng.At(tb.Eng.Now()+sim.Millisecond, func() { tb.IOhostDied(0) })
	tb.Eng.Run()

	if !vol.FullyReplicated() {
		t.Fatalf("volume not fully replicated after double crash (counters: retargets=%d stuck=%d lost=%d)",
			vol.Counters.Get("rebuild_retargets"), vol.Counters.Get("rebuild_stuck"),
			vol.Counters.Get("extents_lost"))
	}
	if n := vol.Counters.Get("rebuild_retargets"); n == 0 {
		t.Fatal("expected at least one re-targeted rebuild job")
	}
	// Only hosts 1 and 3 survive; every replica cell must sit on them.
	spec := vol.Spec()
	for e := uint64(0); e < spec.NumExtents(); e++ {
		for slot := 0; slot < spec.Replicas; slot++ {
			if h := vol.ExtentMap().Replica(e, slot); h != 1 && h != 3 {
				t.Fatalf("extent %d slot %d on host %d, want 1 or 3", e, slot, h)
			}
		}
	}
	verifyAllExtents(t, tb, 0)
}
