package cluster

import (
	"strings"
	"testing"

	"vrio/internal/core"
)

// TestSpecCarrier pins the Spec.Carrier contract: the default and "sim"
// build simulated cables, the real-socket carriers are rejected with a
// pointer at the loadgen process pair, and a typo'd carrier fails loudly
// instead of silently building the wrong testbed.
func TestSpecCarrier(t *testing.T) {
	mustPanic := func(carrier, wantSub string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("Carrier=%q: Build did not panic", carrier)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, wantSub) {
				t.Fatalf("Carrier=%q: panic %v, want mention of %q", carrier, r, wantSub)
			}
		}()
		Build(Spec{Model: core.ModelVRIO, Carrier: carrier, Seed: 1})
	}
	mustPanic(CarrierUDP, "vrio-loadgen")
	mustPanic(CarrierTCP, "vrio-loadgen")
	mustPanic("infiniband", "unknown carrier")

	for _, carrier := range []string{"", CarrierSim} {
		tb := Build(Spec{Model: core.ModelVRIO, Carrier: carrier, Seed: 1})
		if tb.Spec.Carrier != CarrierSim {
			t.Fatalf("Carrier=%q: built spec has carrier %q, want %q", carrier, tb.Spec.Carrier, CarrierSim)
		}
	}
}
