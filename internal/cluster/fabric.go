// Fabric assembly: many racks, each a complete Testbed on its own
// simulation shard, joined by a spine-leaf fabric whose ToR↔spine cables
// cross shard boundaries.
//
// The sharding cut is fixed by the topology — one shard per rack plus one
// for the spine tier — and only the worker count varies at run time, so the
// same fabric produces byte-identical output whether its windows execute
// serially or on eight cores (TestFabricShardedMatchesSerialByteIdentical).
// The lookahead bound is params.FabricLinkLatency: every cross-shard wire is
// a ToR↔spine cable with exactly that propagation latency, so no shard can
// influence another sooner than one fabric-link flight time.
package cluster

import (
	"fmt"
	"io"

	"vrio/internal/ethernet"
	"vrio/internal/link"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/trace"
)

// macRackStride is the size of each rack's MAC address block: rack r mints
// node ids in [r<<20, (r+1)<<20), so the locator recovers the rack of any
// cluster MAC by arithmetic instead of a learned table.
const macRackStride = 1 << 20

// FabricSpec describes a multi-rack spine-leaf deployment.
type FabricSpec struct {
	// Rack is the per-rack testbed template: model, VMhosts, VMs, IOhosts,
	// workload shape. Each rack gets a copy with its own MAC block and a
	// decorrelated seed.
	Rack Spec
	// NumRacks is the number of racks (= leaf switches = rack shards).
	NumRacks int
	// NumSpines is the spine count; every ToR runs one uplink to each
	// spine. 0 means 2.
	NumSpines int
	// Oversubscription is the ToR downlink:uplink capacity ratio (0 means
	// 4, the classic datacenter default; 1 is non-blocking).
	Oversubscription float64
	// HostRacks optionally places VMhosts explicitly: entry h is the rack
	// of global VMhost h, and rack r is built with as many VMhosts as
	// entries name it (overriding Rack.VMHosts). An entry naming a
	// nonexistent rack is a validation error, not a panic.
	HostRacks []int
	// InboxCap bounds each shard's per-window cross-shard inbox
	// (0 = sim.DefaultInboxCap).
	InboxCap int
}

func (fs *FabricSpec) defaults() {
	if fs.NumSpines == 0 {
		fs.NumSpines = 2
	}
	if fs.Oversubscription == 0 {
		fs.Oversubscription = 4
	}
}

// hostsPerRack returns each rack's VMhost count under the spec's placement.
func (fs *FabricSpec) hostsPerRack() []int {
	counts := make([]int, fs.NumRacks)
	if len(fs.HostRacks) == 0 {
		n := fs.Rack.VMHosts
		if n == 0 {
			n = 1 // mirrors Spec.defaults
		}
		for r := range counts {
			counts[r] = n
		}
		return counts
	}
	for _, r := range fs.HostRacks {
		if r >= 0 && r < fs.NumRacks {
			counts[r]++
		}
	}
	return counts
}

// linkSpec lowers the cluster-level description to the link layer's fabric
// spec (which owns the topology-shape validation and the uplink-bandwidth
// derivation).
func (fs *FabricSpec) linkSpec(p *params.P, hosts []int) link.FabricSpec {
	ls := link.FabricSpec{
		Spines:           fs.NumSpines,
		Oversubscription: fs.Oversubscription,
		DownlinkBps:      p.LinkBandwidth10G,
	}
	numIO := fs.Rack.NumIOhosts
	if numIO == 0 {
		numIO = 1
	}
	vms := fs.Rack.VMsPerHost
	if vms == 0 {
		vms = 1
	}
	for r := 0; r < fs.NumRacks; r++ {
		// ToR ports are what the rack build actually cables to its switch:
		// load-generator stations (one per VMhost, or per VM) and the IOhost
		// uplinks. The capacity model charges them all at the 10G downlink
		// class; the 40G IOhost uplinks are a modest undercount that keeps
		// the oversubscription ratio interpretable.
		stations := hosts[r]
		if fs.Rack.StationPerVM {
			stations = hosts[r] * vms
		}
		ls.Tors = append(ls.Tors, link.TorSpec{
			ID:      r,
			Hosts:   stations + numIO,
			Uplinks: fs.NumSpines,
		})
	}
	return ls
}

// Validate checks the fabric spec, returning a descriptive error for every
// way a topology can be unbuildable. CLI flags and experiment configs feed
// this, so bad input must never panic.
func (fs FabricSpec) Validate() error {
	fs.defaults()
	if fs.NumRacks <= 0 {
		return fmt.Errorf("cluster: fabric needs at least one rack, got %d", fs.NumRacks)
	}
	for h, r := range fs.HostRacks {
		if r < 0 || r >= fs.NumRacks {
			return fmt.Errorf("cluster: VMhost %d assigned to nonexistent rack %d (fabric has %d racks)", h, r, fs.NumRacks)
		}
	}
	hosts := fs.hostsPerRack()
	for r, n := range hosts {
		if n == 0 {
			return fmt.Errorf("cluster: rack %d has no VMhosts (HostRacks places none there)", r)
		}
	}
	p := fs.Rack.Params
	if p == nil {
		def := params.Default()
		p = &def
	}
	if err := p.Validate(); err != nil {
		return err
	}
	return fs.linkSpec(p, hosts).Validate()
}

// Fabric is an assembled multi-rack deployment: one Testbed per rack, each
// on its own shard, the spine switches on a shard of their own, and the
// coordinator that advances them together.
type Fabric struct {
	Spec FabricSpec
	P    *params.P

	// Group coordinates the shards; Lookahead is its window size.
	Group     *sim.ShardGroup
	Lookahead sim.Time

	// Racks[r] is rack r's complete testbed, built on RackShards[r].Eng.
	Racks      []*Testbed
	RackShards []*sim.Shard
	// Spines are the spine switches, all on SpineShard's engine.
	Spines     []*link.Switch
	SpineShard *sim.Shard

	// SpineTracer records the spine shard's fabric-hop spans when the rack
	// template has tracing on (nil — the disabled tracer — otherwise). Each
	// rack's own hops land in its Testbed.Tracer; the merged export stitches
	// them by Span.Flow.
	SpineTracer *trace.Tracer
	// SpineMetrics is the spine shard's registry: per-spine forwarding and
	// drop tallies plus per-downlink wire stats.
	SpineMetrics *trace.Registry
	// SpineFlight is the spine shard's flight recorder (spine switch drops).
	SpineFlight *trace.FlightRecorder

	// Uplinks[r][s] is rack r's transmit wire toward spine s (it lives on
	// rack r's engine); Downlinks[r][s] is the matching spine-to-rack wire
	// (on the spine engine). Kept for the per-uplink gauges and the rollup.
	Uplinks   [][]*link.Wire
	Downlinks [][]*link.Wire
}

// Tracers returns the fabric's per-shard tracers in shard order — racks
// first, spine last, matching ShardGroup's shard numbering — ready for
// trace.Merge / trace.WriteMergedJSONL. All nil (disabled) when the fabric
// was built without tracing.
func (f *Fabric) Tracers() []*trace.Tracer {
	out := make([]*trace.Tracer, 0, len(f.Racks)+1)
	for _, tb := range f.Racks {
		out = append(out, tb.Tracer)
	}
	return append(out, f.SpineTracer)
}

// WriteSpans writes the merged cross-shard span export: every shard's spans
// in (start, shard, id) order, byte-identical at any worker count.
func (f *Fabric) WriteSpans(w io.Writer) error {
	return trace.WriteMergedJSONL(w, f.Tracers())
}

// Flights returns the per-shard flight recorders in shard order (racks
// first, spine last).
func (f *Fabric) Flights() []*trace.FlightRecorder {
	out := make([]*trace.FlightRecorder, 0, len(f.Racks)+1)
	for _, tb := range f.Racks {
		out = append(out, tb.Flight)
	}
	return append(out, f.SpineFlight)
}

// rackLocator maps any cluster MAC to its owning rack by decoding the node
// id and dividing by the per-rack address stride.
func rackLocator(numRacks int) func(ethernet.MAC) (int, bool) {
	return func(m ethernet.MAC) (int, bool) {
		id, ok := ethernet.NodeID(m)
		if !ok {
			return 0, false
		}
		r := int(id / macRackStride)
		if r >= numRacks {
			return 0, false
		}
		return r, true
	}
}

// BuildFabric assembles the fabric. Build order is deterministic: racks in
// index order (each an ordinary BuildOn onto its shard's engine), then the
// spine tier, then the cross-shard uplink cables in (rack, spine) order.
func BuildFabric(fs FabricSpec) (*Fabric, error) {
	fs.defaults()
	if err := fs.Validate(); err != nil {
		return nil, err
	}
	p := fs.Rack.Params
	if p == nil {
		def := params.Default()
		p = &def
	}
	hosts := fs.hostsPerRack()
	ls := fs.linkSpec(p, hosts)

	f := &Fabric{
		Spec:      fs,
		P:         p,
		Lookahead: p.FabricLinkLatency,
		Group:     sim.NewShardGroup(p.FabricLinkLatency, fs.InboxCap),
	}

	for r := 0; r < fs.NumRacks; r++ {
		sh := f.Group.AddShard()
		rs := fs.Rack
		rs.Params = p
		rs.VMHosts = hosts[r]
		rs.MACOffset = uint32(r) * macRackStride
		// Decorrelate the racks' jitter/fault streams while keeping the
		// whole fabric a pure function of the base seed.
		rs.Seed = fs.Rack.Seed + uint64(r)*0x9e3779b97f4a7c15
		if fs.Rack.FaultSeed != 0 {
			rs.FaultSeed = fs.Rack.FaultSeed + uint64(r)*0x9e3779b97f4a7c15
		}
		f.RackShards = append(f.RackShards, sh)
		f.Racks = append(f.Racks, BuildOn(rs, sh.Eng))
	}

	locate := rackLocator(fs.NumRacks)
	f.SpineShard = f.Group.AddShard()
	if fs.Rack.Trace {
		f.SpineTracer = trace.New(f.SpineShard.Eng)
	}
	f.SpineMetrics = trace.NewRegistry()
	f.SpineFlight = trace.NewFlightRecorder(flightCapacity)
	for s := 0; s < fs.NumSpines; s++ {
		s := s
		sw := link.NewSwitch(f.SpineShard.Eng, p.SpineLatency)
		sw.SetLocator(-1, locate)
		sw.OnDrop = func(reason link.DropReason) {
			f.SpineFlight.Record(f.SpineShard.Eng.Now(), "switch_drop", reason.String(), uint64(s))
		}
		f.Spines = append(f.Spines, sw)
		comp := fmt.Sprintf("spine%d", s)
		f.SpineMetrics.Gauge(comp, "forwarded", func() float64 { return float64(sw.Forwarded) })
		f.SpineMetrics.Gauge(comp, "flooded", func() float64 { return float64(sw.Flooded) })
		for reason := link.DropReason(0); reason < link.NumDropReasons; reason++ {
			reason := reason
			f.SpineMetrics.Gauge(comp, "drops_"+reason.String(),
				func() float64 { return float64(sw.Drops.Get(reason)) })
		}
	}

	f.Uplinks = make([][]*link.Wire, fs.NumRacks)
	f.Downlinks = make([][]*link.Wire, fs.NumRacks)
	for r, tb := range f.Racks {
		tb.Switch.SetLocator(r, locate)
		upBps := ls.UplinkBps(ls.Tors[r])
		rackShard := f.RackShards[r]
		for s := 0; s < fs.NumSpines; s++ {
			// The cable's two directions live on different shards: the
			// up-direction wire on the rack's engine (the ToR transmits it),
			// the down-direction wire on the spine's. Each posts completed
			// deliveries into the far shard's inbox; sim.ShardGroup's
			// barrier turns those posts into ordinary engine events in a
			// fixed (time, shard, seq) order.
			cable := &link.Duplex{
				AtoB: link.NewWire(tb.Eng, upBps, p.FabricLinkLatency, nil),
				BtoA: link.NewWire(f.SpineShard.Eng, upBps, p.FabricLinkLatency, nil),
			}
			up, down := cable.AtoB, cable.BtoA
			spineShard := f.SpineShard
			up.SetRemote(func(at sim.Time, frame []byte) {
				spineShard.Post(rackShard, at, func() { up.RemoteDeliver(frame) })
			})
			down.SetRemote(func(at sim.Time, frame []byte) {
				rackShard.Post(spineShard, at, func() { down.RemoteDeliver(frame) })
			})
			// Per-hop spans: each direction records into the tracer of the
			// shard that transmits it, so span recording stays single-
			// threaded; the merged export stitches the two directions of a
			// request back together by flow key.
			up.SetHopTracer(tb.Tracer, fmt.Sprintf("tor%d-spine%d", r, s))
			down.SetHopTracer(f.SpineTracer, fmt.Sprintf("spine%d-tor%d", s, r))
			f.Uplinks[r] = append(f.Uplinks[r], up)
			f.Downlinks[r] = append(f.Downlinks[r], down)
			tb.Switch.AttachUplink(cable)
			f.Spines[s].SetRackPort(r, f.Spines[s].AttachPort(cable))
		}
		f.registerUplinkMetrics(r, tb)
	}
	return f, nil
}

// registerUplinkMetrics publishes rack r's fabric-facing gauges: per-uplink
// traffic/drops/utilization on the rack's own registry, per-downlink stats
// on the spine registry, and the rack's ECMP imbalance — max over mean
// tx_frames across its uplinks (1.0 when perfectly balanced or idle), the
// number the oversubscription sweep reports.
func (f *Fabric) registerUplinkMetrics(r int, tb *Testbed) {
	for s, up := range f.Uplinks[r] {
		up := up
		comp := fmt.Sprintf("uplink%d", s)
		tb.Metrics.Gauge(comp, "tx_bytes", func() float64 { return float64(up.Bytes) })
		tb.Metrics.Gauge(comp, "tx_frames", func() float64 { return float64(up.Frames) })
		tb.Metrics.Gauge(comp, "delivered", func() float64 { return float64(up.Delivered) })
		tb.Metrics.Gauge(comp, "drops", func() float64 { return float64(up.Drops.Total()) })
		tb.Metrics.Gauge(comp, "utilization", up.Utilization)
	}
	for s, down := range f.Downlinks[r] {
		down := down
		comp := fmt.Sprintf("downlink%d_%d", s, r)
		f.SpineMetrics.Gauge(comp, "tx_bytes", func() float64 { return float64(down.Bytes) })
		f.SpineMetrics.Gauge(comp, "tx_frames", func() float64 { return float64(down.Frames) })
		f.SpineMetrics.Gauge(comp, "drops", func() float64 { return float64(down.Drops.Total()) })
		f.SpineMetrics.Gauge(comp, "utilization", down.Utilization)
	}
	ups := f.Uplinks[r]
	tb.Metrics.Gauge("fabric", "ecmp_imbalance", func() float64 {
		var total, max float64
		for _, up := range ups {
			n := float64(up.Frames)
			total += n
			if n > max {
				max = n
			}
		}
		if total == 0 {
			return 1
		}
		return max * float64(len(ups)) / total
	})
}

// RunMeasured advances every shard through warmup then a measured window of
// the given duration, with up to workers rack engines executing each window
// concurrently (workers <= 1 is the serial reference run — byte-identical
// to any parallel run). perRack[r] lists the collectors owned by rack r;
// their start/stop toggles are scheduled on that rack's own engine, keeping
// every mutation single-shard. Call once, from time zero.
func (f *Fabric) RunMeasured(warmup, duration sim.Time, workers int, perRack [][]Measurable) sim.Time {
	for r, tb := range f.Racks {
		var cs []Measurable
		if r < len(perRack) {
			cs = perRack[r]
		}
		tb.Eng.At(warmup, func() {
			for _, c := range cs {
				c.StartMeasuring()
			}
		})
		tb.Eng.At(warmup+duration, func() {
			for _, c := range cs {
				c.StopMeasuring()
			}
		})
	}
	f.Group.RunUntil(warmup+duration, workers)
	return duration
}

// TotalExecuted sums simulation events executed across all shards.
func (f *Fabric) TotalExecuted() uint64 { return f.Group.TotalExecutedInGroup() }

// Close releases the coordinator's worker goroutines.
func (f *Fabric) Close() { f.Group.Close() }
