package cluster

import (
	"bytes"
	"testing"

	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

func buildWithFallback(t *testing.T) *Testbed {
	t.Helper()
	return Build(Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 1,
		WithBlock: true, SecondaryIOhost: true, NoJitter: true, Seed: 71,
	})
}

func TestFailoverTrafficResumesOnSecondary(t *testing.T) {
	tb := buildWithFallback(t)
	g := tb.Guests[0]
	workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
	rr := workload.NewRR(tb.Stations[0], g.MAC(), 16)
	rr.Start()
	rr.Results.StartMeasuring()

	var opsAtFailure uint64
	tb.Eng.At(20*sim.Millisecond, func() {
		opsAtFailure = rr.Results.Ops
		tb.FailOverIOhost()
	})
	tb.Eng.RunUntil(150 * sim.Millisecond)

	if opsAtFailure == 0 {
		t.Fatal("no traffic before the failure")
	}
	if rr.Results.Ops <= opsAtFailure+20 {
		t.Errorf("traffic did not resume on the fallback IOhost: %d -> %d",
			opsAtFailure, rr.Results.Ops)
	}
	if !tb.IOHyp.Failed() {
		t.Error("primary not marked failed")
	}
	if tb.SecondaryIOHyp.Counters.Get("msgs") == 0 {
		t.Error("fallback IOhost processed nothing")
	}
	// The crashed primary must process nothing after the failure.
	if tb.IOHyp.Counters.Get("net_in") > opsAtFailure+5 {
		t.Error("primary kept serving after Fail()")
	}
}

func TestFailoverBlockRequestsSurvive(t *testing.T) {
	tb := Build(Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 1,
		WithBlock: true, SecondaryIOhost: true, NoJitter: true, Seed: 71,
		// A slow device so the crash lands while the request is in flight.
		BlockLatency: 5 * sim.Millisecond,
	})
	g := tb.Guests[0]
	payload := bytes.Repeat([]byte{0x3C}, 4096)
	completed := false
	var werr error
	tb.Eng.At(1*sim.Millisecond, func() {
		g.WriteBlock(40, payload, func(err error) {
			completed = true
			werr = err
		})
	})
	// Crash the primary after the request reached it but before its 5 ms
	// device access completes.
	tb.Eng.At(2*sim.Millisecond, func() { tb.FailOverIOhost() })
	tb.Eng.RunUntil(500 * sim.Millisecond)
	if !completed {
		t.Fatal("block write never completed across the failover")
	}
	if werr != nil {
		t.Fatalf("block write failed: %v", werr)
	}
	got, err := tb.BlockDevices[0].Store().Read(40, 8)
	if err != nil || !bytes.Equal(got, payload) {
		t.Error("shared store missing the write served by the fallback")
	}
	if tb.VRIOClients[0].Driver.Counters.Get("retransmits") == 0 {
		t.Error("failover recovery did not exercise retransmission")
	}
}

func TestFailoverWithoutSecondaryPanics(t *testing.T) {
	tb := Build(Spec{Model: core.ModelVRIO, VMsPerHost: 1, NoJitter: true, Seed: 72})
	defer func() {
		if recover() == nil {
			t.Error("FailOverIOhost without a secondary did not panic")
		}
	}()
	tb.FailOverIOhost()
}

func TestRehomeBlockRequestsSurvive(t *testing.T) {
	// The multi-IOhost equivalent of TestFailoverBlockRequestsSurvive: two
	// ACTIVE IOhosts, no standby mirror, and a manual RehomeClient while a
	// write is in flight. The §4.5 retransmission machinery plus the
	// destination's fresh registrations must deliver the completion exactly
	// once.
	tb := Build(Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 1,
		NumIOhosts: 2, WithBlock: true, NoJitter: true, Seed: 74,
		BlockLatency: 5 * sim.Millisecond,
	})
	g := tb.Guests[0]
	payload := bytes.Repeat([]byte{0x9B}, 4096)
	completions := 0
	var werr error
	tb.Eng.At(1*sim.Millisecond, func() {
		g.WriteBlock(40, payload, func(err error) {
			completions++
			werr = err
		})
	})
	// Crash IOhost 0 and re-home by hand (the rack controller automates
	// this; here the cluster-level path is under test) while the 5 ms device
	// access is pending.
	tb.Eng.At(2*sim.Millisecond, func() {
		tb.IOHyp.Fail()
		tb.RehomeClient(0, 1)
		tb.RehomeClient(1, 1)
	})
	tb.Eng.RunUntil(500 * sim.Millisecond)
	if completions != 1 {
		t.Fatalf("block completion arrived %d times, want exactly once", completions)
	}
	if werr != nil {
		t.Fatalf("block write failed: %v", werr)
	}
	got, err := tb.BlockDevices[0].Store().Read(40, 8)
	if err != nil || !bytes.Equal(got, payload) {
		t.Error("shared store missing the re-homed write")
	}
	if tb.VRIOClients[0].Driver.Counters.Get("retransmits") == 0 {
		t.Error("re-home recovery did not exercise retransmission")
	}
	if tb.ClientIOhost[0] != 1 || tb.ClientIOhost[1] != 1 {
		t.Errorf("ClientIOhost not updated: %v", tb.ClientIOhost)
	}
	if tb.IOHyps[1].Counters.Get("blk_reqs") == 0 {
		t.Error("survivor IOhost served no block requests")
	}
}

func TestNoFailoverBlockRequestsDie(t *testing.T) {
	// Without a fallback, a crashed IOhost exhausts the §4.5 budget and
	// the front-end raises a device error — the failure mode the paper
	// warns about ("If the IOhost fails, VMhosts cease to be reachable").
	tb := Build(Spec{
		Model: core.ModelVRIO, VMsPerHost: 1, WithBlock: true,
		NoJitter: true, Seed: 73,
	})
	g := tb.Guests[0]
	var werr error
	completed := false
	tb.Eng.At(1*sim.Millisecond, func() {
		tb.IOHyp.Fail()
		g.WriteBlock(8, make([]byte, 512), func(err error) {
			completed = true
			werr = err
		})
	})
	tb.Eng.RunUntil(2 * sim.Second)
	if !completed {
		t.Fatal("request neither completed nor errored")
	}
	if werr == nil {
		t.Error("write against a dead IOhost succeeded")
	}
}
