package cluster

import (
	"bytes"
	"testing"

	"vrio/internal/core"
	"vrio/internal/ethernet"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

// buildMigratable assembles a 2-VMhost vRIO rack with one VM on host 0.
func buildMigratable(t *testing.T, withBlock bool) *Testbed {
	t.Helper()
	return Build(Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 1,
		WithBlock: withBlock, NoJitter: true, Seed: 61,
	})
}

func TestMigrationTrafficContinuity(t *testing.T) {
	tb := buildMigratable(t, false)
	g := tb.Guests[0]
	workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
	rr := workload.NewRR(tb.Stations[0], g.MAC(), 16)
	rr.Start()
	rr.Results.StartMeasuring()

	var opsBefore, opsAfterPause uint64
	migrated := false
	tb.Eng.At(20*sim.Millisecond, func() {
		opsBefore = rr.Results.Ops
		tb.MigrateVM(0, 1, func() { migrated = true })
	})
	tb.Eng.At(20*sim.Millisecond+tb.P.MigrationDowntime/2, func() {
		opsAfterPause = rr.Results.Ops
	})
	tb.Eng.RunUntil(200 * sim.Millisecond)

	if !migrated {
		t.Fatal("migration never completed")
	}
	if opsBefore == 0 {
		t.Fatal("no traffic before migration")
	}
	// During the blackout nothing progresses...
	if opsAfterPause > opsBefore+1 {
		t.Errorf("traffic flowed during the blackout: %d -> %d", opsBefore, opsAfterPause)
	}
	// ...and afterwards the SAME F address serves traffic from the new host.
	if rr.Results.Ops <= opsBefore+10 {
		t.Errorf("traffic did not resume after migration: %d -> %d", opsBefore, rr.Results.Ops)
	}
	if tb.GuestHost[0] != 1 {
		t.Errorf("guest host index not updated: %d", tb.GuestHost[0])
	}
	if tb.IOHyp.Counters.Get("migrations") != 1 {
		t.Errorf("migrations counter = %d", tb.IOHyp.Counters.Get("migrations"))
	}
	// The RR loop is closed: the request in flight during the blackout was
	// lost (net traffic is unreliable), so the generator must have been
	// unstuck by... nothing. Verify the loop genuinely continued because
	// the blackout lost at most the in-flight transaction.
	if client := tb.VRIOClients[0]; client.Paused() {
		t.Error("client still paused")
	}
}

func TestMigrationBlockRequestsSurviveViaRetransmission(t *testing.T) {
	tb := buildMigratable(t, true)
	g := tb.Guests[0]

	// Issue a write, then migrate immediately so the response (or request)
	// falls into the blackout; §4.5's retransmission must recover it
	// without a device error.
	payload := bytes.Repeat([]byte{0x77}, 4096)
	completed := false
	var writeErr error
	tb.Eng.At(1*sim.Millisecond, func() {
		g.WriteBlock(64, payload, func(err error) {
			completed = true
			writeErr = err
		})
		// Pause before the response can arrive.
		tb.MigrateVM(0, 1, nil)
	})
	tb.Eng.RunUntil(500 * sim.Millisecond)
	if !completed {
		t.Fatal("block write never completed across migration")
	}
	if writeErr != nil {
		t.Fatalf("block write failed across migration: %v", writeErr)
	}
	// The data landed exactly once in the (unmoved) remote store.
	got, err := tb.BlockDevices[0].Store().Read(64, 8)
	if err != nil || !bytes.Equal(got, payload) {
		t.Error("remote store does not hold the migrated client's write")
	}
	// Recovery must have used the retransmission machinery.
	if tb.VRIOClients[0].Driver.Counters.Get("retransmits") == 0 {
		t.Error("no retransmissions: the blackout was not exercised")
	}
	// Post-migration block I/O works from the new host.
	ok := false
	g.ReadBlock(64, 8, func(data []byte, err error) {
		ok = err == nil && bytes.Equal(data, payload)
	})
	tb.Eng.RunUntil(600 * sim.Millisecond)
	if !ok {
		t.Error("block read after migration failed")
	}
}

func TestMigrationPreservesFAddress(t *testing.T) {
	// Two guests on different hosts; guest 0 migrates to host 1. Guest 1
	// keeps reaching it at the same F MAC throughout.
	tb := Build(Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 1,
		NoJitter: true, Seed: 62,
	})
	a := tb.Guests[0] // will migrate (VM index 0 -> host 0)
	b := tb.Guests[1] // host 1
	received := 0
	a.OnNetRx(func(f ethernet.Frame) { received++ })
	send := func() {
		b.SendNet(ethernet.Frame{Dst: a.MAC(), EtherType: ethernet.EtherTypePlain, Payload: []byte("hi")})
	}
	send()
	tb.Eng.RunUntil(5 * sim.Millisecond)
	if received != 1 {
		t.Fatalf("pre-migration delivery failed: %d", received)
	}
	tb.MigrateVM(0, 1, nil)
	tb.Eng.RunUntil(5*sim.Millisecond + 2*tb.P.MigrationDowntime)
	send()
	tb.Eng.RunUntil(20*sim.Millisecond + 2*tb.P.MigrationDowntime)
	if received != 2 {
		t.Errorf("post-migration delivery to the same F MAC failed: %d", received)
	}
}

func TestMigrationLandsOnRehomedIOhost(t *testing.T) {
	// A guest re-homed to IOhost 1 DURING its migration blackout must come
	// back up attached to IOhost 1's cable on the destination VMhost — the
	// resume path reads the placement at resume time, not capture time.
	tb := Build(Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 1,
		NumIOhosts: 2, WithBlock: true, NoJitter: true, Seed: 64,
	})
	g := tb.Guests[0]
	migrated := false
	tb.Eng.At(1*sim.Millisecond, func() {
		tb.MigrateVM(0, 1, func() { migrated = true })
	})
	// Mid-blackout, the control plane moves the (paused) guest's devices.
	tb.Eng.At(1*sim.Millisecond+tb.P.MigrationDowntime/2, func() {
		tb.IOHyp.Fail()
		tb.RehomeClient(0, 1)
	})
	tb.Eng.RunUntil(200 * sim.Millisecond)
	if !migrated {
		t.Fatal("migration never completed")
	}
	if tb.ClientIOhost[0] != 1 {
		t.Errorf("client homed on IOhost %d, want 1", tb.ClientIOhost[0])
	}
	// Block I/O works end to end through the new IOhost from the new host.
	payload := bytes.Repeat([]byte{0x42}, 4096)
	done := false
	var werr error
	g.WriteBlock(8, payload, func(err error) {
		done = true
		werr = err
	})
	tb.Eng.RunUntil(400 * sim.Millisecond)
	if !done || werr != nil {
		t.Fatalf("post-migration write on rehomed IOhost: done=%v err=%v", done, werr)
	}
	if tb.IOHyps[1].Counters.Get("blk_reqs") == 0 {
		t.Error("rehomed IOhost served no block requests")
	}
	if tb.IOHyps[1].Counters.Get("migrations") != 1 {
		t.Error("migration rebind did not land on the rehomed IOhost")
	}
}

func TestMigrateVMValidation(t *testing.T) {
	tb := Build(Spec{Model: core.ModelElvis, VMsPerHost: 1, NoJitter: true, Seed: 63})
	defer func() {
		if recover() == nil {
			t.Error("MigrateVM on a non-vRIO testbed did not panic")
		}
	}()
	tb.MigrateVM(0, 0, nil)
}

func TestMigrateVMBadHostPanics(t *testing.T) {
	tb := buildMigratable(t, false)
	defer func() {
		if recover() == nil {
			t.Error("MigrateVM to a nonexistent host did not panic")
		}
	}()
	tb.MigrateVM(0, 9, nil)
}
