// Package cluster assembles the §5 testbeds: VMhosts, load generators, the
// rack switch, and — for vRIO — the IOhost with its directly cabled channel
// NICs. One Build call produces a ready testbed for any of the five
// evaluated configurations.
package cluster

import (
	"fmt"

	"vrio/internal/blockdev"
	"vrio/internal/bufpool"
	"vrio/internal/core"
	"vrio/internal/cpu"
	"vrio/internal/ethernet"
	"vrio/internal/fault"
	"vrio/internal/guestos"
	"vrio/internal/interpose"
	"vrio/internal/iohyp"
	"vrio/internal/link"
	"vrio/internal/nic"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/trace"
	"vrio/internal/transport"
	"vrio/internal/workload"
)

// flightCapacity bounds each shard's flight-recorder ring. 256 entries is
// plenty to cover the events leading up to an anomaly (a heartbeat-miss
// sequence, a burst of no-route drops) while keeping the recorder's memory
// fixed regardless of run length.
const flightCapacity = 256

// MAC numbering plan.
const (
	macGuestBase     = 1000 // F addresses, by global VM index
	macTransportBase = 2000 // vRIO T addresses, by global VM index
	macStationBase   = 3000 // load generators
	macHostBase      = 4000 // host NICs (baseline/elvis/optimum uplinks)
	macIOHostBase    = 5000 // IOhost i: uplink 5000+100i, channel to VMhost h 5000+100i+1+h
	// macVolBase numbers the per-(guest, IOhost) volume transport MACs:
	// guest vm's driver toward IOhost io is 20000 + 64*vm + io.
	macVolBase = 20000
)

// Spec describes a testbed.
type Spec struct {
	Model core.ModelName
	// VMHosts and VMsPerHost shape the rack; most microbenchmarks use one
	// VMhost (Figure 6), the scalability experiment four (§5).
	VMHosts    int
	VMsPerHost int
	// SidecoresPerHost applies to Elvis; IOhostSidecores to vRIO.
	SidecoresPerHost int
	IOhostSidecores  int
	// WithBlock attaches a per-VM 1 GB block device (local for
	// baseline/elvis, remote on the IOhost for vRIO).
	WithBlock bool
	// BlockLatency overrides the ramdisk latency (0 = params default).
	BlockLatency sim.Time
	// BlkQueues gives every vRIO block device NQ submission queues with
	// NVMe-style queue-pair passthrough: each queue pinned to an IOhost
	// worker, range conflicts arbitrated by a blockdev.Scheduler in front
	// of the device. 0 or 1 keeps the legacy single-queue path (vRIO
	// models only; local models have no queues to pin).
	BlkQueues int
	// BlockWays overrides the per-device bank parallelism (0 = 4).
	BlockWays int
	// VolReplicas > 0 attaches a distributed volume to every guest: extents
	// striped across all NumIOhosts IOhosts with VolReplicas-way replication
	// (DESIGN.md §16; vRIO models only, requires VolReplicas <= NumIOhosts).
	// Each guest gets one replica device per IOhost plus a core.VolumeRouter
	// (tb.Volumes) steering quorum writes and replica reads over dedicated
	// per-IOhost transport drivers.
	VolReplicas int
	// VolQuorum is the write quorum W (acks before completion); 0 defaults
	// to VolReplicas (write-all).
	VolQuorum int
	// VolExtentSectors is the stripe unit in sectors (0 = 128).
	VolExtentSectors uint64
	// VolCapacitySectors is the volume size in sectors (0 = 4096 — small,
	// so rebuild experiments copy a bounded extent population).
	VolCapacitySectors uint64
	// VolQueues is the submission-queue count per replica device (0 = 1;
	// >1 wraps each replica in a range-conflict Scheduler, like BlkQueues).
	VolQueues int
	// NetChain, if set, builds the interposition chain for VM (host, vm).
	NetChain func(host, vm int) *interpose.Chain
	// BlkChain likewise for block devices.
	BlkChain func(host, vm int) *interpose.Chain
	// WithThreads attaches a guest thread scheduler (needed by Filebench).
	WithThreads bool
	// BareClients marks vRIO IOclients as bare-metal OSes (§4.6): same
	// datapath, plain host interrupts instead of ELI.
	BareClients bool
	// StationPerVM gives every VM its own load generator (the macro
	// benchmarks need enough generator capacity not to be the bottleneck;
	// the paper used four generator machines).
	StationPerVM bool
	// NoJitter disables the per-core OS-interference process (used by
	// tests that assert exact deterministic timings).
	NoJitter bool
	// Trace enables datapath span tracing: Build creates a Tracer on the
	// testbed's engine and threads it through the transport drivers and the
	// I/O hypervisor. Off (the default) costs the datapath nothing.
	Trace bool
	// SecondaryIOhost cables every VMhost to a fallback IOhost as well
	// (§4.6 "Fault Tolerance": "connecting VMhosts to a secondary fallback
	// IOhost ... requires additional cables and matching ports"). The
	// fallback mirrors all device registrations and shares the block
	// backends (distributed-storage assumption); FailOverIOhost switches
	// the clients onto it.
	SecondaryIOhost bool
	// NumIOhosts builds a rack with N active IOhosts (vRIO models only;
	// default 1). Every VMhost is cabled — VF plus MessagePort — to every
	// IOhost, and Placement decides which IOhost serves each guest's
	// devices. Mutually exclusive with SecondaryIOhost, which instead adds
	// one cold-standby mirror of a single active IOhost.
	NumIOhosts int
	// Placement maps guest vm (GLOBAL index, host-major — unlike
	// NetChain/BlkChain, whose vm is per-host) on VMhost host to the IOhost
	// in [0, NumIOhosts) that serves its devices. Nil places everything on
	// IOhost 0. See internal/rack for pluggable policies.
	Placement func(host, vm int) int
	// Fault, when non-nil, arms deterministic fault injection across the
	// rack: Build attaches the profile to every cable, client VF, and
	// IOhost it assembles (see internal/fault). Nil keeps the datapath's
	// zero-allocation fast path untouched.
	Fault *fault.Profile
	// FaultSeed seeds the fault plan's RNG streams independently of Seed,
	// so the same workload can replay under different fault draws. Zero
	// derives it from Seed.
	FaultSeed uint64
	// Carrier selects what carries §4.2 transport messages in this testbed:
	// CarrierSim (the default) cables the rack with simulated link.Wires on
	// the build engine. CarrierUDP/CarrierTCP name the real-socket carriers
	// of internal/netwire; those run one process per side of the wire, so a
	// single-process Build cannot assemble them — Build rejects them with a
	// pointer at cmd/vrio-loadgen, which is the process pair that does.
	// Anything else is a typo and also rejected.
	Carrier string
	// MACOffset shifts every MAC this testbed mints (guests, transports,
	// stations, IOhosts) by a constant, so several racks built into one
	// fabric own disjoint address blocks. The fabric builder gives rack r
	// the block [r<<20, (r+1)<<20); standalone testbeds leave it zero,
	// which reproduces the historical addresses exactly.
	MACOffset uint32
	// Params: nil means params.Default().
	Params *params.P
	Seed   uint64
}

// Carrier names for Spec.Carrier.
const (
	// CarrierSim is the simulated-cable carrier (link.Wire); the default.
	CarrierSim = "sim"
	// CarrierUDP and CarrierTCP are the real-socket carriers implemented by
	// internal/netwire and assembled by the cmd/vrio-loadgen process pair.
	CarrierUDP = "udp"
	CarrierTCP = "tcp"
)

// Testbed is an assembled rack.
type Testbed struct {
	Eng    *sim.Engine
	P      *params.P
	Spec   Spec
	Switch *link.Switch

	// Guests in global order (host-major); GuestHost[i] is its host index.
	Guests    []*core.Guest
	GuestHost []int
	// Stations: one load generator per VMhost.
	Stations []*workload.Station
	// VMCores[i] is guest i's core; Sidecores are the polling cores
	// (per-host for Elvis, IOhost-resident for vRIO), IOCores the
	// baseline's shared vhost cores (one per host).
	VMCores   []*cpu.Core
	Sidecores []*cpu.Core
	IOCores   []*cpu.Core
	GenCores  []*cpu.Core

	// IOHyp is non-nil for the vRIO models: the first (or only) IOhost.
	IOHyp *iohyp.IOHypervisor
	// IOHyps lists every active IOhost's hypervisor (IOHyps[0] == IOHyp).
	// The legacy SecondaryIOhost mirror is NOT in this list — it serves no
	// devices until FailOverIOhost.
	IOHyps []*iohyp.IOHypervisor
	// SidecoresByIOhost groups Sidecores per active IOhost (vRIO models).
	SidecoresByIOhost [][]*cpu.Core
	// ClientIOhost[vm] is the IOhost currently serving guest vm's devices;
	// RehomeClient and the rack controller keep it up to date.
	ClientIOhost []int
	// ClientRegs[vm] records guest vm's device registrations so the control
	// plane can re-create them on another IOhost.
	ClientRegs []ClientReg
	// VRIOClients by global VM index (vRIO models only).
	VRIOClients []*core.VRIOClient
	// BlockDevices by global VM index (when WithBlock).
	BlockDevices []*blockdev.Device
	// BlockSchedulers are the per-device range-conflict arbiters, in device
	// order, present only when BlkQueues > 1 (the registered backends).
	BlockSchedulers []*blockdev.Scheduler
	// Threads by global VM index (when WithThreads).
	Threads []*guestos.VCPU
	// Volumes[vm] is guest vm's distributed-volume router (only when
	// Spec.VolReplicas > 0; empty otherwise).
	Volumes []*core.VolumeRouter
	// VolReplicaDevices[vm][io] is the replica device backing guest vm's
	// volume on IOhost io (test verification reads its Store and Replica).
	VolReplicaDevices [][]*blockdev.Device

	// SecondaryIOHyp is the fallback I/O hypervisor (when configured).
	SecondaryIOHyp *iohyp.IOHypervisor

	// Fault is the instantiated fault plan (inert when Spec.Fault is nil).
	// Its counters and wire tallies are registered as "fault" metrics.
	Fault *fault.Plan

	// Tracer records datapath spans when Spec.Trace is set (nil otherwise —
	// the zero-cost disabled tracer).
	Tracer *trace.Tracer
	// Flight is the rack's always-on flight recorder: a bounded ring of
	// recent anomaly-relevant events (switch drops, controller events,
	// heartbeat misses), dumped on anomalies by the datacenter rollup. Fixed
	// capacity, so it costs nothing proportional to run length.
	Flight *trace.FlightRecorder
	// Metrics is the per-component metrics registry, populated at Build
	// time for every testbed. Experiments read component counters through
	// it, and StartMetricsSampling snapshots it at sim-time intervals.
	Metrics *trace.Registry

	// pool is the testbed-wide buffer pool: every NIC shares it, so wire
	// buffers circulate between the hosts of this (single-threaded)
	// simulation cell instead of being reallocated per frame.
	pool *bufpool.Pool

	// channels[i][h] is VMhost h's cable into IOhost i, for live migration
	// and re-homing.
	channels [][]vrioChannel
	// secondaryChannels mirrors channels[0] toward the legacy fallback.
	secondaryChannels []vrioChannel
	nextTMAC          uint32
}

// vrioChannel is one VMhost's cable into one IOhost.
type vrioChannel struct {
	vmhostNIC *nic.NIC
	iohostMAC ethernet.MAC
	port      *nic.MessagePort
}

// ClientReg is one IOclient's device registrations, kept so the control
// plane can re-register them on another IOhost (automatic re-home after a
// failure, or a rebalancing move).
type ClientReg struct {
	FMAC      ethernet.MAC
	Backend   blockdev.Backend // nil without WithBlock
	NetChain  *interpose.Chain // nil means the IOhost's default chain
	BlkChain  *interpose.Chain
	BlkQueues int // submission queues to re-register with (<=1 single-queue)
}

func (s *Spec) defaults() {
	if s.VMHosts == 0 {
		s.VMHosts = 1
	}
	if s.VMsPerHost == 0 {
		s.VMsPerHost = 1
	}
	if s.SidecoresPerHost == 0 {
		s.SidecoresPerHost = 1
	}
	if s.IOhostSidecores == 0 {
		s.IOhostSidecores = 1
	}
	if s.NumIOhosts == 0 {
		s.NumIOhosts = 1
	}
	if s.Carrier == "" {
		s.Carrier = CarrierSim
	}
	if s.VolReplicas > 0 {
		if s.VolQuorum == 0 {
			s.VolQuorum = s.VolReplicas // write-all
		}
		if s.VolExtentSectors == 0 {
			s.VolExtentSectors = 128
		}
		if s.VolCapacitySectors == 0 {
			s.VolCapacitySectors = 4096
		}
		if s.VolQueues == 0 {
			s.VolQueues = 1
		}
	}
}

// Build assembles the testbed on a fresh engine.
func Build(spec Spec) *Testbed { return BuildOn(spec, sim.NewEngine()) }

// BuildOn assembles the testbed on a caller-supplied engine. The fabric
// builder uses it to put each rack on its own shard's engine; everything
// else about the build is identical to Build.
func BuildOn(spec Spec, eng *sim.Engine) *Testbed {
	spec.defaults()
	p := spec.Params
	if p == nil {
		def := params.Default()
		p = &def
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if spec.BlockLatency == 0 {
		spec.BlockLatency = p.RamdiskLatency
	}
	switch spec.Carrier {
	case "", CarrierSim:
		// Simulated cables, built below.
	case CarrierUDP, CarrierTCP:
		panic(fmt.Sprintf("cluster: the %q carrier is a real-socket transport spanning two processes; run cmd/vrio-loadgen -serve/-drive instead of a single-process Build", spec.Carrier))
	default:
		panic(fmt.Sprintf("cluster: unknown carrier %q (want %q, %q, or %q)", spec.Carrier, CarrierSim, CarrierUDP, CarrierTCP))
	}
	isVRIO := spec.Model == core.ModelVRIO || spec.Model == core.ModelVRIONoPoll
	if spec.NumIOhosts > 1 && spec.SecondaryIOhost {
		panic("cluster: NumIOhosts > 1 and SecondaryIOhost are mutually exclusive — with multiple active IOhosts the survivors are the fallback")
	}
	if (spec.NumIOhosts > 1 || spec.Placement != nil) && !isVRIO {
		panic(fmt.Sprintf("cluster: NumIOhosts/Placement require a vRIO model, got %q", spec.Model))
	}
	if spec.BlkQueues > 1 && !isVRIO {
		panic(fmt.Sprintf("cluster: BlkQueues requires a vRIO model, got %q", spec.Model))
	}
	if spec.BlkQueues > 256 {
		panic("cluster: queue ids are one byte; BlkQueues must be <= 256")
	}
	if spec.VolReplicas > 0 {
		if !isVRIO {
			panic(fmt.Sprintf("cluster: VolReplicas requires a vRIO model, got %q", spec.Model))
		}
		if spec.VolReplicas > spec.NumIOhosts {
			panic(fmt.Sprintf("cluster: VolReplicas (%d) cannot exceed NumIOhosts (%d)", spec.VolReplicas, spec.NumIOhosts))
		}
		if spec.VolQuorum > spec.VolReplicas {
			panic(fmt.Sprintf("cluster: VolQuorum (%d) cannot exceed VolReplicas (%d)", spec.VolQuorum, spec.VolReplicas))
		}
	}

	tb := &Testbed{
		Eng:     eng,
		P:       p,
		Spec:    spec,
		Metrics: trace.NewRegistry(),
		Flight:  trace.NewFlightRecorder(flightCapacity),
		pool:    bufpool.New(),
	}
	if spec.Trace {
		tb.Tracer = trace.New(tb.Eng)
	}
	// Fault plan: built first so every cable/VF/IOhost assembled below can
	// attach in deterministic build order. A nil Spec.Fault plan is inert.
	fseed := spec.FaultSeed
	if fseed == 0 {
		fseed = spec.Seed ^ 0xfa017
	}
	tb.Fault = fault.NewPlan(tb.Eng, spec.Fault, fseed)
	tb.Fault.Tracer = tb.Tracer
	tb.Switch = link.NewSwitch(tb.Eng, p.SwitchLatency)
	tb.Switch.OnDrop = func(r link.DropReason) {
		tb.Flight.Record(tb.Eng.Now(), "switch_drop", r.String(), 0)
	}
	nicCfg := nic.Config{
		ProcessCost:   p.NICProcessCost,
		CoalesceDelay: p.IRQCoalesceDelay,
		RxRingSize:    p.RxRingSize,
	}

	// Load generators: one station per VMhost (or per VM), each on its own
	// switch port.
	stations := spec.VMHosts
	if spec.StationPerVM {
		stations = spec.VMHosts * spec.VMsPerHost
	}
	for i := 0; i < stations; i++ {
		cable := link.NewDuplex(tb.Eng, p.LinkBandwidth10G, p.WireLatency)
		tb.Switch.AttachPort(cable)
		tb.Fault.AttachCable(fault.Stations, i, fault.Any, cable)
		genNIC := tb.newNIC(fmt.Sprintf("gen%d", i), nicCfg, cable.AtoB)
		cable.BtoA.SetReceiver(genNIC)
		genCore := cpu.New(tb.Eng, fmt.Sprintf("gen%d-core", i), p.ContextSwitchCost)
		vf := genNIC.AddVF(tb.mac(macStationBase+uint32(i)), nic.ModeInterrupt)
		tb.GenCores = append(tb.GenCores, genCore)
		tb.Stations = append(tb.Stations, workload.NewStation(tb.Eng, p, genCore, vf))
	}

	defer tb.attachJitter()

	switch spec.Model {
	case core.ModelOptimum:
		tb.buildLocal(nicCfg, func(hostIdx int, hostNIC *nic.NIC) localHost {
			h := core.NewOptimumHost(tb.Eng, p, fmt.Sprintf("vmhost%d", hostIdx), hostNIC)
			return localHost{addVM: func(id int, c *cpu.Core, mac ethernet.MAC, _ blockdev.Backend, _ *interpose.Chain) *core.Guest {
				return h.AddVM(id, c, mac)
			}}
		})
	case core.ModelBaseline:
		tb.buildLocal(nicCfg, func(hostIdx int, hostNIC *nic.NIC) localHost {
			ioCore := cpu.New(tb.Eng, fmt.Sprintf("vmhost%d-io", hostIdx), p.ContextSwitchCost)
			tb.IOCores = append(tb.IOCores, ioCore)
			h := core.NewBaselineHost(tb.Eng, p, fmt.Sprintf("vmhost%d", hostIdx), ioCore, hostNIC)
			return localHost{addVM: h.AddVM}
		})
	case core.ModelElvis:
		tb.buildLocal(nicCfg, func(hostIdx int, hostNIC *nic.NIC) localHost {
			var sides []*cpu.Core
			for s := 0; s < spec.SidecoresPerHost; s++ {
				sc := cpu.New(tb.Eng, fmt.Sprintf("vmhost%d-side%d", hostIdx, s), p.ContextSwitchCost)
				sides = append(sides, sc)
				tb.Sidecores = append(tb.Sidecores, sc)
			}
			h := core.NewElvisHost(tb.Eng, p, fmt.Sprintf("vmhost%d", hostIdx), sides, hostNIC, spec.Seed+uint64(hostIdx))
			return localHost{addVM: h.AddVM}
		})
	case core.ModelVRIO, core.ModelVRIONoPoll:
		tb.buildVRIO(nicCfg)
	default:
		panic(fmt.Sprintf("cluster: unknown model %q", spec.Model))
	}
	for i, h := range tb.IOHyps {
		tb.Fault.AttachIOhost(i, h)
	}
	tb.Fault.Start()
	tb.registerMetrics()
	return tb
}

// mac mints a MAC in this testbed's address block: the numbering plan's id
// shifted by Spec.MACOffset, so racks of one fabric never collide.
func (tb *Testbed) mac(id uint32) ethernet.MAC {
	return ethernet.NewMAC(tb.Spec.MACOffset + id)
}

// newNIC builds a NIC attached to the testbed-wide buffer pool.
func (tb *Testbed) newNIC(name string, cfg nic.Config, tx *link.Wire) *nic.NIC {
	n := nic.New(tb.Eng, name, cfg, tx)
	n.SetPool(tb.pool)
	return n
}

// localHost abstracts the three local models' AddVM signatures.
type localHost struct {
	addVM func(id int, c *cpu.Core, mac ethernet.MAC, blk blockdev.Backend, chain *interpose.Chain) *core.Guest
}

// buildLocal assembles optimum/baseline/elvis VMhosts on the switch.
func (tb *Testbed) buildLocal(nicCfg nic.Config, mkHost func(hostIdx int, hostNIC *nic.NIC) localHost) {
	spec := tb.Spec
	p := tb.P
	vmID := 0
	for hostIdx := 0; hostIdx < spec.VMHosts; hostIdx++ {
		cable := link.NewDuplex(tb.Eng, p.LinkBandwidth10G, p.WireLatency)
		tb.Switch.AttachPort(cable)
		tb.Fault.AttachCable(fault.Locals, hostIdx, fault.Any, cable)
		hostNIC := tb.newNIC(fmt.Sprintf("vmhost%d-nic", hostIdx), nicCfg, cable.AtoB)
		cable.BtoA.SetReceiver(hostNIC)
		h := mkHost(hostIdx, hostNIC)

		for v := 0; v < spec.VMsPerHost; v++ {
			vmCore := cpu.New(tb.Eng, fmt.Sprintf("vm%d-core", vmID), p.ContextSwitchCost)
			tb.VMCores = append(tb.VMCores, vmCore)
			var backend blockdev.Backend
			if spec.WithBlock {
				backend = tb.newBlockDevice()
			}
			var chain *interpose.Chain
			if spec.NetChain != nil {
				chain = spec.NetChain(hostIdx, v)
			}
			if spec.BlkChain != nil && chain == nil {
				chain = spec.BlkChain(hostIdx, v)
			}
			g := h.addVM(vmID, vmCore, tb.mac(macGuestBase+uint32(vmID)), backend, chain)
			tb.attachThreads(g)
			tb.Guests = append(tb.Guests, g)
			tb.GuestHost = append(tb.GuestHost, hostIdx)
			vmID++
		}
	}
}

// iohostName numbers IOhosts the way the testbed always has: the first is
// plain "iohost", extras are "iohost2", "iohost3", ... — slot 1 matches the
// legacy secondary's naming and MAC plan.
func iohostName(i int) string {
	if i == 0 {
		return "iohost"
	}
	return fmt.Sprintf("iohost%d", i+1)
}

// newIOHyp builds IOhost i's sidecores and I/O hypervisor, appending to
// Sidecores/SidecoresByIOhost/IOHyps.
func (tb *Testbed) newIOHyp(i int, mode iohyp.Mode) *iohyp.IOHypervisor {
	p := tb.P
	var sides []*cpu.Core
	for s := 0; s < tb.Spec.IOhostSidecores; s++ {
		sc := cpu.New(tb.Eng, fmt.Sprintf("%s-side%d", iohostName(i), s), p.ContextSwitchCost)
		sides = append(sides, sc)
		tb.Sidecores = append(tb.Sidecores, sc)
	}
	seed := tb.Spec.Seed
	if i > 0 {
		// Slot 1 keeps the legacy fallback's seed derivation; further slots
		// decorrelate by index.
		seed = tb.Spec.Seed ^ 0xfa11 ^ uint64(i-1)<<20
	}
	h := iohyp.New(tb.Eng, iohyp.Config{
		Params: p, Mode: mode, Sidecores: sides, Seed: seed,
		Tracer: tb.Tracer,
	})
	tb.SidecoresByIOhost = append(tb.SidecoresByIOhost, sides)
	tb.IOHyps = append(tb.IOHyps, h)
	return h
}

// attachIOhostUplink cables IOhost i to the rack switch (40G, promiscuous
// for all F MACs).
func (tb *Testbed) attachIOhostUplink(i int, nicCfg nic.Config) {
	p := tb.P
	up := link.NewDuplex(tb.Eng, p.LinkBandwidth40G, p.WireLatency)
	tb.Switch.AttachPort(up)
	tb.Fault.AttachCable(fault.Uplinks, fault.Any, i, up)
	upNIC := tb.newNIC(iohostName(i)+"-uplink", nicCfg, up.AtoB)
	up.BtoA.SetReceiver(upNIC)
	vf := upNIC.AddVF(tb.mac(macIOHostBase+100*uint32(i)), nic.ModePoll)
	upNIC.Promiscuous = vf
	tb.IOHyps[i].AttachUplink(vf)
}

// cableChannel runs the dedicated 40G cable between VMhost host and IOhost i
// and appends it to channels[i].
func (tb *Testbed) cableChannel(i, host int, nicCfg nic.Config) {
	p := tb.P
	ch := link.NewDuplex(tb.Eng, p.LinkBandwidth40G, p.WireLatency)
	tb.Fault.AttachCable(fault.Channels, host, i, ch)
	vmName := fmt.Sprintf("vmhost%d-ch", host)
	if i > 0 {
		vmName = fmt.Sprintf("vmhost%d-ch%d", host, i+1)
	}
	vmhostNIC := tb.newNIC(vmName, nicCfg, ch.AtoB)
	iohostNIC := tb.newNIC(fmt.Sprintf("%s-ch%d", iohostName(i), host), nicCfg, ch.BtoA)
	ch.AtoB.SetReceiver(iohostNIC)
	ch.BtoA.SetReceiver(vmhostNIC)
	iohostVF := iohostNIC.AddVF(tb.mac(macIOHostBase+100*uint32(i)+1+uint32(host)), nic.ModePoll)
	port := tb.IOHyps[i].AttachChannelNIC(iohostVF)
	tb.channels[i] = append(tb.channels[i], vrioChannel{
		vmhostNIC: vmhostNIC, iohostMAC: iohostVF.MAC(), port: port,
	})
}

// buildVRIO assembles VMhosts direct-cabled to NumIOhosts IOhosts, plus each
// IOhost's uplink to the switch (Figure 2b's wiring, generalized to a rack
// with several IOhosts). Every VMhost is cabled to every IOhost; Placement
// (default: everything on IOhost 0) decides which IOhost serves each
// guest's devices.
func (tb *Testbed) buildVRIO(nicCfg nic.Config) {
	spec := tb.Spec
	p := tb.P
	numIO := spec.NumIOhosts
	tb.channels = make([][]vrioChannel, numIO)

	mode := iohyp.ModePolling
	if spec.Model == core.ModelVRIONoPoll {
		mode = iohyp.ModeInterrupt
	}
	// IOhost 0 — the paper's rack IOhost.
	tb.IOHyp = tb.newIOHyp(0, mode)
	if spec.SecondaryIOhost {
		var sides2 []*cpu.Core
		for s := 0; s < spec.IOhostSidecores; s++ {
			sc := cpu.New(tb.Eng, fmt.Sprintf("iohost2-side%d", s), p.ContextSwitchCost)
			sides2 = append(sides2, sc)
		}
		tb.SecondaryIOHyp = iohyp.New(tb.Eng, iohyp.Config{
			Params: p, Mode: mode, Sidecores: sides2, Seed: spec.Seed ^ 0xfa11,
			Tracer: tb.Tracer,
		})
		up2 := link.NewDuplex(tb.Eng, p.LinkBandwidth40G, p.WireLatency)
		tb.Switch.AttachPort(up2)
		up2NIC := tb.newNIC("iohost2-uplink", nicCfg, up2.AtoB)
		up2.BtoA.SetReceiver(up2NIC)
		up2VF := up2NIC.AddVF(tb.mac(macIOHostBase+100), nic.ModePoll)
		up2NIC.Promiscuous = up2VF
		tb.SecondaryIOHyp.AttachUplink(up2VF)
	}

	// IOhost uplinks to the switch, then the extra IOhosts (2..N) with
	// theirs. For NumIOhosts: 1 this reduces exactly to the original
	// single-IOhost build order.
	tb.attachIOhostUplink(0, nicCfg)
	for i := 1; i < numIO; i++ {
		tb.newIOHyp(i, mode)
		tb.attachIOhostUplink(i, nicCfg)
	}

	vmID := 0
	for hostIdx := 0; hostIdx < spec.VMHosts; hostIdx++ {
		// Dedicated channels: VMhost <-> each IOhost, 40G direct cables.
		tb.cableChannel(0, hostIdx, nicCfg)
		if spec.SecondaryIOhost {
			// A second cable from this VMhost to the fallback IOhost.
			ch2 := link.NewDuplex(tb.Eng, p.LinkBandwidth40G, p.WireLatency)
			vmhost2NIC := tb.newNIC(fmt.Sprintf("vmhost%d-ch2", hostIdx), nicCfg, ch2.AtoB)
			iohost2NIC := tb.newNIC(fmt.Sprintf("iohost2-ch%d", hostIdx), nicCfg, ch2.BtoA)
			ch2.AtoB.SetReceiver(iohost2NIC)
			ch2.BtoA.SetReceiver(vmhost2NIC)
			io2VF := iohost2NIC.AddVF(tb.mac(macIOHostBase+101+uint32(hostIdx)), nic.ModePoll)
			port2 := tb.SecondaryIOHyp.AttachChannelNIC(io2VF)
			tb.secondaryChannels = append(tb.secondaryChannels, vrioChannel{
				vmhostNIC: vmhost2NIC, iohostMAC: io2VF.MAC(), port: port2,
			})
		}
		for i := 1; i < numIO; i++ {
			tb.cableChannel(i, hostIdx, nicCfg)
		}

		ch0 := tb.channels[0][hostIdx]
		host := core.NewVRIOHost(tb.Eng, p, fmt.Sprintf("vmhost%d", hostIdx), ch0.vmhostNIC, ch0.iohostMAC)
		host.Tracer = tb.Tracer
		for v := 0; v < spec.VMsPerHost; v++ {
			vmCore := cpu.New(tb.Eng, fmt.Sprintf("vm%d-core", vmID), p.ContextSwitchCost)
			tb.VMCores = append(tb.VMCores, vmCore)
			fMAC := tb.mac(macGuestBase + uint32(vmID))
			tMAC := tb.mac(macTransportBase + uint32(vmID))
			client := host.AddClient(core.VMConfig{
				ID:           vmID,
				Core:         vmCore,
				NetMAC:       fMAC,
				TransportMAC: tMAC,
				WithBlock:    spec.WithBlock,
				Bare:         spec.BareClients,
			})
			// Placement: which IOhost serves this guest's devices. AddClient
			// wired the client to IOhost 0's cable; anywhere else means
			// re-attaching to that IOhost's cable before first use.
			io := 0
			if spec.Placement != nil {
				io = spec.Placement(hostIdx, vmID)
				if io < 0 || io >= numIO {
					panic(fmt.Sprintf("cluster: Placement(%d, %d) = %d out of range [0,%d)", hostIdx, vmID, io, numIO))
				}
			}
			if io != 0 {
				ch := tb.channels[io][hostIdx]
				vf := ch.vmhostNIC.AddVF(tMAC, nic.ModeInterrupt)
				client.AttachChannel(vf, ch.iohostMAC)
			}
			// Port faults target the client's channel VF as it stands after
			// placement. (The legacy SecondaryIOhost mirror cables are
			// deliberately not faulted — they carry no traffic until
			// FailOverIOhost.)
			tb.Fault.AttachVF(vmID, client.Port.VF())
			hyp := tb.IOHyps[io]
			hyp.BindClient(tMAC, tb.channels[io][hostIdx].port)
			var netChain, blkChain *interpose.Chain
			if spec.NetChain != nil {
				netChain = spec.NetChain(hostIdx, v)
			}
			if spec.BlkChain != nil {
				blkChain = spec.BlkChain(hostIdx, v)
			}
			hyp.RegisterNetDevice(tMAC, client.NetDeviceID(), fMAC, netChain)
			var blkBackend blockdev.Backend
			if spec.WithBlock {
				dev := tb.newBlockDevice()
				blkBackend = dev
				if spec.BlkQueues > 1 {
					// Multi-queue submission breaks the guest-side
					// one-outstanding-per-range guarantee, so the IOhost
					// arbitrates: a range-conflict scheduler in front of the
					// device serializes overlapping writes across queues
					// while disjoint I/O runs on the device's banks.
					blkBackend = blockdev.NewScheduler(dev, tb.P.SectorSize)
					tb.BlockSchedulers = append(tb.BlockSchedulers, blkBackend.(*blockdev.Scheduler))
				}
				hyp.RegisterBlkDeviceMQ(tMAC, client.BlkDeviceID(), blkBackend, blkChain, spec.BlkQueues)
			}
			if spec.SecondaryIOhost {
				// Mirror the registrations on the fallback: the F address
				// and the (shared, distributed-storage) block backend.
				tb.SecondaryIOHyp.BindClient(tMAC, tb.secondaryChannels[hostIdx].port)
				tb.SecondaryIOHyp.RegisterNetDevice(tMAC, client.NetDeviceID(), fMAC, netChain)
				if blkBackend != nil {
					tb.SecondaryIOHyp.RegisterBlkDeviceMQ(tMAC, client.BlkDeviceID(), blkBackend, blkChain, spec.BlkQueues)
				}
			}
			if spec.VolReplicas > 0 {
				tb.buildGuestVolume(hostIdx, vmID)
			}
			tb.attachThreads(client.Guest)
			tb.VRIOClients = append(tb.VRIOClients, client)
			tb.ClientIOhost = append(tb.ClientIOhost, io)
			reg := ClientReg{FMAC: fMAC, NetChain: netChain, BlkChain: blkChain, BlkQueues: spec.BlkQueues}
			if blkBackend != nil {
				reg.Backend = blkBackend
			}
			tb.ClientRegs = append(tb.ClientRegs, reg)
			tb.Guests = append(tb.Guests, client.Guest)
			tb.GuestHost = append(tb.GuestHost, hostIdx)
			vmID++
		}
	}
}

// buildGuestVolume assembles guest vmID's distributed volume: one replica
// device (own store + version ledger) registered on EVERY IOhost, one
// dedicated transport driver per IOhost riding that VMhost's existing
// channel cable, and a core.VolumeRouter steering extents across them.
// Registering a replica on every IOhost — not just the R in an extent's
// initial replica set — is what lets rebuild retarget lost copies onto any
// survivor without new control-plane work.
func (tb *Testbed) buildGuestVolume(hostIdx, vmID int) {
	spec := tb.Spec
	p := tb.P
	if spec.NumIOhosts > 64 {
		panic("cluster: volumes support at most 64 IOhosts (MAC plan and rebuild bitmask)")
	}
	vspec := blockdev.VolumeSpec{
		Stripes:         spec.NumIOhosts,
		Replicas:        spec.VolReplicas,
		WriteQuorum:     spec.VolQuorum,
		ExtentSectors:   spec.VolExtentSectors,
		CapacitySectors: spec.VolCapacitySectors,
		Queues:          spec.VolQueues,
	}
	if err := vspec.Validate(); err != nil {
		panic(err)
	}
	// Vol device ids live far above the net/blk ids (2*vm, 2*vm+1) so the
	// id spaces can never collide on a shared IOhost registration map.
	volID := uint16(0x4000 + vmID)
	drivers := make([]*transport.Driver, spec.NumIOhosts)
	devs := make([]*blockdev.Device, spec.NumIOhosts)
	for io := 0; io < spec.NumIOhosts; io++ {
		store := blockdev.NewStore(p.SectorSize, spec.VolCapacitySectors)
		ways := spec.BlockWays
		if ways == 0 {
			ways = 4
		}
		dev := blockdev.NewDevice(tb.Eng, store, spec.BlockLatency, ways)
		dev.AttachReplica(blockdev.NewReplicaState(vspec))
		devs[io] = dev
		var backend blockdev.Backend = dev
		if spec.VolQueues > 1 {
			// Same arbitration as BlkQueues: multi-queue submission loses
			// the one-outstanding-per-range guarantee, so the IOhost
			// serializes overlapping ranges in front of the device.
			backend = blockdev.NewScheduler(dev, p.SectorSize)
		}

		ch := tb.channels[io][hostIdx]
		volMAC := tb.mac(macVolBase + 64*uint32(vmID) + uint32(io))
		vf := ch.vmhostNIC.AddVF(volMAC, nic.ModeInterrupt)
		port := nic.NewMessagePort(vf, p.MTU)
		drv := transport.NewDriver(tb.Eng, port, ch.iohostMAC, transport.Config{
			InitialTimeout: p.RetransmitTimeout,
			MaxRetransmits: p.MaxRetransmits,
		})
		drv.Tracer = tb.Tracer
		vf.OnInterrupt(func(frames [][]byte) { port.HandleBatch(frames) })
		port.OnMessage = func(_ ethernet.MAC, msg []byte, _ bool, _ int) {
			_ = drv.Deliver(msg)
		}
		drivers[io] = drv

		hyp := tb.IOHyps[io]
		hyp.BindClient(volMAC, ch.port)
		hyp.RegisterVolReplica(volMAC, volID, backend, nil, spec.VolQueues)
	}
	router := core.NewVolumeRouter(tb.Eng, vspec, volID, drivers)
	tb.Volumes = append(tb.Volumes, router)
	tb.VolReplicaDevices = append(tb.VolReplicaDevices, devs)
}

// IOhostDied tells every volume router that IOhost i is gone, queueing
// rebuilds for the replica cells it held. The rack controller's heartbeat
// detector calls this alongside its guest re-homing (rack imports cluster,
// so the hook lives here). Inert when no volumes are configured.
func (tb *Testbed) IOhostDied(i int) {
	for _, v := range tb.Volumes {
		v.OnHostDeath(i)
	}
}

// newBlockDevice builds one guest's 1 GB backing device.
func (tb *Testbed) newBlockDevice() *blockdev.Device {
	const gig = 1 << 30
	ways := tb.Spec.BlockWays
	if ways == 0 {
		ways = 4
	}
	store := blockdev.NewStore(tb.P.SectorSize, gig/uint64(tb.P.SectorSize))
	dev := blockdev.NewDevice(tb.Eng, store, tb.Spec.BlockLatency, ways)
	tb.BlockDevices = append(tb.BlockDevices, dev)
	return dev
}

func (tb *Testbed) attachThreads(g *core.Guest) {
	if !tb.Spec.WithThreads {
		tb.Threads = append(tb.Threads, nil)
		return
	}
	// Guest-level switches cost more than bare context switches: the
	// paper attributes Elvis's Figure 14 collapse to involuntary context
	// switches, whose real cost includes cache/TLB refill.
	v := guestos.NewVCPU(tb.Eng, 3*tb.P.ContextSwitchCost, tb.P.TimesliceMin)
	g.Threads = v
	tb.Threads = append(tb.Threads, v)
}

// attachJitter starts a background OS-interference process on every core:
// timer ticks and kernel housekeeping with rare long spikes. This is what
// gives the Table 4 tail-latency distributions their tails.
func (tb *Testbed) attachJitter() {
	if tb.Spec.NoJitter {
		return
	}
	rng := sim.NewRNG(tb.Spec.Seed ^ 0x71773)
	cores := append([]*cpu.Core{}, tb.VMCores...)
	cores = append(cores, tb.Sidecores...)
	cores = append(cores, tb.IOCores...)
	cores = append(cores, tb.GenCores...)
	for _, c := range cores {
		c := c
		r := rng.Fork()
		var loop func()
		loop = func() {
			tb.Eng.After(r.Exp(tb.P.JitterInterval), func() {
				d := r.Exp(tb.P.JitterMean)
				if r.Bool(tb.P.JitterSpikeProb) {
					d += tb.P.JitterSpike
				}
				c.Exec(cpu.NoOwner, cpu.KindIRQ, d, nil)
				loop()
			})
		}
		loop()
	}
}

// MigrateVM live-migrates vRIO guest vm to dstHost (§4.6): the client is
// paused for the stop-and-copy blackout, its transport re-attached to an
// SRIOV VF on the destination VMhost's channel, and the I/O hypervisor
// rebinds its devices — the F address and the remote block device never
// move, so peers and storage are undisturbed. done (optional) runs when
// the VM resumes on the destination.
func (tb *Testbed) MigrateVM(vm, dstHost int, done func()) {
	if tb.IOHyp == nil {
		panic("cluster: MigrateVM requires a vRIO testbed")
	}
	if dstHost < 0 || dstHost >= len(tb.channels[0]) {
		panic(fmt.Sprintf("cluster: no VMhost %d", dstHost))
	}
	client := tb.VRIOClients[vm]
	oldMAC := client.TransportMAC()
	client.Pause()
	tb.Eng.After(tb.P.MigrationDowntime, func() {
		// A fresh SRIOV instance on the destination's channel NIC toward the
		// IOhost serving this guest — read at resume time, since a re-home
		// (failure detection, rebalancing) may have moved the guest during
		// the blackout.
		io := tb.ClientIOhost[vm]
		tb.nextTMAC++
		newMAC := tb.mac(macTransportBase + 500 + tb.nextTMAC)
		ch := tb.channels[io][dstHost]
		vf := ch.vmhostNIC.AddVF(newMAC, nic.ModeInterrupt)
		client.AttachChannel(vf, ch.iohostMAC)
		tb.IOHyps[io].RebindClient(oldMAC, newMAC, ch.port)
		tb.GuestHost[vm] = dstHost
		client.Resume()
		if done != nil {
			done()
		}
	})
}

// RehomeClient moves guest vm's devices — and its transport channel — to
// IOhost dst (§4.6's migration machinery applied between IOhosts): the
// source, if still alive, forgets the client; the destination re-registers
// the client's devices under its unchanged T address; the client re-attaches
// to its VMhost's cable toward dst; and dst announces the F addresses so the
// rack switch re-learns them. In-flight block requests ride across on §4.5
// retransmission, since the block backends are shared (distributed storage).
func (tb *Testbed) RehomeClient(vm, dst int) {
	if tb.IOHyp == nil {
		panic("cluster: RehomeClient requires a vRIO testbed")
	}
	if dst < 0 || dst >= len(tb.IOHyps) {
		panic(fmt.Sprintf("cluster: no IOhost %d", dst))
	}
	src := tb.ClientIOhost[vm]
	if src == dst {
		return
	}
	client := tb.VRIOClients[vm]
	reg := tb.ClientRegs[vm]
	tMAC := client.TransportMAC()
	tb.IOHyps[src].UnregisterClient(tMAC)
	ch := tb.channels[dst][tb.GuestHost[vm]]
	vf := ch.vmhostNIC.VFByMAC(tMAC)
	if vf == nil {
		vf = ch.vmhostNIC.AddVF(tMAC, nic.ModeInterrupt)
	}
	client.AttachChannel(vf, ch.iohostMAC)
	hyp := tb.IOHyps[dst]
	hyp.BindClient(tMAC, ch.port)
	hyp.RegisterNetDevice(tMAC, client.NetDeviceID(), reg.FMAC, reg.NetChain)
	if reg.Backend != nil {
		hyp.RegisterBlkDeviceMQ(tMAC, client.BlkDeviceID(), reg.Backend, reg.BlkChain, reg.BlkQueues)
	}
	tb.ClientIOhost[vm] = dst
	hyp.AnnounceAddresses()
}

// FailOverIOhost crashes the primary IOhost and re-attaches every IOclient
// to the secondary fallback (§4.6 "Fault Tolerance"). Net traffic recovers
// once the switch re-learns the F addresses from the fallback's uplink;
// in-flight block requests ride across on §4.5 retransmission, since the
// fallback shares the (distributed) block backends.
func (tb *Testbed) FailOverIOhost() {
	if tb.SecondaryIOHyp == nil {
		panic("cluster: no secondary IOhost configured")
	}
	tb.IOHyp.Fail()
	for i, client := range tb.VRIOClients {
		host := tb.GuestHost[i]
		ch := tb.secondaryChannels[host]
		tb.nextTMAC++
		// The client keeps its transport MAC: the fallback already has its
		// registrations under that address; only the VF and cable change.
		vf := ch.vmhostNIC.AddVF(client.TransportMAC(), nic.ModeInterrupt)
		client.AttachChannel(vf, ch.iohostMAC)
	}
	// Gratuitous announcements: the switch must re-learn every F address
	// on the fallback's uplink port, or traffic keeps flowing to the dead
	// primary.
	tb.SecondaryIOHyp.AnnounceAddresses()
}

// StationFor returns the load generator driving guest i: its own station
// under StationPerVM, otherwise its VMhost's.
func (tb *Testbed) StationFor(guest int) *workload.Station {
	if tb.Spec.StationPerVM {
		return tb.Stations[guest]
	}
	return tb.Stations[tb.GuestHost[guest]]
}

// Run advances the simulation: warmup, then a measured window during which
// the provided Results collectors record. It returns the measured duration.
type Measurable interface {
	StartMeasuring()
	StopMeasuring()
}

// RunMeasured runs warmup + duration, toggling the collectors around the
// measurement window.
func (tb *Testbed) RunMeasured(warmup, duration sim.Time, collectors ...Measurable) sim.Time {
	tb.Eng.At(tb.Eng.Now()+warmup, func() {
		for _, c := range collectors {
			c.StartMeasuring()
		}
	})
	end := tb.Eng.Now() + warmup + duration
	tb.Eng.At(end, func() {
		for _, c := range collectors {
			c.StopMeasuring()
		}
		tb.Eng.Stop()
	})
	tb.Eng.RunUntil(end)
	return duration
}
