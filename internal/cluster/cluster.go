// Package cluster assembles the §5 testbeds: VMhosts, load generators, the
// rack switch, and — for vRIO — the IOhost with its directly cabled channel
// NICs. One Build call produces a ready testbed for any of the five
// evaluated configurations.
package cluster

import (
	"fmt"

	"vrio/internal/blockdev"
	"vrio/internal/core"
	"vrio/internal/cpu"
	"vrio/internal/ethernet"
	"vrio/internal/guestos"
	"vrio/internal/interpose"
	"vrio/internal/iohyp"
	"vrio/internal/link"
	"vrio/internal/nic"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/trace"
	"vrio/internal/workload"
)

// MAC numbering plan.
const (
	macGuestBase     = 1000 // F addresses, by global VM index
	macTransportBase = 2000 // vRIO T addresses, by global VM index
	macStationBase   = 3000 // load generators
	macHostBase      = 4000 // host NICs (baseline/elvis/optimum uplinks)
	macIOHostBase    = 5000 // IOhost channel + uplink ports
)

// Spec describes a testbed.
type Spec struct {
	Model core.ModelName
	// VMHosts and VMsPerHost shape the rack; most microbenchmarks use one
	// VMhost (Figure 6), the scalability experiment four (§5).
	VMHosts    int
	VMsPerHost int
	// SidecoresPerHost applies to Elvis; IOhostSidecores to vRIO.
	SidecoresPerHost int
	IOhostSidecores  int
	// WithBlock attaches a per-VM 1 GB block device (local for
	// baseline/elvis, remote on the IOhost for vRIO).
	WithBlock bool
	// BlockLatency overrides the ramdisk latency (0 = params default).
	BlockLatency sim.Time
	// NetChain, if set, builds the interposition chain for VM (host, vm).
	NetChain func(host, vm int) *interpose.Chain
	// BlkChain likewise for block devices.
	BlkChain func(host, vm int) *interpose.Chain
	// WithThreads attaches a guest thread scheduler (needed by Filebench).
	WithThreads bool
	// BareClients marks vRIO IOclients as bare-metal OSes (§4.6): same
	// datapath, plain host interrupts instead of ELI.
	BareClients bool
	// StationPerVM gives every VM its own load generator (the macro
	// benchmarks need enough generator capacity not to be the bottleneck;
	// the paper used four generator machines).
	StationPerVM bool
	// NoJitter disables the per-core OS-interference process (used by
	// tests that assert exact deterministic timings).
	NoJitter bool
	// Trace enables datapath span tracing: Build creates a Tracer on the
	// testbed's engine and threads it through the transport drivers and the
	// I/O hypervisor. Off (the default) costs the datapath nothing.
	Trace bool
	// SecondaryIOhost cables every VMhost to a fallback IOhost as well
	// (§4.6 "Fault Tolerance": "connecting VMhosts to a secondary fallback
	// IOhost ... requires additional cables and matching ports"). The
	// fallback mirrors all device registrations and shares the block
	// backends (distributed-storage assumption); FailOverIOhost switches
	// the clients onto it.
	SecondaryIOhost bool
	// Params: nil means params.Default().
	Params *params.P
	Seed   uint64
}

// Testbed is an assembled rack.
type Testbed struct {
	Eng    *sim.Engine
	P      *params.P
	Spec   Spec
	Switch *link.Switch

	// Guests in global order (host-major); GuestHost[i] is its host index.
	Guests    []*core.Guest
	GuestHost []int
	// Stations: one load generator per VMhost.
	Stations []*workload.Station
	// VMCores[i] is guest i's core; Sidecores are the polling cores
	// (per-host for Elvis, IOhost-resident for vRIO), IOCores the
	// baseline's shared vhost cores (one per host).
	VMCores   []*cpu.Core
	Sidecores []*cpu.Core
	IOCores   []*cpu.Core
	GenCores  []*cpu.Core

	// IOHyp is non-nil for the vRIO models.
	IOHyp *iohyp.IOHypervisor
	// VRIOClients by global VM index (vRIO models only).
	VRIOClients []*core.VRIOClient
	// BlockDevices by global VM index (when WithBlock).
	BlockDevices []*blockdev.Device
	// Threads by global VM index (when WithThreads).
	Threads []*guestos.VCPU

	// SecondaryIOHyp is the fallback I/O hypervisor (when configured).
	SecondaryIOHyp *iohyp.IOHypervisor

	// Tracer records datapath spans when Spec.Trace is set (nil otherwise —
	// the zero-cost disabled tracer).
	Tracer *trace.Tracer
	// Metrics is the per-component metrics registry, populated at Build
	// time for every testbed. Experiments read component counters through
	// it, and StartMetricsSampling snapshots it at sim-time intervals.
	Metrics *trace.Registry

	// vRIO channel plumbing per VMhost, for live migration.
	vrioChannels []vrioChannel
	// secondaryChannels mirrors vrioChannels toward the fallback IOhost.
	secondaryChannels []vrioChannel
	nextTMAC          uint32
}

// vrioChannel is one VMhost's cable into the IOhost.
type vrioChannel struct {
	vmhostNIC *nic.NIC
	iohostMAC ethernet.MAC
	port      *nic.MessagePort
}

func (s *Spec) defaults() {
	if s.VMHosts == 0 {
		s.VMHosts = 1
	}
	if s.VMsPerHost == 0 {
		s.VMsPerHost = 1
	}
	if s.SidecoresPerHost == 0 {
		s.SidecoresPerHost = 1
	}
	if s.IOhostSidecores == 0 {
		s.IOhostSidecores = 1
	}
}

// Build assembles the testbed.
func Build(spec Spec) *Testbed {
	spec.defaults()
	p := spec.Params
	if p == nil {
		def := params.Default()
		p = &def
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if spec.BlockLatency == 0 {
		spec.BlockLatency = p.RamdiskLatency
	}

	tb := &Testbed{
		Eng:     sim.NewEngine(),
		P:       p,
		Spec:    spec,
		Metrics: trace.NewRegistry(),
	}
	if spec.Trace {
		tb.Tracer = trace.New(tb.Eng)
	}
	tb.Switch = link.NewSwitch(tb.Eng, p.SwitchLatency)
	nicCfg := nic.Config{
		ProcessCost:   p.NICProcessCost,
		CoalesceDelay: p.IRQCoalesceDelay,
		RxRingSize:    p.RxRingSize,
	}

	// Load generators: one station per VMhost (or per VM), each on its own
	// switch port.
	stations := spec.VMHosts
	if spec.StationPerVM {
		stations = spec.VMHosts * spec.VMsPerHost
	}
	for i := 0; i < stations; i++ {
		cable := link.NewDuplex(tb.Eng, p.LinkBandwidth10G, p.WireLatency)
		tb.Switch.AttachPort(cable)
		genNIC := nic.New(tb.Eng, fmt.Sprintf("gen%d", i), nicCfg, cable.AtoB)
		cable.BtoA.SetReceiver(genNIC)
		genCore := cpu.New(tb.Eng, fmt.Sprintf("gen%d-core", i), p.ContextSwitchCost)
		vf := genNIC.AddVF(ethernet.NewMAC(macStationBase+uint32(i)), nic.ModeInterrupt)
		tb.GenCores = append(tb.GenCores, genCore)
		tb.Stations = append(tb.Stations, workload.NewStation(tb.Eng, p, genCore, vf))
	}

	defer tb.attachJitter()

	switch spec.Model {
	case core.ModelOptimum:
		tb.buildLocal(nicCfg, func(hostIdx int, hostNIC *nic.NIC) localHost {
			h := core.NewOptimumHost(tb.Eng, p, fmt.Sprintf("vmhost%d", hostIdx), hostNIC)
			return localHost{addVM: func(id int, c *cpu.Core, mac ethernet.MAC, _ blockdev.Backend, _ *interpose.Chain) *core.Guest {
				return h.AddVM(id, c, mac)
			}}
		})
	case core.ModelBaseline:
		tb.buildLocal(nicCfg, func(hostIdx int, hostNIC *nic.NIC) localHost {
			ioCore := cpu.New(tb.Eng, fmt.Sprintf("vmhost%d-io", hostIdx), p.ContextSwitchCost)
			tb.IOCores = append(tb.IOCores, ioCore)
			h := core.NewBaselineHost(tb.Eng, p, fmt.Sprintf("vmhost%d", hostIdx), ioCore, hostNIC)
			return localHost{addVM: h.AddVM}
		})
	case core.ModelElvis:
		tb.buildLocal(nicCfg, func(hostIdx int, hostNIC *nic.NIC) localHost {
			var sides []*cpu.Core
			for s := 0; s < spec.SidecoresPerHost; s++ {
				sc := cpu.New(tb.Eng, fmt.Sprintf("vmhost%d-side%d", hostIdx, s), p.ContextSwitchCost)
				sides = append(sides, sc)
				tb.Sidecores = append(tb.Sidecores, sc)
			}
			h := core.NewElvisHost(tb.Eng, p, fmt.Sprintf("vmhost%d", hostIdx), sides, hostNIC, spec.Seed+uint64(hostIdx))
			return localHost{addVM: h.AddVM}
		})
	case core.ModelVRIO, core.ModelVRIONoPoll:
		tb.buildVRIO(nicCfg)
	default:
		panic(fmt.Sprintf("cluster: unknown model %q", spec.Model))
	}
	tb.registerMetrics()
	return tb
}

// localHost abstracts the three local models' AddVM signatures.
type localHost struct {
	addVM func(id int, c *cpu.Core, mac ethernet.MAC, blk blockdev.Backend, chain *interpose.Chain) *core.Guest
}

// buildLocal assembles optimum/baseline/elvis VMhosts on the switch.
func (tb *Testbed) buildLocal(nicCfg nic.Config, mkHost func(hostIdx int, hostNIC *nic.NIC) localHost) {
	spec := tb.Spec
	p := tb.P
	vmID := 0
	for hostIdx := 0; hostIdx < spec.VMHosts; hostIdx++ {
		cable := link.NewDuplex(tb.Eng, p.LinkBandwidth10G, p.WireLatency)
		tb.Switch.AttachPort(cable)
		hostNIC := nic.New(tb.Eng, fmt.Sprintf("vmhost%d-nic", hostIdx), nicCfg, cable.AtoB)
		cable.BtoA.SetReceiver(hostNIC)
		h := mkHost(hostIdx, hostNIC)

		for v := 0; v < spec.VMsPerHost; v++ {
			vmCore := cpu.New(tb.Eng, fmt.Sprintf("vm%d-core", vmID), p.ContextSwitchCost)
			tb.VMCores = append(tb.VMCores, vmCore)
			var backend blockdev.Backend
			if spec.WithBlock {
				backend = tb.newBlockDevice()
			}
			var chain *interpose.Chain
			if spec.NetChain != nil {
				chain = spec.NetChain(hostIdx, v)
			}
			if spec.BlkChain != nil && chain == nil {
				chain = spec.BlkChain(hostIdx, v)
			}
			g := h.addVM(vmID, vmCore, ethernet.NewMAC(macGuestBase+uint32(vmID)), backend, chain)
			tb.attachThreads(g)
			tb.Guests = append(tb.Guests, g)
			tb.GuestHost = append(tb.GuestHost, hostIdx)
			vmID++
		}
	}
}

// buildVRIO assembles VMhosts direct-cabled to one IOhost, plus the
// IOhost's uplink to the switch (Figure 2b's wiring).
func (tb *Testbed) buildVRIO(nicCfg nic.Config) {
	spec := tb.Spec
	p := tb.P

	// IOhost sidecores and hypervisor.
	mode := iohyp.ModePolling
	if spec.Model == core.ModelVRIONoPoll {
		mode = iohyp.ModeInterrupt
	}
	var sides []*cpu.Core
	for s := 0; s < spec.IOhostSidecores; s++ {
		sc := cpu.New(tb.Eng, fmt.Sprintf("iohost-side%d", s), p.ContextSwitchCost)
		sides = append(sides, sc)
		tb.Sidecores = append(tb.Sidecores, sc)
	}
	tb.IOHyp = iohyp.New(tb.Eng, iohyp.Config{
		Params: p, Mode: mode, Sidecores: sides, Seed: spec.Seed,
		Tracer: tb.Tracer,
	})
	if spec.SecondaryIOhost {
		var sides2 []*cpu.Core
		for s := 0; s < spec.IOhostSidecores; s++ {
			sc := cpu.New(tb.Eng, fmt.Sprintf("iohost2-side%d", s), p.ContextSwitchCost)
			sides2 = append(sides2, sc)
		}
		tb.SecondaryIOHyp = iohyp.New(tb.Eng, iohyp.Config{
			Params: p, Mode: mode, Sidecores: sides2, Seed: spec.Seed ^ 0xfa11,
			Tracer: tb.Tracer,
		})
		up2 := link.NewDuplex(tb.Eng, p.LinkBandwidth40G, p.WireLatency)
		tb.Switch.AttachPort(up2)
		up2NIC := nic.New(tb.Eng, "iohost2-uplink", nicCfg, up2.AtoB)
		up2.BtoA.SetReceiver(up2NIC)
		up2VF := up2NIC.AddVF(ethernet.NewMAC(macIOHostBase+100), nic.ModePoll)
		up2NIC.Promiscuous = up2VF
		tb.SecondaryIOHyp.AttachUplink(up2VF)
	}

	// IOhost uplink to the switch (40G, promiscuous for all F MACs).
	upCable := link.NewDuplex(tb.Eng, p.LinkBandwidth40G, p.WireLatency)
	tb.Switch.AttachPort(upCable)
	upNIC := nic.New(tb.Eng, "iohost-uplink", nicCfg, upCable.AtoB)
	upCable.BtoA.SetReceiver(upNIC)
	uplinkVF := upNIC.AddVF(ethernet.NewMAC(macIOHostBase), nic.ModePoll)
	upNIC.Promiscuous = uplinkVF
	tb.IOHyp.AttachUplink(uplinkVF)

	vmID := 0
	for hostIdx := 0; hostIdx < spec.VMHosts; hostIdx++ {
		// Dedicated channel: VMhost <-> IOhost, 40G direct cable.
		ch := link.NewDuplex(tb.Eng, p.LinkBandwidth40G, p.WireLatency)
		vmhostNIC := nic.New(tb.Eng, fmt.Sprintf("vmhost%d-ch", hostIdx), nicCfg, ch.AtoB)
		iohostNIC := nic.New(tb.Eng, fmt.Sprintf("iohost-ch%d", hostIdx), nicCfg, ch.BtoA)
		ch.AtoB.SetReceiver(iohostNIC)
		ch.BtoA.SetReceiver(vmhostNIC)
		iohostVF := iohostNIC.AddVF(ethernet.NewMAC(macIOHostBase+1+uint32(hostIdx)), nic.ModePoll)
		port := tb.IOHyp.AttachChannelNIC(iohostVF)
		tb.vrioChannels = append(tb.vrioChannels, vrioChannel{
			vmhostNIC: vmhostNIC, iohostMAC: iohostVF.MAC(), port: port,
		})
		if spec.SecondaryIOhost {
			// A second cable from this VMhost to the fallback IOhost.
			ch2 := link.NewDuplex(tb.Eng, p.LinkBandwidth40G, p.WireLatency)
			vmhost2NIC := nic.New(tb.Eng, fmt.Sprintf("vmhost%d-ch2", hostIdx), nicCfg, ch2.AtoB)
			iohost2NIC := nic.New(tb.Eng, fmt.Sprintf("iohost2-ch%d", hostIdx), nicCfg, ch2.BtoA)
			ch2.AtoB.SetReceiver(iohost2NIC)
			ch2.BtoA.SetReceiver(vmhost2NIC)
			io2VF := iohost2NIC.AddVF(ethernet.NewMAC(macIOHostBase+101+uint32(hostIdx)), nic.ModePoll)
			port2 := tb.SecondaryIOHyp.AttachChannelNIC(io2VF)
			tb.secondaryChannels = append(tb.secondaryChannels, vrioChannel{
				vmhostNIC: vmhost2NIC, iohostMAC: io2VF.MAC(), port: port2,
			})
		}

		host := core.NewVRIOHost(tb.Eng, p, fmt.Sprintf("vmhost%d", hostIdx), vmhostNIC, iohostVF.MAC())
		host.Tracer = tb.Tracer
		for v := 0; v < spec.VMsPerHost; v++ {
			vmCore := cpu.New(tb.Eng, fmt.Sprintf("vm%d-core", vmID), p.ContextSwitchCost)
			tb.VMCores = append(tb.VMCores, vmCore)
			fMAC := ethernet.NewMAC(macGuestBase + uint32(vmID))
			tMAC := ethernet.NewMAC(macTransportBase + uint32(vmID))
			client := host.AddClient(core.VMConfig{
				ID:           vmID,
				Core:         vmCore,
				NetMAC:       fMAC,
				TransportMAC: tMAC,
				WithBlock:    spec.WithBlock,
				Bare:         spec.BareClients,
			})
			tb.IOHyp.BindClient(tMAC, port)
			var netChain, blkChain *interpose.Chain
			if spec.NetChain != nil {
				netChain = spec.NetChain(hostIdx, v)
			}
			if spec.BlkChain != nil {
				blkChain = spec.BlkChain(hostIdx, v)
			}
			tb.IOHyp.RegisterNetDevice(tMAC, client.NetDeviceID(), fMAC, netChain)
			var dev *blockdev.Device
			if spec.WithBlock {
				dev = tb.newBlockDevice()
				tb.IOHyp.RegisterBlkDevice(tMAC, client.BlkDeviceID(), dev, blkChain)
			}
			if spec.SecondaryIOhost {
				// Mirror the registrations on the fallback: the F address
				// and the (shared, distributed-storage) block backend.
				tb.SecondaryIOHyp.BindClient(tMAC, tb.secondaryChannels[hostIdx].port)
				tb.SecondaryIOHyp.RegisterNetDevice(tMAC, client.NetDeviceID(), fMAC, netChain)
				if dev != nil {
					tb.SecondaryIOHyp.RegisterBlkDevice(tMAC, client.BlkDeviceID(), dev, blkChain)
				}
			}
			tb.attachThreads(client.Guest)
			tb.VRIOClients = append(tb.VRIOClients, client)
			tb.Guests = append(tb.Guests, client.Guest)
			tb.GuestHost = append(tb.GuestHost, hostIdx)
			vmID++
		}
	}
}

// newBlockDevice builds one guest's 1 GB backing device.
func (tb *Testbed) newBlockDevice() *blockdev.Device {
	const gig = 1 << 30
	store := blockdev.NewStore(tb.P.SectorSize, gig/uint64(tb.P.SectorSize))
	dev := blockdev.NewDevice(tb.Eng, store, tb.Spec.BlockLatency, 4)
	tb.BlockDevices = append(tb.BlockDevices, dev)
	return dev
}

func (tb *Testbed) attachThreads(g *core.Guest) {
	if !tb.Spec.WithThreads {
		tb.Threads = append(tb.Threads, nil)
		return
	}
	// Guest-level switches cost more than bare context switches: the
	// paper attributes Elvis's Figure 14 collapse to involuntary context
	// switches, whose real cost includes cache/TLB refill.
	v := guestos.NewVCPU(tb.Eng, 3*tb.P.ContextSwitchCost, tb.P.TimesliceMin)
	g.Threads = v
	tb.Threads = append(tb.Threads, v)
}

// attachJitter starts a background OS-interference process on every core:
// timer ticks and kernel housekeeping with rare long spikes. This is what
// gives the Table 4 tail-latency distributions their tails.
func (tb *Testbed) attachJitter() {
	if tb.Spec.NoJitter {
		return
	}
	rng := sim.NewRNG(tb.Spec.Seed ^ 0x71773)
	cores := append([]*cpu.Core{}, tb.VMCores...)
	cores = append(cores, tb.Sidecores...)
	cores = append(cores, tb.IOCores...)
	cores = append(cores, tb.GenCores...)
	for _, c := range cores {
		c := c
		r := rng.Fork()
		var loop func()
		loop = func() {
			tb.Eng.After(r.Exp(tb.P.JitterInterval), func() {
				d := r.Exp(tb.P.JitterMean)
				if r.Bool(tb.P.JitterSpikeProb) {
					d += tb.P.JitterSpike
				}
				c.Exec(cpu.NoOwner, cpu.KindIRQ, d, nil)
				loop()
			})
		}
		loop()
	}
}

// MigrateVM live-migrates vRIO guest vm to dstHost (§4.6): the client is
// paused for the stop-and-copy blackout, its transport re-attached to an
// SRIOV VF on the destination VMhost's channel, and the I/O hypervisor
// rebinds its devices — the F address and the remote block device never
// move, so peers and storage are undisturbed. done (optional) runs when
// the VM resumes on the destination.
func (tb *Testbed) MigrateVM(vm, dstHost int, done func()) {
	if tb.IOHyp == nil {
		panic("cluster: MigrateVM requires a vRIO testbed")
	}
	if dstHost < 0 || dstHost >= len(tb.vrioChannels) {
		panic(fmt.Sprintf("cluster: no VMhost %d", dstHost))
	}
	client := tb.VRIOClients[vm]
	oldMAC := client.TransportMAC()
	client.Pause()
	tb.Eng.After(tb.P.MigrationDowntime, func() {
		// A fresh SRIOV instance on the destination's channel NIC.
		tb.nextTMAC++
		newMAC := ethernet.NewMAC(macTransportBase + 500 + tb.nextTMAC)
		ch := tb.vrioChannels[dstHost]
		vf := ch.vmhostNIC.AddVF(newMAC, nic.ModeInterrupt)
		client.AttachChannel(vf, ch.iohostMAC)
		tb.IOHyp.RebindClient(oldMAC, newMAC, ch.port)
		tb.GuestHost[vm] = dstHost
		client.Resume()
		if done != nil {
			done()
		}
	})
}

// FailOverIOhost crashes the primary IOhost and re-attaches every IOclient
// to the secondary fallback (§4.6 "Fault Tolerance"). Net traffic recovers
// once the switch re-learns the F addresses from the fallback's uplink;
// in-flight block requests ride across on §4.5 retransmission, since the
// fallback shares the (distributed) block backends.
func (tb *Testbed) FailOverIOhost() {
	if tb.SecondaryIOHyp == nil {
		panic("cluster: no secondary IOhost configured")
	}
	tb.IOHyp.Fail()
	for i, client := range tb.VRIOClients {
		host := tb.GuestHost[i]
		ch := tb.secondaryChannels[host]
		tb.nextTMAC++
		// The client keeps its transport MAC: the fallback already has its
		// registrations under that address; only the VF and cable change.
		vf := ch.vmhostNIC.AddVF(client.TransportMAC(), nic.ModeInterrupt)
		client.AttachChannel(vf, ch.iohostMAC)
	}
	// Gratuitous announcements: the switch must re-learn every F address
	// on the fallback's uplink port, or traffic keeps flowing to the dead
	// primary.
	tb.SecondaryIOHyp.AnnounceAddresses()
}

// StationFor returns the load generator driving guest i: its own station
// under StationPerVM, otherwise its VMhost's.
func (tb *Testbed) StationFor(guest int) *workload.Station {
	if tb.Spec.StationPerVM {
		return tb.Stations[guest]
	}
	return tb.Stations[tb.GuestHost[guest]]
}

// Run advances the simulation: warmup, then a measured window during which
// the provided Results collectors record. It returns the measured duration.
type Measurable interface {
	StartMeasuring()
	StopMeasuring()
}

// RunMeasured runs warmup + duration, toggling the collectors around the
// measurement window.
func (tb *Testbed) RunMeasured(warmup, duration sim.Time, collectors ...Measurable) sim.Time {
	tb.Eng.At(tb.Eng.Now()+warmup, func() {
		for _, c := range collectors {
			c.StartMeasuring()
		}
	})
	end := tb.Eng.Now() + warmup + duration
	tb.Eng.At(end, func() {
		for _, c := range collectors {
			c.StopMeasuring()
		}
		tb.Eng.Stop()
	})
	tb.Eng.RunUntil(end)
	return duration
}
