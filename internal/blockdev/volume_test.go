package blockdev

import (
	"errors"
	"testing"

	"vrio/internal/sim"
)

func volSpec() VolumeSpec {
	return VolumeSpec{
		Stripes: 3, Replicas: 2, WriteQuorum: 1,
		ExtentSectors: 8, CapacitySectors: 64, Queues: 1,
	}
}

func TestVolumeSpecValidate(t *testing.T) {
	good := volSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []func(*VolumeSpec){
		func(s *VolumeSpec) { s.Stripes = 0 },
		func(s *VolumeSpec) { s.Replicas = 0 },
		func(s *VolumeSpec) { s.Replicas = 4 }, // > stripes
		func(s *VolumeSpec) { s.WriteQuorum = 0 },
		func(s *VolumeSpec) { s.WriteQuorum = 3 }, // > replicas
		func(s *VolumeSpec) { s.ExtentSectors = 0 },
		func(s *VolumeSpec) { s.CapacitySectors = 0 },
		func(s *VolumeSpec) { s.Queues = 0 },
		func(s *VolumeSpec) { s.Queues = 300 },
	}
	for i, mut := range cases {
		s := volSpec()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: bad spec accepted: %+v", i, s)
		}
	}
	if got := good.NumExtents(); got != 8 {
		t.Fatalf("NumExtents = %d, want 8", got)
	}
	if got := good.ExtentOf(17); got != 2 {
		t.Fatalf("ExtentOf(17) = %d, want 2", got)
	}
}

func TestExtentMapLayoutAndRetarget(t *testing.T) {
	spec := volSpec()
	m := NewExtentMap(spec)
	// Default rotation: slot j of extent e on host (e+j) mod 3.
	for e := uint64(0); e < spec.NumExtents(); e++ {
		for slot := 0; slot < spec.Replicas; slot++ {
			want := int((e + uint64(slot)) % 3)
			if got := m.Replica(e, slot); got != want {
				t.Fatalf("Replica(%d,%d) = %d, want %d", e, slot, got, want)
			}
			if got := m.Slot(e, want); got != slot {
				t.Fatalf("Slot(%d,%d) = %d, want %d", e, want, got, slot)
			}
		}
	}
	// Replica slots of one extent land on distinct hosts.
	if m.Replica(5, 0) == m.Replica(5, 1) {
		t.Fatal("replica slots collided on one host")
	}
	// Retarget moves exactly one cell.
	m.Retarget(5, 1, 1)
	if got := m.Replica(5, 1); got != 1 {
		t.Fatalf("after Retarget, Replica(5,1) = %d, want 1", got)
	}
	if got := m.Replica(5, 0); got != 2 {
		t.Fatalf("Retarget disturbed slot 0: %d, want 2", got)
	}
	if got := m.Replica(4, 1); got != 2 {
		t.Fatalf("Retarget disturbed extent 4: %d, want 2", got)
	}
	if got := m.Slot(5, 1); got != 1 {
		t.Fatalf("Slot(5,1) after retarget = %d, want 1", got)
	}
	if got := m.Slot(5, 0); got != -1 {
		t.Fatalf("Slot(5,0) after retarget = %d, want -1", got)
	}
}

// replicaDevice builds a replica-enabled device over a tiny store with
// volSpec's extent geometry (8-sector extents).
func replicaDevice(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	store := NewStore(512, 64)
	dev := NewDevice(eng, store, sim.Microsecond, 1)
	dev.AttachReplica(NewReplicaState(volSpec()))
	return eng, dev
}

func submit(t *testing.T, eng *sim.Engine, dev *Device, req Request) Response {
	t.Helper()
	var got *Response
	dev.Submit(req, func(r Response) { got = &r })
	eng.Run()
	if got == nil {
		t.Fatal("request never completed")
	}
	return *got
}

func TestReplicaVersionChecks(t *testing.T) {
	eng, dev := replicaDevice(t)
	data := make([]byte, 512)
	for i := range data {
		data[i] = 0xAB
	}

	// v1 write lands.
	if r := submit(t, eng, dev, Request{Op: OpVolWrite, Sector: 8, Data: data, Extent: 1, Version: 1}); r.Err != nil {
		t.Fatalf("v1 write failed: %v", r.Err)
	}
	if got := dev.Replica().Version(1); got != 1 {
		t.Fatalf("extent version = %d, want 1", got)
	}
	// A sub-extent v3 write after v1 is a gap — the replica missed v2, and
	// advancing the fence past the gap would let v2's sectors read back
	// stale. It must be refused, leaving the ledger at v1.
	r := submit(t, eng, dev, Request{Op: OpVolWrite, Sector: 8, Data: data, Extent: 1, Version: 3})
	if !errors.Is(r.Err, ErrVersionGap) {
		t.Fatalf("gapped write: got %v, want ErrVersionGap", r.Err)
	}
	if got := dev.Replica().Version(1); got != 1 {
		t.Fatalf("gapped write moved the ledger to v%d, want v1", got)
	}
	// The contiguous v2 write lands.
	if r := submit(t, eng, dev, Request{Op: OpVolWrite, Sector: 8, Data: data, Extent: 1, Version: 2}); r.Err != nil {
		t.Fatalf("v2 write failed: %v", r.Err)
	}
	// A stale v1 re-write is rejected.
	r = submit(t, eng, dev, Request{Op: OpVolWrite, Sector: 8, Data: data, Extent: 1, Version: 1})
	if !errors.Is(r.Err, ErrStaleWrite) {
		t.Fatalf("stale write: got %v, want ErrStaleWrite", r.Err)
	}
	// A full-extent write (extent 1 = sectors 8..16, 8 sectors) replaces
	// every byte, so it may jump the version: v5 after v2 is accepted.
	fullData := make([]byte, 8*512)
	for i := range fullData {
		fullData[i] = 0xCD
	}
	if r := submit(t, eng, dev, Request{Op: OpVolWrite, Sector: 8, Data: fullData, Extent: 1, Version: 5}); r.Err != nil {
		t.Fatalf("full-extent v5 write failed: %v", r.Err)
	}
	if got := dev.Replica().Version(1); got != 5 {
		t.Fatalf("extent version = %d, want 5", got)
	}
	// Reads demanding <= v5 succeed and report the replica's version; a
	// read demanding v6 is refused.
	rr := submit(t, eng, dev, Request{Op: OpVolRead, Sector: 8, Sectors: 1, Extent: 1, Version: 5})
	if rr.Err != nil || rr.Data[0] != 0xCD {
		t.Fatalf("v5 read: err=%v", rr.Err)
	}
	if rr.Version != 5 {
		t.Fatalf("read reported replica version %d, want 5", rr.Version)
	}
	rr = submit(t, eng, dev, Request{Op: OpVolRead, Sector: 8, Sectors: 1, Extent: 1, Version: 6})
	if !errors.Is(rr.Err, ErrStaleReplica) {
		t.Fatalf("stale replica read: got %v, want ErrStaleReplica", rr.Err)
	}
}

// TestReplicaCoversExtent pins the full-extent detection the version fence's
// jump rule rests on, including the final partial extent.
func TestReplicaCoversExtent(t *testing.T) {
	rs := NewReplicaState(VolumeSpec{
		Stripes: 1, Replicas: 1, WriteQuorum: 1,
		ExtentSectors: 8, CapacitySectors: 60, Queues: 1, // final extent: 4 sectors
	})
	if !rs.CoversExtent(1, 8, 8*512, 512) {
		t.Fatal("whole 8-sector extent not recognized as full")
	}
	if rs.CoversExtent(1, 8, 4*512, 512) {
		t.Fatal("half an extent recognized as full")
	}
	if rs.CoversExtent(1, 12, 8*512, 512) {
		t.Fatal("misaligned 8-sector span recognized as full")
	}
	// Extent 7 is the 4-sector tail (sectors 56..60).
	if !rs.CoversExtent(7, 56, 4*512, 512) {
		t.Fatal("full partial tail extent not recognized as full")
	}
	if rs.CoversExtent(7, 56, 8*512, 512) {
		t.Fatal("overlong tail write recognized as full")
	}
	if rs.CoversExtent(8, 64, 8*512, 512) {
		t.Fatal("out-of-range extent recognized as full")
	}
}

func TestVolOpsNeedReplicaState(t *testing.T) {
	eng := sim.NewEngine()
	dev := NewDevice(eng, NewStore(512, 64), sim.Microsecond, 1)
	r := submit(t, eng, dev, Request{Op: OpVolWrite, Sector: 0, Data: make([]byte, 512), Version: 1})
	if !errors.Is(r.Err, ErrNotReplica) {
		t.Fatalf("vol write on plain device: got %v, want ErrNotReplica", r.Err)
	}
}

func TestSchedulerSpansVolOps(t *testing.T) {
	s := NewScheduler(nil, 512)
	sector, n := s.span(Request{Op: OpVolWrite, Sector: 4, Data: make([]byte, 1024)})
	if sector != 4 || n != 2 {
		t.Fatalf("vol-write span = (%d,%d), want (4,2)", sector, n)
	}
	sector, n = s.span(Request{Op: OpVolRead, Sector: 4, Sectors: 3})
	if sector != 4 || n != 3 {
		t.Fatalf("vol-read span = (%d,%d), want (4,3)", sector, n)
	}
}
