package blockdev

import (
	"errors"
	"fmt"
)

// Volume distribution (FlexBSO-style, arxiv 2409.02381): a volume's sector
// space is cut into fixed-size extents, each extent is placed on R of the N
// IOhosts ("stripes"), and every replica tracks a per-extent version counter
// so stale copies can be fenced after crashes and rebuilds. This file holds
// the data-model half — VolumeSpec (geometry), ExtentMap (placement), and
// ReplicaState (versions); the guest-side router that drives quorum writes,
// replica-steered reads, and rebuild lives in internal/core.

// Volume distribution errors.
var (
	// ErrNotReplica reports a vol op sent to a device with no ReplicaState.
	ErrNotReplica = errors.New("blockdev: device is not a volume replica")
	// ErrStaleWrite reports a replica rejecting a write whose version is
	// older than (or a duplicate of) the extent version it already holds.
	ErrStaleWrite = errors.New("blockdev: stale write version")
	// ErrVersionGap reports a replica rejecting a sub-extent write whose
	// version is more than one ahead of what the replica holds: the replica
	// provably missed an earlier write, and accepting the new one would
	// un-fence the missed sectors. Only a full-extent write (which replaces
	// every byte) may jump the version forward.
	ErrVersionGap = errors.New("blockdev: replica missed an earlier write version")
	// ErrStaleReplica reports a replica refusing a read because it holds an
	// extent version older than the reader's committed minimum.
	ErrStaleReplica = errors.New("blockdev: replica holds stale extent")
	// ErrQuorumLost reports a write that cannot reach W live replicas; the
	// router fails it immediately rather than letting it hang.
	ErrQuorumLost = errors.New("blockdev: write quorum unreachable")
	// ErrNoReplica reports a read for which every candidate replica failed
	// or answered stale.
	ErrNoReplica = errors.New("blockdev: no replica could serve the read")
)

// VolumeSpec is the geometry of a distributed volume: CapacitySectors of
// address space cut into ExtentSectors-sized extents, striped across
// Stripes IOhosts with Replicas copies per extent, writes acknowledged
// after WriteQuorum replica acks.
type VolumeSpec struct {
	// Stripes is the number of IOhosts extents are spread across (N).
	Stripes int
	// Replicas is the copy count per extent (R), 1 <= R <= Stripes.
	Replicas int
	// WriteQuorum is the ack count a write needs before completion (W),
	// 1 <= W <= Replicas.
	WriteQuorum int
	// ExtentSectors is the stripe unit in sectors.
	ExtentSectors uint64
	// CapacitySectors is the volume size in sectors.
	CapacitySectors uint64
	// Queues is the submission queue count per replica (multi-queue id
	// space from DESIGN.md §15); the router tags extent e onto queue
	// e mod Queues.
	Queues int
}

// Validate checks the geometry, returning a descriptive error.
func (s VolumeSpec) Validate() error {
	switch {
	case s.Stripes < 1:
		return fmt.Errorf("blockdev: volume needs at least one stripe, got %d", s.Stripes)
	case s.Replicas < 1 || s.Replicas > s.Stripes:
		return fmt.Errorf("blockdev: replicas must be in [1, stripes=%d], got %d", s.Stripes, s.Replicas)
	case s.WriteQuorum < 1 || s.WriteQuorum > s.Replicas:
		return fmt.Errorf("blockdev: write quorum must be in [1, replicas=%d], got %d", s.Replicas, s.WriteQuorum)
	case s.ExtentSectors == 0:
		return fmt.Errorf("blockdev: extent size must be positive")
	case s.CapacitySectors == 0:
		return fmt.Errorf("blockdev: volume capacity must be positive")
	case s.Queues < 1 || s.Queues > 256:
		return fmt.Errorf("blockdev: queues must be in [1, 256], got %d", s.Queues)
	}
	return nil
}

// NumExtents reports how many extents the capacity divides into (the last
// one may be partial).
func (s VolumeSpec) NumExtents() uint64 {
	return (s.CapacitySectors + s.ExtentSectors - 1) / s.ExtentSectors
}

// ExtentOf maps a sector to its extent id.
func (s VolumeSpec) ExtentOf(sector uint64) uint64 { return sector / s.ExtentSectors }

// ExtentMap is the placement function: which IOhost holds replica slot j of
// extent e. The default layout is rotational — slot j of extent e lives on
// host (e+j) mod N — which spreads both primaries and replica load evenly;
// rebuild retargets individual (extent, slot) cells onto survivors.
type ExtentMap struct {
	spec VolumeSpec
	// overrides holds retargeted cells, keyed extent*R+slot. Only rebuild
	// writes here, so a healthy volume stays allocation-free.
	overrides map[uint64]int
}

// NewExtentMap builds the default rotational layout for spec.
func NewExtentMap(spec VolumeSpec) *ExtentMap {
	return &ExtentMap{spec: spec}
}

// Replica reports the host holding replica slot j of extent e.
func (m *ExtentMap) Replica(e uint64, slot int) int {
	if h, ok := m.overrides[e*uint64(m.spec.Replicas)+uint64(slot)]; ok {
		return h
	}
	return int((e + uint64(slot)) % uint64(m.spec.Stripes))
}

// Retarget moves replica slot j of extent e onto host (rebuild placing a
// lost copy on a survivor).
func (m *ExtentMap) Retarget(e uint64, slot int, host int) {
	if m.overrides == nil {
		m.overrides = make(map[uint64]int)
	}
	m.overrides[e*uint64(m.spec.Replicas)+uint64(slot)] = host
}

// Slot reports which replica slot of extent e lives on host, or -1 if the
// host holds no copy of e.
func (m *ExtentMap) Slot(e uint64, host int) int {
	for slot := 0; slot < m.spec.Replicas; slot++ {
		if m.Replica(e, slot) == host {
			return slot
		}
	}
	return -1
}

// ReplicaState is one replica's per-extent version ledger. The ledger keeps
// a contiguity invariant: a replica at version v holds the cumulative effect
// of every write 1..v of that extent. Sub-extent writes therefore must carry
// exactly version v+1 (a bigger jump means the replica missed a write —
// ErrVersionGap); only a full-extent write, which replaces every byte, may
// jump the version forward. Reads are served only when the replica holds at
// least the version the reader demands. Together these fence copies that
// missed writes during loss, a crash, or a rebuild.
type ReplicaState struct {
	extentSectors   uint64
	capacitySectors uint64
	versions        map[uint64]uint64
}

// NewReplicaState builds an empty ledger (every extent at version 0) for a
// volume with spec's extent geometry; the geometry is what lets the ledger
// tell full-extent writes (which may jump versions) from partial ones.
func NewReplicaState(spec VolumeSpec) *ReplicaState {
	if spec.ExtentSectors == 0 || spec.CapacitySectors == 0 {
		panic("blockdev: ReplicaState needs the volume's extent geometry")
	}
	return &ReplicaState{
		extentSectors:   spec.ExtentSectors,
		capacitySectors: spec.CapacitySectors,
		versions:        make(map[uint64]uint64),
	}
}

// Version reports the replica's current version for extent e (0 = never
// written).
func (rs *ReplicaState) Version(e uint64) uint64 { return rs.versions[e] }

// Advance raises extent e's version to v if v is newer.
func (rs *ReplicaState) Advance(e, v uint64) {
	if v > rs.versions[e] {
		rs.versions[e] = v
	}
}

// CoversExtent reports whether a write of dataLen bytes at sector replaces
// every byte of extent e (the final extent may be partial). Such a write
// leaves no sector behind for a missed version to hide in, so the version
// fence lets it jump the extent version forward.
func (rs *ReplicaState) CoversExtent(e, sector uint64, dataLen, sectorSize int) bool {
	start := e * rs.extentSectors
	if start >= rs.capacitySectors {
		return false
	}
	n := rs.extentSectors
	if start+n > rs.capacitySectors {
		n = rs.capacitySectors - start
	}
	return sector == start && uint64(dataLen) == n*uint64(sectorSize)
}
