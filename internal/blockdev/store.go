// Package blockdev implements the storage substrate: an in-memory sector
// store (the ramdisk of §5 "Making a Local Device Remote"), latency-modelled
// devices (ramdisk and SATA-SSD profiles), the §4.4 sector-alignment
// zero-copy accounting, and the guest disk scheduler that guarantees at most
// one outstanding request per block — the property §4.5's retransmission
// correctness argument rests on.
package blockdev

import (
	"errors"
	"fmt"
)

// Store is an in-memory sector-addressed disk. Unwritten sectors read as
// zeros. The zero value is not usable; call NewStore.
type Store struct {
	sectorSize int
	capacity   uint64 // in sectors
	data       map[uint64][]byte
}

// Errors returned by Store.
var (
	ErrUnaligned    = errors.New("blockdev: buffer not a multiple of the sector size")
	ErrOutOfRange   = errors.New("blockdev: access beyond device capacity")
	ErrBadOp        = errors.New("blockdev: unknown operation")
	ErrZeroSectors  = errors.New("blockdev: zero-length access")
	ErrDeviceFailed = errors.New("blockdev: injected device failure")
)

// NewStore builds a store of capacitySectors sectors of sectorSize bytes.
func NewStore(sectorSize int, capacitySectors uint64) *Store {
	if sectorSize <= 0 || sectorSize&(sectorSize-1) != 0 {
		panic(fmt.Sprintf("blockdev: sector size %d must be a positive power of two", sectorSize))
	}
	if capacitySectors == 0 {
		panic("blockdev: zero capacity")
	}
	return &Store{
		sectorSize: sectorSize,
		capacity:   capacitySectors,
		data:       make(map[uint64][]byte),
	}
}

// SectorSize reports the sector size in bytes.
func (s *Store) SectorSize() int { return s.sectorSize }

// Capacity reports the device size in sectors.
func (s *Store) Capacity() uint64 { return s.capacity }

// Write stores data (a whole number of sectors) starting at sector.
func (s *Store) Write(sector uint64, data []byte) error {
	if len(data) == 0 {
		return ErrZeroSectors
	}
	if len(data)%s.sectorSize != 0 {
		return fmt.Errorf("%w: %d bytes", ErrUnaligned, len(data))
	}
	n := uint64(len(data) / s.sectorSize)
	if sector+n > s.capacity {
		return fmt.Errorf("%w: sector %d + %d > %d", ErrOutOfRange, sector, n, s.capacity)
	}
	for i := uint64(0); i < n; i++ {
		sec := make([]byte, s.sectorSize)
		copy(sec, data[int(i)*s.sectorSize:])
		s.data[sector+i] = sec
	}
	return nil
}

// Read returns n sectors starting at sector.
func (s *Store) Read(sector uint64, n int) ([]byte, error) {
	if n <= 0 {
		return nil, ErrZeroSectors
	}
	if sector+uint64(n) > s.capacity {
		return nil, fmt.Errorf("%w: sector %d + %d > %d", ErrOutOfRange, sector, n, s.capacity)
	}
	out := make([]byte, n*s.sectorSize)
	for i := 0; i < n; i++ {
		if sec, ok := s.data[sector+uint64(i)]; ok {
			copy(out[i*s.sectorSize:], sec)
		}
	}
	return out, nil
}

// AlignmentCopy reports how many bytes of a write buffer must be copied
// (rather than zero-copied) because they are not sector aligned: §4.4's
// "the worker uses for zero copy inner portions of the buffer that are
// aligned, while copying the buffer edges". bufOffset is the buffer's byte
// offset within its containing page/DMA area.
func AlignmentCopy(bufOffset, length, sectorSize int) int {
	if length <= 0 {
		return 0
	}
	head := 0
	if mis := bufOffset % sectorSize; mis != 0 {
		head = sectorSize - mis
		if head > length {
			return length // entire buffer inside one misaligned sector
		}
	}
	tail := (bufOffset + length) % sectorSize
	if head+tail > length {
		return length
	}
	return head + tail
}
