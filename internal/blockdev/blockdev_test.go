package blockdev

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"vrio/internal/sim"
)

func TestStoreReadWriteRoundTrip(t *testing.T) {
	s := NewStore(512, 1000)
	data := make([]byte, 2048)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := s.Write(10, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read-back mismatch")
	}
}

func TestStoreUnwrittenReadsZero(t *testing.T) {
	s := NewStore(512, 10)
	got, err := s.Read(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten sector not zero")
		}
	}
}

func TestStoreValidation(t *testing.T) {
	s := NewStore(512, 10)
	if err := s.Write(0, make([]byte, 100)); !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned write err = %v", err)
	}
	if err := s.Write(9, make([]byte, 1024)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overflow write err = %v", err)
	}
	if err := s.Write(0, nil); !errors.Is(err, ErrZeroSectors) {
		t.Errorf("empty write err = %v", err)
	}
	if _, err := s.Read(9, 2); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overflow read err = %v", err)
	}
	if _, err := s.Read(0, 0); !errors.Is(err, ErrZeroSectors) {
		t.Errorf("empty read err = %v", err)
	}
}

func TestStorePartialOverwrite(t *testing.T) {
	s := NewStore(512, 10)
	s.Write(0, bytes.Repeat([]byte{1}, 1536)) // sectors 0,1,2
	s.Write(1, bytes.Repeat([]byte{2}, 512))  // overwrite sector 1
	got, _ := s.Read(0, 3)
	if got[0] != 1 || got[512] != 2 || got[1024] != 1 {
		t.Error("partial overwrite wrong")
	}
}

func TestNewStorePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewStore(0, 10) },
		func() { NewStore(513, 10) },
		func() { NewStore(512, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad store accepted")
				}
			}()
			fn()
		}()
	}
}

func TestAlignmentCopy(t *testing.T) {
	cases := []struct{ off, length, sector, want int }{
		{0, 4096, 512, 0},     // fully aligned: pure zero copy
		{0, 512, 512, 0},      //
		{100, 4096, 512, 512}, // head 412 + tail 100
		{0, 1000, 512, 488},   // tail misalignment only
		{100, 200, 512, 200},  // entirely inside one sector
		{0, 0, 512, 0},        // empty
		{512, 512, 512, 0},    // aligned offset
	}
	for _, c := range cases {
		if got := AlignmentCopy(c.off, c.length, c.sector); got != c.want {
			t.Errorf("AlignmentCopy(%d,%d,%d) = %d, want %d",
				c.off, c.length, c.sector, got, c.want)
		}
	}
}

// Property: copied bytes never exceed the buffer and aligned buffers copy 0.
func TestAlignmentCopyProperty(t *testing.T) {
	f := func(off, length uint16) bool {
		c := AlignmentCopy(int(off), int(length), 512)
		if c < 0 || c > int(length) {
			return false
		}
		if off%512 == 0 && length%512 == 0 && c != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeviceLatencyAndCompletion(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, NewStore(512, 100), 2500, 1)
	var doneAt sim.Time
	var resp Response
	d.Submit(Request{Op: OpWrite, Sector: 0, Data: make([]byte, 512)}, func(r Response) {
		doneAt = e.Now()
		resp = r
	})
	e.Run()
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if doneAt != 2500 {
		t.Errorf("completed at %v, want 2500", doneAt)
	}
}

func TestDeviceSerializesBeyondWays(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, NewStore(512, 100), 100, 2)
	var times []sim.Time
	for i := 0; i < 4; i++ {
		d.Submit(Request{Op: OpRead, Sector: 0, Sectors: 1}, func(Response) {
			times = append(times, e.Now())
		})
	}
	e.Run()
	// 2 ways: first two at 100, second two at 200.
	if len(times) != 4 || times[0] != 100 || times[1] != 100 || times[2] != 200 || times[3] != 200 {
		t.Errorf("completion times = %v", times)
	}
	if d.Served != 4 {
		t.Errorf("Served = %d", d.Served)
	}
}

func TestDeviceReadWriteData(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, NewStore(512, 100), 10, 1)
	payload := bytes.Repeat([]byte{0x5A}, 1024)
	d.Submit(Request{Op: OpWrite, Sector: 4, Data: payload}, func(r Response) {
		if r.Err != nil {
			t.Errorf("write: %v", r.Err)
		}
	})
	var got []byte
	d.Submit(Request{Op: OpRead, Sector: 4, Sectors: 2}, func(r Response) {
		if r.Err != nil {
			t.Errorf("read: %v", r.Err)
		}
		got = r.Data
	})
	e.Run()
	if !bytes.Equal(got, payload) {
		t.Error("device round trip mismatch")
	}
}

func TestDeviceFlushAndBadOp(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, NewStore(512, 100), 10, 1)
	d.Submit(Request{Op: OpFlush}, func(r Response) {
		if r.Err != nil {
			t.Errorf("flush: %v", r.Err)
		}
	})
	d.Submit(Request{Op: Op(9)}, func(r Response) {
		if !errors.Is(r.Err, ErrBadOp) {
			t.Errorf("bad op err = %v", r.Err)
		}
	})
	e.Run()
}

func TestDeviceFailureInjection(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, NewStore(512, 100), 10, 1)
	d.FailNext = true
	d.Submit(Request{Op: OpRead, Sector: 0, Sectors: 1}, func(r Response) {
		if !errors.Is(r.Err, ErrDeviceFailed) {
			t.Errorf("err = %v, want ErrDeviceFailed", r.Err)
		}
	})
	// The next request succeeds.
	d.Submit(Request{Op: OpRead, Sector: 0, Sectors: 1}, func(r Response) {
		if r.Err != nil {
			t.Errorf("second request failed: %v", r.Err)
		}
	})
	e.Run()
}

func TestSchedulerSerializesSameBlock(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, NewStore(512, 100), 100, 8) // device itself is parallel
	s := NewScheduler(d, 512)
	var order []int
	// Two writes to the same sector: must serialize despite device ways.
	s.Submit(Request{Op: OpWrite, Sector: 5, Data: bytes.Repeat([]byte{1}, 512)},
		func(Response) { order = append(order, 1) })
	s.Submit(Request{Op: OpWrite, Sector: 5, Data: bytes.Repeat([]byte{2}, 512)},
		func(Response) { order = append(order, 2) })
	if s.Outstanding() != 1 {
		t.Errorf("Outstanding = %d, want 1 (second deferred)", s.Outstanding())
	}
	if s.Waiting() != 1 {
		t.Errorf("Waiting = %d, want 1", s.Waiting())
	}
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v", order)
	}
	if s.Deferred != 1 {
		t.Errorf("Deferred = %d", s.Deferred)
	}
	// Final content is from the second write.
	got, _ := d.Store().Read(5, 1)
	if got[0] != 2 {
		t.Error("writes applied out of order")
	}
}

func TestSchedulerAllowsDisjointParallelism(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, NewStore(512, 100), 100, 8)
	s := NewScheduler(d, 512)
	var times []sim.Time
	s.Submit(Request{Op: OpRead, Sector: 0, Sectors: 1}, func(Response) { times = append(times, e.Now()) })
	s.Submit(Request{Op: OpRead, Sector: 50, Sectors: 1}, func(Response) { times = append(times, e.Now()) })
	e.Run()
	if len(times) != 2 || times[0] != 100 || times[1] != 100 {
		t.Errorf("disjoint requests serialized: %v", times)
	}
	if s.Deferred != 0 {
		t.Errorf("Deferred = %d, want 0", s.Deferred)
	}
}

func TestSchedulerOverlappingRangeConflicts(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, NewStore(512, 100), 100, 8)
	s := NewScheduler(d, 512)
	var order []int
	// Write sectors 4..11 (4096 bytes), then read sectors 8..9 (overlap).
	s.Submit(Request{Op: OpWrite, Sector: 4, Data: make([]byte, 4096)},
		func(Response) { order = append(order, 1) })
	s.Submit(Request{Op: OpRead, Sector: 8, Sectors: 2},
		func(Response) { order = append(order, 2) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v (overlap must serialize)", order)
	}
}

func TestSchedulerPerRangeFIFO(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, NewStore(512, 100), 100, 8)
	s := NewScheduler(d, 512)
	var order []int
	for i := 1; i <= 4; i++ {
		i := i
		s.Submit(Request{Op: OpWrite, Sector: 7, Data: bytes.Repeat([]byte{byte(i)}, 512)},
			func(Response) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("same-sector requests reordered: %v", order)
		}
	}
	got, _ := d.Store().Read(7, 1)
	if got[0] != 4 {
		t.Errorf("final sector value = %d, want 4 (last write)", got[0])
	}
}

func TestSchedulerFlushLocksSector(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, NewStore(512, 100), 10, 1)
	s := NewScheduler(d, 512)
	done := 0
	s.Submit(Request{Op: OpFlush, Sector: 0}, func(Response) { done++ })
	s.Submit(Request{Op: OpFlush, Sector: 0}, func(Response) { done++ })
	e.Run()
	if done != 2 {
		t.Errorf("flushes completed = %d", done)
	}
}

// Property: with a scheduler, at no time do two outstanding requests overlap
// — verified by instrumenting a backend that records concurrency.
func TestSchedulerNoConcurrentOverlapProperty(t *testing.T) {
	e := sim.NewEngine()
	inflight := make(map[uint64]int)
	var violations int
	backend := backendFunc(func(req Request, done func(Response)) {
		sectors := uint64(req.Sectors)
		if req.Op == OpWrite {
			sectors = uint64(len(req.Data)+511) / 512
		}
		if sectors == 0 {
			sectors = 1
		}
		for i := uint64(0); i < sectors; i++ {
			inflight[req.Sector+i]++
			if inflight[req.Sector+i] > 1 {
				violations++
			}
		}
		e.After(50, func() {
			for i := uint64(0); i < sectors; i++ {
				inflight[req.Sector+i]--
			}
			done(Response{})
		})
	})
	s := NewScheduler(backend, 512)
	seed := uint64(99)
	next := func() uint64 { seed = seed*6364136223846793005 + 1; return seed >> 33 }
	for i := 0; i < 500; i++ {
		at := sim.Time(next() % 2000)
		sector := next() % 20
		op := OpRead
		req := Request{Op: op, Sector: sector, Sectors: int(1 + next()%8)}
		if next()%2 == 0 {
			req = Request{Op: OpWrite, Sector: sector, Data: make([]byte, 512*(1+next()%8))}
		}
		e.At(at, func() { s.Submit(req, func(Response) {}) })
	}
	e.Run()
	if violations != 0 {
		t.Errorf("%d overlapping-outstanding violations", violations)
	}
	if s.Outstanding() != 0 || s.Waiting() != 0 {
		t.Errorf("scheduler leaked state: outstanding=%d waiting=%d",
			s.Outstanding(), s.Waiting())
	}
}

type backendFunc func(req Request, done func(Response))

func (f backendFunc) Submit(req Request, done func(Response)) { f(req, done) }

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpFlush.String() != "flush" {
		t.Error("op names wrong")
	}
	if Op(7).String() != "Op(7)" {
		t.Error("unknown op misprinted")
	}
}

// TestSchedulerPerQueueFIFOProperty models the multi-queue submission shape:
// NQ closed-loop queues each keep QD writes outstanding against their own
// sector through one range-conflict Scheduler over a 4-way device. Because
// every request in a queue targets the same sector, the scheduler serializes
// them — and its drain must hand them to the device strictly in submission
// order, at any depth.
func TestSchedulerPerQueueFIFOProperty(t *testing.T) {
	const queues = 4
	for _, depth := range []int{2, 8, 16} {
		e := sim.NewEngine()
		s := NewScheduler(NewDevice(e, NewStore(512, 64), 100, 4), 512)
		const perQueue = 200
		issued := make([]int, queues)    // next sequence number to issue
		completed := make([]int, queues) // next sequence number expected back
		violations := 0
		var issue func(q int)
		issue = func(q int) {
			if issued[q] >= perQueue {
				return
			}
			seq := issued[q]
			issued[q]++
			s.Submit(Request{Op: OpWrite, Sector: uint64(q), Data: make([]byte, 512)},
				func(Response) {
					if seq != completed[q] {
						violations++
					}
					completed[q]++
					issue(q)
				})
		}
		for q := 0; q < queues; q++ {
			for d := 0; d < depth; d++ {
				issue(q)
			}
		}
		e.Run()
		if violations != 0 {
			t.Errorf("depth %d: %d out-of-order completions across %d queues",
				depth, violations, queues)
		}
		for q := 0; q < queues; q++ {
			if completed[q] != perQueue {
				t.Errorf("depth %d: queue %d completed %d of %d requests",
					depth, q, completed[q], perQueue)
			}
		}
		if s.Outstanding() != 0 || s.Waiting() != 0 {
			t.Errorf("depth %d: scheduler leaked state: outstanding=%d waiting=%d",
				depth, s.Outstanding(), s.Waiting())
		}
	}
}
