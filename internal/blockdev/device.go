package blockdev

import (
	"fmt"

	"vrio/internal/sim"
)

// Op is a block request operation.
type Op uint8

// Operations. OpVolWrite/OpVolRead are the distributed-volume variants of
// write/read: they carry an extent id and version and are only served by
// devices that have a ReplicaState attached (see AttachReplica).
const (
	OpRead Op = iota
	OpWrite
	OpFlush
	OpVolWrite
	OpVolRead
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	case OpVolWrite:
		return "vol-write"
	case OpVolRead:
		return "vol-read"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Request is one block I/O request.
type Request struct {
	Op     Op
	Sector uint64
	// Data is the payload for writes.
	Data []byte
	// Sectors is the read length in sectors.
	Sectors int
	// Extent and Version qualify OpVolWrite/OpVolRead requests: Extent names
	// the stripe unit, Version the writer's per-extent counter (for reads,
	// the minimum committed version the replica must hold).
	Extent  uint64
	Version uint64
}

// Response is a completed request.
type Response struct {
	Err error
	// Data holds read results.
	Data []byte
	// Version is the replica's extent version at serve time, set on
	// successful OpVolRead completions. Rebuild and heal copies stamp their
	// target with it — never with a version the served data might not hold.
	Version uint64
}

// Backend is anything that serves block requests asynchronously: a local
// Device, or a vRIO remote device behind the transport.
type Backend interface {
	Submit(req Request, done func(Response))
}

// Device serves requests from a Store after a per-request access latency,
// with bounded internal parallelism (channels/banks). A ramdisk profile has
// microsecond latency; an SSD profile tens of microseconds (§5 uses both).
type Device struct {
	eng     *sim.Engine
	store   *Store
	latency sim.Time
	ways    int // parallel banks

	busy    int
	waiting []queued
	// wHead indexes the front of waiting; popping advances it instead of
	// re-slicing, so the queue's capacity is reused across bursts.
	wHead int

	// replica, when non-nil, lets the device serve OpVolWrite/OpVolRead
	// with per-extent version checks (see AttachReplica).
	replica *ReplicaState

	// FailNext injects a failure into the next request (fault testing).
	FailNext bool

	// Served counts completed requests.
	Served uint64
}

type queued struct {
	req  Request
	done func(Response)
}

// NewDevice builds a device over store. ways is the internal parallelism
// (>=1); latency is per-request access time.
func NewDevice(eng *sim.Engine, store *Store, latency sim.Time, ways int) *Device {
	if ways < 1 {
		panic("blockdev: device needs at least one way")
	}
	if latency < 0 {
		panic("blockdev: negative latency")
	}
	return &Device{eng: eng, store: store, latency: latency, ways: ways}
}

// Store exposes the backing store (for test setup and verification).
func (d *Device) Store() *Store { return d.store }

// AttachReplica turns the device into a volume replica: OpVolWrite and
// OpVolRead become servable, gated by rs's per-extent version counters.
// Plain OpRead/OpWrite keep working (rebuild verification reads use them).
func (d *Device) AttachReplica(rs *ReplicaState) {
	if rs == nil {
		panic("blockdev: AttachReplica requires a ReplicaState")
	}
	d.replica = rs
}

// Replica exposes the attached replica state (nil for plain devices).
func (d *Device) Replica() *ReplicaState { return d.replica }

// QueueLen reports requests waiting for a free bank.
func (d *Device) QueueLen() int { return len(d.waiting) - d.wHead }

// InFlight reports requests currently occupying a bank. QueueLen alone
// under-reports device load: a device with every bank busy but an empty
// backlog shows 0 there, so rebalancers and the metrics rollup also need
// the in-service count.
func (d *Device) InFlight() int { return d.busy }

// Ways reports the device's internal parallelism.
func (d *Device) Ways() int { return d.ways }

// Submit implements Backend.
func (d *Device) Submit(req Request, done func(Response)) {
	if done == nil {
		panic("blockdev: Submit requires a completion callback")
	}
	if d.busy >= d.ways {
		d.waiting = append(d.waiting, queued{req, done})
		return
	}
	d.start(req, done)
}

func (d *Device) start(req Request, done func(Response)) {
	d.busy++
	d.eng.After(d.latency, func() {
		resp := d.execute(req)
		d.busy--
		d.Served++
		if d.QueueLen() > 0 {
			next := d.waiting[d.wHead]
			d.waiting[d.wHead] = queued{} // drop references for the collector
			d.wHead++
			if d.wHead == len(d.waiting) {
				d.waiting = d.waiting[:0]
				d.wHead = 0
			}
			d.start(next.req, next.done)
		}
		done(resp)
	})
}

func (d *Device) execute(req Request) Response {
	if d.FailNext {
		d.FailNext = false
		return Response{Err: ErrDeviceFailed}
	}
	switch req.Op {
	case OpWrite:
		return Response{Err: d.store.Write(req.Sector, req.Data)}
	case OpRead:
		data, err := d.store.Read(req.Sector, req.Sectors)
		return Response{Err: err, Data: data}
	case OpFlush:
		return Response{} // the in-memory store is always durable
	case OpVolWrite:
		if d.replica == nil {
			return Response{Err: ErrNotReplica}
		}
		cur := d.replica.Version(req.Extent)
		full := d.replica.CoversExtent(req.Extent, req.Sector, len(req.Data), d.store.SectorSize())
		switch {
		case req.Version < cur, !full && req.Version == cur:
			// Older than (or, for a partial write, a duplicate of) what the
			// replica holds: a stale writer (e.g. a rebuild copy outrun by
			// foreground writes). Accepting it would roll the extent back.
			return Response{Err: fmt.Errorf("%w: extent %d has v%d, write carries v%d",
				ErrStaleWrite, req.Extent, cur, req.Version)}
		case !full && req.Version > cur+1:
			// The replica missed version cur+1..req.Version-1. A sub-extent
			// write must not advance the fence past the gap — the missed
			// sectors would then read back stale with a clean status. Only a
			// full-extent write (rebuild/heal copy, or a whole-extent
			// overwrite), which replaces every byte, may jump.
			return Response{Err: fmt.Errorf("%w: extent %d has v%d, write carries v%d",
				ErrVersionGap, req.Extent, cur, req.Version)}
		}
		if err := d.store.Write(req.Sector, req.Data); err != nil {
			return Response{Err: err}
		}
		d.replica.Advance(req.Extent, req.Version)
		return Response{}
	case OpVolRead:
		if d.replica == nil {
			return Response{Err: ErrNotReplica}
		}
		// The reader demands at least the committed version it knows about;
		// a replica that missed a write (crash, rebuild copy in flight)
		// must refuse rather than serve stale sectors.
		if d.replica.Version(req.Extent) < req.Version {
			return Response{Err: fmt.Errorf("%w: extent %d has v%d, read demands v%d",
				ErrStaleReplica, req.Extent, d.replica.Version(req.Extent), req.Version)}
		}
		data, err := d.store.Read(req.Sector, req.Sectors)
		return Response{Err: err, Data: data, Version: d.replica.Version(req.Extent)}
	default:
		return Response{Err: fmt.Errorf("%w: %d", ErrBadOp, req.Op)}
	}
}

// Scheduler is the guest OS disk scheduler (§4.5): it reorders requests so
// each sector range has at most one outstanding request, queueing
// conflicting requests until the outstanding one completes. This is what
// makes blind retransmission of block requests safe.
type Scheduler struct {
	backend    Backend
	sectorSize int
	// locked marks sectors with an outstanding request.
	locked  map[uint64]bool
	waiting []queued
	// blocked is drain's scratch set of ranges held back by an earlier
	// deferred request; kept across calls so draining never allocates.
	blocked map[uint64]bool

	// Deferred counts requests that had to wait for an overlapping range.
	Deferred uint64
}

// NewScheduler wraps a backend. sectorSize must match the backing device's.
func NewScheduler(backend Backend, sectorSize int) *Scheduler {
	if sectorSize <= 0 {
		panic("blockdev: scheduler needs a positive sector size")
	}
	return &Scheduler{backend: backend, sectorSize: sectorSize, locked: make(map[uint64]bool)}
}

func (s *Scheduler) span(req Request) (uint64, uint64) {
	n := uint64(req.Sectors)
	if req.Op == OpWrite || req.Op == OpVolWrite {
		n = uint64((len(req.Data) + s.sectorSize - 1) / s.sectorSize)
	}
	if req.Op == OpFlush || n == 0 {
		return req.Sector, 1
	}
	return req.Sector, n
}

// conflict reports whether any sector of [sector, sector+n) is locked.
func (s *Scheduler) conflict(sector, n uint64) bool {
	for i := uint64(0); i < n; i++ {
		if s.locked[sector+i] {
			return true
		}
	}
	return false
}

// Submit dispatches or defers the request.
func (s *Scheduler) Submit(req Request, done func(Response)) {
	sector, n := s.span(req)
	if s.conflict(sector, n) {
		s.Deferred++
		s.waiting = append(s.waiting, queued{req, done})
		return
	}
	s.dispatch(req, done, sector, n)
}

func (s *Scheduler) dispatch(req Request, done func(Response), sector, n uint64) {
	for i := uint64(0); i < n; i++ {
		s.locked[sector+i] = true
	}
	s.backend.Submit(req, func(resp Response) {
		for i := uint64(0); i < n; i++ {
			delete(s.locked, sector+i)
		}
		s.drain()
		done(resp)
	})
}

// drain re-attempts deferred requests in order, preserving per-range FIFO.
func (s *Scheduler) drain() {
	if len(s.waiting) == 0 {
		return
	}
	if s.blocked == nil {
		s.blocked = make(map[uint64]bool)
	}
	blockedRanges := s.blocked
	for k := range blockedRanges {
		delete(blockedRanges, k)
	}
	remaining := s.waiting[:0]
	for _, q := range s.waiting {
		sector, n := s.span(q.req)
		// Preserve ordering: if an earlier deferred request overlaps this
		// range, this one must keep waiting even if the lock cleared.
		blockedByEarlier := false
		for i := uint64(0); i < n; i++ {
			if blockedRanges[sector+i] {
				blockedByEarlier = true
				break
			}
		}
		if !blockedByEarlier && !s.conflict(sector, n) {
			s.dispatch(q.req, q.done, sector, n)
			continue
		}
		for i := uint64(0); i < n; i++ {
			blockedRanges[sector+i] = true
		}
		remaining = append(remaining, q)
	}
	s.waiting = remaining
}

// Outstanding reports requests currently locked at the backend.
func (s *Scheduler) Outstanding() int { return len(s.locked) }

// Waiting reports deferred requests.
func (s *Scheduler) Waiting() int { return len(s.waiting) }
