package workload

import (
	"math"

	"vrio/internal/guestos"
	"vrio/internal/sim"
)

// BlockIO is the guest-side block interface Filebench drives (satisfied by
// core.Guest).
type BlockIO interface {
	WriteBlock(sector uint64, data []byte, done func(error))
	ReadBlock(sector uint64, sectors int, done func([]byte, error))
	// BlockCPUCost reports the guest-side CPU consumed per operation of
	// the given size under the guest's I/O model; threads add it to their
	// compute so the VCPU feels the datapath.
	BlockCPUCost(bytes int) sim.Time
}

// FilebenchConfig parameterizes the random-I/O micro personalities of §5
// "Making a Local Device Remote": readers and writers issue IOSize random
// I/O within the VM's 1 GB ramdisk, O_DIRECT-style (every request crosses
// the guest-host boundary).
type FilebenchConfig struct {
	Readers, Writers int
	// IOSize is bytes per operation (the paper uses 4 KiB).
	IOSize int
	// OpCost is the per-op guest CPU cost, jittered ±20%.
	OpCost sim.Time
	// CapacitySectors and SectorSize describe the device geometry.
	CapacitySectors uint64
	SectorSize      int
	Seed            uint64
}

// Filebench runs reader/writer threads on a guest VCPU against its block
// device.
type Filebench struct {
	Results Results

	eng     *sim.Engine
	rng     *sim.RNG
	vcpu    *guestos.VCPU
	dev     BlockIO
	cfg     FilebenchConfig
	stopped bool
}

// NewFilebench builds the instance; threads start on Start.
func NewFilebench(eng *sim.Engine, vcpu *guestos.VCPU, dev BlockIO, cfg FilebenchConfig) *Filebench {
	if cfg.IOSize <= 0 || cfg.SectorSize <= 0 || cfg.CapacitySectors == 0 {
		panic("workload: incomplete filebench config")
	}
	return &Filebench{
		eng: eng, rng: sim.NewRNG(cfg.Seed ^ 0xf11e), vcpu: vcpu, dev: dev, cfg: cfg,
	}
}

// Start spawns the reader and writer threads.
func (fb *Filebench) Start() {
	for i := 0; i < fb.cfg.Readers; i++ {
		fb.spawn(false)
	}
	for i := 0; i < fb.cfg.Writers; i++ {
		fb.spawn(true)
	}
}

// Stop winds the threads down at their next op boundary.
func (fb *Filebench) Stop() { fb.stopped = true }

func (fb *Filebench) randSector() uint64 {
	sectorsPerOp := uint64(fb.cfg.IOSize / fb.cfg.SectorSize)
	if sectorsPerOp == 0 {
		sectorsPerOp = 1
	}
	slots := fb.cfg.CapacitySectors / sectorsPerOp
	return (uint64(fb.rng.Intn(int(slots)))) * sectorsPerOp
}

func (fb *Filebench) spawn(writer bool) {
	name := "reader"
	if writer {
		name = "writer"
	}
	th := fb.vcpu.Spawn(name)
	sectorsPerOp := fb.cfg.IOSize / fb.cfg.SectorSize
	payload := make([]byte, fb.cfg.IOSize)
	var loop func()
	loop = func() {
		if fb.stopped {
			return
		}
		start := fb.eng.Now()
		sector := fb.randSector()
		complete := func(n int, failed bool) {
			fb.Results.record(fb.eng.Now()-start, n, failed)
			if fb.stopped {
				return
			}
			op := fb.rng.Range(fb.cfg.OpCost*8/10, fb.cfg.OpCost*12/10)
			th.Do(op+fb.dev.BlockCPUCost(fb.cfg.IOSize), loop)
		}
		if writer {
			fb.dev.WriteBlock(sector, payload, func(err error) {
				complete(fb.cfg.IOSize, err != nil)
			})
		} else {
			fb.dev.ReadBlock(sector, sectorsPerOp, func(data []byte, err error) {
				complete(len(data), err != nil)
			})
		}
	}
	th.Do(fb.rng.Range(fb.cfg.OpCost*8/10, fb.cfg.OpCost*12/10), loop)
}

// WebserverConfig parameterizes Filebench's Webserver personality (§5
// "Improving Utilization"): Threads webserver workers per VM serve files
// with a log-normal size distribution (30 K files, 28 KB mean), reading
// each file in 4 KiB chunks and appending to a shared log.
type WebserverConfig struct {
	Threads      int
	Files        int
	MeanFileSize int
	ChunkSize    int
	// OpCost is guest CPU per chunk; OpenCost per file open+close;
	// LogWrite is the per-file log append size.
	OpCost   sim.Time
	OpenCost sim.Time
	LogWrite int

	CapacitySectors uint64
	SectorSize      int
	Seed            uint64
}

// Webserver runs the personality on one guest.
type Webserver struct {
	Results Results

	eng  *sim.Engine
	rng  *sim.RNG
	vcpu *guestos.VCPU
	dev  BlockIO
	cfg  WebserverConfig

	// fileSectors[i] is file i's start sector; fileSize[i] its size.
	fileSectors []uint64
	fileSize    []int
	logSector   uint64
	stopped     bool
}

// NewWebserver lays out the file set on the device address space and
// prepares the threads.
func NewWebserver(eng *sim.Engine, vcpu *guestos.VCPU, dev BlockIO, cfg WebserverConfig) *Webserver {
	if cfg.Threads <= 0 || cfg.Files <= 0 || cfg.SectorSize <= 0 {
		panic("workload: incomplete webserver config")
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 4096
	}
	w := &Webserver{
		eng: eng, rng: sim.NewRNG(cfg.Seed ^ 0x3eb), vcpu: vcpu, dev: dev, cfg: cfg,
	}
	// Log-normal sizes with sigma 0.8, scaled to the configured mean.
	const sigma = 0.8
	mu := math.Log(float64(cfg.MeanFileSize)) - sigma*sigma/2
	sector := uint64(0)
	secPerChunk := uint64(cfg.ChunkSize / cfg.SectorSize)
	for i := 0; i < cfg.Files; i++ {
		size := int(w.rng.LogNormal(mu, sigma))
		if size < cfg.SectorSize {
			size = cfg.SectorSize
		}
		chunks := uint64((size + cfg.ChunkSize - 1) / cfg.ChunkSize)
		if sector+chunks*secPerChunk >= cfg.CapacitySectors-64 {
			// Device full: stop laying out files early.
			break
		}
		w.fileSectors = append(w.fileSectors, sector)
		w.fileSize = append(w.fileSize, size)
		sector += chunks * secPerChunk
	}
	w.logSector = cfg.CapacitySectors - 8
	return w
}

// FileCount reports how many files fit the device.
func (w *Webserver) FileCount() int { return len(w.fileSectors) }

// Start spawns the webserver threads.
func (w *Webserver) Start() {
	for i := 0; i < w.cfg.Threads; i++ {
		w.spawnThread()
	}
}

// Stop winds down at the next file boundary.
func (w *Webserver) Stop() { w.stopped = true }

func (w *Webserver) spawnThread() {
	th := w.vcpu.Spawn("webserver")
	secPerChunk := w.cfg.ChunkSize / w.cfg.SectorSize
	logPayload := make([]byte, w.cfg.LogWrite)
	var serveFile func()
	serveFile = func() {
		if w.stopped {
			return
		}
		idx := w.rng.Intn(len(w.fileSectors))
		base := w.fileSectors[idx]
		size := w.fileSize[idx]
		chunks := (size + w.cfg.ChunkSize - 1) / w.cfg.ChunkSize
		start := w.eng.Now()

		var readChunk func(i int)
		finishFile := func() {
			// Append to the shared log, then account the served file.
			appendLog := func() {
				w.dev.WriteBlock(w.logSector, logPayload, func(err error) {
					w.Results.record(w.eng.Now()-start, size, err != nil)
					if !w.stopped {
						th.Do(w.rng.Range(w.cfg.OpCost/2, w.cfg.OpCost), serveFile)
					}
				})
			}
			if w.cfg.LogWrite > 0 {
				appendLog()
			} else {
				w.Results.record(w.eng.Now()-start, size, false)
				if !w.stopped {
					th.Do(w.rng.Range(w.cfg.OpCost/2, w.cfg.OpCost), serveFile)
				}
			}
		}
		readChunk = func(i int) {
			if i >= chunks {
				finishFile()
				return
			}
			sector := base + uint64(i*secPerChunk)
			w.dev.ReadBlock(sector, secPerChunk, func(_ []byte, err error) {
				if err != nil {
					w.Results.record(w.eng.Now()-start, 0, true)
					if !w.stopped {
						th.Do(w.cfg.OpCost, serveFile)
					}
					return
				}
				// Per-chunk processing on the VCPU (including the I/O
				// model's per-op datapath cost), then the next chunk.
				op := w.rng.Range(w.cfg.OpCost*8/10, w.cfg.OpCost*12/10)
				th.Do(op+w.dev.BlockCPUCost(w.cfg.ChunkSize), func() { readChunk(i + 1) })
			})
		}
		// Open the file, then stream it.
		th.Do(w.rng.Range(w.cfg.OpenCost*8/10, w.cfg.OpenCost*12/10), func() { readChunk(0) })
	}
	th.Do(w.rng.Range(w.cfg.OpenCost*8/10, w.cfg.OpenCost*12/10), serveFile)
}
