package workload

import (
	"testing"
	"testing/quick"

	"vrio/internal/sim"
)

func TestResultsMeasurementWindowGating(t *testing.T) {
	var r Results
	r.record(100, 10, false)
	if r.Ops != 0 {
		t.Error("recorded outside the measurement window")
	}
	r.StartMeasuring()
	r.record(100, 10, false)
	r.record(200, 20, false)
	r.record(0, 0, true)
	r.StopMeasuring()
	r.record(300, 30, false)
	if r.Ops != 2 || r.Bytes != 30 || r.Errors != 1 {
		t.Errorf("ops=%d bytes=%d errors=%d", r.Ops, r.Bytes, r.Errors)
	}
	if r.Latency.Count() != 2 {
		t.Errorf("latency samples = %d", r.Latency.Count())
	}
}

func TestResultsRates(t *testing.T) {
	var r Results
	r.StartMeasuring()
	for i := 0; i < 10; i++ {
		r.record(1000, 125, false)
	}
	window := 1 * sim.Millisecond
	if got := r.OpsPerSec(window); got != 10_000 {
		t.Errorf("OpsPerSec = %v", got)
	}
	// 1250 bytes in 1ms = 10 Mbps.
	if got := r.Throughput(window); got != 10e6 {
		t.Errorf("Throughput = %v", got)
	}
	if r.Throughput(0) != 0 || r.OpsPerSec(0) != 0 {
		t.Error("zero window should report 0")
	}
}

func TestSeqPayloadRoundTrip(t *testing.T) {
	f := func(seq uint64, now int64, pad uint8) bool {
		size := 16 + int(pad)
		b := seqPayload(seq, sim.Time(now), size)
		if len(b) != size {
			return false
		}
		gotSeq, gotNow, ok := parseSeqPayload(b)
		return ok && gotSeq == seq && gotNow == sim.Time(now)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqPayloadMinimumSize(t *testing.T) {
	b := seqPayload(1, 2, 3)
	if len(b) != 16 {
		t.Errorf("undersized request not padded: %d", len(b))
	}
	if _, _, ok := parseSeqPayload(b[:15]); ok {
		t.Error("short payload parsed")
	}
}

func TestMacroConfigs(t *testing.T) {
	a := ApacheConfig()
	if a.Concurrency < 1 || a.RespSize <= a.ReqSize {
		t.Errorf("apache config implausible: %+v", a)
	}
	m := MemcachedConfig()
	if m.Concurrency < a.Concurrency {
		t.Error("memslap should be at least as concurrent as apachebench")
	}
}

func TestFilebenchConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("incomplete filebench config accepted")
		}
	}()
	NewFilebench(sim.NewEngine(), nil, nil, FilebenchConfig{})
}

func TestWebserverConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("incomplete webserver config accepted")
		}
	}()
	NewWebserver(sim.NewEngine(), nil, nil, WebserverConfig{})
}

// fakeBlock satisfies BlockIO without any simulation machinery.
type fakeBlock struct{}

func (fakeBlock) WriteBlock(sector uint64, data []byte, done func(error)) { done(nil) }
func (fakeBlock) ReadBlock(sector uint64, sectors int, done func([]byte, error)) {
	done(make([]byte, sectors*512), nil)
}
func (fakeBlock) BlockCPUCost(int) sim.Time { return 0 }

func TestWebserverLayoutInvariants(t *testing.T) {
	eng := sim.NewEngine()
	const capacity = (1 << 30) / 512
	w := NewWebserver(eng, nil, fakeBlock{}, WebserverConfig{
		Threads: 1, Files: 30000, MeanFileSize: 28 * 1024, ChunkSize: 4096,
		OpCost: 1000, OpenCost: 1000, LogWrite: 512,
		CapacitySectors: capacity, SectorSize: 512, Seed: 9,
	})
	if w.FileCount() == 0 {
		t.Fatal("no files laid out")
	}
	if w.FileCount() > 30000 {
		t.Fatalf("laid out %d files", w.FileCount())
	}
	// Non-overlap and capacity: every file's span must fit before the log.
	var mean float64
	for i := 0; i < w.FileCount(); i++ {
		mean += float64(w.fileSize[i])
		chunks := uint64((w.fileSize[i] + 4095) / 4096)
		end := w.fileSectors[i] + chunks*8
		if end > w.logSector {
			t.Fatalf("file %d overlaps the log region", i)
		}
		if i > 0 && w.fileSectors[i] < w.fileSectors[i-1] {
			t.Fatalf("files not laid out in order")
		}
	}
	mean /= float64(w.FileCount())
	if mean < 20*1024 || mean > 36*1024 {
		t.Errorf("mean file size = %.0f, want ≈28KB", mean)
	}
}
