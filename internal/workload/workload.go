// Package workload reimplements the paper's benchmark suite over the
// simulated rack: Netperf UDP RR and TCP stream (§5's latency and
// throughput microbenchmarks), ApacheBench-driven HTTP, Memslap-driven
// memcached, and Filebench's random-I/O and Webserver personalities. Each
// workload drives core.Guest endpoints in closed loop and records
// latencies/throughput into stats collectors.
package workload

import (
	"encoding/binary"

	"vrio/internal/cpu"
	"vrio/internal/ethernet"
	"vrio/internal/hypervisor"
	"vrio/internal/nic"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/stats"
)

// Station is a bare-metal load-generator machine: one core, one NIC VF,
// no virtualization. It mirrors the IBM x3550 M2 generators of §5.
type Station struct {
	eng  *sim.Engine
	p    *params.P
	core *cpu.Core
	vf   *nic.VF
	mac  ethernet.MAC

	// subs demuxes received frames by source MAC, so one station can drive
	// several server VMs (as the paper's generators do).
	subs map[ethernet.MAC]func(f ethernet.Frame)
}

// NewStation builds a generator around its NIC VF (interrupt mode).
func NewStation(eng *sim.Engine, p *params.P, genCore *cpu.Core, vf *nic.VF) *Station {
	s := &Station{
		eng: eng, p: p, core: genCore, vf: vf, mac: vf.MAC(),
		subs: make(map[ethernet.MAC]func(ethernet.Frame)),
	}
	vf.OnInterrupt(func(frames [][]byte) {
		// Generator-side IRQ + stack handling.
		genCore.Exec(cpu.NoOwner, cpu.KindIRQ, p.HostIRQCost, func() {
			for _, raw := range frames {
				f, err := ethernet.Decode(raw)
				if err != nil {
					continue
				}
				if fn := s.subs[f.Src]; fn != nil {
					fn(f)
				}
			}
		})
	})
	return s
}

// MAC reports the station's address.
func (s *Station) MAC() ethernet.MAC { return s.mac }

// Subscribe routes frames from src to fn.
func (s *Station) Subscribe(src ethernet.MAC, fn func(f ethernet.Frame)) {
	s.subs[src] = fn
}

// Send transmits a frame after the generator's per-transaction service
// time.
func (s *Station) Send(f ethernet.Frame, then func()) {
	f.Src = s.mac
	s.core.Exec(cpu.NoOwner, cpu.KindBusy, s.p.GenServiceCost, func() {
		if err := s.vf.SendFrame(f); err != nil {
			panic(err)
		}
		if then != nil {
			then()
		}
	})
}

// netServer is the interface both core.Guest and Station satisfy for
// serving traffic. Defined structurally to avoid a dependency cycle.
type netServer interface {
	OnNetRx(fn func(f ethernet.Frame))
	SendNet(f ethernet.Frame)
	Compute(d sim.Time, fn func())
	MAC() ethernet.MAC
}

// Ensure hypervisor-side types satisfy the contract where used.
var _ = hypervisor.CounterExits

// Results accumulates workload measurements within the measurement window.
type Results struct {
	// Latency holds per-transaction round-trip times (ns).
	Latency stats.Histogram
	// Ops counts completed transactions.
	Ops uint64
	// Bytes counts payload bytes moved.
	Bytes uint64
	// Errors counts failed transactions.
	Errors uint64

	measuring bool
}

// StartMeasuring begins the measurement window (after warmup).
func (r *Results) StartMeasuring() { r.measuring = true }

// StopMeasuring ends the measurement window.
func (r *Results) StopMeasuring() { r.measuring = false }

func (r *Results) record(latency sim.Time, bytes int, err bool) {
	if !r.measuring {
		return
	}
	if err {
		r.Errors++
		return
	}
	r.Ops++
	r.Bytes += uint64(bytes)
	r.Latency.Record(int64(latency))
}

// Throughput reports bits/s over the given measurement duration.
func (r *Results) Throughput(window sim.Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(r.Bytes*8) / window.Seconds()
}

// OpsPerSec reports transactions/s over the given measurement duration.
func (r *Results) OpsPerSec(window sim.Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(r.Ops) / window.Seconds()
}

// --- request/response framing helpers ---

// seqPayload builds a payload carrying a sequence number and timestamp,
// padded to size.
func seqPayload(seq uint64, now sim.Time, size int) []byte {
	if size < 16 {
		size = 16
	}
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b[0:], seq)
	binary.LittleEndian.PutUint64(b[8:], uint64(now))
	return b
}

func parseSeqPayload(b []byte) (seq uint64, sent sim.Time, ok bool) {
	if len(b) < 16 {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(b[0:]), sim.Time(binary.LittleEndian.Uint64(b[8:])), true
}
