package workload

import (
	"vrio/internal/ethernet"
	"vrio/internal/sim"
)

// Macro is a closed-loop request/response generator with concurrency — the
// shape of ApacheBench driving Apache and Memslap driving Memcached (§5).
// The generator keeps Concurrency requests outstanding; the server burns
// ServerCost of guest CPU per request and answers with RespSize bytes.
type Macro struct {
	Results Results

	station *Station
	target  ethernet.MAC
	cfg     MacroConfig

	seq     uint64
	sentAt  map[uint64]sim.Time
	stopped bool
}

// MacroConfig parameterizes a macrobenchmark.
type MacroConfig struct {
	// Concurrency is the number of outstanding requests (ApacheBench -c).
	Concurrency int
	// ReqSize / RespSize are the request and response payload sizes.
	ReqSize  int
	RespSize int
}

// ApacheConfig mirrors the paper's ApacheBench setup: a handful of
// concurrent HTTP fetches of small pages.
func ApacheConfig() MacroConfig {
	return MacroConfig{Concurrency: 4, ReqSize: 128, RespSize: 8192}
}

// MemcachedConfig mirrors Memslap: deep concurrency, small values.
func MemcachedConfig() MacroConfig {
	return MacroConfig{Concurrency: 8, ReqSize: 64, RespSize: 1024}
}

// NewMacro wires a generator station against a server guest.
func NewMacro(station *Station, target ethernet.MAC, cfg MacroConfig) *Macro {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	m := &Macro{station: station, target: target, cfg: cfg, sentAt: make(map[uint64]sim.Time)}
	station.Subscribe(target, func(f ethernet.Frame) { m.handleResponse(f) })
	return m
}

// Start launches the concurrent request loops.
func (m *Macro) Start() {
	for i := 0; i < m.cfg.Concurrency; i++ {
		m.sendNext()
	}
}

// Stop winds the loops down.
func (m *Macro) Stop() { m.stopped = true }

func (m *Macro) sendNext() {
	if m.stopped {
		return
	}
	m.seq++
	seq := m.seq
	m.sentAt[seq] = m.station.eng.Now()
	m.station.Send(ethernet.Frame{
		Dst:       m.target,
		EtherType: ethernet.EtherTypePlain,
		Payload:   seqPayload(seq, m.station.eng.Now(), m.cfg.ReqSize),
	}, nil)
}

func (m *Macro) handleResponse(f ethernet.Frame) {
	seq, _, ok := parseSeqPayload(f.Payload)
	if !ok {
		return
	}
	sent, known := m.sentAt[seq]
	if !known {
		return
	}
	delete(m.sentAt, seq)
	m.Results.record(m.station.eng.Now()-sent, len(f.Payload), false)
	m.sendNext()
}

// InstallMacroServer makes a guest serve macro requests: serviceCost of
// CPU, then a respSize response echoing the sequence number.
func InstallMacroServer(g netServer, serviceCost sim.Time, respSize int) {
	g.OnNetRx(func(f ethernet.Frame) {
		seq, _, ok := parseSeqPayload(f.Payload)
		if !ok {
			return
		}
		src := f.Src
		g.Compute(serviceCost, func() {
			g.SendNet(ethernet.Frame{
				Dst:       src,
				EtherType: ethernet.EtherTypePlain,
				Payload:   seqPayload(seq, 0, respSize),
			})
		})
	})
}
