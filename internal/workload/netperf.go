package workload

import (
	"vrio/internal/ethernet"
	"vrio/internal/sim"
)

// RR is the Netperf UDP request-response benchmark (§5): the generator
// sends one small request and waits for the one-byte-class response,
// measuring round-trip latency in closed loop.
type RR struct {
	Results Results

	station *Station
	target  ethernet.MAC
	seq     uint64
	sentAt  map[uint64]sim.Time
	size    int
	stopped bool
}

// NewRR wires a generator station against a server endpoint (install the
// server with InstallRRServer first). size is the request/response payload
// size (Netperf RR uses 1 byte; we carry 16 bytes of framing).
func NewRR(station *Station, target ethernet.MAC, size int) *RR {
	rr := &RR{station: station, target: target, size: size, sentAt: make(map[uint64]sim.Time)}
	station.Subscribe(target, func(f ethernet.Frame) { rr.handleResponse(f) })
	return rr
}

// rrTimeout is the generator's per-transaction loss timer: UDP RR has no
// transport-level recovery, so a request lost on the wire (or during a
// migration blackout) would otherwise wedge the closed loop.
const rrTimeout = 30 * sim.Millisecond

// Start begins the closed loop.
func (rr *RR) Start() { rr.sendNext() }

// Stop ends the loop after the in-flight transaction.
func (rr *RR) Stop() { rr.stopped = true }

func (rr *RR) sendNext() {
	if rr.stopped {
		return
	}
	rr.seq++
	seq := rr.seq
	rr.sentAt[seq] = rr.station.eng.Now()
	rr.station.Send(ethernet.Frame{
		Dst:       rr.target,
		EtherType: ethernet.EtherTypePlain,
		Payload:   seqPayload(seq, rr.station.eng.Now(), rr.size),
	}, nil)
	rr.station.eng.After(rrTimeout, func() { rr.expire(seq) })
}

// expire abandons a presumably lost transaction and restarts the loop.
func (rr *RR) expire(seq uint64) {
	if _, outstanding := rr.sentAt[seq]; !outstanding {
		return
	}
	delete(rr.sentAt, seq)
	rr.Results.record(0, 0, true)
	rr.sendNext()
}

func (rr *RR) handleResponse(f ethernet.Frame) {
	seq, _, ok := parseSeqPayload(f.Payload)
	if !ok {
		return
	}
	sent, known := rr.sentAt[seq]
	if !known {
		return
	}
	delete(rr.sentAt, seq)
	rr.Results.record(rr.station.eng.Now()-sent, len(f.Payload), false)
	rr.sendNext()
}

// InstallRRServer makes a guest echo RR requests after serviceCost of
// guest CPU (the netperf server loop).
func InstallRRServer(g netServer, serviceCost sim.Time) {
	g.OnNetRx(func(f ethernet.Frame) {
		g.Compute(serviceCost, func() {
			g.SendNet(ethernet.Frame{
				Dst:       f.Src,
				EtherType: ethernet.EtherTypePlain,
				Payload:   f.Payload,
			})
		})
	})
}

// Stream is the Netperf TCP stream benchmark (§5): the guest pushes a
// sustained byte stream toward the generator. The guest stack aggregates
// the benchmark's 64 B sends into TSO-sized chunks; flow control is modeled
// with a fixed window of unacknowledged chunks, as TCP would provide.
type Stream struct {
	Results Results

	guest     netServer
	station   *Station
	chunkSize int
	perChunk  sim.Time
	window    int

	inFlight int
	seq      uint64
	sentAt   map[uint64]sim.Time
	acked    map[uint64]struct{}
	stopped  bool

	// Lost counts chunks presumed lost and recovered by timeout.
	Lost uint64
}

// NewStream wires a guest transmitting to a generator station.
func NewStream(guest netServer, station *Station, chunkSize int, perChunk sim.Time, window int) *Stream {
	if window < 1 {
		window = 1
	}
	st := &Stream{
		guest: guest, station: station, chunkSize: chunkSize,
		perChunk: perChunk, window: window,
		sentAt: make(map[uint64]sim.Time),
		acked:  make(map[uint64]struct{}),
	}
	// The station acks every chunk (a tiny frame back to the guest).
	station.Subscribe(guest.MAC(), func(f ethernet.Frame) {
		seq, _, ok := parseSeqPayload(f.Payload)
		if !ok {
			return
		}
		// Ack without the generator service cost: acks ride for free with
		// real TCP; count the chunk on arrival.
		if sent, known := st.sentAt[seq]; known {
			delete(st.sentAt, seq)
			st.Results.record(station.eng.Now()-sent, len(f.Payload), false)
		} else {
			// Arrived after its loss timer fired: the bytes still count.
			st.Results.record(0, len(f.Payload), false)
		}
		if err := station.vf.SendFrame(ethernet.Frame{
			Dst:       guest.MAC(),
			EtherType: ethernet.EtherTypePlain,
			Payload:   seqPayload(seq, station.eng.Now(), 16),
		}); err != nil {
			panic(err)
		}
	})
	// The guest treats incoming acks as window openers.
	guest.OnNetRx(func(f ethernet.Frame) {
		seq, _, ok := parseSeqPayload(f.Payload)
		if !ok {
			return
		}
		if _, live := st.acked[seq]; live {
			return // duplicate ack after a timeout-based retransmission
		}
		st.acked[seq] = struct{}{}
		st.inFlight--
		st.pump()
	})
	return st
}

// chunkTimeout is the stream's loss-recovery timer: a chunk unacked for
// this long is considered lost (TCP above the vRIO channel would
// retransmit; we re-open the window and count the loss). It sits well above
// the worst ring-bounded queueing delay so it only fires on true loss.
const chunkTimeout = 100 * sim.Millisecond

// Start begins streaming.
func (st *Stream) Start() { st.pump() }

// Stop halts after in-flight chunks drain.
func (st *Stream) Stop() { st.stopped = true }

func (st *Stream) pump() {
	for !st.stopped && st.inFlight < st.window {
		st.inFlight++
		st.seq++
		seq := st.seq
		st.sentAt[seq] = st.station.eng.Now()
		st.guest.Compute(st.perChunk, func() {
			st.guest.SendNet(ethernet.Frame{
				Dst:       st.station.MAC(),
				EtherType: ethernet.EtherTypePlain,
				Payload:   seqPayload(seq, st.station.eng.Now(), st.chunkSize),
			})
			st.station.eng.After(chunkTimeout, func() { st.expire(seq) })
		})
	}
}

// expire recovers the window when a chunk is presumed lost (e.g. dropped by
// a full virtio TX ring under overload).
func (st *Stream) expire(seq uint64) {
	if _, done := st.acked[seq]; done {
		return
	}
	if _, live := st.sentAt[seq]; !live {
		return
	}
	delete(st.sentAt, seq)
	st.acked[seq] = struct{}{}
	st.Lost++
	st.inFlight--
	st.pump()
}
