package workload

import (
	"vrio/internal/core"
	"vrio/internal/sim"
)

// MQBlock drives one guest's paravirtual block device in closed loop over
// NQ submission queues with QD requests in flight per queue: every
// completion immediately reissues on the same queue, so the offered depth
// stays at NQ×QD until Stop. Each queue writes a stride pattern inside its
// own sector region, with every hot-th request aimed at a sector region
// shared by all queues so the IOhost-side range-conflict scheduler has real
// cross-queue conflicts to arbitrate.
//
// Completions are ledgered per (queue, sequence): Ledger reports duplicated
// and lost entries, the exactly-once check the fault experiments assert on.
type MQBlock struct {
	eng    *sim.Engine
	g      *core.Guest
	queues int
	depth  int
	size   int

	// region is the sector span owned by each queue; the shared hot region
	// starts at queues*region.
	region uint64
	// hot aims every hot-th request of a queue at the shared region
	// (0 = never).
	hot int

	buf     []byte
	stop    bool
	counts  [][]int // per queue, per sequence: completions observed
	started uint64  // requests issued
	done    uint64  // completions observed
	// Errs counts completions that reported an error (device errors after
	// an exhausted retransmission budget, mid-crash failures).
	Errs uint64

	// Results collects latency/throughput inside the measurement window.
	Results Results
}

// NewMQBlock builds the workload on guest g: queues×depth outstanding
// writes of size bytes each. It does not issue anything until Start.
func NewMQBlock(eng *sim.Engine, g *core.Guest, queues, depth, size int) *MQBlock {
	if queues < 1 || depth < 1 || size < 1 {
		panic("workload: MQBlock needs queues, depth, size >= 1")
	}
	m := &MQBlock{
		eng:    eng,
		g:      g,
		queues: queues,
		depth:  depth,
		size:   size,
		region: 1024,
		hot:    16,
		buf:    make([]byte, size),
		counts: make([][]int, queues),
	}
	for i := range m.buf {
		m.buf[i] = byte(i)
	}
	return m
}

// Start opens the closed loops: depth concurrent chains per queue.
func (m *MQBlock) Start() {
	for q := 0; q < m.queues; q++ {
		for d := 0; d < m.depth; d++ {
			m.issue(q)
		}
	}
}

// Stop closes the loops; in-flight requests still complete (and are
// ledgered) but nothing new is issued.
func (m *MQBlock) Stop() { m.stop = true }

// issue sends one write on queue q and reissues from its completion.
func (m *MQBlock) issue(q int) {
	if m.stop {
		return
	}
	seq := len(m.counts[q])
	m.counts[q] = append(m.counts[q], 0)
	sector := uint64(q)*m.region + uint64(seq*17)%m.region
	if m.hot > 0 && seq%m.hot == 0 {
		// The shared region: all queues collide here, exercising the
		// cross-queue write serialization.
		sector = uint64(m.queues) * m.region
	}
	m.started++
	start := m.eng.Now()
	m.g.WriteBlockQ(uint8(q), sector, m.buf, func(err error) {
		m.counts[q][seq]++
		m.done++
		if err != nil {
			m.Errs++
		}
		m.Results.record(m.eng.Now()-start, m.size, err != nil)
		m.issue(q)
	})
}

// Issued reports requests sent so far.
func (m *MQBlock) Issued() uint64 { return m.started }

// Done reports completions observed so far.
func (m *MQBlock) Done() uint64 { return m.done }

// Ledger audits the per-queue completion counts: dup counts extra
// completions of one request, lost counts requests that never completed.
// Both must be zero after a full drain for exactly-once delivery.
func (m *MQBlock) Ledger() (dup, lost uint64) {
	for _, qc := range m.counts {
		for _, n := range qc {
			switch {
			case n == 0:
				lost++
			case n > 1:
				dup += uint64(n - 1)
			}
		}
	}
	return dup, lost
}
