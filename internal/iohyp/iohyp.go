// Package iohyp implements the vRIO I/O hypervisor — the software that
// controls the IOhost (§4.1). Workers run on dedicated sidecores; an idle
// worker takes a batch of frames off a NIC receive ring, reassembles
// transport messages, and steers each virtual device's requests so that one
// worker owns a device for as long as it has unprocessed requests,
// preserving per-device ordering. Requests then flow through the device's
// interposition chain into its backend (the network uplink or a block
// device), and responses return to the IOclient over the dedicated channel.
package iohyp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vrio/internal/blockdev"
	"vrio/internal/bufpool"
	"vrio/internal/cpu"
	"vrio/internal/ethernet"
	"vrio/internal/interpose"
	"vrio/internal/nic"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/stats"
	"vrio/internal/trace"
	"vrio/internal/transport"
	"vrio/internal/virtio"
)

// Mode selects the IOhost NIC handling discipline.
type Mode int

// Modes.
const (
	// ModePolling is normal vRIO: workers poll the NICs, no interrupts.
	ModePolling Mode = iota
	// ModeInterrupt is the "vrio w/o poll" ablation of §4.2/Figure 5:
	// NIC interrupts drive the IOhost, costing 4 extra interrupts per
	// request-response.
	ModeInterrupt
)

// devKey identifies a front-end device: the client's transport MAC plus the
// device id. For multi-queue block devices the submission queue joins the
// key, so each queue pair carries its own steering state; single-queue
// devices (and the registration maps, which are per-device) keep q at 0 and
// behave exactly as before.
type devKey struct {
	client ethernet.MAC
	id     uint16
	q      uint8
}

// netDevice is a registered paravirtual net front-end.
type netDevice struct {
	key   devKey
	fMAC  ethernet.MAC // the front-end's outward-facing MAC (§4.6: "F")
	chain *interpose.Chain
}

// blkDevice is a registered paravirtual block front-end. A multi-queue
// device (queues > 1) gets NVMe-style queue-pair passthrough: each
// submission queue is pinned at registration time to one worker (qworker),
// its requests never migrate workers mid-flight, and a per-queue in-flight
// table replaces the old single completion slot so any number of requests
// per queue can be outstanding at the backend.
type blkDevice struct {
	key     devKey
	backend blockdev.Backend
	chain   *interpose.Chain

	queues int
	// qworker pins each queue to a worker; nil for single-queue devices,
	// which keep the legacy least-loaded/device-owner steering.
	qworker []*Worker
	// inflight counts outstanding backend executions per queue by OrigID.
	// Values are counts, not booleans: a retransmitted request can be at
	// the backend twice under the same OrigID.
	inflight []map[uint64]int
	// qdepth is the per-queue total of in-flight executions (the gauge the
	// metrics registry reads without walking the maps).
	qdepth []int
	// vol marks a volume-replica registration: only these serve the
	// versioned BlkVolOut/BlkVolIn ops (plain devices answer BlkUnsupp).
	vol bool
}

// blkQueue resolves the submission queue of a block id on this device,
// clamping out-of-range ids to queue 0 so a malformed header can never
// index past the tables.
func (d *blkDevice) blkQueue(origID uint64) int {
	if d.queues <= 1 {
		return 0
	}
	q := int(transport.QueueOf(origID))
	if q >= d.queues {
		return 0
	}
	return q
}

// track records one backend execution entering queue q.
func (d *blkDevice) track(q int, origID uint64) {
	d.qdepth[q]++
	d.inflight[q][origID]++
}

// untrack records one backend execution completing on queue q.
func (d *blkDevice) untrack(q int, origID uint64) {
	d.qdepth[q]--
	if n := d.inflight[q][origID]; n <= 1 {
		delete(d.inflight[q], origID)
	} else {
		d.inflight[q][origID] = n - 1
	}
}

// IOHypervisor is the remote half of the split hypervisor.
type IOHypervisor struct {
	eng  *sim.Engine
	p    *params.P
	mode Mode
	rng  *sim.RNG

	workers []*Worker

	// Channel plumbing: one MessagePort per channel NIC; clients are
	// routed to the port their VMhost is cabled to.
	ports      []*nic.MessagePort
	clientPort map[ethernet.MAC]*nic.MessagePort
	endpoint   *transport.Endpoint

	// Uplink is the NIC VF facing the rack switch for external traffic;
	// nil when all traffic is client-to-client.
	uplink *nic.VF

	netDevs   map[devKey]*netDevice
	blkDevs   map[devKey]*blkDevice
	fib       map[ethernet.MAC]*netDevice // F MAC -> device, for local delivery
	defaultCh *interpose.Chain

	// Steering state (§4.1's ordering policy).
	devOwner   map[devKey]*Worker
	devPending map[devKey]int
	rrIdx      int

	// bp is the IOhost-side buffer pool (normally the first channel NIC's,
	// so wire buffers circulate IOhost-wide); steerFree recycles steered
	// work items so the steady-state ingress path does not allocate.
	bp        *bufpool.Pool
	steerFree []*steerItem

	// txBatch/txPend implement TX-interrupt coalescing: while a steered work
	// item runs, txInterrupt calls are latched and at most one interrupt
	// fires when the item completes.
	txBatch bool
	txPend  int

	// failed marks a crashed IOhost (§4.6 fault tolerance): everything it
	// would receive or send is silently lost.
	failed bool

	// stallUntil is the end of the latest injected worker stall; while the
	// stall runs, every sidecore is pinned and ring traffic waits.
	stallUntil sim.Time

	// Counters: "msgs", "net_fwd_local", "net_fwd_uplink", "net_in",
	// "blk_reqs", "iohost_irqs", "interpose_drops", "copy_bytes".
	Counters stats.Counters

	// Tracer records iohyp_worker and blockdev spans, picking up the flow
	// keys the client driver linked. Nil is the zero-cost disabled tracer.
	Tracer *trace.Tracer
}

// Worker is one sidecore worker.
type Worker struct {
	hyp  *IOHypervisor
	Core *cpu.Core
	// scanArmed marks a scheduled ring scan.
	scanArmed bool
	// scratch is the reused frame batch for ring harvesting (PollInto).
	scratch [][]byte
	// scanFn is the prebound poll-timer callback (at most one in flight per
	// worker, guarded by scanArmed).
	scanFn func()
	// Processed counts messages this worker handled.
	Processed uint64
}

// Config assembles an I/O hypervisor.
type Config struct {
	Params *params.P
	Mode   Mode
	// Sidecores are the worker cores (one worker per core).
	Sidecores []*cpu.Core
	// Seed feeds poll-delay jitter.
	Seed uint64
	// Tracer, when non-nil, records datapath spans (shared with the
	// testbed's clients so flow keys hand spans across components).
	Tracer *trace.Tracer
}

// New builds the I/O hypervisor. Channel NICs and devices are attached
// afterwards.
func New(eng *sim.Engine, cfg Config) *IOHypervisor {
	if len(cfg.Sidecores) == 0 {
		panic("iohyp: need at least one sidecore")
	}
	h := &IOHypervisor{
		eng:        eng,
		p:          cfg.Params,
		mode:       cfg.Mode,
		rng:        sim.NewRNG(cfg.Seed ^ 0x10457),
		clientPort: make(map[ethernet.MAC]*nic.MessagePort),
		netDevs:    make(map[devKey]*netDevice),
		blkDevs:    make(map[devKey]*blkDevice),
		fib:        make(map[ethernet.MAC]*netDevice),
		devOwner:   make(map[devKey]*Worker),
		devPending: make(map[devKey]int),
		defaultCh:  interpose.NewChain(),
		Tracer:     cfg.Tracer,
	}
	for _, core := range cfg.Sidecores {
		if cfg.Mode == ModePolling {
			core.Polling = true
			// Whenever a sidecore drains, it returns to its poll loop.
			core.OnIdle = func() { h.armScan() }
		}
		w := &Worker{hyp: h, Core: core}
		w.scanFn = func() {
			w.scanArmed = false
			w.scan()
		}
		h.workers = append(h.workers, w)
	}
	h.endpoint = transport.NewEndpoint(eng, routerPort{h}, transport.Config{
		InitialTimeout: cfg.Params.RetransmitTimeout,
		MaxRetransmits: cfg.Params.MaxRetransmits,
	})
	h.endpoint.Tracer = cfg.Tracer
	h.endpoint.NetTx = h.handleNetTx
	h.endpoint.BlkReq = h.handleBlkReq
	return h
}

// Endpoint exposes the transport endpoint (for device control commands).
func (h *IOHypervisor) Endpoint() *transport.Endpoint { return h.endpoint }

// Workers exposes the worker list (for utilization reporting).
func (h *IOHypervisor) Workers() []*Worker { return h.workers }

// BusyTime totals productive sidecore time across this IOhost's workers —
// the §5 "Load Imbalance" signal. Poll-loop spinning is excluded, so an idle
// polling IOhost reads ~0; metrics gauges and the rack rebalancer both read
// load through this one implementation.
func (h *IOHypervisor) BusyTime() sim.Time {
	var total sim.Time
	for _, w := range h.workers {
		total += w.Core.BusyTime()
	}
	return total
}

// Utilization is this worker's sidecore busy fraction since t=0.
func (w *Worker) Utilization() float64 { return w.Core.Utilization() }

// Utilization averages the worker utilizations — the IOhost's sidecore busy
// fraction.
func (h *IOHypervisor) Utilization() float64 {
	if len(h.workers) == 0 {
		return 0
	}
	var sum float64
	for _, w := range h.workers {
		sum += w.Utilization()
	}
	return sum / float64(len(h.workers))
}

// Fail crashes the IOhost (§4.6 "Fault Tolerance"): its sidecores stop
// serving and all traffic through it is lost. IOclients recover by
// re-attaching to a fallback IOhost; their §4.5 retransmission machinery
// carries in-flight block requests across.
func (h *IOHypervisor) Fail() { h.failed = true }

// Failed reports the crash state.
func (h *IOHypervisor) Failed() bool { return h.failed }

// StallWorkers freezes every sidecore worker for d, modelling host-side
// hiccups — memory pressure, SMIs, a hypervisor-level pause. The stall is
// charged as wasted (poll-kind) core time, so it pins the cores without
// inflating the BusyTime load signal the rebalancer reads; queued work and
// ring traffic wait, and squeezed receive rings may overflow. On a busy
// core the stall queues behind the in-flight work item, like a real
// preemption would. Overlapping stalls extend the window, not stack it.
func (h *IOHypervisor) StallWorkers(d sim.Time) {
	if h.failed || d <= 0 {
		return
	}
	if until := h.eng.Now() + d; until > h.stallUntil {
		h.stallUntil = until
	}
	for _, w := range h.workers {
		w.Core.Exec(cpu.NoOwner, cpu.KindPoll, d, nil)
	}
	h.Counters.Inc("stalls", 1)
}

// Stalled reports whether the workers are inside an injected stall window.
// The rack heartbeat treats a stalled IOhost as unresponsive: short stalls
// stay under the miss threshold, long ones get the host declared dead —
// the classic false-positive trade-off of timeout failure detectors.
func (h *IOHypervisor) Stalled() bool { return h.eng.Now() < h.stallUntil }

// AnnounceAddresses broadcasts one gratuitous frame per registered F
// address out the uplink, so the rack switch re-learns that this IOhost
// now speaks for them — the standard takeover announcement after a
// failover or migration.
func (h *IOHypervisor) AnnounceAddresses() {
	if h.uplink == nil || h.failed {
		return
	}
	for fMAC := range h.fib {
		_ = h.uplink.SendFrame(ethernet.Frame{
			Dst:       ethernet.Broadcast,
			Src:       fMAC,
			EtherType: ethernet.EtherTypePlain,
		})
	}
	h.Counters.Inc("announcements", uint64(len(h.fib)))
}

// ChannelDrops totals frames lost to full receive rings on the channel
// NICs (§4.5's failure mode).
func (h *IOHypervisor) ChannelDrops() uint64 {
	var total uint64
	for _, p := range h.ports {
		total += p.VF().Drops
	}
	return total
}

// routerPort routes transport sends to the channel port of the destination
// client.
type routerPort struct{ h *IOHypervisor }

// LocalMAC implements transport.Port. The IOhost speaks through many ports;
// the first port's MAC is the canonical identity.
func (r routerPort) LocalMAC() ethernet.MAC {
	if len(r.h.ports) == 0 {
		return ethernet.MAC{}
	}
	return r.h.ports[0].LocalMAC()
}

// BufPool implements transport.Pooler: the endpoint draws wire buffers from
// the channel NICs' shared pool so they circulate IOhost-wide.
func (r routerPort) BufPool() *bufpool.Pool { return r.h.bufPool() }

// bufPool resolves the IOhost buffer pool: the first channel port's NIC
// pool, or a private one when no NIC is attached (tests).
func (h *IOHypervisor) bufPool() *bufpool.Pool {
	if h.bp == nil {
		if len(h.ports) > 0 {
			h.bp = h.ports[0].BufPool()
		} else {
			h.bp = bufpool.New()
		}
	}
	return h.bp
}

// Send implements transport.Port.
func (r routerPort) Send(dst ethernet.MAC, payload []byte) {
	if r.h.failed {
		return // a crashed IOhost sends nothing
	}
	port := r.h.clientPort[dst]
	if port == nil {
		// Unknown client: nothing to do; the retransmission machinery (for
		// control traffic) will give up eventually.
		return
	}
	port.Send(dst, payload)
}

// AttachChannelNIC registers a channel-facing VF. Frames arriving on it are
// picked up by workers (polling) or delivered by interrupts (the ablation).
func (h *IOHypervisor) AttachChannelNIC(vf *nic.VF) *nic.MessagePort {
	port := nic.NewMessagePort(vf, h.p.MTU)
	port.OnMessage = func(src ethernet.MAC, msg []byte, zeroCopy bool, fragments int) {
		h.ingressMessage(src, msg, zeroCopy)
	}
	h.ports = append(h.ports, port)
	switch h.mode {
	case ModePolling:
		vf.SetMode(nic.ModePoll)
		vf.NotifyRx = func() { h.armScan() }
	case ModeInterrupt:
		vf.SetMode(nic.ModeInterrupt)
		vf.OnInterrupt(func(frames [][]byte) {
			// The interrupt itself costs a worker core.
			w := h.pickWorker()
			h.Counters.Inc("iohost_irqs", 1)
			w.Core.Exec(cpu.NoOwner, cpu.KindIRQ, h.p.HostIRQCost, func() {
				port.HandleBatch(frames)
			})
		})
	}
	return port
}

// AttachUplink registers the switch-facing VF for external traffic.
func (h *IOHypervisor) AttachUplink(vf *nic.VF) {
	h.uplink = vf
	switch h.mode {
	case ModePolling:
		vf.SetMode(nic.ModePoll)
		vf.NotifyRx = func() { h.armScan() }
	case ModeInterrupt:
		vf.SetMode(nic.ModeInterrupt)
		vf.OnInterrupt(func(frames [][]byte) {
			w := h.pickWorker()
			h.Counters.Inc("iohost_irqs", 1)
			w.Core.Exec(cpu.NoOwner, cpu.KindIRQ, h.p.HostIRQCost, func() {
				for _, fr := range frames {
					h.ingressPlain(fr)
				}
			})
		})
	}
}

// BindClient routes a client's transport MAC to a channel port (its cabled
// NIC).
func (h *IOHypervisor) BindClient(client ethernet.MAC, port *nic.MessagePort) {
	h.clientPort[client] = port
}

// RebindClient moves an IOclient to a new transport address and channel
// port — the IOhost side of a live migration between VMhosts that share
// this IOhost (§4.6). All the client's device registrations, the F-address
// forwarding table, and any steering state follow. The client should be
// paused while this runs.
func (h *IOHypervisor) RebindClient(oldMAC, newMAC ethernet.MAC, port *nic.MessagePort) {
	delete(h.clientPort, oldMAC)
	h.clientPort[newMAC] = port
	rekeyDev := func(old devKey) devKey { return devKey{newMAC, old.id, old.q} }
	for k, d := range h.netDevs {
		if k.client == oldMAC {
			delete(h.netDevs, k)
			d.key = rekeyDev(k)
			h.netDevs[d.key] = d
			h.fib[d.fMAC] = d
		}
	}
	for k, d := range h.blkDevs {
		if k.client == oldMAC {
			delete(h.blkDevs, k)
			d.key = rekeyDev(k)
			h.blkDevs[d.key] = d
		}
	}
	for k, w := range h.devOwner {
		if k.client == oldMAC {
			delete(h.devOwner, k)
			h.devOwner[rekeyDev(k)] = w
		}
	}
	for k, n := range h.devPending {
		if k.client == oldMAC {
			delete(h.devPending, k)
			h.devPending[rekeyDev(k)] = n
		}
	}
	h.Counters.Inc("migrations", 1)
}

// UnregisterClient drops every binding and device registration for a
// client's transport MAC — the source side of a re-home onto another IOhost
// (§4.6). The F addresses leave the forwarding table so this IOhost stops
// claiming them; queued steered work still executes (steer tolerates the
// cleared pending counts). Safe to call on a crashed IOhost.
func (h *IOHypervisor) UnregisterClient(client ethernet.MAC) {
	delete(h.clientPort, client)
	for k, d := range h.netDevs {
		if k.client != client {
			continue
		}
		delete(h.netDevs, k)
		if h.fib[d.fMAC] == d {
			delete(h.fib, d.fMAC)
		}
	}
	for k := range h.blkDevs {
		if k.client == client {
			delete(h.blkDevs, k)
		}
	}
	for k := range h.devOwner {
		if k.client == client {
			delete(h.devOwner, k)
		}
	}
	for k := range h.devPending {
		if k.client == client {
			delete(h.devPending, k)
		}
	}
	h.Counters.Inc("unregisters", 1)
}

// RegisterNetDevice creates a net front-end: fMAC is the device's
// outward-facing address. A nil chain means no interposition.
func (h *IOHypervisor) RegisterNetDevice(client ethernet.MAC, id uint16, fMAC ethernet.MAC, chain *interpose.Chain) {
	if chain == nil {
		chain = h.defaultCh
	}
	d := &netDevice{key: devKey{client: client, id: id}, fMAC: fMAC, chain: chain}
	h.netDevs[d.key] = d
	h.fib[fMAC] = d
}

// RegisterBlkDevice creates a single-queue block front-end served by backend.
func (h *IOHypervisor) RegisterBlkDevice(client ethernet.MAC, id uint16, backend blockdev.Backend, chain *interpose.Chain) {
	h.RegisterBlkDeviceMQ(client, id, backend, chain, 1)
}

// RegisterBlkDeviceMQ creates a block front-end with `queues` submission
// queues. Each queue is bound round-robin to a worker at registration time
// and keeps that affinity for the device's lifetime (queue-pair passthrough:
// a queue's requests never migrate workers mid-flight, so the worker's FIFO
// core preserves per-queue submission order). With queues > 1 the caller's
// backend must arbitrate range conflicts itself (wrap it in a
// blockdev.Scheduler): the guest-side one-outstanding-per-range guarantee no
// longer holds across queues. queues <= 1 is exactly RegisterBlkDevice.
func (h *IOHypervisor) RegisterBlkDeviceMQ(client ethernet.MAC, id uint16, backend blockdev.Backend, chain *interpose.Chain, queues int) {
	if chain == nil {
		chain = h.defaultCh
	}
	if queues < 1 {
		queues = 1
	}
	if queues > 256 {
		panic("iohyp: queue id is one byte; at most 256 queues per device")
	}
	d := &blkDevice{
		key:      devKey{client: client, id: id},
		backend:  backend,
		chain:    chain,
		queues:   queues,
		inflight: make([]map[uint64]int, queues),
		qdepth:   make([]int, queues),
	}
	for q := range d.inflight {
		d.inflight[q] = make(map[uint64]int)
	}
	if queues > 1 {
		d.qworker = make([]*Worker, queues)
		for q := range d.qworker {
			d.qworker[q] = h.workers[q%len(h.workers)]
		}
	}
	h.blkDevs[d.key] = d
}

// RegisterVolReplica creates a volume-replica block front-end: a multi-queue
// block device (see RegisterBlkDeviceMQ) that additionally serves the
// versioned BlkVolOut/BlkVolIn ops. backend must resolve to a Device with a
// ReplicaState attached (directly or through a blockdev.Scheduler); the
// version checks themselves run in the device. Rebuild source reads arrive
// through the same registration — they are ordinary BlkVolIn requests whose
// VolHdr demands the router's committed version.
func (h *IOHypervisor) RegisterVolReplica(client ethernet.MAC, id uint16, backend blockdev.Backend, chain *interpose.Chain, queues int) {
	h.RegisterBlkDeviceMQ(client, id, backend, chain, queues)
	h.blkDevs[devKey{client: client, id: id}].vol = true
}

// workerIndex resolves a worker's position in the sidecore list (-1 when
// unknown); gauges report queue→worker affinity through it.
func (h *IOHypervisor) workerIndex(w *Worker) int {
	for i, cand := range h.workers {
		if cand == w {
			return i
		}
	}
	return -1
}

// BlkQueues reports the submission-queue count of a registered block device
// (0 when unregistered).
func (h *IOHypervisor) BlkQueues(client ethernet.MAC, id uint16) int {
	d := h.blkDevs[devKey{client: client, id: id}]
	if d == nil {
		return 0
	}
	return d.queues
}

// BlkQueueDepth reports the in-flight backend executions on queue q of a
// client's block device (0 when unregistered or out of range).
func (h *IOHypervisor) BlkQueueDepth(client ethernet.MAC, id uint16, q int) int {
	d := h.blkDevs[devKey{client: client, id: id}]
	if d == nil || q < 0 || q >= d.queues {
		return 0
	}
	return d.qdepth[q]
}

// BlkQueueWorker reports the sidecore index queue q is pinned to, or -1 for
// single-queue devices (whose steering is dynamic).
func (h *IOHypervisor) BlkQueueWorker(client ethernet.MAC, id uint16, q int) int {
	d := h.blkDevs[devKey{client: client, id: id}]
	if d == nil || d.qworker == nil || q < 0 || q >= d.queues {
		return -1
	}
	return h.workerIndex(d.qworker[q])
}

// BlkInFlight totals in-flight backend executions across every registered
// block device and queue. Fault tests assert it returns to zero after a
// drain: stalls and crashes must empty the per-queue tables exactly once.
func (h *IOHypervisor) BlkInFlight() int {
	total := 0
	for _, d := range h.blkDevs {
		for _, n := range d.qdepth {
			total += n
		}
	}
	return total
}

// --- polling pickup ---

// armScan schedules an idle worker to take a batch after the mean poll
// detection delay. If every worker is busy, the batch waits until one
// drains (workers re-scan after each work item).
func (h *IOHypervisor) armScan() {
	if h.failed {
		return
	}
	w := h.idleWorker()
	if w == nil || w.scanArmed {
		return
	}
	w.scanArmed = true
	delay := h.rng.Range(1, h.p.PollInterval)
	if h.p.MwaitEnabled {
		// §4.6 "Energy": the sidecore waits in a low-power state via
		// monitor/mwait and pays the wake-up latency on new work.
		delay += h.p.MwaitWakeLatency
	}
	h.eng.After(delay, w.scanFn)
}

func (h *IOHypervisor) idleWorker() *Worker {
	for _, w := range h.workers {
		if !w.Core.Busy() && !w.scanArmed {
			return w
		}
	}
	return nil
}

// pickWorker returns the least-loaded worker, breaking ties round-robin so
// steady light load still spreads across the sidecores.
func (h *IOHypervisor) pickWorker() *Worker {
	n := len(h.workers)
	h.rrIdx++
	best := h.workers[h.rrIdx%n]
	for i := 1; i < n; i++ {
		w := h.workers[(h.rrIdx+i)%n]
		if w.Core.QueueLen() < best.Core.QueueLen() {
			best = w
		}
	}
	return best
}

// scan is the worker poll loop body: drain every ring in batches into the
// worker's reusable scratch, handing frames to the reassembly ports;
// complete messages are steered as work items. The scratch batch is safe to
// reuse across rings because HandleBatch/ingressPlain fully consume each
// frame before returning (fragments are copied into reassembly buffers and
// recycled; plain frames are decoded and re-encoded).
func (w *Worker) scan() {
	h := w.hyp
	found := false
	for _, port := range h.ports {
		w.scratch = w.scratch[:0]
		if port.VF().PollInto(&w.scratch, 64) > 0 {
			found = true
			port.HandleBatch(w.scratch)
		}
	}
	if h.uplink != nil {
		w.scratch = w.scratch[:0]
		if h.uplink.PollInto(&w.scratch, 64) > 0 {
			found = true
			for _, fr := range w.scratch {
				h.ingressPlain(fr)
			}
		}
	}
	if found {
		// More may have arrived while we processed; re-arm.
		h.armScan()
	}
}

// --- ingress paths ---

// ingressMessage handles a reassembled transport message from a client.
func (h *IOHypervisor) ingressMessage(src ethernet.MAC, msg []byte, zeroCopy bool) {
	if h.failed {
		return
	}
	h.Counters.Inc("msgs", 1)
	cost := h.p.WorkerServiceCost + sim.Time(h.p.WorkerPerByte*float64(len(msg)))
	if !zeroCopy {
		cost += sim.Time(h.p.CopyPenaltyPerByte * float64(len(msg)))
		h.Counters.Inc("copy_bytes", uint64(len(msg)))
	}
	// Peek at the device to steer before charging the worker.
	hdr, body, err := transport.Decode(msg)
	key := devKey{client: src}
	if err == nil {
		key.id = hdr.DeviceID
	}
	// Multi-queue block requests steer by (device, queue) to the queue's
	// pinned worker — passthrough affinity, decided before any worker is
	// charged. Everything else keeps the legacy device-owner steering.
	var pinned *Worker
	if err == nil && hdr.Type == transport.MsgBlkReq {
		if dev := h.blkDevs[key]; dev != nil && dev.qworker != nil {
			q := dev.blkQueue(hdr.OrigID)
			key.q = uint8(q)
			pinned = dev.qworker[q]
		}
	}
	// Pick up the trace context the client driver linked: the wire span ends
	// here (message picked up off the channel); the worker span the steered
	// work item opens is parented under the request's guest_ring root. Net-tx
	// roots measure submission-to-forwarded, so the root is taken and ended
	// once the worker is done with the frame.
	var parent, netRoot trace.SpanID
	var flow uint64
	name := "msg"
	if h.Tracer.Enabled() && err == nil {
		mac := trace.Key48(src)
		switch hdr.Type {
		case transport.MsgBlkReq:
			h.Tracer.End(h.Tracer.Take(trace.FlowKey{Kind: transport.FlowBlkWire, A: mac, B: hdr.ReqID}))
			parent = h.Tracer.Lookup(trace.FlowKey{Kind: transport.FlowBlkRoot, A: mac, B: hdr.OrigID})
			name = "blk-req"
		case transport.MsgNetTx:
			h.Tracer.End(h.Tracer.Take(trace.FlowKey{Kind: transport.FlowNetWire, A: mac, B: hdr.ReqID}))
			netRoot = h.Tracer.Take(trace.FlowKey{Kind: transport.FlowNetRoot, A: mac, B: hdr.ReqID})
			parent = netRoot
			name = "net-tx"
			// The message payload is the guest's ethernet frame; keying the
			// worker span by its destination F-MAC joins the egress worker to
			// the frame's fabric hops in a merged export.
			flow = transport.NetFlow(body)
		}
	}
	it := h.getSteer()
	it.op = steerOpDeliver
	it.key = key
	it.pinned = pinned
	it.cost = cost
	it.parent = parent
	it.flow = flow
	it.name = name
	it.src = src
	it.msg = msg
	it.netRoot = netRoot
	h.steer(it)
}

// ingressPlain handles a frame from the uplink (external party -> some VM's
// F address).
func (h *IOHypervisor) ingressPlain(frame []byte) {
	if h.failed {
		return
	}
	f, err := ethernet.Decode(frame)
	if err != nil {
		return
	}
	dev := h.fib[f.Dst]
	if dev == nil {
		h.Counters.Inc("unknown_dst", 1)
		return
	}
	h.Counters.Inc("net_in", 1)
	payload, icost, err := dev.chain.Process(interpose.ToGuest, dev.key.id, f.Payload)
	if err != nil {
		h.Counters.Inc("interpose_drops", 1)
		return
	}
	inner := ethernet.Frame{Dst: f.Dst, Src: f.Src, EtherType: f.EtherType, Payload: payload}
	raw, _ := inner.Encode(0)
	cost := h.p.WorkerServiceCost + h.p.EncapCost + icost
	it := h.getSteer()
	it.op = steerOpNetIn
	it.key = dev.key
	it.cost = cost
	it.name = "net-in"
	if h.Tracer.Enabled() {
		// Inbound uplink frames are how cross-rack requests arrive; keying
		// the worker span by the destination F-MAC joins it to the request's
		// fabric hops in a merged export.
		it.flow = trace.Key48(f.Dst)
	}
	it.dev = dev
	it.raw = raw
	h.steer(it)
}

// txInterrupt charges the transmit-side interrupt in the no-poll ablation.
// Inside a steered work item (beginTxBatch/endTxBatch bracket) the interrupt
// is latched: however many responses the item emits, the client is
// interrupted at most once when the item completes.
func (h *IOHypervisor) txInterrupt() {
	if h.mode != ModeInterrupt {
		return
	}
	if h.txBatch {
		h.txPend++
		return
	}
	h.fireTxIRQ()
}

func (h *IOHypervisor) fireTxIRQ() {
	w := h.pickWorker()
	h.Counters.Inc("iohost_irqs", 1)
	w.Core.Exec(cpu.NoOwner, cpu.KindIRQ, h.p.HostIRQCost, nil)
}

// beginTxBatch opens a TX-interrupt coalescing window. Windows do not nest:
// steered items run as top-level events.
func (h *IOHypervisor) beginTxBatch() {
	h.txBatch = true
	h.txPend = 0
}

// endTxBatch closes the window, firing the single coalesced interrupt if any
// response was emitted inside it.
func (h *IOHypervisor) endTxBatch() {
	h.txBatch = false
	if h.txPend > 0 {
		h.txPend = 0
		h.fireTxIRQ()
	}
}

// Steered work item kinds.
const (
	steerOpDeliver = iota // hand a reassembled transport message to the endpoint
	steerOpNetIn          // push an uplink frame to a client as net-rx
)

// steerItem is one steered unit of work. Items are recycled through
// IOHypervisor.steerFree with a prebound run callback, so steady-state
// steering does not allocate.
type steerItem struct {
	h      *IOHypervisor
	w      *Worker
	op     int
	key    devKey
	pinned *Worker // queue-pair affinity; overrides device-owner steering
	cost   sim.Time
	parent trace.SpanID
	name   string
	flow   uint64 // fabric-global flow key for the worker span (0 = none)
	fn     func()

	// steerOpDeliver state.
	src     ethernet.MAC
	msg     []byte
	netRoot trace.SpanID

	// steerOpNetIn state.
	dev *netDevice
	raw []byte
}

// getSteer returns a recycled (or fresh) steered work item.
func (h *IOHypervisor) getSteer() *steerItem {
	if n := len(h.steerFree); n > 0 {
		it := h.steerFree[n-1]
		h.steerFree[n-1] = nil
		h.steerFree = h.steerFree[:n-1]
		return it
	}
	it := &steerItem{h: h}
	it.fn = it.run
	return it
}

// steer assigns a work item's device to its owning worker, or to the least
// loaded worker when unowned, holding ownership until the device's queue
// drains (§4.1: order-preserving steering). it.parent/it.name describe the
// iohyp_worker span recorded around the work item when tracing is on; the
// span is backdated by cost from inside the completion callback, so it
// covers exactly the service window (queueing excluded).
func (h *IOHypervisor) steer(it *steerItem) {
	w := it.pinned
	if w == nil {
		w = h.devOwner[it.key]
		if w == nil {
			w = h.pickWorker()
			h.devOwner[it.key] = w
		}
	}
	it.w = w
	h.devPending[it.key]++
	w.Core.Exec(cpu.NoOwner, cpu.KindBusy, it.cost, it.fn)
}

// run executes a steered work item on its worker and recycles it.
func (it *steerItem) run() {
	h := it.h
	if h.Tracer.Enabled() {
		// The span arg packs the submission queue above the device id, so
		// per-queue worker occupancy is visible in exports (0 for
		// single-queue devices, leaving legacy traces untouched).
		arg := uint64(it.key.id) | uint64(it.key.q)<<32
		span := h.Tracer.BeginFlowAt(trace.CatWorker, it.name, it.parent, arg, it.flow, h.eng.Now()-it.cost)
		defer h.Tracer.End(span)
	}
	it.w.Processed++
	h.devPending[it.key]--
	// <= 0 rather than == 0: UnregisterClient may have cleared the
	// steering maps while this item was queued, recreating the entry at
	// zero — don't let it stick at a negative count forever.
	if h.devPending[it.key] <= 0 {
		delete(h.devOwner, it.key)
		delete(h.devPending, it.key)
	}
	if !h.failed { // a crashed host executes nothing, even queued work
		h.beginTxBatch()
		switch it.op {
		case steerOpDeliver:
			if err := h.endpoint.Deliver(it.src, it.msg); err != nil {
				h.Counters.Inc("bad_msgs", 1)
			}
			h.Tracer.End(it.netRoot)
		case steerOpNetIn:
			h.endpoint.SendNetRx(it.dev.key.client, it.dev.key.id, it.raw)
			h.txInterrupt()
		}
		h.endTxBatch()
	}
	*it = steerItem{h: it.h, fn: it.fn}
	h.steerFree = append(h.steerFree, it)
}

// --- transport-level handlers (run inside steered work items) ---

// handleNetTx forwards a guest-transmitted frame: locally to another
// IOclient device, or out the uplink.
func (h *IOHypervisor) handleNetTx(src ethernet.MAC, deviceID uint16, frame []byte) {
	if h.failed {
		return
	}
	dev := h.netDevs[devKey{client: src, id: deviceID}]
	chain := h.defaultCh
	if dev != nil {
		chain = dev.chain
	}
	f, err := ethernet.Decode(frame)
	if err != nil {
		h.Counters.Inc("bad_msgs", 1)
		return
	}
	payload, icost, err := chain.Process(interpose.ToDevice, deviceID, f.Payload)
	if err != nil {
		h.Counters.Inc("interpose_drops", 1)
		return
	}
	// Interposition cost is charged to the current worker asynchronously
	// (the message's service cost was charged at steer time; chain cost is
	// charged now on the least loaded worker to keep the model simple).
	if icost > 0 {
		h.pickWorker().Core.Exec(cpu.NoOwner, cpu.KindBusy, icost, nil)
	}
	out := ethernet.Frame{Dst: f.Dst, Src: f.Src, EtherType: f.EtherType, Payload: payload}

	if local := h.fib[f.Dst]; local != nil {
		// VM-to-VM through the IOhost: deliver to the destination device.
		h.Counters.Inc("net_fwd_local", 1)
		inPayload, inCost, err := local.chain.Process(interpose.ToGuest, local.key.id, out.Payload)
		if err != nil {
			h.Counters.Inc("interpose_drops", 1)
			return
		}
		if inCost > 0 {
			h.pickWorker().Core.Exec(cpu.NoOwner, cpu.KindBusy, inCost, nil)
		}
		final := out
		final.Payload = inPayload
		raw, _ := final.Encode(0)
		h.endpoint.SendNetRx(local.key.client, local.key.id, raw)
		h.txInterrupt()
		return
	}
	if h.uplink == nil {
		h.Counters.Inc("unknown_dst", 1)
		return
	}
	h.Counters.Inc("net_fwd_uplink", 1)
	// Transmit with the device's F MAC as source so replies route back.
	if dev != nil {
		out.Src = dev.fMAC
	}
	if err := h.uplink.SendFrame(out); err != nil {
		h.Counters.Inc("bad_msgs", 1)
	}
	h.txInterrupt()
}

// Shared status-only block responses (RespondBlk borrows and copies, so
// these read-only singletons are safe to reuse).
var (
	respBlkOK     = []byte{virtio.BlkOK}
	respBlkIOErr  = []byte{virtio.BlkIOErr}
	respBlkUnsupp = []byte{virtio.BlkUnsupp}
	respBlkStale  = []byte{virtio.BlkStale}
	respBlkGap    = []byte{virtio.BlkGap}
)

func statusResp(err error) []byte {
	if err != nil {
		return respBlkIOErr
	}
	return respBlkOK
}

// volStatusResp maps a replica completion to a status byte: version fencing
// (a stale writer, or a replica behind the reader's committed minimum)
// answers BlkStale, and a replica that provably missed an earlier write
// answers BlkGap — so the router can distinguish "retry elsewhere / give up
// cleanly" and "heal this replica" from a real I/O failure.
func volStatusResp(err error) []byte {
	switch {
	case err == nil:
		return respBlkOK
	case errors.Is(err, blockdev.ErrStaleWrite), errors.Is(err, blockdev.ErrStaleReplica):
		return respBlkStale
	case errors.Is(err, blockdev.ErrVersionGap):
		return respBlkGap
	default:
		return respBlkIOErr
	}
}

// handleBlkReq decodes a virtio-blk request, interposes, executes it on the
// backend, and responds. req is a leased buffer: this handler releases it on
// every path — immediately once the payload has been consumed (reads,
// flushes, errors), or from the backend completion for writes, whose
// interposed payload may alias the lease.
func (h *IOHypervisor) handleBlkReq(src ethernet.MAC, hdr transport.Header, req *bufpool.Frame) {
	dev := h.blkDevs[devKey{client: src, id: hdr.DeviceID}]
	if dev == nil {
		h.Counters.Inc("unknown_dev", 1)
		h.endpoint.RespondBlk(src, hdr, respBlkUnsupp)
		req.Release()
		return
	}
	bh, body, err := virtio.DecodeBlkHdr(req.B)
	if err != nil {
		h.Counters.Inc("bad_msgs", 1)
		h.endpoint.RespondBlk(src, hdr, respBlkIOErr)
		req.Release()
		return
	}
	h.Counters.Inc("blk_reqs", 1)
	// Backend stages of a multi-queue request run on the queue's pinned
	// worker (passthrough affinity end to end); single-queue devices keep
	// the legacy least-loaded pick.
	q := dev.blkQueue(hdr.OrigID)
	execWorker := func() *Worker {
		if dev.qworker != nil {
			return dev.qworker[q]
		}
		return h.pickWorker()
	}
	// Blockdev spans cover handoff-to-backend through backend completion,
	// parented under the request's guest_ring root (left linked until the
	// driver consumes the completion).
	root := h.Tracer.Lookup(trace.FlowKey{
		Kind: transport.FlowBlkRoot, A: trace.Key48(src), B: hdr.OrigID,
	})

	switch bh.Type {
	case virtio.BlkOut: // write
		payload, icost, err := dev.chain.Process(interpose.ToDevice, hdr.DeviceID, body)
		if err != nil {
			h.Counters.Inc("interpose_drops", 1)
			h.endpoint.RespondBlk(src, hdr, respBlkIOErr)
			req.Release()
			return
		}
		// §4.4: aligned inner portions are zero-copied; edges are copied.
		copied := copiedEdgeBytes(len(payload), h.p.SectorSize)
		cost := h.p.BlockServiceCost + icost + sim.Time(h.p.CopyPenaltyPerByte*float64(copied))
		if copied > 0 {
			h.Counters.Inc("copy_bytes", uint64(copied))
		}
		bd := h.Tracer.BeginArg(trace.CatBlockdev, "write", root, hdr.OrigID)
		// The interposed payload may alias the leased request buffer, and the
		// backend holds it until completion — the lease is released from the
		// completion callback. The in-flight table entry lives from here to
		// backend completion; the completion always runs (even on a crashed
		// host, where only the response is suppressed), so tables drain
		// exactly once.
		dev.track(q, hdr.OrigID)
		execWorker().Core.Exec(cpu.NoOwner, cpu.KindBusy, cost, func() {
			dev.backend.Submit(blockdev.Request{Op: blockdev.OpWrite, Sector: bh.Sector, Data: payload}, func(resp blockdev.Response) {
				dev.untrack(q, hdr.OrigID)
				h.Tracer.End(bd)
				req.Release()
				h.respondBlk(src, hdr, statusResp(resp.Err))
			})
		})
	case virtio.BlkIn:
		// Read length travels as the body: a 4-byte little-endian sector
		// count (the front-end convention; see the core package).
		n := 0
		if len(body) >= 4 {
			n = int(uint32(body[0]) | uint32(body[1])<<8 | uint32(body[2])<<16 | uint32(body[3])<<24)
		}
		// The body is fully consumed (bh.Sector and n are values now); the
		// lease can go back to the pool before the backend runs.
		req.Release()
		if n <= 0 {
			h.endpoint.RespondBlk(src, hdr, respBlkIOErr)
			return
		}
		bd := h.Tracer.BeginArg(trace.CatBlockdev, "read", root, hdr.OrigID)
		dev.track(q, hdr.OrigID)
		execWorker().Core.Exec(cpu.NoOwner, cpu.KindBusy, h.p.BlockServiceCost, func() {
			dev.backend.Submit(blockdev.Request{Op: blockdev.OpRead, Sector: bh.Sector, Sectors: n}, func(resp blockdev.Response) {
				dev.untrack(q, hdr.OrigID)
				h.Tracer.End(bd)
				if resp.Err != nil {
					h.respondBlk(src, hdr, respBlkIOErr)
					return
				}
				// §4.4: reads cannot zero-copy at the IOhost.
				data, icost, err := dev.chain.Process(interpose.ToGuest, hdr.DeviceID, resp.Data)
				if err != nil {
					h.respondBlk(src, hdr, respBlkIOErr)
					return
				}
				copyCost := sim.Time(h.p.CopyPenaltyPerByte * float64(len(data)))
				h.Counters.Inc("copy_bytes", uint64(len(data)))
				execWorker().Core.Exec(cpu.NoOwner, cpu.KindBusy, icost+copyCost, func() {
					// RespondBlk borrows the response, so the status+data
					// buffer is pooled and returned right after the call.
					out := h.bufPool().GetRaw(1 + len(data))
					out[0] = virtio.BlkOK
					copy(out[1:], data)
					h.respondBlk(src, hdr, out)
					h.bufPool().PutRaw(out)
				})
			})
		})
	case virtio.BlkVolOut: // versioned replica write
		if !dev.vol {
			h.endpoint.RespondBlk(src, hdr, respBlkUnsupp)
			req.Release()
			return
		}
		vh, volBody, err := virtio.DecodeVolHdr(body)
		if err != nil {
			h.Counters.Inc("bad_msgs", 1)
			h.endpoint.RespondBlk(src, hdr, respBlkIOErr)
			req.Release()
			return
		}
		payload, icost, err := dev.chain.Process(interpose.ToDevice, hdr.DeviceID, volBody)
		if err != nil {
			h.Counters.Inc("interpose_drops", 1)
			h.endpoint.RespondBlk(src, hdr, respBlkIOErr)
			req.Release()
			return
		}
		copied := copiedEdgeBytes(len(payload), h.p.SectorSize)
		cost := h.p.BlockServiceCost + icost + sim.Time(h.p.CopyPenaltyPerByte*float64(copied))
		if copied > 0 {
			h.Counters.Inc("copy_bytes", uint64(copied))
		}
		bd := h.Tracer.BeginArg(trace.CatBlockdev, "vol-write", root, hdr.OrigID)
		// Same lifetime rules as BlkOut: payload may alias the lease, so the
		// release happens in the backend completion; the completion always
		// runs (response-only suppression on a crashed host), so the
		// in-flight tables drain exactly once.
		dev.track(q, hdr.OrigID)
		execWorker().Core.Exec(cpu.NoOwner, cpu.KindBusy, cost, func() {
			dev.backend.Submit(blockdev.Request{
				Op: blockdev.OpVolWrite, Sector: bh.Sector, Data: payload,
				Extent: vh.Extent, Version: vh.Version,
			}, func(resp blockdev.Response) {
				dev.untrack(q, hdr.OrigID)
				h.Tracer.End(bd)
				req.Release()
				h.respondBlk(src, hdr, volStatusResp(resp.Err))
			})
		})
	case virtio.BlkVolIn: // versioned replica read
		if !dev.vol {
			h.endpoint.RespondBlk(src, hdr, respBlkUnsupp)
			req.Release()
			return
		}
		vh, volBody, err := virtio.DecodeVolHdr(body)
		n := 0
		if err == nil && len(volBody) >= 4 {
			n = int(uint32(volBody[0]) | uint32(volBody[1])<<8 | uint32(volBody[2])<<16 | uint32(volBody[3])<<24)
		}
		req.Release() // header and count are values now
		if err != nil || n <= 0 {
			h.Counters.Inc("bad_msgs", 1)
			h.endpoint.RespondBlk(src, hdr, respBlkIOErr)
			return
		}
		bd := h.Tracer.BeginArg(trace.CatBlockdev, "vol-read", root, hdr.OrigID)
		dev.track(q, hdr.OrigID)
		execWorker().Core.Exec(cpu.NoOwner, cpu.KindBusy, h.p.BlockServiceCost, func() {
			dev.backend.Submit(blockdev.Request{
				Op: blockdev.OpVolRead, Sector: bh.Sector, Sectors: n,
				Extent: vh.Extent, Version: vh.Version,
			}, func(resp blockdev.Response) {
				dev.untrack(q, hdr.OrigID)
				h.Tracer.End(bd)
				if resp.Err != nil {
					h.respondBlk(src, hdr, volStatusResp(resp.Err))
					return
				}
				data, icost, err := dev.chain.Process(interpose.ToGuest, hdr.DeviceID, resp.Data)
				if err != nil {
					h.respondBlk(src, hdr, respBlkIOErr)
					return
				}
				copyCost := sim.Time(h.p.CopyPenaltyPerByte * float64(len(data)))
				h.Counters.Inc("copy_bytes", uint64(len(data)))
				execWorker().Core.Exec(cpu.NoOwner, cpu.KindBusy, icost+copyCost, func() {
					// Successful vol-reads answer [BlkOK][version:8][data]:
					// the serving replica's extent version lets rebuild and
					// heal copies stamp their target honestly.
					out := h.bufPool().GetRaw(1 + virtio.VolReadVerSize + len(data))
					out[0] = virtio.BlkOK
					binary.LittleEndian.PutUint64(out[1:], resp.Version)
					copy(out[1+virtio.VolReadVerSize:], data)
					h.respondBlk(src, hdr, out)
					h.bufPool().PutRaw(out)
				})
			})
		})
	case virtio.BlkFlush:
		req.Release() // flush carries no payload
		bd := h.Tracer.BeginArg(trace.CatBlockdev, "flush", root, hdr.OrigID)
		dev.track(q, hdr.OrigID)
		execWorker().Core.Exec(cpu.NoOwner, cpu.KindBusy, h.p.BlockServiceCost, func() {
			dev.backend.Submit(blockdev.Request{Op: blockdev.OpFlush}, func(resp blockdev.Response) {
				dev.untrack(q, hdr.OrigID)
				h.Tracer.End(bd)
				h.respondBlk(src, hdr, statusResp(resp.Err))
			})
		})
	default:
		h.endpoint.RespondBlk(src, hdr, respBlkUnsupp)
		req.Release()
	}
}

func (h *IOHypervisor) respondBlk(src ethernet.MAC, hdr transport.Header, resp []byte) {
	if h.failed {
		return // completions from a crashed host never leave it
	}
	h.endpoint.RespondBlk(src, hdr, resp)
	h.txInterrupt()
}

// copiedEdgeBytes estimates the §4.4 edge copy for a write whose buffer
// arrived at an arbitrary offset in DMA memory: the head and tail partial
// sectors. A length that is an exact sector multiple still copies nothing
// only if the offset is aligned; we model the common case where the
// transport header shifts the payload off alignment.
func copiedEdgeBytes(length, sectorSize int) int {
	if length == 0 {
		return 0
	}
	if length < 2*sectorSize {
		return length
	}
	// Transport + virtio headers shift the payload by their combined size.
	offset := (transport.HeaderSize + virtio.BlkHdrSize) % sectorSize
	head := (sectorSize - offset) % sectorSize
	tail := (offset + length) % sectorSize
	return head + tail
}

func init() {
	// Assert the assumption copiedEdgeBytes builds on: header sizes are
	// stable. This breaks loudly if the wire format changes.
	if transport.HeaderSize+virtio.BlkHdrSize != 44 {
		panic(fmt.Sprintf("iohyp: unexpected header sizes: %d", transport.HeaderSize+virtio.BlkHdrSize))
	}
}
