package iohyp

import (
	"bytes"
	"encoding/binary"
	"testing"

	"vrio/internal/blockdev"
	"vrio/internal/cpu"
	"vrio/internal/ethernet"
	"vrio/internal/interpose"
	"vrio/internal/link"
	"vrio/internal/nic"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/transport"
	"vrio/internal/virtio"
)

// rig is a minimal IOhost + one IOclient + one external node.
type rig struct {
	eng *sim.Engine
	p   params.P
	hyp *IOHypervisor

	clientMAC  ethernet.MAC
	clientPort *nic.MessagePort
	driver     *transport.Driver

	extVF  *nic.VF // the external party's NIC
	extMAC ethernet.MAC
}

func newRig(t *testing.T, sidecores int, mode Mode) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(), p: params.Default()}
	r.clientMAC = ethernet.NewMAC(1)
	r.extMAC = ethernet.NewMAC(200)

	// Channel cable: client <-> IOhost.
	chCable := link.NewDuplex(r.eng, r.p.LinkBandwidth40G, r.p.WireLatency)
	nicCfg := nic.Config{ProcessCost: r.p.NICProcessCost, CoalesceDelay: r.p.IRQCoalesceDelay, RxRingSize: r.p.RxRingSize}
	clientNIC := nic.New(r.eng, "client", nicCfg, chCable.AtoB)
	iohostChNIC := nic.New(r.eng, "iohost-ch", nicCfg, chCable.BtoA)
	chCable.AtoB.SetReceiver(iohostChNIC)
	chCable.BtoA.SetReceiver(clientNIC)

	clientVF := clientNIC.AddVF(r.clientMAC, nic.ModePoll)
	iohostVF := iohostChNIC.AddVF(ethernet.NewMAC(100), nic.ModePoll)

	// Uplink cable: external node <-> IOhost.
	upCable := link.NewDuplex(r.eng, r.p.LinkBandwidth10G, r.p.WireLatency)
	extNIC := nic.New(r.eng, "ext", nicCfg, upCable.AtoB)
	iohostUpNIC := nic.New(r.eng, "iohost-up", nicCfg, upCable.BtoA)
	upCable.AtoB.SetReceiver(iohostUpNIC)
	upCable.BtoA.SetReceiver(extNIC)
	r.extVF = extNIC.AddVF(r.extMAC, nic.ModePoll)
	uplinkVF := iohostUpNIC.AddVF(ethernet.NewMAC(101), nic.ModePoll)
	// The uplink terminates traffic for every F MAC behind the IOhost.
	iohostUpNIC.Promiscuous = uplinkVF

	// IOhost.
	var cores []*cpu.Core
	for i := 0; i < sidecores; i++ {
		cores = append(cores, cpu.New(r.eng, "side", r.p.ContextSwitchCost))
	}
	r.hyp = New(r.eng, Config{Params: &r.p, Mode: mode, Sidecores: cores, Seed: 1})
	port := r.hyp.AttachChannelNIC(iohostVF)
	r.hyp.AttachUplink(uplinkVF)
	r.hyp.BindClient(r.clientMAC, port)

	// Client transport driver; frames are handled as soon as they land
	// (the client's own costs are out of scope here).
	r.clientPort = nic.NewMessagePort(clientVF, r.p.MTU)
	r.driver = transport.NewDriver(r.eng, r.clientPort, ethernet.NewMAC(100), transport.Config{})
	r.clientPort.OnMessage = func(src ethernet.MAC, msg []byte, _ bool, _ int) {
		if err := r.driver.Deliver(msg); err != nil {
			t.Errorf("client driver: %v", err)
		}
	}
	clientVF.NotifyRx = func() {
		r.eng.After(1, func() { r.clientPort.HandleBatch(clientVF.Poll(0)) })
	}
	return r
}

func TestBlockWriteReadThroughIOhost(t *testing.T) {
	r := newRig(t, 2, ModePolling)
	store := blockdev.NewStore(r.p.SectorSize, 10000)
	dev := blockdev.NewDevice(r.eng, store, r.p.RamdiskLatency, 4)
	r.hyp.RegisterBlkDevice(r.clientMAC, 1, dev, nil)

	// Write 4 KiB.
	payload := bytes.Repeat([]byte{0xCD}, 4096)
	req := virtio.BlkHdr{Type: virtio.BlkOut, Sector: 64}.Encode(nil)
	req = append(req, payload...)
	wrote := false
	r.driver.SendBlk(uint8(virtio.DeviceBlk), 1, req, func(resp []byte, err error) {
		if err != nil || len(resp) != 1 || resp[0] != virtio.BlkOK {
			t.Errorf("write resp=%v err=%v", resp, err)
		}
		wrote = true
	})
	r.eng.Run()
	if !wrote {
		t.Fatal("write never completed")
	}
	got, err := store.Read(64, 4096/r.p.SectorSize)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatal("store does not contain written data")
	}

	// Read it back through the stack.
	rd := virtio.BlkHdr{Type: virtio.BlkIn, Sector: 64}.Encode(nil)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(4096/r.p.SectorSize))
	rd = append(rd, n[:]...)
	var readBack []byte
	r.driver.SendBlk(uint8(virtio.DeviceBlk), 1, rd, func(resp []byte, err error) {
		if err != nil || len(resp) < 1 || resp[0] != virtio.BlkOK {
			t.Errorf("read resp err=%v", err)
			return
		}
		readBack = resp[1:]
	})
	r.eng.Run()
	if !bytes.Equal(readBack, payload) {
		t.Errorf("read-back %d bytes, mismatch", len(readBack))
	}
	if r.hyp.Counters.Get("blk_reqs") != 2 {
		t.Errorf("blk_reqs = %d", r.hyp.Counters.Get("blk_reqs"))
	}
}

func TestBlockAESInterposition(t *testing.T) {
	r := newRig(t, 1, ModePolling)
	store := blockdev.NewStore(r.p.SectorSize, 1000)
	dev := blockdev.NewDevice(r.eng, store, r.p.RamdiskLatency, 1)
	aes, err := interpose.NewAES(bytes.Repeat([]byte{9}, 32), r.p.AESPerByteCost)
	if err != nil {
		t.Fatal(err)
	}
	r.hyp.RegisterBlkDevice(r.clientMAC, 1, dev, interpose.NewChain(aes))

	plain := bytes.Repeat([]byte{0x11}, 512)
	req := virtio.BlkHdr{Type: virtio.BlkOut, Sector: 0}.Encode(nil)
	req = append(req, plain...)
	r.driver.SendBlk(uint8(virtio.DeviceBlk), 1, req, func(resp []byte, err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
	})
	r.eng.Run()

	// At rest, the store holds ciphertext.
	atRest, _ := store.Read(0, 1)
	if bytes.Equal(atRest, plain) {
		t.Error("data at rest is not encrypted")
	}

	// Reading through the chain decrypts.
	rd := virtio.BlkHdr{Type: virtio.BlkIn, Sector: 0}.Encode(nil)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], 1)
	rd = append(rd, n[:]...)
	var back []byte
	r.driver.SendBlk(uint8(virtio.DeviceBlk), 1, rd, func(resp []byte, err error) {
		if err == nil && len(resp) > 0 && resp[0] == virtio.BlkOK {
			back = resp[1:]
		}
	})
	r.eng.Run()
	if !bytes.Equal(back, plain) {
		t.Error("read through AES chain did not decrypt")
	}
}

func TestNetTxForwardsToUplinkWithFMAC(t *testing.T) {
	r := newRig(t, 1, ModePolling)
	fMAC := ethernet.NewMAC(50)
	r.hyp.RegisterNetDevice(r.clientMAC, 2, fMAC, nil)

	inner := ethernet.Frame{Dst: r.extMAC, Src: fMAC, EtherType: ethernet.EtherTypePlain, Payload: []byte("to the world")}
	raw, _ := inner.Encode(0)
	r.driver.SendNet(uint8(virtio.DeviceNet), 2, raw)
	r.eng.Run()

	frames := r.extVF.Poll(0)
	if len(frames) != 1 {
		t.Fatalf("external node got %d frames", len(frames))
	}
	f, _ := ethernet.Decode(frames[0])
	if string(f.Payload) != "to the world" {
		t.Errorf("payload = %q", f.Payload)
	}
	if f.Src != fMAC {
		t.Errorf("source = %v, want F MAC %v", f.Src, fMAC)
	}
	if r.hyp.Counters.Get("net_fwd_uplink") != 1 {
		t.Errorf("net_fwd_uplink = %d", r.hyp.Counters.Get("net_fwd_uplink"))
	}
}

func TestExternalFrameDeliveredToClient(t *testing.T) {
	r := newRig(t, 1, ModePolling)
	fMAC := ethernet.NewMAC(50)
	r.hyp.RegisterNetDevice(r.clientMAC, 2, fMAC, nil)

	var gotDev uint16
	var gotFrame []byte
	r.driver.NetRx = func(deviceID uint16, frame []byte) {
		gotDev = deviceID
		gotFrame = frame
	}
	r.extVF.SendFrame(ethernet.Frame{Dst: fMAC, EtherType: ethernet.EtherTypePlain, Payload: []byte("inbound")})
	r.eng.Run()
	if gotDev != 2 {
		t.Fatalf("device = %d (frame len %d)", gotDev, len(gotFrame))
	}
	f, err := ethernet.Decode(gotFrame)
	if err != nil || string(f.Payload) != "inbound" {
		t.Errorf("frame payload = %q err=%v", f.Payload, err)
	}
	if r.hyp.Counters.Get("net_in") != 1 {
		t.Errorf("net_in = %d", r.hyp.Counters.Get("net_in"))
	}
}

func TestVMToVMLocalForwarding(t *testing.T) {
	r := newRig(t, 2, ModePolling)
	fA, fB := ethernet.NewMAC(50), ethernet.NewMAC(51)
	r.hyp.RegisterNetDevice(r.clientMAC, 1, fA, nil)
	r.hyp.RegisterNetDevice(r.clientMAC, 2, fB, nil)

	var gotDev uint16
	var payload string
	r.driver.NetRx = func(deviceID uint16, frame []byte) {
		gotDev = deviceID
		f, _ := ethernet.Decode(frame)
		payload = string(f.Payload)
	}
	inner := ethernet.Frame{Dst: fB, Src: fA, EtherType: ethernet.EtherTypePlain, Payload: []byte("vm2vm")}
	raw, _ := inner.Encode(0)
	r.driver.SendNet(uint8(virtio.DeviceNet), 1, raw)
	r.eng.Run()
	if gotDev != 2 || payload != "vm2vm" {
		t.Errorf("dev=%d payload=%q", gotDev, payload)
	}
	if r.hyp.Counters.Get("net_fwd_local") != 1 {
		t.Errorf("net_fwd_local = %d", r.hyp.Counters.Get("net_fwd_local"))
	}
}

func TestFirewallDropCounted(t *testing.T) {
	r := newRig(t, 1, ModePolling)
	fMAC := ethernet.NewMAC(50)
	fw := interpose.NewFirewall(100, []byte("DENY"))
	r.hyp.RegisterNetDevice(r.clientMAC, 2, fMAC, interpose.NewChain(fw))
	inner := ethernet.Frame{Dst: r.extMAC, Src: fMAC, EtherType: ethernet.EtherTypePlain, Payload: []byte("DENY this")}
	raw, _ := inner.Encode(0)
	r.driver.SendNet(uint8(virtio.DeviceNet), 2, raw)
	r.eng.Run()
	if got := len(r.extVF.Poll(0)); got != 0 {
		t.Errorf("dropped frame escaped: %d frames", got)
	}
	if r.hyp.Counters.Get("interpose_drops") != 1 {
		t.Errorf("interpose_drops = %d", r.hyp.Counters.Get("interpose_drops"))
	}
}

func TestPerDeviceOrderPreservedAcrossWorkers(t *testing.T) {
	r := newRig(t, 4, ModePolling)
	store := blockdev.NewStore(r.p.SectorSize, 10000)
	dev := blockdev.NewDevice(r.eng, store, 100, 8)
	r.hyp.RegisterBlkDevice(r.clientMAC, 1, blockdev.NewScheduler(dev, r.p.SectorSize), nil)

	// 32 sequential writes to the same sector: final content must be the
	// last one despite 4 workers.
	const writes = 32
	completed := 0
	for i := 0; i < writes; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 512)
		req := virtio.BlkHdr{Type: virtio.BlkOut, Sector: 7}.Encode(nil)
		req = append(req, data...)
		r.driver.SendBlk(uint8(virtio.DeviceBlk), 1, req, func(resp []byte, err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
			completed++
		})
	}
	r.eng.Run()
	if completed != writes {
		t.Fatalf("completed %d/%d", completed, writes)
	}
	got, _ := store.Read(7, 1)
	if got[0] != writes {
		t.Errorf("final sector value = %d, want %d (order violated)", got[0], writes)
	}
}

func TestPollingModeHasNoIOhostInterrupts(t *testing.T) {
	r := newRig(t, 1, ModePolling)
	fMAC := ethernet.NewMAC(50)
	r.hyp.RegisterNetDevice(r.clientMAC, 2, fMAC, nil)
	inner := ethernet.Frame{Dst: r.extMAC, Src: fMAC, EtherType: ethernet.EtherTypePlain, Payload: []byte("x")}
	raw, _ := inner.Encode(0)
	for i := 0; i < 10; i++ {
		r.driver.SendNet(uint8(virtio.DeviceNet), 2, raw)
	}
	r.eng.Run()
	if irqs := r.hyp.Counters.Get("iohost_irqs"); irqs != 0 {
		t.Errorf("polling mode took %d IOhost interrupts", irqs)
	}
}

func TestInterruptModeCountsIOhostInterrupts(t *testing.T) {
	r := newRig(t, 1, ModeInterrupt)
	fMAC := ethernet.NewMAC(50)
	r.hyp.RegisterNetDevice(r.clientMAC, 2, fMAC, nil)
	inner := ethernet.Frame{Dst: r.extMAC, Src: fMAC, EtherType: ethernet.EtherTypePlain, Payload: []byte("x")}
	raw, _ := inner.Encode(0)
	r.driver.SendNet(uint8(virtio.DeviceNet), 2, raw)
	r.eng.Run()
	// At least rx + tx interrupts.
	if irqs := r.hyp.Counters.Get("iohost_irqs"); irqs < 2 {
		t.Errorf("iohost_irqs = %d, want >= 2", irqs)
	}
	if got := len(r.extVF.Poll(0)); got != 1 {
		t.Errorf("frame not forwarded in interrupt mode: %d", got)
	}
}

func TestUnknownBlockDeviceGetsUnsupp(t *testing.T) {
	r := newRig(t, 1, ModePolling)
	req := virtio.BlkHdr{Type: virtio.BlkOut, Sector: 0}.Encode(nil)
	req = append(req, make([]byte, 512)...)
	var status byte = 0xFF
	r.driver.SendBlk(uint8(virtio.DeviceBlk), 9, req, func(resp []byte, err error) {
		if err == nil && len(resp) == 1 {
			status = resp[0]
		}
	})
	r.eng.Run()
	if status != virtio.BlkUnsupp {
		t.Errorf("status = %d, want BlkUnsupp", status)
	}
}

func TestWorkersShareLoad(t *testing.T) {
	r := newRig(t, 4, ModePolling)
	store := blockdev.NewStore(r.p.SectorSize, 100000)
	dev := blockdev.NewDevice(r.eng, store, 100, 16)
	// Many independent devices so steering can spread.
	for id := uint16(1); id <= 8; id++ {
		r.hyp.RegisterBlkDevice(r.clientMAC, id, dev, nil)
	}
	done := 0
	for i := 0; i < 200; i++ {
		req := virtio.BlkHdr{Type: virtio.BlkOut, Sector: uint64(i * 8)}.Encode(nil)
		req = append(req, make([]byte, 512)...)
		r.driver.SendBlk(uint8(virtio.DeviceBlk), uint16(1+i%8), req, func(resp []byte, err error) {
			if err != nil {
				t.Errorf("req: %v", err)
			}
			done++
		})
	}
	r.eng.Run()
	if done != 200 {
		t.Fatalf("done = %d", done)
	}
	busyWorkers := 0
	for _, w := range r.hyp.Workers() {
		if w.Processed > 0 {
			busyWorkers++
		}
	}
	if busyWorkers < 2 {
		t.Errorf("only %d workers processed anything", busyWorkers)
	}
}

func TestNewRequiresSidecores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New without sidecores did not panic")
		}
	}()
	p := params.Default()
	New(sim.NewEngine(), Config{Params: &p})
}

func TestCopiedEdgeBytes(t *testing.T) {
	// 44-byte header shift against 512 sectors: head = 512-44 = 468,
	// tail = (44 + len) % 512.
	if got := copiedEdgeBytes(4096, 512); got != 468+44 {
		t.Errorf("copiedEdgeBytes(4096) = %d, want %d", got, 468+44)
	}
	if got := copiedEdgeBytes(0, 512); got != 0 {
		t.Errorf("empty write copies %d", got)
	}
	if got := copiedEdgeBytes(600, 512); got != 600 {
		t.Errorf("sub-2-sector write should copy entirely, got %d", got)
	}
}

func TestAnnounceAddressesFloodsFMACs(t *testing.T) {
	r := newRig(t, 1, ModePolling)
	r.hyp.RegisterNetDevice(r.clientMAC, 2, ethernet.NewMAC(50), nil)
	r.hyp.RegisterNetDevice(r.clientMAC, 4, ethernet.NewMAC(51), nil)
	r.hyp.AnnounceAddresses()
	r.eng.Run()
	// The external node receives one broadcast per registered F address.
	frames := r.extVF.Poll(0)
	if len(frames) != 2 {
		t.Fatalf("external node saw %d announcements, want 2", len(frames))
	}
	srcs := map[ethernet.MAC]bool{}
	for _, raw := range frames {
		f, err := ethernet.Decode(raw)
		if err != nil || f.Dst != ethernet.Broadcast {
			t.Fatalf("announcement malformed: %v %v", f, err)
		}
		srcs[f.Src] = true
	}
	if !srcs[ethernet.NewMAC(50)] || !srcs[ethernet.NewMAC(51)] {
		t.Errorf("announcement sources wrong: %v", srcs)
	}
	if r.hyp.Counters.Get("announcements") != 2 {
		t.Errorf("announcements counter = %d", r.hyp.Counters.Get("announcements"))
	}
}

func TestFailedIOhostServesNothing(t *testing.T) {
	r := newRig(t, 1, ModePolling)
	fMAC := ethernet.NewMAC(50)
	r.hyp.RegisterNetDevice(r.clientMAC, 2, fMAC, nil)
	r.hyp.Fail()
	inner := ethernet.Frame{Dst: r.extMAC, Src: fMAC, EtherType: ethernet.EtherTypePlain, Payload: []byte("dead")}
	raw, _ := inner.Encode(0)
	r.driver.SendNet(uint8(virtio.DeviceNet), 2, raw)
	r.extVF.SendFrame(ethernet.Frame{Dst: fMAC, EtherType: ethernet.EtherTypePlain, Payload: []byte("in")})
	r.eng.Run()
	if got := len(r.extVF.Poll(0)); got != 0 {
		t.Errorf("crashed IOhost forwarded %d frames", got)
	}
	if !r.hyp.Failed() {
		t.Error("Failed() = false")
	}
	// Announcements from a dead host must not go out either.
	r.hyp.AnnounceAddresses()
	r.eng.Run()
	if got := len(r.extVF.Poll(0)); got != 0 {
		t.Errorf("crashed IOhost announced %d frames", got)
	}
}

// TestStallWorkersDefersService: during an injected stall every sidecore is
// pinned, so a request sent mid-stall is not served until the stall window
// ends; service resumes afterwards with no traffic lost.
func TestStallWorkersDefersService(t *testing.T) {
	r := newRig(t, 2, ModePolling)
	fMAC := ethernet.NewMAC(50)
	r.hyp.RegisterNetDevice(r.clientMAC, 2, fMAC, nil)
	inner := ethernet.Frame{Dst: r.extMAC, Src: fMAC, EtherType: ethernet.EtherTypePlain, Payload: []byte("after the stall")}
	raw, _ := inner.Encode(0)

	const stall = 2 * sim.Millisecond
	r.eng.At(0, func() {
		r.hyp.StallWorkers(stall)
		if !r.hyp.Stalled() {
			t.Error("Stalled() false immediately after StallWorkers")
		}
	})
	r.eng.At(10, func() { r.driver.SendNet(uint8(virtio.DeviceNet), 2, raw) })

	// Just before the stall ends nothing has been forwarded.
	r.eng.At(stall-1, func() {
		if got := len(r.extVF.Poll(0)); got != 0 {
			t.Errorf("stalled IOhost forwarded %d frames", got)
		}
	})
	r.eng.Run()

	if r.hyp.Stalled() {
		t.Error("Stalled() true after the window ended")
	}
	if got := len(r.extVF.Poll(0)); got != 1 {
		t.Errorf("external node got %d frames after stall, want 1", got)
	}
	if r.hyp.Counters.Get("stalls") != 1 {
		t.Errorf("stalls counter = %d, want 1", r.hyp.Counters.Get("stalls"))
	}
}

// TestStallWindowsExtendNotStack: overlapping stalls merge into one window
// ending at the farthest deadline.
func TestStallWindowsExtendNotStack(t *testing.T) {
	r := newRig(t, 1, ModePolling)
	r.eng.At(0, func() { r.hyp.StallWorkers(100) })
	r.eng.At(50, func() { r.hyp.StallWorkers(100) })
	r.eng.At(120, func() {
		if !r.hyp.Stalled() {
			t.Error("second stall did not extend the window")
		}
	})
	r.eng.At(151, func() {
		if r.hyp.Stalled() {
			t.Error("stall window outlived the farthest deadline")
		}
	})
	r.eng.Run()
}

// TestMultiQueueStableWorkerAffinity: a 4-queue device on 3 sidecores pins
// queues to workers round-robin at registration, the pinning is readable
// through the accessors, and the per-queue in-flight tables balance to zero
// once traffic drains.
func TestMultiQueueStableWorkerAffinity(t *testing.T) {
	r := newRig(t, 3, ModePolling)
	store := blockdev.NewStore(r.p.SectorSize, 10000)
	dev := blockdev.NewDevice(r.eng, store, 100, 8)
	r.hyp.RegisterBlkDeviceMQ(r.clientMAC, 1, blockdev.NewScheduler(dev, r.p.SectorSize), nil, 4)

	if got := r.hyp.BlkQueues(r.clientMAC, 1); got != 4 {
		t.Fatalf("BlkQueues = %d, want 4", got)
	}
	for q := 0; q < 4; q++ {
		if got := r.hyp.BlkQueueWorker(r.clientMAC, 1, q); got != q%3 {
			t.Errorf("queue %d pinned to worker %d, want %d (registration-time round robin)", q, got, q%3)
		}
	}

	done := 0
	for i := 0; i < 64; i++ {
		req := virtio.BlkHdr{Type: virtio.BlkOut, Sector: uint64(i * 8)}.Encode(nil)
		req = append(req, make([]byte, 512)...)
		r.driver.SendBlkQ(uint8(virtio.DeviceBlk), 1, uint8(i%4), req, func(resp []byte, err error) {
			if err != nil {
				t.Errorf("req: %v", err)
			}
			done++
		})
	}
	r.eng.Run()
	if done != 64 {
		t.Fatalf("done = %d", done)
	}
	if left := r.hyp.BlkInFlight(); left != 0 {
		t.Errorf("BlkInFlight = %d after drain, want 0", left)
	}
	for q := 0; q < 4; q++ {
		if d := r.hyp.BlkQueueDepth(r.clientMAC, 1, q); d != 0 {
			t.Errorf("queue %d depth = %d after drain, want 0", q, d)
		}
	}
	// Queues 0..3 map onto workers {0,1,2,0}; all three must have executed.
	for i, w := range r.hyp.Workers() {
		if w.Processed == 0 {
			t.Errorf("worker %d processed nothing despite pinned queues", i)
		}
	}
}

// TestMultiQueuePerQueueFIFO: same-queue requests never migrate off their
// pinned worker, so per-queue submission order survives even though the
// device has parallel banks and other queues run concurrently. Each queue
// hammers its own sector; the final value must be that queue's last write.
func TestMultiQueuePerQueueFIFO(t *testing.T) {
	r := newRig(t, 3, ModePolling)
	store := blockdev.NewStore(r.p.SectorSize, 10000)
	dev := blockdev.NewDevice(r.eng, store, 100, 8)
	r.hyp.RegisterBlkDeviceMQ(r.clientMAC, 1, blockdev.NewScheduler(dev, r.p.SectorSize), nil, 4)

	const perQueue = 24
	completed := 0
	for i := 0; i < perQueue; i++ {
		for q := 0; q < 4; q++ {
			data := bytes.Repeat([]byte{byte(i + 1)}, 512)
			req := virtio.BlkHdr{Type: virtio.BlkOut, Sector: uint64(q)}.Encode(nil)
			req = append(req, data...)
			r.driver.SendBlkQ(uint8(virtio.DeviceBlk), 1, uint8(q), req, func(resp []byte, err error) {
				if err != nil {
					t.Errorf("write: %v", err)
				}
				completed++
			})
		}
	}
	r.eng.Run()
	if completed != 4*perQueue {
		t.Fatalf("completed %d/%d", completed, 4*perQueue)
	}
	for q := 0; q < 4; q++ {
		got, _ := store.Read(uint64(q), 1)
		if got[0] != perQueue {
			t.Errorf("queue %d final sector value = %d, want %d (per-queue order violated)",
				q, got[0], perQueue)
		}
	}
}
