package cpu

import (
	"testing"

	"vrio/internal/sim"
)

func TestCoreExecutesFIFO(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, "c0", 0)
	var order []int
	c.Exec(NoOwner, KindBusy, 10, func() { order = append(order, 1) })
	c.Exec(NoOwner, KindBusy, 10, func() { order = append(order, 2) })
	c.Exec(NoOwner, KindBusy, 10, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("finished at %v, want 30", e.Now())
	}
	if c.Executed != 3 {
		t.Errorf("Executed = %d", c.Executed)
	}
}

func TestCoreQueueingDelay(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, "c0", 0)
	var doneAt sim.Time
	c.Exec(NoOwner, KindBusy, 100, nil)
	e.At(10, func() {
		c.Exec(NoOwner, KindBusy, 5, func() { doneAt = e.Now() })
	})
	e.Run()
	// Second item waits until 100, runs 5 -> done at 105.
	if doneAt != 105 {
		t.Errorf("done at %v, want 105", doneAt)
	}
	if c.Waited != 1 {
		t.Errorf("Waited = %d, want 1", c.Waited)
	}
	if c.Wait.Max() != 90 {
		t.Errorf("max wait = %d, want 90", c.Wait.Max())
	}
}

func TestCoreContextSwitchCharging(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, "c0", 7)
	c.Exec(1, KindBusy, 10, nil)
	c.Exec(1, KindBusy, 10, nil) // same owner: no CS
	c.Exec(2, KindBusy, 10, nil) // owner change: +7
	var end sim.Time
	c.Exec(NoOwner, KindBusy, 10, func() { end = e.Now() }) // NoOwner: no CS
	e.Run()
	if end != 47 {
		t.Errorf("end = %v, want 47 (one context switch)", end)
	}
	if cs := c.Accounted(KindCS); cs != 7 {
		t.Errorf("KindCS = %v, want 7", cs)
	}
}

func TestCoreAccountingByKind(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, "c0", 0)
	c.Exec(NoOwner, KindBusy, 10, nil)
	c.Exec(NoOwner, KindIRQ, 20, nil)
	c.Exec(NoOwner, KindExit, 30, nil)
	e.Run()
	if c.Accounted(KindBusy) != 10 || c.Accounted(KindIRQ) != 20 || c.Accounted(KindExit) != 30 {
		t.Errorf("accounting: busy=%v irq=%v exit=%v",
			c.Accounted(KindBusy), c.Accounted(KindIRQ), c.Accounted(KindExit))
	}
	if c.BusyTime() != 60 {
		t.Errorf("BusyTime = %v, want 60", c.BusyTime())
	}
}

func TestCoreIdleVsPollAccounting(t *testing.T) {
	e := sim.NewEngine()
	normal := New(e, "n", 0)
	poller := New(e, "p", 0)
	poller.Polling = true
	e.At(100, func() {
		normal.Exec(NoOwner, KindBusy, 10, nil)
		poller.Exec(NoOwner, KindBusy, 10, nil)
	})
	e.Run()
	if normal.IdleTime() != 100 {
		t.Errorf("normal idle = %v, want 100", normal.IdleTime())
	}
	if normal.Accounted(KindPoll) != 0 {
		t.Error("non-polling core accrued poll time")
	}
	if poller.Accounted(KindPoll) != 100 {
		t.Errorf("poller poll = %v, want 100", poller.Accounted(KindPoll))
	}
	if poller.IdleTime() != 0 {
		t.Errorf("poller idle = %v, want 0", poller.IdleTime())
	}
}

func TestCoreUtilization(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, "c0", 0)
	c.Exec(NoOwner, KindBusy, 50, nil)
	e.At(100, func() {})
	e.Run()
	if u := c.Utilization(); u != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", u)
	}
}

func TestCoreWaitFraction(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, "c0", 0)
	c.Exec(NoOwner, KindBusy, 10, nil)
	c.Exec(NoOwner, KindBusy, 10, nil) // waits
	c.Exec(NoOwner, KindBusy, 10, nil) // waits
	e.Run()
	e.At(e.Now()+100, func() { c.Exec(NoOwner, KindBusy, 10, nil) }) // no wait
	e.Run()
	if wf := c.WaitFraction(); wf != 0.5 {
		t.Errorf("WaitFraction = %v, want 0.5", wf)
	}
}

func TestCoreNegativeDurationPanics(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, "c0", 0)
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	c.Exec(NoOwner, KindBusy, -1, nil)
}

func TestSamplerWindows(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, "c0", 0)
	s := NewSampler(e, c, 100)
	// Busy exactly during the second window.
	e.At(100, func() { c.Exec(NoOwner, KindBusy, 100, nil) })
	e.RunUntil(300)
	s.Stop()
	if s.Series.Len() < 3 {
		t.Fatalf("samples = %d, want >= 3", s.Series.Len())
	}
	if v := s.Series.V[0]; v != 0 {
		t.Errorf("window 1 utilization = %v, want 0", v)
	}
	if v := s.Series.V[1]; v != 1 {
		t.Errorf("window 2 utilization = %v, want 1", v)
	}
	if v := s.Series.V[2]; v != 0 {
		t.Errorf("window 3 utilization = %v, want 0", v)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{KindBusy: "busy", KindIRQ: "irq", KindExit: "exit", KindCS: "cs", KindPoll: "poll"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown kind misprinted")
	}
}

// A saturated core's queue should grow and wait times stretch — the Elvis
// bottleneck scenario of §1.
func TestCoreSaturationBehaviour(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, "side", 0)
	// Offered load: one 10ns item every 5ns => 2x overload.
	for i := 0; i < 100; i++ {
		at := sim.Time(i * 5)
		e.At(at, func() { c.Exec(NoOwner, KindBusy, 10, nil) })
	}
	e.Run()
	if e.Now() != 100*10 {
		t.Errorf("drained at %v, want 1000 (fully serialized)", e.Now())
	}
	if c.WaitFraction() < 0.9 {
		t.Errorf("WaitFraction = %v, want near 1 under overload", c.WaitFraction())
	}
}

func TestCoreEnergyAccounting(t *testing.T) {
	e := sim.NewEngine()
	spin := New(e, "spin", 0)
	spin.Polling = true
	halt := New(e, "halt", 0)
	// Both busy 25% of a 100ns window.
	spin.Exec(NoOwner, KindBusy, 25, nil)
	halt.Exec(NoOwner, KindBusy, 25, nil)
	e.At(100, func() {})
	e.Run()
	// Spinning poller: 25 busy + 75 poll at full power.
	if got := spin.Energy(1.0, 1.0, 0.05); got != sim.Time(100).Seconds() {
		t.Errorf("spin energy = %v, want one full core", got)
	}
	// mwait-class poller: 25 + 0.3*75 = 47.5 ns of full-power burn.
	wantMwait := (25 + 0.3*75) * 1e-9
	if got := spin.Energy(1.0, 0.3, 0.05); got < wantMwait*0.999 || got > wantMwait*1.001 {
		t.Errorf("mwait energy = %v, want %v", got, wantMwait)
	}
	// Halted core: 25 busy + 75 idle at 5%.
	want := (25 + 0.05*75) * 1e-9
	if got := halt.Energy(1.0, 1.0, 0.05); got < want*0.999 || got > want*1.001 {
		t.Errorf("halted energy = %v, want %v", got, want)
	}
}
