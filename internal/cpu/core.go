// Package cpu models processor cores: FIFO execution of timed work items,
// context-switch penalties, and busy/poll/idle accounting. Sidecores are
// ordinary cores whose idle time is charged to polling (the sidecore
// drawback of §1: "100% of the sidecore's cycles are consumed").
package cpu

import (
	"fmt"

	"vrio/internal/sim"
	"vrio/internal/stats"
)

// Kind classifies core time for the utilization breakdowns of Figure 15.
type Kind int

// Work kinds.
const (
	// KindBusy is useful work (request processing, guest computation).
	KindBusy Kind = iota
	// KindIRQ is interrupt handling.
	KindIRQ
	// KindExit is guest-exit handling (trap-and-emulate overhead).
	KindExit
	// KindCS is context-switch overhead.
	KindCS
	// KindPoll is wasted polling (an idle sidecore still burns cycles).
	KindPoll
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBusy:
		return "busy"
	case KindIRQ:
		return "irq"
	case KindExit:
		return "exit"
	case KindCS:
		return "cs"
	case KindPoll:
		return "poll"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NoOwner marks work with no owning context (no context-switch charging).
const NoOwner = -1

// Core is one processor core. Work items run FIFO; a work item's callback
// fires when the item *finishes*. Not safe for concurrent use (the
// simulation is single-threaded).
type Core struct {
	eng  *sim.Engine
	name string

	// Polling marks this core as a dedicated poller: its idle time is
	// accounted as KindPoll (burned) rather than idle.
	Polling bool

	csCost sim.Time

	// queue is a head-indexed FIFO: qHead is the consumed prefix and the
	// backing array is reused once drained, so steady-state execution does
	// not allocate. cur/finish replace the per-item completion closure: only
	// one item runs at a time, so the prebound finish callback reads cur.
	queue   []work
	qHead   int
	cur     work
	finish  func()
	running bool

	acct      [numKinds]sim.Time
	idleSince sim.Time
	idleTotal sim.Time
	lastOwner int

	// OnIdle, if set, runs whenever the work queue drains (the core
	// transitions busy -> idle). Pollers use it to look for new ring work.
	OnIdle func()

	// Wait is the queueing-delay histogram (time from Exec to dispatch),
	// feeding Figure 8's contention measurement.
	Wait stats.Histogram
	// Executed counts completed work items; Waited counts items that found
	// the core busy on arrival.
	Executed uint64
	Waited   uint64
}

type work struct {
	d     sim.Time
	kind  Kind
	owner int
	enq   sim.Time
	fn    func()
}

// New returns an idle core.
func New(eng *sim.Engine, name string, csCost sim.Time) *Core {
	c := &Core{eng: eng, name: name, csCost: csCost, lastOwner: NoOwner}
	c.finish = func() {
		c.Executed++
		if c.cur.fn != nil {
			c.cur.fn()
		}
		c.runNext()
	}
	return c
}

// Name reports the core's name.
func (c *Core) Name() string { return c.name }

// QueueLen reports items waiting behind the current one.
func (c *Core) QueueLen() int { return len(c.queue) - c.qHead }

// Busy reports whether the core is executing.
func (c *Core) Busy() bool { return c.running }

// Exec schedules d nanoseconds of work of the given kind on behalf of
// owner; fn (optional) runs at completion. Work from a different owner than
// the previous item pays the context-switch cost first.
func (c *Core) Exec(owner int, kind Kind, d sim.Time, fn func()) {
	if d < 0 {
		panic("cpu: negative work duration")
	}
	if c.running {
		c.Waited++
	}
	c.queue = append(c.queue, work{d: d, kind: kind, owner: owner, enq: c.eng.Now(), fn: fn})
	if !c.running {
		c.accountIdleUpTo(c.eng.Now())
		c.running = true
		c.runNext()
	}
}

func (c *Core) runNext() {
	if c.qHead == len(c.queue) {
		c.queue = c.queue[:0]
		c.qHead = 0
		c.running = false
		c.idleSince = c.eng.Now()
		if c.OnIdle != nil {
			c.OnIdle()
		}
		return
	}
	w := c.queue[c.qHead]
	c.queue[c.qHead] = work{}
	c.qHead++
	c.Wait.Record(int64(c.eng.Now() - w.enq))

	total := w.d
	if w.owner != NoOwner && c.lastOwner != NoOwner && w.owner != c.lastOwner && c.csCost > 0 {
		total += c.csCost
		c.acct[KindCS] += c.csCost
	}
	if w.owner != NoOwner {
		c.lastOwner = w.owner
	}
	c.acct[w.kind] += w.d
	c.cur = w
	c.eng.After(total, c.finish)
}

func (c *Core) accountIdleUpTo(t sim.Time) {
	if idle := t - c.idleSince; idle > 0 {
		if c.Polling {
			c.acct[KindPoll] += idle
		} else {
			c.idleTotal += idle
		}
	}
	c.idleSince = t
}

// Accounted reports cumulative time of a kind. For KindPoll on a polling
// core this includes idle time up to now.
func (c *Core) Accounted(kind Kind) sim.Time {
	if kind == KindPoll && !c.running {
		c.accountIdleUpTo(c.eng.Now())
	}
	return c.acct[kind]
}

// BusyTime reports all non-idle, non-poll time (useful + overhead).
func (c *Core) BusyTime() sim.Time {
	return c.acct[KindBusy] + c.acct[KindIRQ] + c.acct[KindExit] + c.acct[KindCS]
}

// IdleTime reports true idle time (always 0 for a polling core).
func (c *Core) IdleTime() sim.Time {
	if !c.running {
		c.accountIdleUpTo(c.eng.Now())
	}
	return c.idleTotal
}

// Utilization reports BusyTime as a fraction of elapsed time since start.
func (c *Core) Utilization() float64 {
	now := c.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(c.BusyTime()) / float64(now)
}

// Energy reports relative energy consumed so far, in core-seconds of
// full-power operation: busy time at busyW, poll time at pollW (1.0 for a
// spinning poller, less under monitor/mwait), idle time at idleW.
func (c *Core) Energy(busyW, pollW, idleW float64) float64 {
	return busyW*c.BusyTime().Seconds() +
		pollW*c.Accounted(KindPoll).Seconds() +
		idleW*c.IdleTime().Seconds()
}

// WaitFraction reports the fraction of work items that queued behind other
// work — the "contention" series of Figure 8.
func (c *Core) WaitFraction() float64 {
	total := c.Executed + uint64(c.QueueLen())
	if c.running {
		total++
	}
	if total == 0 {
		return 0
	}
	return float64(c.Waited) / float64(total)
}

// Sampler periodically records a core's utilization into a stats.Series,
// producing the Figure 15 timelines. It reports utilization over each
// sample window (not cumulative).
type Sampler struct {
	Series stats.Series
	stop   func()
}

// NewSampler starts sampling the core's busy fraction every period.
func NewSampler(eng *sim.Engine, c *Core, period sim.Time) *Sampler {
	s := &Sampler{}
	lastBusy := sim.Time(0)
	lastT := eng.Now()
	s.stop = eng.Ticker(period, func() {
		now := eng.Now()
		busy := c.BusyTime()
		window := now - lastT
		if window > 0 {
			s.Series.Add(int64(now), float64(busy-lastBusy)/float64(window))
		}
		lastBusy, lastT = busy, now
	})
	return s
}

// Stop ends sampling.
func (s *Sampler) Stop() { s.stop() }
