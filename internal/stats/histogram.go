// Package stats provides the measurement primitives used across the vRIO
// reproduction: streaming moments, log-bucketed latency histograms with
// percentile queries (Table 4), named counters (Table 3), and time-series
// samplers (Figure 15).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-linear latency histogram, HDR-style: values are bucketed
// with bounded relative error (~1/32) so tail percentiles up to 100% stay
// accurate without storing every sample. Values are int64 (the reproduction
// records nanoseconds). The zero value is ready to use.
type Histogram struct {
	counts map[int]uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

const histSubBuckets = 32 // per power of two; relative error <= 1/32

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubBuckets {
		return int(v)
	}
	// Position of the highest set bit.
	exp := 63 - leadingZeros(uint64(v))
	// Top 5 bits below the leading bit select the sub-bucket.
	sub := int((uint64(v) >> (uint(exp) - 5)) & (histSubBuckets - 1))
	return (exp-4)*histSubBuckets + sub
}

// bucketLow returns the smallest value mapping to bucket i (inverse of
// bucketIndex, used to report percentile values).
func bucketLow(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	exp := i/histSubBuckets + 4
	sub := i % histSubBuckets
	return (1 << uint(exp)) | (int64(sub) << uint(exp-5))
}

func leadingZeros(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make(map[int]uint64)
		h.min = v
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Percentiles reports the values at several percentiles in one call —
// the p50/p95/p99 row of a latency report.
func (h *Histogram) Percentiles(ps ...float64) []int64 {
	out := make([]int64, len(ps))
	for i, p := range ps {
		out[i] = h.Percentile(p)
	}
	return out
}

// Min reports the smallest observation, or 0 with none.
func (h *Histogram) Min() int64 { return h.min }

// Max reports the largest observation, or 0 with none.
func (h *Histogram) Max() int64 { return h.max }

// Percentile reports the value at percentile p in [0,100]. p=100 returns the
// exact maximum. With no observations it returns 0.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p >= 100 {
		return h.max
	}
	if p < 0 {
		p = 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	idxs := make([]int, 0, len(h.counts))
	for i := range h.counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var cum uint64
	for _, i := range idxs {
		cum += h.counts[i]
		if cum >= rank {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// CountAbove reports how many observations exceeded v — the SLO-burn query:
// v is the latency objective, the return value the number of violating
// requests. Buckets straddling v are charged entirely to the burn (a
// conservative overcount bounded by the histogram's ~1/32 relative error).
func (h *Histogram) CountAbove(v int64) uint64 {
	if h.total == 0 {
		return 0
	}
	if v >= h.max {
		return 0
	}
	cut := bucketIndex(v)
	var n uint64
	for i, c := range h.counts {
		if i > cut {
			n += c
		}
	}
	return n
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.counts = nil
	h.total = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// Merge folds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]uint64)
		h.min = other.min
		h.max = other.max
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p99=%d p999=%d max=%d",
		h.total, h.Mean(), h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.max)
}
