package stats

import (
	"math"
	"testing"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(v)
	}
	if m.N() != 8 {
		t.Errorf("N = %d", m.N())
	}
	if m.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", m.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(m.Variance()-32.0/7.0) > 1e-9 {
		t.Errorf("Variance = %v, want %v", m.Variance(), 32.0/7.0)
	}
}

func TestMeanEmpty(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.Variance() != 0 || m.Stddev() != 0 || m.RelStddev() != 0 {
		t.Error("empty Mean should report zeros")
	}
}

func TestMeanSingleObservation(t *testing.T) {
	var m Mean
	m.Add(10)
	if m.Variance() != 0 {
		t.Errorf("Variance with n=1 = %v, want 0", m.Variance())
	}
}

func TestMeanRelStddev(t *testing.T) {
	var m Mean
	m.Add(98)
	m.Add(102)
	if rs := m.RelStddev(); math.Abs(rs-math.Sqrt(8)/100) > 1e-9 {
		t.Errorf("RelStddev = %v", rs)
	}
	var z Mean
	z.Add(0)
	z.Add(0)
	if z.RelStddev() != 0 {
		t.Error("RelStddev with zero mean should be 0")
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Inc("exits", 3)
	c.Inc("exits", 2)
	c.Inc("irq", 1)
	if c.Get("exits") != 5 {
		t.Errorf("exits = %d, want 5", c.Get("exits"))
	}
	if c.Get("missing") != 0 {
		t.Error("missing counter should read 0")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "exits" || names[1] != "irq" {
		t.Errorf("Names = %v", names)
	}
	if s := c.String(); s != "exits=5 irq=1" {
		t.Errorf("String = %q", s)
	}
}

func TestCountersMergeAndReset(t *testing.T) {
	var a, b Counters
	a.Inc("x", 1)
	b.Inc("x", 2)
	b.Inc("y", 3)
	a.Merge(&b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Errorf("merged: %s", a.String())
	}
	a.Reset()
	if a.Get("x") != 0 || len(a.Names()) != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.MeanValue() != 0 || s.MaxValue() != 0 {
		t.Error("empty series should report zeros")
	}
	s.Add(0, 10)
	s.Add(1, 30)
	s.Add(2, 20)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.MeanValue() != 20 {
		t.Errorf("MeanValue = %v", s.MeanValue())
	}
	if s.MaxValue() != 30 {
		t.Errorf("MaxValue = %v", s.MaxValue())
	}
}
