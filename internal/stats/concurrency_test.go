package stats

import (
	"sync"
	"testing"
)

// TestCountersPerCellMergePattern is a -race regression test for the
// ownership discipline documented on Counters: each parallel simulation cell
// owns a private Counters (and Histogram), and results are merged only after
// the workers are joined. If someone "simplifies" the parallel runner to
// share one Counters across cells, the data race shows up here first.
func TestCountersPerCellMergePattern(t *testing.T) {
	const cells = 8
	const perCell = 10000

	cellCounters := make([]Counters, cells)
	cellHists := make([]Histogram, cells)
	var wg sync.WaitGroup
	for c := 0; c < cells; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each goroutine touches only its own cell's accumulators,
			// mirroring one single-threaded simulation cell.
			for i := 0; i < perCell; i++ {
				cellCounters[c].Inc("exits", 1)
				if i%2 == 0 {
					cellCounters[c].Inc("irq_injections", 2)
				}
				cellHists[c].Record(int64(c*perCell + i))
			}
		}(c)
	}
	wg.Wait()

	// Merge strictly after the join, from one goroutine.
	var total Counters
	var latency Histogram
	for c := 0; c < cells; c++ {
		total.Merge(&cellCounters[c])
		latency.Merge(&cellHists[c])
	}
	if got := total.Get("exits"); got != cells*perCell {
		t.Errorf("exits = %d, want %d", got, cells*perCell)
	}
	if got := total.Get("irq_injections"); got != cells*perCell {
		t.Errorf("irq_injections = %d, want %d", got, cells*perCell)
	}
	if got := latency.Count(); got != cells*perCell {
		t.Errorf("latency count = %d, want %d", got, cells*perCell)
	}
	if got := latency.Max(); got != cells*perCell-1 {
		t.Errorf("latency max = %d, want %d", got, cells*perCell-1)
	}
}
