package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean is a streaming mean/variance accumulator (Welford's algorithm).
// The zero value is ready to use.
type Mean struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (m *Mean) Add(v float64) {
	m.n++
	d := v - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (v - m.mean)
}

// N reports the number of observations.
func (m *Mean) N() uint64 { return m.n }

// Mean reports the arithmetic mean, or 0 with no observations.
func (m *Mean) Mean() float64 { return m.mean }

// Variance reports the sample variance, or 0 with fewer than 2 observations.
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Stddev reports the sample standard deviation.
func (m *Mean) Stddev() float64 { return math.Sqrt(m.Variance()) }

// RelStddev reports stddev/mean, or 0 when the mean is 0. The paper reports
// run-to-run relative stddev below 2% (5% for the baseline); the experiment
// harness asserts the same bound across seeds.
func (m *Mean) RelStddev() float64 {
	if m.mean == 0 {
		return 0
	}
	return math.Abs(m.Stddev() / m.mean)
}

// Counters is a set of named monotonically increasing counters, used for the
// Table 3 exit/interrupt accounting. The zero value is ready to use.
//
// Counters is NOT safe for concurrent use: Inc mutates a plain map with no
// locking. This is deliberate — counters sit on the simulation hot path, and
// each simulation cell is single-threaded. The parallel experiment runner
// (experiments.RunAllParallel) keeps this sound by giving every cell its own
// engine, testbed, and Counters; results are combined with Merge only after
// the worker goroutines have been joined. Never share one Counters between
// cells, and never call Inc or Merge from more than one goroutine at a time.
type Counters struct {
	m map[string]uint64
}

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta uint64) {
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	c.m[name] += delta
}

// Get reads the named counter (0 if never incremented).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge folds other's counters into c.
func (c *Counters) Merge(other *Counters) {
	for n, v := range other.m {
		c.Inc(n, v)
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() { c.m = nil }

// String renders "name=value" pairs sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for i, n := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c.m[n])
	}
	return b.String()
}

// Series is a sampled time series: (t, value) points, used for the Figure 15
// CPU-utilization timelines.
type Series struct {
	T []int64
	V []float64
}

// Add appends a point. Timestamps should be nondecreasing.
func (s *Series) Add(t int64, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.T) }

// MeanValue reports the mean of the sampled values, or 0 when empty.
func (s *Series) MeanValue() float64 {
	if len(s.V) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// MaxValue reports the maximum sampled value, or 0 when empty.
func (s *Series) MaxValue() float64 {
	if len(s.V) == 0 {
		return 0
	}
	max := s.V[0]
	for _, v := range s.V[1:] {
		if v > max {
			max = v
		}
	}
	return max
}
