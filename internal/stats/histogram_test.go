package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(12345)
	if h.Count() != 1 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 12345 || h.Max() != 12345 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if h.Mean() != 12345 {
		t.Errorf("Mean = %v", h.Mean())
	}
	for _, p := range []float64{0, 50, 99, 100} {
		v := h.Percentile(p)
		if v != 12345 {
			t.Errorf("Percentile(%v) = %d, want 12345", p, v)
		}
	}
}

func TestHistogramExactMaxAtP100(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 977)
	}
	if got := h.Percentile(100); got != 977000 {
		t.Errorf("P100 = %d, want exact max 977000", got)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	var h Histogram
	values := make([]int64, 0, 10000)
	// A spread of values across several orders of magnitude.
	for i := int64(0); i < 10000; i++ {
		v := (i * i) % 900001
		values = append(values, v)
		h.Record(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		want := values[int(math.Ceil(p/100*float64(len(values))))-1]
		got := h.Percentile(p)
		if want == 0 {
			if got != 0 {
				t.Errorf("P%v = %d, want 0", p, got)
			}
			continue
		}
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.05 {
			t.Errorf("P%v = %d, want ≈%d (rel err %.3f)", p, got, want, rel)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 {
		t.Errorf("Min = %d, want clamped 0", h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Errorf("merged Count = %d, want 200", a.Count())
	}
	if a.Min() != 0 || a.Max() != 1099 {
		t.Errorf("merged Min/Max = %d/%d", a.Min(), a.Max())
	}
	// Merging nil or empty is a no-op.
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Count() != 200 {
		t.Errorf("no-op merges changed Count to %d", a.Count())
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Record(7)
	b.Record(9)
	a.Merge(&b)
	if a.Count() != 2 || a.Min() != 7 || a.Max() != 9 {
		t.Errorf("merge into empty: n=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset did not clear histogram")
	}
}

// Property: bucketLow(bucketIndex(v)) <= v and relative error bounded.
func TestHistogramBucketRelativeError(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw)
		low := bucketLow(bucketIndex(v))
		if low > v {
			return false
		}
		if v >= histSubBuckets {
			// Bucket width <= v/32 so error bounded by ~6.25% of v.
			if float64(v-low) > float64(v)/16 {
				return false
			}
		} else if low != v {
			return false // exact below 32
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p.
func TestHistogramPercentileMonotone(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 5000; i++ {
		h.Record((i * 7919) % 123457)
	}
	prev := int64(-1)
	for p := 0.0; p <= 100.0; p += 0.5 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("Percentile not monotone: P%v=%d < %d", p, v, prev)
		}
		prev = v
	}
}

// Property: merging is equivalent to recording everything into one
// histogram — same count, sum, min, max, and every percentile. This is what
// lets the parallel runner split samples across cells without changing the
// reported tables.
func TestHistogramMergeEquivalence(t *testing.T) {
	var whole, a, b, c Histogram
	parts := []*Histogram{&a, &b, &c}
	for i := int64(0); i < 9000; i++ {
		v := (i * 104729) % 777001
		whole.Record(v)
		parts[i%3].Record(v)
	}
	var merged Histogram
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Mean() != whole.Mean() {
		t.Errorf("merged n=%d mean=%v, want n=%d mean=%v",
			merged.Count(), merged.Mean(), whole.Count(), whole.Mean())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Errorf("merged min/max = %d/%d, want %d/%d",
			merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	for p := 0.0; p <= 100.0; p += 2.5 {
		if got, want := merged.Percentile(p), whole.Percentile(p); got != want {
			t.Errorf("P%v = %d after merge, want %d", p, got, want)
		}
	}
}

// Property: merge order does not matter.
func TestHistogramMergeCommutative(t *testing.T) {
	var a1, b1, a2, b2 Histogram
	for i := int64(0); i < 500; i++ {
		a1.Record(i * 3)
		a2.Record(i * 3)
		b1.Record(i*7 + 100000)
		b2.Record(i*7 + 100000)
	}
	a1.Merge(&b1) // a then b
	b2.Merge(&a2) // b then a
	if a1.Count() != b2.Count() || a1.Min() != b2.Min() || a1.Max() != b2.Max() {
		t.Fatalf("merge order changed n/min/max: %d/%d/%d vs %d/%d/%d",
			a1.Count(), a1.Min(), a1.Max(), b2.Count(), b2.Min(), b2.Max())
	}
	for _, p := range []float64{0, 25, 50, 90, 99, 100} {
		if a1.Percentile(p) != b2.Percentile(p) {
			t.Errorf("P%v differs by merge order: %d vs %d", p, a1.Percentile(p), b2.Percentile(p))
		}
	}
}

// Out-of-range percentile arguments clamp rather than panic: p<0 behaves
// like p=0 (the minimum's bucket) and p>100 returns the exact max.
func TestHistogramPercentileClamped(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if got, want := h.Percentile(-5), h.Percentile(0); got != want {
		t.Errorf("Percentile(-5) = %d, want Percentile(0) = %d", got, want)
	}
	if got := h.Percentile(250); got != h.Max() {
		t.Errorf("Percentile(250) = %d, want max %d", got, h.Max())
	}
	var empty Histogram
	if empty.Percentile(-1) != 0 || empty.Percentile(101) != 0 {
		t.Error("empty histogram should return 0 for any percentile")
	}
}

// Percentiles is Percentile applied element-wise, in argument order.
func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	got := h.Percentiles(50, 95, 99)
	want := []int64{h.Percentile(50), h.Percentile(95), h.Percentile(99)}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("Percentiles[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if n := len((&Histogram{}).Percentiles()); n != 0 {
		t.Errorf("empty argument list produced %d values", n)
	}
}

// Values spanning up to 2^62 must keep bounded relative error — the bucket
// math shifts by (exp-5) and has to stay correct at the top of the range.
func TestHistogramHugeValues(t *testing.T) {
	var h Histogram
	huge := int64(1) << 62
	h.Record(huge)
	h.Record(huge + huge/64)
	h.Record(1)
	if h.Max() != huge+huge/64 {
		t.Errorf("Max = %d", h.Max())
	}
	if got := h.Percentile(100); got != huge+huge/64 {
		t.Errorf("P100 = %d, want exact max", got)
	}
	p50 := h.Percentile(50)
	if p50 < huge-huge/16 || p50 > huge {
		t.Errorf("P50 = %d, want within 1/16 below %d", p50, huge)
	}
}

// Reset must return the histogram to a state indistinguishable from the zero
// value, including after re-recording.
func TestHistogramResetThenReuse(t *testing.T) {
	var h, fresh Histogram
	for i := int64(0); i < 100; i++ {
		h.Record(i * 1000)
	}
	h.Reset()
	h.Record(42)
	fresh.Record(42)
	if h.Count() != fresh.Count() || h.Min() != fresh.Min() || h.Max() != fresh.Max() ||
		h.Mean() != fresh.Mean() || h.Percentile(50) != fresh.Percentile(50) {
		t.Errorf("reused after Reset: %v, want %v", h.String(), fresh.String())
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Record(100)
	if s := h.String(); s == "" {
		t.Error("String() empty")
	}
}
