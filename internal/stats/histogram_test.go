package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(12345)
	if h.Count() != 1 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 12345 || h.Max() != 12345 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if h.Mean() != 12345 {
		t.Errorf("Mean = %v", h.Mean())
	}
	for _, p := range []float64{0, 50, 99, 100} {
		v := h.Percentile(p)
		if v != 12345 {
			t.Errorf("Percentile(%v) = %d, want 12345", p, v)
		}
	}
}

func TestHistogramExactMaxAtP100(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 977)
	}
	if got := h.Percentile(100); got != 977000 {
		t.Errorf("P100 = %d, want exact max 977000", got)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	var h Histogram
	values := make([]int64, 0, 10000)
	// A spread of values across several orders of magnitude.
	for i := int64(0); i < 10000; i++ {
		v := (i * i) % 900001
		values = append(values, v)
		h.Record(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		want := values[int(math.Ceil(p/100*float64(len(values))))-1]
		got := h.Percentile(p)
		if want == 0 {
			if got != 0 {
				t.Errorf("P%v = %d, want 0", p, got)
			}
			continue
		}
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.05 {
			t.Errorf("P%v = %d, want ≈%d (rel err %.3f)", p, got, want, rel)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 {
		t.Errorf("Min = %d, want clamped 0", h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Errorf("merged Count = %d, want 200", a.Count())
	}
	if a.Min() != 0 || a.Max() != 1099 {
		t.Errorf("merged Min/Max = %d/%d", a.Min(), a.Max())
	}
	// Merging nil or empty is a no-op.
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Count() != 200 {
		t.Errorf("no-op merges changed Count to %d", a.Count())
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Record(7)
	b.Record(9)
	a.Merge(&b)
	if a.Count() != 2 || a.Min() != 7 || a.Max() != 9 {
		t.Errorf("merge into empty: n=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset did not clear histogram")
	}
}

// Property: bucketLow(bucketIndex(v)) <= v and relative error bounded.
func TestHistogramBucketRelativeError(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw)
		low := bucketLow(bucketIndex(v))
		if low > v {
			return false
		}
		if v >= histSubBuckets {
			// Bucket width <= v/32 so error bounded by ~6.25% of v.
			if float64(v-low) > float64(v)/16 {
				return false
			}
		} else if low != v {
			return false // exact below 32
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p.
func TestHistogramPercentileMonotone(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 5000; i++ {
		h.Record((i * 7919) % 123457)
	}
	prev := int64(-1)
	for p := 0.0; p <= 100.0; p += 0.5 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("Percentile not monotone: P%v=%d < %d", p, v, prev)
		}
		prev = v
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Record(100)
	if s := h.String(); s == "" {
		t.Error("String() empty")
	}
}
