package trace

import (
	"bytes"
	"strings"
	"testing"

	"vrio/internal/sim"
)

func TestFlightRecorderRingSemantics(t *testing.T) {
	f := NewFlightRecorder(4)
	if got := f.Entries(); got != nil {
		t.Fatalf("empty recorder Entries = %v, want nil", got)
	}
	for i := 0; i < 3; i++ {
		f.Record(sim.Time(i), "k", "n", uint64(i))
	}
	es := f.Entries()
	if len(es) != 3 || es[0].Arg != 0 || es[2].Arg != 2 {
		t.Fatalf("partial ring Entries = %v", es)
	}
	if f.Total() != 3 || f.Dropped() != 0 {
		t.Fatalf("partial ring Total=%d Dropped=%d, want 3, 0", f.Total(), f.Dropped())
	}
	// Overflow: 7 total records into capacity 4 keeps the last 4, in order.
	for i := 3; i < 7; i++ {
		f.Record(sim.Time(i), "k", "n", uint64(i))
	}
	es = f.Entries()
	if len(es) != 4 {
		t.Fatalf("full ring holds %d entries, want 4", len(es))
	}
	for i, e := range es {
		if want := uint64(i + 3); e.Arg != want {
			t.Errorf("entry %d Arg = %d, want %d (oldest-first after wrap)", i, e.Arg, want)
		}
	}
	if f.Total() != 7 || f.Dropped() != 3 {
		t.Errorf("Total=%d Dropped=%d, want 7, 3", f.Total(), f.Dropped())
	}
}

func TestFlightRecorderZeroAllocWhenFull(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 8; i++ {
		f.Record(sim.Time(i), "k", "n", 0)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		f.Record(1, "k", "n", 0)
	})
	if allocs != 0 {
		t.Errorf("Record on a full ring allocates %.1f/op, want 0", allocs)
	}
}

func TestFlightRecorderNilIsDisabled(t *testing.T) {
	var f *FlightRecorder
	f.Record(1, "k", "n", 0) // must not panic
	if f.Total() != 0 || f.Dropped() != 0 || f.Entries() != nil {
		t.Error("nil recorder must report nothing")
	}
}

func TestNewFlightRecorderPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFlightRecorder(0) did not panic")
		}
	}()
	NewFlightRecorder(0)
}

func TestFlightWriteJSONL(t *testing.T) {
	f := NewFlightRecorder(2)
	f.Record(5, "switch_drop", "no_route", 1)
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t":5,"kind":"switch_drop","name":"no_route","arg":1}` + "\n"
	if buf.String() != want {
		t.Errorf("WriteJSONL = %q, want %q", buf.String(), want)
	}
}

func TestMergeDumpsOrdersByTimeShardTrigger(t *testing.T) {
	dumps := []FlightDump{
		{T: 9, Shard: 0, Trigger: "no_route_storm"},
		{T: 3, Shard: 2, Trigger: "hb_miss"},
		{T: 3, Shard: 1, Trigger: "dark_rack"},
		{T: 3, Shard: 1, Trigger: "hb_miss"},
	}
	got := MergeDumps(dumps)
	order := make([]string, len(got))
	for i, d := range got {
		order[i] = d.Trigger
	}
	want := []string{"dark_rack", "hb_miss", "hb_miss", "no_route_storm"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("merge order = %v, want %v", order, want)
		}
	}
	if &got[0] == &dumps[0] {
		t.Error("MergeDumps must not sort the caller's slice in place")
	}

	var buf bytes.Buffer
	if err := WriteDumpsJSONL(&buf, dumps); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("WriteDumpsJSONL wrote %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], `{"t":3,"shard":1,"trigger":"dark_rack","entries":[`) {
		t.Errorf("first dump line = %q", lines[0])
	}
}

func TestMergeAndAssembleFlow(t *testing.T) {
	e0, e1 := sim.NewEngine(), sim.NewEngine()
	t0, t1 := New(e0), New(e1)
	// Shard 0 records a hop at t=10, shard 1 one at t=5 and one at t=10:
	// the merged order is (start, shard, id).
	t0.Complete(CatFabric, "tor0-spine0", 1, 77, 10, 20)
	t1.Complete(CatFabric, "spine0-tor1", 1, 77, 5, 9)
	t1.Complete(CatWorker, "net-in", 1, 42, 10, 12)
	merged := Merge([]*Tracer{t0, t1})
	if len(merged) != 3 {
		t.Fatalf("merged %d spans, want 3", len(merged))
	}
	if merged[0].Shard != 1 || merged[1].Shard != 0 || merged[2].Shard != 1 {
		t.Errorf("merge order wrong: %+v", merged)
	}
	hops := AssembleFlow(merged, 77)
	if len(hops) != 2 {
		t.Fatalf("flow 77 has %d hops, want 2", len(hops))
	}
	if hops[0].Name != "spine0-tor1" || hops[1].Name != "tor0-spine0" {
		t.Errorf("flow hops out of order: %+v", hops)
	}
	if got := AssembleFlow(merged, 0); got != nil {
		t.Errorf("flow key 0 must assemble nothing, got %+v", got)
	}
}
