package trace

import (
	"bytes"
	"strings"
	"testing"

	"vrio/internal/sim"
)

func TestSpanLifecycle(t *testing.T) {
	e := sim.NewEngine()
	tr := New(e)
	root := tr.BeginArg(CatGuestRing, "blk", 0, 7)
	e.At(10, func() {
		child := tr.Begin(CatWire, "blk-req", root)
		e.At(25, func() { tr.End(child) })
	})
	e.At(40, func() { tr.End(root) })
	e.Run()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	r, c := spans[0], spans[1]
	if r.Start != 0 || r.End != 40 || r.Parent != 0 || r.Root != 1 || r.Arg != 7 {
		t.Errorf("root span = %+v", r)
	}
	if c.Start != 10 || c.End != 25 || c.Parent != 1 || c.Root != 1 {
		t.Errorf("child span = %+v", c)
	}
	if tr.OpenSpans() != 0 {
		t.Errorf("open spans = %d", tr.OpenSpans())
	}
}

func TestEndIsIdempotentAndGrandchildRoot(t *testing.T) {
	e := sim.NewEngine()
	tr := New(e)
	a := tr.Begin(CatGuestRing, "a", 0)
	b := tr.Begin(CatWorker, "b", a)
	c := tr.Begin(CatBlockdev, "c", b)
	e.At(5, func() { tr.End(c); tr.End(b); tr.End(a) })
	e.At(9, func() { tr.End(a) }) // second End must not move the timestamp
	e.Run()
	if got := tr.Spans()[0].End; got != 5 {
		t.Errorf("re-End moved timestamp to %d", got)
	}
	if got := tr.Spans()[2].Root; got != a {
		t.Errorf("grandchild root = %d, want %d", got, a)
	}
}

func TestFlowLinkTakeLookup(t *testing.T) {
	e := sim.NewEngine()
	tr := New(e)
	id := tr.Begin(CatWire, "x", 0)
	k := FlowKey{Kind: 1, A: 42, B: 7}
	tr.Link(k, id)
	if got := tr.Lookup(k); got != id {
		t.Errorf("Lookup = %d, want %d", got, id)
	}
	if got := tr.Take(k); got != id {
		t.Errorf("Take = %d, want %d", got, id)
	}
	if got := tr.Take(k); got != 0 {
		t.Errorf("second Take = %d, want 0", got)
	}
	// Relink overwrites (retransmission supersedes the earlier attempt).
	id2 := tr.Begin(CatWire, "y", 0)
	tr.Link(k, id)
	tr.Link(k, id2)
	if got := tr.Take(k); got != id2 {
		t.Errorf("relink Take = %d, want %d", got, id2)
	}
}

func TestBeginAtBackdatesStart(t *testing.T) {
	e := sim.NewEngine()
	tr := New(e)
	e.At(100, func() {
		id := tr.BeginAt(CatWorker, "w", 0, 0, 60)
		tr.End(id)
	})
	e.Run()
	s := tr.Spans()[0]
	if s.Start != 60 || s.End != 100 {
		t.Errorf("span = [%d, %d], want [60, 100]", s.Start, s.End)
	}
}

// TestDisabledTracerIsFree pins the zero-overhead contract: every operation
// on a nil tracer must be a no-op with zero allocations.
func TestDisabledTracerIsFree(t *testing.T) {
	var tr *Tracer
	k := FlowKey{Kind: 1, A: 2, B: 3}
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Fatal("nil tracer reports enabled")
		}
		id := tr.BeginArg(CatWorker, "x", 0, 1)
		tr.Link(k, id)
		tr.End(tr.Take(k))
		tr.End(tr.Lookup(k))
		tr.End(id)
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocates %.1f/op", allocs)
	}
	if tr.NumSpans() != 0 || tr.OpenSpans() != 0 || tr.Spans() != nil {
		t.Error("nil tracer recorded something")
	}
}

func buildSampleTrace() *Tracer {
	e := sim.NewEngine()
	tr := New(e)
	root := tr.BeginArg(CatGuestRing, "blk", 0, 1)
	e.At(2_000, func() {
		w := tr.Begin(CatWire, "blk-req", root)
		e.At(5_500, func() { tr.End(w) })
	})
	e.At(6_000, func() {
		wk := tr.Begin(CatWorker, "blk-req", root)
		e.At(8_000, func() { tr.End(wk) })
	})
	e.At(9_000, func() { tr.End(root) })
	tr.Begin(CatCompletion, "orphan", 0) // deliberately left open
	e.Run()
	return tr
}

func TestChromeExport(t *testing.T) {
	tr := buildSampleTrace()
	var a, b bytes.Buffer
	if err := tr.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Chrome export is not reproducible")
	}
	out := a.String()
	for _, want := range []string{
		`"traceEvents":[`,
		`"cat":"guest_ring"`, `"cat":"transport_wire"`, `"cat":"iohyp_worker"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Chrome export missing %s in:\n%s", want, out)
		}
	}
	// Wire span: ts 2µs, dur 3.5µs, rendered with integer-math decimals.
	if !strings.Contains(out, `"ts":2.000,"dur":3.500`) {
		t.Errorf("wire span ts/dur not rendered as expected:\n%s", out)
	}
	// The three request spans share the root's track id.
	if strings.Count(out, `"tid":1,`) != 3 {
		t.Errorf("expected 3 events on track 1:\n%s", out)
	}
	// The open span exports as a begin-only event.
	if !strings.Contains(out, `"ph":"B"`) {
		t.Errorf("open span not exported as B event:\n%s", out)
	}
}

func TestJSONLExport(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != tr.NumSpans() {
		t.Fatalf("jsonl lines = %d, spans = %d", len(lines), tr.NumSpans())
	}
	if !strings.Contains(lines[0], `"start":0,"end":9000`) {
		t.Errorf("root line = %s", lines[0])
	}
	if !strings.Contains(buf.String(), `"end":-1`) {
		t.Errorf("no open span in jsonl:\n%s", buf.String())
	}
}

func TestRegistrySnapshotAndValue(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nic", "tx_frames")
	c.Add(3)
	c.Add(4)
	backing := 2.5
	r.Gauge("link", "utilization", func() float64 { return backing })
	h := r.Histogram("iohyp", "wait_ns")
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 10)
	}
	if got := r.Value("nic", "tx_frames"); got != 7 {
		t.Errorf("counter value = %v", got)
	}
	if got := r.Value("link", "utilization"); got != 2.5 {
		t.Errorf("gauge value = %v", got)
	}
	if got := r.Value("iohyp", "wait_ns"); got < 900 {
		t.Errorf("histogram p99 value = %v", got)
	}
	if got := r.Value("no", "such"); got != 0 {
		t.Errorf("missing metric value = %v", got)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	// Sorted by full name: iohyp/wait_ns, link/utilization, nic/tx_frames.
	order := []string{"iohyp", "link", "nic"}
	for i, s := range snap {
		if s.Component != order[i] {
			t.Errorf("snapshot[%d] = %s, want component %s", i, s.Component, order[i])
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "b")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("a", "b", func() float64 { return 0 })
}

func TestTimeseriesSamplingViaTicker(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry()
	c := r.Counter("dev", "ops")
	ts := r.NewTimeseries()
	e.Ticker(100, func() { ts.Sample(e.Now()) })
	e.Ticker(40, func() { c.Add(1) })
	e.RunUntil(350)
	if len(ts.T) != 3 {
		t.Fatalf("samples = %d, want 3", len(ts.T))
	}
	if ts.T[0] != 100 || ts.T[2] != 300 {
		t.Errorf("sample times = %v", ts.T)
	}
	// At t=100 the 40ns ticker fired at 40, 80 => 2 ops; at 300, 7 ops.
	if ts.Rows[0][0] != 2 || ts.Rows[2][0] != 7 {
		t.Errorf("sample rows = %v", ts.Rows)
	}
	var a, b bytes.Buffer
	if err := ts.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := ts.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("timeseries export is not reproducible")
	}
	if !strings.Contains(a.String(), `{"t":100,"dev/ops":2}`) {
		t.Errorf("jsonl = %s", a.String())
	}
}
