// Package trace is the observability substrate of the vRIO reproduction: a
// sim-clock-native span tracer plus a per-component metrics registry. Both
// are deterministic by construction — timestamps come from the simulation
// engine, span ids are allocation-ordered, and every export walks its data
// in a fixed order — so two runs with the same seed produce byte-identical
// output.
//
// Zero overhead when disabled: a nil *Tracer is the disabled tracer. Every
// method nil-checks its receiver and returns immediately, which the
// compiler inlines down to a pointer test, so instrumented hot paths (the
// engine schedule path, the transport driver, the IOhyp workers) pay ~0 ns
// and 0 allocs with tracing off. BenchmarkTraceDisabled in internal/sim
// enforces this next to the engine benchmarks.
package trace

import "vrio/internal/sim"

// Clock supplies span timestamps. *sim.Engine satisfies it; trace depends
// on sim (never the reverse) so the engine hot path stays instrumentation
// free.
type Clock interface {
	Now() sim.Time
}

// Category labels the datapath stage a span measures. Categories are the
// Chrome-trace "cat" field; the four core ones below cover a paravirtual
// request end to end.
type Category string

// Datapath stages.
const (
	// CatGuestRing is guest-side submission occupancy: from the request
	// being posted (a virtio ring Add, or the vRIO transport driver's
	// send — its ring-equivalent submission point) until the guest reaps
	// the completion.
	CatGuestRing Category = "guest_ring"
	// CatWire is transport flight time: driver encode/send until the
	// endpoint side picks the reassembled message up.
	CatWire Category = "transport_wire"
	// CatWorker is IOhyp sidecore processing: worker dispatch through the
	// steered work item.
	CatWorker Category = "iohyp_worker"
	// CatCompletion is the return path: response leaving the IOhost until
	// the client driver delivers it.
	CatCompletion Category = "completion"
	// CatBlockdev is block backend service time on the IOhost.
	CatBlockdev Category = "blockdev"
	// CatFault marks injected fault events (frame loss, corruption, port
	// flaps, worker stalls) as zero-length spans, so a trace timeline shows
	// which requests a fault landed on.
	CatFault Category = "fault"
	// CatFabric is one fabric-cable hop (ToR uplink or spine downlink):
	// serialization start through modeled delivery on the far side. Hop
	// spans carry the destination MAC folded into Flow, so the hops of one
	// request correlate across shards in the merged export even though each
	// shard records into its own tracer.
	CatFabric Category = "fabric_hop"
)

// SpanID identifies a span within one Tracer. 0 is the null span: every
// operation accepts it and does nothing, so disabled-tracer call sites need
// no branching.
type SpanID uint32

// Span is one recorded interval. Spans with Parent 0 are roots; Root is the
// transitive root, which the Chrome export uses as the track (tid) so each
// request renders as one self-contained lane with correctly nested children.
type Span struct {
	Parent SpanID
	Root   SpanID
	Cat    Category
	Name   string
	Arg    uint64 // request/flow id, for correlating spans in the export
	// Flow is a fabric-global correlation key (0 = none): spans recorded by
	// different shards' tracers but belonging to one request carry the same
	// Flow — by convention a Key48-folded wire-visible MAC — so the merged
	// export can stitch a cross-rack request back together without any
	// shared state between shards.
	Flow  uint64
	Start sim.Time
	End   sim.Time // -1 while open
}

// FlowKey links spans across components that share no call path: the driver
// Links a span under a key derived from wire-visible ids (transport MAC +
// ReqID/OrigID), and the endpoint Looks it up on arrival — no wire-format
// change needed. Kind namespaces the id spaces (see transport's Flow*
// constants); A is typically a Key48-folded MAC, B a request id.
type FlowKey struct {
	Kind uint8
	A, B uint64
}

// Tracer records spans against a Clock. A nil Tracer is the disabled
// tracer. Not safe for concurrent use — each simulation cell owns its own,
// like everything else inside a cell.
type Tracer struct {
	clock Clock
	spans []Span
	flows map[FlowKey]SpanID
}

// New builds an enabled tracer reading timestamps from clock (normally the
// cell's *sim.Engine).
func New(clock Clock) *Tracer {
	return &Tracer{clock: clock, flows: make(map[FlowKey]SpanID)}
}

// Enabled reports whether spans are being recorded. The disabled path is a
// single inlined nil test — this is the guard hot paths wrap instrumentation
// blocks in.
func (t *Tracer) Enabled() bool { return t != nil }

// Begin opens a span. parent 0 starts a new root (a new track in the Chrome
// export). Returns 0 when disabled.
func (t *Tracer) Begin(cat Category, name string, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	return t.beginAt(cat, name, parent, 0, t.clock.Now())
}

// BeginArg is Begin with a correlation id recorded on the span.
func (t *Tracer) BeginArg(cat Category, name string, parent SpanID, arg uint64) SpanID {
	if t == nil {
		return 0
	}
	return t.beginAt(cat, name, parent, arg, t.clock.Now())
}

// BeginAt opens a span with an explicit (past) start time — used where the
// instrumentation point runs after the interval began, e.g. a worker
// completion callback that knows the service cost it just paid. start must
// not exceed the current time.
func (t *Tracer) BeginAt(cat Category, name string, parent SpanID, arg uint64, start sim.Time) SpanID {
	if t == nil {
		return 0
	}
	return t.beginAt(cat, name, parent, arg, start)
}

// BeginFlow is BeginArg with a fabric-global flow key recorded on the span
// (see Span.Flow). Within one tracer it behaves exactly like BeginArg.
func (t *Tracer) BeginFlow(cat Category, name string, parent SpanID, arg, flow uint64) SpanID {
	if t == nil {
		return 0
	}
	return t.BeginFlowAt(cat, name, parent, arg, flow, t.clock.Now())
}

// BeginFlowAt is BeginAt with a flow key — for flow-tagged spans whose
// interval began before the instrumentation point runs (worker completion
// callbacks). flow 0 records a plain span.
func (t *Tracer) BeginFlowAt(cat Category, name string, parent SpanID, arg, flow uint64, start sim.Time) SpanID {
	if t == nil {
		return 0
	}
	id := t.beginAt(cat, name, parent, arg, start)
	t.spans[id-1].Flow = flow
	return id
}

// Complete records an already-closed span in one call. The fabric wires use
// it: at send time the delivery instant is already determined (serialization
// plus fixed propagation), so the whole hop is known up front — end may lie
// in the simulated future. Completed spans are roots (no parent); they
// correlate through Flow, not through the span tree.
func (t *Tracer) Complete(cat Category, name string, arg, flow uint64, start, end sim.Time) {
	if t == nil {
		return
	}
	id := t.beginAt(cat, name, 0, arg, start)
	s := &t.spans[id-1]
	s.Flow = flow
	s.End = end
}

func (t *Tracer) beginAt(cat Category, name string, parent SpanID, arg uint64, start sim.Time) SpanID {
	id := SpanID(len(t.spans) + 1)
	root := id
	if parent != 0 {
		root = t.spans[parent-1].Root
	}
	t.spans = append(t.spans, Span{
		Parent: parent, Root: root, Cat: cat, Name: name, Arg: arg,
		Start: start, End: -1,
	})
	return id
}

// End closes a span at the current time. Ending the null span or an
// already-closed span is a no-op, so completion paths need not track
// whether tracing was on when the request started.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	s := &t.spans[id-1]
	if s.End < 0 {
		s.End = t.clock.Now()
	}
}

// Link parks a span under a flow key for a downstream component to pick up.
// Relinking a key overwrites it (a retransmission supersedes the attempt).
func (t *Tracer) Link(k FlowKey, id SpanID) {
	if t == nil || id == 0 {
		return
	}
	t.flows[k] = id
}

// Take removes and returns the span linked under k (0 if none).
func (t *Tracer) Take(k FlowKey) SpanID {
	if t == nil {
		return 0
	}
	id, ok := t.flows[k]
	if ok {
		delete(t.flows, k)
	}
	return id
}

// Lookup returns the span linked under k without consuming it.
func (t *Tracer) Lookup(k FlowKey) SpanID {
	if t == nil {
		return 0
	}
	return t.flows[k]
}

// Spans returns the recorded spans in begin order. Nil when disabled.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// NumSpans reports how many spans were recorded.
func (t *Tracer) NumSpans() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// OpenSpans reports spans begun but never ended — lost requests, or flows
// still in flight when the run stopped.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.spans {
		if t.spans[i].End < 0 {
			n++
		}
	}
	return n
}

// Key48 folds a 48-bit MAC address into a FlowKey word. ethernet.MAC's
// underlying type is [6]byte, so callers pass it directly.
func Key48(b [6]byte) uint64 {
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}
