package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"vrio/internal/sim"
)

// Merged cross-shard span export. A sharded fabric records spans into one
// Tracer per shard (each single-threaded on its shard's engine); Merge folds
// them into one stream ordered by (Start, Shard, ID) — the same discipline
// the shard coordinator uses for cross-shard messages — so the merged export
// is a pure function of the per-shard tracers and therefore byte-identical
// at any worker count. Parent/Root references inside a MergedSpan remain
// shard-local ids; cross-shard correlation rides on Span.Flow.

// MergedSpan is one span tagged with the shard that recorded it.
type MergedSpan struct {
	Shard int
	ID    SpanID
	Span
}

// Merge collects every span of the given tracers (indexed by shard; nil
// entries are skipped) into one deterministically ordered stream.
func Merge(tracers []*Tracer) []MergedSpan {
	n := 0
	for _, t := range tracers {
		n += t.NumSpans()
	}
	out := make([]MergedSpan, 0, n)
	for shard, t := range tracers {
		for i, s := range t.Spans() {
			out = append(out, MergedSpan{Shard: shard, ID: SpanID(i + 1), Span: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.ID < b.ID
	})
	return out
}

// WriteMergedJSONL emits the merged stream, one JSON object per span with
// the recording shard and shard-local ids. This is the machine-diffable
// artifact the fabric determinism guarantee is stated over.
func WriteMergedJSONL(w io.Writer, tracers []*Tracer) error {
	bw := bufio.NewWriter(w)
	for _, m := range Merge(tracers) {
		_, err := fmt.Fprintf(bw, `{"shard":%d,"id":%d,"parent":%d,"root":%d,"cat":%q,"name":%q,"arg":%d,"flow":%d,"start":%d,"end":%d}`+"\n",
			m.Shard, m.ID, m.Parent, m.Root, string(m.Cat), m.Name, m.Arg, m.Flow,
			int64(m.Start), int64(m.End))
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FlowHop is one hop of an assembled cross-shard flow, in time order.
type FlowHop struct {
	Shard int
	Cat   Category
	Name  string
	Start sim.Time
	End   sim.Time
}

// AssembleFlow extracts the time-ordered hops of one flow key from a merged
// stream: every span carrying the key, across all shards. This is the
// per-request attribution view — a cross-rack request's ToR uplink hop, its
// spine downlink hop, and any datapath spans tagged with the same key, as
// one sequence regardless of which shard recorded each piece.
func AssembleFlow(merged []MergedSpan, flow uint64) []FlowHop {
	var hops []FlowHop
	for _, m := range merged {
		if m.Flow != flow || flow == 0 {
			continue
		}
		hops = append(hops, FlowHop{
			Shard: m.Shard, Cat: m.Cat, Name: m.Name, Start: m.Start, End: m.End,
		})
	}
	return hops
}
