package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Export formats. Both are hand-serialized in span-begin order with integer
// timestamp math, so output is byte-identical across same-seed runs —
// encoding libraries and float formatting never get a say. Span names and
// categories are plain identifiers ([a-z0-9-_] by convention); they are
// emitted unescaped.

// WriteChrome emits the spans as a Chrome trace-event file ("traceEvents"
// array of "X" complete events) loadable in chrome://tracing or Perfetto.
// Timestamps convert from sim nanoseconds to the format's microseconds with
// three decimal places. Each root span becomes its own track (tid = root
// id), so a request's child spans nest correctly under it regardless of
// what other requests were in flight. Spans still open at export time are
// emitted as "B" (begin-only) events, which the viewers render as
// unfinished.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range t.Spans() {
		s := &t.spans[i]
		if i > 0 {
			bw.WriteString(",\n")
		}
		id := SpanID(i + 1)
		if s.End < 0 {
			fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":"B","ts":%s,"pid":1,"tid":%d,"args":{"id":%d,"parent":%d,"arg":%d,"flow":%d}}`,
				s.Name, string(s.Cat), microTS(int64(s.Start)), s.Root, id, s.Parent, s.Arg, s.Flow)
			continue
		}
		fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"args":{"id":%d,"parent":%d,"arg":%d,"flow":%d}}`,
			s.Name, string(s.Cat), microTS(int64(s.Start)), microTS(int64(s.End-s.Start)), s.Root, id, s.Parent, s.Arg, s.Flow)
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// microTS renders nanoseconds as decimal microseconds ("12.345") using
// integer math only.
func microTS(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// WriteJSONL emits one JSON object per span, in begin order, with raw
// sim-time nanosecond timestamps (end -1 for spans still open). This is the
// machine-diffable log the determinism guarantee is stated over.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range t.Spans() {
		s := &t.spans[i]
		_, err := fmt.Fprintf(bw, `{"id":%d,"parent":%d,"root":%d,"cat":%q,"name":%q,"arg":%d,"flow":%d,"start":%d,"end":%d}`+"\n",
			i+1, s.Parent, s.Root, string(s.Cat), s.Name, s.Arg, s.Flow, int64(s.Start), int64(s.End))
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
