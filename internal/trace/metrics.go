package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"vrio/internal/sim"
	"vrio/internal/stats"
)

// Registry is the per-component metrics registry: named counters, gauges,
// and histograms registered under "component/name". Components register at
// build time (cluster.Build wires one registry per testbed); experiments
// read values by name instead of reaching into component counter fields,
// and a Timeseries samples every metric at sim-time intervals via
// Engine.Ticker.
//
// Snapshots walk metrics in sorted full-name order, so sampled output is
// deterministic regardless of registration order. Like the rest of a
// simulation cell, a Registry is single-threaded by design.
type Registry struct {
	metrics []*Metric
	index   map[string]*Metric
}

// MetricKind discriminates the three metric flavors.
type MetricKind uint8

// Kinds.
const (
	KindCounter MetricKind = iota + 1
	KindGauge
	KindHistogram
)

// Metric is one registered metric. Counters own their value (Add); gauges
// read a component's existing state through a closure at snapshot time (so
// instrumenting a component costs nothing on its hot path); histograms wrap
// a stats.Histogram and report its p99 as the snapshot value.
type Metric struct {
	Component string
	Name      string
	Kind      MetricKind

	count uint64
	gauge func() float64
	hist  *stats.Histogram
}

// FullName is "component/name", the registry key and export column name.
func (m *Metric) FullName() string { return m.Component + "/" + m.Name }

// Add increments a counter metric.
func (m *Metric) Add(delta uint64) { m.count += delta }

// Value reads the metric's current snapshot value.
func (m *Metric) Value() float64 {
	switch m.Kind {
	case KindCounter:
		return float64(m.count)
	case KindGauge:
		return m.gauge()
	default:
		return float64(m.hist.Percentile(99))
	}
}

// Hist exposes the underlying histogram of a KindHistogram metric (nil for
// other kinds), for percentile queries beyond the snapshot p99.
func (m *Metric) Hist() *stats.Histogram { return m.hist }

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*Metric)}
}

func (r *Registry) add(m *Metric) *Metric {
	key := m.FullName()
	if _, dup := r.index[key]; dup {
		panic("trace: duplicate metric " + key)
	}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers a counter and returns the handle to Add through.
func (r *Registry) Counter(component, name string) *Metric {
	return r.add(&Metric{Component: component, Name: name, Kind: KindCounter})
}

// Gauge registers a gauge read through fn at snapshot time.
func (r *Registry) Gauge(component, name string, fn func() float64) *Metric {
	return r.add(&Metric{Component: component, Name: name, Kind: KindGauge, gauge: fn})
}

// PercentileGauge registers a gauge that reads one percentile of an
// existing histogram in microseconds at snapshot time — a tail-latency
// column for a timeseries without copying the histogram per sample.
func (r *Registry) PercentileGauge(component, name string, h *stats.Histogram, p float64) *Metric {
	return r.Gauge(component, name, func() float64 { return float64(h.Percentile(p)) / 1e3 })
}

// Histogram registers a fresh histogram and returns it for recording.
func (r *Registry) Histogram(component, name string) *stats.Histogram {
	h := &stats.Histogram{}
	r.add(&Metric{Component: component, Name: name, Kind: KindHistogram, hist: h})
	return h
}

// ObserveHistogram registers an existing component histogram (e.g. a
// sidecore's queueing-delay histogram) without copying it.
func (r *Registry) ObserveHistogram(component, name string, h *stats.Histogram) *Metric {
	return r.add(&Metric{Component: component, Name: name, Kind: KindHistogram, hist: h})
}

// Get returns the metric registered under component/name, or nil.
func (r *Registry) Get(component, name string) *Metric {
	return r.index[component+"/"+name]
}

// Value reads component/name's current value (0 if not registered, so
// experiments can read model-specific metrics uniformly).
func (r *Registry) Value(component, name string) float64 {
	m := r.index[component+"/"+name]
	if m == nil {
		return 0
	}
	return m.Value()
}

// Len reports the number of registered metrics.
func (r *Registry) Len() int { return len(r.metrics) }

// Sample is one metric's value at snapshot time.
type Sample struct {
	Component string
	Name      string
	Value     float64
}

// Snapshot reads every metric, sorted by full name.
func (r *Registry) Snapshot() []Sample {
	out := make([]Sample, 0, len(r.metrics))
	for _, m := range r.sorted() {
		out = append(out, Sample{Component: m.Component, Name: m.Name, Value: m.Value()})
	}
	return out
}

func (r *Registry) sorted() []*Metric {
	ms := append([]*Metric{}, r.metrics...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].FullName() < ms[j].FullName() })
	return ms
}

// Timeseries is a sim-time series of registry snapshots: one row of values
// (in Names order) per Sample call. Metrics registered after NewTimeseries
// are not picked up — register everything at build time.
type Timeseries struct {
	Names []string // sorted full names; the row schema
	T     []sim.Time
	Rows  [][]float64

	cols []*Metric
}

// NewTimeseries fixes the column schema from the current registrations.
func (r *Registry) NewTimeseries() *Timeseries {
	return r.NewTimeseriesFiltered(nil)
}

// NewTimeseriesFiltered fixes a schema over the subset of current
// registrations keep accepts (nil keeps everything). The datacenter rollup
// uses it to sample each rack's fabric-relevant metrics without dragging
// every per-VM counter into the fabric-wide snapshot stream.
func (r *Registry) NewTimeseriesFiltered(keep func(component, name string) bool) *Timeseries {
	ts := &Timeseries{}
	for _, m := range r.sorted() {
		if keep != nil && !keep(m.Component, m.Name) {
			continue
		}
		ts.cols = append(ts.cols, m)
		ts.Names = append(ts.Names, m.FullName())
	}
	return ts
}

// Sample appends one row at sim-time now.
func (ts *Timeseries) Sample(now sim.Time) {
	row := make([]float64, len(ts.cols))
	for i, m := range ts.cols {
		row[i] = m.Value()
	}
	ts.T = append(ts.T, now)
	ts.Rows = append(ts.Rows, row)
}

// WriteJSONL emits one JSON object per sample tick: the sim timestamp plus
// every metric keyed by full name, in schema order. Values are formatted
// with strconv (shortest round-trip form), deterministic for identical
// inputs.
func (ts *Timeseries) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, t := range ts.T {
		fmt.Fprintf(bw, `{"t":%d`, int64(t))
		for j, name := range ts.Names {
			fmt.Fprintf(bw, ",%q:%s", name, strconv.FormatFloat(ts.Rows[i][j], 'g', -1, 64))
		}
		if _, err := bw.WriteString("}\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
