package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"vrio/internal/sim"
)

// Flight recorder: a bounded ring of recent noteworthy events, always on.
// Full tracing costs memory proportional to run length, so fabric runs keep
// it off by default — the flight recorder is the cheap middle ground: fixed
// capacity, zero allocation per record after construction, one per shard
// (single-threaded like everything else in a cell). When an anomaly fires
// (dark rack, no-route storm, heartbeat miss), the rollup snapshots the
// ring, so post-mortems get the last-N events leading up to the anomaly
// without anyone having paid full-trace cost.

// FlightEntry is one recorded event. Kind groups entries ("switch_drop",
// "rack_event", "hb_miss"); Name refines it (the drop reason, the event
// kind); Arg carries a numeric detail (IOhost index, VM id, tally).
type FlightEntry struct {
	T    sim.Time
	Kind string
	Name string
	Arg  uint64
}

// FlightRecorder is a fixed-capacity ring of FlightEntry. A nil recorder is
// the disabled recorder: Record on nil is an inlined no-op, matching the
// nil-*Tracer convention.
type FlightRecorder struct {
	buf   []FlightEntry
	next  int    // index the next Record writes
	total uint64 // entries ever recorded
}

// NewFlightRecorder builds a recorder holding the last `capacity` entries.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		panic("trace: non-positive flight recorder capacity")
	}
	return &FlightRecorder{buf: make([]FlightEntry, 0, capacity)}
}

// Record appends an entry, evicting the oldest once the ring is full. No
// allocation after the ring fills; safe on a nil recorder.
func (f *FlightRecorder) Record(t sim.Time, kind, name string, arg uint64) {
	if f == nil {
		return
	}
	e := FlightEntry{T: t, Kind: kind, Name: name, Arg: arg}
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
	}
	f.next++
	if f.next == cap(f.buf) {
		f.next = 0
	}
	f.total++
}

// Total reports how many entries were ever recorded (retained or evicted).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.total
}

// Dropped reports how many entries the ring has evicted.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	return f.total - uint64(len(f.buf))
}

// Entries returns the retained entries oldest-first, as a fresh slice.
func (f *FlightRecorder) Entries() []FlightEntry {
	if f == nil || len(f.buf) == 0 {
		return nil
	}
	out := make([]FlightEntry, 0, len(f.buf))
	if len(f.buf) < cap(f.buf) {
		// Ring not yet full: buf is the whole history in record order.
		return append(out, f.buf...)
	}
	out = append(out, f.buf[f.next:]...)
	return append(out, f.buf[:f.next]...)
}

// WriteJSONL emits the retained entries oldest-first, one object per line.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range f.Entries() {
		_, err := fmt.Fprintf(bw, `{"t":%d,"kind":%q,"name":%q,"arg":%d}`+"\n",
			int64(e.T), e.Kind, e.Name, e.Arg)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FlightDump is one anomaly-triggered snapshot of a shard's ring: what
// tripped, when, and the entries leading up to it.
type FlightDump struct {
	T       sim.Time
	Shard   int
	Trigger string // "dark_rack", "no_route_storm", "hb_miss"
	Entries []FlightEntry
}

// MergeDumps orders anomaly dumps by (time, shard, trigger) — the fixed key
// every fabric-wide merge in this codebase uses, so the dump stream is
// byte-identical at any worker count.
func MergeDumps(dumps []FlightDump) []FlightDump {
	out := make([]FlightDump, len(dumps))
	copy(out, dumps)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Trigger < b.Trigger
	})
	return out
}

// WriteDumpsJSONL emits merged dumps, one object per line, entries inline.
func WriteDumpsJSONL(w io.Writer, dumps []FlightDump) error {
	bw := bufio.NewWriter(w)
	for _, d := range MergeDumps(dumps) {
		if _, err := fmt.Fprintf(bw, `{"t":%d,"shard":%d,"trigger":%q,"entries":[`,
			int64(d.T), d.Shard, d.Trigger); err != nil {
			return err
		}
		for i, e := range d.Entries {
			if i > 0 {
				bw.WriteByte(',')
			}
			if _, err := fmt.Fprintf(bw, `{"t":%d,"kind":%q,"name":%q,"arg":%d}`,
				int64(e.T), e.Kind, e.Name, e.Arg); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("]}\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
