package params

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("Default() does not validate: %v", err)
	}
}

func TestValidateRejectsNegativeDuration(t *testing.T) {
	p := Default()
	p.ExitCost = -1
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "ExitCost") {
		t.Errorf("negative ExitCost: err = %v", err)
	}
}

func TestValidateRejectsBadMTU(t *testing.T) {
	for _, mtu := range []int{0, 1499, 9001} {
		p := Default()
		p.MTU = mtu
		if err := p.Validate(); err == nil {
			t.Errorf("MTU %d accepted", mtu)
		}
	}
	for _, mtu := range []int{1500, 8100, 9000} {
		p := Default()
		p.MTU = mtu
		if err := p.Validate(); err != nil {
			t.Errorf("MTU %d rejected: %v", mtu, err)
		}
	}
}

func TestValidateRejectsBadSectorSize(t *testing.T) {
	for _, s := range []int{0, -512, 513, 1000} {
		p := Default()
		p.SectorSize = s
		if err := p.Validate(); err == nil {
			t.Errorf("SectorSize %d accepted", s)
		}
	}
}

func TestValidateRejectsNonPositive(t *testing.T) {
	cases := []func(*P){
		func(p *P) { p.MaxTSOMessage = 0 },
		func(p *P) { p.RxRingSize = 0 },
		func(p *P) { p.MaxRetransmits = 0 },
		func(p *P) { p.LinkBandwidth10G = 0 },
		func(p *P) { p.LinkBandwidth40G = -1 },
	}
	for i, mutate := range cases {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestUnmarshalOverrides(t *testing.T) {
	p := Default()
	if err := p.UnmarshalOverrides([]byte(`{"MTU": 1500, "RxRingSize": 512}`)); err != nil {
		t.Fatalf("valid overrides rejected: %v", err)
	}
	if p.MTU != 1500 || p.RxRingSize != 512 {
		t.Errorf("overrides not applied: MTU=%d RxRingSize=%d", p.MTU, p.RxRingSize)
	}
	// Untouched fields keep defaults.
	if p.MaxRetransmits != Default().MaxRetransmits {
		t.Error("override clobbered unrelated field")
	}
}

func TestUnmarshalOverridesRejectsUnknownField(t *testing.T) {
	p := Default()
	if err := p.UnmarshalOverrides([]byte(`{"NoSuchKnob": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestUnmarshalOverridesRejectsInvalidResult(t *testing.T) {
	p := Default()
	if err := p.UnmarshalOverrides([]byte(`{"MTU": 100}`)); err == nil {
		t.Error("override producing invalid params accepted")
	}
}

func TestUnmarshalOverridesRejectsGarbage(t *testing.T) {
	p := Default()
	if err := p.UnmarshalOverrides([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
