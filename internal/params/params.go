// Package params holds every calibrated constant of the vRIO reproduction in
// one place. The defaults are fitted so that the *shapes* of the paper's
// evaluation hold (who wins, by roughly what factor, where crossovers fall);
// they are not claimed to match the authors' absolute testbed numbers.
// DESIGN.md §5 lists the anchors the defaults were fitted against.
package params

import (
	"bytes"
	"encoding/json"
	"fmt"

	"vrio/internal/sim"
)

// P is a full parameter set. Durations are simulated nanoseconds, bandwidths
// bits per second, sizes bytes.
type P struct {
	// --- virtualization event costs (drive Table 3 / Figure 5) ---

	// ExitCost is one synchronous guest→host exit (trap), including the
	// indirect cache/TLB damage the paper attributes to exits.
	ExitCost sim.Time
	// InjectCost is host-side virtual interrupt injection into a guest.
	InjectCost sim.Time
	// GuestIRQCost is the in-guest interrupt handler (paid in all models:
	// Table 3's "guest intrpts" column).
	GuestIRQCost sim.Time
	// HostIRQCost is a physical interrupt handled by a host core (Elvis and
	// baseline pay 2 per request-response; vRIO w/o poll pays 4 at the
	// IOhost).
	HostIRQCost sim.Time
	// ELIDeliveryCost is exitless interrupt delivery straight to the guest
	// (SRIOV+ELI and vRIO VMhosts).
	ELIDeliveryCost sim.Time
	// ContextSwitchCost is one context switch on any core, voluntary or not.
	ContextSwitchCost sim.Time
	// VhostWakeupCost is the baseline-only scheduler wakeup of a vhost I/O
	// thread (the baseline runs I/O threads and VCPUs "as Linux pleases").
	VhostWakeupCost sim.Time

	// --- per-packet / per-request CPU costs ---

	// GuestNetStackCost is the guest network stack's per-packet cost
	// (driver + protocol processing), charged on the VM core.
	GuestNetStackCost sim.Time
	// SidecoreServiceCost is Elvis's per-request sidecore service time:
	// virtio ring handling plus backend dispatch to the physical NIC.
	SidecoreServiceCost sim.Time
	// WorkerServiceCost is the vRIO IOhost worker's per-request service
	// time: NIC ring handling, decapsulation, steering and backend dispatch.
	// Figure 10 reports vRIO spends ~9% more cycles per packet than the
	// optimum; that premium is this constant plus encapsulation costs.
	WorkerServiceCost sim.Time
	// HostBackendCost is the baseline/Elvis host-side backend per-request
	// cost (tap device + bridge forwarding at the local host).
	HostBackendCost sim.Time
	// EncapCost is the vRIO transport driver's per-message encapsulation /
	// decapsulation cost on the IOclient side (§4.3's "added processing
	// time incurred by the vRIO driver").
	EncapCost sim.Time
	// CopyPenaltyPerByte (ns/byte) is charged when zero-copy is impossible
	// (e.g. MTU 9000 violates the 17-fragment rule of §4.4, or block reads
	// at the IOhost).
	CopyPenaltyPerByte float64

	// --- per-byte datapath costs (ns per payload byte; these produce the
	// Figure 9/10 throughput ordering and the Figure 13b saturation) ---

	// GuestTxPerByte is the guest stack's data-touching cost, paid by
	// every model on transmit.
	GuestTxPerByte float64
	// EncapPerByte is the vRIO transport driver's extra per-byte cost
	// (segmentation bookkeeping, §4.3) — the +9% of Figure 10.
	EncapPerByte float64
	// SidecorePerByte is the Elvis sidecore's per-byte cost (zero-copy
	// shared-memory path, hence small).
	SidecorePerByte float64
	// WorkerPerByte is the vRIO worker's per-byte cost (reassembly +
	// forwarding); it sets the ~13 Gbps/sidecore saturation of Fig 13b.
	WorkerPerByte float64
	// HostPerByte is the baseline vhost per-byte cost including its copies.
	HostPerByte float64
	// BaselineKickBytes: the baseline guest kicks (exits) once per this
	// many streamed bytes — small messages kick per message, bulk streams
	// kick repeatedly, producing Figure 10's +40%.
	BaselineKickBytes int

	// --- polling ---

	// PollInterval is the sidecore/worker poll loop period: the mean delay
	// before a posted request is noticed by an idle poller.
	PollInterval sim.Time
	// IRQCoalesceDelay is the NIC interrupt-coalescing delay in interrupt
	// mode (baseline, Elvis physical NICs, vRIO w/o poll).
	IRQCoalesceDelay sim.Time

	// --- fabric ---

	// WireLatency is one cable's propagation + PHY latency.
	WireLatency sim.Time
	// SwitchLatency is the rack switch's store-and-forward latency.
	SwitchLatency sim.Time
	// NICProcessCost is NIC-side per-packet handling (DMA + descriptor).
	NICProcessCost sim.Time
	// LinkBandwidth10G / LinkBandwidth40G are the two cable classes in §3.
	LinkBandwidth10G float64
	LinkBandwidth40G float64
	// FabricLinkLatency is one ToR↔spine cable's propagation + PHY latency.
	// Inter-rack fiber runs tens of meters, so this is ~10x a rack cable.
	// It is also the sharded simulator's lookahead bound: every path between
	// racks crosses at least one such wire, so no cross-rack influence can
	// arrive sooner (see internal/sim's ShardGroup).
	FabricLinkLatency sim.Time
	// SpineLatency is a spine switch's store-and-forward latency.
	SpineLatency sim.Time

	// --- frames (§4.3/§4.4) ---

	// MTU is the vRIO dedicated-channel MTU. The paper chooses 8100 so a
	// 64 KiB message reassembles into at most 17 4-KiB pages (zero copy).
	MTU int
	// MaxTSOMessage is the largest chunk TSO can offload (64 KiB).
	MaxTSOMessage int
	// RxRingSize is the IOhost communication-channel receive ring. §4.5:
	// growing it from 512 to 4096 eliminated in-the-wild drops.
	RxRingSize int

	// --- transport reliability (§4.5) ---

	// RetransmitTimeout is the initial block-request timeout (10 ms),
	// doubled on each expiry.
	RetransmitTimeout sim.Time
	// MaxRetransmits is the give-up threshold, after which the transport
	// raises a device error.
	MaxRetransmits int

	// --- block devices ---

	// RamdiskLatency is one 4 KiB ramdisk access.
	RamdiskLatency sim.Time
	// SSDLatency is one 4 KiB SATA SSD access.
	SSDLatency sim.Time
	// SectorSize is the block-device sector alignment unit.
	SectorSize int
	// BlockServiceCost is the host/IOhost per-request block backend cost.
	BlockServiceCost sim.Time

	// --- guest OS scheduler (Figure 14's crossover) ---

	// TimesliceMin is the minimum run time before a wakeup may preempt the
	// running thread (CFS-like minimum granularity).
	TimesliceMin sim.Time

	// MigrationDowntime is the live-migration blackout: the stop-and-copy
	// window during which the migrating VM is frozen (§4.6).
	MigrationDowntime sim.Time

	// --- energy (§4.6 "Energy": monitor/mwait on sidecores) ---

	// MwaitEnabled makes idle sidecores wait in a low-power state instead
	// of spinning; wakeups then cost MwaitWakeLatency extra.
	MwaitEnabled bool
	// MwaitWakeLatency is the extra delay to leave the low-power state.
	MwaitWakeLatency sim.Time
	// PowerBusy/PowerPoll/PowerMwait/PowerIdle are relative core power
	// draws (busy = 1.0). Spinning polls burn full power; mwait waits burn
	// a fraction; halted idle cores almost nothing.
	PowerBusy  float64
	PowerPoll  float64
	PowerMwait float64
	PowerIdle  float64

	// --- OS jitter (drives Table 4's tail latencies) ---

	// JitterInterval is the mean gap between background interference
	// events on every core (timer ticks, kernel housekeeping).
	JitterInterval sim.Time
	// JitterMean is the mean duration of one interference event.
	JitterMean sim.Time
	// JitterSpikeProb is the probability an event is a long spike
	// (SMI-class), of duration JitterSpike.
	JitterSpikeProb float64
	// JitterSpike is the long-spike duration.
	JitterSpike sim.Time

	// --- workloads ---

	// GenServiceCost is the load generator's per-transaction CPU time.
	GenServiceCost sim.Time
	// NetperfRRProcessCost is the netperf server's per-transaction CPU cost
	// inside the VM (on top of the guest net stack).
	NetperfRRProcessCost sim.Time
	// StreamChunk is the application write size for netperf stream; the
	// guest stack aggregates 64 B sends into TSO chunks.
	StreamChunk int
	// StreamPerChunkCost is the VM-side CPU cost to produce one stream
	// chunk.
	StreamPerChunkCost sim.Time
	// ApacheRequestCost is the in-VM CPU time to serve one HTTP request.
	ApacheRequestCost sim.Time
	// MemcachedRequestCost is the in-VM CPU time for one KV transaction.
	MemcachedRequestCost sim.Time
	// WebserverFileCount / WebserverMeanFileSize parameterize the Filebench
	// Webserver personality (30 K files, 28 KB mean).
	WebserverFileCount    int
	WebserverMeanFileSize int
	// WebserverThreads is the per-VM webserver thread count (4).
	WebserverThreads int
	// WebserverOpCost is the guest CPU per 4 KiB chunk read (webserver
	// request processing amortized per chunk).
	WebserverOpCost sim.Time
	// WebserverOpenCost is the per-file open/close metadata cost.
	WebserverOpenCost sim.Time
	// WebserverLogWrite is the log-append size per served file.
	WebserverLogWrite int
	// FilebenchIOSize is Filebench's random I/O size (4 KiB).
	FilebenchIOSize int
	// FilebenchOpCost is the per-op guest CPU cost for Filebench
	// reader/writer threads.
	FilebenchOpCost sim.Time

	// --- interposition ---

	// AESPerByteCost is the sidecore CPU cost per encrypted byte
	// (AES-256 via standard kernel APIs, §5 "Load Imbalance").
	AESPerByteCost sim.Time
}

// Default returns the calibrated default parameter set. Callers own the
// returned value and may tweak fields before building a testbed.
func Default() P {
	return P{
		ExitCost:          1300 * sim.Nanosecond,
		InjectCost:        1000 * sim.Nanosecond,
		GuestIRQCost:      900 * sim.Nanosecond,
		HostIRQCost:       2600 * sim.Nanosecond,
		ELIDeliveryCost:   300 * sim.Nanosecond,
		ContextSwitchCost: 2200 * sim.Nanosecond,
		VhostWakeupCost:   1800 * sim.Nanosecond,

		GuestNetStackCost:   1800 * sim.Nanosecond,
		SidecoreServiceCost: 1400 * sim.Nanosecond,
		WorkerServiceCost:   2000 * sim.Nanosecond,
		HostBackendCost:     1600 * sim.Nanosecond,
		EncapCost:           1400 * sim.Nanosecond,
		CopyPenaltyPerByte:  0.35, // ≈2.9 GB/s memcpy-limited path

		GuestTxPerByte:    0.45,
		EncapPerByte:      0.95,
		SidecorePerByte:   0.30,
		WorkerPerByte:     0.50,
		HostPerByte:       2.20,
		BaselineKickBytes: 800,

		PollInterval:     250 * sim.Nanosecond,
		IRQCoalesceDelay: 4 * sim.Microsecond,

		WireLatency:      450 * sim.Nanosecond,
		SwitchLatency:    1200 * sim.Nanosecond,
		NICProcessCost:   600 * sim.Nanosecond,
		LinkBandwidth10G: 10e9,
		LinkBandwidth40G: 40e9,

		FabricLinkLatency: 4 * sim.Microsecond,
		SpineLatency:      1500 * sim.Nanosecond,

		MTU:           8100,
		MaxTSOMessage: 64 * 1024,
		RxRingSize:    4096,

		RetransmitTimeout: 10 * sim.Millisecond,
		MaxRetransmits:    6,

		RamdiskLatency:   2500 * sim.Nanosecond,
		SSDLatency:       90 * sim.Microsecond,
		SectorSize:       512,
		BlockServiceCost: 1200 * sim.Nanosecond,

		TimesliceMin: 1 * sim.Microsecond,

		MigrationDowntime: 60 * sim.Millisecond,

		MwaitWakeLatency: 4 * sim.Microsecond,
		PowerBusy:        1.0,
		PowerPoll:        1.0,
		PowerMwait:       0.30,
		PowerIdle:        0.05,

		JitterInterval:  1 * sim.Millisecond,
		JitterMean:      12 * sim.Microsecond,
		JitterSpikeProb: 0.004,
		JitterSpike:     220 * sim.Microsecond,

		GenServiceCost:        2500 * sim.Nanosecond,
		NetperfRRProcessCost:  6400 * sim.Nanosecond,
		StreamChunk:           64000,
		StreamPerChunkCost:    560 * sim.Microsecond,
		ApacheRequestCost:     120 * sim.Microsecond,
		MemcachedRequestCost:  25 * sim.Microsecond,
		WebserverFileCount:    30000,
		WebserverMeanFileSize: 28 * 1024,
		WebserverThreads:      4,
		WebserverOpCost:       40 * sim.Microsecond,
		WebserverOpenCost:     40 * sim.Microsecond,
		WebserverLogWrite:     512,
		FilebenchIOSize:       4096,
		FilebenchOpCost:       5500 * sim.Nanosecond,

		AESPerByteCost: 8, // ≈125 MB/s: AES-256 via the kernel API without AES-NI offload
	}
}

// Validate reports the first nonsensical field, or nil.
func (p *P) Validate() error {
	check := func(name string, v sim.Time) error {
		if v < 0 {
			return fmt.Errorf("params: %s is negative (%v)", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    sim.Time
	}{
		{"ExitCost", p.ExitCost},
		{"InjectCost", p.InjectCost},
		{"GuestIRQCost", p.GuestIRQCost},
		{"HostIRQCost", p.HostIRQCost},
		{"ELIDeliveryCost", p.ELIDeliveryCost},
		{"ContextSwitchCost", p.ContextSwitchCost},
		{"VhostWakeupCost", p.VhostWakeupCost},
		{"GuestNetStackCost", p.GuestNetStackCost},
		{"SidecoreServiceCost", p.SidecoreServiceCost},
		{"WorkerServiceCost", p.WorkerServiceCost},
		{"HostBackendCost", p.HostBackendCost},
		{"EncapCost", p.EncapCost},
		{"PollInterval", p.PollInterval},
		{"IRQCoalesceDelay", p.IRQCoalesceDelay},
		{"WireLatency", p.WireLatency},
		{"SwitchLatency", p.SwitchLatency},
		{"SpineLatency", p.SpineLatency},
		{"NICProcessCost", p.NICProcessCost},
		{"RetransmitTimeout", p.RetransmitTimeout},
		{"RamdiskLatency", p.RamdiskLatency},
		{"SSDLatency", p.SSDLatency},
		{"BlockServiceCost", p.BlockServiceCost},
		{"TimesliceMin", p.TimesliceMin},
	} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	if p.MTU < 1500 || p.MTU > 9000 {
		return fmt.Errorf("params: MTU %d outside [1500, 9000]", p.MTU)
	}
	if p.MaxTSOMessage <= 0 {
		return fmt.Errorf("params: MaxTSOMessage must be positive")
	}
	if p.RxRingSize <= 0 {
		return fmt.Errorf("params: RxRingSize must be positive")
	}
	if p.MaxRetransmits <= 0 {
		return fmt.Errorf("params: MaxRetransmits must be positive")
	}
	if p.GuestTxPerByte < 0 || p.EncapPerByte < 0 || p.SidecorePerByte < 0 ||
		p.WorkerPerByte < 0 || p.HostPerByte < 0 {
		return fmt.Errorf("params: per-byte costs must be non-negative")
	}
	if p.BaselineKickBytes <= 0 {
		return fmt.Errorf("params: BaselineKickBytes must be positive")
	}
	if p.SectorSize <= 0 || p.SectorSize&(p.SectorSize-1) != 0 {
		return fmt.Errorf("params: SectorSize %d must be a positive power of two", p.SectorSize)
	}
	if p.LinkBandwidth10G <= 0 || p.LinkBandwidth40G <= 0 {
		return fmt.Errorf("params: link bandwidths must be positive")
	}
	if p.FabricLinkLatency <= 0 {
		// Strictly positive, not merely non-negative: it is the conservative
		// lookahead bound, and a zero-latency fabric cannot be sharded.
		return fmt.Errorf("params: FabricLinkLatency must be positive (it bounds the shard lookahead)")
	}
	return nil
}

// UnmarshalOverrides applies a JSON object of field overrides on top of p,
// e.g. {"MTU": 1500, "RxRingSize": 512}. Unknown fields are rejected.
func (p *P) UnmarshalOverrides(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err != nil {
		return fmt.Errorf("params: bad overrides: %w", err)
	}
	return p.Validate()
}
