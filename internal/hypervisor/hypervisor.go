// Package hypervisor models the local-hypervisor mechanisms whose costs
// differentiate the I/O models (Table 3): synchronous guest exits,
// interrupt injection with its EOI exits, exitless (ELI) delivery, and host
// physical-interrupt handling. The per-VM counters it maintains are what
// the Table 3 experiment reports — counted, not assumed.
package hypervisor

import (
	"vrio/internal/cpu"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/stats"
)

// Counter names recorded by this package.
const (
	CounterExits      = "exits"
	CounterGuestIRQs  = "guest_irqs"
	CounterInjections = "irq_injections"
	CounterHostIRQs   = "host_irqs"
	CounterIOHostIRQs = "iohost_irqs"
)

// VM is one guest virtual machine: a VCPU pinned to (or sharing) a core.
type VM struct {
	eng *sim.Engine
	p   *params.P

	// ID identifies the VM; it is the context-switch owner on shared cores.
	ID int
	// Core is where the VCPU executes.
	Core *cpu.Core

	// Counters accumulates the Table 3 event counts for this VM.
	Counters stats.Counters
}

// NewVM builds a VM on the given core.
func NewVM(eng *sim.Engine, p *params.P, id int, core *cpu.Core) *VM {
	return &VM{eng: eng, p: p, ID: id, Core: core}
}

// Compute runs guest work (application + guest kernel time) on the VCPU.
func (vm *VM) Compute(d sim.Time, fn func()) {
	vm.Core.Exec(vm.ID, cpu.KindBusy, d, fn)
}

// Exit models one synchronous guest exit (trap): the paravirtual kick of
// the baseline model, or an EOI write without ELI. fn runs in host context
// after the world switch.
func (vm *VM) Exit(fn func()) {
	vm.ExitN(1, fn)
}

// ExitN charges n back-to-back exits as one work item (bulk transmits kick
// the baseline's virtqueue repeatedly).
func (vm *VM) ExitN(n int, fn func()) {
	if n < 1 {
		n = 1
	}
	vm.Counters.Inc(CounterExits, uint64(n))
	vm.Core.Exec(vm.ID, cpu.KindExit, sim.Time(n)*vm.p.ExitCost, fn)
}

// GuestIRQExitless delivers a virtual interrupt straight to the guest via
// ELI (§2 "optimum", Elvis, and vRIO all use this): no host involvement,
// no EOI exit.
func (vm *VM) GuestIRQExitless(fn func()) {
	vm.Counters.Inc(CounterGuestIRQs, 1)
	vm.Core.Exec(vm.ID, cpu.KindIRQ, vm.p.ELIDeliveryCost+vm.p.GuestIRQCost, fn)
}

// GuestIRQInjected delivers a virtual interrupt the baseline way: the host
// injects it (cost on hostCore), the guest handles it, and the guest's EOI
// write traps (one more exit).
func (vm *VM) GuestIRQInjected(hostCore *cpu.Core, fn func()) {
	vm.Counters.Inc(CounterInjections, 1)
	hostCore.Exec(cpu.NoOwner, cpu.KindIRQ, vm.p.InjectCost, func() {
		vm.Counters.Inc(CounterGuestIRQs, 1)
		vm.Core.Exec(vm.ID, cpu.KindIRQ, vm.p.GuestIRQCost, func() {
			vm.Exit(fn) // EOI write traps without ELI
		})
	})
}

// HostIRQ models a physical interrupt handled by a host core (the Elvis
// and baseline backing-device interrupts of Table 3). counters may be nil.
func HostIRQ(core *cpu.Core, p *params.P, counters *stats.Counters, name string, fn func()) {
	if counters != nil {
		counters.Inc(name, 1)
	}
	core.Exec(cpu.NoOwner, cpu.KindIRQ, p.HostIRQCost, fn)
}

// VhostWakeup models the baseline's vhost I/O-thread scheduling: before host
// backend work runs, the scheduler must wake the I/O thread on some core.
func VhostWakeup(core *cpu.Core, p *params.P, fn func()) {
	core.Exec(cpu.NoOwner, cpu.KindBusy, p.VhostWakeupCost, fn)
}
