package hypervisor

import (
	"testing"

	"vrio/internal/cpu"
	"vrio/internal/params"
	"vrio/internal/sim"
)

func setup() (*sim.Engine, *params.P, *cpu.Core, *cpu.Core) {
	e := sim.NewEngine()
	p := params.Default()
	vmCore := cpu.New(e, "vm0", p.ContextSwitchCost)
	hostCore := cpu.New(e, "host0", p.ContextSwitchCost)
	return e, &p, vmCore, hostCore
}

func TestComputeChargesVCPU(t *testing.T) {
	e, p, core, _ := setup()
	vm := NewVM(e, p, 1, core)
	ran := false
	vm.Compute(1000, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("compute callback did not run")
	}
	if core.Accounted(cpu.KindBusy) != 1000 {
		t.Errorf("busy = %v", core.Accounted(cpu.KindBusy))
	}
}

func TestExitCountsAndCharges(t *testing.T) {
	e, p, core, _ := setup()
	vm := NewVM(e, p, 1, core)
	vm.Exit(nil)
	e.Run()
	if vm.Counters.Get(CounterExits) != 1 {
		t.Errorf("exits = %d", vm.Counters.Get(CounterExits))
	}
	if core.Accounted(cpu.KindExit) != p.ExitCost {
		t.Errorf("exit time = %v, want %v", core.Accounted(cpu.KindExit), p.ExitCost)
	}
}

func TestExitlessIRQ(t *testing.T) {
	e, p, core, _ := setup()
	vm := NewVM(e, p, 1, core)
	done := false
	vm.GuestIRQExitless(func() { done = true })
	e.Run()
	if !done {
		t.Fatal("handler did not run")
	}
	if vm.Counters.Get(CounterGuestIRQs) != 1 {
		t.Errorf("guest_irqs = %d", vm.Counters.Get(CounterGuestIRQs))
	}
	// Crucially: zero exits and zero injections.
	if vm.Counters.Get(CounterExits) != 0 || vm.Counters.Get(CounterInjections) != 0 {
		t.Errorf("ELI path generated exits/injections: %s", vm.Counters.String())
	}
	want := p.ELIDeliveryCost + p.GuestIRQCost
	if core.Accounted(cpu.KindIRQ) != want {
		t.Errorf("irq time = %v, want %v", core.Accounted(cpu.KindIRQ), want)
	}
}

func TestInjectedIRQFullCost(t *testing.T) {
	e, p, vmCore, hostCore := setup()
	vm := NewVM(e, p, 1, vmCore)
	done := false
	vm.GuestIRQInjected(hostCore, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("handler did not run")
	}
	// One injection, one guest IRQ, one EOI exit.
	if vm.Counters.Get(CounterInjections) != 1 ||
		vm.Counters.Get(CounterGuestIRQs) != 1 ||
		vm.Counters.Get(CounterExits) != 1 {
		t.Errorf("counters: %s", vm.Counters.String())
	}
	if hostCore.Accounted(cpu.KindIRQ) != p.InjectCost {
		t.Errorf("host inject time = %v", hostCore.Accounted(cpu.KindIRQ))
	}
	if vmCore.Accounted(cpu.KindExit) != p.ExitCost {
		t.Errorf("EOI exit time = %v", vmCore.Accounted(cpu.KindExit))
	}
}

func TestHostIRQ(t *testing.T) {
	e, p, _, hostCore := setup()
	vm := NewVM(e, p, 1, hostCore)
	HostIRQ(hostCore, p, &vm.Counters, CounterHostIRQs, nil)
	HostIRQ(hostCore, p, nil, CounterHostIRQs, nil) // nil counters tolerated
	e.Run()
	if vm.Counters.Get(CounterHostIRQs) != 1 {
		t.Errorf("host_irqs = %d", vm.Counters.Get(CounterHostIRQs))
	}
	if hostCore.Accounted(cpu.KindIRQ) != 2*p.HostIRQCost {
		t.Errorf("irq time = %v", hostCore.Accounted(cpu.KindIRQ))
	}
}

// Per-request-response event sums must reproduce Table 3's rows when
// composed the way each model composes them.
func TestTable3Composition(t *testing.T) {
	// optimum / vrio-with-poll: 2 exitless guest interrupts, nothing else.
	e, p, core, host := setup()
	vm := NewVM(e, p, 1, core)
	vm.GuestIRQExitless(nil)
	vm.GuestIRQExitless(nil)
	e.Run()
	if got := vm.Counters.Get(CounterExits) + vm.Counters.Get(CounterInjections) +
		vm.Counters.Get(CounterHostIRQs); got != 0 {
		t.Errorf("optimum overhead events = %d, want 0", got)
	}
	if vm.Counters.Get(CounterGuestIRQs) != 2 {
		t.Errorf("guest irqs = %d, want 2", vm.Counters.Get(CounterGuestIRQs))
	}

	// baseline: 1 kick exit + 2 injected IRQs (2 injections, 2 guest IRQs,
	// 2 EOI exits) + 2 host IRQs -> exits=3, injections=2, host=2.
	e2, p2, core2, host2 := setup()
	_ = host
	vm2 := NewVM(e2, p2, 1, core2)
	vm2.Exit(func() {
		HostIRQ(host2, p2, &vm2.Counters, CounterHostIRQs, func() {
			vm2.GuestIRQInjected(host2, nil)
		})
		HostIRQ(host2, p2, &vm2.Counters, CounterHostIRQs, func() {
			vm2.GuestIRQInjected(host2, nil)
		})
	})
	e2.Run()
	if vm2.Counters.Get(CounterExits) != 3 {
		t.Errorf("baseline exits = %d, want 3", vm2.Counters.Get(CounterExits))
	}
	if vm2.Counters.Get(CounterInjections) != 2 {
		t.Errorf("baseline injections = %d, want 2", vm2.Counters.Get(CounterInjections))
	}
	if vm2.Counters.Get(CounterHostIRQs) != 2 {
		t.Errorf("baseline host irqs = %d, want 2", vm2.Counters.Get(CounterHostIRQs))
	}
	if vm2.Counters.Get(CounterGuestIRQs) != 2 {
		t.Errorf("baseline guest irqs = %d, want 2", vm2.Counters.Get(CounterGuestIRQs))
	}
}

func TestVhostWakeup(t *testing.T) {
	e, p, _, host := setup()
	ran := false
	VhostWakeup(host, p, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("wakeup callback did not run")
	}
	if host.Accounted(cpu.KindBusy) != p.VhostWakeupCost {
		t.Errorf("wakeup time = %v", host.Accounted(cpu.KindBusy))
	}
}
