package ethernet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSegmentRoundTrip(t *testing.T) {
	f := func(msgID uint32, dev uint16, payload []byte) bool {
		if len(payload) > MaxMessage {
			payload = payload[:MaxMessage]
		}
		frames, err := SegmentMessage(msgID, dev, payload, 1500)
		if err != nil {
			return false
		}
		var got []byte
		for i, fr := range frames {
			seg, err := DecodeSegment(fr)
			if err != nil {
				return false
			}
			if seg.MsgID != msgID || seg.DeviceID != dev {
				return false
			}
			if int(seg.Offset) != len(got) {
				return false
			}
			if seg.Last != (i == len(frames)-1) {
				return false
			}
			got = append(got, seg.Payload...)
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSegmentCountMTU8100(t *testing.T) {
	// A full 64 KiB message at MTU 8100 must produce 9 fragments (§4.4).
	msg := make([]byte, MaxMessage)
	frames, err := SegmentMessage(1, 1, msg, 8100)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 9 {
		t.Errorf("fragments = %d, want 9", len(frames))
	}
	// First 8 fragments are MTU-sized; the 9th is small.
	for i := 0; i < 8; i++ {
		if len(frames[i]) != 8100 {
			t.Errorf("fragment %d wire len = %d, want 8100", i, len(frames[i]))
		}
	}
	if len(frames[8]) >= PageSize {
		t.Errorf("last fragment = %d bytes, want < one page", len(frames[8]))
	}
}

func TestSegmentTooBig(t *testing.T) {
	if _, err := SegmentMessage(1, 1, make([]byte, MaxMessage+1), 8100); err == nil {
		t.Error("oversize message accepted")
	}
}

func TestSegmentBadMTU(t *testing.T) {
	for _, mtu := range []int{0, 63, 9001, -5} {
		if _, err := SegmentMessage(1, 1, []byte("x"), mtu); err == nil {
			t.Errorf("MTU %d accepted", mtu)
		}
	}
}

func TestSegmentEmptyMessage(t *testing.T) {
	frames, err := SegmentMessage(5, 2, nil, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("empty message produced %d fragments, want 1", len(frames))
	}
	seg, err := DecodeSegment(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Last || seg.Total != 0 || len(seg.Payload) != 0 {
		t.Errorf("empty-message segment: %+v", seg)
	}
}

func TestDecodeSegmentChecksumDetectsCorruption(t *testing.T) {
	frames, _ := SegmentMessage(7, 3, []byte("data"), 1500)
	raw := frames[0]
	for bit := 0; bit < ipHeaderSize*8; bit += 13 {
		corrupted := append([]byte{}, raw...)
		corrupted[bit/8] ^= 1 << (bit % 8)
		if _, err := DecodeSegment(corrupted); err == nil {
			// Flipping a bit in the checksum-covered header must fail
			// (either the checksum or a consistency check).
			t.Errorf("corruption at header bit %d undetected", bit)
		}
	}
}

func TestDecodeSegmentShort(t *testing.T) {
	if _, err := DecodeSegment(make([]byte, EncapOverhead-1)); err != ErrShortSegment {
		t.Errorf("err = %v, want ErrShortSegment", err)
	}
}

func TestDecodeSegmentLengthMismatch(t *testing.T) {
	frames, _ := SegmentMessage(7, 3, []byte("data"), 1500)
	truncated := frames[0][:len(frames[0])-2]
	if _, err := DecodeSegment(truncated); err == nil {
		t.Error("truncated segment accepted")
	}
}

func TestFragmentPages(t *testing.T) {
	cases := []struct{ wire, want int }{
		{0, 0}, {1, 1}, {4096, 1}, {4097, 2}, {8100, 2}, {8192, 2}, {8193, 3}, {9040, 3},
	}
	for _, c := range cases {
		if got := FragmentPages(c.wire); got != c.want {
			t.Errorf("FragmentPages(%d) = %d, want %d", c.wire, got, c.want)
		}
	}
}

func TestZeroCopyFeasibleMatchesPaper(t *testing.T) {
	// §4.4: MTU 8100 keeps a 64 KiB message within 17 pages; MTU 9000
	// does not.
	if !ZeroCopyFeasible(MaxMessage, 8100) {
		t.Error("64KiB at MTU 8100 should be zero-copy feasible")
	}
	if ZeroCopyFeasible(MaxMessage, 9000) {
		t.Error("64KiB at MTU 9000 should NOT be zero-copy feasible")
	}
	// Small messages are always feasible.
	if !ZeroCopyFeasible(1000, 1500) {
		t.Error("small message infeasible")
	}
	if !ZeroCopyFeasible(0, 8100) {
		t.Error("empty message infeasible")
	}
}

func TestIPChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style check: checksum of a header with the checksum
	// field filled must verify to zero.
	hdr := make([]byte, 20)
	hdr[0] = 0x45
	hdr[2], hdr[3] = 0x00, 0x3c
	hdr[8], hdr[9] = 64, 6
	sum := ipChecksum(hdr)
	hdr[10] = byte(sum >> 8)
	hdr[11] = byte(sum)
	if ipChecksum(hdr) != 0 {
		t.Error("checksum of checksummed header is not zero")
	}
}
