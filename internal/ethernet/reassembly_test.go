package ethernet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func reassembleAll(t *testing.T, r *Reassembler, src MAC, frames [][]byte) *Message {
	t.Helper()
	var msg *Message
	for i, fr := range frames {
		m, err := r.Add(src, fr)
		if err != nil {
			t.Fatalf("Add fragment %d: %v", i, err)
		}
		if m != nil {
			if msg != nil {
				t.Fatal("message completed twice")
			}
			msg = m
		}
	}
	return msg
}

func TestReassemblerSingleFragment(t *testing.T) {
	r := NewReassembler(0)
	src := NewMAC(1)
	frames, _ := SegmentMessage(42, 7, []byte("short"), 1500)
	msg := reassembleAll(t, r, src, frames)
	if msg == nil {
		t.Fatal("message did not complete")
	}
	if string(msg.Data) != "short" || msg.MsgID != 42 || msg.DeviceID != 7 || msg.Src != src {
		t.Errorf("message = %+v", msg)
	}
	if !msg.ZeroCopy || msg.Fragments != 1 {
		t.Errorf("ZeroCopy=%v Fragments=%d", msg.ZeroCopy, msg.Fragments)
	}
	if r.Pending() != 0 {
		t.Errorf("Pending = %d after completion", r.Pending())
	}
}

func TestReassemblerMultiFragment64K(t *testing.T) {
	r := NewReassembler(0)
	src := NewMAC(2)
	data := make([]byte, MaxMessage)
	for i := range data {
		data[i] = byte(i * 31)
	}
	frames, _ := SegmentMessage(100, 1, data, 8100)
	msg := reassembleAll(t, r, src, frames)
	if msg == nil {
		t.Fatal("64KiB message did not complete")
	}
	if !bytes.Equal(msg.Data, data) {
		t.Error("reassembled data corrupted")
	}
	if !msg.ZeroCopy {
		t.Error("MTU-8100 64KiB message should be zero-copy (17 pages)")
	}
	if msg.Fragments != 9 {
		t.Errorf("Fragments = %d, want 9", msg.Fragments)
	}
}

func TestReassemblerMTU9000BreaksZeroCopy(t *testing.T) {
	r := NewReassembler(0)
	src := NewMAC(3)
	data := make([]byte, MaxMessage)
	frames, _ := SegmentMessage(101, 1, data, 9000)
	msg := reassembleAll(t, r, src, frames)
	if msg == nil {
		t.Fatal("message did not complete")
	}
	if msg.ZeroCopy {
		t.Error("MTU-9000 64KiB message must exceed the 17-page budget")
	}
}

func TestReassemblerOutOfOrder(t *testing.T) {
	r := NewReassembler(0)
	src := NewMAC(4)
	data := make([]byte, 40000)
	for i := range data {
		data[i] = byte(i)
	}
	frames, _ := SegmentMessage(5, 2, data, 1500)
	// Deliver in reverse.
	var msg *Message
	for i := len(frames) - 1; i >= 0; i-- {
		m, err := r.Add(src, frames[i])
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			msg = m
		}
	}
	if msg == nil || !bytes.Equal(msg.Data, data) {
		t.Error("out-of-order reassembly failed")
	}
}

func TestReassemblerDuplicateFragmentsIgnored(t *testing.T) {
	r := NewReassembler(0)
	src := NewMAC(5)
	data := make([]byte, 20000)
	frames, _ := SegmentMessage(6, 2, data, 1500)
	// Send the first fragment three times, then the rest.
	for i := 0; i < 3; i++ {
		if m, err := r.Add(src, frames[0]); err != nil || m != nil {
			t.Fatalf("dup fragment: m=%v err=%v", m, err)
		}
	}
	msg := reassembleAll(t, r, src, frames[1:])
	if msg == nil {
		t.Fatal("message with duplicates did not complete")
	}
	if msg.Fragments != len(frames) {
		t.Errorf("Fragments = %d, want %d (dups must not count)", msg.Fragments, len(frames))
	}
}

func TestReassemblerInterleavedSourcesAndMessages(t *testing.T) {
	r := NewReassembler(0)
	srcA, srcB := NewMAC(10), NewMAC(11)
	dataA := bytes.Repeat([]byte{0xA}, 30000)
	dataB := bytes.Repeat([]byte{0xB}, 30000)
	framesA, _ := SegmentMessage(1, 1, dataA, 1500)
	framesB, _ := SegmentMessage(1, 1, dataB, 1500) // same msgID, different src
	var done int
	n := len(framesA)
	for i := 0; i < n; i++ {
		if m, _ := r.Add(srcA, framesA[i]); m != nil {
			if !bytes.Equal(m.Data, dataA) {
				t.Error("A corrupted")
			}
			done++
		}
		if m, _ := r.Add(srcB, framesB[i]); m != nil {
			if !bytes.Equal(m.Data, dataB) {
				t.Error("B corrupted")
			}
			done++
		}
	}
	if done != 2 {
		t.Errorf("completed %d messages, want 2", done)
	}
}

func TestReassemblerEviction(t *testing.T) {
	r := NewReassembler(2)
	src := NewMAC(1)
	// Three incomplete messages: the first must be evicted.
	for id := uint32(1); id <= 3; id++ {
		frames, _ := SegmentMessage(id, 1, make([]byte, 5000), 1500)
		if _, err := r.Add(src, frames[0]); err != nil {
			t.Fatal(err)
		}
	}
	if r.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", r.Pending())
	}
	if r.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", r.Evictions())
	}
}

func TestReassemblerRejectsGarbage(t *testing.T) {
	r := NewReassembler(0)
	if _, err := r.Add(NewMAC(1), []byte("too short")); err == nil {
		t.Error("garbage fragment accepted")
	}
}

func TestReassemblerEmptyMessage(t *testing.T) {
	r := NewReassembler(0)
	frames, _ := SegmentMessage(9, 4, nil, 1500)
	msg := reassembleAll(t, r, NewMAC(1), frames)
	if msg == nil {
		t.Fatal("empty message did not complete")
	}
	if len(msg.Data) != 0 {
		t.Errorf("empty message data len = %d", len(msg.Data))
	}
}

// Property: segment + shuffle + reassemble = identity, for any payload and
// any valid MTU.
func TestReassemblerShuffleProperty(t *testing.T) {
	r := NewReassembler(0)
	seed := uint32(1)
	next := func(n int) int { // tiny LCG for deterministic shuffles
		seed = seed*1664525 + 1013904223
		return int(seed % uint32(n))
	}
	f := func(payload []byte, mtuRaw uint16) bool {
		if len(payload) > MaxMessage {
			payload = payload[:MaxMessage]
		}
		mtu := 100 + int(mtuRaw%8900)
		frames, err := SegmentMessage(77, 1, payload, mtu)
		if err != nil {
			return false
		}
		for i := len(frames) - 1; i > 0; i-- {
			j := next(i + 1)
			frames[i], frames[j] = frames[j], frames[i]
		}
		var msg *Message
		for _, fr := range frames {
			m, err := r.Add(NewMAC(99), fr)
			if err != nil {
				return false
			}
			if m != nil {
				msg = m
			}
		}
		return msg != nil && bytes.Equal(msg.Data, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
