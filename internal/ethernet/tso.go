package ethernet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The fake TCP/IP encapsulation of §4.3: vRIO works at raw Ethernet level
// but prepends IPv4+TCP headers so NIC TSO segments a ≤64 KiB message in
// hardware. We reuse header fields the way STT does:
//
//	IPv4.Identification  = message id (low 16 bits)
//	TCP.SourcePort       = front-end device id
//	TCP.DestinationPort  = message id (high 16 bits)
//	TCP.SequenceNumber   = fragment byte offset within the message
//	TCP.AckNumber        = total message length
//	TCP.PSH flag         = set on the final fragment
//
// The IPv4 header checksum is computed for real; the TCP checksum is left
// zero, as it would be with checksum offload.

const (
	ipHeaderSize  = 20
	tcpHeaderSize = 20
	// EncapOverhead is the fake TCP/IP bytes prepended to every fragment.
	EncapOverhead = ipHeaderSize + tcpHeaderSize
	// MaxMessage is the largest encapsulated message: the 64 KiB TCP/IP
	// limit that also bounds what TSO can offload.
	MaxMessage = 64 * 1024
	// PageSize is the 4 KiB page used in the §4.4 fragment-page budget.
	PageSize = 4096
	// MaxZeroCopyPages is how many pages one Linux SKB can map (§4.4).
	MaxZeroCopyPages = 17
)

// Errors from the TSO layer.
var (
	ErrMessageTooBig = errors.New("ethernet: message exceeds 64KiB TSO limit")
	ErrShortSegment  = errors.New("ethernet: segment shorter than encapsulation headers")
	ErrBadIPChecksum = errors.New("ethernet: IPv4 header checksum mismatch")
	ErrBadFragment   = errors.New("ethernet: inconsistent fragment metadata")
)

// Segment is one decoded fragment of an encapsulated message.
type Segment struct {
	MsgID    uint32
	DeviceID uint16
	Offset   uint32
	Total    uint32
	Last     bool
	Payload  []byte
}

// ipChecksum computes the RFC 1071 ones'-complement header checksum.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// encapSegment builds headers+payload for one fragment.
func encapSegment(s Segment) []byte {
	b := make([]byte, EncapOverhead+len(s.Payload))
	EncapSegmentInto(b, s)
	return b
}

// EncapSegmentInto is the scatter-gather variant of segment encapsulation:
// it writes the fake TCP/IP headers and payload into b, which must be
// exactly EncapOverhead+len(s.Payload) long. The NIC's TSO path uses it to
// build each fragment directly inside a pooled frame buffer, headers and
// payload in one pass.
func EncapSegmentInto(b []byte, s Segment) {
	if len(b) != EncapOverhead+len(s.Payload) {
		panic(fmt.Sprintf("ethernet: EncapSegmentInto buffer %d for payload %d", len(b), len(s.Payload)))
	}
	ip := b[:ipHeaderSize]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:], uint16(len(b)))
	binary.BigEndian.PutUint16(ip[4:], uint16(s.MsgID&0xffff)) // identification
	ip[8] = 64                                                 // TTL
	ip[9] = 6                                                  // protocol TCP
	// src/dst IP left zero: addressing is by MAC on the dedicated channel.
	binary.BigEndian.PutUint16(ip[10:], 0)
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip))

	tcp := b[ipHeaderSize : ipHeaderSize+tcpHeaderSize]
	binary.BigEndian.PutUint16(tcp[0:], s.DeviceID)
	binary.BigEndian.PutUint16(tcp[2:], uint16(s.MsgID>>16))
	binary.BigEndian.PutUint32(tcp[4:], s.Offset)
	binary.BigEndian.PutUint32(tcp[8:], s.Total)
	tcp[12] = 5 << 4 // data offset
	if s.Last {
		tcp[13] = 0x08 // PSH
	}
	copy(b[EncapOverhead:], s.Payload)
}

// DecodeSegment parses a fragment produced by Segment/encapSegment,
// verifying the IPv4 header checksum. The returned payload aliases b.
func DecodeSegment(b []byte) (Segment, error) {
	if len(b) < EncapOverhead {
		return Segment{}, ErrShortSegment
	}
	ip := b[:ipHeaderSize]
	if ipChecksum(ip) != 0 { // checksum over header including stored sum is 0 when valid
		return Segment{}, ErrBadIPChecksum
	}
	tot := binary.BigEndian.Uint16(ip[2:])
	if int(tot) != len(b) {
		return Segment{}, fmt.Errorf("%w: ip length %d vs %d", ErrBadFragment, tot, len(b))
	}
	ident := binary.BigEndian.Uint16(ip[4:])
	tcp := b[ipHeaderSize:EncapOverhead]
	s := Segment{
		DeviceID: binary.BigEndian.Uint16(tcp[0:]),
		MsgID:    uint32(binary.BigEndian.Uint16(tcp[2:]))<<16 | uint32(ident),
		Offset:   binary.BigEndian.Uint32(tcp[4:]),
		Total:    binary.BigEndian.Uint32(tcp[8:]),
		Last:     tcp[13]&0x08 != 0,
		Payload:  b[EncapOverhead:],
	}
	if s.Offset > s.Total || uint32(len(s.Payload)) > s.Total-s.Offset {
		return Segment{}, fmt.Errorf("%w: offset %d + len %d > total %d",
			ErrBadFragment, s.Offset, len(s.Payload), s.Total)
	}
	return s, nil
}

// SegmentMessage splits one message (≤ 64 KiB) into MTU-sized encapsulated
// fragments, emulating what the TSO engine does in hardware. Each returned
// byte slice is a complete frame payload (fake IP+TCP headers included).
func SegmentMessage(msgID uint32, deviceID uint16, msg []byte, mtu int) ([][]byte, error) {
	if len(msg) > MaxMessage {
		return nil, fmt.Errorf("%w: %d bytes", ErrMessageTooBig, len(msg))
	}
	if mtu < MinMTU || mtu > MaxMTU {
		return nil, fmt.Errorf("ethernet: MTU %d outside [%d, %d]", mtu, MinMTU, MaxMTU)
	}
	chunk := mtu - EncapOverhead
	if chunk <= 0 {
		return nil, fmt.Errorf("ethernet: MTU %d leaves no payload room", mtu)
	}
	total := uint32(len(msg))
	var out [][]byte
	for off := 0; ; off += chunk {
		end := off + chunk
		last := false
		if end >= len(msg) {
			end = len(msg)
			last = true
		}
		out = append(out, encapSegment(Segment{
			MsgID:    msgID,
			DeviceID: deviceID,
			Offset:   uint32(off),
			Total:    total,
			Last:     last,
			Payload:  msg[off:end],
		}))
		if last {
			break
		}
	}
	return out, nil
}

// FragmentPages reports how many 4 KiB pages one fragment of the given wire
// size (headers included) occupies when mapped into an SKB.
func FragmentPages(wireLen int) int {
	if wireLen <= 0 {
		return 0
	}
	return (wireLen + PageSize - 1) / PageSize
}

// ZeroCopyFeasible reports whether a message of msgLen segmented at the
// given MTU reassembles within the 17-page SKB budget (§4.4). With MTU 8100
// every 64 KiB message fits (8 fragments × 2 pages + 1 × 1 page = 17); with
// MTU 9000 a fragment (9000+40 bytes) spans 3 pages and the budget bursts.
func ZeroCopyFeasible(msgLen, mtu int) bool {
	if msgLen <= 0 {
		return true
	}
	chunk := mtu - EncapOverhead
	if chunk <= 0 {
		return false
	}
	pages := 0
	for off := 0; off < msgLen; off += chunk {
		n := chunk
		if off+n > msgLen {
			n = msgLen - off
		}
		pages += FragmentPages(n + EncapOverhead)
	}
	return pages <= MaxZeroCopyPages
}
