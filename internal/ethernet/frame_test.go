package ethernet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x10, 0xde, 0xad, 0xbe, 0xef}
	if got := m.String(); got != "02:10:de:ad:be:ef" {
		t.Errorf("String = %q", got)
	}
}

func TestNewMACDistinctAndUnicast(t *testing.T) {
	a := NewMAC(1)
	b := NewMAC(2)
	if a == b {
		t.Error("distinct nodes got the same MAC")
	}
	if a[0]&0x01 != 0 {
		t.Error("generated MAC is multicast")
	}
	if a[0]&0x02 == 0 {
		t.Error("generated MAC is not locally administered")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := func(dst, src [6]byte, et uint16, payload []byte) bool {
		fr := Frame{Dst: MAC(dst), Src: MAC(src), EtherType: et, Payload: payload}
		enc, err := fr.Encode(0)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		return dec.Dst == fr.Dst && dec.Src == fr.Src && dec.EtherType == et &&
			bytes.Equal(dec.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameEncodeMTUEnforced(t *testing.T) {
	fr := Frame{Payload: make([]byte, 1501)}
	if _, err := fr.Encode(1500); err == nil {
		t.Error("oversize payload accepted")
	}
	if _, err := fr.Encode(1501); err != nil {
		t.Errorf("exact-MTU payload rejected: %v", err)
	}
}

func TestDecodeShortFrame(t *testing.T) {
	if _, err := Decode(make([]byte, HeaderSize-1)); err != ErrShortFrame {
		t.Errorf("err = %v, want ErrShortFrame", err)
	}
}

func TestWireSize(t *testing.T) {
	fr := Frame{Payload: make([]byte, 100)}
	if got := fr.WireSize(); got != 14+100+24 {
		t.Errorf("WireSize = %d", got)
	}
}
