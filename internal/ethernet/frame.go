// Package ethernet implements the wire format of vRIO's dedicated
// communication channel: Ethernet framing, the STT-style fake-TCP/IP
// encapsulation that lets vRIO exploit NIC TSO while working at raw Ethernet
// level (§4.3), and the zero-copy reassembler with the paper's 17-fragment
// page-budget rule (§4.4).
package ethernet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the usual colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// NewMAC derives a locally administered unicast MAC from a 32-bit node id.
func NewMAC(node uint32) MAC {
	var m MAC
	m[0] = 0x02 // locally administered, unicast
	m[1] = 0x10
	binary.BigEndian.PutUint32(m[2:], node)
	return m
}

// NodeID recovers the 32-bit node id a MAC was minted from by NewMAC, and
// reports whether the address carries one (broadcast and foreign addresses
// do not). The fabric locator uses it to map any cluster MAC to its rack
// arithmetically, without a learned table.
func NodeID(m MAC) (uint32, bool) {
	if m[0] != 0x02 || m[1] != 0x10 {
		return 0, false
	}
	return binary.BigEndian.Uint32(m[2:]), true
}

// EtherType values used by the reproduction.
const (
	// EtherTypeVRIO marks vRIO-encapsulated traffic (an experimental-range
	// EtherType, as a real deployment would use).
	EtherTypeVRIO = 0x88B5
	// EtherTypePlain marks ordinary tenant traffic (e.g. generator <->
	// webserver payloads, which vRIO forwards without decapsulation).
	EtherTypePlain = 0x0800
)

// HeaderSize is the Ethernet header length (no VLAN tag).
const HeaderSize = 14

// FCS computes the frame check sequence the simulated PHY uses: CRC32 with
// the IEEE 802.3 polynomial over the encoded frame bytes. Encoded frames
// never carry the 4 FCS bytes — they live inside the 24-byte per-frame wire
// overhead the link layer charges — so the checksum exists only as a value:
// a wire under fault injection snapshots it at transmit time and re-verifies
// at delivery, detecting and discarding frames corrupted in flight.
func FCS(frame []byte) uint32 { return crc32.ChecksumIEEE(frame) }

// MinMTU and MaxMTU bound the payload per frame. 9000 is the maximal jumbo
// frame; the paper deliberately uses 8100 (see package tso).
const (
	MinMTU = 64
	MaxMTU = 9000
)

// Frame is one Ethernet frame.
type Frame struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
	Payload   []byte
}

// Errors returned by the codec.
var (
	ErrShortFrame = errors.New("ethernet: frame shorter than header")
	ErrOversize   = errors.New("ethernet: payload exceeds MTU")
)

// Encode serializes the frame. If mtu > 0 the payload length is validated
// against it.
func (f *Frame) Encode(mtu int) ([]byte, error) {
	if mtu > 0 && len(f.Payload) > mtu {
		return nil, fmt.Errorf("%w: %d > %d", ErrOversize, len(f.Payload), mtu)
	}
	b := make([]byte, HeaderSize+len(f.Payload))
	PutHeader(b, f.Dst, f.Src, f.EtherType)
	copy(b[HeaderSize:], f.Payload)
	return b, nil
}

// PutHeader writes the 14-byte Ethernet header into b, which must be at
// least HeaderSize long. The TSO send path uses it to build header,
// encapsulation, and payload inside one pooled buffer.
func PutHeader(b []byte, dst, src MAC, etherType uint16) {
	copy(b[0:6], dst[:])
	copy(b[6:12], src[:])
	binary.BigEndian.PutUint16(b[12:14], etherType)
}

// Decode parses a serialized frame. The returned payload aliases b.
func Decode(b []byte) (Frame, error) {
	if len(b) < HeaderSize {
		return Frame{}, ErrShortFrame
	}
	var f Frame
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	f.EtherType = binary.BigEndian.Uint16(b[12:14])
	f.Payload = b[HeaderSize:]
	return f, nil
}

// WireSize reports the on-the-wire size of the frame including header and a
// fixed 24 bytes of preamble/FCS/inter-frame gap, used for serialization
// delay on links.
func (f *Frame) WireSize() int {
	return HeaderSize + len(f.Payload) + 24
}
