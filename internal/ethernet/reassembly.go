package ethernet

import (
	"errors"
	"fmt"

	"vrio/internal/bufpool"
)

// Reassembler rebuilds messages from encapsulated fragments at the IOhost
// (or at the IOclient for responses). It mirrors §4.4's zero-copy SKB
// construction: fragments are collected per (source MAC, message id) and the
// message completes when the byte range [0, total) is fully covered.
//
// With a buffer pool attached (SetPool), message buffers come from the pool
// and ownership of a completed message's Data transfers to the consumer,
// who returns it with PutRaw when done; partial-message bookkeeping structs
// are recycled internally either way, so steady-state reassembly does not
// allocate.
type Reassembler struct {
	partial map[reassemblyKey]*partialMsg
	// MaxPartial bounds concurrently reassembling messages; beyond it the
	// oldest partial is evicted (defensive against leaking state when
	// fragments are lost and the message is never completed).
	maxPartial int
	evictions  uint64
	seq        uint64

	pool *bufpool.Pool
	free []*partialMsg
	// done is the scratch for completed messages: Add's return value points
	// at it and is valid until the next Add. Data ownership transfers to
	// the caller (the buffer is not touched by the reassembler again).
	done Message
}

type reassemblyKey struct {
	src   MAC
	msgID uint32
}

type partialMsg struct {
	buf      []byte
	have     []bool // per-byte coverage bitmap, indexed by offset
	covered  uint32
	total    uint32
	deviceID uint16
	pages    int
	frags    int
	seq      uint64 // insertion order for eviction
}

// NewReassembler returns a reassembler that tracks at most maxPartial
// in-progress messages (default 1024 if maxPartial <= 0).
func NewReassembler(maxPartial int) *Reassembler {
	if maxPartial <= 0 {
		maxPartial = 1024
	}
	return &Reassembler{
		partial:    make(map[reassemblyKey]*partialMsg),
		maxPartial: maxPartial,
	}
}

// SetPool attaches a buffer pool: message buffers are drawn from it, and
// the consumer of each completed message owns Data (returning it to the
// same pool closes the loop).
func (r *Reassembler) SetPool(p *bufpool.Pool) { r.pool = p }

// Message is one fully reassembled message.
type Message struct {
	Src      MAC
	MsgID    uint32
	DeviceID uint16
	Data     []byte
	// ZeroCopy reports whether the reassembly stayed within the 17-page SKB
	// budget; when false the datapath must charge a copy (§4.4).
	ZeroCopy bool
	// Fragments is how many fragments composed the message.
	Fragments int
}

// ErrDeviceMismatch reports fragments of one message disagreeing on the
// front-end device id.
var ErrDeviceMismatch = errors.New("ethernet: fragments disagree on device id")

// Pending reports the number of partially reassembled messages.
func (r *Reassembler) Pending() int { return len(r.partial) }

// Evictions reports how many partial messages were dropped to respect the
// partial-message bound.
func (r *Reassembler) Evictions() uint64 { return r.evictions }

// acquire returns a recycled (or fresh) partial with buf/have sized for
// total bytes.
func (r *Reassembler) acquire(total uint32) *partialMsg {
	var p *partialMsg
	if n := len(r.free); n > 0 {
		p = r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		*p = partialMsg{have: p.have}
	} else {
		p = &partialMsg{}
	}
	if r.pool != nil {
		p.buf = r.pool.GetRaw(int(total))
	} else {
		p.buf = make([]byte, total)
	}
	// Coverage is byte-granular; +1 so total==0 still has a slot.
	want := int(total) + 1
	if cap(p.have) < want {
		p.have = make([]bool, want)
	} else {
		p.have = p.have[:want]
		for i := range p.have {
			p.have[i] = false
		}
	}
	p.total = total
	return p
}

// recycle returns a partial's bookkeeping to the free list. The message
// buffer is NOT recycled here: on completion its ownership moved to the
// consumer; on eviction it goes back to the pool by the caller.
func (r *Reassembler) recycle(p *partialMsg) {
	p.buf = nil
	if len(r.free) < r.maxPartial {
		r.free = append(r.free, p)
	}
}

// Add ingests one fragment (frame payload bytes). It returns a completed
// message when this fragment finishes one, or nil. The returned Message
// points at per-reassembler scratch, valid until the next Add; its Data is
// the caller's to keep (and to PutRaw when a pool is attached). Duplicate
// fragments (retransmissions seen twice) are tolerated and ignored.
func (r *Reassembler) Add(src MAC, raw []byte) (*Message, error) {
	seg, err := DecodeSegment(raw)
	if err != nil {
		return nil, err
	}
	key := reassemblyKey{src, seg.MsgID}
	p := r.partial[key]
	if p == nil {
		if len(r.partial) >= r.maxPartial {
			r.evictOldest()
		}
		p = r.acquire(seg.Total)
		p.deviceID = seg.DeviceID
		p.seq = r.seq
		r.seq++
		r.partial[key] = p
	}
	if p.total != seg.Total || p.deviceID != seg.DeviceID {
		return nil, fmt.Errorf("%w (msg %d)", ErrDeviceMismatch, seg.MsgID)
	}
	// Coverage is tracked per byte via the range [Offset, Offset+len).
	// Fragments from SegmentMessage never overlap, but retransmitted frames
	// can duplicate; only newly covered bytes count.
	newBytes := uint32(0)
	for i := range seg.Payload {
		idx := int(seg.Offset) + i
		if !p.have[idx] {
			p.have[idx] = true
			newBytes++
		}
	}
	if newBytes > 0 {
		copy(p.buf[seg.Offset:], seg.Payload)
		p.covered += newBytes
		p.frags++
		p.pages += FragmentPages(len(raw))
	}
	if p.covered < p.total && !(p.total == 0 && seg.Last) {
		return nil, nil
	}
	delete(r.partial, key)
	r.done = Message{
		Src:       src,
		MsgID:     seg.MsgID,
		DeviceID:  p.deviceID,
		Data:      p.buf,
		ZeroCopy:  p.pages <= MaxZeroCopyPages,
		Fragments: p.frags,
	}
	r.recycle(p)
	return &r.done, nil
}

func (r *Reassembler) evictOldest() {
	var oldestKey reassemblyKey
	var oldest *partialMsg
	for k, p := range r.partial {
		if oldest == nil || p.seq < oldest.seq {
			oldest = p
			oldestKey = k
		}
	}
	if oldest != nil {
		delete(r.partial, oldestKey)
		if r.pool != nil {
			r.pool.PutRaw(oldest.buf)
		}
		r.recycle(oldest)
		r.evictions++
	}
}
