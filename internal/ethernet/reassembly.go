package ethernet

import (
	"errors"
	"fmt"
)

// Reassembler rebuilds messages from encapsulated fragments at the IOhost
// (or at the IOclient for responses). It mirrors §4.4's zero-copy SKB
// construction: fragments are collected per (source MAC, message id) and the
// message completes when the byte range [0, total) is fully covered.
type Reassembler struct {
	partial map[reassemblyKey]*partialMsg
	// MaxPartial bounds concurrently reassembling messages; beyond it the
	// oldest partial is evicted (defensive against leaking state when
	// fragments are lost and the message is never completed).
	maxPartial int
	evictions  uint64
	seq        uint64
}

type reassemblyKey struct {
	src   MAC
	msgID uint32
}

type partialMsg struct {
	buf      []byte
	have     []bool // per-fragment-chunk coverage bitmap, indexed by offset/chunk
	covered  uint32
	total    uint32
	deviceID uint16
	pages    int
	frags    int
	seq      uint64 // insertion order for eviction
}

// NewReassembler returns a reassembler that tracks at most maxPartial
// in-progress messages (default 1024 if maxPartial <= 0).
func NewReassembler(maxPartial int) *Reassembler {
	if maxPartial <= 0 {
		maxPartial = 1024
	}
	return &Reassembler{
		partial:    make(map[reassemblyKey]*partialMsg),
		maxPartial: maxPartial,
	}
}

// Message is one fully reassembled message.
type Message struct {
	Src      MAC
	MsgID    uint32
	DeviceID uint16
	Data     []byte
	// ZeroCopy reports whether the reassembly stayed within the 17-page SKB
	// budget; when false the datapath must charge a copy (§4.4).
	ZeroCopy bool
	// Fragments is how many fragments composed the message.
	Fragments int
}

// ErrDeviceMismatch reports fragments of one message disagreeing on the
// front-end device id.
var ErrDeviceMismatch = errors.New("ethernet: fragments disagree on device id")

// Pending reports the number of partially reassembled messages.
func (r *Reassembler) Pending() int { return len(r.partial) }

// Evictions reports how many partial messages were dropped to respect the
// partial-message bound.
func (r *Reassembler) Evictions() uint64 { return r.evictions }

// Add ingests one fragment (frame payload bytes). It returns a completed
// message when this fragment finishes one, or nil. Duplicate fragments
// (retransmissions seen twice) are tolerated and ignored.
func (r *Reassembler) Add(src MAC, raw []byte) (*Message, error) {
	seg, err := DecodeSegment(raw)
	if err != nil {
		return nil, err
	}
	key := reassemblyKey{src, seg.MsgID}
	p := r.partial[key]
	if p == nil {
		if len(r.partial) >= r.maxPartial {
			r.evictOldest()
		}
		p = &partialMsg{
			buf:      make([]byte, seg.Total),
			have:     make([]bool, int(seg.Total)+1), // byte-granular; +1 so total==0 allocates
			total:    seg.Total,
			deviceID: seg.DeviceID,
			seq:      r.seq,
		}
		r.seq++
		r.partial[key] = p
	}
	if p.total != seg.Total || p.deviceID != seg.DeviceID {
		return nil, fmt.Errorf("%w (msg %d)", ErrDeviceMismatch, seg.MsgID)
	}
	// Coverage is tracked per byte via the range [Offset, Offset+len).
	// Fragments from SegmentMessage never overlap, but retransmitted frames
	// can duplicate; only newly covered bytes count.
	newBytes := uint32(0)
	for i := range seg.Payload {
		idx := int(seg.Offset) + i
		if !p.have[idx] {
			p.have[idx] = true
			newBytes++
		}
	}
	if newBytes > 0 {
		copy(p.buf[seg.Offset:], seg.Payload)
		p.covered += newBytes
		p.frags++
		p.pages += FragmentPages(len(raw))
	}
	if p.covered < p.total && !(p.total == 0 && seg.Last) {
		return nil, nil
	}
	delete(r.partial, key)
	return &Message{
		Src:       src,
		MsgID:     seg.MsgID,
		DeviceID:  p.deviceID,
		Data:      p.buf,
		ZeroCopy:  p.pages <= MaxZeroCopyPages,
		Fragments: p.frags,
	}, nil
}

func (r *Reassembler) evictOldest() {
	var oldestKey reassemblyKey
	var oldest *partialMsg
	for k, p := range r.partial {
		if oldest == nil || p.seq < oldest.seq {
			oldest = p
			oldestKey = k
		}
	}
	if oldest != nil {
		delete(r.partial, oldestKey)
		r.evictions++
	}
}
