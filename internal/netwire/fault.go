package netwire

import (
	"vrio/internal/link"
	"vrio/internal/sim"
)

// lossFault is the deterministic per-frame injector for the UDP carrier:
// the same seed replays the same verdict sequence, so a lossy loadgen run
// is reproducible frame for frame. Draw order matches fault.wireFault
// (loss first, then corrupt, at most one applies).
type lossFault struct {
	rng           *sim.RNG
	loss, corrupt float64
}

// LossFault returns a link.TxFault that drops each frame with probability
// loss and flips one random bit with probability corrupt. Corrupted frames
// die at the receiver's checksum as corrupt_fcs — delivered garbage never
// reaches the transport — so both faults are recovered by §4.5
// retransmission. Loop goroutine only, like any carrier state.
func LossFault(loss, corrupt float64, seed uint64) link.TxFault {
	return &lossFault{rng: sim.NewRNG(seed ^ 0x9e77), loss: loss, corrupt: corrupt}
}

// Apply implements link.TxFault.
func (f *lossFault) Apply(frame []byte) link.FaultVerdict {
	if f.loss > 0 && f.rng.Bool(f.loss) {
		return link.FaultVerdict{Action: link.FaultDrop}
	}
	if f.corrupt > 0 && len(frame) > 0 && f.rng.Bool(f.corrupt) {
		frame[f.rng.Intn(len(frame))] ^= 1 << f.rng.Intn(8)
		return link.FaultVerdict{Action: link.FaultCorrupt}
	}
	return link.FaultVerdict{}
}
