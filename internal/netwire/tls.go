package netwire

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"math/big"
	"net"
	"time"
)

// SelfSignedCert mints an ephemeral ECDSA P-256 certificate for the given
// hosts (DNS names or IP literals; defaults to "localhost"/127.0.0.1/::1),
// returning PEM-encoded certificate and key. The vRIO channel is a
// dedicated point-to-point network, so there is no CA hierarchy to defer
// to: the server generates a certificate at startup, hands the cert PEM to
// its clients out of band (a file, for the loadgen), and the clients pin
// exactly that certificate.
func SelfSignedCert(hosts ...string) (certPEM, keyPEM []byte, err error) {
	if len(hosts) == 0 {
		hosts = []string{"localhost", "127.0.0.1", "::1"}
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, nil, err
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "vrio-netwire"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, err
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, nil, err
	}
	certPEM = pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM = pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	return certPEM, keyPEM, nil
}

// ServerTLSConfig builds the listening side's TLS config from a PEM pair
// (for instance one minted by SelfSignedCert).
func ServerTLSConfig(certPEM, keyPEM []byte) (*tls.Config, error) {
	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return nil, err
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS13,
	}, nil
}

// ClientTLSConfig builds a dialing config that accepts exactly the
// certificates in certPEM — certificate pinning, the right trust model for
// a dedicated channel with no CA.
func ClientTLSConfig(certPEM []byte, serverName string) (*tls.Config, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		return nil, errors.New("netwire: no certificates in PEM")
	}
	if serverName == "" {
		serverName = "localhost"
	}
	return &tls.Config{
		RootCAs:    pool,
		ServerName: serverName,
		MinVersion: tls.VersionTLS13,
	}, nil
}
