package netwire_test

import (
	"bytes"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"time"

	"vrio/internal/bufpool"
	"vrio/internal/ethernet"
	"vrio/internal/link"
	"vrio/internal/netwire"
	"vrio/internal/sim"
	"vrio/internal/transport"
)

// reseal recomputes a frame's checksum the way SealFrame defines it, so a
// test can build deliberately malformed-but-sealed frames.
func reseal(b []byte) {
	sum := crc32.ChecksumIEEE(b[:16])
	sum = crc32.Update(sum, crc32.IEEETable, b[netwire.PreambleSize:])
	binary.LittleEndian.PutUint32(b[16:20], sum)
}

func TestFrameCodec(t *testing.T) {
	src, dst := ethernet.NewMAC(1), ethernet.NewMAC(2)
	payload := []byte("the quick brown fox")
	buf := make([]byte, netwire.PreambleSize+len(payload))
	copy(buf[netwire.PreambleSize:], payload)
	netwire.SealFrame(buf, netwire.KindData, src, dst)

	p, body, err := netwire.DecodeFrame(buf)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if p.Kind != netwire.KindData || p.Src != src || p.Dst != dst {
		t.Fatalf("preamble = %+v", p)
	}
	if !bytes.Equal(body, payload) {
		t.Fatalf("payload = %q", body)
	}

	// Any flipped bit — preamble or payload — must fail the checksum.
	for _, i := range []int{4, 12, netwire.PreambleSize, len(buf) - 1} {
		cp := append([]byte(nil), buf...)
		cp[i] ^= 0x40
		if _, _, err := netwire.DecodeFrame(cp); !errors.Is(err, netwire.ErrChecksum) {
			t.Errorf("bit flip at %d: err = %v, want ErrChecksum", i, err)
		}
	}

	if _, _, err := netwire.DecodeFrame(buf[:10]); !errors.Is(err, netwire.ErrRunt) {
		t.Errorf("short frame: err = %v, want ErrRunt", err)
	}

	bad := append([]byte(nil), buf...)
	bad[0] = 0
	if _, _, err := netwire.DecodeFrame(bad); !errors.Is(err, netwire.ErrMagic) {
		t.Errorf("bad magic: err = %v, want ErrMagic", err)
	}

	bad = append(bad[:0:0], buf...)
	bad[2] = 99 // version
	reseal(bad)
	if _, _, err := netwire.DecodeFrame(bad); !errors.Is(err, netwire.ErrVersion) {
		t.Errorf("bad version: err = %v, want ErrVersion", err)
	}

	bad = append(bad[:0:0], buf...)
	bad[3] = 200 // kind
	reseal(bad)
	if _, _, err := netwire.DecodeFrame(bad); !errors.Is(err, netwire.ErrKind) {
		t.Errorf("bad kind: err = %v, want ErrKind", err)
	}
}

func TestLoopClock(t *testing.T) {
	l := netwire.NewLoop()
	go l.Run()
	defer l.Close()

	// AfterFunc fires on the loop goroutine at or after its deadline.
	early := make(chan bool, 1)
	l.Post(func() {
		deadline := l.Now() + 20*sim.Millisecond
		l.AfterFunc(20*sim.Millisecond, func() { early <- l.Now() < deadline })
	})
	select {
	case e := <-early:
		if e {
			t.Fatal("timer fired before its deadline")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}

	// CancelTimer stops a pending timer; a fresh timer on the recycled
	// shell still fires its own fn.
	canceled := make(chan struct{}, 1)
	okc := make(chan struct{})
	l.Post(func() {
		id := l.AfterFunc(10*sim.Millisecond, func() { canceled <- struct{}{} })
		l.CancelTimer(id)
		l.AfterFunc(30*sim.Millisecond, func() { close(okc) })
	})
	select {
	case <-canceled:
		t.Fatal("canceled timer fired")
	case <-okc:
	case <-time.After(5 * time.Second):
		t.Fatal("recycled timer never fired")
	}
}

// cell is one side of a loopback pair: a loop goroutine plus its pool.
type cell struct {
	loop *netwire.Loop
	pool *bufpool.Pool
}

func newCell() *cell {
	return &cell{loop: netwire.NewLoop(), pool: bufpool.New()}
}

// call runs fn on the cell's loop and waits for it.
func (c *cell) call(t *testing.T, fn func()) {
	t.Helper()
	done := make(chan struct{})
	if !c.loop.Post(func() { fn(); close(done) }) {
		t.Fatal("loop closed")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("loop call timed out")
	}
}

// udpConfig keeps every chunk within one datagram.
func udpConfig() transport.Config {
	return transport.Config{MaxChunk: 32 << 10, InitialTimeout: 20 * sim.Millisecond, MaxRetransmits: 10}
}

// serveEcho stands up an endpoint that echoes block requests, the same
// contract as transport.Rig.
func serveEcho(clk sim.Clock, port transport.Port, cfg transport.Config) *transport.Endpoint {
	ep := transport.NewEndpoint(clk, port, cfg)
	ep.BlkReq = func(src ethernet.MAC, h transport.Header, req *bufpool.Frame) {
		ep.RespondBlk(src, h, req.B)
		req.Release()
	}
	return ep
}

// handshake re-sends hellos from the client until the server's ack lands
// (hellos are plain frames: on a lossy carrier either direction may drop).
func handshake(t *testing.T, c *cell, send func(), ready *bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := false
		c.call(t, func() {
			send()
			ok = *ready
		})
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("hello handshake never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func blkRoundTrip(t *testing.T, c *cell, drv *transport.Driver, size int) {
	t.Helper()
	req := make([]byte, size)
	for i := range req {
		req[i] = byte(i * 31)
	}
	done := make(chan error, 1)
	c.call(t, func() {
		drv.SendBlk(1, 7, req, func(resp []byte, err error) {
			if err == nil && !bytes.Equal(resp, req) {
				err = errors.New("response differs from request")
			}
			done <- err
		})
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("block round trip: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("block request never completed")
	}
}

func TestUDPLoopbackBlk(t *testing.T) {
	srv, cli := newCell(), newCell()
	serverMAC, clientMAC := ethernet.NewMAC(100), ethernet.NewMAC(1)
	cfg := udpConfig()

	sc, err := netwire.ListenUDP(srv.loop, srv.pool, serverMAC, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ep := serveEcho(srv.loop, sc, cfg)
	sc.OnMessage = func(src ethernet.MAC, msg []byte) { _ = ep.Deliver(src, msg) }
	go srv.loop.Run()
	defer srv.loop.Close()

	cc, err := netwire.ListenUDP(cli.loop, cli.pool, clientMAC, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	cc.AddPeer(serverMAC, sc.LocalAddrPort())
	drv := transport.NewDriver(cli.loop, cc, serverMAC, cfg)
	cc.OnMessage = func(_ ethernet.MAC, msg []byte) { _ = drv.Deliver(msg) }
	ready := false
	cc.OnReady = func(ethernet.MAC) { ready = true }
	go cli.loop.Run()
	defer cli.loop.Close()

	handshake(t, cli, func() { cc.SendHello(serverMAC) }, &ready)
	blkRoundTrip(t, cli, drv, 1024)    // single chunk
	blkRoundTrip(t, cli, drv, 100<<10) // chunked across 4 datagrams
	cli.call(t, func() {
		if got := drv.Counters.Get("blk_completed"); got != 2 {
			t.Errorf("blk_completed = %d, want 2", got)
		}
	})
}

// TestUDPLossyRetransmit is the wall-clock retransmission proof: with
// injected datagram loss and corruption on both directions of a loopback
// socket pair, every block request still completes — recovered by genuine
// wall-clock timers — and the drop accounting shows the carrier really
// dropped frames.
func TestUDPLossyRetransmit(t *testing.T) {
	srv, cli := newCell(), newCell()
	serverMAC, clientMAC := ethernet.NewMAC(100), ethernet.NewMAC(1)
	cfg := udpConfig()

	sc, err := netwire.ListenUDP(srv.loop, srv.pool, serverMAC, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	sc.SetFault(netwire.LossFault(0.25, 0.05, 7))
	ep := serveEcho(srv.loop, sc, cfg)
	sc.OnMessage = func(src ethernet.MAC, msg []byte) { _ = ep.Deliver(src, msg) }
	go srv.loop.Run()
	defer srv.loop.Close()

	cc, err := netwire.ListenUDP(cli.loop, cli.pool, clientMAC, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	cc.SetFault(netwire.LossFault(0.25, 0.05, 11))
	cc.AddPeer(serverMAC, sc.LocalAddrPort())
	drv := transport.NewDriver(cli.loop, cc, serverMAC, cfg)
	cc.OnMessage = func(_ ethernet.MAC, msg []byte) { _ = drv.Deliver(msg) }
	ready := false
	cc.OnReady = func(ethernet.MAC) { ready = true }
	go cli.loop.Run()
	defer cli.loop.Close()

	handshake(t, cli, func() { cc.SendHello(serverMAC) }, &ready)
	for i := 0; i < 20; i++ {
		blkRoundTrip(t, cli, drv, 8<<10)
	}

	cli.call(t, func() {
		if got := drv.Counters.Get("blk_completed"); got != 20 {
			t.Errorf("blk_completed = %d, want 20", got)
		}
		if drv.Counters.Get("retransmits") == 0 {
			t.Error("no retransmits under 25% injected loss — wall-clock timers never fired")
		}
		if cc.Drops.Get(link.DropInjected) == 0 {
			t.Error("client carrier dropped nothing despite the injector")
		}
	})
}

func runTCPLoopback(t *testing.T, withTLS bool) {
	srv, cli := newCell(), newCell()
	serverMAC, clientMAC := ethernet.NewMAC(100), ethernet.NewMAC(1)
	cfg := transport.Config{InitialTimeout: 100 * sim.Millisecond}

	var srvConf, cliConf *tls.Config
	if withTLS {
		certPEM, keyPEM, err := netwire.SelfSignedCert()
		if err != nil {
			t.Fatal(err)
		}
		if srvConf, err = netwire.ServerTLSConfig(certPEM, keyPEM); err != nil {
			t.Fatal(err)
		}
		if cliConf, err = netwire.ClientTLSConfig(certPEM, "localhost"); err != nil {
			t.Fatal(err)
		}
	}

	sc, err := netwire.ListenTCP(srv.loop, srv.pool, serverMAC, "127.0.0.1:0", srvConf)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ep := serveEcho(srv.loop, sc, cfg)
	sc.OnMessage = func(src ethernet.MAC, msg []byte) { _ = ep.Deliver(src, msg) }
	go srv.loop.Run()
	defer srv.loop.Close()

	cc, err := netwire.DialTCP(cli.loop, cli.pool, clientMAC, sc.LocalAddrPort().String(), cliConf)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	drv := transport.NewDriver(cli.loop, cc, serverMAC, cfg)
	cc.OnMessage = func(_ ethernet.MAC, msg []byte) { _ = drv.Deliver(msg) }
	ready := false
	cc.OnReady = func(ethernet.MAC) { ready = true }
	go cli.loop.Run()
	defer cli.loop.Close()

	handshake(t, cli, func() { cc.SendHello(serverMAC) }, &ready)
	blkRoundTrip(t, cli, drv, 1024)
	blkRoundTrip(t, cli, drv, 300<<10) // several stream frames
	cli.call(t, func() {
		if got := drv.Counters.Get("retransmits"); got != 0 {
			t.Errorf("retransmits = %d on a reliable stream", got)
		}
	})
}

func TestTCPLoopbackBlk(t *testing.T)    { runTCPLoopback(t, false) }
func TestTCPTLSLoopbackBlk(t *testing.T) { runTCPLoopback(t, true) }

// TestSealDecodeNoAlloc guards the per-frame codec cost on the real-wire
// datapath.
func TestSealDecodeNoAlloc(t *testing.T) {
	src, dst := ethernet.NewMAC(1), ethernet.NewMAC(2)
	buf := make([]byte, netwire.PreambleSize+4096)
	allocs := testing.AllocsPerRun(200, func() {
		netwire.SealFrame(buf, netwire.KindData, src, dst)
		if _, _, err := netwire.DecodeFrame(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("seal+decode allocates %.1f per frame, want 0", allocs)
	}
}
