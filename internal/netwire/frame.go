// Package netwire carries §4.2 transport messages over real sockets. It is
// the wall-clock sibling of package link: a carrier implements the same
// frame-delivery contract as link.Wire — best-effort delivery of discrete
// frames between MAC-addressed endpoints, with every loss tallied in a
// link.DropStats — but the frames cross an operating-system socket instead
// of a simulated cable. A transport.Driver or transport.Endpoint runs over
// a carrier unmodified: the carrier is its Port, the carrier's Loop is its
// sim.Clock, and the shared bufpool.Pool still serves every buffer.
//
// Two carriers exist. UDP maps one transport message to one datagram, so
// the network may genuinely lose, duplicate, or reorder messages and the
// §4.5 retransmission machinery earns its keep against a real adversary
// (optionally sharpened by a deterministic link.TxFault injector at the
// send hook). TCP maps messages onto a length-prefixed stream — optionally
// TLS — where the kernel provides reliability and the transport's timers
// sit idle except under genuine stalls.
//
// Every frame on either carrier starts with a fixed 20-byte preamble that
// plays the role of the Ethernet header plus FCS in the simulated fabric:
// it names the source and destination MACs (so carriers can learn peer
// addresses the way a switch learns ports) and seals the whole frame under
// a CRC32 so in-flight corruption — injected or real — is detected and
// dropped at the receiver exactly like a simulated corrupt_fcs frame,
// leaving recovery to retransmission rather than delivering garbage.
package netwire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"vrio/internal/ethernet"
)

// Preamble layout (PreambleSize bytes, fixed):
//
//	[0:2)   magic 0x76 0x52 ("vR")
//	[2]     version (wireVersion)
//	[3]     kind
//	[4:10)  source MAC
//	[10:16) destination MAC
//	[16:20) CRC32-IEEE over bytes [0:16) and the payload, little-endian
const (
	PreambleSize = 20

	magic0      = 0x76
	magic1      = 0x52
	wireVersion = 1
)

// MaxDatagram is the largest UDP payload over IPv4 (65535 minus IP and UDP
// headers). A transport MaxChunk for the UDP carrier must keep
// PreambleSize + transport.HeaderSize + chunk within this bound.
const MaxDatagram = 65507

// MaxStreamFrame bounds one length-prefixed frame on the TCP carrier. A
// peer announcing a larger frame is feeding garbage (or an attack) and its
// stream is cut rather than buffered.
const MaxStreamFrame = 1 << 20

// Kind discriminates what a frame carries.
type Kind uint8

const (
	// KindData wraps one §4.2 transport message.
	KindData Kind = 1
	// KindHello announces a carrier to a peer; the peer learns the
	// source's address and answers with KindHelloAck.
	KindHello Kind = 2
	// KindHelloAck completes the hello handshake; receiving one means the
	// round trip works in both directions.
	KindHelloAck Kind = 3
)

// Preamble is the decoded frame envelope.
type Preamble struct {
	Kind Kind
	Src  ethernet.MAC
	Dst  ethernet.MAC
}

// Frame decode errors. ErrChecksum means the frame arrived but its bytes
// were damaged in flight (count it corrupt_fcs); everything else means the
// bytes never were a frame (count them runt).
var (
	ErrRunt     = errors.New("netwire: frame shorter than preamble")
	ErrMagic    = errors.New("netwire: bad preamble magic")
	ErrVersion  = errors.New("netwire: unsupported wire version")
	ErrKind     = errors.New("netwire: unknown frame kind")
	ErrChecksum = errors.New("netwire: frame checksum mismatch")
)

// SealFrame writes the preamble into b[:PreambleSize] and seals the
// checksum over the preamble and the payload already placed at
// b[PreambleSize:]. b must be at least PreambleSize long.
func SealFrame(b []byte, kind Kind, src, dst ethernet.MAC) {
	b[0], b[1], b[2], b[3] = magic0, magic1, wireVersion, byte(kind)
	copy(b[4:10], src[:])
	copy(b[10:16], dst[:])
	binary.LittleEndian.PutUint32(b[16:20], frameSum(b))
}

// frameSum computes the frame checksum: CRC32-IEEE over the first 16
// preamble bytes and the payload, skipping the checksum field itself.
func frameSum(b []byte) uint32 {
	sum := crc32.ChecksumIEEE(b[:16])
	return crc32.Update(sum, crc32.IEEETable, b[PreambleSize:])
}

// DecodeFrame validates one received frame and splits it into preamble and
// payload. The payload aliases b. Any error means the frame must be
// dropped; only ErrChecksum attests that a real frame was corrupted in
// flight.
func DecodeFrame(b []byte) (Preamble, []byte, error) {
	if len(b) < PreambleSize {
		return Preamble{}, nil, ErrRunt
	}
	if b[0] != magic0 || b[1] != magic1 {
		return Preamble{}, nil, ErrMagic
	}
	if b[2] != wireVersion {
		return Preamble{}, nil, ErrVersion
	}
	if binary.LittleEndian.Uint32(b[16:20]) != frameSum(b) {
		return Preamble{}, nil, ErrChecksum
	}
	var p Preamble
	p.Kind = Kind(b[3])
	if p.Kind < KindData || p.Kind > KindHelloAck {
		return Preamble{}, nil, ErrKind
	}
	copy(p.Src[:], b[4:10])
	copy(p.Dst[:], b[10:16])
	return p, b[PreambleSize:], nil
}
