package netwire_test

import (
	"testing"

	"vrio/internal/bufpool"
	"vrio/internal/ethernet"
	"vrio/internal/netwire"
	"vrio/internal/sim"
	"vrio/internal/transport"
)

// BenchmarkSealDecode measures the per-frame carrier overhead added on top
// of the transport message: preamble write, CRC32 seal, and the receive
// side's validation. This is the only work netwire adds to the §4.2 bytes;
// it must stay allocation-free (TestSealDecodeNoAlloc enforces that).
func BenchmarkSealDecode(b *testing.B) {
	src, dst := ethernet.NewMAC(1), ethernet.NewMAC(2)
	buf := make([]byte, netwire.PreambleSize+1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		netwire.SealFrame(buf, netwire.KindData, src, dst)
		if _, _, err := netwire.DecodeFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUDPLoopbackRoundtrip measures one 4 KiB block echo end to end
// over real loopback sockets: driver cell, UDP datagrams both ways, server
// endpoint cell. The steady-state number is the real-wire sibling of
// BenchmarkDatapathBlkRoundtrip; allocations settle to ~0/op once pools,
// timer shells, and reader scratch have warmed up.
func BenchmarkUDPLoopbackRoundtrip(b *testing.B) {
	cfg := transport.Config{MaxChunk: 32 << 10, InitialTimeout: 50 * sim.Millisecond}

	sLoop := netwire.NewLoop()
	sMAC := ethernet.NewMAC(2)
	srv, err := netwire.ListenUDP(sLoop, bufpool.New(), sMAC, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	var ep *transport.Endpoint
	srv.OnMessage = func(src ethernet.MAC, msg []byte) { _ = ep.Deliver(src, msg) }
	ep = transport.NewEndpoint(sLoop, srv, cfg)
	ep.BlkReq = func(src ethernet.MAC, h transport.Header, req *bufpool.Frame) {
		ep.RespondBlk(src, h, req.B)
		req.Release()
	}
	go sLoop.Run()
	defer sLoop.Close()
	defer srv.Close()

	cLoop := netwire.NewLoop()
	cli, err := netwire.ListenUDP(cLoop, bufpool.New(), ethernet.NewMAC(1), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	cli.AddPeer(sMAC, srv.LocalAddrPort())
	var drv *transport.Driver
	cli.OnMessage = func(_ ethernet.MAC, msg []byte) { _ = drv.Deliver(msg) }
	drv = transport.NewDriver(cLoop, cli, sMAC, cfg)
	go cLoop.Run()
	defer cLoop.Close()
	defer cli.Close()

	req := make([]byte, 4096)
	done := make(chan error, 1)
	complete := func(resp []byte, err error) { done <- err }
	submit := func() { drv.SendBlk(2, 1, req, complete) }
	roundtrip := func() {
		cLoop.Post(submit)
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		roundtrip()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundtrip()
	}
}
