package netwire

import (
	"crypto/tls"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"

	"vrio/internal/bufpool"
	"vrio/internal/ethernet"
	"vrio/internal/link"
)

// tcpScratch is the per-stream count of circulating receive buffers,
// sized for the common frame (header + one chunk) and grown on demand.
const (
	tcpScratch     = 4
	tcpScratchSize = 64 << 10
)

// writeFrame builds [4-byte big-endian length][sealed frame] in one pooled
// buffer and writes it with a single Write, so frames from one goroutine
// never interleave on the stream.
func writeFrame(pool *bufpool.Pool, conn net.Conn, kind Kind, src, dst ethernet.MAC, payload []byte) error {
	n := PreambleSize + len(payload)
	if n > MaxStreamFrame {
		panic(fmt.Sprintf("netwire: %d-byte message exceeds MaxStreamFrame (transport MaxChunk too large for the TCP carrier)", len(payload)))
	}
	buf := pool.GetRaw(4 + n)
	binary.BigEndian.PutUint32(buf, uint32(n))
	copy(buf[4+PreambleSize:], payload)
	SealFrame(buf[4:], kind, src, dst)
	_, err := conn.Write(buf)
	pool.PutRaw(buf)
	return err
}

// readFrames runs on a reader goroutine: it slices the stream into
// length-prefixed frames and posts each to the loop for sink. A malformed
// length poisons the whole stream (framing is lost), so the connection is
// cut and badFrame is posted for accounting. Returns when the stream or
// loop closes.
func readFrames(loop *Loop, conn net.Conn, free chan []byte, sink frameSink, badFrame func()) {
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n < PreambleSize || n > MaxStreamFrame {
			conn.Close()
			loop.post(work{fn: badFrame})
			return
		}
		buf := <-free
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(conn, buf); err != nil {
			free <- buf
			return
		}
		if !loop.post(work{sink: sink, frame: buf, recycle: free}) {
			return
		}
	}
}

func newScratch(n int) chan []byte {
	free := make(chan []byte, n)
	for i := 0; i < n; i++ {
		free <- make([]byte, tcpScratchSize)
	}
	return free
}

// TCPCarrier is the client end of one stream carrier: transport messages
// ride a length-prefixed TCP (optionally TLS) connection where the kernel
// provides delivery and ordering. All methods except Close belong to the
// loop goroutine.
type TCPCarrier struct {
	loop *Loop
	pool *bufpool.Pool
	mac  ethernet.MAC
	conn net.Conn
	free chan []byte

	// Callbacks and accounting as on UDPCarrier.
	OnMessage func(src ethernet.MAC, msg []byte)
	OnReady   func(src ethernet.MAC)

	Frames    uint64
	Delivered uint64
	Sent      uint64
	Drops     link.DropStats
}

// DialTCP connects to a listening TCP carrier at raddr. A non-nil tlsConf
// upgrades the stream to TLS (see ClientTLSConfig).
func DialTCP(loop *Loop, pool *bufpool.Pool, mac ethernet.MAC, raddr string, tlsConf *tls.Config) (*TCPCarrier, error) {
	conn, err := net.Dial("tcp", raddr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if tlsConf != nil {
		conn = tls.Client(conn, tlsConf)
	}
	c := &TCPCarrier{
		loop: loop,
		pool: pool,
		mac:  mac,
		conn: conn,
		free: newScratch(tcpScratch),
	}
	go readFrames(loop, conn, c.free, c, func() { c.Drops.Count(link.DropRunt) })
	return c, nil
}

// LocalMAC implements transport.Port.
func (c *TCPCarrier) LocalMAC() ethernet.MAC { return c.mac }

// BufPool implements transport.Pooler.
func (c *TCPCarrier) BufPool() *bufpool.Pool { return c.pool }

// Close shuts the stream down. Safe from any goroutine.
func (c *TCPCarrier) Close() error { return c.conn.Close() }

// SendHello announces this carrier; the server learns our MAC and acks.
func (c *TCPCarrier) SendHello(dst ethernet.MAC) {
	if err := writeFrame(c.pool, c.conn, KindHello, c.mac, dst, nil); err != nil {
		c.Drops.Count(link.DropNoRoute)
	}
}

// Send implements transport.Port. The single stream ignores routing: dst
// only names the peer inside the frame. A write error counts as no_route —
// the stream is gone and so is every message sent on it.
func (c *TCPCarrier) Send(dst ethernet.MAC, payload []byte) {
	if err := writeFrame(c.pool, c.conn, KindData, c.mac, dst, payload); err != nil {
		c.Drops.Count(link.DropNoRoute)
		return
	}
	c.Sent++
}

// handleFrame implements frameSink on the loop goroutine.
func (c *TCPCarrier) handleFrame(frame []byte, _ netip.AddrPort) {
	c.Frames++
	p, payload, err := DecodeFrame(frame)
	if err != nil {
		// TCP delivers bytes intact, so any decode failure is a framing
		// bug or a hostile peer, not line noise.
		c.Drops.Count(link.DropRunt)
		return
	}
	if p.Dst != c.mac && p.Dst != ethernet.Broadcast {
		c.Drops.Count(link.DropNoRoute)
		return
	}
	switch p.Kind {
	case KindHelloAck:
		if c.OnReady != nil {
			c.OnReady(p.Src)
		}
	case KindData:
		c.Delivered++
		if c.OnMessage == nil {
			return
		}
		msg := c.pool.GetRaw(len(payload))
		copy(msg, payload)
		c.OnMessage(p.Src, msg)
	}
}

// TCPServer is the listening end of the stream carrier: it accepts any
// number of client connections, learns which MAC speaks on which stream
// from the frames themselves, and routes Send by destination MAC — the
// same one-port-serves-all contract as the UDP carrier. All methods and
// callbacks except Close belong to the loop goroutine.
type TCPServer struct {
	loop    *Loop
	pool    *bufpool.Pool
	mac     ethernet.MAC
	ln      net.Listener
	tlsConf *tls.Config

	conns map[ethernet.MAC]*tcpConn

	// mu guards all (appended by the accept goroutine, swept by Close).
	mu  sync.Mutex
	all []net.Conn

	OnMessage func(src ethernet.MAC, msg []byte)
	OnHello   func(src ethernet.MAC)

	Frames    uint64
	Delivered uint64
	Sent      uint64
	Drops     link.DropStats
}

// tcpConn is one accepted stream; it implements frameSink so the loop can
// attribute frames to the connection they arrived on.
type tcpConn struct {
	srv   *TCPServer
	conn  net.Conn
	free  chan []byte
	mac   ethernet.MAC
	bound bool
}

// ListenTCP starts the server carrier on laddr. A non-nil tlsConf serves
// TLS (see ServerTLSConfig).
func ListenTCP(loop *Loop, pool *bufpool.Pool, mac ethernet.MAC, laddr string, tlsConf *tls.Config) (*TCPServer, error) {
	ln, err := net.Listen("tcp", laddr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{
		loop:    loop,
		pool:    pool,
		mac:     mac,
		ln:      ln,
		tlsConf: tlsConf,
		conns:   make(map[ethernet.MAC]*tcpConn),
	}
	go s.acceptLoop()
	return s, nil
}

// LocalMAC implements transport.Port.
func (s *TCPServer) LocalMAC() ethernet.MAC { return s.mac }

// BufPool implements transport.Pooler.
func (s *TCPServer) BufPool() *bufpool.Pool { return s.pool }

// LocalAddrPort reports the bound listener address.
func (s *TCPServer) LocalAddrPort() netip.AddrPort {
	return s.ln.Addr().(*net.TCPAddr).AddrPort()
}

// Close stops the listener and cuts every accepted stream. Safe from any
// goroutine.
func (s *TCPServer) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	for _, c := range s.all {
		c.Close()
	}
	s.all = nil
	s.mu.Unlock()
	return err
}

func (s *TCPServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		if s.tlsConf != nil {
			conn = tls.Server(conn, s.tlsConf)
		}
		s.mu.Lock()
		s.all = append(s.all, conn)
		s.mu.Unlock()
		cc := &tcpConn{srv: s, conn: conn, free: newScratch(tcpScratch)}
		go readFrames(s.loop, conn, cc.free, cc, func() { s.Drops.Count(link.DropRunt) })
	}
}

// Send implements transport.Port, routing to the stream whose peer
// announced dst. Unknown destinations and dead streams count as no_route.
func (s *TCPServer) Send(dst ethernet.MAC, payload []byte) {
	c := s.conns[dst]
	if c == nil {
		s.Drops.Count(link.DropNoRoute)
		return
	}
	if err := writeFrame(s.pool, c.conn, KindData, s.mac, dst, payload); err != nil {
		s.Drops.Count(link.DropNoRoute)
		return
	}
	s.Sent++
}

// handleFrame implements frameSink on the loop goroutine.
func (c *tcpConn) handleFrame(frame []byte, _ netip.AddrPort) {
	s := c.srv
	s.Frames++
	p, payload, err := DecodeFrame(frame)
	if err != nil {
		s.Drops.Count(link.DropRunt)
		return
	}
	if p.Dst != s.mac && p.Dst != ethernet.Broadcast {
		s.Drops.Count(link.DropNoRoute)
		return
	}
	if !c.bound || c.mac != p.Src {
		// Learn (or re-learn after a reconnect) which stream speaks for
		// this MAC; latest stream wins, like a switch's FIB.
		c.mac, c.bound = p.Src, true
		s.conns[p.Src] = c
	}
	switch p.Kind {
	case KindHello:
		if err := writeFrame(s.pool, c.conn, KindHelloAck, s.mac, p.Src, nil); err != nil {
			s.Drops.Count(link.DropNoRoute)
		}
		if s.OnHello != nil {
			s.OnHello(p.Src)
		}
	case KindData:
		s.Delivered++
		if s.OnMessage == nil {
			return
		}
		msg := s.pool.GetRaw(len(payload))
		copy(msg, payload)
		s.OnMessage(p.Src, msg)
	}
}
