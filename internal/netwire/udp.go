package netwire

import (
	"errors"
	"fmt"
	"net"
	"net/netip"

	"vrio/internal/bufpool"
	"vrio/internal/ethernet"
	"vrio/internal/link"
)

// udpScratch is how many receive buffers circulate between a UDP carrier's
// reader goroutine and the loop. It bounds frames in flight inside the
// process; the reader blocks (and the kernel socket buffer absorbs bursts)
// when the loop falls behind.
const udpScratch = 4

// UDPCarrier is the datagram carrier: one transport message per UDP
// datagram, so the real network — plus an optional injected link.TxFault —
// may lose, duplicate, or reorder messages, and §4.5 retransmission does
// the recovering. One carrier serves any number of peers through a single
// socket: destinations are learned from the source MAC of every valid
// incoming frame (the way a switch learns ports), or seeded with AddPeer.
//
// All methods and callbacks except Close belong to the loop goroutine.
type UDPCarrier struct {
	loop  *Loop
	pool  *bufpool.Pool
	mac   ethernet.MAC
	conn  *net.UDPConn
	peers map[ethernet.MAC]netip.AddrPort
	fault link.TxFault
	free  chan []byte

	// OnMessage receives each delivered transport message. The buffer is
	// loaned from the carrier's pool and ownership transfers to the
	// callback (transport Deliver recycles it).
	OnMessage func(src ethernet.MAC, msg []byte)
	// OnHello fires when a peer's hello arrives (after the ack is sent).
	OnHello func(src ethernet.MAC)
	// OnReady fires when a peer acks our hello: the round trip works.
	OnReady func(src ethernet.MAC)

	// Wire accounting, mirroring link.Wire's.
	Frames    uint64 // frames handed to the loop by the reader
	Delivered uint64 // data frames delivered to OnMessage
	Sent      uint64 // frames written to the socket
	Corrupted uint64 // frames mutated in flight by the injector
	Drops     link.DropStats
}

// ListenUDP opens the carrier's socket on laddr (e.g. "127.0.0.1:0") and
// starts its reader. mac is this carrier's address on the vRIO channel;
// pool serves every buffer and must belong to the same loop.
func ListenUDP(loop *Loop, pool *bufpool.Pool, mac ethernet.MAC, laddr string) (*UDPCarrier, error) {
	addr, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	c := &UDPCarrier{
		loop:  loop,
		pool:  pool,
		mac:   mac,
		conn:  conn,
		peers: make(map[ethernet.MAC]netip.AddrPort),
		free:  make(chan []byte, udpScratch),
	}
	for i := 0; i < udpScratch; i++ {
		c.free <- make([]byte, MaxDatagram)
	}
	go c.readLoop()
	return c, nil
}

// LocalMAC implements transport.Port.
func (c *UDPCarrier) LocalMAC() ethernet.MAC { return c.mac }

// BufPool implements transport.Pooler.
func (c *UDPCarrier) BufPool() *bufpool.Pool { return c.pool }

// LocalAddrPort reports the bound socket address (the ephemeral port after
// ListenUDP with ":0").
func (c *UDPCarrier) LocalAddrPort() netip.AddrPort {
	return c.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// AddPeer seeds the MAC-to-address table; the first contact with a peer
// must be seeded, after which incoming frames keep the table learned.
func (c *UDPCarrier) AddPeer(mac ethernet.MAC, addr netip.AddrPort) { c.peers[mac] = addr }

// SetFault attaches a deterministic injector to the transmit hook, exactly
// where link.Wire applies its TxFault: after the frame is sealed, so a
// corrupting injector is caught by the receiver's checksum.
func (c *UDPCarrier) SetFault(f link.TxFault) { c.fault = f }

// Close shuts the socket down; the reader goroutine exits. Safe from any
// goroutine.
func (c *UDPCarrier) Close() error { return c.conn.Close() }

// SendHello announces this carrier to dst (which must be seeded with
// AddPeer). The peer answers with an ack that fires OnReady.
func (c *UDPCarrier) SendHello(dst ethernet.MAC) { c.sendEmpty(KindHello, dst) }

// Send implements transport.Port: one message, one datagram. The payload
// is only borrowed. An unknown destination or an injected loss is counted
// in Drops, never reported to the caller — loss is the channel's business,
// recovery the transport's.
func (c *UDPCarrier) Send(dst ethernet.MAC, payload []byte) {
	addr, ok := c.peers[dst]
	if !ok {
		c.Drops.Count(link.DropNoRoute)
		return
	}
	n := PreambleSize + len(payload)
	if n > MaxDatagram {
		panic(fmt.Sprintf("netwire: %d-byte message exceeds one datagram (transport MaxChunk too large for the UDP carrier)", len(payload)))
	}
	buf := c.pool.GetRaw(n)
	copy(buf[PreambleSize:], payload)
	SealFrame(buf, KindData, c.mac, dst)
	c.xmit(addr, buf)
	c.pool.PutRaw(buf)
}

func (c *UDPCarrier) sendEmpty(kind Kind, dst ethernet.MAC) {
	addr, ok := c.peers[dst]
	if !ok {
		c.Drops.Count(link.DropNoRoute)
		return
	}
	buf := c.pool.GetRaw(PreambleSize)
	SealFrame(buf, kind, c.mac, dst)
	c.xmit(addr, buf)
	c.pool.PutRaw(buf)
}

// xmit applies the fault injector and writes the sealed frame.
func (c *UDPCarrier) xmit(addr netip.AddrPort, buf []byte) {
	if c.fault != nil {
		switch v := c.fault.Apply(buf); v.Action {
		case link.FaultDrop:
			c.Drops.Count(link.DropInjected)
			return
		case link.FaultCorrupt:
			// The injector flipped bits after the seal; the receiver's
			// checksum will catch it and drop the frame as corrupt_fcs.
			c.Corrupted++
		}
		// Delay verdicts (Extra) are ignored: a real network supplies its
		// own jitter, and honoring them would mean copying the frame.
	}
	c.Sent++
	// Send errors are deliberately dropped on the floor: a datagram socket
	// can fail transiently (full buffers, ICMP backpressure) and the
	// transport's retransmission already covers every lost frame.
	_, _ = c.conn.WriteToUDPAddrPort(buf, addr)
}

// readLoop runs on the carrier's reader goroutine, recycling scratch
// buffers through c.free.
func (c *UDPCarrier) readLoop() {
	for {
		buf := <-c.free
		n, from, err := c.conn.ReadFromUDPAddrPort(buf[:cap(buf)])
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient (e.g. a connection-refused bounce surfaced by the
			// kernel): recycle the buffer and keep reading.
			c.free <- buf
			continue
		}
		if !c.loop.post(work{sink: c, frame: buf[:n], from: from, recycle: c.free}) {
			return // loop closed
		}
	}
}

// handleFrame implements frameSink on the loop goroutine.
func (c *UDPCarrier) handleFrame(frame []byte, from netip.AddrPort) {
	c.Frames++
	p, payload, err := DecodeFrame(frame)
	switch {
	case errors.Is(err, ErrChecksum):
		c.Drops.Count(link.DropCorruptFCS)
		return
	case err != nil:
		c.Drops.Count(link.DropRunt)
		return
	}
	if p.Dst != c.mac && p.Dst != ethernet.Broadcast {
		c.Drops.Count(link.DropNoRoute)
		return
	}
	c.peers[p.Src] = from
	switch p.Kind {
	case KindHello:
		c.sendEmpty(KindHelloAck, p.Src)
		if c.OnHello != nil {
			c.OnHello(p.Src)
		}
	case KindHelloAck:
		if c.OnReady != nil {
			c.OnReady(p.Src)
		}
	case KindData:
		c.Delivered++
		if c.OnMessage == nil {
			return
		}
		msg := c.pool.GetRaw(len(payload))
		copy(msg, payload)
		c.OnMessage(p.Src, msg)
	}
}
