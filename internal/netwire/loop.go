package netwire

import (
	"net/netip"
	"sync"
	"time"

	"vrio/internal/sim"
)

// Loop is the run loop that makes real-socket carriers safe for the
// single-threaded transport stack. Everything in the simulation's world —
// driver, endpoint, buffer pool — assumes one goroutine per cell; a Loop
// recreates that cell around wall-clock sockets by serializing every
// received frame, every timer expiry, and every posted call onto the one
// goroutine running Run. Socket readers and the runtime's timer callbacks
// only ever post work; they never touch transport state.
//
// Loop implements sim.Clock: Now is wall time since the loop was created
// (as sim.Time nanoseconds) and AfterFunc arms a real timer whose callback
// is delivered on the loop goroutine. Timers are pooled and re-armed with
// Reset, so the steady-state retransmission path allocates nothing.
type Loop struct {
	start time.Time
	work  chan work
	quit  chan struct{}
	once  sync.Once

	// freeTimers recycles wallTimer shells; loop goroutine only.
	freeTimers []*wallTimer

	// Fired counts timer callbacks executed; Posted counts external Post
	// calls accepted. Loop goroutine / informational.
	Fired uint64
}

// work is one unit queued to the loop goroutine, discriminated by which
// field is set: fn (a posted call), wt (a timer expiry), else a received
// frame for sink. Frames travel by value through the channel, so the
// steady-state receive path allocates nothing.
type work struct {
	fn      func()
	wt      *wallTimer
	sink    frameSink
	frame   []byte
	from    netip.AddrPort
	recycle chan []byte
}

// frameSink consumes one received frame on the loop goroutine. The frame
// buffer is only borrowed for the duration of the call; the loop recycles
// it to the reader afterwards.
type frameSink interface {
	handleFrame(frame []byte, from netip.AddrPort)
}

// NewLoop returns a loop with its clock at zero. Call Run on the goroutine
// that will own the transport stack.
func NewLoop() *Loop {
	return &Loop{
		start: time.Now(),
		work:  make(chan work, 512),
		quit:  make(chan struct{}),
	}
}

// Now reports wall time since the loop was created, in sim.Time
// nanoseconds (time.Since uses the monotonic clock).
func (l *Loop) Now() sim.Time { return sim.Time(time.Since(l.start)) }

// Run processes work until Close. It must be called on exactly one
// goroutine; that goroutine becomes the cell every attached carrier and
// transport belongs to.
func (l *Loop) Run() {
	for {
		select {
		case <-l.quit:
			return
		case w := <-l.work:
			l.dispatch(w)
		}
	}
}

// Close makes Run return. Work already queued may be discarded; callers
// wanting a graceful drain quiesce their transports first (see
// cmd/vrio-loadgen). Safe to call from any goroutine, more than once.
func (l *Loop) Close() { l.once.Do(func() { close(l.quit) }) }

// Post runs fn on the loop goroutine. It reports false when the loop is
// closed (fn will never run). Post must not be called from the loop
// goroutine itself: with the queue full it would deadlock — loop-side code
// just calls fn directly.
func (l *Loop) Post(fn func()) bool { return l.post(work{fn: fn}) }

func (l *Loop) post(w work) bool {
	select {
	case l.work <- w:
		return true
	case <-l.quit:
		return false
	}
}

func (l *Loop) dispatch(w work) {
	switch {
	case w.fn != nil:
		w.fn()
	case w.wt != nil:
		l.fire(w.wt)
	default:
		w.sink.handleFrame(w.frame, w.from)
		if w.recycle != nil {
			w.recycle <- w.frame[:cap(w.frame)]
		}
	}
}

// wallTimer backs one Loop timer. All fields are owned by the loop
// goroutine; the runtime callback created once per shell only posts the
// shell, it reads nothing. Stale posts — a fire racing a Stop or a Reset,
// or surviving into the shell's next incarnation off the free list — are
// disarmed by the armed flag and the deadline re-check in fire, so a
// callback runs exactly once, at or after its deadline, or never once
// stopped.
type wallTimer struct {
	loop     *Loop
	t        *time.Timer
	fn       func()
	deadline int64 // ns on the loop clock
	armed    bool
}

// Stop implements sim.ExternalTimer. Loop goroutine only.
func (wt *wallTimer) Stop() bool {
	if !wt.armed {
		return false
	}
	wt.armed = false
	wt.fn = nil
	wt.t.Stop()
	wt.loop.freeTimers = append(wt.loop.freeTimers, wt)
	return true
}

// AfterFunc arms fn to run on the loop goroutine d nanoseconds from now.
// Part of sim.Clock; call on the loop goroutine only.
func (l *Loop) AfterFunc(d sim.Time, fn func()) sim.TimerID {
	if fn == nil {
		panic("netwire: AfterFunc with nil fn")
	}
	if d < 0 {
		d = 0
	}
	var wt *wallTimer
	if n := len(l.freeTimers); n > 0 {
		wt = l.freeTimers[n-1]
		l.freeTimers[n-1] = nil
		l.freeTimers = l.freeTimers[:n-1]
	} else {
		wt = &wallTimer{loop: l}
	}
	wt.fn = fn
	wt.armed = true
	wt.deadline = int64(l.Now()) + int64(d)
	if wt.t == nil {
		wt.t = time.AfterFunc(time.Duration(d), func() { l.post(work{wt: wt}) })
	} else {
		wt.t.Reset(time.Duration(d))
	}
	return sim.ExternalTimerID(wt)
}

// CancelTimer disarms a timer armed by AfterFunc. Part of sim.Clock.
func (l *Loop) CancelTimer(id sim.TimerID) {
	if t := id.External(); t != nil {
		t.Stop()
	}
}

// fire handles one posted timer expiry on the loop goroutine.
func (l *Loop) fire(wt *wallTimer) {
	if !wt.armed {
		return // stopped, or a stale post from a previous incarnation
	}
	if now := int64(l.Now()); now < wt.deadline {
		// A stale post for a shell since re-armed: put the real deadline
		// back and wait it out.
		wt.t.Reset(time.Duration(wt.deadline - now))
		return
	}
	wt.armed = false
	fn := wt.fn
	wt.fn = nil
	l.freeTimers = append(l.freeTimers, wt)
	l.Fired++
	fn()
}

var _ sim.Clock = (*Loop)(nil)
