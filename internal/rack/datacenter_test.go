package rack

import (
	"testing"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

// dcFabric builds a 2-rack fabric with 2 IOhosts per rack and RR traffic on
// every guest (heartbeats need nothing, but rebalance reads want load).
func dcFabric(t *testing.T) (*cluster.Fabric, [][]cluster.Measurable) {
	t.Helper()
	f, err := cluster.BuildFabric(cluster.FabricSpec{
		Rack: cluster.Spec{
			Model: core.ModelVRIO, VMHosts: 1, VMsPerHost: 2,
			NumIOhosts: 2, StationPerVM: true, NoJitter: true, Seed: 11,
		},
		NumRacks: 2,
	})
	if err != nil {
		t.Fatalf("BuildFabric: %v", err)
	}
	perRack := make([][]cluster.Measurable, len(f.Racks))
	for r, tb := range f.Racks {
		for g, guest := range tb.Guests {
			workload.InstallRRServer(guest, tb.P.NetperfRRProcessCost)
			rr := workload.NewRR(tb.StationFor(g), guest.MAC(), 16)
			rr.Start()
			perRack[r] = append(perRack[r], &rr.Results)
		}
	}
	return f, perRack
}

// TestDatacenterIntraRackRehome: an IOhost failure in one rack is detected
// and healed entirely inside that rack; the other rack's controller never
// acts.
func TestDatacenterIntraRackRehome(t *testing.T) {
	f, perRack := dcFabric(t)
	defer f.Close()
	d := NewDatacenter(f, Config{HeartbeatInterval: sim.Millisecond / 2})
	d.Start()
	f.Racks[1].Eng.At(5*sim.Millisecond, func() { f.Racks[1].IOHyps[0].Fail() })
	f.RunMeasured(sim.Millisecond, 19*sim.Millisecond, 2, perRack)

	if got := d.Controllers[1].Counters.Get("detections"); got != 1 {
		t.Fatalf("rack 1 detections = %d, want 1", got)
	}
	if got := d.Controllers[0].Counters.Get("detections"); got != 0 {
		t.Fatalf("rack 0 detected a failure it cannot see (%d)", got)
	}
	// Every re-home stayed inside rack 1, onto its surviving IOhost.
	rehomed := false
	for _, e := range d.Events() {
		if e.Kind != EventRehome {
			continue
		}
		rehomed = true
		if e.Rack != 1 {
			t.Fatalf("re-home recorded in rack %d, want 1", e.Rack)
		}
		if e.Dst != 1 {
			t.Fatalf("re-home destination IOhost %d, want the rack's survivor (1)", e.Dst)
		}
	}
	if !rehomed {
		t.Fatal("no re-home events recorded")
	}
	for vm, io := range f.Racks[1].ClientIOhost {
		if io != 1 {
			t.Fatalf("rack 1 guest %d still on dead IOhost %d", vm, io)
		}
	}
	if dark := d.DarkRacks(); len(dark) != 0 {
		t.Fatalf("DarkRacks = %v, want none", dark)
	}
}

// TestDatacenterDarkRack: when every IOhost in a rack dies, the controller
// records the rack going dark instead of silently giving up.
func TestDatacenterDarkRack(t *testing.T) {
	f, perRack := dcFabric(t)
	defer f.Close()
	d := NewDatacenter(f, Config{HeartbeatInterval: sim.Millisecond / 2})
	d.Start()
	f.Racks[0].Eng.At(4*sim.Millisecond, func() {
		f.Racks[0].IOHyps[0].Fail()
		f.Racks[0].IOHyps[1].Fail()
	})
	f.RunMeasured(sim.Millisecond, 19*sim.Millisecond, 2, perRack)

	if dark := d.DarkRacks(); len(dark) != 1 || dark[0] != 0 {
		t.Fatalf("DarkRacks = %v, want [0]", dark)
	}
	if d.Counter("rack_dark") == 0 {
		t.Fatal("no rack_dark counter increments")
	}
	sawDark := false
	for _, e := range d.Events() {
		if e.Kind == EventRackDark && e.Rack == 0 {
			sawDark = true
		}
	}
	if !sawDark {
		t.Fatal("no EventRackDark in the merged log")
	}
	// Rack 1 is untouched and still fully alive.
	if got := d.Controllers[1].AliveIOhosts(); got != 2 {
		t.Fatalf("rack 1 alive IOhosts = %d, want 2", got)
	}
}

// TestDatacenterEventOrderDeterministic: the merged log is byte-identical
// across worker counts (the same property the fabric equivalence test
// enforces for the datapath, applied to the control plane).
func TestDatacenterEventOrderDeterministic(t *testing.T) {
	run := func(workers int) []RackEvent {
		f, perRack := dcFabric(t)
		defer f.Close()
		d := NewDatacenter(f, Config{HeartbeatInterval: sim.Millisecond / 2})
		d.Start()
		for r := range f.Racks {
			r := r
			f.Racks[r].Eng.At(5*sim.Millisecond, func() { f.Racks[r].IOHyps[0].Fail() })
		}
		f.RunMeasured(sim.Millisecond, 19*sim.Millisecond, workers, perRack)
		return d.Events()
	}
	serial := run(1)
	if len(serial) == 0 {
		t.Fatal("no events to compare")
	}
	parallel := run(3)
	if len(parallel) != len(serial) {
		t.Fatalf("event count diverged: %d vs %d", len(parallel), len(serial))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}
