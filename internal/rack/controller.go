package rack

import (
	"fmt"

	"vrio/internal/cluster"
	"vrio/internal/sim"
	"vrio/internal/stats"
	"vrio/internal/trace"
)

// Config tunes the control loops. Zero values take the documented defaults.
type Config struct {
	// HeartbeatInterval is the failure-detector probe period (default
	// 500µs of sim time).
	HeartbeatInterval sim.Time
	// MissThreshold consecutive unanswered probes declare an IOhost dead
	// (default 3). A crash is therefore detected within
	// MissThreshold*HeartbeatInterval of the first missed probe — the
	// bounded detection window.
	MissThreshold int
	// RebalanceInterval is the load-check period; 0 disables rebalancing.
	RebalanceInterval sim.Time
	// ImbalanceRatio triggers a device migration when the busiest IOhost's
	// busy-time delta over the last window exceeds ImbalanceRatio times the
	// least busy survivor's (default 2.0).
	ImbalanceRatio float64
	// CooldownTicks is the hysteresis: after a move the rebalancer sits out
	// this many windows so the move's effect shows up in the busy-time
	// deltas before another is considered (default 2).
	CooldownTicks int
}

func (c *Config) defaults() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = sim.Millisecond / 2
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 3
	}
	if c.ImbalanceRatio <= 0 {
		c.ImbalanceRatio = 2.0
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 2
	}
}

// EventKind labels a control-plane action.
type EventKind int

const (
	// EventDetect: the failure detector declared an IOhost dead.
	EventDetect EventKind = iota
	// EventRehome: a dead IOhost's guest was re-registered on a survivor.
	EventRehome
	// EventRebalance: the hottest guest moved off the busiest IOhost.
	EventRebalance
	// EventRackDark: an IOhost died with no surviving IOhost in the rack
	// to re-home onto — the rack's guests have lost remote I/O service.
	EventRackDark
)

func (k EventKind) String() string {
	switch k {
	case EventDetect:
		return "detect"
	case EventRehome:
		return "rehome"
	case EventRebalance:
		return "rebalance"
	case EventRackDark:
		return "rack_dark"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one control-plane action, timestamped in sim time.
type Event struct {
	T      sim.Time
	Kind   EventKind
	IOhost int // the dead IOhost (detect/rehome) or the move's source
	VM     int // affected guest; -1 for detections
	Dst    int // destination IOhost; -1 for detections
}

// Controller is the rack-scale control plane: a heartbeat failure detector
// and an optional metrics-driven rebalancer over a multi-IOhost testbed.
// Create at most one per testbed (it registers "rack" gauges in the
// testbed's metrics registry), then Start it before running the engine.
type Controller struct {
	tb  *cluster.Testbed
	cfg Config

	alive      []bool
	misses     []int
	lastBusy   []float64
	lastFrames []float64
	cooldown   int
	stops      []func()

	// The rebalance policy reads exactly one gauge per IOhost (sidecore
	// busy time) and two per guest (VF frame counts). The handles are
	// resolved once here, and the per-window delta slices are reused, so a
	// tick costs a handful of gauge reads — not a name-formatting pass and
	// registry lookup per component, re-allocated every window.
	busyMetrics []*trace.Metric
	vfMetrics   [][2]*trace.Metric
	busyDelta   []float64
	frameDelta  []float64

	// Events is the ordered control-plane action log.
	Events []Event
	// Counters: "heartbeats", "heartbeat_misses", "detections", "rehomes",
	// "rebalances".
	Counters stats.Counters
}

// New wires a controller over tb's IOhosts and registers its gauges.
func New(tb *cluster.Testbed, cfg Config) *Controller {
	if tb.IOHyp == nil {
		panic("rack: the controller requires a vRIO testbed")
	}
	cfg.defaults()
	c := &Controller{
		tb:         tb,
		cfg:        cfg,
		alive:      make([]bool, len(tb.IOHyps)),
		misses:     make([]int, len(tb.IOHyps)),
		lastBusy:   make([]float64, len(tb.IOHyps)),
		lastFrames: make([]float64, len(tb.VRIOClients)),
		busyDelta:  make([]float64, len(tb.IOHyps)),
		frameDelta: make([]float64, len(tb.VRIOClients)),
	}
	for i := range tb.IOHyps {
		c.busyMetrics = append(c.busyMetrics, tb.Metrics.Get(cluster.IOhypComponent(i), "busy_ns"))
	}
	for vm := range tb.VRIOClients {
		comp := fmt.Sprintf("vm%d-vf", vm)
		c.vfMetrics = append(c.vfMetrics, [2]*trace.Metric{
			tb.Metrics.Get(comp, "rx_frames"), tb.Metrics.Get(comp, "tx_frames"),
		})
	}
	for i := range c.alive {
		c.alive[i] = true
	}
	r := tb.Metrics
	r.Gauge("rack", "alive_iohosts", func() float64 { return float64(c.AliveIOhosts()) })
	for _, name := range []string{"heartbeat_misses", "detections", "rehomes", "rebalances"} {
		name := name
		r.Gauge("rack", name, func() float64 { return float64(c.Counters.Get(name)) })
	}
	return c
}

// Start arms the heartbeat (and, when configured, rebalance) timers on the
// testbed's engine.
func (c *Controller) Start() {
	c.stops = append(c.stops, c.tb.Eng.Ticker(c.cfg.HeartbeatInterval, c.heartbeatTick))
	if c.cfg.RebalanceInterval > 0 {
		c.stops = append(c.stops, c.tb.Eng.Ticker(c.cfg.RebalanceInterval, c.rebalanceTick))
	}
}

// Stop cancels the controller's timers.
func (c *Controller) Stop() {
	for _, stop := range c.stops {
		stop()
	}
	c.stops = nil
}

// AliveIOhosts counts IOhosts the failure detector still believes in.
func (c *Controller) AliveIOhosts() int {
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	return n
}

// Down reports whether the detector has declared IOhost i dead.
func (c *Controller) Down(i int) bool { return !c.alive[i] }

// heartbeatTick probes every IOhost believed alive. A live I/O hypervisor
// answers immediately; a crashed one (§4.6 Fail) answers nothing, ever, so
// each tick past the crash is a missed probe. An IOhost inside an injected
// worker stall (fault layer) also misses probes — its sidecores are pinned
// and cannot answer. Stalls shorter than MissThreshold×HeartbeatInterval
// clear the miss count on recovery; longer ones are declared dead, the
// timeout detector's inherent false positive.
func (c *Controller) heartbeatTick() {
	c.Counters.Inc("heartbeats", 1)
	for i, h := range c.tb.IOHyps {
		if !c.alive[i] {
			continue
		}
		if !h.Failed() && !h.Stalled() {
			c.misses[i] = 0
			continue
		}
		c.misses[i]++
		c.Counters.Inc("heartbeat_misses", 1)
		c.tb.Flight.Record(c.tb.Eng.Now(), "hb_miss", "iohost", uint64(i))
		if c.misses[i] >= c.cfg.MissThreshold {
			c.declareDead(i)
		}
	}
}

// declareDead records the detection and re-homes every guest the dead
// IOhost served onto the least-loaded survivors — the automatic version of
// the testbed's manual FailOverIOhost.
func (c *Controller) declareDead(i int) {
	c.alive[i] = false
	c.Counters.Inc("detections", 1)
	c.logEvent(Event{T: c.tb.Eng.Now(), Kind: EventDetect, IOhost: i, VM: -1, Dst: -1})
	// Distributed volumes react to the same detection: every volume router
	// marks the host's replicas dead and starts rebuilding them onto
	// survivors. Inert when the testbed has no volumes.
	c.tb.IOhostDied(i)
	for vm, io := range c.tb.ClientIOhost {
		if io != i {
			continue
		}
		dst := c.leastLoadedAlive()
		if dst < 0 {
			// No survivors: the rack is dark. Recorded once, loudly — a
			// datacenter tier can only restore service by migrating the
			// guests to another rack, not by re-homing within this one.
			c.Counters.Inc("rack_dark", 1)
			c.logEvent(Event{T: c.tb.Eng.Now(), Kind: EventRackDark, IOhost: i, VM: -1, Dst: -1})
			return
		}
		c.tb.RehomeClient(vm, dst)
		c.Counters.Inc("rehomes", 1)
		c.logEvent(Event{T: c.tb.Eng.Now(), Kind: EventRehome, IOhost: i, VM: vm, Dst: dst})
	}
}

// logEvent appends a control-plane event and mirrors it into the rack's
// flight recorder, so an anomaly dump shows the detector/re-homing sequence
// that led up to it.
func (c *Controller) logEvent(e Event) {
	c.Events = append(c.Events, e)
	c.tb.Flight.Record(e.T, "rack_event", e.Kind.String(), uint64(e.IOhost))
}

// metricValue reads a cached gauge handle, tolerating metrics a model
// variant never registered (same contract as Registry.Value's 0 default).
func metricValue(m *trace.Metric) float64 {
	if m == nil {
		return 0
	}
	return m.Value()
}

// leastLoadedAlive picks the surviving IOhost with the fewest placed
// guests (ties to the lowest index, keeping the choice deterministic).
func (c *Controller) leastLoadedAlive() int {
	counts := make([]int, len(c.tb.IOHyps))
	for _, io := range c.tb.ClientIOhost {
		counts[io]++
	}
	best := -1
	for i := range c.tb.IOHyps {
		if !c.alive[i] {
			continue
		}
		if best < 0 || counts[i] < counts[best] {
			best = i
		}
	}
	return best
}

// rebalanceTick reads each IOhost's sidecore busy time through the metrics
// registry, and — outside the post-move cooldown — migrates the busiest
// IOhost's hottest device (by VF frame deltas) to the least busy survivor
// when the busy-time deltas differ by more than ImbalanceRatio.
func (c *Controller) rebalanceTick() {
	tb := c.tb
	busyDelta, frameDelta := c.busyDelta, c.frameDelta
	for i := range tb.IOHyps {
		busy := metricValue(c.busyMetrics[i])
		busyDelta[i] = busy - c.lastBusy[i]
		c.lastBusy[i] = busy
	}
	for vm := range tb.VRIOClients {
		f := metricValue(c.vfMetrics[vm][0]) + metricValue(c.vfMetrics[vm][1])
		frameDelta[vm] = f - c.lastFrames[vm]
		c.lastFrames[vm] = f
	}
	if c.cooldown > 0 {
		c.cooldown--
		return
	}
	hot, cold := -1, -1
	for i := range tb.IOHyps {
		if !c.alive[i] {
			continue
		}
		if hot < 0 || busyDelta[i] > busyDelta[hot] {
			hot = i
		}
		if cold < 0 || busyDelta[i] < busyDelta[cold] {
			cold = i
		}
	}
	if hot < 0 || hot == cold {
		return
	}
	if busyDelta[hot] <= c.cfg.ImbalanceRatio*busyDelta[cold] {
		return
	}
	// Never empty an IOhost for balance, and move the single hottest guest
	// so one window's feedback covers one change.
	hotGuests, pick := 0, -1
	for vm, io := range tb.ClientIOhost {
		if io != hot {
			continue
		}
		hotGuests++
		if tb.VRIOClients[vm].Paused() {
			continue // mid-migration; let the blackout finish first
		}
		if pick < 0 || frameDelta[vm] > frameDelta[pick] {
			pick = vm
		}
	}
	if hotGuests < 2 || pick < 0 {
		return
	}
	tb.RehomeClient(pick, cold)
	c.Counters.Inc("rebalances", 1)
	c.logEvent(Event{T: tb.Eng.Now(), Kind: EventRebalance, IOhost: hot, VM: pick, Dst: cold})
	c.cooldown = c.cfg.CooldownTicks
}
