// Package rack is the rack-scale control plane over a multi-IOhost vRIO
// testbed (cluster.Spec.NumIOhosts > 1): build-time device placement
// policies, a heartbeat failure detector that automatically re-homes a dead
// IOhost's devices onto the survivors (§4.6 without the manual failover
// call), and a metrics-driven rebalancer that migrates the hottest device
// off the busiest IOhost (§5 "Load Imbalance" turned into a feedback loop).
// Everything runs on the simulation's own timers and reads the testbed's
// trace.Registry gauges, so a controlled rack stays deterministic per seed.
package rack

import "fmt"

// Policy assigns each IOclient's devices to an IOhost at build time. Place
// is called once per guest in build order (host-major global vm index), so
// stateful policies see a deterministic call sequence.
type Policy interface {
	Name() string
	// Place returns the IOhost in [0, numIOhosts) for guest vm (global
	// index) living on VMhost host.
	Place(host, vm, numIOhosts int) int
}

// Placement adapts a Policy to cluster.Spec.Placement.
func Placement(p Policy, numIOhosts int) func(host, vm int) int {
	return func(host, vm int) int { return p.Place(host, vm, numIOhosts) }
}

// Static places every device on one IOhost — the degenerate policy that
// reproduces the single-IOhost rack, and the worst case the rebalancer must
// heal.
type Static int

func (s Static) Name() string { return fmt.Sprintf("static%d", int(s)) }

func (s Static) Place(_, _, numIOhosts int) int {
	if int(s) < 0 || int(s) >= numIOhosts {
		panic(fmt.Sprintf("rack: Static(%d) out of range [0,%d)", int(s), numIOhosts))
	}
	return int(s)
}

// RoundRobin spreads devices across IOhosts in guest build order.
type RoundRobin struct{ next int }

func (r *RoundRobin) Name() string { return "round-robin" }

func (r *RoundRobin) Place(_, _, numIOhosts int) int {
	io := r.next % numIOhosts
	r.next++
	return io
}

// LeastLoaded places each device on the IOhost with the least accumulated
// weight so far. Weight, if set, estimates a guest's load (e.g. from a
// capacity plan); nil weights every guest equally, which degenerates to
// round-robin-like spreading but tolerates uneven weights.
type LeastLoaded struct {
	Weight func(host, vm int) float64
	load   []float64
}

func (l *LeastLoaded) Name() string { return "least-loaded" }

func (l *LeastLoaded) Place(host, vm, numIOhosts int) int {
	if len(l.load) < numIOhosts {
		l.load = append(l.load, make([]float64, numIOhosts-len(l.load))...)
	}
	best := 0
	for i := 1; i < numIOhosts; i++ {
		if l.load[i] < l.load[best] {
			best = i
		}
	}
	w := 1.0
	if l.Weight != nil {
		w = l.Weight(host, vm)
	}
	l.load[best] += w
	return best
}

// Affinity layers placement constraints over a base policy: Pins force a
// guest onto a specific IOhost; guests sharing an anti-affinity Group avoid
// each other's IOhosts while unclaimed ones remain (e.g. the two replicas
// of a service should not lose their devices to a single IOhost crash).
type Affinity struct {
	Base   Policy         // nil means LeastLoaded
	Pins   map[int]int    // global vm index -> IOhost
	Groups map[int]string // global vm index -> anti-affinity group
	used   map[string][]bool
}

func (a *Affinity) Name() string { return "affinity" }

func (a *Affinity) Place(host, vm, numIOhosts int) int {
	if a.Base == nil {
		a.Base = &LeastLoaded{}
	}
	if io, ok := a.Pins[vm]; ok {
		if io < 0 || io >= numIOhosts {
			panic(fmt.Sprintf("rack: pin for vm %d out of range: %d", vm, io))
		}
		return io
	}
	if g, ok := a.Groups[vm]; ok {
		if a.used == nil {
			a.used = make(map[string][]bool)
		}
		taken := a.used[g]
		if taken == nil {
			taken = make([]bool, numIOhosts)
			a.used[g] = taken
		}
		io := a.Base.Place(host, vm, numIOhosts)
		if taken[io] {
			// The base's choice collides with a groupmate: take the first
			// IOhost the group hasn't claimed, if any remains.
			for i := 0; i < numIOhosts; i++ {
				if !taken[i] {
					io = i
					break
				}
			}
		}
		taken[io] = true
		return io
	}
	return a.Base.Place(host, vm, numIOhosts)
}
