package rack

import (
	"bytes"
	"fmt"
	"testing"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

// buildRack assembles a multi-IOhost vRIO testbed for control-plane tests.
func buildRack(t *testing.T, numIO int, policy Policy, withBlock bool, seed uint64) *cluster.Testbed {
	t.Helper()
	return cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 2,
		NumIOhosts: numIO, Placement: Placement(policy, numIO),
		WithBlock: withBlock, NoJitter: true, StationPerVM: true, Seed: seed,
	})
}

// startRR drives netperf-RR against every guest and returns the collectors.
func startRR(tb *cluster.Testbed) []*workload.RR {
	var rrs []*workload.RR
	for i, g := range tb.Guests {
		workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
		rr := workload.NewRR(tb.StationFor(i), g.MAC(), 16)
		rr.Start()
		rr.Results.StartMeasuring()
		rrs = append(rrs, rr)
	}
	return rrs
}

func TestPlacementPolicies(t *testing.T) {
	rr := &RoundRobin{}
	tb := buildRack(t, 3, rr, false, 91)
	want := []int{0, 1, 2, 0}
	for vm, io := range tb.ClientIOhost {
		if io != want[vm] {
			t.Errorf("round-robin placed vm %d on IOhost %d, want %d", vm, io, want[vm])
		}
	}

	tb2 := buildRack(t, 3, Static(1), false, 92)
	for vm, io := range tb2.ClientIOhost {
		if io != 1 {
			t.Errorf("static placed vm %d on IOhost %d, want 1", vm, io)
		}
	}
	// Devices on IOhost 1 actually serve traffic; the others sit idle.
	startRR(tb2)
	tb2.Eng.RunUntil(5 * sim.Millisecond)
	if tb2.IOHyps[1].Counters.Get("msgs") == 0 {
		t.Error("placed IOhost processed nothing")
	}
	if got := tb2.IOHyps[0].Counters.Get("msgs"); got != 0 {
		t.Errorf("unplaced IOhost 0 processed %d msgs", got)
	}

	ll := &LeastLoaded{}
	spread := make(map[int]int)
	for vm := 0; vm < 6; vm++ {
		spread[ll.Place(0, vm, 3)]++
	}
	if spread[0] != 2 || spread[1] != 2 || spread[2] != 2 {
		t.Errorf("least-loaded spread uneven: %v", spread)
	}

	af := &Affinity{
		Pins:   map[int]int{0: 2},
		Groups: map[int]string{1: "replicas", 2: "replicas"},
	}
	p0 := af.Place(0, 0, 3)
	p1 := af.Place(0, 1, 3)
	p2 := af.Place(1, 2, 3)
	if p0 != 2 {
		t.Errorf("pin ignored: vm 0 on %d", p0)
	}
	if p1 == p2 {
		t.Errorf("anti-affinity groupmates share IOhost %d", p1)
	}
}

func TestHeartbeatDetectsFailureAndRehomes(t *testing.T) {
	tb := buildRack(t, 2, &RoundRobin{}, false, 93)
	cfg := Config{HeartbeatInterval: sim.Millisecond / 2, MissThreshold: 3}
	c := New(tb, cfg)
	c.Start()
	rrs := startRR(tb)

	failAt := 20 * sim.Millisecond
	var opsAtFailure uint64
	tb.Eng.At(failAt, func() {
		for _, rr := range rrs {
			opsAtFailure += rr.Results.Ops
		}
		tb.IOHyps[1].Fail() // no manual FailOverIOhost anywhere
	})
	tb.Eng.RunUntil(100 * sim.Millisecond)

	if opsAtFailure == 0 {
		t.Fatal("no traffic before the crash")
	}
	if !c.Down(1) || c.AliveIOhosts() != 1 {
		t.Fatal("failure never detected")
	}
	var detectT sim.Time
	rehomes := 0
	for _, ev := range c.Events {
		switch ev.Kind {
		case EventDetect:
			if ev.IOhost != 1 {
				t.Errorf("detected wrong IOhost: %d", ev.IOhost)
			}
			detectT = ev.T
		case EventRehome:
			rehomes++
			if ev.Dst != 0 {
				t.Errorf("rehomed to dead/unknown IOhost %d", ev.Dst)
			}
		}
	}
	// Bounded detection window: within MissThreshold probes of the crash
	// (plus one interval of phase slack).
	bound := failAt + sim.Time(cfg.MissThreshold+1)*cfg.HeartbeatInterval
	if detectT == 0 || detectT > bound {
		t.Errorf("detection at %v, want within (%v, %v]", detectT, failAt, bound)
	}
	if rehomes != 2 {
		t.Errorf("rehomed %d guests, want the 2 the dead IOhost served", rehomes)
	}
	for vm, io := range tb.ClientIOhost {
		if io != 0 {
			t.Errorf("vm %d still homed on dead IOhost %d", vm, io)
		}
	}
	// Traffic resumed on the survivor for every guest, including the two
	// that lived on the dead IOhost.
	var opsEnd uint64
	for _, rr := range rrs {
		opsEnd += rr.Results.Ops
	}
	if opsEnd <= opsAtFailure+40 {
		t.Errorf("traffic did not resume on survivors: %d -> %d", opsAtFailure, opsEnd)
	}
}

// TestRebalancerNarrowsBusyRatio is the Fig. 16b assertion: an all-on-one
// placement starts maximally imbalanced, and the rebalancer demonstrably
// narrows the max/min busy-time ratio between IOhosts.
func TestRebalancerNarrowsBusyRatio(t *testing.T) {
	// ratioOver arms max/min per-IOhost busy-time delta measurement over
	// [from, to); read the returned closure after the engine passes `to`.
	ratioOver := func(tb *cluster.Testbed, from, to sim.Time) func() float64 {
		start := make([]float64, len(tb.IOHyps))
		var ratio float64
		tb.Eng.At(from, func() {
			for i := range tb.IOHyps {
				start[i] = float64(tb.IOHyps[i].BusyTime())
			}
		})
		tb.Eng.At(to, func() {
			min, max := -1.0, -1.0
			for i := range tb.IOHyps {
				d := float64(tb.IOHyps[i].BusyTime()) - start[i]
				if min < 0 || d < min {
					min = d
				}
				if d > max {
					max = d
				}
			}
			if min <= 0 {
				min = 1 // all-idle IOhost: treat as infinite imbalance, capped
			}
			ratio = max / min
		})
		return func() float64 { return ratio }
	}

	// Control run: same placement, no controller.
	ctl := buildRack(t, 2, Static(0), false, 94)
	startRR(ctl)
	ctlRatio := ratioOver(ctl, 30*sim.Millisecond, 60*sim.Millisecond)
	ctl.Eng.RunUntil(60 * sim.Millisecond)

	tb := buildRack(t, 2, Static(0), false, 94)
	c := New(tb, Config{
		HeartbeatInterval: sim.Millisecond / 2,
		RebalanceInterval: 2 * sim.Millisecond,
		ImbalanceRatio:    2.0,
		CooldownTicks:     2,
	})
	c.Start()
	startRR(tb)
	endRatio := ratioOver(tb, 30*sim.Millisecond, 60*sim.Millisecond)
	tb.Eng.RunUntil(60 * sim.Millisecond)

	if c.Counters.Get("rebalances") == 0 {
		t.Fatal("rebalancer never moved a device off the hot IOhost")
	}
	moved := 0
	for _, io := range tb.ClientIOhost {
		if io == 1 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no guest ended up on the cold IOhost")
	}
	eq, cq := ctlRatio(), endRatio()
	if cq >= eq {
		t.Errorf("rebalancer did not narrow the busy ratio: %.2f (rebalanced) vs %.2f (static)", cq, eq)
	}
	if cq > 3.0 {
		t.Errorf("rebalanced rack still badly skewed: max/min busy = %.2f", cq)
	}
	// Hysteresis: the loop converged rather than ping-ponging — no moves in
	// the final stretch.
	for _, ev := range c.Events {
		if ev.Kind == EventRebalance && ev.T > 40*sim.Millisecond {
			t.Errorf("rebalance still churning at %v", ev.T)
		}
	}
}

// TestMigrationRacingFailureExactlyOnce is the §4.6 torture test: a block
// write in flight, the guest mid-MigrateVM blackout, and the serving IOhost
// crashing — the heartbeat detector re-homes the paused client, the
// migration lands on the new home, and the completion arrives exactly once.
func TestMigrationRacingFailureExactlyOnce(t *testing.T) {
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 1,
		NumIOhosts: 2, Placement: Placement(Static(0), 2),
		WithBlock: true, NoJitter: true, Seed: 95,
		BlockLatency: 5 * sim.Millisecond, // keep the request in flight
	})
	c := New(tb, Config{HeartbeatInterval: sim.Millisecond / 2, MissThreshold: 3})
	c.Start()

	payload := bytes.Repeat([]byte{0x5A}, 4096)
	completions := 0
	var werr error
	migrated := false
	g := tb.Guests[0]
	tb.Eng.At(1*sim.Millisecond, func() {
		g.WriteBlock(40, payload, func(err error) {
			completions++
			werr = err
		})
		tb.MigrateVM(0, 1, func() { migrated = true }) // blackout begins
	})
	tb.Eng.At(2*sim.Millisecond, func() { tb.IOHyps[0].Fail() })
	tb.Eng.RunUntil(500 * sim.Millisecond)

	if !migrated {
		t.Fatal("migration never completed")
	}
	if completions != 1 {
		t.Fatalf("block completion arrived %d times, want exactly once", completions)
	}
	if werr != nil {
		t.Fatalf("block write failed: %v", werr)
	}
	got, err := tb.BlockDevices[0].Store().Read(40, 8)
	if err != nil || !bytes.Equal(got, payload) {
		t.Error("shared store missing the write served after re-home")
	}
	if tb.VRIOClients[0].Driver.Counters.Get("retransmits") == 0 {
		t.Error("recovery did not exercise §4.5 retransmission")
	}
	if tb.ClientIOhost[0] != 1 {
		t.Errorf("client homed on IOhost %d, want survivor 1", tb.ClientIOhost[0])
	}
	if tb.GuestHost[0] != 1 {
		t.Errorf("guest host = %d, want migration destination 1", tb.GuestHost[0])
	}
	// Post-race sanity: fresh I/O works end to end on the new home.
	ok := false
	g.ReadBlock(40, 8, func(data []byte, err error) {
		ok = err == nil && bytes.Equal(data, payload)
	})
	tb.Eng.RunUntil(600 * sim.Millisecond)
	if !ok {
		t.Error("block read after the race failed")
	}
}

// TestControllerDeterministic: two same-seed runs of the full control plane
// (failure + rebalancing) produce identical event logs and counters.
func TestControllerDeterministic(t *testing.T) {
	run := func() string {
		tb := buildRack(t, 3, Static(0), false, 96)
		c := New(tb, Config{
			HeartbeatInterval: sim.Millisecond / 2,
			MissThreshold:     3,
			RebalanceInterval: 2 * sim.Millisecond,
		})
		c.Start()
		rrs := startRR(tb)
		tb.Eng.At(25*sim.Millisecond, func() { tb.IOHyps[2].Fail() })
		tb.Eng.RunUntil(50 * sim.Millisecond)
		var ops uint64
		for _, rr := range rrs {
			ops += rr.Results.Ops
		}
		return fmt.Sprintf("%v %v %d %v", c.Events, tb.ClientIOhost, ops,
			tb.Metrics.Value("rack", "rebalances"))
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed control-plane runs diverged:\n%s\n%s", a, b)
	}
}

// TestStallDetection: the heartbeat treats a stalled IOhost as unresponsive.
// A stall shorter than the miss threshold is forgiven on recovery; a stall
// that outlives MissThreshold probes gets the host declared dead and its
// guests re-homed — the timeout detector's inherent false positive.
func TestStallDetection(t *testing.T) {
	tb := buildRack(t, 2, &RoundRobin{}, false, 95)
	cfg := Config{HeartbeatInterval: sim.Millisecond / 2, MissThreshold: 3}
	c := New(tb, cfg)
	c.Start()
	startRR(tb)

	// Short stall (one probe interval): misses accrue but never reach the
	// threshold, and recovery clears them.
	tb.Eng.At(5*sim.Millisecond, func() { tb.IOHyps[1].StallWorkers(cfg.HeartbeatInterval) })
	tb.Eng.RunUntil(15 * sim.Millisecond)
	if c.Down(1) {
		t.Fatal("transient stall declared dead")
	}

	// Long stall (well past MissThreshold probes): declared dead, guests
	// re-homed onto the survivor.
	tb.Eng.At(20*sim.Millisecond, func() {
		tb.IOHyps[1].StallWorkers(sim.Time(cfg.MissThreshold+3) * cfg.HeartbeatInterval)
	})
	tb.Eng.RunUntil(40 * sim.Millisecond)
	if !c.Down(1) {
		t.Fatal("long stall never detected")
	}
	rehomes := 0
	for _, ev := range c.Events {
		if ev.Kind == EventRehome {
			rehomes++
			if ev.Dst != 0 {
				t.Errorf("rehomed to IOhost %d, want survivor 0", ev.Dst)
			}
		}
	}
	if rehomes != 2 {
		t.Errorf("rehomed %d guests, want 2", rehomes)
	}
}
