package rack

import (
	"testing"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

// BenchmarkRackRebalance times one imbalance-healing run: an all-on-one
// placement over two IOhosts, the controller rebalancing every 2 ms while
// RR traffic flows for 20 ms of sim time. This is the control plane's
// end-to-end cost (detection reads, gauge reads, re-home work) on top of
// the simulated datapath.
func BenchmarkRackRebalance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := cluster.Build(cluster.Spec{
			Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 2,
			NumIOhosts: 2, Placement: Placement(Static(0), 2),
			NoJitter: true, StationPerVM: true, Seed: 7,
		})
		c := New(tb, Config{
			HeartbeatInterval: sim.Millisecond / 2,
			RebalanceInterval: 2 * sim.Millisecond,
		})
		c.Start()
		for g, guest := range tb.Guests {
			workload.InstallRRServer(guest, tb.P.NetperfRRProcessCost)
			rr := workload.NewRR(tb.StationFor(g), guest.MAC(), 16)
			rr.Start()
		}
		tb.Eng.RunUntil(20 * sim.Millisecond)
		if c.Counters.Get("rebalances") == 0 {
			b.Fatal("benchmark run never rebalanced")
		}
	}
}

// BenchmarkRebalanceTick isolates one policy evaluation: the gauge reads
// and delta bookkeeping a rebalance window costs with no datapath running.
// The controller resolves its metric handles at New and reuses its delta
// scratch, so a tick must not allocate.
func BenchmarkRebalanceTick(b *testing.B) {
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMHosts: 4, VMsPerHost: 4,
		NumIOhosts: 4, Placement: Placement(Static(0), 4),
		NoJitter: true, Seed: 7,
	})
	c := New(tb, Config{RebalanceInterval: sim.Millisecond})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.rebalanceTick()
	}
}
