package rack

import (
	"bytes"
	"strings"
	"testing"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

// rollupRun builds the 2-rack fabric with intra-rack RR load on every guest,
// samples the rollup every sim-millisecond, and returns the exported metrics
// stream, the vrio-top summary, and the rollup itself for anomaly checks.
// dark kills both of rack 0's IOhosts mid-run.
func rollupRun(t *testing.T, workers int, dark bool) ([]byte, string, *Rollup) {
	t.Helper()
	f, err := cluster.BuildFabric(cluster.FabricSpec{
		Rack: cluster.Spec{
			Model: core.ModelVRIO, VMHosts: 1, VMsPerHost: 2,
			NumIOhosts: 2, StationPerVM: true, NoJitter: true, Seed: 11,
		},
		NumRacks: 2,
	})
	if err != nil {
		t.Fatalf("BuildFabric: %v", err)
	}
	defer f.Close()
	d := NewDatacenter(f, Config{HeartbeatInterval: sim.Millisecond / 2})
	ru := NewRollup(d, RollupConfig{Interval: sim.Millisecond})
	perRack := make([][]cluster.Measurable, len(f.Racks))
	for r, tb := range f.Racks {
		for g, guest := range tb.Guests {
			workload.InstallRRServer(guest, tb.P.NetperfRRProcessCost)
			rr := workload.NewRR(tb.StationFor(g), guest.MAC(), 16)
			rr.Start()
			perRack[r] = append(perRack[r], &rr.Results)
			ru.ObserveLatency(r, false, &rr.Results.Latency)
		}
	}
	d.Start()
	ru.Start()
	if dark {
		f.Racks[0].Eng.At(4*sim.Millisecond, func() {
			f.Racks[0].IOHyps[0].Fail()
			f.Racks[0].IOHyps[1].Fail()
		})
	}
	f.RunMeasured(sim.Millisecond, 19*sim.Millisecond, workers, perRack)
	ru.Stop()
	d.Stop()
	var buf bytes.Buffer
	if err := ru.WriteMetricsJSONL(&buf); err != nil {
		t.Fatalf("WriteMetricsJSONL: %v", err)
	}
	return buf.Bytes(), ru.Summary(), ru
}

// TestRollupMetricsDeterministicAcrossWorkers: the snapshot stream and the
// summary table are byte-identical whether the two rack shards run on one
// worker or two — each tick reads only its own shard's gauges and the
// exporter fixes rack order, so thread scheduling can never reorder rows.
func TestRollupMetricsDeterministicAcrossWorkers(t *testing.T) {
	m1, s1, _ := rollupRun(t, 1, false)
	if len(m1) == 0 {
		t.Fatal("rollup exported no metrics rows")
	}
	for _, col := range []string{"rack", "alive", "util%", "no_route", "ecmp", "slo_burn"} {
		if !strings.Contains(s1, col) {
			t.Errorf("summary missing %q column:\n%s", col, s1)
		}
	}
	m2, s2, ru := rollupRun(t, 2, false)
	if !bytes.Equal(m1, m2) {
		t.Error("metrics stream diverged between 1 and 2 workers")
	}
	if s1 != s2 {
		t.Errorf("summary diverged between 1 and 2 workers:\n%s\nvs\n%s", s1, s2)
	}
	if dumps := ru.Anomalies(); len(dumps) != 0 {
		t.Errorf("healthy run produced %d anomaly dumps: %+v", len(dumps), dumps)
	}
}

// TestRollupDumpsFlightRecorderOnDarkRack: darkening rack 0 makes the
// rollup dump that shard's flight ring for both the heartbeat-miss and
// dark-rack triggers — once each, on the failed shard only.
func TestRollupDumpsFlightRecorderOnDarkRack(t *testing.T) {
	_, _, ru := rollupRun(t, 2, true)
	dumps := ru.Anomalies()
	if len(dumps) == 0 {
		t.Fatal("no anomaly dumps after darkening rack 0")
	}
	triggers := map[string]int{}
	for _, d := range dumps {
		if d.Shard != 0 {
			t.Errorf("dump %q on shard %d, want 0", d.Trigger, d.Shard)
		}
		if len(d.Entries) == 0 {
			t.Errorf("dump %q carries an empty flight ring", d.Trigger)
		}
		triggers[d.Trigger]++
	}
	for _, want := range []string{"hb_miss", "dark_rack"} {
		if triggers[want] != 1 {
			t.Errorf("trigger %q dumped %d times, want once; got %v", want, triggers[want], triggers)
		}
	}
}
