// Datacenter: the placement tier above per-rack controllers.
//
// A fabric of racks gets one Controller per rack, each running entirely on
// its rack's simulation shard — heartbeats, failure detection, re-homing,
// and rebalancing never cross a shard boundary, which is also the physical
// truth: the dedicated channel cables that carry vRIO traffic run within a
// rack, so an IOclient can only ever be re-homed onto an IOhost in its own
// rack. "Prefer intra-rack re-homing" is therefore enforced by
// construction, not by a policy weight. What the datacenter tier adds is
// the global view: a merged, deterministically ordered event log, and the
// detection of dark racks (every IOhost dead) where intra-rack re-homing is
// impossible and only a cross-rack VM migration could restore service.
package rack

import (
	"sort"

	"vrio/internal/cluster"
)

// RackEvent is one control-plane action with the rack that took it.
type RackEvent struct {
	Rack int
	Event
}

// Datacenter runs one Controller per rack of a fabric.
type Datacenter struct {
	fab *cluster.Fabric
	// Controllers[r] is rack r's control plane, on rack r's shard.
	Controllers []*Controller
}

// NewDatacenter builds a controller per rack (vRIO fabrics only — the same
// requirement Controller.New enforces per testbed).
func NewDatacenter(fab *cluster.Fabric, cfg Config) *Datacenter {
	d := &Datacenter{fab: fab}
	for _, tb := range fab.Racks {
		d.Controllers = append(d.Controllers, New(tb, cfg))
	}
	return d
}

// Start arms every rack's control loops on that rack's engine.
func (d *Datacenter) Start() {
	for _, c := range d.Controllers {
		c.Start()
	}
}

// Stop cancels all control loops.
func (d *Datacenter) Stop() {
	for _, c := range d.Controllers {
		c.Stop()
	}
}

// Events merges the racks' logs into one deterministic order: by time, ties
// by rack index. Within a rack the controller's own append order is kept
// (it is already time-ordered), so the merge is a pure function of the
// per-rack logs — independent of how many workers executed the shards.
func (d *Datacenter) Events() []RackEvent {
	var all []RackEvent
	for r, c := range d.Controllers {
		for _, e := range c.Events {
			all = append(all, RackEvent{Rack: r, Event: e})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].T != all[j].T {
			return all[i].T < all[j].T
		}
		return all[i].Rack < all[j].Rack
	})
	return all
}

// DarkRacks lists racks whose every IOhost the detectors have declared
// dead — the guests there have no remote I/O until migrated off the rack.
func (d *Datacenter) DarkRacks() []int {
	var dark []int
	for r, c := range d.Controllers {
		if c.AliveIOhosts() == 0 {
			dark = append(dark, r)
		}
	}
	return dark
}

// Counter sums a controller counter across all racks.
func (d *Datacenter) Counter(name string) uint64 {
	var n uint64
	for _, c := range d.Controllers {
		n += c.Counters.Get(name)
	}
	return n
}
