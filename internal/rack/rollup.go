// Datacenter metrics rollup: the fabric-wide snapshot stream.
//
// Each rack already owns a per-shard trace.Registry (and the spine tier its
// own); the Rollup samples all of them on a configurable sim-time interval
// and merges the rows into one deterministic stream. The sampling tickers
// run on each shard's own engine — shard-local, like every other mutation in
// the simulation — so the per-shard series are byte-deterministic regardless
// of how many workers execute the windows, and the merge walks racks in
// index order (spine last), making the merged stream a pure function of the
// per-shard series. The same tick also watches for anomalies (dark rack,
// no-route storm, heartbeat miss) and snapshots the shard's flight-recorder
// ring the first time each trigger fires, giving post-mortems without
// full-trace cost.
package rack

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vrio/internal/cluster"
	"vrio/internal/sim"
	"vrio/internal/stats"
	"vrio/internal/trace"
)

// RollupConfig tunes the fabric-wide sampler. Zero values take defaults.
type RollupConfig struct {
	// Interval is the sampling period in sim time (default 1ms).
	Interval sim.Time
	// SLO is the request-latency objective: observed latency histograms
	// count requests above it as SLO burn (default 200µs).
	SLO sim.Time
	// NoRouteStorm is how many DropNoRoute frames within one interval on a
	// single shard count as a storm and trigger a flight-recorder dump
	// (default 8).
	NoRouteStorm uint64
}

func (c *RollupConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = sim.Millisecond
	}
	if c.SLO <= 0 {
		c.SLO = 200 * sim.Microsecond
	}
	if c.NoRouteStorm == 0 {
		c.NoRouteStorm = 8
	}
}

// Rollup samples every rack's registry plus the spine registry into one
// deterministic fabric-wide snapshot stream, and dumps flight recorders on
// anomalies. Build it after the Datacenter, call ObserveLatency for the
// workload's latency histograms, then Start before running the fabric.
type Rollup struct {
	d   *Datacenter
	fab *cluster.Fabric
	cfg RollupConfig

	// Observed latency histograms by rack and locality class; the gauges
	// they feed are registered at ObserveLatency time, so every histogram
	// must be observed before Start (a Timeseries schema is fixed when
	// created).
	intra, cross  [][]*stats.Histogram
	latRegistered [][2]bool

	rackSeries  []*trace.Timeseries
	spineSeries *trace.Timeseries
	started     bool

	// Per-shard anomaly state. Every slot is touched only by its own
	// shard's ticker (shard NumRacks = spine), so parallel window execution
	// never shares a map or slice element across goroutines.
	lastNoRoute []float64
	tripped     []map[string]bool
	dumps       [][]trace.FlightDump

	stops []func()
}

// NewRollup builds the sampler over a datacenter's fabric.
func NewRollup(d *Datacenter, cfg RollupConfig) *Rollup {
	cfg.defaults()
	n := len(d.fab.Racks)
	ru := &Rollup{
		d: d, fab: d.fab, cfg: cfg,
		intra:         make([][]*stats.Histogram, n),
		cross:         make([][]*stats.Histogram, n),
		latRegistered: make([][2]bool, n),
		lastNoRoute:   make([]float64, n+1),
		tripped:       make([]map[string]bool, n+1),
		dumps:         make([][]trace.FlightDump, n+1),
	}
	for i := range ru.tripped {
		ru.tripped[i] = make(map[string]bool)
	}
	return ru
}

// ObserveLatency adds a workload latency histogram (nanosecond round-trip
// times) to rack r's rollup under the intra- or cross-rack class. The first
// histogram of each (rack, class) registers that rack's latency and SLO-burn
// gauges, so all calls must precede Start.
func (ru *Rollup) ObserveLatency(r int, crossRack bool, h *stats.Histogram) {
	if ru.started {
		panic("rack: ObserveLatency after Rollup.Start — the snapshot schema is already fixed")
	}
	class, comp, idx := &ru.intra, "latency_intra", 0
	if crossRack {
		class, comp, idx = &ru.cross, "latency_cross", 1
	}
	(*class)[r] = append((*class)[r], h)
	if ru.latRegistered[r][idx] {
		return
	}
	ru.latRegistered[r][idx] = true
	reg := ru.fab.Racks[r].Metrics
	hists := class // closures read through the slot so later Observe calls are included
	merged := func() *stats.Histogram {
		m := &stats.Histogram{}
		for _, h := range (*hists)[r] {
			m.Merge(h)
		}
		return m
	}
	reg.Gauge(comp, "p50_us", func() float64 { return float64(merged().Percentile(50)) / 1e3 })
	reg.Gauge(comp, "p99_us", func() float64 { return float64(merged().Percentile(99)) / 1e3 })
	reg.Gauge(comp, "count", func() float64 { return float64(merged().Count()) })
	slo := int64(ru.cfg.SLO)
	reg.Gauge("slo", "burn_"+strings.TrimPrefix(comp, "latency_"), func() float64 {
		var n uint64
		for _, h := range (*hists)[r] {
			n += h.CountAbove(slo)
		}
		return float64(n)
	})
}

// fabricKeep selects which of a rack's registered metrics join the
// fabric-wide snapshot stream: control-plane and fabric-facing components,
// per-IOhost utilization, latency, and SLO burn — not the per-VM counter
// fan-out, which stays available in the rack's own registry.
func fabricKeep(component, name string) bool {
	switch component {
	case "rack", "fabric", "switch", "latency_intra", "latency_cross", "slo":
		return true
	}
	if strings.HasPrefix(component, "uplink") {
		return true
	}
	if strings.HasPrefix(component, "iohyp") {
		return name == "utilization" || name == "busy_ns"
	}
	return false
}

// Start fixes each shard's snapshot schema and arms the sampling tickers —
// one per rack engine, one on the spine engine. Call exactly once, before
// running the fabric.
func (ru *Rollup) Start() {
	if ru.started {
		panic("rack: Rollup started twice")
	}
	ru.started = true
	for r, tb := range ru.fab.Racks {
		r, tb := r, tb
		series := tb.Metrics.NewTimeseriesFiltered(fabricKeep)
		ru.rackSeries = append(ru.rackSeries, series)
		ru.stops = append(ru.stops, tb.Eng.Ticker(ru.cfg.Interval, func() {
			series.Sample(tb.Eng.Now())
			ru.checkRack(r, tb)
		}))
	}
	ru.spineSeries = ru.fab.SpineMetrics.NewTimeseries()
	spineEng := ru.fab.SpineShard.Eng
	ru.stops = append(ru.stops, spineEng.Ticker(ru.cfg.Interval, func() {
		ru.spineSeries.Sample(spineEng.Now())
		ru.checkSpine()
	}))
}

// Stop cancels the sampling tickers.
func (ru *Rollup) Stop() {
	for _, stop := range ru.stops {
		stop()
	}
	ru.stops = nil
}

// trip latches one (shard, trigger) anomaly and snapshots that shard's
// flight-recorder ring. Latching bounds the dump stream: the first firing
// carries the ring contents leading up to the anomaly, which is the
// post-mortem; repeats would only replay the same window.
func (ru *Rollup) trip(shard int, trigger string, now sim.Time, f *trace.FlightRecorder) {
	if ru.tripped[shard][trigger] {
		return
	}
	ru.tripped[shard][trigger] = true
	ru.dumps[shard] = append(ru.dumps[shard], trace.FlightDump{
		T: now, Shard: shard, Trigger: trigger, Entries: f.Entries(),
	})
}

// checkRack runs rack r's anomaly detectors at its sampling tick.
func (ru *Rollup) checkRack(r int, tb *cluster.Testbed) {
	now := tb.Eng.Now()
	c := ru.d.Controllers[r]
	if c.AliveIOhosts() == 0 {
		ru.trip(r, "dark_rack", now, tb.Flight)
	}
	if c.Counters.Get("heartbeat_misses") > 0 {
		ru.trip(r, "hb_miss", now, tb.Flight)
	}
	noRoute := tb.Metrics.Value("switch", "drops_no_route")
	if noRoute-ru.lastNoRoute[r] >= float64(ru.cfg.NoRouteStorm) {
		ru.trip(r, "no_route_storm", now, tb.Flight)
	}
	ru.lastNoRoute[r] = noRoute
}

// checkSpine runs the spine shard's anomaly detector at its sampling tick.
func (ru *Rollup) checkSpine() {
	shard := len(ru.fab.Racks)
	now := ru.fab.SpineShard.Eng.Now()
	var noRoute float64
	for s := range ru.fab.Spines {
		noRoute += ru.fab.SpineMetrics.Value(fmt.Sprintf("spine%d", s), "drops_no_route")
	}
	if noRoute-ru.lastNoRoute[shard] >= float64(ru.cfg.NoRouteStorm) {
		ru.trip(shard, "no_route_storm", now, ru.fab.SpineFlight)
	}
	ru.lastNoRoute[shard] = noRoute
}

// Anomalies returns every flight-recorder dump in the fabric's canonical
// (time, shard, trigger) merge order.
func (ru *Rollup) Anomalies() []trace.FlightDump {
	var all []trace.FlightDump
	for _, d := range ru.dumps {
		all = append(all, d...)
	}
	return trace.MergeDumps(all)
}

// WriteAnomaliesJSONL emits the merged anomaly dumps as JSONL.
func (ru *Rollup) WriteAnomaliesJSONL(w io.Writer) error {
	return trace.WriteDumpsJSONL(w, ru.Anomalies())
}

// rows reports how many complete merged ticks the series hold. The shards
// tick on identical intervals up to the same end time, so the counts agree;
// the min guards a run stopped mid-window.
func (ru *Rollup) rows() int {
	n := len(ru.spineSeries.T)
	for _, s := range ru.rackSeries {
		if len(s.T) < n {
			n = len(s.T)
		}
	}
	return n
}

// WriteMetricsJSONL emits the merged fabric-wide snapshot stream: one JSON
// object per tick holding every rack's sampled metrics (racks in index
// order, spine last), keyed "rack0".."rackN-1" and "spine". Values format
// via strconv's shortest round-trip form; the whole stream is byte-identical
// at any worker count because every per-shard series is.
func (ru *Rollup) WriteMetricsJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeRow := func(label string, s *trace.Timeseries, i int) {
		fmt.Fprintf(bw, `,%q:{`, label)
		for j, name := range s.Names {
			if j > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%q:%s", name, strconv.FormatFloat(s.Rows[i][j], 'g', -1, 64))
		}
		bw.WriteByte('}')
	}
	for i := 0; i < ru.rows(); i++ {
		fmt.Fprintf(bw, `{"t":%d`, int64(ru.rackSeries[0].T[i]))
		for r, s := range ru.rackSeries {
			writeRow(fmt.Sprintf("rack%d", r), s, i)
		}
		writeRow("spine", ru.spineSeries, i)
		if _, err := bw.WriteString("}\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Summary renders the vrio-top table: one line per rack with its current
// control-plane, uplink, and latency state, plus a spine line. Read it after
// the run; values come from the live registries, so it reflects end state.
func (ru *Rollup) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %6s %7s %10s %9s %9s %6s %9s %9s %9s\n",
		"rack", "alive", "util%", "up_MB", "up_drops", "no_route", "ecmp", "p99intra", "p99cross", "slo_burn")
	for r, tb := range ru.fab.Racks {
		m := tb.Metrics
		var util float64
		nio := len(tb.IOHyps)
		for i := 0; i < nio; i++ {
			util += m.Value(cluster.IOhypComponent(i), "utilization")
		}
		if nio > 0 {
			util /= float64(nio)
		}
		var upMB, upDrops float64
		for s := range ru.fab.Uplinks[r] {
			comp := fmt.Sprintf("uplink%d", s)
			upMB += m.Value(comp, "tx_bytes") / 1e6
			upDrops += m.Value(comp, "drops")
		}
		fmt.Fprintf(&b, "%-6d %6.0f %7.1f %10.2f %9.0f %9.0f %6.2f %9.1f %9.1f %9.0f\n",
			r,
			m.Value("rack", "alive_iohosts"),
			100*util,
			upMB,
			upDrops,
			m.Value("switch", "drops_no_route"),
			m.Value("fabric", "ecmp_imbalance"),
			m.Value("latency_intra", "p99_us"),
			m.Value("latency_cross", "p99_us"),
			m.Value("slo", "burn_intra")+m.Value("slo", "burn_cross"))
	}
	var fwd, noRoute float64
	for s := range ru.fab.Spines {
		comp := fmt.Sprintf("spine%d", s)
		fwd += ru.fab.SpineMetrics.Value(comp, "forwarded")
		noRoute += ru.fab.SpineMetrics.Value(comp, "drops_no_route")
	}
	fmt.Fprintf(&b, "%-6s %6s %7s %10s %9s %9.0f %6s %9s %9s %9s\n",
		"spine", "-", "-", "-", "-", noRoute, "-", "-", "-", "-")
	fmt.Fprintf(&b, "spine forwarded %.0f; anomaly dumps %d; ticks %d\n",
		fwd, len(ru.Anomalies()), ru.rows())
	return b.String()
}
