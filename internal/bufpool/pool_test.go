package bufpool

import (
	"sync"
	"testing"
)

func TestClassRounding(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 64}, {64, 64}, {65, 128}, {1500, 2048}, {2048, 2048},
		{2049, 4096}, {65536, 65536}, {1 << 17, 1 << 17},
	}
	for _, c := range cases {
		b := New().GetRaw(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Errorf("GetRaw(%d): len=%d cap=%d, want len=%d cap=%d",
				c.n, len(b), cap(b), c.n, c.wantCap)
		}
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	p := New()
	b := p.GetRaw(MaxPooled + 1)
	if len(b) != MaxPooled+1 {
		t.Fatalf("oversize len = %d", len(b))
	}
	if p.Stats.Misses != 1 {
		t.Errorf("Misses = %d, want 1", p.Stats.Misses)
	}
	if p.PutRaw(b) {
		t.Error("oversize slab adopted; should fall to the GC")
	}
	if p.Stats.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", p.Stats.Dropped)
	}
}

func TestPutAdoptsOnlyExactClassCapacity(t *testing.T) {
	p := New()
	if p.PutRaw(make([]byte, 100)) { // cap 100: not a class size
		t.Error("adopted a slab with off-class capacity")
	}
	if !p.PutRaw(make([]byte, 10, 2048)) { // cap 2048: exact class
		t.Error("declined a slab with exact class capacity")
	}
	if p.FreeSlabs() != 1 {
		t.Errorf("FreeSlabs = %d, want 1", p.FreeSlabs())
	}
	// Foreign slabs (allocated by another pool) circulate by the same rule.
	q := New()
	if !p.PutRaw(q.GetRaw(1500)) {
		t.Error("declined a foreign pool's slab")
	}
	if p.Stats.Adopted != 2 {
		t.Errorf("Adopted = %d, want 2", p.Stats.Adopted)
	}
}

func TestClassCapBoundsRetention(t *testing.T) {
	p := New()
	for i := 0; i < defaultClassCap+10; i++ {
		p.PutRaw(make([]byte, 64))
	}
	if got := p.FreeSlabs(); got != defaultClassCap {
		t.Errorf("FreeSlabs = %d, want cap %d", got, defaultClassCap)
	}
	if p.Stats.Dropped != 10 {
		t.Errorf("Dropped = %d, want 10", p.Stats.Dropped)
	}
}

func TestReleasedSlabIsReused(t *testing.T) {
	p := New()
	b := p.GetRaw(1000)
	b[0] = 0xAA
	if !p.PutRaw(b) {
		t.Fatal("slab not adopted")
	}
	b2 := p.GetRaw(900) // same class (2048)
	if &b[0] != &b2[0] {
		t.Error("pool did not reuse the released slab")
	}
	if p.Stats.Misses != 1 {
		t.Errorf("Misses = %d, want 1 (second Get must hit)", p.Stats.Misses)
	}
}

func TestFrameRefcounting(t *testing.T) {
	p := New()
	f := p.Get(512)
	if f.Refs() != 1 || len(f.B) != 512 {
		t.Fatalf("fresh frame: refs=%d len=%d", f.Refs(), len(f.B))
	}
	f.Retain()
	f.Release()
	if f.Refs() != 1 {
		t.Fatalf("refs = %d after retain+release, want 1", f.Refs())
	}
	if p.FreeSlabs() != 0 {
		t.Error("slab recycled while a reference was live")
	}
	f.Release()
	if f.Refs() != 0 || f.B != nil {
		t.Errorf("final release: refs=%d B=%v", f.Refs(), f.B)
	}
	if p.FreeSlabs() != 1 {
		t.Error("final release did not recycle the slab")
	}
	// The Frame struct itself recycles too.
	f2 := p.Get(100)
	if f2 != f {
		t.Error("frame struct not recycled through the free list")
	}
	f2.Release()
}

func TestReleasePanicsAfterFinal(t *testing.T) {
	p := New()
	f := p.Get(64)
	f.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	f.Release()
}

func TestNilFrameIsSafe(t *testing.T) {
	var f *Frame
	f.Release()
	f.Retain()
	if f.Bytes() != nil || f.Refs() != 0 {
		t.Error("nil frame accessors not inert")
	}
}

func TestWrapRecyclesWholeSlab(t *testing.T) {
	p := New()
	slab := p.GetRaw(2000) // class 2048
	view := slab[14:900]   // payload behind a header
	f := p.Wrap(slab, view)
	if &f.B[0] != &view[0] || len(f.B) != len(view) {
		t.Fatal("wrapped view does not alias the slab")
	}
	f.Release()
	// The FULL slab came back, not the truncated view.
	b := p.GetRaw(2048)
	if &b[0] != &slab[0] {
		t.Error("wrapped slab not recycled from its start")
	}
	if cap(b) != 2048 {
		t.Errorf("recycled cap = %d", cap(b))
	}
}

// TestAliasingAfterRelease documents the use-after-free contract: once a slab
// is released, the very next same-class GetRaw may hand the same memory to a
// new owner, so writes through a stale reference corrupt the new buffer. The
// datapath's ownership rules (Deliver consumes, Send/RespondBlk borrow and
// copy synchronously) exist precisely to make this scenario impossible.
func TestAliasingAfterRelease(t *testing.T) {
	p := New()
	stale := p.GetRaw(1024)
	p.PutRaw(stale)
	fresh := p.GetRaw(1024)
	fresh[0] = 1
	stale[0] = 99 // the bug this package's conventions prevent
	if fresh[0] != 99 {
		t.Fatal("expected stale alias to clobber the fresh buffer (LIFO reuse)")
	}
}

// TestPoolStressParallel churns private pools from many goroutines under the
// race detector. Pools are single-threaded by contract — the point here is
// that per-cell pools (as the parallel experiment runner creates) share no
// hidden state, so fully independent churn is race-free.
func TestPoolStressParallel(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			p := New()
			next := func() uint64 { seed = seed*6364136223846793005 + 1; return seed >> 33 }
			var loans [][]byte
			var leases []*Frame
			for i := 0; i < 20000; i++ {
				switch next() % 5 {
				case 0:
					loans = append(loans, p.GetRaw(int(next()%8192)+1))
				case 1:
					if n := len(loans); n > 0 {
						p.PutRaw(loans[n-1])
						loans = loans[:n-1]
					}
				case 2:
					f := p.Get(int(next()%4096) + 1)
					if next()%2 == 0 {
						f.Retain()
						f.Release()
					}
					leases = append(leases, f)
				case 3:
					if n := len(leases); n > 0 {
						leases[n-1].Release()
						leases = leases[:n-1]
					}
				case 4:
					slab := p.GetRaw(2048)
					leases = append(leases, p.Wrap(slab, slab[64:128]))
				}
			}
			for _, b := range loans {
				p.PutRaw(b)
			}
			for _, f := range leases {
				f.Release()
			}
			if p.Stats.Gets < 1000 {
				t.Errorf("stress barely exercised the pool: %d gets", p.Stats.Gets)
			}
		}(uint64(g)*2654435761 + 1)
	}
	wg.Wait()
}
