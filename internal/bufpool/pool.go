// Package bufpool provides the zero-allocation buffer discipline of the
// datapath: size-classed free lists of byte slabs, plus a leased Frame type
// with explicit reference-counted ownership for buffers whose lifetime
// branches (retransmission, backend completion, failover drops).
//
// A Pool is deliberately NOT safe for concurrent use, exactly like
// stats.Counters: each simulation cell is single-threaded, and the parallel
// experiment runner gives every cell its own engine, testbed, and pool.
// Never share one Pool between cells. The contract is exercised under the
// race detector by the pool stress tests.
//
// Real-wire mode keeps the same rule with a different cell boundary: each
// netwire.Loop goroutine is one cell owning one pool (the loadgen gives
// every worker its own loop, pool, and driver). Socket reader goroutines
// never touch a pool — they circulate private scratch buffers and the loop
// copies each frame into a pool slab before the transport sees it.
//
// Two ownership styles coexist, chosen by lifetime shape:
//
//   - GetRaw/PutRaw loans: a plain []byte slab with a single owner at any
//     moment. Ownership transfers by convention (documented per call site);
//     PutRaw adopts any slab whose capacity is exactly a class size, so
//     buffers circulate freely between the pools of communicating
//     components. Dropping a loan on an error path is always safe — the
//     slab just falls back to the garbage collector.
//
//   - Get/Frame leases: a refcounted *Frame for buffers that outlive the
//     call that produced them along more than one path (a block request
//     retained by the storage backend, retransmission sources). Retain
//     before handing a reference across an asynchronous boundary; Release
//     when done. The final Release recycles both slab and Frame.
package bufpool

// Size classes are powers of two from 64 B to 128 KiB: Ethernet frames and
// ring segments (2 KiB), jumbo TSO fragments (8–16 KiB), and full 64 KiB
// transport messages plus headers all land on an exact class.
const (
	minClassShift = 6  // 64 B
	maxClassShift = 17 // 128 KiB
	numClasses    = maxClassShift - minClassShift + 1

	// MaxPooled is the largest pooled buffer; bigger requests fall through
	// to the allocator.
	MaxPooled = 1 << maxClassShift

	// defaultClassCap bounds retained slabs per class so a burst cannot pin
	// memory forever: 256 slabs of 128 KiB is 32 MiB worst case per pool.
	defaultClassCap = 256
)

// classFor returns the class index for a buffer of n bytes, or -1 when n
// exceeds the largest class.
func classFor(n int) int {
	if n > MaxPooled {
		return -1
	}
	c := 0
	for sz := 1 << minClassShift; sz < n; sz <<= 1 {
		c++
	}
	return c
}

// classSize is the slab capacity of class c.
func classSize(c int) int { return 1 << (minClassShift + c) }

// Stats counts pool traffic, for tests and the memory-profile narrative.
type Stats struct {
	// Gets/Puts count raw-loan traffic (Frame leases included).
	Gets, Puts uint64
	// Misses counts Gets served by the allocator (empty class or oversize).
	Misses uint64
	// Adopted counts foreign slabs accepted by PutRaw; Dropped counts
	// buffers PutRaw declined (odd capacity, or a full class).
	Adopted, Dropped uint64
}

// Pool is one simulation cell's buffer pool. The zero value is NOT ready;
// use New.
type Pool struct {
	classes  [numClasses][][]byte
	frames   []*Frame
	classCap int

	// Stats is exported for tests and profiling narratives.
	Stats Stats
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{classCap: defaultClassCap}
}

// GetRaw returns a slab of length n whose capacity is the exact class size
// (or exactly n when n exceeds MaxPooled). The caller owns it until PutRaw
// or abandonment.
func (p *Pool) GetRaw(n int) []byte {
	p.Stats.Gets++
	c := classFor(n)
	if c < 0 {
		p.Stats.Misses++
		return make([]byte, n)
	}
	if free := p.classes[c]; len(free) > 0 {
		b := free[len(free)-1]
		free[len(free)-1] = nil
		p.classes[c] = free[:len(free)-1]
		return b[:n]
	}
	p.Stats.Misses++
	return make([]byte, n, classSize(c))
}

// PutRaw returns a slab to the pool. Only slabs whose capacity is exactly a
// class size are adopted (this is how buffers allocated by a peer's pool —
// or by this one — are recognized); anything else is declined and left to
// the garbage collector. It reports whether the slab was adopted.
func (p *Pool) PutRaw(b []byte) bool {
	p.Stats.Puts++
	c := cap(b)
	if c == 0 {
		p.Stats.Dropped++
		return false
	}
	cls := classFor(c)
	if cls < 0 || classSize(cls) != c || len(p.classes[cls]) >= p.classCap {
		p.Stats.Dropped++
		return false
	}
	p.classes[cls] = append(p.classes[cls], b[:0])
	p.Stats.Adopted++
	return true
}

// Frame is a leased buffer with explicit reference counting. B is the valid
// byte view; the backing slab (which may be larger, or start before B when
// the frame wraps an offset view) returns to the pool on the final Release.
type Frame struct {
	// B is the leased bytes. Valid only while the lease is live.
	B []byte

	pool *Pool
	slab []byte
	refs int
}

// Get leases a frame of n bytes with an initial reference count of 1.
func (p *Pool) Get(n int) *Frame {
	f := p.newFrame()
	f.slab = p.GetRaw(n)
	f.B = f.slab
	return f
}

// Wrap leases a frame whose view is a slice of an existing slab — e.g. a
// message payload behind a transport header. The whole slab is recycled on
// the final Release, so the caller transfers ownership of slab here.
func (p *Pool) Wrap(slab, view []byte) *Frame {
	f := p.newFrame()
	f.slab = slab
	f.B = view
	return f
}

func (p *Pool) newFrame() *Frame {
	if n := len(p.frames); n > 0 {
		f := p.frames[n-1]
		p.frames[n-1] = nil
		p.frames = p.frames[:n-1]
		f.refs = 1
		return f
	}
	return &Frame{pool: p, refs: 1}
}

// Bytes returns the leased view (nil for a nil frame).
func (f *Frame) Bytes() []byte {
	if f == nil {
		return nil
	}
	return f.B
}

// Retain adds a reference. Call it before handing the frame across an
// asynchronous boundary that outlives the caller's own Release.
func (f *Frame) Retain() {
	if f == nil {
		return
	}
	if f.refs <= 0 {
		panic("bufpool: Retain after final Release")
	}
	f.refs++
}

// Release drops a reference. The final Release invalidates B and recycles
// slab and Frame; touching either afterwards is a use-after-free. Safe on a
// nil frame (error paths can release unconditionally).
func (f *Frame) Release() {
	if f == nil {
		return
	}
	if f.refs <= 0 {
		panic("bufpool: Release after final Release")
	}
	f.refs--
	if f.refs > 0 {
		return
	}
	p := f.pool
	if f.slab != nil {
		p.PutRaw(f.slab[:cap(f.slab)])
	}
	f.slab = nil
	f.B = nil
	if len(p.frames) < p.classCap {
		p.frames = append(p.frames, f)
	}
}

// Refs reports the current reference count (0 after the final Release).
func (f *Frame) Refs() int {
	if f == nil {
		return 0
	}
	return f.refs
}

// FreeSlabs reports pooled slabs across all classes (test visibility).
func (p *Pool) FreeSlabs() int {
	n := 0
	for _, c := range p.classes {
		n += len(c)
	}
	return n
}
