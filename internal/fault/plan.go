package fault

import (
	"vrio/internal/link"
	"vrio/internal/sim"
	"vrio/internal/stats"
	"vrio/internal/trace"
)

// Port is the slice of a NIC virtual function the injector drives —
// carrier control and receive-ring capacity (implemented by nic.VF).
type Port interface {
	SetLinkUp(up bool)
	SetRingCap(n int)
}

// Staller is the slice of an IOhost the injector drives (implemented by
// iohyp.IOHypervisor).
type Staller interface {
	StallWorkers(d sim.Time)
}

// Plan is one Profile instantiated against one simulation cell. Every
// injection site (each faulted wire, flapping port, stalled IOhost) owns a
// forked RNG stream, so fault draws depend only on the seed and that site's
// own traffic — adding a site never perturbs another's verdicts, and the
// same seed replays the same faults byte for byte.
//
// Not safe for concurrent use; like everything else, a Plan belongs to one
// simulation cell.
type Plan struct {
	eng  *sim.Engine
	rng  *sim.RNG
	prof *Profile

	wires    []*link.Wire
	flappers []*flapper
	stallers []*staller
	started  bool

	// Counters: "frames_dropped" (injected loss), "frames_corrupted",
	// "frames_jittered", "frames_reordered", "flaps", "stalls",
	// "ring_squeezes".
	Counters stats.Counters

	// Tracer, when non-nil, records every injected event as a CatFault
	// span: zero-length instants for per-frame faults, real intervals for
	// flap and stall windows.
	Tracer *trace.Tracer
}

// NewPlan builds a plan for prof. A nil prof yields a plan that attaches
// nothing everywhere — callers need no nil checks.
func NewPlan(eng *sim.Engine, prof *Profile, seed uint64) *Plan {
	return &Plan{eng: eng, prof: prof, rng: sim.NewRNG(seed ^ 0x84f417)}
}

// linkCfg is the merged effect of every LinkFault matching one cable.
type linkCfg struct {
	loss, corrupt, jitter, reorder float64
	jitterMean, reorderDelay       sim.Time
}

func (c linkCfg) active() bool {
	return c.loss > 0 || c.corrupt > 0 || c.jitter > 0 || c.reorder > 0
}

// orProb combines independent per-frame probabilities.
func orProb(a, b float64) float64 { return 1 - (1-a)*(1-b) }

func matchIdx(sel, idx int) bool { return sel == Any || sel == idx }

// cableCfg merges all LinkFaults matching (class, host, iohost).
func (p *Plan) cableCfg(class Class, host, iohost int) linkCfg {
	var cfg linkCfg
	if p.prof == nil {
		return cfg
	}
	for _, lf := range p.prof.Links {
		if lf.Where != Anywhere && lf.Where != class {
			continue
		}
		if !matchIdx(lf.Host, host) || !matchIdx(lf.IOhost, iohost) {
			continue
		}
		cfg.loss = orProb(cfg.loss, lf.LossProb)
		cfg.corrupt = orProb(cfg.corrupt, lf.CorruptProb)
		cfg.jitter = orProb(cfg.jitter, lf.JitterProb)
		cfg.reorder = orProb(cfg.reorder, lf.ReorderProb)
		if lf.JitterMean > cfg.jitterMean {
			cfg.jitterMean = lf.JitterMean
		}
		if lf.ReorderDelay > cfg.reorderDelay {
			cfg.reorderDelay = lf.ReorderDelay
		}
	}
	return cfg
}

// AttachWire arms one wire direction if any LinkFault matches. Host is the
// VMhost (or station) index, iohost the IOhost index; pass Any for the
// dimension a cable class doesn't have.
func (p *Plan) AttachWire(class Class, host, iohost int, w *link.Wire) {
	cfg := p.cableCfg(class, host, iohost)
	if !cfg.active() {
		return
	}
	w.SetFault(&wireFault{plan: p, rng: p.rng.Fork(), cfg: cfg})
	p.wires = append(p.wires, w)
}

// AttachCable arms both directions of a cable.
func (p *Plan) AttachCable(class Class, host, iohost int, cable *link.Duplex) {
	p.AttachWire(class, host, iohost, cable.AtoB)
	p.AttachWire(class, host, iohost, cable.BtoA)
}

// AttachVF applies matching PortFaults to one guest's VF: ring squeezes
// take effect immediately, carrier flaps are scheduled by Start.
func (p *Plan) AttachVF(vm int, port Port) {
	if p.prof == nil {
		return
	}
	for _, pf := range p.prof.Ports {
		if !matchIdx(pf.VM, vm) {
			continue
		}
		if pf.RingCap > 0 {
			port.SetRingCap(pf.RingCap)
			p.Counters.Inc("ring_squeezes", 1)
		}
		if pf.FlapEvery > 0 && pf.FlapFor > 0 {
			p.flappers = append(p.flappers, &flapper{
				plan: p, port: port, rng: p.rng.Fork(),
				every: pf.FlapEvery, dur: pf.FlapFor, vm: vm,
			})
		}
	}
}

// AttachIOhost arms matching WorkerFaults against one IOhost.
func (p *Plan) AttachIOhost(i int, h Staller) {
	if p.prof == nil {
		return
	}
	for _, wf := range p.prof.Workers {
		if !matchIdx(wf.IOhost, i) {
			continue
		}
		if wf.StallEvery > 0 && wf.StallFor > 0 {
			p.stallers = append(p.stallers, &staller{
				plan: p, h: h, rng: p.rng.Fork(),
				every: wf.StallEvery, dur: wf.StallFor, io: i,
			})
		}
	}
}

// Start schedules the plan's timed faults (flaps, stalls). Per-frame wire
// faults need no timers. Starting twice is a no-op.
func (p *Plan) Start() {
	if p.started {
		return
	}
	p.started = true
	for _, f := range p.flappers {
		f.schedule()
	}
	for _, s := range p.stallers {
		s.schedule()
	}
}

// Active reports whether the plan armed any injection site.
func (p *Plan) Active() bool {
	return len(p.wires) > 0 || len(p.flappers) > 0 || len(p.stallers) > 0
}

// WireDrops sums drops by reason across every faulted wire.
func (p *Plan) WireDrops(r link.DropReason) uint64 {
	var n uint64
	for _, w := range p.wires {
		n += w.Drops.Get(r)
	}
	return n
}

// WireDelivered sums delivered frames across every faulted wire.
func (p *Plan) WireDelivered() uint64 {
	var n uint64
	for _, w := range p.wires {
		n += w.Delivered
	}
	return n
}

// WireOffered sums frames offered to every faulted wire.
func (p *Plan) WireOffered() uint64 {
	var n uint64
	for _, w := range p.wires {
		n += w.Frames
	}
	return n
}

// instant records a zero-length CatFault span (when tracing is on).
func (p *Plan) instant(name string, arg uint64) {
	if !p.Tracer.Enabled() {
		return
	}
	p.Tracer.End(p.Tracer.BeginArg(trace.CatFault, name, 0, arg))
}

// wireFault is the per-wire-direction injector behind link.TxFault. Draw
// order per frame is fixed (loss, corrupt, reorder, jitter) and at most
// one fault applies, so verdicts replay exactly per seed.
type wireFault struct {
	plan *Plan
	rng  *sim.RNG
	cfg  linkCfg
}

// Apply implements link.TxFault.
func (f *wireFault) Apply(frame []byte) link.FaultVerdict {
	p := f.plan
	if f.cfg.loss > 0 && f.rng.Bool(f.cfg.loss) {
		p.Counters.Inc("frames_dropped", 1)
		p.instant("fault:loss", uint64(len(frame)))
		return link.FaultVerdict{Action: link.FaultDrop}
	}
	if f.cfg.corrupt > 0 && len(frame) > 0 && f.rng.Bool(f.cfg.corrupt) {
		// Flip one random bit; the wire's FCS check detects it at delivery
		// and the frame dies as corrupt_fcs, never reaching software.
		frame[f.rng.Intn(len(frame))] ^= 1 << f.rng.Intn(8)
		p.Counters.Inc("frames_corrupted", 1)
		p.instant("fault:corrupt", uint64(len(frame)))
		return link.FaultVerdict{Action: link.FaultCorrupt}
	}
	if f.cfg.reorder > 0 && f.rng.Bool(f.cfg.reorder) {
		p.Counters.Inc("frames_reordered", 1)
		p.instant("fault:reorder", uint64(f.cfg.reorderDelay))
		return link.FaultVerdict{Extra: f.cfg.reorderDelay}
	}
	if f.cfg.jitter > 0 && f.rng.Bool(f.cfg.jitter) {
		extra := f.rng.Exp(f.cfg.jitterMean)
		if extra > 0 {
			p.Counters.Inc("frames_jittered", 1)
			p.instant("fault:jitter", uint64(extra))
			return link.FaultVerdict{Extra: extra}
		}
	}
	return link.FaultVerdict{}
}

// flapper drops a port's carrier at exponential intervals.
type flapper struct {
	plan       *Plan
	port       Port
	rng        *sim.RNG
	every, dur sim.Time
	vm         int
}

func (f *flapper) schedule() {
	// +1 so two flaps can never collapse onto the same instant.
	f.plan.eng.After(f.rng.Exp(f.every)+1, f.flap)
}

func (f *flapper) flap() {
	f.port.SetLinkUp(false)
	f.plan.Counters.Inc("flaps", 1)
	var span trace.SpanID
	if f.plan.Tracer.Enabled() {
		span = f.plan.Tracer.BeginArg(trace.CatFault, "fault:flap", 0, uint64(f.vm))
	}
	f.plan.eng.After(f.dur, func() {
		f.port.SetLinkUp(true)
		f.plan.Tracer.End(span)
		f.schedule()
	})
}

// staller pins an IOhost's workers at exponential intervals.
type staller struct {
	plan       *Plan
	h          Staller
	rng        *sim.RNG
	every, dur sim.Time
	io         int
}

func (s *staller) schedule() {
	s.plan.eng.After(s.rng.Exp(s.every)+1, s.stall)
}

func (s *staller) stall() {
	s.h.StallWorkers(s.dur)
	s.plan.Counters.Inc("stalls", 1)
	if s.plan.Tracer.Enabled() {
		span := s.plan.Tracer.BeginArg(trace.CatFault, "fault:stall", 0, uint64(s.io))
		s.plan.eng.After(s.dur, func() { s.plan.Tracer.End(span) })
	}
	s.plan.eng.After(s.dur, s.schedule)
}
