package fault

import (
	"fmt"
	"testing"

	"vrio/internal/ethernet"
	"vrio/internal/link"
	"vrio/internal/sim"
)

func testFrame(i int) []byte {
	f := ethernet.Frame{
		Dst: ethernet.NewMAC(2), Src: ethernet.NewMAC(1),
		EtherType: ethernet.EtherTypePlain,
		Payload:   []byte(fmt.Sprintf("payload-%04d", i)),
	}
	b, err := f.Encode(0)
	if err != nil {
		panic(err)
	}
	return b
}

// runLossyWire pushes n frames through one faulted wire and returns a
// signature of everything observable: delivery order/count and all tallies.
func runLossyWire(seed uint64, n int) string {
	e := sim.NewEngine()
	var got []string
	w := link.NewWire(e, 8e9, 100, link.ReceiverFunc(func(frame []byte) {
		f, _ := ethernet.Decode(frame)
		got = append(got, string(f.Payload))
	}))
	p := NewPlan(e, &Profile{Links: []LinkFault{{
		Where: Anywhere, Host: Any, IOhost: Any,
		LossProb: 0.1, CorruptProb: 0.05,
		JitterProb: 0.2, JitterMean: 3000,
		ReorderProb: 0.05, ReorderDelay: 5000,
	}}}, seed)
	p.AttachWire(Channels, 0, 0, w)
	p.Start()
	for i := 0; i < n; i++ {
		w.Send(testFrame(i))
	}
	e.Run()
	return fmt.Sprintf("order=%v drops=%v corrupted=%d delivered=%d counters=%d/%d/%d/%d",
		got, w.Drops, w.Corrupted, w.Delivered,
		p.Counters.Get("frames_dropped"), p.Counters.Get("frames_corrupted"),
		p.Counters.Get("frames_jittered"), p.Counters.Get("frames_reordered"))
}

// TestPlanDeterministicPerSeed: same seed, byte-identical faults; a
// different seed produces a different run.
func TestPlanDeterministicPerSeed(t *testing.T) {
	a := runLossyWire(42, 400)
	b := runLossyWire(42, 400)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if c := runLossyWire(43, 400); c == a {
		t.Error("different seed produced identical faults (suspicious)")
	}
}

// TestPlanConservationUnderAllFaults: even with every fault kind firing,
// offered == delivered + dropped across the plan's wires.
func TestPlanConservationUnderAllFaults(t *testing.T) {
	e := sim.NewEngine()
	delivered := 0
	w := link.NewWire(e, 8e9, 100, link.ReceiverFunc(func([]byte) { delivered++ }))
	p := NewPlan(e, &Profile{Links: []LinkFault{{
		Where: Anywhere, Host: Any, IOhost: Any,
		LossProb: 0.2, CorruptProb: 0.2, JitterProb: 0.3, JitterMean: 2000,
		ReorderProb: 0.1, ReorderDelay: 4000,
	}}}, 7)
	p.AttachWire(Channels, 0, 0, w)
	for i := 0; i < 500; i++ {
		w.Send(testFrame(i))
	}
	e.Run()
	if w.Frames != w.Delivered+w.Drops.Total() {
		t.Fatalf("conservation: %d offered != %d delivered + %d dropped",
			w.Frames, w.Delivered, w.Drops.Total())
	}
	if p.WireOffered() != p.WireDelivered()+p.WireDrops(link.DropInjected)+p.WireDrops(link.DropCorruptFCS) {
		t.Error("plan-level aggregation does not add up")
	}
	if p.Counters.Get("frames_corrupted") != p.WireDrops(link.DropCorruptFCS) {
		t.Errorf("every corrupted frame must die at the FCS check: corrupted=%d, fcs drops=%d",
			p.Counters.Get("frames_corrupted"), p.WireDrops(link.DropCorruptFCS))
	}
}

// TestCableCfgSelectors: class and index selectors gate which cables arm.
func TestCableCfgSelectors(t *testing.T) {
	e := sim.NewEngine()
	p := NewPlan(e, &Profile{Links: []LinkFault{
		{Where: Channels, Host: 1, IOhost: Any, LossProb: 0.5},
		{Where: Uplinks, Host: Any, IOhost: 0, LossProb: 0.25},
	}}, 1)
	if cfg := p.cableCfg(Channels, 1, 0); cfg.loss != 0.5 {
		t.Errorf("channel host=1 loss = %v, want 0.5", cfg.loss)
	}
	if cfg := p.cableCfg(Channels, 0, 0); cfg.active() {
		t.Error("channel host=0 should not match a Host:1 fault")
	}
	if cfg := p.cableCfg(Uplinks, Any, 0); cfg.loss != 0.25 {
		t.Errorf("uplink iohost=0 loss = %v, want 0.25", cfg.loss)
	}
	if cfg := p.cableCfg(Stations, 3, Any); cfg.active() {
		t.Error("station cable matched nothing, should stay clean")
	}
	// Overlapping faults combine as independent probabilities.
	p2 := NewPlan(e, &Profile{Links: []LinkFault{
		{Host: Any, IOhost: Any, LossProb: 0.5},
		{Host: Any, IOhost: Any, LossProb: 0.5},
	}}, 1)
	if cfg := p2.cableCfg(Channels, 0, 0); cfg.loss != 0.75 {
		t.Errorf("combined loss = %v, want 0.75", cfg.loss)
	}
}

// fakePort records carrier and ring-cap calls.
type fakePort struct {
	up   bool
	caps []int
	ups  []bool
}

func (f *fakePort) SetLinkUp(up bool) { f.up = up; f.ups = append(f.ups, up) }
func (f *fakePort) SetRingCap(n int)  { f.caps = append(f.caps, n) }

// fakeStaller records stall windows.
type fakeStaller struct{ stalls []sim.Time }

func (f *fakeStaller) StallWorkers(d sim.Time) { f.stalls = append(f.stalls, d) }

// TestFlapperAndStallerSchedules: timed faults fire repeatedly with the
// configured down/stall windows, deterministically per seed.
func TestFlapperAndStallerSchedules(t *testing.T) {
	e := sim.NewEngine()
	p := NewPlan(e, &Profile{
		Ports:   []PortFault{{VM: Any, FlapEvery: 1000, FlapFor: 100, RingCap: 8}},
		Workers: []WorkerFault{{IOhost: 0, StallEvery: 2000, StallFor: 300}},
	}, 11)
	port := &fakePort{up: true}
	st := &fakeStaller{}
	missed := &fakeStaller{}
	p.AttachVF(0, port)
	p.AttachIOhost(0, st)
	p.AttachIOhost(1, missed) // WorkerFault selects IOhost 0 only
	p.Start()
	e.RunUntil(20000)

	if len(port.caps) != 1 || port.caps[0] != 8 {
		t.Errorf("ring cap calls = %v, want [8]", port.caps)
	}
	if p.Counters.Get("flaps") < 2 {
		t.Errorf("flaps = %d, want several over 20 mean intervals", p.Counters.Get("flaps"))
	}
	// Carrier strictly alternates down/up and ends restored.
	for i, up := range port.ups {
		if up != (i%2 == 1) {
			t.Fatalf("carrier sequence %v not alternating", port.ups)
		}
	}
	if len(st.stalls) == 0 {
		t.Error("staller never fired")
	}
	for _, d := range st.stalls {
		if d != 300 {
			t.Errorf("stall window %v, want 300", d)
		}
	}
	if len(missed.stalls) != 0 {
		t.Errorf("IOhost 1 stalled %d times, fault selects IOhost 0 only", len(missed.stalls))
	}
	if !p.Active() {
		t.Error("Active() false with armed sites")
	}
}

func TestParseProfile(t *testing.T) {
	if p, err := ParseProfile(""); p != nil || err != nil {
		t.Errorf("empty profile = %v, %v; want nil, nil", p, err)
	}
	for _, name := range PresetNames() {
		p, err := ParseProfile(name)
		if err != nil || p == nil {
			t.Errorf("preset %q: %v, %v", name, p, err)
		}
	}
	p, err := ParseProfile(`{"links":[{"where":"channel","loss":0.02}],"ports":[{"vm":1,"ring_cap":32}]}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Links) != 1 || p.Links[0].LossProb != 0.02 || p.Links[0].Where != Channels {
		t.Errorf("JSON links = %+v", p.Links)
	}
	if p.Links[0].Host != Any || p.Links[0].IOhost != Any {
		t.Errorf("omitted selectors must default to Any, got %+v", p.Links[0])
	}
	if len(p.Ports) != 1 || p.Ports[0].VM != 1 || p.Ports[0].RingCap != 32 {
		t.Errorf("JSON ports = %+v", p.Ports)
	}
	if _, err := ParseProfile("no-such-preset"); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := ParseProfile("{broken json"); err == nil {
		t.Error("broken JSON accepted")
	}
}

// TestNilProfilePlanInert: a nil profile arms nothing and never touches
// the wires.
func TestNilProfilePlanInert(t *testing.T) {
	e := sim.NewEngine()
	p := NewPlan(e, nil, 1)
	w := link.NewWire(e, 8e9, 0, nil)
	p.AttachWire(Channels, 0, 0, w)
	p.AttachVF(0, &fakePort{})
	p.AttachIOhost(0, &fakeStaller{})
	p.Start()
	if p.Active() {
		t.Error("nil profile armed an injection site")
	}
}
