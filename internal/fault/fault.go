// Package fault is the rack's deterministic fault injector: a seed-driven
// plan that damages the simulated fabric the way a hostile datacenter
// would, while keeping every run byte-identical per seed.
//
// A Profile declares what goes wrong and where:
//
//   - LinkFault — frame loss, in-flight corruption (detected and dropped by
//     the receive-side FCS check in package link), exponential delay jitter,
//     and explicit reordering, selected per cable class (channel, uplink,
//     station, local) and per VMhost/IOhost index.
//   - PortFault — VF carrier flaps (link down for a while, traffic in both
//     directions lost at the PHY) and receive-ring squeezes that force
//     overflow drops, selected per VM.
//   - WorkerFault — IOhost sidecore stalls: every worker pinned for a
//     window, modelling memory pressure, SMIs, or hypervisor pauses. Long
//     stalls trip the rack heartbeat detector, exactly like a crash would.
//
// A Plan instantiates a Profile against one simulation: every injection
// site gets its own forked sim.RNG stream (adding a site never perturbs the
// draws of another), all verdicts derive only from the seed and the
// deterministic event order, and the same seed therefore reproduces the
// same faults down to the byte. Attach sites in build order, then Start the
// plan's timers:
//
//	plan := fault.NewPlan(eng, profile, seed)
//	plan.AttachCable(fault.Channels, host, iohost, cable)
//	plan.AttachVF(vm, vf)
//	plan.AttachIOhost(i, hyp)
//	plan.Start()
//
// cluster.Build does all of this when Spec.Fault is set, so most users just
// set a Profile on the spec (or pass -fault-profile to the CLIs). A nil
// Profile attaches nothing: the datapath keeps its zero-allocation fast
// path, enforced by TestHotPathZeroAlloc and the fault_overhead_ns_op
// benchmark.
//
// Observability: the Plan tallies frames_dropped/frames_corrupted/flaps/
// stalls in Counters (exported as "fault" gauges in the metrics registry by
// cluster), per-wire drops are broken down by reason in link.DropStats, and
// when a Tracer is attached every injected event lands as a zero-length
// CatFault span on the trace timeline next to the requests it hit.
package fault

import (
	"encoding/json"
	"fmt"
	"strings"

	"vrio/internal/sim"
)

// Class selects which kind of cable a LinkFault applies to. The zero value
// matches every cable.
type Class string

// Cable classes, mirroring how cluster.Build wires the rack.
const (
	// Anywhere matches every cable class.
	Anywhere Class = ""
	// Channels are the dedicated VMhost<->IOhost channel cables (the vRIO
	// datapath: all transport traffic, heartbeat-adjacent re-home control).
	Channels Class = "channel"
	// Uplinks are the IOhost<->rack-switch cables (external traffic).
	Uplinks Class = "uplink"
	// Stations are the external-station<->rack-switch cables.
	Stations Class = "station"
	// Locals are the VMhost-local cables of the traditional (non-vRIO)
	// model.
	Locals Class = "local"
)

// Any matches every index in a Host/IOhost/VM selector field.
const Any = -1

// LinkFault injects wire-level damage on matching cables (both directions).
// Probabilities are per frame and drawn in a fixed order (loss, corruption,
// reorder, jitter); at most one verdict applies per frame.
type LinkFault struct {
	// Where selects the cable class; Host/IOhost narrow to one VMhost or
	// IOhost index (Any matches all). Station cables match on Host as the
	// station index; uplinks on IOhost.
	Where  Class `json:"where,omitempty"`
	Host   int   `json:"host"`
	IOhost int   `json:"iohost"`

	// LossProb loses the frame in flight (it still occupied the wire).
	LossProb float64 `json:"loss,omitempty"`
	// CorruptProb flips one random bit; the FCS check catches and drops the
	// frame at delivery.
	CorruptProb float64 `json:"corrupt,omitempty"`
	// JitterProb adds Exp(JitterMean) extra in-flight delay, which also
	// reorders the frame past later FIFO traffic.
	JitterProb float64  `json:"jitter,omitempty"`
	JitterMean sim.Time `json:"jitter_mean,omitempty"`
	// ReorderProb holds the frame back a fixed ReorderDelay — a blunter,
	// heavier-tailed reordering knob than jitter.
	ReorderProb  float64  `json:"reorder,omitempty"`
	ReorderDelay sim.Time `json:"reorder_delay,omitempty"`
}

// UnmarshalJSON defaults the selectors to Any, so JSON profiles that omit
// host/iohost mean "everywhere", not "index 0".
func (l *LinkFault) UnmarshalJSON(b []byte) error {
	type alias LinkFault
	a := alias{Host: Any, IOhost: Any}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*l = LinkFault(a)
	return nil
}

// PortFault flaps a VM's client VF carrier and/or squeezes its receive
// ring.
type PortFault struct {
	// VM selects the guest whose VF is damaged (Any matches all).
	VM int `json:"vm"`

	// FlapEvery is the mean (exponential) interval between carrier losses;
	// each flap holds the link down for FlapFor. Zero disables flapping.
	FlapEvery sim.Time `json:"flap_every,omitempty"`
	FlapFor   sim.Time `json:"flap_for,omitempty"`

	// RingCap, when positive, overrides the VF's receive-ring capacity so
	// bursts overflow and drop.
	RingCap int `json:"ring_cap,omitempty"`
}

// UnmarshalJSON defaults VM to Any.
func (p *PortFault) UnmarshalJSON(b []byte) error {
	type alias PortFault
	a := alias{VM: Any}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*p = PortFault(a)
	return nil
}

// WorkerFault stalls an IOhost's sidecore workers.
type WorkerFault struct {
	// IOhost selects the stalled host (Any matches all).
	IOhost int `json:"iohost"`

	// StallEvery is the mean (exponential) interval between stalls; each
	// stall pins every worker for StallFor.
	StallEvery sim.Time `json:"stall_every,omitempty"`
	StallFor   sim.Time `json:"stall_for,omitempty"`
}

// UnmarshalJSON defaults IOhost to Any.
func (w *WorkerFault) UnmarshalJSON(b []byte) error {
	type alias WorkerFault
	a := alias{IOhost: Any}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*w = WorkerFault(a)
	return nil
}

// Profile is the declarative fault model: what breaks, where, how often.
// The zero Profile injects nothing. Profiles are pure configuration — the
// seed arrives separately (cluster.Spec.FaultSeed / -fault-seed), so one
// profile replays under many seeds.
type Profile struct {
	Links   []LinkFault   `json:"links,omitempty"`
	Ports   []PortFault   `json:"ports,omitempty"`
	Workers []WorkerFault `json:"workers,omitempty"`
}

// Lossy returns a profile losing frames on the channel cables at rate, with
// a quarter of that rate as detected corruption — the faulttolerance
// experiment's sweep point.
func Lossy(rate float64) *Profile {
	return &Profile{Links: []LinkFault{{
		Where: Channels, Host: Any, IOhost: Any,
		LossProb: rate, CorruptProb: rate / 4,
	}}}
}

// Presets, by -fault-profile name.
var presets = map[string]func() *Profile{
	// lossy: 1% channel frame loss + 0.25% corruption. The transport's §4.5
	// retransmission machinery absorbs it; throughput dips, semantics hold.
	"lossy": func() *Profile { return Lossy(0.01) },
	// flaky: light loss plus delay jitter and reordering on the channels —
	// the out-of-order-delivery stressor.
	"flaky": func() *Profile {
		return &Profile{Links: []LinkFault{{
			Where: Channels, Host: Any, IOhost: Any,
			LossProb: 0.005, CorruptProb: 0.002,
			JitterProb: 0.02, JitterMean: 2 * sim.Microsecond,
			ReorderProb: 0.005, ReorderDelay: 3 * sim.Microsecond,
		}}}
	},
	// degraded: every cable in the rack is bad, and client rings are
	// squeezed to 64 slots, so bursts overflow.
	"degraded": degraded,
	// chaos: degraded plus VF carrier flaps and IOhost worker stalls — the
	// everything-at-once soak profile.
	"chaos": func() *Profile {
		p := degraded()
		p.Ports = append(p.Ports, PortFault{
			VM: Any, FlapEvery: 20 * sim.Millisecond, FlapFor: 200 * sim.Microsecond,
		})
		p.Workers = []WorkerFault{{
			IOhost: Any, StallEvery: 10 * sim.Millisecond, StallFor: 300 * sim.Microsecond,
		}}
		return p
	},
}

func degraded() *Profile {
	return &Profile{
		Links: []LinkFault{{
			Where: Anywhere, Host: Any, IOhost: Any,
			LossProb: 0.02, CorruptProb: 0.005,
			JitterProb: 0.05, JitterMean: 5 * sim.Microsecond,
			ReorderProb: 0.01, ReorderDelay: 3 * sim.Microsecond,
		}},
		Ports: []PortFault{{VM: Any, RingCap: 64}},
	}
}

// PresetNames lists the built-in profile names, for CLI help text.
func PresetNames() []string { return []string{"lossy", "flaky", "degraded", "chaos"} }

// ParseProfile resolves a -fault-profile flag value: empty means no faults
// (nil profile), a preset name resolves from the built-ins, and a string
// starting with '{' parses as a JSON Profile.
func ParseProfile(s string) (*Profile, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if mk, ok := presets[s]; ok {
		return mk(), nil
	}
	if strings.HasPrefix(s, "{") {
		var p Profile
		if err := json.Unmarshal([]byte(s), &p); err != nil {
			return nil, fmt.Errorf("fault: parsing JSON profile: %w", err)
		}
		return &p, nil
	}
	return nil, fmt.Errorf("fault: unknown profile %q (presets: %s, or inline JSON)",
		s, strings.Join(PresetNames(), ", "))
}
