package core

import (
	"encoding/binary"

	"vrio/internal/blockdev"
	"vrio/internal/cpu"
	"vrio/internal/ethernet"
	"vrio/internal/hypervisor"
	"vrio/internal/interpose"
	"vrio/internal/nic"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/virtio"
)

// ElvisHost is the sidecore configuration (§2 "Elvis"): dedicated host
// sidecores poll the guests' virtqueues, so guests never exit; completions
// are delivered exitless (ELI IPIs). The physical NIC, however, still
// interrupts the host — the "host intrpts" column of Table 3 that vRIO
// eliminates.
type ElvisHost struct {
	eng  *sim.Engine
	p    *params.P
	name string
	nic  *nic.NIC
	rng  *sim.RNG

	sidecores []*cpu.Core
	scanArmed []bool

	guests []*elvisGuest
}

type elvisGuest struct {
	g       *Guest
	id      int
	netQ    *netQueues
	blkQ    *blkQueue
	blkDone map[uint16]func([]byte, error)
	vf      *nic.VF
	chain   *interpose.Chain
	blk     blockdev.Backend
	// side is the sidecore serving this guest (round-robin assignment,
	// matching Elvis's static VM-to-sidecore mapping).
	side int
}

// NewElvisHost builds the host with its dedicated sidecores.
func NewElvisHost(eng *sim.Engine, p *params.P, name string, sidecores []*cpu.Core, hostNIC *nic.NIC, seed uint64) *ElvisHost {
	if len(sidecores) == 0 {
		panic("core: elvis host needs at least one sidecore")
	}
	h := &ElvisHost{
		eng: eng, p: p, name: name, nic: hostNIC,
		sidecores: sidecores,
		scanArmed: make([]bool, len(sidecores)),
		rng:       sim.NewRNG(seed ^ 0xe15715),
	}
	for i, sc := range sidecores {
		i := i
		sc.Polling = true
		sc.OnIdle = func() { h.armScan(i) }
	}
	return h
}

// Name reports the host name.
func (h *ElvisHost) Name() string { return h.name }

// Sidecores exposes the sidecore list (for utilization reporting).
func (h *ElvisHost) Sidecores() []*cpu.Core { return h.sidecores }

// AddVM provisions a VM, statically assigned to a sidecore round-robin.
func (h *ElvisHost) AddVM(id int, core *cpu.Core, mac ethernet.MAC, blk blockdev.Backend, chain *interpose.Chain) *Guest {
	if chain == nil {
		chain = interpose.NewChain()
	}
	eg := &elvisGuest{
		g:     &Guest{VM: hypervisor.NewVM(h.eng, h.p, id, core), netMAC: mac},
		id:    id,
		netQ:  newNetQueues(),
		chain: chain,
		blk:   blk,
		side:  len(h.guests) % len(h.sidecores),
	}
	eg.vf = h.nic.AddVF(mac, nic.ModeInterrupt)
	h.guests = append(h.guests, eg)

	eg.g.sendNet = func(f ethernet.Frame) {
		stack := h.p.GuestNetStackCost + perByte(h.p.GuestTxPerByte, len(f.Payload))
		eg.g.VM.Compute(stack, func() {
			raw, err := f.Encode(0)
			if err != nil {
				panic(err)
			}
			// Backpressure on a full ring, as with the baseline.
			var post func()
			post = func() {
				if !eg.netQ.guestSend(raw) {
					h.eng.After(20*sim.Microsecond, post)
					return
				}
				h.armScan(eg.side) // no exit: the sidecore will notice
			}
			post()
		})
	}

	eg.vf.OnInterrupt(func(frames [][]byte) { h.hostReceive(eg, frames) })

	if blk != nil {
		eg.blkQ = newBlkQueue()
		eg.blkDone = make(map[uint16]func([]byte, error))
		// Guest-side per-op CPU: stack + exitless completion.
		eg.g.blkCPU = func(int) sim.Time {
			return h.p.GuestNetStackCost + h.p.ELIDeliveryCost + h.p.GuestIRQCost
		}
		eg.g.blkWrite = func(sector uint64, data []byte, done func(error)) {
			req := virtio.BlkHdr{Type: virtio.BlkOut, Sector: sector}.Encode(nil)
			req = append(req, data...)
			h.guestBlkSubmit(eg, req, 1, func(resp []byte, err error) {
				if err == nil && (len(resp) < 1 || resp[0] != virtio.BlkOK) {
					err = blockdev.ErrDeviceFailed
				}
				done(err)
			})
		}
		eg.g.blkRead = func(sector uint64, sectors int, done func([]byte, error)) {
			req := virtio.BlkHdr{Type: virtio.BlkIn, Sector: sector}.Encode(nil)
			var n [4]byte
			binary.LittleEndian.PutUint32(n[:], uint32(sectors))
			req = append(req, n[:]...)
			h.guestBlkSubmit(eg, req, 1+sectors*h.p.SectorSize, func(resp []byte, err error) {
				if err != nil {
					done(nil, err)
					return
				}
				if len(resp) < 1 || resp[0] != virtio.BlkOK {
					done(nil, blockdev.ErrDeviceFailed)
					return
				}
				done(resp[1:], nil)
			})
		}
	}
	return eg.g
}

func (h *ElvisHost) guestBlkSubmit(eg *elvisGuest, req []byte, respCap int, done func([]byte, error)) {
	eg.g.VM.Compute(h.p.GuestNetStackCost, func() {
		head, ok := eg.blkQ.guestSubmit(req, respCap)
		if !ok {
			done(nil, virtio.ErrRingFull)
			return
		}
		eg.blkDone[head] = done
		h.armScan(eg.side) // no exit
	})
}

// armScan wakes sidecore i's poll loop within one poll interval, if it is
// idle and not already about to scan.
func (h *ElvisHost) armScan(i int) {
	sc := h.sidecores[i]
	if sc.Busy() || h.scanArmed[i] {
		return
	}
	h.scanArmed[i] = true
	delay := h.rng.Range(1, h.p.PollInterval)
	if h.p.MwaitEnabled {
		delay += h.p.MwaitWakeLatency // §4.6: low-power wait, slower wake
	}
	h.eng.After(delay, func() {
		h.scanArmed[i] = false
		h.scan(i)
	})
}

// scan drains the rings of every guest assigned to sidecore i.
func (h *ElvisHost) scan(i int) {
	found := false
	for _, eg := range h.guests {
		if eg.side != i {
			continue
		}
		for _, raw := range eg.netQ.hostPopTx(0) {
			found = true
			h.serveNetTx(i, eg, raw)
		}
		if eg.blkQ != nil {
			for {
				c, ok := eg.blkQ.hostPop()
				if !ok {
					break
				}
				found = true
				h.serveBlk(i, eg, c)
			}
		}
	}
	if found {
		h.armScan(i)
	}
}

// serveNetTx: sidecore processes one transmitted frame and hands it to the
// physical NIC.
func (h *ElvisHost) serveNetTx(i int, eg *elvisGuest, raw []byte) {
	cost := h.p.SidecoreServiceCost + perByte(h.p.SidecorePerByte, len(raw))
	h.sidecores[i].Exec(cpu.NoOwner, cpu.KindBusy, cost, func() {
		f, err := ethernet.Decode(raw)
		if err != nil {
			return
		}
		payload, icost, err := eg.chain.Process(interpose.ToDevice, uint16(eg.id), f.Payload)
		if err != nil {
			return
		}
		out := f
		out.Payload = payload
		send := func() {
			if err := eg.vf.SendFrame(out); err != nil {
				panic(err)
			}
			// The physical NIC raises a TX-completion interrupt, handled
			// by the sidecore — the second host interrupt of Table 3 and
			// the load that lets vRIO overtake Elvis at high N (§4.2).
			hypervisor.HostIRQ(h.sidecores[i], h.p, &eg.g.VM.Counters,
				hypervisor.CounterHostIRQs, func() {
					// The sidecore then notifies the guest exitless, and
					// the guest reclaims its TX descriptors.
					eg.g.VM.GuestIRQExitless(func() { eg.netQ.guestReapTx() })
				})
		}
		if icost > 0 {
			h.sidecores[i].Exec(cpu.NoOwner, cpu.KindBusy, icost, send)
		} else {
			send()
		}
	})
}

// hostReceive: the physical NIC interrupts the sidecore (Elvis's extra
// cost); the sidecore fills guest rx buffers and sends an exitless IPI.
func (h *ElvisHost) hostReceive(eg *elvisGuest, frames [][]byte) {
	sc := h.sidecores[eg.side]
	hypervisor.HostIRQ(sc, h.p, &eg.g.VM.Counters, hypervisor.CounterHostIRQs, func() {
		cost := h.p.SidecoreServiceCost * sim.Time(len(frames))
		sc.Exec(cpu.NoOwner, cpu.KindBusy, cost, func() {
			delivered := 0
			for _, raw := range frames {
				f, err := ethernet.Decode(raw)
				if err != nil {
					continue
				}
				payload, _, err := eg.chain.Process(interpose.ToGuest, uint16(eg.id), f.Payload)
				if err != nil {
					continue
				}
				in := f
				in.Payload = payload
				enc, _ := in.Encode(0)
				if eg.netQ.hostDeliver(enc) {
					delivered++
				}
			}
			if delivered == 0 {
				return
			}
			eg.g.VM.GuestIRQExitless(func() {
				for _, raw := range eg.netQ.guestReapRx() {
					f, err := ethernet.Decode(raw)
					if err != nil {
						continue
					}
					eg.g.VM.Compute(h.p.GuestNetStackCost, func() { eg.g.deliverNet(f) })
				}
			})
		})
	})
}

// serveBlk: sidecore executes the block request on the local backend; the
// ramdisk completion returns on the sidecore, which notifies the guest
// exitless.
func (h *ElvisHost) serveBlk(i int, eg *elvisGuest, c virtio.Chain) {
	sc := h.sidecores[i]
	sc.Exec(cpu.NoOwner, cpu.KindBusy, h.p.SidecoreServiceCost+h.p.BlockServiceCost, func() {
		bh, body, err := virtio.DecodeBlkHdr(c.Out)
		if err != nil {
			h.completeBlk(eg, c, []byte{virtio.BlkIOErr})
			return
		}
		respond := func(r blockdev.Response, data []byte) {
			status := []byte{virtio.BlkOK}
			if r.Err != nil {
				status[0] = virtio.BlkIOErr
			}
			h.completeBlk(eg, c, append(status, data...))
		}
		switch bh.Type {
		case virtio.BlkOut:
			payload, icost, perr := eg.chain.Process(interpose.ToDevice, uint16(eg.id), body)
			if perr != nil {
				h.completeBlk(eg, c, []byte{virtio.BlkIOErr})
				return
			}
			doSubmit := func() {
				eg.blk.Submit(blockdev.Request{Op: blockdev.OpWrite, Sector: bh.Sector, Data: payload},
					func(r blockdev.Response) { respond(r, nil) })
			}
			if icost > 0 {
				sc.Exec(cpu.NoOwner, cpu.KindBusy, icost, doSubmit)
			} else {
				doSubmit()
			}
		case virtio.BlkIn:
			n := int(binary.LittleEndian.Uint32(body))
			eg.blk.Submit(blockdev.Request{Op: blockdev.OpRead, Sector: bh.Sector, Sectors: n},
				func(r blockdev.Response) {
					if r.Err != nil {
						respond(r, nil)
						return
					}
					data, icost, perr := eg.chain.Process(interpose.ToGuest, uint16(eg.id), r.Data)
					if perr != nil {
						h.completeBlk(eg, c, []byte{virtio.BlkIOErr})
						return
					}
					if icost > 0 {
						sc.Exec(cpu.NoOwner, cpu.KindBusy, icost, func() { respond(r, data) })
					} else {
						respond(r, data)
					}
				})
		default:
			h.completeBlk(eg, c, []byte{virtio.BlkUnsupp})
		}
	})
}

func (h *ElvisHost) completeBlk(eg *elvisGuest, c virtio.Chain, resp []byte) {
	eg.blkQ.hostComplete(c, resp)
	eg.g.VM.GuestIRQExitless(func() {
		for _, comp := range eg.blkQ.guestReap() {
			if done := eg.blkDone[comp.Head]; done != nil {
				delete(eg.blkDone, comp.Head)
				done(comp.In, nil)
			}
		}
	})
}
