package core

import (
	"encoding/binary"

	"vrio/internal/blockdev"
	"vrio/internal/cpu"
	"vrio/internal/ethernet"
	"vrio/internal/hypervisor"
	"vrio/internal/interpose"
	"vrio/internal/nic"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/virtio"
)

// BaselineHost is the KVM/virtio trap-and-emulate configuration (§2
// "Baseline"): guests kick their virtqueues with exits, vhost I/O threads
// share one host core, device interrupts are handled by the host and
// injected into guests (whose EOI writes trap again). It is interposable —
// the chain runs in the host backend.
type BaselineHost struct {
	eng    *sim.Engine
	p      *params.P
	name   string
	ioCore *cpu.Core
	nic    *nic.NIC
	guests []*baselineGuest
}

type baselineGuest struct {
	g       *Guest
	id      int
	netQ    *netQueues
	blkQ    *blkQueue
	blkDone map[uint16]func([]byte, error) // per-chain completion, keyed by head
	vf      *nic.VF
	chain   *interpose.Chain
	blk     blockdev.Backend
}

// NewBaselineHost builds the host. ioCore is the shared core Linux uses for
// vhost threads ("Linux uses the core to run I/O threads and VCPUs as it
// pleases" — we pin VCPUs and share the extra core among I/O threads, the
// stable end of that spectrum).
func NewBaselineHost(eng *sim.Engine, p *params.P, name string, ioCore *cpu.Core, hostNIC *nic.NIC) *BaselineHost {
	return &BaselineHost{eng: eng, p: p, name: name, ioCore: ioCore, nic: hostNIC}
}

// Name reports the host name.
func (h *BaselineHost) Name() string { return h.name }

// IOCore exposes the shared vhost core.
func (h *BaselineHost) IOCore() *cpu.Core { return h.ioCore }

// AddVM provisions a VM with a virtio net device and, when blk is non-nil,
// a virtio block device backed by it. chain (optional) interposes on net
// traffic in the host backend.
func (h *BaselineHost) AddVM(id int, core *cpu.Core, mac ethernet.MAC, blk blockdev.Backend, chain *interpose.Chain) *Guest {
	if chain == nil {
		chain = interpose.NewChain()
	}
	bg := &baselineGuest{
		g:     &Guest{VM: hypervisor.NewVM(h.eng, h.p, id, core), netMAC: mac},
		id:    id,
		netQ:  newNetQueues(),
		chain: chain,
		blk:   blk,
	}
	bg.vf = h.nic.AddVF(mac, nic.ModeInterrupt)
	h.guests = append(h.guests, bg)

	bg.g.sendNet = func(f ethernet.Frame) { h.guestSendNet(bg, f) }
	bg.vf.OnInterrupt(func(frames [][]byte) { h.hostReceive(bg, frames) })

	if blk != nil {
		bg.blkQ = newBlkQueue()
		bg.blkDone = make(map[uint16]func([]byte, error))
		// Guest-side per-op CPU: stack + kick exit + injected completion
		// (guest IRQ handler + EOI exit).
		bg.g.blkCPU = func(int) sim.Time {
			return h.p.GuestNetStackCost + 2*h.p.ExitCost + h.p.GuestIRQCost
		}
		bg.g.blkWrite = func(sector uint64, data []byte, done func(error)) {
			h.guestBlkWrite(bg, sector, data, done)
		}
		bg.g.blkRead = func(sector uint64, sectors int, done func([]byte, error)) {
			h.guestBlkRead(bg, sector, sectors, done)
		}
	}
	return bg.g
}

// guestSendNet: guest stack -> ring -> exit (kick) -> vhost wakeup ->
// backend -> wire.
func (h *BaselineHost) guestSendNet(bg *baselineGuest, f ethernet.Frame) {
	stack := h.p.GuestNetStackCost + perByte(h.p.GuestTxPerByte, len(f.Payload))
	bg.g.VM.Compute(stack, func() {
		raw, err := f.Encode(0)
		if err != nil {
			panic(err)
		}
		// A full TX ring blocks the guest's send path (backpressure), as
		// virtio does; retry until a descriptor frees up.
		var post func()
		post = func() {
			if !bg.netQ.guestSend(raw) {
				h.eng.After(20*sim.Microsecond, post)
				return
			}
			// Bulk payloads kick the queue repeatedly (one exit per
			// BaselineKickBytes); small messages kick once.
			kicks := 1 + (len(f.Payload)-1)/h.p.BaselineKickBytes
			if len(f.Payload) == 0 {
				kicks = 1
			}
			bg.g.VM.ExitN(kicks, func() { // the kick(s) trap
				hypervisor.VhostWakeup(h.ioCore, h.p, func() {
					h.drainGuestTx(bg)
				})
			})
		}
		post()
	})
}

func (h *BaselineHost) drainGuestTx(bg *baselineGuest) {
	frames := bg.netQ.hostPopTx(0)
	for _, raw := range frames {
		raw := raw
		cost := h.p.HostBackendCost + perByte(h.p.HostPerByte, len(raw))
		h.ioCore.Exec(bg.id, cpu.KindBusy, cost, func() {
			f, err := ethernet.Decode(raw)
			if err != nil {
				return
			}
			payload, icost, err := bg.chain.Process(interpose.ToDevice, uint16(bg.id), f.Payload)
			if err != nil {
				return // dropped by policy
			}
			out := f
			out.Payload = payload
			finish := func() {
				if err := bg.vf.SendFrame(out); err != nil {
					panic(err)
				}
				// TX-completion interrupt from the physical NIC; the host
				// then injects the completion into the guest (whose EOI
				// write exits — baseline exit #2 or #3 of Table 3).
				hypervisor.HostIRQ(h.ioCore, h.p, &bg.g.VM.Counters,
					hypervisor.CounterHostIRQs, func() {
						bg.g.VM.GuestIRQInjected(h.ioCore, func() { bg.netQ.guestReapTx() })
					})
			}
			if icost > 0 {
				h.ioCore.Exec(bg.id, cpu.KindBusy, icost, finish)
			} else {
				finish()
			}
		})
	}
}

// hostReceive: physical IRQ on the host core -> backend copies frames into
// the guest rx ring -> injected interrupt -> guest reaps (EOI exits).
func (h *BaselineHost) hostReceive(bg *baselineGuest, frames [][]byte) {
	hypervisor.HostIRQ(h.ioCore, h.p, &bg.g.VM.Counters, hypervisor.CounterHostIRQs, func() {
		cost := h.p.HostBackendCost * sim.Time(len(frames))
		h.ioCore.Exec(bg.id, cpu.KindBusy, cost, func() {
			delivered := 0
			for _, raw := range frames {
				f, err := ethernet.Decode(raw)
				if err != nil {
					continue
				}
				payload, _, err := bg.chain.Process(interpose.ToGuest, uint16(bg.id), f.Payload)
				if err != nil {
					continue
				}
				in := f
				in.Payload = payload
				enc, _ := in.Encode(0)
				if bg.netQ.hostDeliver(enc) {
					delivered++
				}
			}
			if delivered == 0 {
				return
			}
			bg.g.VM.GuestIRQInjected(h.ioCore, func() {
				for _, raw := range bg.netQ.guestReapRx() {
					f, err := ethernet.Decode(raw)
					if err != nil {
						continue
					}
					bg.g.VM.Compute(h.p.GuestNetStackCost, func() { bg.g.deliverNet(f) })
				}
			})
		})
	})
}

// --- block path ---

func (h *BaselineHost) guestBlkWrite(bg *baselineGuest, sector uint64, data []byte, done func(error)) {
	req := virtio.BlkHdr{Type: virtio.BlkOut, Sector: sector}.Encode(nil)
	req = append(req, data...)
	h.guestBlkSubmit(bg, req, 1, func(resp []byte, err error) {
		if err == nil && (len(resp) < 1 || resp[0] != virtio.BlkOK) {
			err = blockdev.ErrDeviceFailed
		}
		done(err)
	})
}

func (h *BaselineHost) guestBlkRead(bg *baselineGuest, sector uint64, sectors int, done func([]byte, error)) {
	req := virtio.BlkHdr{Type: virtio.BlkIn, Sector: sector}.Encode(nil)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(sectors))
	req = append(req, n[:]...)
	h.guestBlkSubmit(bg, req, 1+sectors*h.p.SectorSize, func(resp []byte, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		if len(resp) < 1 || resp[0] != virtio.BlkOK {
			done(nil, blockdev.ErrDeviceFailed)
			return
		}
		done(resp[1:], nil)
	})
}

// guestBlkSubmit: ring -> exit -> vhost wakeup -> backend -> device ->
// host IRQ -> injected completion -> reap.
func (h *BaselineHost) guestBlkSubmit(bg *baselineGuest, req []byte, respCap int, done func([]byte, error)) {
	bg.g.VM.Compute(h.p.GuestNetStackCost, func() {
		head, ok := bg.blkQ.guestSubmit(req, respCap)
		if !ok {
			done(nil, virtio.ErrRingFull)
			return
		}
		bg.blkDone[head] = done
		bg.g.VM.Exit(func() {
			hypervisor.VhostWakeup(h.ioCore, h.p, func() {
				h.ioCore.Exec(bg.id, cpu.KindBusy, h.p.BlockServiceCost, func() {
					h.serveBlk(bg)
				})
			})
		})
	})
}

func (h *BaselineHost) serveBlk(bg *baselineGuest) {
	c, ok := bg.blkQ.hostPop()
	if !ok {
		return // already served by an earlier kick's drain
	}
	bh, body, err := virtio.DecodeBlkHdr(c.Out)
	if err != nil {
		bg.blkQ.hostComplete(c, []byte{virtio.BlkIOErr})
		h.completeBlk(bg)
		return
	}
	respond := func(resp blockdev.Response, data []byte) {
		status := []byte{virtio.BlkOK}
		if resp.Err != nil {
			status[0] = virtio.BlkIOErr
		}
		// Completion: physical-style device interrupt on the host.
		hypervisor.HostIRQ(h.ioCore, h.p, &bg.g.VM.Counters, hypervisor.CounterHostIRQs, func() {
			bg.blkQ.hostComplete(c, append(status, data...))
			h.completeBlk(bg)
		})
	}
	switch bh.Type {
	case virtio.BlkOut:
		// The baseline's vhost path copies block payloads.
		h.ioCore.Exec(bg.id, cpu.KindBusy, perByte(h.p.HostPerByte, len(body)), func() {
			bg.blk.Submit(blockdev.Request{Op: blockdev.OpWrite, Sector: bh.Sector, Data: body},
				func(r blockdev.Response) { respond(r, nil) })
		})
	case virtio.BlkIn:
		n := int(binary.LittleEndian.Uint32(body))
		bg.blk.Submit(blockdev.Request{Op: blockdev.OpRead, Sector: bh.Sector, Sectors: n},
			func(r blockdev.Response) {
				h.ioCore.Exec(bg.id, cpu.KindBusy, perByte(h.p.HostPerByte, len(r.Data)), func() {
					respond(r, r.Data)
				})
			})
	default:
		bg.blkQ.hostComplete(c, []byte{virtio.BlkUnsupp})
		h.completeBlk(bg)
	}
}

// completeBlk injects the completion interrupt; the guest reaps every
// finished chain and routes each to its submitter.
func (h *BaselineHost) completeBlk(bg *baselineGuest) {
	bg.g.VM.GuestIRQInjected(h.ioCore, func() {
		for _, comp := range bg.blkQ.guestReap() {
			if done := bg.blkDone[comp.Head]; done != nil {
				delete(bg.blkDone, comp.Head)
				done(comp.In, nil)
			}
		}
	})
}
