package core

import (
	"encoding/binary"
	"fmt"

	"vrio/internal/blockdev"
	"vrio/internal/sim"
	"vrio/internal/stats"
	"vrio/internal/transport"
	"vrio/internal/virtio"
)

// VolumeRouter is the guest-side half of distributed volumes (FlexBSO-style,
// arxiv 2409.02381; DESIGN.md §16). It owns one transport driver per stripe
// IOhost and steers sector I/O by extent:
//
//   - Writes fan out to every live replica of the extent and complete after
//     WriteQuorum acks; each write carries a fresh per-extent version, and a
//     replica that already holds a newer version answers BlkStale, so a
//     stale writer can never roll an extent back. A replica that missed an
//     earlier version answers BlkGap (the contiguous fence refuses to jump
//     a sub-extent write past a gap) and is queued for a heal.
//   - Reads go to the least-loaded live replica (outstanding-request count,
//     slot order breaking ties) and demand the extent's committed version;
//     a replica that missed a write answers BlkStale and the router retries
//     the next candidate.
//   - On IOhost death (OnHostDeath, wired from the rack controller's
//     heartbeat detector) a rebuild engine re-replicates every lost copy
//     onto survivors — reading each extent from a live replica and writing
//     it to the least-full survivor outside the replica set — while
//     foreground traffic keeps flowing. The same engine heals gap-nacked
//     live replicas with a full-extent copy, restoring their ability to
//     take sub-extent writes (without it, a W=R volume would lose its
//     quorum permanently after one missed write). Copies are stamped with
//     the source's reported version — never a version the copied bytes
//     might not hold — so the fence stays honest around racing writes.
//
// The router is single-goroutine (simulation event context) and its R=1
// write fast path is allocation-free: ops, request buffers, and callbacks
// are all recycled.
type VolumeRouter struct {
	eng      *sim.Engine
	spec     blockdev.VolumeSpec
	deviceID uint16
	drivers  []*transport.Driver
	alive    []bool
	emap     *blockdev.ExtentMap

	// committed is the highest version known quorum-durable per extent;
	// reads demand it. verAlloc hands out write versions (it can run ahead
	// of committed while writes are in flight).
	committed map[uint64]uint64
	verAlloc  map[uint64]uint64

	// loads counts outstanding router requests per host (read steering).
	loads []int
	// hostExtents counts replica cells per host (rebuild target choice).
	hostExtents []int

	writeFree []*volWriteOp
	readFree  []*volReadOp

	// Rebuild engine state: a FIFO of lost (extent, slot) cells and heal
	// jobs for gap-nacked live replicas, drained with bounded concurrency.
	// reserved holds per-extent bitmasks of hosts already chosen by
	// in-flight jobs, so two jobs rebuilding different slots of one extent
	// never pick the same survivor. healing holds per-extent bitmasks of
	// slots with a heal queued or in flight, so a storm of gap nacks on one
	// cell queues a single heal.
	rebuildQ      []rebuildJob
	rebuildActive int
	reserved      map[uint64]uint64
	healing       map[uint64]uint8

	// RebuildConcurrency bounds in-flight rebuild and heal copies
	// (default 2).
	RebuildConcurrency int

	// RebuildBytes totals payload bytes copied by completed rebuilds and
	// heals.
	RebuildBytes uint64

	// Counters: "vol_writes", "vol_reads", "quorum_losses", "write_nacks",
	// "gap_nacks", "stale_reads", "read_retries", "read_failures",
	// "host_deaths", "rebuild_extents", "rebuild_retargets", "rebuild_redo",
	// "rebuild_stuck", "extents_lost", "replica_heals", "heal_stuck".
	Counters stats.Counters
}

// maxVolReplicas bounds R so per-op replica state fits in fixed arrays (the
// write fast path must not allocate) and per-extent heal state fits a uint8
// slot bitmask.
const maxVolReplicas = 8

// maxVolStripes bounds N so the per-extent host bitmasks (reserved,
// FullyReplicated, pickRebuildTarget) fit a uint64.
const maxVolStripes = 64

// maxRebuildAttempts bounds failure-driven retries per rebuild job. A job
// whose only live source is version-fenced (it missed a write the dead host
// acked) can never complete until a foreground write heals the source, so
// after this many failed copies the job is dropped as "rebuild_stuck" rather
// than spinning. Redo passes (a foreground write outran the copy) reset the
// count — they are progress, not failure.
const maxRebuildAttempts = 6

type rebuildJob struct {
	extent   uint64
	slot     int
	attempts int
	// heal marks a copy onto the cell's own (live, gap-nacked) host rather
	// than a re-replication of a dead host's cell onto a fresh survivor.
	heal bool
}

// NewVolumeRouter builds a router for spec over one driver per stripe host
// (drivers[i] must reach the replica registration on IOhost i under
// deviceID). Spec must validate and Replicas must be at most maxVolReplicas.
func NewVolumeRouter(eng *sim.Engine, spec blockdev.VolumeSpec, deviceID uint16, drivers []*transport.Driver) *VolumeRouter {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if spec.Replicas > maxVolReplicas {
		panic(fmt.Sprintf("core: at most %d replicas, got %d", maxVolReplicas, spec.Replicas))
	}
	if spec.Stripes > maxVolStripes {
		panic(fmt.Sprintf("core: at most %d stripes, got %d", maxVolStripes, spec.Stripes))
	}
	if len(drivers) != spec.Stripes {
		panic(fmt.Sprintf("core: volume needs %d drivers, got %d", spec.Stripes, len(drivers)))
	}
	r := &VolumeRouter{
		eng:                eng,
		spec:               spec,
		deviceID:           deviceID,
		drivers:            drivers,
		alive:              make([]bool, spec.Stripes),
		emap:               blockdev.NewExtentMap(spec),
		committed:          make(map[uint64]uint64),
		verAlloc:           make(map[uint64]uint64),
		loads:              make([]int, spec.Stripes),
		hostExtents:        make([]int, spec.Stripes),
		reserved:           make(map[uint64]uint64),
		healing:            make(map[uint64]uint8),
		RebuildConcurrency: 2,
	}
	for i := range r.alive {
		r.alive[i] = true
	}
	ne := spec.NumExtents()
	for e := uint64(0); e < ne; e++ {
		for slot := 0; slot < spec.Replicas; slot++ {
			r.hostExtents[r.emap.Replica(e, slot)]++
		}
	}
	return r
}

// Spec exposes the volume geometry.
func (r *VolumeRouter) Spec() blockdev.VolumeSpec { return r.spec }

// ExtentMap exposes the placement map (test verification).
func (r *VolumeRouter) ExtentMap() *blockdev.ExtentMap { return r.emap }

// Committed reports the quorum-durable version of extent e.
func (r *VolumeRouter) Committed(e uint64) uint64 { return r.committed[e] }

// --- writes ---

// volWriteOp is one in-flight quorum write. Recycled; cbs are prebound so
// the fan-out never allocates closures.
type volWriteOp struct {
	r       *VolumeRouter
	extent  uint64
	version uint64
	req     []byte // BlkHdr + VolHdr + data, reused across ops
	hosts   [maxVolReplicas]int
	cbs     [maxVolReplicas]transport.BlkCallback
	sent    int // replicas targeted
	pending int // callbacks still outstanding
	acks    int
	needed  int
	decided bool
	done    func(error)
}

func (r *VolumeRouter) getWriteOp() *volWriteOp {
	if n := len(r.writeFree); n > 0 {
		op := r.writeFree[n-1]
		r.writeFree = r.writeFree[:n-1]
		return op
	}
	op := &volWriteOp{r: r}
	for i := range op.cbs {
		slot := i
		op.cbs[i] = func(resp []byte, err error) { op.complete(slot, resp, err) }
	}
	return op
}

func (r *VolumeRouter) putWriteOp(op *volWriteOp) {
	op.done = nil
	op.acks, op.sent, op.pending, op.decided = 0, 0, 0, false
	r.writeFree = append(r.writeFree, op)
}

// Write stores data at sector, completing done after WriteQuorum replica
// acks. If fewer than WriteQuorum replicas of the sector's extent are live,
// done fires immediately with blockdev.ErrQuorumLost — a lost quorum is a
// clean error, never a hang. data is copied into the request buffer before
// Write returns.
func (r *VolumeRouter) Write(sector uint64, data []byte, done func(error)) {
	extent := r.spec.ExtentOf(sector)
	op := r.getWriteOp()
	op.extent = extent

	// Fan out only to live replicas: a send to a detected-dead host would
	// burn the full retransmission budget for a guaranteed nack.
	n := 0
	for slot := 0; slot < r.spec.Replicas; slot++ {
		h := r.emap.Replica(extent, slot)
		if r.alive[h] {
			op.hosts[n] = h
			n++
		}
	}
	if n < r.spec.WriteQuorum {
		r.Counters.Inc("quorum_losses", 1)
		r.putWriteOp(op)
		done(blockdev.ErrQuorumLost)
		return
	}
	// Allocate the version only once the write will actually be sent, so a
	// detected outage doesn't burn version numbers and widen the
	// committed/verAlloc gap the rebuild redo check reasons about.
	v := r.verAlloc[extent] + 1
	r.verAlloc[extent] = v
	op.version = v

	op.req = virtio.BlkHdr{Type: virtio.BlkVolOut, Sector: sector}.Encode(op.req[:0])
	op.req = virtio.VolHdr{Extent: extent, Version: v}.Encode(op.req)
	op.req = append(op.req, data...)
	op.sent, op.pending, op.needed = n, n, r.spec.WriteQuorum
	op.done = done
	r.Counters.Inc("vol_writes", 1)
	q := uint8(extent % uint64(r.spec.Queues))
	for i := 0; i < n; i++ {
		r.loads[op.hosts[i]]++
		r.drivers[op.hosts[i]].SendBlkQ(uint8(virtio.DeviceBlk), r.deviceID, q, op.req, op.cbs[i])
	}
}

func (op *volWriteOp) complete(slot int, resp []byte, err error) {
	r := op.r
	r.loads[op.hosts[slot]]--
	op.pending--
	if err == nil && len(resp) >= 1 && resp[0] == virtio.BlkOK {
		op.acks++
	} else {
		r.Counters.Inc("write_nacks", 1)
		if err == nil && len(resp) >= 1 && resp[0] == virtio.BlkGap {
			// The replica is live but missed an earlier version; it will
			// nack every sub-extent write until a full-extent copy heals
			// it, so queue that heal now.
			r.Counters.Inc("gap_nacks", 1)
			r.queueHeal(op.extent, op.hosts[slot])
		}
	}
	if !op.decided {
		if op.acks >= op.needed {
			op.decided = true
			if op.version > r.committed[op.extent] {
				r.committed[op.extent] = op.version
			}
			op.done(nil)
		} else if op.acks+op.pending < op.needed {
			// Even if every remaining replica acks, the quorum is out of
			// reach: fail now instead of waiting out retransmit budgets.
			op.decided = true
			r.Counters.Inc("quorum_losses", 1)
			op.done(blockdev.ErrQuorumLost)
		}
	}
	// The request buffer is aliased by in-flight transport chunks; the op
	// can only be recycled once every replica's send has resolved.
	if op.pending == 0 {
		r.putWriteOp(op)
	}
}

// --- reads ---

// volReadOp is one in-flight replica-steered read. Recycled; cb is prebound.
type volReadOp struct {
	r     *VolumeRouter
	req   []byte
	cand  [maxVolReplicas]int
	n     int // candidates
	next  int // next candidate index
	cur   int // host currently tried
	queue uint8
	cb    transport.BlkCallback
	done  func(data []byte, err error)
}

func (r *VolumeRouter) getReadOp() *volReadOp {
	if n := len(r.readFree); n > 0 {
		op := r.readFree[n-1]
		r.readFree = r.readFree[:n-1]
		return op
	}
	op := &volReadOp{r: r}
	op.cb = func(resp []byte, err error) { op.complete(resp, err) }
	return op
}

func (r *VolumeRouter) putReadOp(op *volReadOp) {
	op.done = nil
	op.n, op.next = 0, 0
	r.readFree = append(r.readFree, op)
}

// Read fetches sectors sectors starting at sector, steering to the
// least-loaded live replica and demanding the extent's committed version.
// Stale or failed replicas are retried in load order; when every candidate
// is exhausted done fires with blockdev.ErrNoReplica. The data slice passed
// to done is borrowed — it is only valid during the callback.
func (r *VolumeRouter) Read(sector uint64, sectors int, done func(data []byte, err error)) {
	extent := r.spec.ExtentOf(sector)
	op := r.getReadOp()

	// Candidates: live replicas, ascending outstanding-load, slot order
	// breaking ties (deterministic). Insertion sort over at most R entries.
	n := 0
	for slot := 0; slot < r.spec.Replicas; slot++ {
		h := r.emap.Replica(extent, slot)
		if !r.alive[h] {
			continue
		}
		i := n
		for i > 0 && r.loads[op.cand[i-1]] > r.loads[h] {
			op.cand[i] = op.cand[i-1]
			i--
		}
		op.cand[i] = h
		n++
	}
	if n == 0 {
		r.putReadOp(op)
		done(nil, blockdev.ErrNoReplica)
		return
	}
	op.n, op.next = n, 0
	op.done = done
	op.queue = uint8(extent % uint64(r.spec.Queues))

	op.req = virtio.BlkHdr{Type: virtio.BlkVolIn, Sector: sector}.Encode(op.req[:0])
	op.req = virtio.VolHdr{Extent: extent, Version: r.committed[extent]}.Encode(op.req)
	op.req = append(op.req,
		byte(sectors), byte(sectors>>8), byte(sectors>>16), byte(sectors>>24))
	r.Counters.Inc("vol_reads", 1)
	op.try()
}

func (op *volReadOp) try() {
	r := op.r
	if op.next >= op.n {
		r.Counters.Inc("read_failures", 1)
		done := op.done
		r.putReadOp(op)
		done(nil, blockdev.ErrNoReplica)
		return
	}
	op.cur = op.cand[op.next]
	op.next++
	r.loads[op.cur]++
	r.drivers[op.cur].SendBlkQ(uint8(virtio.DeviceBlk), r.deviceID, op.queue, op.req, op.cb)
}

func (op *volReadOp) complete(resp []byte, err error) {
	r := op.r
	r.loads[op.cur]--
	if err == nil && len(resp) >= 1+virtio.VolReadVerSize && resp[0] == virtio.BlkOK {
		done := op.done
		// Successful vol-reads are [BlkOK][replica version:8][data]; the
		// version matters to rebuild/heal copies, not foreground reads.
		data := resp[1+virtio.VolReadVerSize:]
		done(data, nil)
		r.putReadOp(op)
		return
	}
	if err == nil && len(resp) >= 1 && resp[0] == virtio.BlkStale {
		r.Counters.Inc("stale_reads", 1)
	}
	r.Counters.Inc("read_retries", 1)
	op.try()
}

// --- rebuild engine ---

// OnHostDeath marks host dead and queues a rebuild for every replica cell it
// held. The rack controller's heartbeat detector calls this (via
// cluster.Testbed.IOhostDied) the moment it declares the IOhost down;
// rebuild copies then proceed concurrently with foreground traffic, bounded
// by RebuildConcurrency.
func (r *VolumeRouter) OnHostDeath(host int) {
	if host < 0 || host >= len(r.alive) || !r.alive[host] {
		return
	}
	r.alive[host] = false
	r.Counters.Inc("host_deaths", 1)
	ne := r.spec.NumExtents()
	for e := uint64(0); e < ne; e++ {
		for slot := 0; slot < r.spec.Replicas; slot++ {
			if r.emap.Replica(e, slot) == host {
				r.rebuildQ = append(r.rebuildQ, rebuildJob{extent: e, slot: slot})
			}
		}
	}
	r.pumpRebuild()
}

// Rebuilding reports whether any rebuild work is queued or in flight.
func (r *VolumeRouter) Rebuilding() bool {
	return r.rebuildActive > 0 || len(r.rebuildQ) > 0
}

// FullyReplicated reports whether every extent has all Replicas copies on
// live, distinct hosts.
func (r *VolumeRouter) FullyReplicated() bool {
	ne := r.spec.NumExtents()
	for e := uint64(0); e < ne; e++ {
		var seen uint64
		for slot := 0; slot < r.spec.Replicas; slot++ {
			h := r.emap.Replica(e, slot)
			if !r.alive[h] || seen&(1<<uint(h)) != 0 {
				return false
			}
			seen |= 1 << uint(h)
		}
	}
	return true
}

func (r *VolumeRouter) pumpRebuild() {
	for r.rebuildActive < r.RebuildConcurrency && len(r.rebuildQ) > 0 {
		job := r.rebuildQ[0]
		r.rebuildQ = r.rebuildQ[1:]
		r.rebuildActive++
		r.startRebuild(job)
	}
}

// finishRebuild retires one in-flight job and pulls the next off the queue.
func (r *VolumeRouter) finishRebuild() {
	r.rebuildActive--
	r.pumpRebuild()
}

// requeueRebuild retries a job later (its source or target failed, or a
// concurrent foreground write outran the copy). Jobs that keep failing are
// dropped after maxRebuildAttempts — as "rebuild_stuck" (the cell stays
// degraded until a later host death re-queues it) or "heal_stuck" (the
// replica stays fenced until the next gap nack re-queues the heal).
func (r *VolumeRouter) requeueRebuild(job rebuildJob) {
	r.rebuildActive--
	job.attempts++
	if job.attempts >= maxRebuildAttempts {
		if job.heal {
			r.healing[job.extent] &^= 1 << uint(job.slot)
			r.Counters.Inc("heal_stuck", 1)
		} else {
			r.Counters.Inc("rebuild_stuck", 1)
		}
	} else {
		r.rebuildQ = append(r.rebuildQ, job)
	}
	r.pumpRebuild()
}

// queueHeal enqueues a full-extent copy onto a live replica that gap-nacked
// a write (it missed an earlier version and now refuses every sub-extent
// write to the extent). The healing bitmask collapses the storm of nacks a
// gapped replica produces under write load into one queued heal per cell.
func (r *VolumeRouter) queueHeal(e uint64, host int) {
	slot := r.emap.Slot(e, host)
	if slot < 0 {
		return // the cell moved off this host since the nack
	}
	bit := uint8(1) << uint(slot)
	if r.healing[e]&bit != 0 {
		return // a heal for this cell is already queued or in flight
	}
	r.healing[e] |= bit
	r.rebuildQ = append(r.rebuildQ, rebuildJob{extent: e, slot: slot, heal: true})
	r.pumpRebuild()
}

// pickRebuildTarget chooses the live host with the fewest replica cells that
// neither holds extent e already nor is reserved by another in-flight job
// for e. Lowest index breaks ties (deterministic). Returns -1 if no host
// qualifies (the volume stays degraded for this cell).
func (r *VolumeRouter) pickRebuildTarget(e uint64) int {
	best := -1
	for h := 0; h < r.spec.Stripes; h++ {
		if !r.alive[h] || r.emap.Slot(e, h) >= 0 || r.reserved[e]&(1<<uint(h)) != 0 {
			continue
		}
		if best < 0 || r.hostExtents[h] < r.hostExtents[best] {
			best = h
		}
	}
	return best
}

func (r *VolumeRouter) startRebuild(job rebuildJob) {
	e, slot := job.extent, job.slot
	cellHost := r.emap.Replica(e, slot)
	if job.heal {
		// A heal copies onto the cell's own live host. If that host has died
		// since the gap nack, the death path queued a regular rebuild for
		// the cell; this job is moot.
		if !r.alive[cellHost] {
			r.healing[e] &^= 1 << uint(slot)
			r.finishRebuild()
			return
		}
	} else if r.alive[cellHost] {
		// A requeued job may have been healed in the meantime (e.g. the cell
		// was retargeted while this copy of the job waited).
		r.finishRebuild()
		return
	}
	// Source: the first live replica of the extent on another slot.
	src := -1
	for s := 0; s < r.spec.Replicas; s++ {
		if s == slot {
			continue
		}
		if h := r.emap.Replica(e, s); r.alive[h] {
			src = h
			break
		}
	}
	if src < 0 {
		if job.heal {
			// The gapped copy is the extent's only live replica: the bytes
			// of the missed writes exist nowhere, so the cell stays fenced
			// until a full-extent foreground overwrite re-silvers it.
			r.healing[e] &^= 1 << uint(slot)
			r.Counters.Inc("heal_stuck", 1)
		} else {
			// Every copy of the extent died: data loss, nothing to rebuild
			// from.
			r.Counters.Inc("extents_lost", 1)
		}
		r.finishRebuild()
		return
	}
	target := cellHost
	if !job.heal {
		target = r.pickRebuildTarget(e)
		if target < 0 {
			r.Counters.Inc("rebuild_stuck", 1)
			r.finishRebuild()
			return
		}
		r.reserved[e] |= 1 << uint(target)
	}

	ver := r.committed[e]
	startAlloc := r.verAlloc[e]
	sector := e * r.spec.ExtentSectors
	sectors := r.spec.ExtentSectors
	if end := r.spec.CapacitySectors; sector+sectors > end {
		sectors = end - sector // final partial extent
	}
	q := uint8(e % uint64(r.spec.Queues))

	// Read the whole extent from the source at the committed version. The
	// rebuild path allocates freely — it runs only during recovery.
	req := virtio.BlkHdr{Type: virtio.BlkVolIn, Sector: sector}.Encode(nil)
	req = virtio.VolHdr{Extent: e, Version: ver}.Encode(req)
	req = append(req, byte(sectors), byte(sectors>>8), byte(sectors>>16), byte(sectors>>24))
	r.loads[src]++
	r.drivers[src].SendBlkQ(uint8(virtio.DeviceBlk), r.deviceID, q, req, func(resp []byte, err error) {
		r.loads[src]--
		if err != nil || len(resp) < 1+virtio.VolReadVerSize || resp[0] != virtio.BlkOK {
			// Source failed or fell stale mid-copy: release the target and
			// retry (the next attempt re-picks source and target).
			if !job.heal {
				r.reserved[e] &^= 1 << uint(target)
			}
			r.requeueRebuild(job)
			return
		}
		// Stamp the copy with the version the source actually served — at
		// least ver, possibly newer. Stamping anything the copied bytes
		// might not hold (e.g. assuming committed) would un-fence writes
		// the target never saw.
		vsrc := binary.LittleEndian.Uint64(resp[1:])
		data := append([]byte(nil), resp[1+virtio.VolReadVerSize:]...) // resp is borrowed
		wreq := virtio.BlkHdr{Type: virtio.BlkVolOut, Sector: sector}.Encode(nil)
		wreq = virtio.VolHdr{Extent: e, Version: vsrc}.Encode(wreq)
		wreq = append(wreq, data...)
		r.loads[target]++
		r.drivers[target].SendBlkQ(uint8(virtio.DeviceBlk), r.deviceID, q, wreq, func(resp []byte, err error) {
			r.loads[target]--
			if !job.heal {
				r.reserved[e] &^= 1 << uint(target)
			}
			if err != nil || len(resp) < 1 || resp[0] != virtio.BlkOK {
				// Target died under us (crash during rebuild), or raced a
				// newer version: requeue; a rebuild retry picks a different
				// survivor, a heal retry re-reads the newer state.
				if !job.heal {
					r.Counters.Inc("rebuild_retargets", 1)
				}
				r.requeueRebuild(job)
				return
			}
			if job.heal {
				// Good enough even if a write raced the copy: the stamp is
				// the source's true version, so the target stays honestly
				// fenced for anything newer, and the next gap nack (if any)
				// queues a fresh heal.
				r.healing[e] &^= 1 << uint(slot)
				r.RebuildBytes += uint64(len(data))
				r.Counters.Inc("replica_heals", 1)
				r.finishRebuild()
				return
			}
			if r.verAlloc[e] != startAlloc || r.committed[e] != ver {
				// A foreground write was allocated or committed while the
				// copy was in flight; it fanned out before Retarget, so the
				// new target missed it. Copy again at the newer state (the
				// honest version stamp keeps the copy fenced in the
				// meantime). Comparing against the start-of-job snapshots —
				// not verAlloc vs committed — means a long-failed write
				// (verAlloc permanently ahead of committed) cannot wedge the
				// job in an endless redo loop. Redo is progress, not
				// failure: reset the attempt budget.
				r.Counters.Inc("rebuild_redo", 1)
				job.attempts = -1 // requeueRebuild increments; redo restarts at 0
				r.requeueRebuild(job)
				return
			}
			r.hostExtents[r.emap.Replica(e, slot)]--
			r.hostExtents[target]++
			r.emap.Retarget(e, slot, target)
			r.RebuildBytes += uint64(len(data))
			r.Counters.Inc("rebuild_extents", 1)
			r.finishRebuild()
		})
	})
}
