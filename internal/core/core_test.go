package core_test

// Model-behavior tests. The hosts need a full fabric to be meaningful, so
// these tests assemble testbeds through the cluster package (an external
// test package avoids the import cycle) and assert core-level contracts.

import (
	"bytes"
	"testing"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/ethernet"
	"vrio/internal/interpose"
	"vrio/internal/sim"
)

func build(t *testing.T, m core.ModelName, vms int, withBlock bool) *cluster.Testbed {
	t.Helper()
	return cluster.Build(cluster.Spec{
		Model: m, VMsPerHost: vms, WithBlock: withBlock, NoJitter: true, Seed: 42,
	})
}

func TestGuestWithoutBlockPanics(t *testing.T) {
	tb := build(t, core.ModelOptimum, 1, false)
	g := tb.Guests[0]
	if g.HasBlock() {
		t.Fatal("optimum guest claims a block device")
	}
	defer func() {
		if recover() == nil {
			t.Error("WriteBlock without a device did not panic")
		}
	}()
	g.WriteBlock(0, make([]byte, 512), func(error) {})
}

func TestBlockCPUCostOrdering(t *testing.T) {
	// Per-op guest CPU must order elvis < baseline and elvis < vrio for
	// 4 KiB ops: vRIO pays encapsulation, the baseline pays exits.
	costs := map[core.ModelName]sim.Time{}
	for _, m := range []core.ModelName{core.ModelElvis, core.ModelBaseline, core.ModelVRIO} {
		tb := build(t, m, 1, true)
		costs[m] = tb.Guests[0].BlockCPUCost(4096)
	}
	if !(costs[core.ModelElvis] < costs[core.ModelBaseline]) {
		t.Errorf("elvis %v !< baseline %v", costs[core.ModelElvis], costs[core.ModelBaseline])
	}
	if !(costs[core.ModelElvis] < costs[core.ModelVRIO]) {
		t.Errorf("elvis %v !< vrio %v", costs[core.ModelElvis], costs[core.ModelVRIO])
	}
	// vRIO's cost grows with size (per-byte encapsulation); elvis's does not.
	tbV := build(t, core.ModelVRIO, 1, true)
	if tbV.Guests[0].BlockCPUCost(65536) <= tbV.Guests[0].BlockCPUCost(512) {
		t.Error("vrio block CPU cost does not grow with size")
	}
	tbE := build(t, core.ModelElvis, 1, true)
	if tbE.Guests[0].BlockCPUCost(65536) != tbE.Guests[0].BlockCPUCost(512) {
		t.Error("elvis block CPU cost should be size-independent (zero copy)")
	}
}

func TestGuestTrafficCounters(t *testing.T) {
	tb := build(t, core.ModelElvis, 2, false)
	a, b := tb.Guests[0], tb.Guests[1]
	got := 0
	b.OnNetRx(func(f ethernet.Frame) { got++ })
	for i := 0; i < 3; i++ {
		a.SendNet(ethernet.Frame{Dst: b.MAC(), EtherType: ethernet.EtherTypePlain, Payload: []byte{byte(i)}})
	}
	tb.Eng.RunUntil(10 * sim.Millisecond)
	if got != 3 {
		t.Fatalf("guest-to-guest frames delivered: %d", got)
	}
	if a.TxFrames != 3 {
		t.Errorf("TxFrames = %d", a.TxFrames)
	}
	if b.RxFrames != 3 {
		t.Errorf("RxFrames = %d", b.RxFrames)
	}
}

func TestVMToVMWithinVRIOHost(t *testing.T) {
	// Two vRIO guests talk through the IOhost, never the local hypervisor.
	tb := build(t, core.ModelVRIO, 2, false)
	a, b := tb.Guests[0], tb.Guests[1]
	var payload []byte
	b.OnNetRx(func(f ethernet.Frame) { payload = f.Payload })
	a.SendNet(ethernet.Frame{Dst: b.MAC(), EtherType: ethernet.EtherTypePlain, Payload: []byte("east-west")})
	tb.Eng.RunUntil(10 * sim.Millisecond)
	if string(payload) != "east-west" {
		t.Fatalf("payload = %q", payload)
	}
	if tb.IOHyp.Counters.Get("net_fwd_local") != 1 {
		t.Errorf("traffic did not pass the IOhost: %s", tb.IOHyp.Counters.String())
	}
}

func TestBlockRoundTripAllModels(t *testing.T) {
	for _, m := range []core.ModelName{core.ModelBaseline, core.ModelElvis, core.ModelVRIO} {
		tb := build(t, m, 1, true)
		g := tb.Guests[0]
		want := bytes.Repeat([]byte{0xEE}, 8192)
		var got []byte
		g.WriteBlock(100, want, func(err error) {
			if err != nil {
				t.Fatalf("%s write: %v", m, err)
			}
			g.ReadBlock(100, 16, func(data []byte, err error) {
				if err != nil {
					t.Fatalf("%s read: %v", m, err)
				}
				got = data
			})
		})
		tb.Eng.RunUntil(50 * sim.Millisecond)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: block round trip corrupted (%d bytes)", m, len(got))
		}
	}
}

func TestInterpositionAppliesToLocalModels(t *testing.T) {
	// A firewall chain at the host backend must drop matching guest
	// transmissions under elvis and baseline alike.
	for _, m := range []core.ModelName{core.ModelElvis, core.ModelBaseline} {
		fw := interpose.NewFirewall(0, []byte("BLOCKME"))
		tb := cluster.Build(cluster.Spec{
			Model: m, VMsPerHost: 2, NoJitter: true, Seed: 43,
			NetChain: func(host, vm int) *interpose.Chain {
				if vm == 0 {
					return interpose.NewChain(fw)
				}
				return nil
			},
		})
		a, b := tb.Guests[0], tb.Guests[1]
		delivered := 0
		b.OnNetRx(func(ethernet.Frame) { delivered++ })
		a.SendNet(ethernet.Frame{Dst: b.MAC(), EtherType: ethernet.EtherTypePlain, Payload: []byte("BLOCKME now")})
		a.SendNet(ethernet.Frame{Dst: b.MAC(), EtherType: ethernet.EtherTypePlain, Payload: []byte("fine")})
		tb.Eng.RunUntil(10 * sim.Millisecond)
		if delivered != 1 {
			t.Errorf("%s: delivered %d frames, want 1 (firewall)", m, delivered)
		}
		if fw.Dropped != 1 {
			t.Errorf("%s: firewall dropped %d", m, fw.Dropped)
		}
	}
}

func TestBaselineGeneratesExitsOthersDoNot(t *testing.T) {
	for _, m := range []core.ModelName{core.ModelOptimum, core.ModelElvis, core.ModelVRIO, core.ModelBaseline} {
		tb := build(t, m, 2, false)
		a, b := tb.Guests[0], tb.Guests[1]
		b.OnNetRx(func(ethernet.Frame) {})
		for i := 0; i < 5; i++ {
			a.SendNet(ethernet.Frame{Dst: b.MAC(), EtherType: ethernet.EtherTypePlain, Payload: []byte("x")})
		}
		tb.Eng.RunUntil(10 * sim.Millisecond)
		exits := a.VM.Counters.Get("exits")
		if m == core.ModelBaseline && exits == 0 {
			t.Error("baseline transmitted without exits")
		}
		if m != core.ModelBaseline && exits != 0 {
			t.Errorf("%s took %d exits", m, exits)
		}
	}
}

func TestBareClientUsesHostIRQsNotELI(t *testing.T) {
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMsPerHost: 2, BareClients: true, NoJitter: true, Seed: 44,
	})
	a, b := tb.Guests[0], tb.Guests[1]
	got := 0
	b.OnNetRx(func(ethernet.Frame) { got++ })
	a.SendNet(ethernet.Frame{Dst: b.MAC(), EtherType: ethernet.EtherTypePlain, Payload: []byte("bare")})
	tb.Eng.RunUntil(10 * sim.Millisecond)
	if got != 1 {
		t.Fatal("bare-metal client did not receive traffic")
	}
	if b.VM.Counters.Get("guest_irqs") != 0 {
		t.Error("bare client took virtualized guest IRQs")
	}
	if b.VM.Counters.Get("host_irqs") == 0 {
		t.Error("bare client took no host IRQs")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, sim.Time) {
		// NoJitter lets the event queue drain (the jitter process never
		// stops); determinism holds either way.
		tb := cluster.Build(cluster.Spec{Model: core.ModelVRIO, VMsPerHost: 3, NoJitter: true, Seed: 77})
		a, b := tb.Guests[0], tb.Guests[1]
		count := uint64(0)
		b.OnNetRx(func(f ethernet.Frame) {
			count++
			if count < 100 {
				b.SendNet(ethernet.Frame{Dst: a.MAC(), EtherType: ethernet.EtherTypePlain, Payload: f.Payload})
			}
		})
		a.OnNetRx(func(f ethernet.Frame) {
			a.SendNet(ethernet.Frame{Dst: b.MAC(), EtherType: ethernet.EtherTypePlain, Payload: f.Payload})
		})
		a.SendNet(ethernet.Frame{Dst: b.MAC(), EtherType: ethernet.EtherTypePlain, Payload: []byte("ping")})
		tb.Eng.Run()
		return count, tb.Eng.Now()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Errorf("identical seeds diverged: (%d,%v) vs (%d,%v)", c1, t1, c2, t2)
	}
	if c1 != 100 {
		t.Errorf("ping-pong count = %d", c1)
	}
}
