package core

import (
	"encoding/binary"
	"errors"
	"testing"

	"vrio/internal/blockdev"
	"vrio/internal/bufpool"
	"vrio/internal/ethernet"
	"vrio/internal/transport"
	"vrio/internal/virtio"
)

// volRig wires a VolumeRouter with R=1 over a transport rig whose endpoint
// acks every replica write (the IOhost + device behavior is covered by the
// iohyp and cluster tests; here we exercise the router itself over the real
// transport datapath).
func volRig() (*transport.Rig, *VolumeRouter) {
	r := transport.NewRig()
	okResp := []byte{virtio.BlkOK}
	r.Endpoint.BlkReq = func(src ethernet.MAC, h transport.Header, req *bufpool.Frame) {
		r.Endpoint.RespondBlk(src, h, okResp)
		req.Release()
	}
	spec := blockdev.VolumeSpec{
		Stripes: 1, Replicas: 1, WriteQuorum: 1,
		ExtentSectors: 128, CapacitySectors: 4096, Queues: 4,
	}
	vr := NewVolumeRouter(r.Eng, spec, 7, []*transport.Driver{r.Driver})
	return r, vr
}

func TestVolumeRouterWriteCommits(t *testing.T) {
	r, vr := volRig()
	data := make([]byte, 4096)
	completions := 0
	for i := 0; i < 10; i++ {
		vr.Write(uint64(i*8), data, func(err error) {
			if err != nil {
				t.Errorf("write %d: %v", i, err)
			}
			completions++
		})
		r.Step()
	}
	if completions != 10 {
		t.Fatalf("completions = %d, want 10", completions)
	}
	// All ten writes hit extent 0 (sectors 0..72 < 128): committed tracks
	// the version allocator.
	if got := vr.Committed(0); got != 10 {
		t.Fatalf("Committed(0) = %d, want 10", got)
	}
	if got := vr.Counters.Get("vol_writes"); got != 10 {
		t.Fatalf("vol_writes = %d, want 10", got)
	}
}

func TestVolumeRouterQuorumLossFailsCleanly(t *testing.T) {
	r, vr := volRig()
	vr.OnHostDeath(0)
	var got error
	fired := false
	vr.Write(0, make([]byte, 512), func(err error) { got = err; fired = true })
	// The failure must be synchronous — no transport round trip, no hang.
	if !fired {
		t.Fatal("quorum-loss write did not complete immediately")
	}
	if !errors.Is(got, blockdev.ErrQuorumLost) {
		t.Fatalf("err = %v, want ErrQuorumLost", got)
	}
	fired = false
	vr.Read(0, 1, func(_ []byte, err error) {
		if !errors.Is(err, blockdev.ErrNoReplica) {
			t.Errorf("read err = %v, want ErrNoReplica", err)
		}
		fired = true
	})
	if !fired {
		t.Fatal("no-replica read did not complete immediately")
	}
	r.Step() // nothing should be in flight
	if n := r.Driver.InFlightBlk(); n != 0 {
		t.Fatalf("in-flight after quorum loss: %d, want 0", n)
	}
}

func TestVolumeRouterReadRoundtrip(t *testing.T) {
	r := transport.NewRig()
	// Endpoint serves reads with a recognizable payload and acks writes.
	r.Endpoint.BlkReq = func(src ethernet.MAC, h transport.Header, req *bufpool.Frame) {
		bh, body, err := virtio.DecodeBlkHdr(req.B)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		switch bh.Type {
		case virtio.BlkVolOut:
			r.Endpoint.RespondBlk(src, h, []byte{virtio.BlkOK})
		case virtio.BlkVolIn:
			vh, rest, err := virtio.DecodeVolHdr(body)
			if err != nil || len(rest) < 4 {
				t.Fatalf("vol decode: %v", err)
			}
			if vh.Extent != 0 {
				t.Errorf("extent = %d, want 0", vh.Extent)
			}
			n := int(rest[0]) | int(rest[1])<<8
			// Successful vol-reads carry the serving replica's extent
			// version between the status byte and the data.
			out := make([]byte, 1+virtio.VolReadVerSize+n*512)
			out[0] = virtio.BlkOK
			binary.LittleEndian.PutUint64(out[1:], vh.Version)
			for i := 1 + virtio.VolReadVerSize; i < len(out); i++ {
				out[i] = 0x5A
			}
			r.Endpoint.RespondBlk(src, h, out)
		default:
			t.Errorf("unexpected blk type %d", bh.Type)
		}
		req.Release()
	}
	spec := blockdev.VolumeSpec{
		Stripes: 1, Replicas: 1, WriteQuorum: 1,
		ExtentSectors: 128, CapacitySectors: 4096, Queues: 1,
	}
	vr := NewVolumeRouter(r.Eng, spec, 7, []*transport.Driver{r.Driver})
	got := 0
	vr.Read(8, 2, func(data []byte, err error) {
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = len(data)
		if data[0] != 0x5A {
			t.Fatalf("payload byte = %#x, want 0x5A", data[0])
		}
	})
	r.Step()
	if got != 2*512 {
		t.Fatalf("read returned %d bytes, want %d", got, 2*512)
	}
	if n := vr.Counters.Get("vol_reads"); n != 1 {
		t.Fatalf("vol_reads = %d, want 1", n)
	}
}

// TestVolumeWriteQuorumZeroAlloc is the allocation guard for the R=1 write
// fast path: after warmup, a full quorum write — version allocation, header
// encode, transport round trip, ack counting, commit — performs zero heap
// allocations.
func TestVolumeWriteQuorumZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; guard runs in the non-race pass")
	}
	r, vr := volRig()
	data := make([]byte, 4096)
	done := 0
	cb := func(err error) {
		if err != nil {
			t.Errorf("vol write: %v", err)
		}
		done++
	}
	send := func() {
		vr.Write(0, data, cb)
		r.Step()
	}
	for i := 0; i < 100; i++ {
		send()
	}
	allocs := testing.AllocsPerRun(200, send)
	if allocs != 0 {
		t.Fatalf("vol write fast path allocates %.1f allocs/op, want 0 — "+
			"a write op, request buffer, or callback is escaping to the heap", allocs)
	}
	if done == 0 {
		t.Fatal("no completions observed")
	}
}

// BenchmarkVolumeWriteQuorum measures the R=1 quorum write round trip over
// the rig datapath (vol_write_quorum_* in BENCH json).
func BenchmarkVolumeWriteQuorum(b *testing.B) {
	r, vr := volRig()
	data := make([]byte, 4096)
	cb := func(err error) {
		if err != nil {
			b.Fatalf("vol write: %v", err)
		}
	}
	for i := 0; i < 100; i++ {
		vr.Write(0, data, cb)
		r.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vr.Write(0, data, cb)
		r.Step()
	}
}
