package core

import (
	"vrio/internal/cpu"
	"vrio/internal/ethernet"
	"vrio/internal/hypervisor"
	"vrio/internal/nic"
	"vrio/internal/params"
	"vrio/internal/sim"
)

// OptimumHost is the SRIOV+ELI configuration (§2 "Optimum"): every VM owns
// a virtual function of the host NIC and receives its interrupts exitless.
// There is no host I/O processing at all — and therefore no interposition.
type OptimumHost struct {
	eng  *sim.Engine
	p    *params.P
	name string
	nic  *nic.NIC
}

// NewOptimumHost builds the host around its (already cabled) NIC.
func NewOptimumHost(eng *sim.Engine, p *params.P, name string, hostNIC *nic.NIC) *OptimumHost {
	return &OptimumHost{eng: eng, p: p, name: name, nic: hostNIC}
}

// Name reports the host name.
func (h *OptimumHost) Name() string { return h.name }

// AddVM provisions a VM with a dedicated SRIOV VF. Optimum has no
// paravirtual block path (§5: "there is no such thing as an SRIOV
// ramdisk").
func (h *OptimumHost) AddVM(id int, core *cpu.Core, mac ethernet.MAC) *Guest {
	g := &Guest{
		VM:     hypervisor.NewVM(h.eng, h.p, id, core),
		netMAC: mac,
	}
	vf := h.nic.AddVF(mac, nic.ModeInterrupt)

	g.sendNet = func(f ethernet.Frame) {
		// Guest network stack, then straight to the VF: no exit, no host.
		g.VM.Compute(h.p.GuestNetStackCost+perByte(h.p.GuestTxPerByte, len(f.Payload)), func() {
			if err := vf.SendFrame(f); err != nil {
				panic(err)
			}
			// TX-completion interrupt, delivered exitless — the second
			// guest interrupt of Table 3.
			h.eng.After(h.p.NICProcessCost, func() { g.VM.GuestIRQExitless(nil) })
		})
	}

	vf.OnInterrupt(func(frames [][]byte) {
		// ELI delivers the device interrupt directly to the guest; the
		// guest stack then processes each frame of the coalesced batch.
		g.VM.GuestIRQExitless(func() {
			for _, raw := range frames {
				f, err := ethernet.Decode(raw)
				if err != nil {
					continue
				}
				g.VM.Compute(h.p.GuestNetStackCost, func() { g.deliverNet(f) })
			}
		})
	})
	return g
}
