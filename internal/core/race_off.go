//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in. The
// volume-write zero-allocation guard skips under -race: the detector
// instruments allocations and would fail the guard for reasons unrelated to
// the router fast path.
const raceEnabled = false
