package core

import (
	"vrio/internal/virtio"
)

// Queue geometry for the paravirtual devices. 256 descriptors of 2 KiB
// cover plain Ethernet frames in one segment and 4 KiB block payloads in a
// short chain.
const (
	queueSize   = 256
	segmentSize = 2048
	rxBuffers   = 128
	rxBufferLen = 2048
)

// netQueues is the guest/host shared-memory state of one paravirtual net
// device: a TX virtqueue carrying guest frames out, and an RX virtqueue the
// guest stocks with empty buffers for the host to fill — both real
// byte-level rings (package virtio), exactly the structures Elvis polls and
// the baseline kicks.
type netQueues struct {
	tx *virtio.Ring
	rx *virtio.Ring
	// rxFree are host-side pre-popped guest buffers awaiting frames.
	rxFree []virtio.Chain
	// RxDrops counts frames dropped for want of guest rx buffers.
	RxDrops uint64
	// reap is the reusable completion batch (TX and RX reaps are fully
	// consumed before returning, so one batch serves both); pop is the
	// scratch chain for the immediate-push TX drain.
	reap virtio.ReapBatch
	pop  virtio.Chain
}

func newNetQueues() *netQueues {
	tx, err := virtio.NewRing(queueSize, segmentSize)
	if err != nil {
		panic(err)
	}
	rx, err := virtio.NewRing(queueSize, segmentSize)
	if err != nil {
		panic(err)
	}
	q := &netQueues{tx: tx, rx: rx}
	q.stockRx(rxBuffers)
	return q
}

// stockRx posts n empty receive buffers (guest side) and pre-pops them
// (host side) so the host can fill them on frame arrival.
func (q *netQueues) stockRx(n int) {
	for i := 0; i < n; i++ {
		if _, err := q.rx.Add(nil, rxBufferLen); err != nil {
			break // ring full: stop stocking
		}
	}
	for {
		c, ok, err := q.rx.Pop()
		if err != nil || !ok {
			break
		}
		q.rxFree = append(q.rxFree, c)
	}
}

// guestSend places an encoded frame on the TX ring. It reports whether the
// ring had room (a full ring drops, as a real overloaded virtio device
// does).
func (q *netQueues) guestSend(frame []byte) bool {
	_, err := q.tx.Add(frame, 0)
	return err == nil
}

// hostPopTx drains up to max pending TX frames (host side). The scratch
// chain is reusable because each chain is pushed back before the next pop;
// frames are cloned since they outlive the descriptors.
func (q *netQueues) hostPopTx(max int) [][]byte {
	var out [][]byte
	for max <= 0 || len(out) < max {
		ok, err := q.tx.PopInto(&q.pop)
		if err != nil || !ok {
			break
		}
		frame := append([]byte{}, q.pop.Out...)
		q.tx.Push(q.pop, nil)
		out = append(out, frame)
	}
	return out
}

// guestReapTx frees completed TX descriptors (guest side).
func (q *netQueues) guestReapTx() int {
	return q.tx.ReapInto(&q.reap, 0)
}

// hostDeliver fills one guest rx buffer with the frame (host side). False
// means no buffer was available and the frame is dropped.
func (q *netQueues) hostDeliver(frame []byte) bool {
	if len(q.rxFree) == 0 {
		q.RxDrops++
		return false
	}
	c := q.rxFree[0]
	q.rxFree = q.rxFree[1:]
	q.rx.Push(c, frame)
	return true
}

// guestReapRx collects received frames and restocks the buffers. Frames are
// cloned out of the reusable batch because they escape into the guest stack.
func (q *netQueues) guestReapRx() [][]byte {
	n := q.rx.ReapInto(&q.reap, 0)
	if n == 0 {
		return nil
	}
	frames := make([][]byte, 0, n)
	for i := range q.reap.Completions {
		frames = append(frames, append([]byte{}, q.reap.Completions[i].In...))
	}
	q.stockRx(n)
	return frames
}

// txPending reports whether the TX ring has unpopped requests (the Elvis
// sidecore's poll predicate).
func (q *netQueues) txPending() bool { return q.tx.HasAvail() }

// blkQueue is the shared-memory state of one paravirtual block device: a
// single virtqueue whose chains carry a virtio-blk header plus data out,
// and reserve in-space for status (+ read data).
type blkQueue struct {
	ring *virtio.Ring
	// reap is the reusable completion batch for guestReap.
	reap virtio.ReapBatch
}

func newBlkQueue() *blkQueue {
	// Block chains move 4 KiB payloads: 2 KiB segments chain fine, but a
	// larger ring keeps many requests in flight.
	ring, err := virtio.NewRing(queueSize, segmentSize)
	if err != nil {
		panic(err)
	}
	return &blkQueue{ring: ring}
}

// guestSubmit posts one block request; respCap reserves room for the
// response (1 status byte, plus data for reads). It reports ring-full.
func (q *blkQueue) guestSubmit(req []byte, respCap int) (uint16, bool) {
	head, err := q.ring.Add(req, respCap)
	return head, err == nil
}

// hostPop takes the next request (host side). It deliberately uses the
// allocating Pop: block chains are retained across asynchronous backend
// completions, so a reusable scratch chain would be clobbered while still
// referenced.
func (q *blkQueue) hostPop() (virtio.Chain, bool) {
	c, ok, err := q.ring.Pop()
	if err != nil {
		return virtio.Chain{}, false
	}
	return c, ok
}

// hostComplete pushes the response for a chain.
func (q *blkQueue) hostComplete(c virtio.Chain, resp []byte) {
	q.ring.Push(c, resp)
}

// guestReap collects completed requests. The returned slice and each
// completion's In data are valid until the next guestReap on this queue;
// callers consume them synchronously.
func (q *blkQueue) guestReap() []virtio.Completion {
	q.ring.ReapInto(&q.reap, 0)
	return q.reap.Completions
}

// pending reports whether requests await the host (poll predicate).
func (q *blkQueue) pending() bool { return q.ring.HasAvail() }
