package core

import (
	"encoding/binary"

	"vrio/internal/cpu"
	"vrio/internal/ethernet"
	"vrio/internal/hypervisor"
	"vrio/internal/nic"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/trace"
	"vrio/internal/transport"
	"vrio/internal/virtio"
)

// VRIOHost is the client (VMhost) side of the paper's contribution: the
// local hypervisor only assigns each guest an SRIOV VF on the channel NIC
// and gets out of the way (§4.1: "Henceforth, local hypervisors remain
// uninvolved and unaware of the I/O performed by their guests"). The
// guest's vRIO drivers — the paravirtual front-ends plus the transport
// driver — talk straight to the remote I/O hypervisor.
type VRIOHost struct {
	eng    *sim.Engine
	p      *params.P
	name   string
	chNIC  *nic.NIC
	iohost ethernet.MAC

	// Tracer, when non-nil, is handed to every client's transport driver so
	// requests carry trace context from submission to completion. Set it
	// before AddClient.
	Tracer *trace.Tracer
}

// NewVRIOHost builds a VMhost whose channel NIC is cabled toward the
// IOhost with MAC iohost.
func NewVRIOHost(eng *sim.Engine, p *params.P, name string, channelNIC *nic.NIC, iohost ethernet.MAC) *VRIOHost {
	return &VRIOHost{eng: eng, p: p, name: name, chNIC: channelNIC, iohost: iohost}
}

// Name reports the host name.
func (h *VRIOHost) Name() string { return h.name }

// VRIOClient is one provisioned IOclient: the guest plus its transport
// plumbing. The cluster layer uses TransportMAC to register the client's
// devices with the I/O hypervisor.
type VRIOClient struct {
	Guest  *Guest
	Driver *transport.Driver
	Port   *nic.MessagePort

	host   *VRIOHost
	bare   bool
	paused bool
	blkID  uint16
	netID  uint16

	// DroppedWhilePaused counts frames lost during a migration blackout.
	DroppedWhilePaused uint64
}

// Pause freezes the client for live migration (§4.6): transmissions stop
// and arriving frames are lost, exactly as during a real VM blackout. The
// §4.5 retransmission machinery keeps running, so in-flight block requests
// survive the pause.
func (c *VRIOClient) Pause() { c.paused = true }

// Resume unfreezes the client after migration.
func (c *VRIOClient) Resume() { c.paused = false }

// Paused reports the migration-blackout state.
func (c *VRIOClient) Paused() bool { return c.paused }

// AttachChannel moves the client's transport onto a new SRIOV VF — the
// destination VMhost's channel after a live migration (or a Tvirtio-class
// fallback NIC; §4.6: "Our vRIO implementation correctly runs using
// Tvirtio, Tsriov, and any other NIC"). iohost is the IOhost address on
// the new cable.
func (c *VRIOClient) AttachChannel(vf *nic.VF, iohost ethernet.MAC) {
	c.Port = nic.NewMessagePort(vf, c.host.p.MTU)
	c.wireChannel(vf)
	c.Driver.SetPort(c.Port)
	c.Driver.SetRemote(iohost)
}

// wireChannel binds interrupt delivery and message dispatch for the
// client's current port.
func (c *VRIOClient) wireChannel(vf *nic.VF) {
	h := c.host
	vf.OnInterrupt(func(frames [][]byte) {
		if c.paused {
			c.DroppedWhilePaused += uint64(len(frames))
			return
		}
		deliver := func() { c.Port.HandleBatch(frames) }
		if c.bare {
			hypervisor.HostIRQ(c.Guest.VM.Core, h.p, &c.Guest.VM.Counters, hypervisor.CounterHostIRQs, deliver)
		} else {
			c.Guest.VM.GuestIRQExitless(deliver)
		}
	})
	c.Port.OnMessage = func(_ ethernet.MAC, msg []byte, _ bool, _ int) {
		if err := c.Driver.Deliver(msg); err != nil {
			c.Guest.VM.Counters.Inc("bad_msgs", 1)
		}
	}
}

// TransportMAC reports the client's T-interface address (§4.6).
func (c *VRIOClient) TransportMAC() ethernet.MAC { return c.Port.LocalMAC() }

// VMConfig configures one IOclient.
type VMConfig struct {
	// ID is the VM identity (context-switch owner, device numbering).
	ID int
	// Core runs the VCPU (or the bare-metal OS).
	Core *cpu.Core
	// NetMAC is the front-end's outward-facing F address.
	NetMAC ethernet.MAC
	// TransportMAC is the SRIOV VF address on the channel (T address).
	TransportMAC ethernet.MAC
	// WithBlock attaches a remote paravirtual block device.
	WithBlock bool
	// Bare marks a bare-metal IOclient: no virtualization layer, so
	// interrupts arrive as plain host interrupts (§4.6 "Friendliness to
	// Heterogeneity").
	Bare bool
}

// AddClient provisions an IOclient (VM or bare-metal OS) on this host.
// Device ids: net = 2*ID, blk = 2*ID+1, unique per client.
func (h *VRIOHost) AddClient(cfg VMConfig) *VRIOClient {
	c := &VRIOClient{
		Guest: &Guest{VM: hypervisor.NewVM(h.eng, h.p, cfg.ID, cfg.Core), netMAC: cfg.NetMAC},
		host:  h,
		bare:  cfg.Bare,
		netID: uint16(2 * cfg.ID),
		blkID: uint16(2*cfg.ID + 1),
	}
	vf := h.chNIC.AddVF(cfg.TransportMAC, nic.ModeInterrupt)
	c.Port = nic.NewMessagePort(vf, h.p.MTU)
	c.Driver = transport.NewDriver(h.eng, c.Port, h.iohost, transport.Config{
		InitialTimeout: h.p.RetransmitTimeout,
		MaxRetransmits: h.p.MaxRetransmits,
	})
	c.Driver.Tracer = h.Tracer

	// Receive: the channel VF interrupts the guest exitless (SRIOV+ELI,
	// §4.2); the guest's transport driver decapsulates and calls the
	// front-ends. Bare-metal clients take a plain host interrupt instead.
	c.wireChannel(vf)

	// Net front-end.
	c.Driver.NetRx = func(_ uint16, raw []byte) {
		f, err := ethernet.Decode(raw)
		if err != nil {
			return
		}
		// Decapsulation already charged via the IRQ; the guest stack
		// processes the frame.
		c.Guest.VM.Compute(h.p.GuestNetStackCost+h.p.EncapCost, func() { c.Guest.deliverNet(f) })
	}
	c.Guest.sendNet = func(f ethernet.Frame) {
		if c.paused {
			c.DroppedWhilePaused++
			return // migration blackout: the guest is suspended
		}
		raw, err := f.Encode(0)
		if err != nil {
			panic(err)
		}
		// Guest stack + transport encapsulation (§4.3's added processing,
		// the +9% of Figure 10), then out the VF — no exit.
		cost := h.p.GuestNetStackCost + h.p.EncapCost +
			perByte(h.p.GuestTxPerByte+h.p.EncapPerByte, len(f.Payload))
		c.Guest.VM.Compute(cost, func() {
			c.Driver.SendNet(uint8(virtio.DeviceNet), c.netID, raw)
			// TX-completion interrupt from the channel VF, exitless.
			h.eng.After(h.p.NICProcessCost, func() {
				if cfg.Bare {
					hypervisor.HostIRQ(cfg.Core, h.p, &c.Guest.VM.Counters, hypervisor.CounterHostIRQs, nil)
				} else {
					c.Guest.VM.GuestIRQExitless(nil)
				}
			})
		})
	}

	// Block front-end.
	if cfg.WithBlock {
		// Guest-side per-op CPU: stack + transport encapsulation (fixed +
		// per byte) + exitless completion.
		c.Guest.blkCPU = func(bytes int) sim.Time {
			return h.p.GuestNetStackCost + h.p.EncapCost +
				perByte(h.p.EncapPerByte, bytes) +
				h.p.ELIDeliveryCost + h.p.GuestIRQCost
		}
		writeQ := func(queue uint8, sector uint64, data []byte, done func(error)) {
			req := virtio.BlkHdr{Type: virtio.BlkOut, Sector: sector}.Encode(nil)
			req = append(req, data...)
			cost := h.p.GuestNetStackCost + h.p.EncapCost + perByte(h.p.EncapPerByte, len(data))
			c.Guest.VM.Compute(cost, func() {
				c.Driver.SendBlkQ(uint8(virtio.DeviceBlk), c.blkID, queue, req, func(resp []byte, err error) {
					if err == nil && (len(resp) < 1 || resp[0] != virtio.BlkOK) {
						err = virtio.ErrBadChain
					}
					done(err)
				})
			})
		}
		readQ := func(queue uint8, sector uint64, sectors int, done func([]byte, error)) {
			req := virtio.BlkHdr{Type: virtio.BlkIn, Sector: sector}.Encode(nil)
			var n [4]byte
			binary.LittleEndian.PutUint32(n[:], uint32(sectors))
			req = append(req, n[:]...)
			// The response data pays decapsulation per byte, charged with
			// the request for simplicity (same VCPU either way).
			cost := h.p.GuestNetStackCost + h.p.EncapCost +
				perByte(h.p.EncapPerByte, sectors*h.p.SectorSize)
			c.Guest.VM.Compute(cost, func() {
				c.Driver.SendBlkQ(uint8(virtio.DeviceBlk), c.blkID, queue, req, func(resp []byte, err error) {
					if err != nil {
						done(nil, err)
						return
					}
					if len(resp) < 1 || resp[0] != virtio.BlkOK {
						done(nil, virtio.ErrBadChain)
						return
					}
					done(resp[1:], nil)
				})
			})
		}
		c.Guest.blkWriteQ = writeQ
		c.Guest.blkReadQ = readQ
		c.Guest.blkWrite = func(sector uint64, data []byte, done func(error)) {
			writeQ(0, sector, data, done)
		}
		c.Guest.blkRead = func(sector uint64, sectors int, done func([]byte, error)) {
			readQ(0, sector, sectors, done)
		}
	}
	return c
}

// NetDeviceID / BlkDeviceID report the transport device ids the cluster
// must register with the I/O hypervisor.
func (c *VRIOClient) NetDeviceID() uint16 { return c.netID }

// BlkDeviceID reports the block front-end's transport id.
func (c *VRIOClient) BlkDeviceID() uint16 { return c.blkID }
