// Package core composes the substrates into the paper's four virtual I/O
// models (§2, Figure 4):
//
//   - baseline: KVM virtio — trap-and-emulate paravirtualization. Guests
//     kick via exits; vhost threads share an I/O core; interrupts are
//     injected and EOIs trap.
//   - elvis: sidecore paravirtualization — a dedicated per-host sidecore
//     polls the guests' virtqueues; interrupts to guests are exitless; the
//     physical NIC still interrupts the host.
//   - vrio: paravirtual remote I/O — the paper's contribution. Guests talk
//     through an SRIOV VF + ELI to the remote I/O hypervisor, which polls
//     its NICs (package iohyp).
//   - optimum: SRIOV+ELI device assignment — no interposition, used as the
//     performance ceiling.
//
// Workloads drive the model-independent Guest type; each model wires
// Guest's datapaths differently and pays different costs, which is the
// entire point of the evaluation.
package core

import (
	"vrio/internal/ethernet"
	"vrio/internal/guestos"
	"vrio/internal/hypervisor"
	"vrio/internal/sim"
)

// ModelName identifies an I/O model in results tables.
type ModelName string

// The five evaluated configurations (vrio appears twice: with and without
// IOhost polling).
const (
	ModelBaseline   ModelName = "baseline"
	ModelElvis      ModelName = "elvis"
	ModelVRIO       ModelName = "vrio"
	ModelVRIONoPoll ModelName = "vrio-nopoll"
	ModelOptimum    ModelName = "optimum"
)

// Guest is a workload's handle on one VM (or bare-metal IOclient): compute,
// a paravirtual (or assigned) net device, and optionally a block device.
type Guest struct {
	// VM carries the VCPU core and the Table 3 event counters.
	VM *hypervisor.VM
	// Threads is the in-guest thread scheduler, used by Filebench-style
	// multi-threaded workloads (nil for single-flow workloads).
	Threads *guestos.VCPU

	netMAC ethernet.MAC

	// Model-wired hooks; set by the host implementations.
	sendNet  func(f ethernet.Frame)
	blkWrite func(sector uint64, data []byte, done func(error))
	blkRead  func(sector uint64, sectors int, done func([]byte, error))
	blkCPU   func(bytes int) sim.Time
	// Multi-queue variants; set only by models that support per-queue block
	// submission (the vRIO transport). When unset, WriteBlockQ/ReadBlockQ
	// fall back to the single-queue hooks and the queue id is ignored.
	blkWriteQ func(queue uint8, sector uint64, data []byte, done func(error))
	blkReadQ  func(queue uint8, sector uint64, sectors int, done func([]byte, error))

	// onNetRx is the workload's receive handler.
	onNetRx func(f ethernet.Frame)

	// TxFrames/RxFrames count guest-observed traffic.
	TxFrames uint64
	RxFrames uint64
	TxBytes  uint64
	RxBytes  uint64
}

// MAC reports the guest's outward-facing (F) address.
func (g *Guest) MAC() ethernet.MAC { return g.netMAC }

// OnNetRx registers the workload's frame handler.
func (g *Guest) OnNetRx(fn func(f ethernet.Frame)) { g.onNetRx = fn }

// SendNet transmits a frame from inside the guest. The source address is
// filled with the guest's MAC.
func (g *Guest) SendNet(f ethernet.Frame) {
	f.Src = g.netMAC
	g.TxFrames++
	g.TxBytes += uint64(len(f.Payload))
	g.sendNet(f)
}

// deliverNet hands a received frame to the workload.
func (g *Guest) deliverNet(f ethernet.Frame) {
	g.RxFrames++
	g.RxBytes += uint64(len(f.Payload))
	if g.onNetRx != nil {
		g.onNetRx(f)
	}
}

// WriteBlock writes data at the given sector through the guest's
// paravirtual block device.
func (g *Guest) WriteBlock(sector uint64, data []byte, done func(error)) {
	if g.blkWrite == nil {
		panic("core: guest has no block device")
	}
	g.blkWrite(sector, data, done)
}

// ReadBlock reads sectors through the guest's paravirtual block device.
func (g *Guest) ReadBlock(sector uint64, sectors int, done func([]byte, error)) {
	if g.blkRead == nil {
		panic("core: guest has no block device")
	}
	g.blkRead(sector, sectors, done)
}

// WriteBlockQ writes through submission queue `queue` of the guest's block
// device. Models without multi-queue support ignore the queue id.
func (g *Guest) WriteBlockQ(queue uint8, sector uint64, data []byte, done func(error)) {
	if g.blkWriteQ != nil {
		g.blkWriteQ(queue, sector, data, done)
		return
	}
	g.WriteBlock(sector, data, done)
}

// ReadBlockQ reads through submission queue `queue` of the guest's block
// device. Models without multi-queue support ignore the queue id.
func (g *Guest) ReadBlockQ(queue uint8, sector uint64, sectors int, done func([]byte, error)) {
	if g.blkReadQ != nil {
		g.blkReadQ(queue, sector, sectors, done)
		return
	}
	g.ReadBlock(sector, sectors, done)
}

// HasBlock reports whether a block device is attached.
func (g *Guest) HasBlock() bool { return g.blkWrite != nil }

// BlockCPUCost reports the guest-side CPU consumed per block operation of
// the given size under this guest's I/O model (stack, kicks/exits,
// interrupt handling, encapsulation). Thread-scheduler workloads add it to
// their per-op compute so the VCPU feels the model's datapath cost.
func (g *Guest) BlockCPUCost(bytes int) sim.Time {
	if g.blkCPU == nil {
		return 0
	}
	return g.blkCPU(bytes)
}

// Compute runs application work on the guest's VCPU.
func (g *Guest) Compute(d sim.Time, fn func()) { g.VM.Compute(d, fn) }

// perByte converts a ns-per-byte rate into a duration for n bytes.
func perByte(rate float64, n int) sim.Time {
	return sim.Time(rate * float64(n))
}
