package virtio

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNetHdrRoundTrip(t *testing.T) {
	f := func(flags, gso uint8, hdrLen, gsoSize, cs, co, nb uint16) bool {
		h := NetHdr{flags, gso, hdrLen, gsoSize, cs, co, nb}
		enc := h.Encode(nil)
		if len(enc) != NetHdrSize {
			return false
		}
		dec, rest, err := DecodeNetHdr(enc)
		return err == nil && len(rest) == 0 && dec == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetHdrDecodeLeavesPayload(t *testing.T) {
	h := NetHdr{GSOType: GSOTcpv4, GSOSize: 1448}
	buf := h.Encode(nil)
	buf = append(buf, []byte("payload")...)
	dec, rest, err := DecodeNetHdr(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.GSOType != GSOTcpv4 || dec.GSOSize != 1448 {
		t.Errorf("decoded %+v", dec)
	}
	if string(rest) != "payload" {
		t.Errorf("rest = %q", rest)
	}
}

func TestNetHdrShort(t *testing.T) {
	if _, _, err := DecodeNetHdr(make([]byte, NetHdrSize-1)); err != ErrShortHeader {
		t.Errorf("err = %v, want ErrShortHeader", err)
	}
}

func TestBlkHdrRoundTrip(t *testing.T) {
	f := func(typ uint32, sector uint64) bool {
		h := BlkHdr{Type: typ, Sector: sector}
		enc := h.Encode(nil)
		if len(enc) != BlkHdrSize {
			return false
		}
		dec, rest, err := DecodeBlkHdr(enc)
		return err == nil && len(rest) == 0 && dec == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlkHdrEncodeAppends(t *testing.T) {
	prefix := []byte("pre")
	h := BlkHdr{Type: BlkOut, Sector: 99}
	out := h.Encode(append([]byte{}, prefix...))
	if !bytes.HasPrefix(out, prefix) || len(out) != len(prefix)+BlkHdrSize {
		t.Errorf("Encode did not append: len=%d", len(out))
	}
}

func TestBlkHdrShort(t *testing.T) {
	if _, _, err := DecodeBlkHdr(make([]byte, 3)); err != ErrShortHeader {
		t.Errorf("err = %v, want ErrShortHeader", err)
	}
}

func TestDeviceTypeString(t *testing.T) {
	if DeviceNet.String() != "net" || DeviceBlk.String() != "blk" {
		t.Error("known device types misprinted")
	}
	if DeviceType(9).String() != "DeviceType(9)" {
		t.Errorf("unknown device type printed as %q", DeviceType(9).String())
	}
}
