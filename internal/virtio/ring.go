// Package virtio reimplements the virtio virtqueue — the shared-memory ring
// protocol that the baseline, Elvis, and vRIO I/O models all speak (§4.1:
// "We directly reuse the virtio protocol"). The ring is laid out in a byte
// slab exactly like guest shared memory (little-endian descriptor table,
// avail ring, used ring), so the driver and device sides genuinely
// communicate through encoded bytes rather than Go object graphs.
package virtio

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vrio/internal/trace"
)

// Descriptor flags, as in the virtio spec.
const (
	descFlagNext  = 0x1 // continues via the next field
	descFlagWrite = 0x2 // device-writable (driver-readable) buffer
)

const (
	descSize      = 16 // u64 addr, u32 len, u16 flags, u16 next
	usedElemSize  = 8  // u32 id, u32 len
	ringHdrSize   = 4  // u16 flags, u16 idx
	maxQueueSize  = 32768
	minQueueSize  = 2
	minSegmentLen = 64
)

// Errors returned by ring operations.
var (
	ErrRingFull     = errors.New("virtio: not enough free descriptors")
	ErrBadChain     = errors.New("virtio: corrupt descriptor chain")
	ErrTooLarge     = errors.New("virtio: buffer exceeds ring capacity")
	ErrEmptyRequest = errors.New("virtio: request has no segments")
)

// Ring is one virtqueue. The driver side (guest) posts buffers with Add and
// reaps completions with Reap; the device side (host/sidecore/IOhost) polls
// with Pop and completes with Push. A Ring is not safe for concurrent use;
// the simulation is single-threaded by design.
type Ring struct {
	qsize   int
	segSize int

	// Shared memory regions, all living in one slab like guest RAM.
	desc  []byte // descriptor table: qsize * descSize
	avail []byte // avail ring: hdr + qsize * 2
	used  []byte // used ring: hdr + qsize * usedElemSize
	buf   []byte // payload slab: qsize * segSize (descriptor i owns slot i)

	// Driver-private state.
	freeHead    uint16
	numFree     int
	lastUsedIdx uint16
	pending     map[uint16]*token // head -> in-flight request bookkeeping
	tokFree     []*token          // recycled tokens: Add/Reap do not allocate in steady state

	// Device-private state.
	lastAvailIdx uint16

	// Statistics.
	kicks       uint64
	completions uint64

	// Tracer, when non-nil, records a guest_ring span per request from Add
	// to Reap, named SpanName with the chain head as the correlation arg.
	// Rings owned by the baseline/Elvis hosts leave this nil; the vRIO
	// model's ring-equivalent submission point is the transport driver,
	// which does its own tracing.
	Tracer   *trace.Tracer
	SpanName string
}

type token struct {
	inDescs  []uint16 // device-writable descriptors in chain order
	outDescs []uint16
	span     trace.SpanID
}

// getToken returns a recycled (or fresh) token with empty descriptor lists.
func (r *Ring) getToken() *token {
	if n := len(r.tokFree); n > 0 {
		t := r.tokFree[n-1]
		r.tokFree[n-1] = nil
		r.tokFree = r.tokFree[:n-1]
		t.outDescs = t.outDescs[:0]
		t.inDescs = t.inDescs[:0]
		t.span = 0
		return t
	}
	return &token{}
}

// NewRing builds a virtqueue with qsize descriptors of segSize bytes each.
// qsize must be a power of two in [2, 32768], matching hardware virtio.
func NewRing(qsize, segSize int) (*Ring, error) {
	if qsize < minQueueSize || qsize > maxQueueSize || qsize&(qsize-1) != 0 {
		return nil, fmt.Errorf("virtio: queue size %d must be a power of two in [%d, %d]",
			qsize, minQueueSize, maxQueueSize)
	}
	if segSize < minSegmentLen {
		return nil, fmt.Errorf("virtio: segment size %d below minimum %d", segSize, minSegmentLen)
	}
	r := &Ring{
		qsize:   qsize,
		segSize: segSize,
		desc:    make([]byte, qsize*descSize),
		avail:   make([]byte, ringHdrSize+qsize*2),
		used:    make([]byte, ringHdrSize+qsize*usedElemSize),
		buf:     make([]byte, qsize*segSize),
		numFree: qsize,
		pending: make(map[uint16]*token),
	}
	// Chain all descriptors into the free list.
	for i := 0; i < qsize; i++ {
		r.writeDesc(uint16(i), 0, 0, uint16(i+1))
	}
	return r, nil
}

// QueueSize reports the number of descriptors.
func (r *Ring) QueueSize() int { return r.qsize }

// SegmentSize reports the per-descriptor buffer size.
func (r *Ring) SegmentSize() int { return r.segSize }

// FreeDescriptors reports how many descriptors are currently free.
func (r *Ring) FreeDescriptors() int { return r.numFree }

// Kicks reports how many times the driver published new buffers.
func (r *Ring) Kicks() uint64 { return r.kicks }

// Completions reports how many buffers the device has pushed used.
func (r *Ring) Completions() uint64 { return r.completions }

// --- raw shared-memory accessors ---

func (r *Ring) writeDesc(i uint16, length uint32, flags, next uint16) {
	off := int(i) * descSize
	binary.LittleEndian.PutUint64(r.desc[off:], uint64(int(i)*r.segSize)) // addr = slot offset
	binary.LittleEndian.PutUint32(r.desc[off+8:], length)
	binary.LittleEndian.PutUint16(r.desc[off+12:], flags)
	binary.LittleEndian.PutUint16(r.desc[off+14:], next)
}

func (r *Ring) readDesc(i uint16) (addr uint64, length uint32, flags, next uint16) {
	off := int(i) * descSize
	addr = binary.LittleEndian.Uint64(r.desc[off:])
	length = binary.LittleEndian.Uint32(r.desc[off+8:])
	flags = binary.LittleEndian.Uint16(r.desc[off+12:])
	next = binary.LittleEndian.Uint16(r.desc[off+14:])
	return
}

func (r *Ring) availIdx() uint16 { return binary.LittleEndian.Uint16(r.avail[2:]) }
func (r *Ring) setAvailIdx(v uint16) {
	binary.LittleEndian.PutUint16(r.avail[2:], v)
}
func (r *Ring) availEntry(slot uint16) uint16 {
	return binary.LittleEndian.Uint16(r.avail[ringHdrSize+2*int(slot%uint16(r.qsize)):])
}
func (r *Ring) setAvailEntry(slot, head uint16) {
	binary.LittleEndian.PutUint16(r.avail[ringHdrSize+2*int(slot%uint16(r.qsize)):], head)
}

func (r *Ring) usedIdx() uint16 { return binary.LittleEndian.Uint16(r.used[2:]) }
func (r *Ring) setUsedIdx(v uint16) {
	binary.LittleEndian.PutUint16(r.used[2:], v)
}
func (r *Ring) usedEntry(slot uint16) (id, length uint32) {
	off := ringHdrSize + usedElemSize*int(slot%uint16(r.qsize))
	return binary.LittleEndian.Uint32(r.used[off:]), binary.LittleEndian.Uint32(r.used[off+4:])
}
func (r *Ring) setUsedEntry(slot uint16, id, length uint32) {
	off := ringHdrSize + usedElemSize*int(slot%uint16(r.qsize))
	binary.LittleEndian.PutUint32(r.used[off:], id)
	binary.LittleEndian.PutUint32(r.used[off+4:], length)
}

func (r *Ring) slot(i uint16) []byte {
	off := int(i) * r.segSize
	return r.buf[off : off+r.segSize]
}

// --- driver (guest) side ---

// segsNeeded reports how many descriptors a byte count occupies.
func (r *Ring) segsNeeded(n int) int {
	if n == 0 {
		return 0
	}
	return (n + r.segSize - 1) / r.segSize
}

// Add posts one request: out is driver-provided data the device reads;
// inLen is the number of device-writable bytes reserved for the response.
// It returns the chain head, which identifies the request at completion.
func (r *Ring) Add(out []byte, inLen int) (uint16, error) {
	nOut := r.segsNeeded(len(out))
	nIn := r.segsNeeded(inLen)
	total := nOut + nIn
	if total == 0 {
		return 0, ErrEmptyRequest
	}
	if total > r.qsize {
		return 0, ErrTooLarge
	}
	if total > r.numFree {
		return 0, ErrRingFull
	}

	tok := r.getToken()
	head := r.freeHead
	cur := head
	remaining := out
	for i := 0; i < total; i++ {
		_, _, _, next := r.readDesc(cur)
		var flags uint16
		var l uint32
		if i < nOut {
			n := copy(r.slot(cur), remaining)
			remaining = remaining[n:]
			l = uint32(n)
			tok.outDescs = append(tok.outDescs, cur)
		} else {
			flags = descFlagWrite
			want := inLen - (i-nOut)*r.segSize
			if want > r.segSize {
				want = r.segSize
			}
			l = uint32(want)
			tok.inDescs = append(tok.inDescs, cur)
		}
		if i < total-1 {
			flags |= descFlagNext
			r.writeDesc(cur, l, flags, next)
			cur = next
		} else {
			r.freeHead = next
			r.writeDesc(cur, l, flags, 0)
		}
	}
	r.numFree -= total
	if r.Tracer.Enabled() {
		tok.span = r.Tracer.BeginArg(trace.CatGuestRing, r.SpanName, 0, uint64(head))
	}
	r.pending[head] = tok

	// Publish: write head into the avail ring, then bump idx (the memory
	// barrier in real hardware; ordering is trivially preserved here).
	idx := r.availIdx()
	r.setAvailEntry(idx, head)
	r.setAvailIdx(idx + 1)
	r.kicks++
	return head, nil
}

// Completion is one finished request as seen by the driver.
type Completion struct {
	Head uint16
	// In holds the device-written response bytes (length as reported by the
	// device), copied out of the descriptor slots into a per-batch-slot
	// buffer — valid until the batch slot is reused by the next ReapInto.
	In []byte
}

// ReapBatch is a reusable harvest: ReapInto refills Completions in place,
// reusing each slot's In capacity, so a steady-state reap loop does not
// allocate. One batch per reaping loop; its contents are invalidated by the
// next ReapInto.
type ReapBatch struct {
	Completions []Completion
}

// next extends the batch by one slot, resurrecting a previously used
// element (and its In capacity) when possible.
func (b *ReapBatch) next() *Completion {
	if len(b.Completions) < cap(b.Completions) {
		b.Completions = b.Completions[:len(b.Completions)+1]
	} else {
		b.Completions = append(b.Completions, Completion{})
	}
	return &b.Completions[len(b.Completions)-1]
}

// Reap collects at most max completed requests (all of them if max <= 0),
// freeing their descriptors. Each call allocates a fresh result; hot loops
// use ReapInto with a reused batch.
func (r *Ring) Reap(max int) []Completion {
	var b ReapBatch
	r.ReapInto(&b, max)
	if len(b.Completions) == 0 {
		return nil
	}
	return b.Completions
}

// ReapInto harvests at most max completed requests (all if max <= 0) into
// b, resetting it first, and returns how many were reaped. Descriptors are
// freed; response bytes are copied into b's reusable slot buffers.
func (r *Ring) ReapInto(b *ReapBatch, max int) int {
	b.Completions = b.Completions[:0]
	for r.lastUsedIdx != r.usedIdx() {
		if max > 0 && len(b.Completions) >= max {
			break
		}
		id, length := r.usedEntry(r.lastUsedIdx)
		r.lastUsedIdx++
		head := uint16(id)
		tok := r.pending[head]
		if tok == nil {
			// The device completed something we never posted: protocol bug.
			panic(fmt.Sprintf("virtio: used entry for unknown head %d", head))
		}
		delete(r.pending, head)
		r.Tracer.End(tok.span)
		c := b.next()
		c.Head = head
		c.In = c.In[:0]
		n := int(length)
		for _, d := range tok.inDescs {
			if n <= 0 {
				break
			}
			take := n
			if take > r.segSize {
				take = r.segSize
			}
			c.In = append(c.In, r.slot(d)[:take]...)
			n -= take
		}
		r.freeChain(tok)
	}
	return len(b.Completions)
}

// InFlight reports the number of posted-but-not-reaped requests.
func (r *Ring) InFlight() int { return len(r.pending) }

func (r *Ring) freeChain(tok *token) {
	for _, d := range tok.outDescs {
		r.writeDesc(d, 0, 0, r.freeHead)
		r.freeHead = d
		r.numFree++
	}
	for _, d := range tok.inDescs {
		r.writeDesc(d, 0, 0, r.freeHead)
		r.freeHead = d
		r.numFree++
	}
	r.tokFree = append(r.tokFree, tok)
}

// --- device (host / sidecore / IOhost worker) side ---

// Chain is one request as seen by the device.
type Chain struct {
	Head uint16
	// Out is the driver-provided request data, concatenated.
	Out []byte
	// inDescs are the writable slots; the device responds via ring.Push.
	inDescs []uint16
	inLens  []uint32
	ring    *Ring
}

// InCapacity reports how many response bytes the driver reserved.
func (c *Chain) InCapacity() int {
	total := 0
	for _, l := range c.inLens {
		total += int(l)
	}
	return total
}

// Pop takes the next available chain, or ok=false when the ring is empty —
// this is exactly what a sidecore's poll loop checks. Each call allocates a
// fresh chain; hot loops that Push immediately use PopInto with a reused
// scratch chain instead. (A chain held across an asynchronous completion —
// e.g. a block request awaiting its backend — must NOT be a reused scratch
// chain.)
func (r *Ring) Pop() (Chain, bool, error) {
	var c Chain
	ok, err := r.PopInto(&c)
	return c, ok, err
}

// PopInto fills c with the next available chain, reusing c's slice
// capacity, and reports whether one was available. The chain's Out bytes
// are copied out of the descriptor slots, so they remain valid until c is
// reused.
func (r *Ring) PopInto(c *Chain) (bool, error) {
	if r.lastAvailIdx == r.availIdx() {
		return false, nil
	}
	head := r.availEntry(r.lastAvailIdx)
	r.lastAvailIdx++
	c.Head = head
	c.ring = r
	c.Out = c.Out[:0]
	c.inDescs = c.inDescs[:0]
	c.inLens = c.inLens[:0]
	cur := head
	for hops := 0; ; hops++ {
		if hops > r.qsize {
			return false, ErrBadChain
		}
		_, length, flags, next := r.readDesc(cur)
		if flags&descFlagWrite != 0 {
			c.inDescs = append(c.inDescs, cur)
			c.inLens = append(c.inLens, length)
		} else {
			c.Out = append(c.Out, r.slot(cur)[:length]...)
		}
		if flags&descFlagNext == 0 {
			break
		}
		cur = next
	}
	return true, nil
}

// HasAvail reports whether a Pop would find work (the poll predicate).
func (r *Ring) HasAvail() bool { return r.lastAvailIdx != r.availIdx() }

// Push completes a chain, writing data into its device-writable descriptors
// and publishing a used-ring entry. It returns the number of bytes written
// (truncated to the driver's reserved capacity).
func (r *Ring) Push(c Chain, data []byte) int {
	written := 0
	remaining := data
	for i, d := range c.inDescs {
		if len(remaining) == 0 {
			break
		}
		capHere := int(c.inLens[i])
		n := copy(r.slot(d)[:capHere], remaining)
		remaining = remaining[n:]
		written += n
	}
	idx := r.usedIdx()
	r.setUsedEntry(idx, uint32(c.Head), uint32(written))
	r.setUsedIdx(idx + 1)
	r.completions++
	return written
}
