package virtio

import (
	"bytes"
	"testing"
	"testing/quick"

	"vrio/internal/sim"
)

func mustRing(t *testing.T, qsize, seg int) *Ring {
	t.Helper()
	r, err := NewRing(qsize, seg)
	if err != nil {
		t.Fatalf("NewRing(%d, %d): %v", qsize, seg, err)
	}
	return r
}

func TestNewRingValidation(t *testing.T) {
	bad := []struct{ q, s int }{
		{0, 4096}, {1, 4096}, {3, 4096}, {65536, 4096}, {256, 1}, {256, 0},
	}
	for _, c := range bad {
		if _, err := NewRing(c.q, c.s); err == nil {
			t.Errorf("NewRing(%d, %d) accepted", c.q, c.s)
		}
	}
	good := []struct{ q, s int }{{2, 64}, {256, 4096}, {32768, 128}}
	for _, c := range good {
		if _, err := NewRing(c.q, c.s); err != nil {
			t.Errorf("NewRing(%d, %d) rejected: %v", c.q, c.s, err)
		}
	}
}

func TestRingEchoSingleSegment(t *testing.T) {
	r := mustRing(t, 16, 256)
	msg := []byte("hello from the guest")
	head, err := r.Add(msg, 64)
	if err != nil {
		t.Fatal(err)
	}

	c, ok, err := r.Pop()
	if err != nil || !ok {
		t.Fatalf("Pop: ok=%v err=%v", ok, err)
	}
	if c.Head != head {
		t.Errorf("chain head %d, want %d", c.Head, head)
	}
	if !bytes.Equal(c.Out, msg) {
		t.Errorf("device saw %q, want %q", c.Out, msg)
	}
	if c.InCapacity() != 64 {
		t.Errorf("InCapacity = %d, want 64", c.InCapacity())
	}

	reply := []byte("response")
	if n := r.Push(c, reply); n != len(reply) {
		t.Errorf("Push wrote %d, want %d", n, len(reply))
	}

	comps := r.Reap(0)
	if len(comps) != 1 {
		t.Fatalf("Reap returned %d completions", len(comps))
	}
	if comps[0].Head != head {
		t.Errorf("completion head %d, want %d", comps[0].Head, head)
	}
	if !bytes.Equal(comps[0].In, reply) {
		t.Errorf("driver saw reply %q, want %q", comps[0].In, reply)
	}
	if r.FreeDescriptors() != 16 {
		t.Errorf("descriptors leaked: %d free, want 16", r.FreeDescriptors())
	}
}

func TestRingMultiSegmentChain(t *testing.T) {
	r := mustRing(t, 64, 64)
	// 300 bytes out needs 5 segments of 64; 100 in needs 2.
	msg := bytes.Repeat([]byte{0xAB}, 300)
	msg[0], msg[299] = 1, 2
	if _, err := r.Add(msg, 100); err != nil {
		t.Fatal(err)
	}
	if free := r.FreeDescriptors(); free != 64-7 {
		t.Errorf("free = %d, want %d", free, 64-7)
	}
	c, ok, err := r.Pop()
	if err != nil || !ok {
		t.Fatalf("Pop: %v %v", ok, err)
	}
	if !bytes.Equal(c.Out, msg) {
		t.Errorf("multi-segment out data corrupted (len %d vs %d)", len(c.Out), len(msg))
	}
	if c.InCapacity() != 100 {
		t.Errorf("InCapacity = %d, want 100", c.InCapacity())
	}
	reply := bytes.Repeat([]byte{7}, 100)
	r.Push(c, reply)
	comps := r.Reap(0)
	if len(comps) != 1 || !bytes.Equal(comps[0].In, reply) {
		t.Error("multi-segment reply corrupted")
	}
}

func TestRingPushTruncatesToCapacity(t *testing.T) {
	r := mustRing(t, 16, 64)
	if _, err := r.Add([]byte("req"), 10); err != nil {
		t.Fatal(err)
	}
	c, _, _ := r.Pop()
	n := r.Push(c, bytes.Repeat([]byte{1}, 100))
	if n != 10 {
		t.Errorf("Push wrote %d, want truncation to 10", n)
	}
	comps := r.Reap(0)
	if len(comps[0].In) != 10 {
		t.Errorf("driver got %d bytes, want 10", len(comps[0].In))
	}
}

func TestRingOutOnlyAndInOnly(t *testing.T) {
	r := mustRing(t, 16, 128)
	// Out-only (e.g. a net transmit).
	if _, err := r.Add([]byte("tx"), 0); err != nil {
		t.Fatal(err)
	}
	c, _, _ := r.Pop()
	if c.InCapacity() != 0 || string(c.Out) != "tx" {
		t.Error("out-only chain wrong")
	}
	r.Push(c, nil)
	r.Reap(0)

	// In-only (e.g. posting an rx buffer).
	if _, err := r.Add(nil, 100); err != nil {
		t.Fatal(err)
	}
	c2, _, _ := r.Pop()
	if c2.InCapacity() != 100 || len(c2.Out) != 0 {
		t.Error("in-only chain wrong")
	}
	r.Push(c2, []byte("rx data"))
	comps := r.Reap(0)
	if string(comps[0].In) != "rx data" {
		t.Errorf("rx data = %q", comps[0].In)
	}
}

func TestRingEmptyRequestRejected(t *testing.T) {
	r := mustRing(t, 16, 64)
	if _, err := r.Add(nil, 0); err != ErrEmptyRequest {
		t.Errorf("err = %v, want ErrEmptyRequest", err)
	}
}

func TestRingFullBehaviour(t *testing.T) {
	r := mustRing(t, 4, 64)
	for i := 0; i < 4; i++ {
		if _, err := r.Add([]byte{byte(i)}, 0); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	if _, err := r.Add([]byte{9}, 0); err != ErrRingFull {
		t.Errorf("err = %v, want ErrRingFull", err)
	}
	// Device drains one; driver can post again.
	c, _, _ := r.Pop()
	r.Push(c, nil)
	r.Reap(0)
	if _, err := r.Add([]byte{9}, 0); err != nil {
		t.Errorf("Add after drain: %v", err)
	}
}

func TestRingTooLargeRejected(t *testing.T) {
	r := mustRing(t, 4, 64)
	if _, err := r.Add(make([]byte, 64*5), 0); err != ErrTooLarge {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestRingPopEmptyRing(t *testing.T) {
	r := mustRing(t, 16, 64)
	if _, ok, err := r.Pop(); ok || err != nil {
		t.Errorf("Pop on empty: ok=%v err=%v", ok, err)
	}
	if r.HasAvail() {
		t.Error("HasAvail on empty ring")
	}
}

func TestRingOrderPreserved(t *testing.T) {
	r := mustRing(t, 64, 64)
	const n = 20
	heads := make([]uint16, n)
	for i := 0; i < n; i++ {
		h, err := r.Add([]byte{byte(i)}, 0)
		if err != nil {
			t.Fatal(err)
		}
		heads[i] = h
	}
	for i := 0; i < n; i++ {
		c, ok, err := r.Pop()
		if !ok || err != nil {
			t.Fatalf("Pop %d: %v %v", i, ok, err)
		}
		if c.Head != heads[i] {
			t.Fatalf("Pop %d returned head %d, want %d (FIFO violated)", i, c.Head, heads[i])
		}
		if c.Out[0] != byte(i) {
			t.Fatalf("Pop %d returned payload %d", i, c.Out[0])
		}
		r.Push(c, nil)
	}
	comps := r.Reap(0)
	for i, comp := range comps {
		if comp.Head != heads[i] {
			t.Fatalf("Reap %d returned head %d, want %d", i, comp.Head, heads[i])
		}
	}
}

func TestRingReapMax(t *testing.T) {
	r := mustRing(t, 64, 64)
	for i := 0; i < 5; i++ {
		if _, err := r.Add([]byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		c, _, _ := r.Pop()
		r.Push(c, nil)
	}
	if got := len(r.Reap(2)); got != 2 {
		t.Errorf("Reap(2) returned %d", got)
	}
	if got := len(r.Reap(0)); got != 3 {
		t.Errorf("Reap(0) returned %d, want remaining 3", got)
	}
}

func TestRingIndexWraparound(t *testing.T) {
	r := mustRing(t, 4, 64)
	// Push enough traffic through to wrap the 16-bit indices many times
	// relative to qsize and ensure nothing corrupts.
	for i := 0; i < 10000; i++ {
		msg := []byte{byte(i), byte(i >> 8)}
		if _, err := r.Add(msg, 8); err != nil {
			t.Fatal(err)
		}
		c, ok, err := r.Pop()
		if !ok || err != nil {
			t.Fatalf("iter %d: Pop %v %v", i, ok, err)
		}
		if !bytes.Equal(c.Out, msg) {
			t.Fatalf("iter %d: corrupt request", i)
		}
		r.Push(c, []byte{c.Out[0]})
		comps := r.Reap(0)
		if len(comps) != 1 || comps[0].In[0] != byte(i) {
			t.Fatalf("iter %d: corrupt completion", i)
		}
	}
	if r.Kicks() != 10000 || r.Completions() != 10000 {
		t.Errorf("kicks=%d completions=%d", r.Kicks(), r.Completions())
	}
}

func TestRingInFlight(t *testing.T) {
	r := mustRing(t, 16, 64)
	r.Add([]byte{1}, 0)
	r.Add([]byte{2}, 0)
	if r.InFlight() != 2 {
		t.Errorf("InFlight = %d, want 2", r.InFlight())
	}
	c, _, _ := r.Pop()
	r.Push(c, nil)
	r.Reap(0)
	if r.InFlight() != 1 {
		t.Errorf("InFlight = %d, want 1", r.InFlight())
	}
}

// Property: echoing arbitrary payloads through the ring preserves bytes and
// never leaks descriptors.
func TestRingEchoProperty(t *testing.T) {
	r := mustRing(t, 256, 128)
	f := func(payload []byte, inLen uint16) bool {
		in := int(inLen % 2048)
		if len(payload) == 0 && in == 0 {
			return true
		}
		if len(payload) > 8192 {
			payload = payload[:8192]
		}
		before := r.FreeDescriptors()
		if _, err := r.Add(payload, in); err != nil {
			// Full is acceptable only if the request genuinely didn't fit.
			return err == ErrRingFull || err == ErrTooLarge
		}
		c, ok, err := r.Pop()
		if !ok || err != nil {
			return false
		}
		if !bytes.Equal(c.Out, payload) {
			return false
		}
		echo := payload
		if len(echo) > in {
			echo = echo[:in]
		}
		r.Push(c, echo)
		comps := r.Reap(0)
		if len(comps) != 1 || !bytes.Equal(comps[0].In, echo) {
			return false
		}
		return r.FreeDescriptors() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The ring is the mechanism Elvis polls; verify that the poll predicate is
// cheap and correct across a simulated polling loop.
func TestRingPollLoopSimulation(t *testing.T) {
	r := mustRing(t, 16, 64)
	e := sim.NewEngine()
	served := 0
	// Guest posts 5 requests at t=10,20,...
	for i := 1; i <= 5; i++ {
		e.At(sim.Time(i*10), func() {
			if _, err := r.Add([]byte("req"), 4); err != nil {
				t.Errorf("Add: %v", err)
			}
		})
	}
	// Sidecore polls every 3ns.
	stop := e.Ticker(3, func() {
		for r.HasAvail() {
			c, ok, err := r.Pop()
			if !ok || err != nil {
				t.Fatalf("Pop: %v %v", ok, err)
			}
			r.Push(c, []byte("ok"))
			served++
		}
	})
	e.RunUntil(100)
	stop()
	if served != 5 {
		t.Errorf("poll loop served %d, want 5", served)
	}
	if got := len(r.Reap(0)); got != 5 {
		t.Errorf("driver reaped %d, want 5", got)
	}
}
