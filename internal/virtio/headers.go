package virtio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Device types carried in vRIO metadata (§4.1: "the front-end device
// identifier, type of request, and request size").
type DeviceType uint8

const (
	// DeviceNet is a paravirtual network device front-end.
	DeviceNet DeviceType = 1
	// DeviceBlk is a paravirtual block device front-end.
	DeviceBlk DeviceType = 2
)

// String implements fmt.Stringer.
func (d DeviceType) String() string {
	switch d {
	case DeviceNet:
		return "net"
	case DeviceBlk:
		return "blk"
	default:
		return fmt.Sprintf("DeviceType(%d)", uint8(d))
	}
}

// NetHdr is the virtio-net per-packet header (virtio_net_hdr), 12 bytes on
// the wire. GSO fields are what the vRIO transport reuses to drive TSO.
type NetHdr struct {
	Flags      uint8
	GSOType    uint8
	HdrLen     uint16
	GSOSize    uint16
	CsumStart  uint16
	CsumOffset uint16
	NumBuffers uint16
}

// NetHdrSize is the encoded size of NetHdr.
const NetHdrSize = 12

// GSO types from the virtio spec.
const (
	GSONone  = 0
	GSOTcpv4 = 1
)

// Encode appends the wire form of h to dst and returns the result.
func (h NetHdr) Encode(dst []byte) []byte {
	var b [NetHdrSize]byte
	b[0] = h.Flags
	b[1] = h.GSOType
	binary.LittleEndian.PutUint16(b[2:], h.HdrLen)
	binary.LittleEndian.PutUint16(b[4:], h.GSOSize)
	binary.LittleEndian.PutUint16(b[6:], h.CsumStart)
	binary.LittleEndian.PutUint16(b[8:], h.CsumOffset)
	binary.LittleEndian.PutUint16(b[10:], h.NumBuffers)
	return append(dst, b[:]...)
}

// ErrShortHeader reports a truncated header buffer.
var ErrShortHeader = errors.New("virtio: short header")

// DecodeNetHdr parses a NetHdr from b, returning the header and the
// remaining payload.
func DecodeNetHdr(b []byte) (NetHdr, []byte, error) {
	if len(b) < NetHdrSize {
		return NetHdr{}, nil, ErrShortHeader
	}
	h := NetHdr{
		Flags:      b[0],
		GSOType:    b[1],
		HdrLen:     binary.LittleEndian.Uint16(b[2:]),
		GSOSize:    binary.LittleEndian.Uint16(b[4:]),
		CsumStart:  binary.LittleEndian.Uint16(b[6:]),
		CsumOffset: binary.LittleEndian.Uint16(b[8:]),
		NumBuffers: binary.LittleEndian.Uint16(b[10:]),
	}
	return h, b[NetHdrSize:], nil
}

// Block request types (virtio_blk_req.type). BlkVolOut/BlkVolIn are the
// vRIO extension for distributed volumes: the same sector-addressed
// read/write, but carrying a VolHdr (extent id + version) so a replica can
// reject stale writers and a reader can demand at-least-committed data.
const (
	BlkIn     = 0 // read
	BlkOut    = 1 // write
	BlkFlush  = 4
	BlkVolOut = 8 // versioned replica write (BlkHdr + VolHdr + data)
	BlkVolIn  = 9 // versioned replica read (BlkHdr + VolHdr + sector count)
)

// Block request status bytes. BlkStale and BlkGap are the vRIO volume
// extension: BlkStale means the replica holds (or was asked to accept) an
// extent version older than the one named in the request's VolHdr; BlkGap
// means the replica rejected a sub-extent write because it provably missed
// an earlier version (the write's version is more than one ahead of what
// the replica holds) — the router must heal the replica with a full-extent
// copy before it can accept partial writes again.
const (
	BlkOK     = 0
	BlkIOErr  = 1
	BlkUnsupp = 2
	BlkStale  = 3
	BlkGap    = 4
)

// VolReadVerSize is the length of the replica-version field that follows the
// status byte on successful BlkVolIn responses: `[BlkOK][version:8][data]`.
// The version is the serving replica's current version for the extent (always
// at least the VolHdr's demanded minimum); rebuild and heal copies stamp
// their target with it so a copy is never credited with a version whose
// writes it might not hold.
const VolReadVerSize = 8

// BlkHdr is the virtio-blk request header (type, reserved, sector).
type BlkHdr struct {
	Type   uint32
	Sector uint64
}

// BlkHdrSize is the encoded size of BlkHdr.
const BlkHdrSize = 16

// Encode appends the wire form of h to dst and returns the result.
func (h BlkHdr) Encode(dst []byte) []byte {
	var b [BlkHdrSize]byte
	binary.LittleEndian.PutUint32(b[0:], h.Type)
	// bytes 4..8 reserved
	binary.LittleEndian.PutUint64(b[8:], h.Sector)
	return append(dst, b[:]...)
}

// DecodeBlkHdr parses a BlkHdr from b, returning the header and remaining
// payload.
func DecodeBlkHdr(b []byte) (BlkHdr, []byte, error) {
	if len(b) < BlkHdrSize {
		return BlkHdr{}, nil, ErrShortHeader
	}
	h := BlkHdr{
		Type:   binary.LittleEndian.Uint32(b[0:]),
		Sector: binary.LittleEndian.Uint64(b[8:]),
	}
	return h, b[BlkHdrSize:], nil
}

// VolHdr follows BlkHdr on BlkVolOut/BlkVolIn requests. Extent names the
// stripe unit the sectors fall in; Version is the writer's per-extent
// version counter (on reads: the minimum committed version the replica must
// hold to answer).
type VolHdr struct {
	Extent  uint64
	Version uint64
}

// VolHdrSize is the encoded size of VolHdr.
const VolHdrSize = 16

// Encode appends the wire form of h to dst and returns the result.
func (h VolHdr) Encode(dst []byte) []byte {
	var b [VolHdrSize]byte
	binary.LittleEndian.PutUint64(b[0:], h.Extent)
	binary.LittleEndian.PutUint64(b[8:], h.Version)
	return append(dst, b[:]...)
}

// DecodeVolHdr parses a VolHdr from b, returning the header and remaining
// payload.
func DecodeVolHdr(b []byte) (VolHdr, []byte, error) {
	if len(b) < VolHdrSize {
		return VolHdr{}, nil, ErrShortHeader
	}
	h := VolHdr{
		Extent:  binary.LittleEndian.Uint64(b[0:]),
		Version: binary.LittleEndian.Uint64(b[8:]),
	}
	return h, b[VolHdrSize:], nil
}
