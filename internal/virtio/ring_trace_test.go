package virtio

import (
	"testing"

	"vrio/internal/sim"
	"vrio/internal/trace"
)

// TestRingTraceSpans exercises the ring's guest_ring instrumentation: one
// span per request, opened at Add and closed at Reap, carrying the chain
// head as the correlation arg.
func TestRingTraceSpans(t *testing.T) {
	e := sim.NewEngine()
	r, err := NewRing(8, 256)
	if err != nil {
		t.Fatal(err)
	}
	r.Tracer = trace.New(e)
	r.SpanName = "net-tx"

	head, err := r.Add([]byte("frame"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tracer.NumSpans(); got != 1 {
		t.Fatalf("spans after Add = %d, want 1", got)
	}
	e.At(500, func() {
		c, ok, err := r.Pop()
		if err != nil || !ok {
			t.Fatalf("Pop = %v, %v", ok, err)
		}
		r.Push(c, nil)
	})
	e.At(700, func() {
		if got := r.Reap(0); len(got) != 1 || got[0].Head != head {
			t.Fatalf("Reap = %+v", got)
		}
	})
	e.Run()

	s := r.Tracer.Spans()[0]
	if s.Cat != trace.CatGuestRing || s.Name != "net-tx" || s.Arg != uint64(head) {
		t.Errorf("span = %+v", s)
	}
	if s.Start != 0 || s.End != 700 {
		t.Errorf("span interval = [%d, %d], want [0, 700]", s.Start, s.End)
	}
	if r.Tracer.OpenSpans() != 0 {
		t.Errorf("open spans = %d", r.Tracer.OpenSpans())
	}
}

// TestRingNilTracerUntouched pins that an untraced ring records nothing and
// pays nothing (no panic on the nil path either).
func TestRingNilTracerUntouched(t *testing.T) {
	r, err := NewRing(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	c, ok, _ := r.Pop()
	if !ok {
		t.Fatal("Pop found nothing")
	}
	r.Push(c, nil)
	if got := r.Reap(0); len(got) != 1 {
		t.Fatalf("Reap = %+v", got)
	}
	if r.Tracer.NumSpans() != 0 {
		t.Error("nil tracer recorded spans")
	}
}
