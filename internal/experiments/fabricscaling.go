package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

func init() {
	register("fabricscaling", fabricScalingPlan)
}

// fabric options injected by cmd/vrio-experiments' -racks / -shards /
// -oversub flags (see SetFabricOptions). Zero values keep the defaults.
var (
	fabricRacksOverride   int
	fabricWorkersOverride int
	fabricOversubOverride float64
)

// SetFabricOptions wires the CLI fabric flags into the fabricscaling
// experiment: racks resizes the scale cell's fabric, shards caps the worker
// count used to execute it, and oversub replaces the scale cell's
// oversubscription ratio. Call before running; the options are read at
// plan-build time.
func SetFabricOptions(racks, shards int, oversub float64) {
	fabricRacksOverride = racks
	fabricWorkersOverride = shards
	fabricOversubOverride = oversub
}

func fabricWorkers() int {
	if fabricWorkersOverride > 0 {
		return fabricWorkersOverride
	}
	return runtime.NumCPU()
}

// fabricScalingSpec is the study's fabric shape: quick mode shrinks the
// rack count and population the same way durations() shrinks time.
func fabricScalingSpec(quick bool, racks int, oversub float64) cluster.FabricSpec {
	vmhosts := 8 // 16 racks x 8 = 128 VMhosts at full size
	if quick {
		vmhosts = 1
	}
	return cluster.FabricSpec{
		Rack: cluster.Spec{
			Model: core.ModelVRIO, VMHosts: vmhosts, VMsPerHost: 2,
			StationPerVM: true, Seed: 1601,
		},
		NumRacks:         racks,
		Oversubscription: oversub,
	}
}

// fabricRRRun drives every guest from a station one rack over — all traffic
// crosses the spine tier — and runs the fabric to warm+dur with the given
// worker count.
func fabricRRRun(f *cluster.Fabric, warm, dur sim.Time, workers int) []*workload.RR {
	n := len(f.Racks)
	var rrs []*workload.RR
	perRack := make([][]cluster.Measurable, n)
	for r := 0; r < n; r++ {
		server := f.Racks[(r+1)%n]
		for g, guest := range server.Guests {
			workload.InstallRRServer(guest, server.P.NetperfRRProcessCost)
			rr := workload.NewRR(f.Racks[r].StationFor(g), guest.MAC(), 16)
			rr.Start()
			rrs = append(rrs, rr)
			perRack[r] = append(perRack[r], &rr.Results)
		}
	}
	f.RunMeasured(warm, dur, workers, perRack)
	return rrs
}

// fabricFingerprint captures everything an experiment can observe from a
// fabric run. Two runs of the same topology+seed must produce identical
// fingerprints regardless of worker count; the equivalence cell enforces it.
func fabricFingerprint(f *cluster.Fabric, rrs []*workload.RR) string {
	var b strings.Builder
	for i, rr := range rrs {
		fmt.Fprintf(&b, "rr%d %d %d %d|", i, rr.Results.Ops, rr.Results.Errors,
			rr.Results.Latency.Percentile(99))
	}
	for r, tb := range f.Racks {
		fmt.Fprintf(&b, "rack%d %d %d %d %d|", r, tb.Eng.Executed(), tb.Switch.Forwarded,
			tb.Switch.Flooded, tb.Switch.Drops.Total())
	}
	for s, sw := range f.Spines {
		fmt.Fprintf(&b, "spine%d %d %d|", s, sw.Forwarded, sw.Drops.Total())
	}
	fmt.Fprintf(&b, "w%d", f.Group.Windows)
	return b.String()
}

// fabOut is one fabricscaling cell's measurements. Only sim-time observables
// appear here — wall-clock speedups are machine-dependent and live in the
// BENCH json, never in a Result row.
type fabOut struct {
	name       string
	racks      int
	vms        int
	oversub    float64
	kopsPerSec float64
	p50, p99   float64
	xshard     uint64
	windows    uint64
	noRoute    uint64  // DropNoRoute summed over every ToR and spine switch
	ecmpImb    float64 // worst per-rack uplink ECMP imbalance (1.0 = even)
	identical  string  // "yes"/"DIVERGED" for the equivalence cell, "-" otherwise
}

// fabricNoRoute sums the no-route drop gauges across every ToR registry and
// the spine registry — the fabric's misrouting health signal.
func fabricNoRoute(f *cluster.Fabric) uint64 {
	var n float64
	for _, tb := range f.Racks {
		n += tb.Metrics.Value("switch", "drops_no_route")
	}
	for s := range f.Spines {
		n += f.SpineMetrics.Value(fmt.Sprintf("spine%d", s), "drops_no_route")
	}
	return uint64(n)
}

// fabricECMPImbalance reports the worst rack's uplink imbalance gauge:
// max-uplink frames over the even share. 1.0 is a perfectly even spread.
func fabricECMPImbalance(f *cluster.Fabric) float64 {
	var worst float64
	for _, tb := range f.Racks {
		if v := tb.Metrics.Value("fabric", "ecmp_imbalance"); v > worst {
			worst = v
		}
	}
	return worst
}

// fabricScalingPlan is the tentpole's experiment: a serial-vs-sharded
// equivalence cell, an oversubscription sweep, and the 16-rack scale cell,
// all with every transaction crossing the spine fabric.
func fabricScalingPlan(quick bool) Plan {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	racks := 16
	if fabricRacksOverride > 0 {
		racks = fabricRacksOverride
	} else if quick {
		racks = 4
	}
	scaleOversub := 4.0
	if fabricOversubOverride > 0 {
		scaleOversub = fabricOversubOverride
	}

	var cells []Cell
	// Cell 0: equivalence — the same 4-rack fabric run serially and with
	// every available worker must be byte-identical.
	cells = append(cells, func() any {
		run := func(workers int) (string, fabOut) {
			f, err := cluster.BuildFabric(fabricScalingSpec(quick, 4, 4))
			if err != nil {
				panic(err)
			}
			defer f.Close()
			rrs := fabricRRRun(f, warm, dur, workers)
			o := fabOut{
				name: "serial vs sharded", racks: 4, vms: len(rrs), oversub: 4,
				kopsPerSec: float64(totalOps(rrs)) / dur.Seconds() / 1000,
				p50:        latencyPercentilesMicros(rrs)[0],
				p99:        latencyPercentilesMicros(rrs)[2],
				xshard:     fabricXshard(f),
				windows:    f.Group.Windows,
				noRoute:    fabricNoRoute(f),
				ecmpImb:    fabricECMPImbalance(f),
			}
			return fabricFingerprint(f, rrs), o
		}
		serialFP, o := run(1)
		shardedFP, _ := run(fabricWorkers())
		o.identical = "yes"
		if serialFP != shardedFP {
			o.identical = "DIVERGED"
		}
		return o
	})
	// Cells 1..3: oversubscription sweep at a fixed small fabric. The rack
	// population is pinned to one VMhost regardless of quick/full (only the
	// duration grows) so the derived per-uplink capacity stays small enough
	// for the latency-bound RR load to queue against — with a full rack the
	// uplink capacity scales with the host count while closed-loop RR load
	// does not, and every ratio would measure an idle uplink.
	for _, ov := range []float64{1, 4, 8} {
		ov := ov
		cells = append(cells, func() any {
			spec := fabricScalingSpec(quick, 4, ov)
			spec.Rack.VMHosts = 1
			f, err := cluster.BuildFabric(spec)
			if err != nil {
				panic(err)
			}
			defer f.Close()
			rrs := fabricRRRun(f, warm, dur, fabricWorkers())
			pcts := latencyPercentilesMicros(rrs)
			return fabOut{
				name: fmt.Sprintf("oversub %g:1", ov), racks: 4, vms: len(rrs), oversub: ov,
				kopsPerSec: float64(totalOps(rrs)) / dur.Seconds() / 1000,
				p50:        pcts[0], p99: pcts[2],
				xshard:    fabricXshard(f),
				windows:   f.Group.Windows,
				noRoute:   fabricNoRoute(f),
				ecmpImb:   fabricECMPImbalance(f),
				identical: "-",
			}
		})
	}
	// Cell 4: the scale cell — 16 racks (or -racks), sharded execution.
	cells = append(cells, func() any {
		f, err := cluster.BuildFabric(fabricScalingSpec(quick, racks, scaleOversub))
		if err != nil {
			panic(err)
		}
		defer f.Close()
		rrs := fabricRRRun(f, warm, dur, fabricWorkers())
		pcts := latencyPercentilesMicros(rrs)
		return fabOut{
			name: fmt.Sprintf("scale, %d racks", racks), racks: racks, vms: len(rrs),
			oversub:    scaleOversub,
			kopsPerSec: float64(totalOps(rrs)) / dur.Seconds() / 1000,
			p50:        pcts[0], p99: pcts[2],
			xshard:    fabricXshard(f),
			windows:   f.Group.Windows,
			noRoute:   fabricNoRoute(f),
			ecmpImb:   fabricECMPImbalance(f),
			identical: "-",
		}
	})

	return Plan{
		Cells: cells,
		Assemble: func(out []any) Result {
			next := cursor(out)
			res := Result{
				ID:    "fabricscaling",
				Title: "Spine-leaf fabric: sharded simulation equivalence, oversubscription, and rack scale-out",
				Header: []string{"cell", "racks", "VMs", "oversub", "kops/s",
					"p50 [µs]", "p99 [µs]", "xshard msgs", "windows", "no_route", "ecmp", "identical"},
			}
			for range out {
				o := next().(fabOut)
				res.Rows = append(res.Rows, []string{
					o.name, fmt.Sprintf("%d", o.racks), fmt.Sprintf("%d", o.vms),
					fmt.Sprintf("%g:1", o.oversub), f1(o.kopsPerSec),
					f1(o.p50), f1(o.p99),
					fmt.Sprintf("%d", o.xshard), fmt.Sprintf("%d", o.windows),
					fmt.Sprintf("%d", o.noRoute), fmt.Sprintf("%.2f", o.ecmpImb), o.identical,
				})
			}
			res.Notes = append(res.Notes,
				"Every transaction crosses the spine tier twice (request and reply); station r drives the guests of rack r+1.",
				"The equivalence cell runs the same fabric serially (workers=1) and sharded (one worker per core): 'identical' compares ops, latency histograms, per-shard event counts, and switch counters byte for byte.",
				"Oversubscription divides the per-uplink bandwidth (downlink capacity / ratio x uplinks); the sweep pins each rack to one VMhost so the uplink stays the contended resource — latency rises and throughput falls as the ratio grows.",
				"Wall-clock shard speedup is machine-dependent and reported in the BENCH json (shard_sweep), not here — these rows are byte-reproducible per seed.",
				"no_route sums the DropNoRoute gauges over every ToR and spine switch (0 in a healthy fabric); ecmp is the worst rack's uplink imbalance — max uplink frames over the even share, 1.0 = perfectly spread.",
			)
			return res
		},
	}
}

// FabricBenchRun builds the 16-rack scale fabric (honoring the -racks and
// -oversub overrides) and runs the cross-rack RR workload with the given
// worker count, returning total simulated events executed. The caller times
// it — this is the body of the BENCH json's shard_sweep, kept here so the
// sweep measures exactly the workload the fabricscaling experiment reports.
func FabricBenchRun(quick bool, workers int) uint64 {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	racks := 16
	if fabricRacksOverride > 0 {
		racks = fabricRacksOverride
	}
	oversub := 4.0
	if fabricOversubOverride > 0 {
		oversub = fabricOversubOverride
	}
	// Always the full per-rack population: quick shortens the run, not the
	// racks — a near-empty rack has so little work per 4µs sync window that
	// the sweep would measure barrier overhead instead of the simulator.
	f, err := cluster.BuildFabric(fabricScalingSpec(false, racks, oversub))
	if err != nil {
		panic(err)
	}
	defer f.Close()
	fabricRRRun(f, warm, dur, workers)
	return f.TotalExecuted()
}

// fabricXshard sums cross-shard messages received across all shards.
func fabricXshard(f *cluster.Fabric) uint64 {
	var n uint64
	for _, s := range f.Group.Shards() {
		n += s.Received
	}
	return n
}
