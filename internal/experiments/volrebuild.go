package experiments

import (
	"fmt"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/rack"
	"vrio/internal/sim"
	"vrio/internal/stats"
)

// volrebuild measures the distributed-volume layer (DESIGN.md §16): quorum
// write latency as the replication factor grows, and recovery under load —
// an IOhost crash mid-run on a striped R=2 volume, heartbeat-detected, with
// the rebuild engine re-replicating lost extents while the foreground write
// load keeps flowing. Every cell audits the exactly-once ledger.
func init() { register("volrebuild", volRebuildPlan) }

// volume options injected by cmd/vrio-experiments' -vol-replicas /
// -vol-quorum flags (see SetVolOptions).
var (
	volReplicasOverride int
	volQuorumOverride   int
)

// SetVolOptions overrides the recovery cells' replication factor and write
// quorum (zero keeps the defaults R=2, W=1). Call before running; the
// options are read at plan-build time.
func SetVolOptions(replicas, quorum int) {
	volReplicasOverride = replicas
	volQuorumOverride = quorum
}

func volRecoveryRW() (r, w int) {
	r, w = 2, 1
	if volReplicasOverride > 0 {
		r = volReplicasOverride
	}
	if volQuorumOverride > 0 {
		w = volQuorumOverride
	}
	return r, w
}

// volWriter is one volume's closed-loop quorum write load with the same
// per-request completion ledger as blkWriter, plus per-write latency
// recording into a swappable histogram (the recovery cell points it at a
// fresh histogram when the crash hits, splitting pre- and post-crash
// latency).
type volWriter struct {
	eng  *sim.Engine
	vol  *core.VolumeRouter
	conc int
	size int
	stop bool
	// counts[i] is how many times request i's callback ran; exactly-once
	// means every entry is 0 (in flight at stop) or 1.
	counts  []int
	issueAt []sim.Time
	hist    *stats.Histogram
	errs    uint64
}

func (w *volWriter) start() {
	for i := 0; i < w.conc; i++ {
		w.issue()
	}
}

func (w *volWriter) issue() {
	if w.stop {
		return
	}
	id := len(w.counts)
	w.counts = append(w.counts, 0)
	w.issueAt = append(w.issueAt, w.eng.Now())
	data := make([]byte, w.size)
	sectors := uint64(w.size) / 512
	cap := w.vol.Spec().CapacitySectors
	sector := (uint64(id) * 17 % (cap / sectors)) * sectors
	w.vol.Write(sector, data, func(err error) {
		w.counts[id]++
		if err != nil {
			w.errs++
		}
		if w.hist != nil {
			w.hist.Record(int64((w.eng.Now() - w.issueAt[id]) / sim.Microsecond))
		}
		w.issue()
	})
}

// done counts requests whose callback has run at least once.
func (w *volWriter) done() uint64 {
	var n uint64
	for _, c := range w.counts {
		if c >= 1 {
			n++
		}
	}
	return n
}

// tally folds the writer's post-drain ledger into out.
func (w *volWriter) tally(out *ftOut) {
	for _, c := range w.counts {
		switch {
		case c == 0:
			out.lost++
		case c > 1:
			out.dup += uint64(c - 1)
		}
		if c >= 1 {
			out.completed++
		}
	}
	out.issued += uint64(len(w.counts))
	out.devErrors += w.errs
}

// volQOut is one quorum-latency cell: closed-loop quorum writes at a given
// replication factor on a healthy volume.
type volQOut struct {
	r, w            int
	kops            float64
	p50, p99        float64 // µs
	dup, lost, errs uint64
}

// runVolQuorumCell measures quorum write latency and throughput at
// replication factor r (write quorum = majority) across 3 IOhosts.
func runVolQuorumCell(quick bool, r int) volQOut {
	_, dur := durations(quick, 0, 50*sim.Millisecond)
	w := r/2 + 1
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMsPerHost: 2, NumIOhosts: 3,
		VolReplicas: r, VolQuorum: w, VolQueues: 2,
		NoJitter: true, Seed: 921,
	})
	hist := &stats.Histogram{}
	var writers []*volWriter
	for _, vol := range tb.Volumes {
		vw := &volWriter{eng: tb.Eng, vol: vol, conc: 8, size: 4096, hist: hist}
		vw.start()
		writers = append(writers, vw)
	}
	var doneAtStop uint64
	tb.Eng.At(dur, func() {
		for _, vw := range writers {
			vw.stop = true
			doneAtStop += vw.done()
		}
	})
	tb.Eng.RunUntil(dur)
	tb.Eng.Run() // drain to empty: closed loops stopped, no background tickers

	out := volQOut{r: r, w: w}
	out.kops = float64(doneAtStop) / dur.Seconds() / 1e3
	var ft ftOut
	for _, vw := range writers {
		vw.tally(&ft)
	}
	out.dup, out.lost, out.errs = ft.dup, ft.lost, ft.devErrors
	out.p50 = float64(hist.Percentile(50))
	out.p99 = float64(hist.Percentile(99))
	return out
}

// volRebuildOut is one recovery-under-load cell: crash, heartbeat detection,
// rebuild while the write load keeps flowing.
type volRebuildOut struct {
	conc             int // rebuild concurrency
	kops             float64
	preP99, postP99  float64 // µs, before/after the crash
	dup, lost, errs  uint64
	rebuilt          uint64
	retargets, redos uint64
	rebuildMiB       float64
	rebuildMBps      float64
	detectUs         float64
	rebuildMs        float64 // detection → fully replicated
	healthy          bool
}

// runVolRebuildCell crashes IOhost 1 under a striped R-replicated volume at
// the midpoint of a closed-loop write run. The rack controller's heartbeat
// detector declares the death, which triggers the rebuild engine; the cell
// reports foreground p99 before and after the crash, the rebuild's copied
// bytes and bandwidth, and the exactly-once ledger.
func runVolRebuildCell(quick bool, rebuildConc int) volRebuildOut {
	_, dur := durations(quick, 0, 50*sim.Millisecond)
	r, wq := volRecoveryRW()
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMsPerHost: 2, NumIOhosts: 3,
		VolReplicas: r, VolQuorum: wq, VolQueues: 2,
		NoJitter: true, Seed: 922,
	})
	for _, vol := range tb.Volumes {
		vol.RebuildConcurrency = rebuildConc
	}
	ctrl := rack.New(tb, rack.Config{HeartbeatInterval: sim.Millisecond / 2, MissThreshold: 3})
	ctrl.Start()

	pre := &stats.Histogram{}
	post := &stats.Histogram{}
	var writers []*volWriter
	for _, vol := range tb.Volumes {
		vw := &volWriter{eng: tb.Eng, vol: vol, conc: 8, size: 4096, hist: pre}
		vw.start()
		writers = append(writers, vw)
	}

	failT := dur / 2
	tb.Eng.At(failT, func() {
		tb.IOHyps[1].Fail()
		for _, vw := range writers {
			vw.hist = post
		}
	})

	// Sample for the rebuild-complete instant: first time every volume is
	// fully replicated again after the crash.
	var fullAt sim.Time = -1
	var sample func()
	sample = func() {
		if tb.Eng.Now() > dur+ftDrain {
			return
		}
		healthy := true
		for _, vol := range tb.Volumes {
			// Before the heartbeat detector fires the router still believes
			// every host is alive, making FullyReplicated trivially true —
			// only samples after the death was observed count.
			if vol.Counters.Get("host_deaths") == 0 ||
				vol.Rebuilding() || !vol.FullyReplicated() {
				healthy = false
				break
			}
		}
		if healthy {
			fullAt = tb.Eng.Now()
			return
		}
		tb.Eng.After(20*sim.Microsecond, sample)
	}
	tb.Eng.At(failT, sample)

	var doneAtStop uint64
	tb.Eng.At(dur, func() {
		for _, vw := range writers {
			vw.stop = true
			doneAtStop += vw.done()
		}
	})
	// The heartbeat ticker never stops, so run to a deadline: the drain past
	// the retransmission budget settles every ledger entry.
	tb.Eng.RunUntil(dur + ftDrain)

	out := volRebuildOut{conc: rebuildConc}
	out.kops = float64(doneAtStop) / dur.Seconds() / 1e3
	var ft ftOut
	for _, vw := range writers {
		vw.tally(&ft)
	}
	out.dup, out.lost, out.errs = ft.dup, ft.lost, ft.devErrors
	out.preP99 = float64(pre.Percentile(99))
	out.postP99 = float64(post.Percentile(99))

	var bytes uint64
	out.healthy = true
	for _, vol := range tb.Volumes {
		bytes += vol.RebuildBytes
		out.rebuilt += vol.Counters.Get("rebuild_extents")
		out.retargets += vol.Counters.Get("rebuild_retargets")
		out.redos += vol.Counters.Get("rebuild_redo")
		if vol.Rebuilding() || !vol.FullyReplicated() {
			out.healthy = false
		}
	}
	out.rebuildMiB = float64(bytes) / (1 << 20)

	out.detectUs = -1
	for _, ev := range ctrl.Events {
		if ev.Kind == rack.EventDetect {
			out.detectUs = float64(ev.T-failT) / 1000
			break
		}
	}
	if fullAt >= 0 && out.detectUs >= 0 {
		rebuildDur := fullAt - failT - sim.Time(out.detectUs*1000)
		if rebuildDur > 0 {
			out.rebuildMs = float64(rebuildDur) / float64(sim.Millisecond)
			out.rebuildMBps = float64(bytes) / 1e6 / (float64(rebuildDur) / float64(sim.Second))
		}
	}
	return out
}

// volRebuildConcs is the rebuild-concurrency sweep of the recovery cells.
var volRebuildConcs = []int{1, 2, 4}

func volRebuildPlan(quick bool) Plan {
	quorumRs := []int{1, 2, 3}
	var cells []Cell
	for _, r := range quorumRs {
		r := r
		cells = append(cells, func() any { return runVolQuorumCell(quick, r) })
	}
	for _, c := range volRebuildConcs {
		c := c
		cells = append(cells, func() any { return runVolRebuildCell(quick, c) })
	}

	assemble := func(outs []any) Result {
		recR, recW := volRecoveryRW()
		res := Result{
			ID: "volrebuild",
			Title: "Distributed volumes: quorum write latency vs replication, " +
				"and rebuild under load after an IOhost crash (DESIGN.md §16)",
			Header: []string{"cell", "kops/s", "p50µs", "p99µs", "dup",
				"never-completed", "errs", "rebuilt", "MB/s", "healthy"},
		}
		next := cursor(outs)
		for range quorumRs {
			o := next().(volQOut)
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("R=%d W=%d", o.r, o.w), f1(o.kops),
				f1(o.p50), f1(o.p99),
				fmt.Sprintf("%d", o.dup), fmt.Sprintf("%d", o.lost),
				fmt.Sprintf("%d", o.errs), "-", "-", "-",
			})
		}
		var last volRebuildOut
		for range volRebuildConcs {
			o := next().(volRebuildOut)
			last = o
			healthy := "yes"
			if !o.healthy {
				healthy = "NO"
			}
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("crash R=%d W=%d rbc=%d", recR, recW, o.conc), f1(o.kops),
				"-", fmt.Sprintf("%.1f/%.1f", o.preP99, o.postP99),
				fmt.Sprintf("%d", o.dup), fmt.Sprintf("%d", o.lost),
				fmt.Sprintf("%d", o.errs), fmt.Sprintf("%d", o.rebuilt),
				f1(o.rebuildMBps), healthy,
			})
		}
		res.Notes = append(res.Notes,
			"quorum cells: closed-loop 4 KiB quorum writes, 2 guests x QD8, majority write quorum; p50/p99 is the full guest-observed quorum round trip.",
			"crash cells: IOhost 1 dies at the midpoint; heartbeats detect it and the rebuild engine re-replicates every lost extent onto survivors while the load runs. p99µs shows pre/post-crash foreground latency; rbc is the rebuild copy concurrency.",
			fmt.Sprintf("recovery cells detected the crash in %.0fµs and restored full replication in %.2fms (rbc=%d); dup and never-completed must be 0 everywhere.",
				last.detectUs, last.rebuildMs, last.conc),
		)
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}
