package experiments

import (
	"fmt"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

func init() {
	register("table3", table3)
	register("fig5", fig5)
	register("fig7", fig7)
	register("fig8", fig8)
	register("fig9", fig9)
	register("fig10", fig10)
	register("fig11", fig11)
	register("table4", table4)
	register("fig12", fig12)
	register("fig13", fig13)
	register("heterogeneity", heterogeneity)
}

// table3 measures (not assumes) the per-request-response virtualization
// events of every model.
func table3(quick bool) Result {
	warm, dur := durations(quick, 2*sim.Millisecond, 50*sim.Millisecond)
	res := Result{
		ID:     "table3",
		Title:  "Exits and interrupts per request-response (measured)",
		Header: []string{"model", "sync exits", "guest intrpts", "intrpt injection", "host intrpts", "IOhost intrpts", "sum"},
	}
	for _, m := range fig5Models {
		tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: 1, Seed: 11})
		rrs := rrRun(tb, warm, dur)
		ops := float64(totalOps(rrs))
		if ops == 0 {
			res.Notes = append(res.Notes, string(m)+": no transactions")
			continue
		}
		g := tb.Guests[0]
		per := func(name string) float64 { return float64(g.VM.Counters.Get(name)) / ops }
		ioirq := 0.0
		if tb.IOHyp != nil {
			ioirq = float64(tb.IOHyp.Counters.Get("iohost_irqs")) / ops
		}
		sum := per("exits") + per("guest_irqs") + per("irq_injections") + per("host_irqs") + ioirq
		res.Rows = append(res.Rows, []string{
			string(m), f1(per("exits")), f1(per("guest_irqs")),
			f1(per("irq_injections")), f1(per("host_irqs")), f1(ioirq), f1(sum),
		})
	}
	res.Notes = append(res.Notes,
		"paper: optimum 0/2/0/0/- (2), vrio 0/2/0/0/0 (2), elvis 0/2/0/2/- (4), vrio-nopoll 0/2/0/0/4 (6), baseline 3/2/2/2/- (9)")
	return res
}

// fig5 runs ApacheBench on the five configurations.
func fig5(quick bool) Result {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	res := Result{
		ID:     "fig5",
		Title:  "ApacheBench aggregate requests/sec vs number of VMs",
		Header: []string{"VMs"},
	}
	for _, m := range fig5Models {
		res.Header = append(res.Header, string(m))
	}
	maxN := 7
	if quick {
		maxN = 3
	}
	for n := 1; n <= maxN; n++ {
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range fig5Models {
			tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: n, StationPerVM: true, Seed: 21})
			var ms []*workload.Macro
			var cs []cluster.Measurable
			for i, g := range tb.Guests {
				workload.InstallMacroServer(g, tb.P.ApacheRequestCost, workload.ApacheConfig().RespSize)
				mac := workload.NewMacro(tb.StationFor(i), g.MAC(), workload.ApacheConfig())
				mac.Start()
				ms = append(ms, mac)
				cs = append(cs, &mac.Results)
			}
			tb.RunMeasured(warm, dur, cs...)
			var total float64
			for _, mac := range ms {
				total += mac.Results.OpsPerSec(dur)
			}
			row = append(row, fmt.Sprintf("%.0f", total))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper shape: throughput inversely ordered by Table 3's event sum: optimum≈vrio > elvis > vrio-nopoll > baseline")
	return res
}

// fig7 measures Netperf RR mean latency vs N for the four models.
func fig7(quick bool) Result {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	res := Result{
		ID:     "fig7",
		Title:  "Netperf RR average latency [µs] vs number of VMs (N+1 cores; optimum N)",
		Header: []string{"VMs", "baseline", "vrio", "elvis", "optimum"},
	}
	maxN := 7
	if quick {
		maxN = 3
	}
	for n := 1; n <= maxN; n++ {
		lat := map[core.ModelName]float64{}
		for _, m := range netModels {
			tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: n, Seed: 31})
			lat[m] = meanLatencyMicros(rrRun(tb, warm, dur))
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", n),
			f1(lat[core.ModelBaseline]), f1(lat[core.ModelVRIO]),
			f1(lat[core.ModelElvis]), f1(lat[core.ModelOptimum]),
		})
	}
	res.Notes = append(res.Notes,
		"paper shape: optimum ≈30-32µs near-flat; vrio ≈ optimum+12-13µs; elvis starts 8µs under vrio, crosses above near N=6; baseline worst")
	return res
}

// fig8 reports the vRIO-minus-optimum latency gap and the IOhost sidecore
// contention (fraction of work that queued).
func fig8(quick bool) Result {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	res := Result{
		ID:     "fig8",
		Title:  "Netperf RR vRIO: latency gap vs optimum [µs] and sidecore contention [%]",
		Header: []string{"VMs", "gap [µs]", "contention [%]"},
	}
	maxN := 7
	if quick {
		maxN = 3
	}
	for n := 1; n <= maxN; n++ {
		tbO := cluster.Build(cluster.Spec{Model: core.ModelOptimum, VMsPerHost: n, Seed: 41})
		opt := meanLatencyMicros(rrRun(tbO, warm, dur))
		tbV := cluster.Build(cluster.Spec{Model: core.ModelVRIO, VMsPerHost: n, Seed: 41})
		vr := meanLatencyMicros(rrRun(tbV, warm, dur))
		contention := 0.0
		for _, sc := range tbV.Sidecores {
			contention += sc.WaitFraction()
		}
		contention /= float64(len(tbV.Sidecores))
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", n), f1(vr - opt), f1(contention * 100),
		})
	}
	res.Notes = append(res.Notes,
		"paper shape: gap grows slowly from ≈12 to ≈13µs; contention grows from ≈5% to ≈20%")
	return res
}

// fig9 measures Netperf stream throughput vs N.
func fig9(quick bool) Result {
	warm, dur := durations(quick, 5*sim.Millisecond, 80*sim.Millisecond)
	res := Result{
		ID:     "fig9",
		Title:  "Netperf stream aggregate throughput [Gbps] vs number of VMs",
		Header: []string{"VMs", "optimum", "elvis", "vrio", "baseline"},
	}
	maxN := 7
	if quick {
		maxN = 3
	}
	for n := 1; n <= maxN; n++ {
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range []core.ModelName{core.ModelOptimum, core.ModelElvis, core.ModelVRIO, core.ModelBaseline} {
			tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: n, Seed: 51})
			row = append(row, f2(aggGbps(streamRun(tb, warm, dur), dur)))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper shape: elvis ≈ optimum; vrio 5-8% lower; baseline clearly lowest and flattening")
	return res
}

// fig10 measures VMhost-side cycles (ns of busy CPU) per stream chunk, N=1.
func fig10(quick bool) Result {
	warm, dur := durations(quick, 5*sim.Millisecond, 80*sim.Millisecond)
	res := Result{
		ID:     "fig10",
		Title:  "Per-packet processing [ns of VMhost CPU per 64KB chunk], N=1",
		Header: []string{"model", "ns/chunk", "vs optimum"},
	}
	base := 0.0
	for _, m := range []core.ModelName{core.ModelOptimum, core.ModelVRIO, core.ModelElvis, core.ModelBaseline} {
		// NoJitter: background interference would smear the per-chunk
		// cycle accounting (models with more local cores absorb more
		// jitter, which is not what Figure 10 measures).
		tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: 1, NoJitter: true, Seed: 61})
		sts := streamRun(tb, warm, dur)
		chunks := sts[0].Results.Ops
		if chunks == 0 {
			continue
		}
		// VMhost busy fraction over the run, scaled to the measured
		// window's chunk count: ns of VMhost CPU per chunk.
		perChunk := float64(vmhostBusy(tb)) / float64(tb.Eng.Now()) * float64(dur) / float64(chunks)
		rel := "+0%"
		if base == 0 {
			base = perChunk
		} else {
			rel = pct(perChunk/base - 1)
		}
		res.Rows = append(res.Rows, []string{string(m), fmt.Sprintf("%.0f", perChunk), rel})
	}
	res.Notes = append(res.Notes,
		"paper: optimum +0%, vrio +9%, elvis +1%, baseline +40% (per-packet cycles on the VMhost)")
	return res
}

// vmhostBusy sums busy time across VM cores and local host cores (vRIO's
// IOhost cores are deliberately excluded: they are the remote device).
func vmhostBusy(tb *cluster.Testbed) sim.Time {
	var total sim.Time
	for _, c := range tb.VMCores {
		total += c.BusyTime()
	}
	for _, c := range tb.IOCores {
		total += c.BusyTime()
	}
	if tb.Spec.Model == core.ModelElvis {
		for _, c := range tb.Sidecores {
			total += c.BusyTime()
		}
	}
	return total
}

// fig11 equalizes core counts: the optimum gets N+1=8 cores (8 VMs) and is
// compared against the other models at N=7.
func fig11(quick bool) Result {
	warm, dur := durations(quick, 5*sim.Millisecond, 80*sim.Millisecond)
	res := Result{
		ID:     "fig11",
		Title:  "Stream throughput [Gbps] with equal cores: optimum 8 VMs vs others at N=7",
		Header: []string{"config", "Gbps", "vs optimum-8vms"},
	}
	n := 7
	if quick {
		n = 3
	}
	type cfg struct {
		name  string
		model core.ModelName
		vms   int
	}
	cfgs := []cfg{
		{"optimum-8vms", core.ModelOptimum, n + 1},
		{"optimum", core.ModelOptimum, n},
		{"elvis", core.ModelElvis, n},
		{"vrio", core.ModelVRIO, n},
		{"baseline", core.ModelBaseline, n},
	}
	base := 0.0
	for _, c := range cfgs {
		tb := cluster.Build(cluster.Spec{Model: c.model, VMsPerHost: c.vms, Seed: 71})
		g := aggGbps(streamRun(tb, warm, dur), dur)
		rel := "0%"
		if base == 0 {
			base = g
		} else {
			rel = pct(g/base - 1)
		}
		res.Rows = append(res.Rows, []string{c.name, f2(g), rel})
	}
	res.Notes = append(res.Notes,
		"paper: with a core parity the optimum wins by 11-18% over elvis/vrio and 54% over baseline — the price of interposition")
	return res
}

// table4 reports RR tail latency percentiles for one VM.
func table4(quick bool) Result {
	warm, dur := durations(quick, 5*sim.Millisecond, 2000*sim.Millisecond)
	res := Result{
		ID:     "table4",
		Title:  "Tail latency [µs] for one VM (Netperf RR)",
		Header: []string{"percentile", "optimum", "elvis", "vrio"},
	}
	percentiles := []float64{99.9, 99.99, 99.999, 100}
	vals := map[core.ModelName][]float64{}
	for _, m := range []core.ModelName{core.ModelOptimum, core.ModelElvis, core.ModelVRIO} {
		tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: 1, Seed: 81})
		rrs := rrRun(tb, warm, dur)
		for _, p := range percentiles {
			vals[m] = append(vals[m], float64(rrs[0].Results.Latency.Percentile(p))/1000)
		}
	}
	names := []string{"99.9%", "99.99%", "99.999%", "100%"}
	for i, name := range names {
		res.Rows = append(res.Rows, []string{
			name,
			f1(vals[core.ModelOptimum][i]),
			f1(vals[core.ModelElvis][i]),
			f1(vals[core.ModelVRIO][i]),
		})
	}
	res.Notes = append(res.Notes,
		"paper: optimum 35/42/214/227, elvis 53/71/466/480, vrio 60/156/258/274 — mixed tails: elvis better at 99.9/99.99, vrio better at 99.999/max")
	return res
}

// fig12 runs the memcached and apache macrobenchmarks across N.
func fig12(quick bool) Result {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	res := Result{
		ID:     "fig12",
		Title:  "Macrobenchmarks [K transactions/sec] vs number of VMs",
		Header: []string{"VMs", "mc-optimum", "mc-vrio", "mc-elvis", "mc-base", "ap-optimum", "ap-vrio", "ap-elvis", "ap-base"},
	}
	maxN := 7
	if quick {
		maxN = 3
	}
	run := func(m core.ModelName, n int, cfg workload.MacroConfig, cost sim.Time) float64 {
		tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: n, StationPerVM: true, Seed: 91})
		var ms []*workload.Macro
		var cs []cluster.Measurable
		for i, g := range tb.Guests {
			workload.InstallMacroServer(g, cost, cfg.RespSize)
			mac := workload.NewMacro(tb.StationFor(i), g.MAC(), cfg)
			mac.Start()
			ms = append(ms, mac)
			cs = append(cs, &mac.Results)
		}
		tb.RunMeasured(warm, dur, cs...)
		var total float64
		for _, mac := range ms {
			total += mac.Results.OpsPerSec(dur)
		}
		return total / 1000
	}
	p := params.Default()
	for n := 1; n <= maxN; n++ {
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range []core.ModelName{core.ModelOptimum, core.ModelVRIO, core.ModelElvis, core.ModelBaseline} {
			row = append(row, f1(run(m, n, workload.MemcachedConfig(), p.MemcachedRequestCost)))
		}
		for _, m := range []core.ModelName{core.ModelOptimum, core.ModelVRIO, core.ModelElvis, core.ModelBaseline} {
			row = append(row, f1(run(m, n, workload.ApacheConfig(), p.ApacheRequestCost)))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper shape: vrio approaches the optimum while elvis falls behind at higher N (interrupt cost); baseline lowest")
	return res
}

// fig13 serves four VMhosts from one IOhost with 1, 2, and 4 sidecores.
func fig13(quick bool) Result {
	warm, dur := durations(quick, 4*sim.Millisecond, 40*sim.Millisecond)
	res := Result{
		ID:     "fig13",
		Title:  "vRIO IOhost scalability: 4 VMhosts, RR latency [µs] and stream throughput [Gbps]",
		Header: []string{"VMs", "lat 1sc", "lat 2sc", "lat 4sc", "tput 1sc", "tput 2sc", "tput 4sc"},
	}
	steps := []int{4, 8, 12, 16, 20, 24, 28}
	if quick {
		steps = []int{4, 8}
	}
	for _, total := range steps {
		row := []string{fmt.Sprintf("%d", total)}
		perHost := total / 4
		for _, sc := range []int{1, 2, 4} {
			tb := cluster.Build(cluster.Spec{
				Model: core.ModelVRIO, VMHosts: 4, VMsPerHost: perHost,
				IOhostSidecores: sc, Seed: 101,
			})
			row = append(row, f1(meanLatencyMicros(rrRun(tb, warm, dur))))
		}
		for _, sc := range []int{1, 2, 4} {
			tb := cluster.Build(cluster.Spec{
				Model: core.ModelVRIO, VMHosts: 4, VMsPerHost: perHost,
				IOhostSidecores: sc, Seed: 101,
			})
			row = append(row, f2(aggGbps(streamRun(tb, warm, dur), dur)))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper shape: more sidecores reduce latency; one sidecore saturates near 13 VMs ≈ 13 Gbps; VM placement across hosts is irrelevant")
	return res
}

// heterogeneity runs vRIO stream clients of different kinds (VM and bare
// metal) and shows both attain the same service (§5 "Heterogeneity").
func heterogeneity(quick bool) Result {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	res := Result{
		ID:     "heterogeneity",
		Title:  "vRIO with heterogeneous IOclients: per-client stream throughput [Gbps]",
		Header: []string{"client kind", "Gbps", "VM-core util [%]"},
	}
	for _, bare := range []bool{false, true} {
		tb := cluster.Build(cluster.Spec{
			Model: core.ModelVRIO, VMsPerHost: 1, BareClients: bare, Seed: 111,
		})
		sts := streamRun(tb, warm, dur)
		kind := "KVM guest"
		if bare {
			kind = "bare metal"
		}
		util := tb.VMCores[0].Utilization() * 100
		res.Rows = append(res.Rows, []string{kind, f2(aggGbps(sts, dur)), f1(util)})
	}
	res.Notes = append(res.Notes,
		"paper: ESXi guests, KVM guests, bare-metal x86 and POWER clients all attain line rate with comparable CPU; the vRIO datapath is hypervisor-agnostic by construction (the IOhost never inspects the client kind)")
	return res
}
