package experiments

import (
	"fmt"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

func init() {
	register("table3", table3Plan)
	register("fig5", fig5Plan)
	register("fig7", fig7Plan)
	register("fig8", fig8Plan)
	register("fig9", fig9Plan)
	register("fig10", fig10Plan)
	register("fig11", fig11Plan)
	register("table4", table4Plan)
	register("fig12", fig12Plan)
	register("fig13", fig13Plan)
	register("heterogeneity", heterogeneityPlan)
}

// table3 measures (not assumes) the per-request-response virtualization
// events of every model. One cell per model.
func table3(quick bool) Result { return runPlan(table3Plan(quick)) }

func table3Plan(quick bool) Plan {
	warm, dur := durations(quick, 2*sim.Millisecond, 50*sim.Millisecond)
	type out struct {
		row  []string
		note string
	}
	var cells []Cell
	for _, m := range fig5Models {
		m := m
		cells = append(cells, func() any {
			tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: 1, Seed: 11})
			rrs := rrRun(tb, warm, dur)
			ops := float64(totalOps(rrs))
			if ops == 0 {
				return out{note: string(m) + ": no transactions"}
			}
			// Event counts come through the metrics registry — the same
			// counters the components maintain, read by component/name
			// instead of reaching into their fields.
			per := func(name string) float64 { return tb.Metrics.Value("vm0", name) / ops }
			ioirq := tb.Metrics.Value("iohyp", "iohost_irqs") / ops
			sum := per("exits") + per("guest_irqs") + per("irq_injections") + per("host_irqs") + ioirq
			return out{row: []string{
				string(m), f1(per("exits")), f1(per("guest_irqs")),
				f1(per("irq_injections")), f1(per("host_irqs")), f1(ioirq), f1(sum),
			}}
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "table3",
			Title:  "Exits and interrupts per request-response (measured)",
			Header: []string{"model", "sync exits", "guest intrpts", "intrpt injection", "host intrpts", "IOhost intrpts", "sum"},
		}
		for _, o := range outs {
			c := o.(out)
			if c.note != "" {
				res.Notes = append(res.Notes, c.note)
				continue
			}
			res.Rows = append(res.Rows, c.row)
		}
		res.Notes = append(res.Notes,
			"paper: optimum 0/2/0/0/- (2), vrio 0/2/0/0/0 (2), elvis 0/2/0/2/- (4), vrio-nopoll 0/2/0/0/4 (6), baseline 3/2/2/2/- (9)")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// fig5 runs ApacheBench on the five configurations. One cell per (N, model).
func fig5Plan(quick bool) Plan {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	maxN := 7
	if quick {
		maxN = 3
	}
	var cells []Cell
	for n := 1; n <= maxN; n++ {
		for _, m := range fig5Models {
			n, m := n, m
			cells = append(cells, func() any {
				tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: n, StationPerVM: true, Seed: 21})
				var ms []*workload.Macro
				var cs []cluster.Measurable
				for i, g := range tb.Guests {
					workload.InstallMacroServer(g, tb.P.ApacheRequestCost, workload.ApacheConfig().RespSize)
					mac := workload.NewMacro(tb.StationFor(i), g.MAC(), workload.ApacheConfig())
					mac.Start()
					ms = append(ms, mac)
					cs = append(cs, &mac.Results)
				}
				tb.RunMeasured(warm, dur, cs...)
				var total float64
				for _, mac := range ms {
					total += mac.Results.OpsPerSec(dur)
				}
				return total
			})
		}
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig5",
			Title:  "ApacheBench aggregate requests/sec vs number of VMs",
			Header: []string{"VMs"},
		}
		for _, m := range fig5Models {
			res.Header = append(res.Header, string(m))
		}
		next := cursor(outs)
		for n := 1; n <= maxN; n++ {
			row := []string{fmt.Sprintf("%d", n)}
			for range fig5Models {
				row = append(row, fmt.Sprintf("%.0f", next().(float64)))
			}
			res.Rows = append(res.Rows, row)
		}
		res.Notes = append(res.Notes,
			"paper shape: throughput inversely ordered by Table 3's event sum: optimum≈vrio > elvis > vrio-nopoll > baseline")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// fig7 measures Netperf RR mean latency vs N for the four models. One cell
// per (N, model).
func fig7(quick bool) Result { return runPlan(fig7Plan(quick)) }

func fig7Plan(quick bool) Plan {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	maxN := 7
	if quick {
		maxN = 3
	}
	var cells []Cell
	for n := 1; n <= maxN; n++ {
		for _, m := range netModels {
			n, m := n, m
			cells = append(cells, func() any {
				tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: n, Seed: 31})
				rrs := rrRun(tb, warm, dur)
				pcts := latencyPercentilesMicros(rrs)
				return [4]float64{meanLatencyMicros(rrs), pcts[0], pcts[1], pcts[2]}
			})
		}
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig7",
			Title:  "Netperf RR average latency [µs] vs number of VMs (N+1 cores; optimum N)",
			Header: []string{"VMs", "baseline", "vrio", "elvis", "optimum"},
		}
		// Percentile columns follow the four means, same model order.
		colModels := []core.ModelName{
			core.ModelBaseline, core.ModelVRIO, core.ModelElvis, core.ModelOptimum,
		}
		for _, m := range colModels {
			for _, p := range []string{"p50", "p95", "p99"} {
				res.Header = append(res.Header, string(m)+"-"+p)
			}
		}
		next := cursor(outs)
		for n := 1; n <= maxN; n++ {
			lat := map[core.ModelName][4]float64{}
			for _, m := range netModels {
				lat[m] = next().([4]float64)
			}
			row := []string{fmt.Sprintf("%d", n)}
			for _, m := range colModels {
				row = append(row, f1(lat[m][0]))
			}
			for _, m := range colModels {
				row = append(row, f1(lat[m][1]), f1(lat[m][2]), f1(lat[m][3]))
			}
			res.Rows = append(res.Rows, row)
		}
		res.Notes = append(res.Notes,
			"paper shape: optimum ≈30-32µs near-flat; vrio ≈ optimum+12-13µs; elvis starts 8µs under vrio, crosses above near N=6; baseline worst")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// fig8 reports the vRIO-minus-optimum latency gap and the IOhost sidecore
// contention. Two cells per N: the optimum run and the vRIO run.
func fig8Plan(quick bool) Plan {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	maxN := 7
	if quick {
		maxN = 3
	}
	type vrioOut struct {
		lat        float64
		contention float64
	}
	var cells []Cell
	for n := 1; n <= maxN; n++ {
		n := n
		cells = append(cells, func() any {
			tb := cluster.Build(cluster.Spec{Model: core.ModelOptimum, VMsPerHost: n, Seed: 41})
			return meanLatencyMicros(rrRun(tb, warm, dur))
		})
		cells = append(cells, func() any {
			tb := cluster.Build(cluster.Spec{Model: core.ModelVRIO, VMsPerHost: n, Seed: 41})
			lat := meanLatencyMicros(rrRun(tb, warm, dur))
			contention := 0.0
			for _, sc := range tb.Sidecores {
				contention += sc.WaitFraction()
			}
			contention /= float64(len(tb.Sidecores))
			return vrioOut{lat: lat, contention: contention}
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig8",
			Title:  "Netperf RR vRIO: latency gap vs optimum [µs] and sidecore contention [%]",
			Header: []string{"VMs", "gap [µs]", "contention [%]"},
		}
		next := cursor(outs)
		for n := 1; n <= maxN; n++ {
			opt := next().(float64)
			v := next().(vrioOut)
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%d", n), f1(v.lat - opt), f1(v.contention * 100),
			})
		}
		res.Notes = append(res.Notes,
			"paper shape: gap grows slowly from ≈12 to ≈13µs; contention grows from ≈5% to ≈20%")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// fig9 measures Netperf stream throughput vs N. One cell per (N, model).
func fig9Plan(quick bool) Plan {
	warm, dur := durations(quick, 5*sim.Millisecond, 80*sim.Millisecond)
	maxN := 7
	if quick {
		maxN = 3
	}
	models := []core.ModelName{core.ModelOptimum, core.ModelElvis, core.ModelVRIO, core.ModelBaseline}
	var cells []Cell
	for n := 1; n <= maxN; n++ {
		for _, m := range models {
			n, m := n, m
			cells = append(cells, func() any {
				tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: n, Seed: 51})
				return aggGbps(streamRun(tb, warm, dur), dur)
			})
		}
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig9",
			Title:  "Netperf stream aggregate throughput [Gbps] vs number of VMs",
			Header: []string{"VMs", "optimum", "elvis", "vrio", "baseline"},
		}
		next := cursor(outs)
		for n := 1; n <= maxN; n++ {
			row := []string{fmt.Sprintf("%d", n)}
			for range models {
				row = append(row, f2(next().(float64)))
			}
			res.Rows = append(res.Rows, row)
		}
		res.Notes = append(res.Notes,
			"paper shape: elvis ≈ optimum; vrio 5-8% lower; baseline clearly lowest and flattening")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// fig10 measures VMhost-side cycles (ns of busy CPU) per stream chunk, N=1.
// One cell per model; the vs-optimum baseline is computed at assembly.
func fig10Plan(quick bool) Plan {
	warm, dur := durations(quick, 5*sim.Millisecond, 80*sim.Millisecond)
	models := []core.ModelName{core.ModelOptimum, core.ModelVRIO, core.ModelElvis, core.ModelBaseline}
	var cells []Cell
	for _, m := range models {
		m := m
		cells = append(cells, func() any {
			// NoJitter: background interference would smear the per-chunk
			// cycle accounting (models with more local cores absorb more
			// jitter, which is not what Figure 10 measures).
			tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: 1, NoJitter: true, Seed: 61})
			sts := streamRun(tb, warm, dur)
			chunks := sts[0].Results.Ops
			if chunks == 0 {
				return -1.0
			}
			// VMhost busy fraction over the run, scaled to the measured
			// window's chunk count: ns of VMhost CPU per chunk.
			return float64(vmhostBusy(tb)) / float64(tb.Eng.Now()) * float64(dur) / float64(chunks)
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig10",
			Title:  "Per-packet processing [ns of VMhost CPU per 64KB chunk], N=1",
			Header: []string{"model", "ns/chunk", "vs optimum"},
		}
		base := 0.0
		for i, m := range models {
			perChunk := outs[i].(float64)
			if perChunk < 0 {
				continue
			}
			rel := "+0%"
			if base == 0 {
				base = perChunk
			} else {
				rel = pct(perChunk/base - 1)
			}
			res.Rows = append(res.Rows, []string{string(m), fmt.Sprintf("%.0f", perChunk), rel})
		}
		res.Notes = append(res.Notes,
			"paper: optimum +0%, vrio +9%, elvis +1%, baseline +40% (per-packet cycles on the VMhost)")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// vmhostBusy sums busy time across VM cores and local host cores (vRIO's
// IOhost cores are deliberately excluded: they are the remote device).
func vmhostBusy(tb *cluster.Testbed) sim.Time {
	var total sim.Time
	for _, c := range tb.VMCores {
		total += c.BusyTime()
	}
	for _, c := range tb.IOCores {
		total += c.BusyTime()
	}
	if tb.Spec.Model == core.ModelElvis {
		for _, c := range tb.Sidecores {
			total += c.BusyTime()
		}
	}
	return total
}

// fig11 equalizes core counts: the optimum gets N+1=8 cores (8 VMs) and is
// compared against the other models at N=7. One cell per configuration.
func fig11Plan(quick bool) Plan {
	warm, dur := durations(quick, 5*sim.Millisecond, 80*sim.Millisecond)
	n := 7
	if quick {
		n = 3
	}
	type cfg struct {
		name  string
		model core.ModelName
		vms   int
	}
	cfgs := []cfg{
		{"optimum-8vms", core.ModelOptimum, n + 1},
		{"optimum", core.ModelOptimum, n},
		{"elvis", core.ModelElvis, n},
		{"vrio", core.ModelVRIO, n},
		{"baseline", core.ModelBaseline, n},
	}
	var cells []Cell
	for _, c := range cfgs {
		c := c
		cells = append(cells, func() any {
			tb := cluster.Build(cluster.Spec{Model: c.model, VMsPerHost: c.vms, Seed: 71})
			return aggGbps(streamRun(tb, warm, dur), dur)
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig11",
			Title:  "Stream throughput [Gbps] with equal cores: optimum 8 VMs vs others at N=7",
			Header: []string{"config", "Gbps", "vs optimum-8vms"},
		}
		base := 0.0
		for i, c := range cfgs {
			g := outs[i].(float64)
			rel := "0%"
			if base == 0 {
				base = g
			} else {
				rel = pct(g/base - 1)
			}
			res.Rows = append(res.Rows, []string{c.name, f2(g), rel})
		}
		res.Notes = append(res.Notes,
			"paper: with a core parity the optimum wins by 11-18% over elvis/vrio and 54% over baseline — the price of interposition")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// table4 reports RR tail latency percentiles for one VM. One cell per model,
// each returning the four percentile values.
func table4Plan(quick bool) Plan {
	warm, dur := durations(quick, 5*sim.Millisecond, 2000*sim.Millisecond)
	percentiles := []float64{50, 95, 99, 99.9, 99.99, 99.999, 100}
	models := []core.ModelName{core.ModelOptimum, core.ModelElvis, core.ModelVRIO}
	var cells []Cell
	for _, m := range models {
		m := m
		cells = append(cells, func() any {
			tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: 1, Seed: 81})
			rrs := rrRun(tb, warm, dur)
			var vals []float64
			for _, p := range percentiles {
				vals = append(vals, float64(rrs[0].Results.Latency.Percentile(p))/1000)
			}
			return vals
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "table4",
			Title:  "Tail latency [µs] for one VM (Netperf RR)",
			Header: []string{"percentile", "optimum", "elvis", "vrio"},
		}
		vals := map[core.ModelName][]float64{}
		for i, m := range models {
			vals[m] = outs[i].([]float64)
		}
		names := []string{"50%", "95%", "99%", "99.9%", "99.99%", "99.999%", "100%"}
		for i, name := range names {
			res.Rows = append(res.Rows, []string{
				name,
				f1(vals[core.ModelOptimum][i]),
				f1(vals[core.ModelElvis][i]),
				f1(vals[core.ModelVRIO][i]),
			})
		}
		res.Notes = append(res.Notes,
			"paper: optimum 35/42/214/227, elvis 53/71/466/480, vrio 60/156/258/274 — mixed tails: elvis better at 99.9/99.99, vrio better at 99.999/max")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// fig12 runs the memcached and apache macrobenchmarks across N. One cell
// per (N, workload, model).
func fig12Plan(quick bool) Plan {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	maxN := 7
	if quick {
		maxN = 3
	}
	models := []core.ModelName{core.ModelOptimum, core.ModelVRIO, core.ModelElvis, core.ModelBaseline}
	p := params.Default()
	macroCell := func(m core.ModelName, n int, cfg workload.MacroConfig, cost sim.Time) Cell {
		return func() any {
			tb := cluster.Build(cluster.Spec{Model: m, VMsPerHost: n, StationPerVM: true, Seed: 91})
			var ms []*workload.Macro
			var cs []cluster.Measurable
			for i, g := range tb.Guests {
				workload.InstallMacroServer(g, cost, cfg.RespSize)
				mac := workload.NewMacro(tb.StationFor(i), g.MAC(), cfg)
				mac.Start()
				ms = append(ms, mac)
				cs = append(cs, &mac.Results)
			}
			tb.RunMeasured(warm, dur, cs...)
			var total float64
			for _, mac := range ms {
				total += mac.Results.OpsPerSec(dur)
			}
			return total / 1000
		}
	}
	var cells []Cell
	for n := 1; n <= maxN; n++ {
		for _, m := range models {
			cells = append(cells, macroCell(m, n, workload.MemcachedConfig(), p.MemcachedRequestCost))
		}
		for _, m := range models {
			cells = append(cells, macroCell(m, n, workload.ApacheConfig(), p.ApacheRequestCost))
		}
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig12",
			Title:  "Macrobenchmarks [K transactions/sec] vs number of VMs",
			Header: []string{"VMs", "mc-optimum", "mc-vrio", "mc-elvis", "mc-base", "ap-optimum", "ap-vrio", "ap-elvis", "ap-base"},
		}
		next := cursor(outs)
		for n := 1; n <= maxN; n++ {
			row := []string{fmt.Sprintf("%d", n)}
			for range models {
				row = append(row, f1(next().(float64)))
			}
			for range models {
				row = append(row, f1(next().(float64)))
			}
			res.Rows = append(res.Rows, row)
		}
		res.Notes = append(res.Notes,
			"paper shape: vrio approaches the optimum while elvis falls behind at higher N (interrupt cost); baseline lowest")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// fig13 serves four VMhosts from one IOhost with 1, 2, and 4 sidecores.
// One cell per (total VMs, sidecore count, metric).
func fig13Plan(quick bool) Plan {
	warm, dur := durations(quick, 4*sim.Millisecond, 40*sim.Millisecond)
	steps := []int{4, 8, 12, 16, 20, 24, 28}
	if quick {
		steps = []int{4, 8}
	}
	sidecores := []int{1, 2, 4}
	var cells []Cell
	for _, total := range steps {
		perHost := total / 4
		for _, sc := range sidecores {
			perHost, sc := perHost, sc
			cells = append(cells, func() any {
				tb := cluster.Build(cluster.Spec{
					Model: core.ModelVRIO, VMHosts: 4, VMsPerHost: perHost,
					IOhostSidecores: sc, Seed: 101,
				})
				return meanLatencyMicros(rrRun(tb, warm, dur))
			})
		}
		for _, sc := range sidecores {
			perHost, sc := perHost, sc
			cells = append(cells, func() any {
				tb := cluster.Build(cluster.Spec{
					Model: core.ModelVRIO, VMHosts: 4, VMsPerHost: perHost,
					IOhostSidecores: sc, Seed: 101,
				})
				return aggGbps(streamRun(tb, warm, dur), dur)
			})
		}
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig13",
			Title:  "vRIO IOhost scalability: 4 VMhosts, RR latency [µs] and stream throughput [Gbps]",
			Header: []string{"VMs", "lat 1sc", "lat 2sc", "lat 4sc", "tput 1sc", "tput 2sc", "tput 4sc"},
		}
		next := cursor(outs)
		for _, total := range steps {
			row := []string{fmt.Sprintf("%d", total)}
			for range sidecores {
				row = append(row, f1(next().(float64)))
			}
			for range sidecores {
				row = append(row, f2(next().(float64)))
			}
			res.Rows = append(res.Rows, row)
		}
		res.Notes = append(res.Notes,
			"paper shape: more sidecores reduce latency; one sidecore saturates near 13 VMs ≈ 13 Gbps; VM placement across hosts is irrelevant")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// heterogeneity runs vRIO stream clients of different kinds (VM and bare
// metal) and shows both attain the same service (§5 "Heterogeneity").
func heterogeneityPlan(quick bool) Plan {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	var cells []Cell
	for _, bare := range []bool{false, true} {
		bare := bare
		cells = append(cells, func() any {
			tb := cluster.Build(cluster.Spec{
				Model: core.ModelVRIO, VMsPerHost: 1, BareClients: bare, Seed: 111,
			})
			sts := streamRun(tb, warm, dur)
			kind := "KVM guest"
			if bare {
				kind = "bare metal"
			}
			util := tb.VMCores[0].Utilization() * 100
			return []string{kind, f2(aggGbps(sts, dur)), f1(util)}
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "heterogeneity",
			Title:  "vRIO with heterogeneous IOclients: per-client stream throughput [Gbps]",
			Header: []string{"client kind", "Gbps", "VM-core util [%]"},
		}
		for _, o := range outs {
			res.Rows = append(res.Rows, o.([]string))
		}
		res.Notes = append(res.Notes,
			"paper: ESXi guests, KVM guests, bare-metal x86 and POWER clients all attain line rate with comparable CPU; the vRIO datapath is hypervisor-agnostic by construction (the IOhost never inspects the client kind)")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}
