package experiments

import (
	"testing"
)

// The acceptance bar for the multi-queue work: block IOPS must rise
// monotonically along the QD=1/NQ=1 → QD=4/NQ=2 → QD=8/NQ=4 diagonal at a
// fixed worker count, with the top of the sweep at least 2x the single-queue
// baseline, exactly-once completions throughout, and no request left in an
// IOhost in-flight table after the drain.
func TestMQScalingMonotoneSpeedup(t *testing.T) {
	diagonal := [][2]int{{1, 1}, {4, 2}, {8, 4}} // {QD, NQ}
	prev := 0.0
	var base, top float64
	for i, pt := range diagonal {
		o := runMQCell(true, pt[0], pt[1], 4)
		if o.dup != 0 || o.lost != 0 || o.errs != 0 {
			t.Fatalf("QD=%d NQ=%d: ledger dup=%d lost=%d errs=%d; want exactly-once with no errors",
				pt[0], pt[1], o.dup, o.lost, o.errs)
		}
		if o.inflightLeft != 0 {
			t.Fatalf("QD=%d NQ=%d: %d requests left in IOhost in-flight tables after drain",
				pt[0], pt[1], o.inflightLeft)
		}
		if o.kiops <= prev {
			t.Fatalf("QD=%d NQ=%d: %.1f kIOPS not above previous point %.1f — sweep must be monotone",
				pt[0], pt[1], o.kiops, prev)
		}
		prev = o.kiops
		if i == 0 {
			base = o.kiops
		}
		top = o.kiops
	}
	if top < 2*base {
		t.Fatalf("top of sweep %.1f kIOPS < 2x baseline %.1f kIOPS", top, base)
	}
}

// Multi-queue submission must keep the cross-queue conflict arbitration
// honest: the shared hot region forces overlapping writes, which the
// IOhost-side scheduler serializes (deferred > 0 at depth).
func TestMQScalingExercisesConflicts(t *testing.T) {
	o := runMQCell(true, 8, 4, 4)
	if o.deferred == 0 {
		t.Fatalf("QD=8 NQ=4 reported no deferred conflicts; the hot-region writes must collide")
	}
}

// mqscaling output must be byte-identical at any shard worker count — the
// cells share no state, whatever order they run in.
func TestMQScalingDeterministicAcrossShardWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	serial := Format(Get("mqscaling")(true))
	for _, workers := range []int{1, 2, 4, 8} {
		got := RunParallel([]string{"mqscaling"}, true, workers)
		if len(got) != 1 {
			t.Fatalf("workers=%d: got %d results, want 1", workers, len(got))
		}
		if s := Format(got[0]); s != serial {
			t.Fatalf("workers=%d: output differs from serial\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, s)
		}
	}
}
