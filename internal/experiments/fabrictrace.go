package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/ethernet"
	"vrio/internal/rack"
	"vrio/internal/sim"
	"vrio/internal/trace"
	"vrio/internal/workload"
)

func init() {
	register("fabrictrace", fabricTracePlan)
}

// FabricTraceResult is one traced fabric run's exported observability
// artifacts plus the programmatic views the experiment (and tests) inspect.
type FabricTraceResult struct {
	// Spans is the merged cross-shard span export (JSONL, one span per line,
	// ordered by (start, shard, id)).
	Spans []byte
	// Metrics is the fabric-wide rollup snapshot stream (JSONL, one object
	// per sampling tick holding every rack's metrics plus the spine's).
	Metrics []byte
	// Anomalies is the merged flight-recorder dump stream (JSONL).
	Anomalies []byte
	// Summary is the vrio-top style plain-text rollup table.
	Summary string

	// NumSpans counts merged spans across all shards.
	NumSpans int
	// Hops is the probe request's assembled flow: a guest on rack 0 sends one
	// frame to a guest on rack 1 that no station drives, so the flow's first
	// hops are exactly the request's path — guest ring, egress IOhyp worker,
	// ToR uplink, spine downlink, remote IOhyp worker, completion.
	Hops []trace.FlowHop
	// Dumps is the rollup's anomaly dump list (what Anomalies serializes).
	Dumps []trace.FlightDump
}

// FabricTraceRun executes a short traced spine-leaf fabric run — cross-rack
// RR load plus one guest-to-guest probe — with the datacenter rollup
// sampling every interval, and exports the merged artifacts. Deterministic:
// the same seed and racks produce byte-identical Spans/Metrics/Anomalies at
// any worker count.
func FabricTraceRun(seed uint64, interval sim.Time, racks, workers int) (FabricTraceResult, error) {
	return fabricTraceRun(seed, interval, sim.Millisecond, 4*sim.Millisecond, racks, workers, -1)
}

// fabricTraceRun is the parameterized body: failRack >= 0 kills that rack's
// every IOhost mid-run (the flight-recorder cell's anomaly source).
func fabricTraceRun(seed uint64, interval, warm, dur sim.Time, racks, workers, failRack int) (FabricTraceResult, error) {
	if racks < 2 {
		racks = 4
	}
	if workers <= 0 {
		workers = 1
	}
	f, err := cluster.BuildFabric(cluster.FabricSpec{
		Rack: cluster.Spec{
			Model: core.ModelVRIO, VMHosts: 1, VMsPerHost: 2,
			StationPerVM: true, Trace: true, Seed: seed,
		},
		NumRacks:         racks,
		Oversubscription: 4,
	})
	if err != nil {
		return FabricTraceResult{}, err
	}
	defer f.Close()

	dc := rack.NewDatacenter(f, rack.Config{})
	ru := rack.NewRollup(dc, rack.RollupConfig{Interval: interval})

	// Cross-rack RR load, as fabricscaling drives it — except rack 1's guest 0,
	// the probe target, gets no station driver so its flow key carries only the
	// probe's traffic.
	probeSrc := f.Racks[0].Guests[0]
	probeDst := f.Racks[1].Guests[0]
	perRack := make([][]cluster.Measurable, racks)
	for r := 0; r < racks; r++ {
		server := f.Racks[(r+1)%racks]
		for g, guest := range server.Guests {
			workload.InstallRRServer(guest, server.P.NetperfRRProcessCost)
			if guest == probeDst {
				continue
			}
			rr := workload.NewRR(f.Racks[r].StationFor(g), guest.MAC(), 16)
			rr.Start()
			perRack[r] = append(perRack[r], &rr.Results)
			ru.ObserveLatency(r, true, &rr.Results.Latency)
		}
	}
	// The probe: one guest-to-guest frame across the spine at measurement
	// start. probeDst's RR server echoes it back, and probeSrc's echoes that,
	// so the pair ping-pongs for the rest of the run — every request leg
	// carries flow Key48(probeDst F-MAC) through all six hops.
	f.Racks[0].Eng.At(warm, func() {
		probeSrc.SendNet(ethernet.Frame{
			Dst:       probeDst.MAC(),
			EtherType: ethernet.EtherTypePlain,
			Payload:   make([]byte, 64),
		})
	})
	if failRack >= 0 {
		tb := f.Racks[failRack]
		tb.Eng.At(warm, func() {
			for _, h := range tb.IOHyps {
				h.Fail()
			}
		})
	}

	dc.Start()
	ru.Start()
	f.RunMeasured(warm, dur, workers, perRack)
	ru.Stop()
	dc.Stop()

	res := FabricTraceResult{Summary: ru.Summary(), Dumps: ru.Anomalies()}
	merged := trace.Merge(f.Tracers())
	res.NumSpans = len(merged)
	res.Hops = trace.AssembleFlow(merged, trace.Key48(probeDst.MAC()))
	var buf bytes.Buffer
	if err := f.WriteSpans(&buf); err != nil {
		return res, fmt.Errorf("span export: %w", err)
	}
	res.Spans = append([]byte{}, buf.Bytes()...)
	buf.Reset()
	if err := ru.WriteMetricsJSONL(&buf); err != nil {
		return res, fmt.Errorf("metrics export: %w", err)
	}
	res.Metrics = append([]byte{}, buf.Bytes()...)
	buf.Reset()
	if err := ru.WriteAnomaliesJSONL(&buf); err != nil {
		return res, fmt.Errorf("anomaly export: %w", err)
	}
	res.Anomalies = append([]byte{}, buf.Bytes()...)
	return res, nil
}

// requestHops cuts the probe flow down to the request's first leg: the hops
// from the first guest_ring span up to (and including) the first completion.
// The flow ping-pongs for the whole run; the first leg is the walkthrough.
func requestHops(hops []trace.FlowHop) []trace.FlowHop {
	start := -1
	for i, h := range hops {
		if h.Cat == trace.CatGuestRing {
			start = i
			break
		}
	}
	if start < 0 {
		return nil
	}
	for i := start; i < len(hops); i++ {
		if hops[i].Cat == trace.CatCompletion {
			return hops[start : i+1]
		}
	}
	return hops[start:]
}

// fabricTracePlan regenerates the observability walkthrough: a worker-count
// equivalence check over the exported artifacts, the probe request's
// hop-by-hop latency attribution, and the flight-recorder anomaly path.
func fabricTracePlan(quick bool) Plan {
	warm, dur := durations(quick, sim.Millisecond, 4*sim.Millisecond)
	const seed = 42
	interval := sim.Millisecond

	type eqOut struct {
		spans     int
		identical string
	}
	type hopOut struct{ hops []trace.FlowHop }
	type flightOut struct{ dumps []trace.FlightDump }

	var cells []Cell
	// Cell 0: the exported spans and merged metrics stream must be
	// byte-identical between serial and multi-worker execution.
	cells = append(cells, func() any {
		serial, err := fabricTraceRun(seed, interval, warm, dur, 4, 1, -1)
		if err != nil {
			panic(err)
		}
		sharded, err := fabricTraceRun(seed, interval, warm, dur, 4, fabricWorkers(), -1)
		if err != nil {
			panic(err)
		}
		o := eqOut{spans: serial.NumSpans, identical: "yes"}
		if !bytes.Equal(serial.Spans, sharded.Spans) ||
			!bytes.Equal(serial.Metrics, sharded.Metrics) ||
			!bytes.Equal(serial.Anomalies, sharded.Anomalies) {
			o.identical = "DIVERGED"
		}
		return o
	})
	// Cell 1: per-hop attribution of the probe request.
	cells = append(cells, func() any {
		res, err := fabricTraceRun(seed, interval, warm, dur, 4, fabricWorkers(), -1)
		if err != nil {
			panic(err)
		}
		return hopOut{hops: requestHops(res.Hops)}
	})
	// Cell 2: kill rack 1's IOhosts at measurement start; the rollup must
	// trip and dump that shard's flight recorder. Fixed durations even in
	// quick mode — the detector needs MissThreshold heartbeat periods plus a
	// rollup tick to observe the dark rack.
	cells = append(cells, func() any {
		res, err := fabricTraceRun(seed, interval, sim.Millisecond, 6*sim.Millisecond, 4, fabricWorkers(), 1)
		if err != nil {
			panic(err)
		}
		return flightOut{dumps: res.Dumps}
	})

	return Plan{
		Cells: cells,
		Assemble: func(out []any) Result {
			next := cursor(out)
			res := Result{
				ID:     "fabrictrace",
				Title:  "Fabric observability: cross-shard flow tracing, rollup equivalence, and the flight recorder",
				Header: []string{"cell", "detail", "value"},
			}
			eq := next().(eqOut)
			res.Rows = append(res.Rows, []string{
				"equivalence", "span+metrics+anomaly exports, serial vs sharded", eq.identical,
			})
			res.Rows = append(res.Rows, []string{
				"equivalence", "merged spans", fmt.Sprintf("%d", eq.spans),
			})
			ho := next().(hopOut)
			for i, h := range ho.hops {
				res.Rows = append(res.Rows, []string{
					fmt.Sprintf("hop %d", i),
					fmt.Sprintf("%s %s (shard %d)", h.Cat, h.Name, h.Shard),
					f1(float64(h.End-h.Start) / 1e3),
				})
			}
			if n := len(ho.hops); n > 0 {
				res.Rows = append(res.Rows, []string{
					"flow", "probe request, guest ring to completion",
					f1(float64(ho.hops[n-1].End-ho.hops[0].Start) / 1e3),
				})
			}
			fl := next().(flightOut)
			var triggers []string
			for _, d := range fl.dumps {
				triggers = append(triggers, d.Trigger)
			}
			res.Rows = append(res.Rows, []string{
				"flight", "anomaly dumps after killing rack 1's IOhosts",
				fmt.Sprintf("%d (%s)", len(fl.dumps), strings.Join(triggers, ", ")),
			})
			res.Notes = append(res.Notes,
				"hop/flow rows report span durations in µs; the probe is one guest-to-guest frame whose destination no station drives, so its flow key isolates the request's path.",
				"The spine downlink hop ends at delivery into the remote ToR; the remote IOhyp worker and completion spans pick up from there.",
				"Equivalence compares the three exported artifacts byte for byte between workers=1 and one worker per core.",
			)
			return res
		},
	}
}
