package experiments

import (
	"runtime"
	"sync"
)

// RunAllParallel executes every experiment with cells fanned out across a
// bounded worker pool, and returns Results byte-identical to RunAll's, in
// the same registration order. workers <= 0 means GOMAXPROCS.
func RunAllParallel(quick bool, workers int) []Result {
	return RunParallel(IDs(), quick, workers)
}

// RunParallel executes the named experiments (unknown ids are skipped),
// scheduling the independent cells of ALL of them onto one shared pool of
// workers. Each cell owns a private Testbed and engine, so cells never
// share mutable state; determinism is per cell, which makes the combined
// output independent of scheduling order. Results are assembled in the
// order ids were given.
func RunParallel(ids []string, quick bool, workers int) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Plan every experiment up front so the pool sees one flat job list:
	// cells from cheap and expensive experiments interleave, keeping
	// workers busy through the tail of the schedule.
	type job struct{ exp, cell int }
	var plans []Plan
	var outs [][]any
	var jobs []job
	var kept []int // index into plans per requested id, -1 if unknown
	for _, id := range ids {
		planner := registry[id]
		if planner == nil {
			kept = append(kept, -1)
			continue
		}
		p := planner(quick)
		e := len(plans)
		plans = append(plans, p)
		outs = append(outs, make([]any, len(p.Cells)))
		for c := range p.Cells {
			jobs = append(jobs, job{e, c})
		}
		kept = append(kept, e)
	}

	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				outs[j.exp][j.cell] = plans[j.exp].Cells[j.cell]()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	var res []Result
	for _, e := range kept {
		if e < 0 {
			continue
		}
		res = append(res, plans[e].Assemble(outs[e]))
	}
	return res
}
