package experiments

import (
	"testing"
)

// TestFabricScalingDeterministicQuick: the fabric study must be
// byte-reproducible run-to-run (its rows carry no wall-clock quantities),
// and the serial-vs-sharded equivalence cell must report identical output.
func TestFabricScalingDeterministicQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ra := Get("fabricscaling")(true)
	rb := Get("fabricscaling")(true)
	a, b := Format(ra), Format(rb)
	if a != b {
		t.Errorf("fabricscaling output differs between identical runs:\n%s\n---\n%s", a, b)
	}
	// The equivalence cell is the last column of row 0.
	if got := ra.Rows[0][len(ra.Rows[0])-1]; got != "yes" {
		t.Errorf("serial-vs-sharded equivalence = %q, want \"yes\":\n%s", got, a)
	}
	// Cross-rack traffic must actually flow and cross shards in every cell.
	for i, row := range ra.Rows {
		if row[7] == "0" {
			t.Errorf("row %d (%s): zero cross-shard messages", i, row[0])
		}
	}
}
