package experiments

import (
	"testing"
)

// RunParallel must preserve requested order, skip unknown ids, and tolerate
// more workers than cells. The cost experiments make this fast.
func TestRunParallelOrderAndUnknownIDs(t *testing.T) {
	got := RunParallel([]string{"table1", "nope", "fig1"}, true, 16)
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	if got[0].ID != "table1" || got[1].ID != "fig1" {
		t.Errorf("result order = %s, %s; want table1, fig1", got[0].ID, got[1].ID)
	}
}

// Every experiment's cells must be genuinely independent: running them on 8
// goroutines in arbitrary order must produce byte-identical formatted
// Results to the serial run, for every experiment id. This is the
// regression gate for any future cell that sneaks in shared mutable state.
func TestParallelMatchesSerialByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	serial := RunAll(true)
	parallel := RunAllParallel(true, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("serial produced %d results, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].ID != parallel[i].ID {
			t.Fatalf("result %d: serial id %q, parallel id %q", i, serial[i].ID, parallel[i].ID)
		}
		s, p := Format(serial[i]), Format(parallel[i])
		if s != p {
			t.Errorf("experiment %s: parallel output differs from serial\n--- serial ---\n%s--- parallel ---\n%s",
				serial[i].ID, s, p)
		}
	}
}
