package experiments

import (
	"testing"
)

// The acceptance bar for the distributed-volume work: an IOhost crash
// mid-run on a striped R=2 volume completes with an exactly-once ledger
// (dup=lost=0) and the rebuild engine restores full replication while the
// foreground load keeps flowing.
func TestVolRebuildRecoversExactlyOnce(t *testing.T) {
	o := runVolRebuildCell(true, 2)
	if o.dup != 0 || o.lost != 0 || o.errs != 0 {
		t.Fatalf("ledger dup=%d lost=%d errs=%d; want exactly-once with no errors",
			o.dup, o.lost, o.errs)
	}
	if !o.healthy {
		t.Fatal("volume not fully replicated after the crash + drain")
	}
	if o.rebuilt == 0 {
		t.Fatal("rebuild engine copied no extents; the crash must cost replicas")
	}
	if o.detectUs < 0 {
		t.Fatal("heartbeat detector never declared the crashed IOhost dead")
	}
	if o.rebuildMBps <= 0 {
		t.Fatalf("rebuild bandwidth %.1f MB/s; want > 0", o.rebuildMBps)
	}
	if o.kops <= 0 {
		t.Fatal("no foreground throughput")
	}
}

// Quorum write latency must grow with the replication factor: every added
// replica is another ack the write waits for (majority quorum), so the
// R=1 → R=2 → R=3 p99 sequence must be monotone.
func TestVolQuorumLatencyGrowsWithReplication(t *testing.T) {
	prev := 0.0
	for _, r := range []int{1, 2, 3} {
		o := runVolQuorumCell(true, r)
		if o.dup != 0 || o.lost != 0 || o.errs != 0 {
			t.Fatalf("R=%d: ledger dup=%d lost=%d errs=%d", r, o.dup, o.lost, o.errs)
		}
		if o.p99 <= prev {
			t.Fatalf("R=%d: p99 %.1fµs not above R=%d's %.1fµs — quorum cost must grow",
				r, o.p99, r-1, prev)
		}
		prev = o.p99
	}
}

// volrebuild output must be byte-identical at any shard worker count — the
// cells share no state, whatever order they run in.
func TestVolRebuildDeterministicAcrossShardWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	serial := Format(Get("volrebuild")(true))
	for _, workers := range []int{1, 2, 4, 8} {
		got := RunParallel([]string{"volrebuild"}, true, workers)
		if len(got) != 1 {
			t.Fatalf("workers=%d: got %d results, want 1", workers, len(got))
		}
		if s := Format(got[0]); s != serial {
			t.Fatalf("workers=%d: output differs from serial\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, s)
		}
	}
}
