package experiments

import (
	"fmt"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

// mqscaling measures the multi-queue block path: NVMe-style queue pairs from
// the guest ring to pinned IOhost workers. The sweep crosses per-queue depth
// (QD), queue count (NQ), and IOhost sidecore workers; every cell runs the
// MQBlock closed loop on each guest and audits its exactly-once ledger. The
// single-queue single-depth cell is the pre-multi-queue baseline (it is
// byte-identical on the wire), so the speedup column is exactly what the
// queue-pair work buys at each worker count.
func init() { register("mqscaling", mqscalingPlan) }

var (
	mqQDs     = []int{1, 4, 8, 16}
	mqNQs     = []int{1, 2, 4}
	mqWorkers = []int{1, 4}
)

// mqOut is one cell's measurements.
type mqOut struct {
	qd, nq, workers int
	kiops           float64
	issued, done    uint64
	dup, lost, errs uint64
	deferred        uint64
	inflightLeft    int
	affinity        string
}

// runMQCell runs one (QD, NQ, workers) point: two guests on one VMhost,
// closed-loop 4 KiB writes for the measured window, then a drain to
// quiescence so the ledger audit sees every completion.
func runMQCell(quick bool, qd, nq, workers int) mqOut {
	_, dur := durations(quick, 0, 20*sim.Millisecond)
	tb := cluster.Build(cluster.Spec{
		Model:           core.ModelVRIO,
		VMsPerHost:      2,
		WithBlock:       true,
		BlkQueues:       nq,
		IOhostSidecores: workers,
		NoJitter:        true, // finite event horizon: the drain runs to empty
		Seed:            911,
	})
	var loads []*workload.MQBlock
	for _, g := range tb.Guests {
		m := workload.NewMQBlock(tb.Eng, g, nq, qd, 4096)
		m.Results.StartMeasuring()
		m.Start()
		loads = append(loads, m)
	}
	var doneAtStop uint64
	tb.Eng.At(dur, func() {
		for _, m := range loads {
			m.Stop()
			doneAtStop += m.Done()
		}
	})
	tb.Eng.RunUntil(dur)
	tb.Eng.Run() // drain: closed loops are stopped, so the event set empties

	out := mqOut{qd: qd, nq: nq, workers: workers}
	out.kiops = float64(doneAtStop) / dur.Seconds() / 1e3
	for _, m := range loads {
		dup, lost := m.Ledger()
		out.dup += dup
		out.lost += lost
		out.errs += m.Errs
		out.issued += m.Issued()
		out.done += m.Done()
	}
	for _, s := range tb.BlockSchedulers {
		out.deferred += s.Deferred
	}
	for _, h := range tb.IOHyps {
		out.inflightLeft += h.BlkInFlight()
	}
	// Queue→worker affinity of guest 0's device, as registered.
	if nq > 1 {
		c := tb.VRIOClients[0]
		hyp := tb.IOHyps[tb.ClientIOhost[0]]
		aff := ""
		for q := 0; q < nq; q++ {
			if q > 0 {
				aff += " "
			}
			aff += fmt.Sprintf("%d:%d", q, hyp.BlkQueueWorker(c.TransportMAC(), c.BlkDeviceID(), q))
		}
		out.affinity = aff
	} else {
		out.affinity = "dynamic"
	}
	return out
}

func mqscalingPlan(quick bool) Plan {
	var cells []Cell
	for _, w := range mqWorkers {
		for _, nq := range mqNQs {
			for _, qd := range mqQDs {
				w, nq, qd := w, nq, qd
				cells = append(cells, func() any { return runMQCell(quick, qd, nq, w) })
			}
		}
	}
	return Plan{
		Cells: cells,
		Assemble: func(out []any) Result {
			next := cursor(out)
			res := Result{
				ID:    "mqscaling",
				Title: "Multi-queue block I/O: QD x NQ x IOhost workers, closed-loop 4 KiB writes",
				Header: []string{"workers", "NQ", "QD", "kIOPS", "speedup",
					"deferred", "dup", "lost", "errs", "q-affinity"},
			}
			for range mqWorkers {
				base := 0.0
				for range mqNQs {
					for range mqQDs {
						o := next().(mqOut)
						if o.nq == 1 && o.qd == 1 {
							base = o.kiops
						}
						speedup := 0.0
						if base > 0 {
							speedup = o.kiops / base
						}
						res.Rows = append(res.Rows, []string{
							fmt.Sprintf("%d", o.workers),
							fmt.Sprintf("%d", o.nq),
							fmt.Sprintf("%d", o.qd),
							f1(o.kiops),
							f2(speedup) + "x",
							fmt.Sprintf("%d", o.deferred),
							fmt.Sprintf("%d", o.dup),
							fmt.Sprintf("%d", o.lost),
							fmt.Sprintf("%d", o.errs),
							o.affinity,
						})
					}
				}
			}
			res.Notes = append(res.Notes,
				"speedup is vs the QD=1/NQ=1 cell at the same worker count (the pre-multi-queue baseline)",
				"queue pairs pin to workers round-robin at registration and never migrate (passthrough affinity)",
				"deferred counts cross-queue range conflicts the IOhost scheduler serialized",
			)
			return res
		},
	}
}
