package experiments

import (
	"bytes"
	"strings"
	"testing"

	"vrio/internal/sim"
	"vrio/internal/trace"
)

// testFabricTrace runs the fabrictrace scenario with short test durations.
func testFabricTrace(t *testing.T, workers, failRack int) FabricTraceResult {
	t.Helper()
	res, err := fabricTraceRun(7, sim.Millisecond/2, sim.Millisecond, 3*sim.Millisecond, 4, workers, failRack)
	if err != nil {
		t.Fatalf("fabricTraceRun: %v", err)
	}
	return res
}

// TestFabricTraceByteIdenticalAcrossWorkers is the observability sibling of
// cluster's TestFabricShardedMatchesSerialByteIdentical: the merged span
// export, the rollup metrics stream, and the anomaly dump stream must be
// byte-identical no matter how many workers execute the shards.
func TestFabricTraceByteIdenticalAcrossWorkers(t *testing.T) {
	serial := testFabricTrace(t, 1, -1)
	if len(serial.Spans) == 0 {
		t.Fatal("serial run exported no spans")
	}
	if len(serial.Metrics) == 0 {
		t.Fatal("serial run exported no metrics rows")
	}
	for _, w := range []int{2, 4, 8} {
		sharded := testFabricTrace(t, w, -1)
		if !bytes.Equal(serial.Spans, sharded.Spans) {
			t.Errorf("span export diverged between workers=1 and workers=%d", w)
		}
		if !bytes.Equal(serial.Metrics, sharded.Metrics) {
			t.Errorf("metrics stream diverged between workers=1 and workers=%d", w)
		}
		if !bytes.Equal(serial.Anomalies, sharded.Anomalies) {
			t.Errorf("anomaly stream diverged between workers=1 and workers=%d", w)
		}
	}
}

// TestFabricTraceProbeCoversEveryHop pins the acceptance criterion: one
// cross-rack request yields a merged flow whose first leg walks guest ring →
// egress IOhyp worker → ToR uplink → spine downlink (delivery into the
// remote ToR) → remote IOhyp worker → completion, in time order.
func TestFabricTraceProbeCoversEveryHop(t *testing.T) {
	res := testFabricTrace(t, 2, -1)
	leg := requestHops(res.Hops)
	want := []struct {
		cat  trace.Category
		name string
	}{
		{trace.CatGuestRing, "net-tx"},
		{trace.CatWorker, "net-tx"},
		{trace.CatFabric, "tor0-"},
		{trace.CatFabric, "-tor1"},
		{trace.CatWorker, "net-in"},
		{trace.CatCompletion, "net-rx"},
	}
	if len(leg) != len(want) {
		t.Fatalf("probe request leg has %d hops, want %d: %+v", len(leg), len(want), leg)
	}
	for i, w := range want {
		h := leg[i]
		if h.Cat != w.cat || !strings.Contains(h.Name, w.name) {
			t.Errorf("hop %d = %s %q, want cat %s name containing %q", i, h.Cat, h.Name, w.cat, w.name)
		}
		if i > 0 && h.Start < leg[i-1].Start {
			t.Errorf("hop %d starts at %v, before hop %d at %v", i, h.Start, i-1, leg[i-1].Start)
		}
	}
	// The request's spans come from both sides of the fabric: the sender's
	// shard (0), the spine shard, and the receiver's shard (1).
	shards := map[int]bool{}
	for _, h := range leg {
		shards[h.Shard] = true
	}
	if len(shards) < 3 {
		t.Errorf("probe leg spans %d shards, want >= 3 (sender, spine, receiver)", len(shards))
	}
}

// TestFabricTraceFlightDumpOnDarkRack kills a rack's IOhosts mid-run and
// expects the rollup to dump that shard's flight recorder for both the
// heartbeat-miss and dark-rack triggers, with the controller's detect and
// rack_dark events visible in the dumped ring.
func TestFabricTraceFlightDumpOnDarkRack(t *testing.T) {
	res := testFabricTrace(t, 2, 1)
	if len(res.Dumps) == 0 {
		t.Fatal("no anomaly dumps after killing rack 1's IOhosts")
	}
	triggers := map[string]bool{}
	for _, d := range res.Dumps {
		if d.Shard != 1 {
			t.Errorf("dump for trigger %q on shard %d, want shard 1", d.Trigger, d.Shard)
		}
		triggers[d.Trigger] = true
	}
	for _, want := range []string{"hb_miss", "dark_rack"} {
		if !triggers[want] {
			t.Errorf("missing %q dump; got %v", want, triggers)
		}
	}
	var sawRackDark bool
	for _, d := range res.Dumps {
		for _, e := range d.Entries {
			if e.Kind == "rack_event" && e.Name == "rack_dark" {
				sawRackDark = true
			}
		}
	}
	if !sawRackDark {
		t.Error("no rack_dark control-plane event in any dumped flight ring")
	}
}
