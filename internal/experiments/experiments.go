// Package experiments regenerates every table and figure of the paper's
// evaluation (§3 and §5). Each experiment is a named Runner producing a
// printable Result; cmd/vrio-experiments and the repository's benchmark
// harness both drive this registry.
package experiments

import (
	"fmt"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/stats"
	"vrio/internal/workload"
)

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Runner produces a Result. quick trades precision for speed (used by unit
// tests and -quick runs); full runs use the durations EXPERIMENTS.md
// reports.
type Runner func(quick bool) Result

// Cell is one independent simulation unit of an experiment: it builds its
// own Testbed (and therefore its own sim.Engine and RNGs) internally,
// shares no mutable state with any other cell, and returns a value for the
// experiment's Assemble step. Cells of all experiments may execute
// concurrently; each cell is internally single-threaded and deterministic.
type Cell func() any

// Plan is an experiment decomposed for the scheduler: a list of
// independent Cells plus an Assemble step that folds their outputs —
// indexed in declaration order — into the final Result. Assemble must be
// pure: row ordering and relative-percentage baselines are computed there,
// never from cell execution order.
type Plan struct {
	Cells    []Cell
	Assemble func(out []any) Result
}

// Planner builds a Plan for one quick/full configuration.
type Planner func(quick bool) Plan

var registry = map[string]Planner{}
var order []string

func register(id string, p Planner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = p
	order = append(order, id)
}

// single adapts a classic Runner — an experiment that is one indivisible
// simulation or pure computation — into a one-cell Plan.
func single(r Runner) Planner {
	return func(quick bool) Plan {
		return Plan{
			Cells:    []Cell{func() any { return r(quick) }},
			Assemble: func(out []any) Result { return out[0].(Result) },
		}
	}
}

// runPlan executes a plan's cells serially, in declaration order.
func runPlan(p Plan) Result {
	out := make([]any, len(p.Cells))
	for i, c := range p.Cells {
		out[i] = c()
	}
	return p.Assemble(out)
}

// cursor yields successive cell outputs, letting Assemble mirror the loop
// structure that declared the cells instead of doing index arithmetic.
func cursor(out []any) func() any {
	i := 0
	return func() any {
		v := out[i]
		i++
		return v
	}
}

// IDs lists experiment ids in registration (paper) order.
func IDs() []string {
	out := append([]string{}, order...)
	return out
}

// Get returns a serial runner for id, or nil.
func Get(id string) Runner {
	p := registry[id]
	if p == nil {
		return nil
	}
	return func(quick bool) Result { return runPlan(p(quick)) }
}

// RunAll executes every experiment serially.
func RunAll(quick bool) []Result {
	var out []Result
	for _, id := range IDs() {
		out = append(out, runPlan(registry[id](quick)))
	}
	return out
}

// Format renders a Result as an aligned text table.
func Format(r Result) string {
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			if i < len(widths) {
				s += fmt.Sprintf("%-*s  ", widths[i], c)
			} else {
				s += c + "  "
			}
		}
		return s + "\n"
	}
	out += line(r.Header)
	for _, row := range r.Rows {
		out += line(row)
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// --- shared helpers ---

// durations returns (warmup, measure) scaled for quick mode.
func durations(quick bool, warmup, measure sim.Time) (sim.Time, sim.Time) {
	if quick {
		return warmup / 4, measure / 5
	}
	return warmup, measure
}

// netModels is the Figure 7/9/12 model set, in plot order.
var netModels = []core.ModelName{
	core.ModelOptimum, core.ModelVRIO, core.ModelElvis, core.ModelBaseline,
}

// fig5Models adds the no-poll ablation (Figure 5's set).
var fig5Models = []core.ModelName{
	core.ModelOptimum, core.ModelVRIO, core.ModelElvis,
	core.ModelVRIONoPoll, core.ModelBaseline,
}

// rrRun runs Netperf RR on every guest of a testbed and returns the RR
// instances after the measured window.
func rrRun(tb *cluster.Testbed, warmup, dur sim.Time) []*workload.RR {
	var rrs []*workload.RR
	var collectors []cluster.Measurable
	for i, g := range tb.Guests {
		workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
		rr := workload.NewRR(tb.StationFor(i), g.MAC(), 16)
		rr.Start()
		rrs = append(rrs, rr)
		collectors = append(collectors, &rr.Results)
	}
	tb.RunMeasured(warmup, dur, collectors...)
	return rrs
}

// meanLatencyMicros aggregates the ops-weighted mean latency in µs.
func meanLatencyMicros(rrs []*workload.RR) float64 {
	var weighted float64
	var ops uint64
	for _, rr := range rrs {
		weighted += rr.Results.Latency.Mean() * float64(rr.Results.Ops)
		ops += rr.Results.Ops
	}
	if ops == 0 {
		return 0
	}
	return weighted / float64(ops) / 1000
}

// latencyPercentilesMicros merges every RR's latency histogram and reads
// p50/p95/p99 in µs. Merging into a scratch histogram leaves the per-RR
// results untouched.
func latencyPercentilesMicros(rrs []*workload.RR) [3]float64 {
	var merged stats.Histogram
	for _, rr := range rrs {
		merged.Merge(&rr.Results.Latency)
	}
	var out [3]float64
	for i, p := range []float64{50, 95, 99} {
		out[i] = float64(merged.Percentile(p)) / 1000
	}
	return out
}

// totalOps sums completed transactions.
func totalOps(rrs []*workload.RR) uint64 {
	var ops uint64
	for _, rr := range rrs {
		ops += rr.Results.Ops
	}
	return ops
}

// streamRun runs Netperf stream from every guest and returns the instances.
func streamRun(tb *cluster.Testbed, warmup, dur sim.Time) []*workload.Stream {
	var sts []*workload.Stream
	var collectors []cluster.Measurable
	for i, g := range tb.Guests {
		st := workload.NewStream(g, tb.StationFor(i), tb.P.StreamChunk, tb.P.StreamPerChunkCost, 16)
		st.Start()
		sts = append(sts, st)
		collectors = append(collectors, &st.Results)
	}
	tb.RunMeasured(warmup, dur, collectors...)
	return sts
}

// aggGbps sums stream throughput in Gbps over the measured window.
func aggGbps(sts []*workload.Stream, dur sim.Time) float64 {
	var total float64
	for _, st := range sts {
		total += st.Results.Throughput(dur)
	}
	return total / 1e9
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%+.0f%%", v*100) }
