package experiments

import (
	"fmt"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

func init() {
	register("ablation-mtu", ablationMTUPlan)
	register("ablation-rxring", ablationRxRingPlan)
	register("ablation-retransmit", ablationRetransmitPlan)
	register("ablation-steering", single(ablationSteering))
}

// ablationMTUPlan sweeps the vRIO channel MTU, demonstrating §4.4's choice
// of 8100: 9000 breaks the 17-page zero-copy budget and pays copies; 1500
// multiplies fragment counts. One cell per MTU.
func ablationMTUPlan(quick bool) Plan {
	warm, dur := durations(quick, 4*sim.Millisecond, 50*sim.Millisecond)
	var cells []Cell
	for _, mtu := range []int{1500, 4000, 8100, 9000} {
		mtu := mtu
		cells = append(cells, func() any {
			p := params.Default()
			p.MTU = mtu
			tb := cluster.Build(cluster.Spec{Model: core.ModelVRIO, VMsPerHost: 4, Params: &p, Seed: 301})
			sts := streamRun(tb, warm, dur)
			return []string{
				fmt.Sprintf("%d", mtu),
				f2(aggGbps(sts, dur)),
				fmt.Sprintf("%d", tb.IOHyp.Counters.Get("copy_bytes")),
			}
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "ablation-mtu",
			Title:  "vRIO channel MTU ablation (stream, 4 VMs)",
			Header: []string{"MTU", "Gbps", "copied bytes at IOhost"},
		}
		for _, o := range outs {
			res.Rows = append(res.Rows, o.([]string))
		}
		res.Notes = append(res.Notes,
			"§4.4: MTU 8100 keeps 64KiB messages within 17 pages (zero copy); 9000 forces copies; small MTUs cost fragments")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// ablationRxRingPlan reproduces §4.5's fix: a small IOhost rx ring drops
// frames under bursty stream traffic; the paper's move from 512 to 4096
// eliminated in-the-wild loss. One cell per ring size.
func ablationRxRingPlan(quick bool) Plan {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	var cells []Cell
	for _, ring := range []int{64, 128, 512, 4096} {
		ring := ring
		cells = append(cells, func() any {
			p := params.Default()
			p.RxRingSize = ring
			tb := cluster.Build(cluster.Spec{
				Model: core.ModelVRIO, VMsPerHost: 6, Params: &p, Seed: 311,
			})
			sts := streamRun(tb, warm, dur)
			return []string{
				fmt.Sprintf("%d", ring),
				fmt.Sprintf("%d", tb.IOHyp.ChannelDrops()),
				f2(aggGbps(sts, dur)),
			}
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "ablation-rxring",
			Title:  "IOhost rx ring size under bursty stream load (vRIO, 6 VMs)",
			Header: []string{"ring", "frames dropped", "Gbps"},
		}
		for _, o := range outs {
			res.Rows = append(res.Rows, o.([]string))
		}
		res.Notes = append(res.Notes,
			"§4.5: the paper saw in-the-wild loss with a 512 ring; 4096 eliminated it")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// ablationRetransmitPlan sweeps the initial block retransmission timeout
// under a tiny rx ring shared with bursty stream traffic, so block requests
// genuinely get lost and the §4.5 machinery decides recovery speed. One
// cell per timeout.
func ablationRetransmitPlan(quick bool) Plan {
	warm, dur := durations(quick, 4*sim.Millisecond, 80*sim.Millisecond)
	var cells []Cell
	for _, to := range []sim.Time{2 * sim.Millisecond, 10 * sim.Millisecond, 80 * sim.Millisecond} {
		to := to
		cells = append(cells, func() any {
			p := params.Default()
			p.RetransmitTimeout = to
			p.RxRingSize = 32 // force loss when streams burst
			tb := cluster.Build(cluster.Spec{
				Model: core.ModelVRIO, VMsPerHost: 8,
				WithBlock: true, WithThreads: true, Params: &p, Seed: 321,
			})
			// Guests 0-5 stream (the burst source); guests 6-7 run block I/O.
			var cs []cluster.Measurable
			for i := 0; i < 6; i++ {
				st := workload.NewStream(tb.Guests[i], tb.StationFor(i), p.StreamChunk, p.StreamPerChunkCost, 16)
				st.Start()
				cs = append(cs, &st.Results)
			}
			var fbs []*workload.Filebench
			for i := 6; i < 8; i++ {
				fb := workload.NewFilebench(tb.Eng, tb.Guests[i].Threads, tb.Guests[i], workload.FilebenchConfig{
					Readers: 2, Writers: 2,
					IOSize:          p.FilebenchIOSize,
					OpCost:          p.FilebenchOpCost,
					CapacitySectors: tb.BlockDevices[i].Store().Capacity(),
					SectorSize:      p.SectorSize,
					Seed:            uint64(340 + i),
				})
				fb.Start()
				fbs = append(fbs, fb)
				cs = append(cs, &fb.Results)
			}
			tb.RunMeasured(warm, dur, cs...)
			var retr, errs uint64
			for _, cl := range tb.VRIOClients {
				retr += cl.Driver.Counters.Get("retransmits")
				errs += cl.Driver.Counters.Get("device_errors")
			}
			var ops float64
			for _, fb := range fbs {
				ops += fb.Results.OpsPerSec(dur)
			}
			return []string{
				to.String(),
				fmt.Sprintf("%d", retr),
				fmt.Sprintf("%d", errs),
				fmt.Sprintf("%.0f", ops),
			}
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "ablation-retransmit",
			Title:  "Block retransmission initial timeout under induced loss (vRIO)",
			Header: []string{"timeout", "retransmits", "device errors", "block ops/sec"},
		}
		for _, o := range outs {
			res.Rows = append(res.Rows, o.([]string))
		}
		res.Notes = append(res.Notes,
			"shorter timeouts recover lost block requests faster; the paper uses 10ms doubling")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// ablationSteering compares the §4.1 per-device steering policy's ordering
// guarantee cost against raw least-loaded dispatch by measuring worker
// balance under a many-device block load.
func ablationSteering(quick bool) Result {
	warm, dur := durations(quick, 4*sim.Millisecond, 40*sim.Millisecond)
	res := Result{
		ID:     "ablation-steering",
		Title:  "IOhost worker balance under steering (vRIO, 8 VMs, 4 sidecores)",
		Header: []string{"metric", "value"},
	}
	p := params.Default()
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMsPerHost: 8, IOhostSidecores: 4,
		WithBlock: true, WithThreads: true, Params: &p, Seed: 331,
	})
	ops := filebenchOn(tb, 2, 2, warm, dur)
	var minP, maxP uint64
	for i, w := range tb.IOHyp.Workers() {
		n := w.Processed
		if i == 0 || n < minP {
			minP = n
		}
		if n > maxP {
			maxP = n
		}
	}
	imbalance := 0.0
	if maxP > 0 {
		imbalance = 1 - float64(minP)/float64(maxP)
	}
	res.Rows = append(res.Rows,
		[]string{"aggregate ops/sec", fmt.Sprintf("%.0f", ops)},
		[]string{"busiest worker msgs", fmt.Sprintf("%d", maxP)},
		[]string{"idlest worker msgs", fmt.Sprintf("%d", minP)},
		[]string{"imbalance", fmt.Sprintf("%.0f%%", imbalance*100)},
	)
	res.Notes = append(res.Notes,
		"steering holds a device on one worker only while it has pending work, so load still spreads across workers")
	return res
}
