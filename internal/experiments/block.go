package experiments

import (
	"fmt"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/cpu"
	"vrio/internal/interpose"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

func init() {
	register("fig14", fig14Plan)
	register("fig15", fig15Plan)
	register("fig16a", fig16aPlan)
	register("fig16b", fig16bPlan)
}

// blockModels is the Figure 14/16 model set (no SRIOV ramdisk exists).
var blockModels = []core.ModelName{core.ModelElvis, core.ModelVRIO, core.ModelBaseline}

// filebenchRun runs the random-I/O personality with the given thread mix on
// every guest, returning aggregate ops/sec.
func filebenchRun(m core.ModelName, n, readers, writers int, warm, dur sim.Time) float64 {
	tb := cluster.Build(cluster.Spec{
		Model: m, VMsPerHost: n, WithBlock: true, WithThreads: true, Seed: 201,
	})
	return filebenchOn(tb, readers, writers, warm, dur)
}

// filebenchOn runs the personality on an already-built testbed.
func filebenchOn(tb *cluster.Testbed, readers, writers int, warm, dur sim.Time) float64 {
	var fbs []*workload.Filebench
	var cs []cluster.Measurable
	for i, g := range tb.Guests {
		fb := workload.NewFilebench(tb.Eng, g.Threads, g, workload.FilebenchConfig{
			Readers: readers, Writers: writers,
			IOSize:          tb.P.FilebenchIOSize,
			OpCost:          tb.P.FilebenchOpCost,
			CapacitySectors: tb.BlockDevices[i].Store().Capacity(),
			SectorSize:      tb.P.SectorSize,
			Seed:            uint64(300 + i),
		})
		fb.Start()
		fbs = append(fbs, fb)
		cs = append(cs, &fb.Results)
	}
	tb.RunMeasured(warm, dur, cs...)
	var total float64
	for _, fb := range fbs {
		total += fb.Results.OpsPerSec(dur)
	}
	return total
}

// fig14 runs Filebench on a per-VM ramdisk with growing concurrency. One
// cell per (thread mix, N, model).
func fig14Plan(quick bool) Plan {
	warm, dur := durations(quick, 4*sim.Millisecond, 40*sim.Millisecond)
	ns := []int{1, 3, 5, 7}
	if quick {
		ns = []int{1, 2}
	}
	mixes := []struct {
		name             string
		readers, writers int
	}{
		{"1 reader", 1, 0},
		{"1 pair", 1, 1},
		{"2 pairs", 2, 2},
	}
	var cells []Cell
	for _, mix := range mixes {
		for _, n := range ns {
			for _, m := range blockModels {
				mix, n, m := mix, n, m
				cells = append(cells, func() any {
					return filebenchRun(m, n, mix.readers, mix.writers, warm, dur)
				})
			}
		}
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig14",
			Title:  "Filebench/ramdisk aggregate ops/sec vs number of VMs",
			Header: []string{"VMs", "mix", "elvis", "vrio", "baseline"},
		}
		next := cursor(outs)
		for _, mix := range mixes {
			for _, n := range ns {
				row := []string{fmt.Sprintf("%d", n), mix.name}
				for range blockModels {
					row = append(row, fmt.Sprintf("%.0f", next().(float64)))
				}
				res.Rows = append(res.Rows, row)
			}
		}
		res.Notes = append(res.Notes,
			"paper shape: 1 reader: elvis > vrio (the 2.2x latency cost), vrio scales better than baseline; with 2 pairs vRIO counterintuitively overtakes elvis (involuntary context switches)")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// webserverSetup builds the §5 "Improving Utilization" testbed: two
// VMhosts x five VMs, each with a remote/local 1GB ramdisk, running the
// Webserver personality. Returns the testbed and the workload handles.
func webserverSetup(m core.ModelName, sidecoresPerHost, iohostSidecores int, chain func(host, vm int) *interpose.Chain, activeHosts int, seed uint64) (*cluster.Testbed, []*workload.Webserver, []cluster.Measurable) {
	tb := cluster.Build(cluster.Spec{
		Model: m, VMHosts: 2, VMsPerHost: 5,
		SidecoresPerHost: sidecoresPerHost, IOhostSidecores: iohostSidecores,
		WithBlock: true, WithThreads: true, BlkChain: chain, Seed: seed,
	})
	var wss []*workload.Webserver
	var cs []cluster.Measurable
	for i, g := range tb.Guests {
		if tb.GuestHost[i] >= activeHosts {
			continue // idle host in the imbalance experiment
		}
		ws := workload.NewWebserver(tb.Eng, g.Threads, g, workload.WebserverConfig{
			Threads:         tb.P.WebserverThreads,
			Files:           tb.P.WebserverFileCount,
			MeanFileSize:    tb.P.WebserverMeanFileSize,
			ChunkSize:       tb.P.FilebenchIOSize,
			OpCost:          tb.P.WebserverOpCost,
			OpenCost:        tb.P.WebserverOpenCost,
			LogWrite:        tb.P.WebserverLogWrite,
			CapacitySectors: tb.BlockDevices[i].Store().Capacity(),
			SectorSize:      tb.P.SectorSize,
			Seed:            uint64(400 + i),
		})
		ws.Start()
		wss = append(wss, ws)
		cs = append(cs, &ws.Results)
	}
	return tb, wss, cs
}

// aggMbps sums webserver throughput in Mbps.
func aggMbps(wss []*workload.Webserver, dur sim.Time) float64 {
	var total float64
	for _, ws := range wss {
		total += ws.Results.Throughput(dur)
	}
	return total / 1e6
}

// fig15 samples sidecore utilization over the webserver run. One cell per
// configuration, each returning its table rows.
func fig15Plan(quick bool) Plan {
	warm, dur := durations(quick, 5*sim.Millisecond, 100*sim.Millisecond)
	type cfg struct {
		name  string
		model core.ModelName
		side  int
		iosc  int
	}
	cfgs := []cfg{
		{"elvis (1 sidecore/host)", core.ModelElvis, 1, 0},
		{"vrio (1 consolidated sidecore)", core.ModelVRIO, 0, 1},
	}
	var cells []Cell
	for _, c := range cfgs {
		c := c
		cells = append(cells, func() any {
			tb, _, cs := webserverSetup(c.model, c.side, c.iosc, nil, 2, 211)
			var samplers []*cpu.Sampler
			for _, sc := range tb.Sidecores {
				samplers = append(samplers, cpu.NewSampler(tb.Eng, sc, sim.Millisecond))
			}
			tb.RunMeasured(warm, dur, cs...)
			var rows [][]string
			for i, sc := range tb.Sidecores {
				elapsed := tb.Eng.Now()
				busy := float64(sc.BusyTime()) / float64(elapsed) * 100
				poll := float64(sc.Accounted(cpu.KindPoll)) / float64(elapsed) * 100
				rows = append(rows, []string{
					c.name, fmt.Sprintf("%d (samples=%d)", i, samplers[i].Series.Len()),
					f1(busy), f1(poll),
				})
			}
			return rows
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig15",
			Title:  "Sidecore CPU utilization under the Webserver personality (2 VMhosts x 5 VMs)",
			Header: []string{"config", "sidecore", "useful busy [%]", "wasted poll [%]"},
		}
		for _, o := range outs {
			res.Rows = append(res.Rows, o.([][]string)...)
		}
		res.Notes = append(res.Notes,
			"paper: the two Elvis sidecores together burn ≈150% CPU on useless polling; the consolidated vRIO sidecore is busier and wastes less")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// fig16a is the consolidation tradeoff: same workload, half the sidecores
// for vRIO. One cell per configuration; the vs-elvis baseline is computed
// at assembly.
func fig16aPlan(quick bool) Plan {
	warm, dur := durations(quick, 5*sim.Millisecond, 100*sim.Millisecond)
	type cfg struct {
		name  string
		model core.ModelName
		side  int
		iosc  int
	}
	cfgs := []cfg{
		{"elvis (2 sidecores)", core.ModelElvis, 1, 0},
		{"vrio (1 sidecore)", core.ModelVRIO, 0, 1},
		{"baseline (N+1 cores)", core.ModelBaseline, 0, 0},
	}
	var cells []Cell
	for _, c := range cfgs {
		c := c
		cells = append(cells, func() any {
			tb, wss, cs := webserverSetup(c.model, c.side, c.iosc, nil, 2, 221)
			tb.RunMeasured(warm, dur, cs...)
			return aggMbps(wss, dur)
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig16a",
			Title:  "Webserver throughput [Mbps], sidecore consolidation 2=>1",
			Header: []string{"config", "Mbps", "vs elvis"},
		}
		base := 0.0
		for i, c := range cfgs {
			mbps := outs[i].(float64)
			rel := "0%"
			if base == 0 {
				base = mbps
			} else {
				rel = pct(mbps/base - 1)
			}
			res.Rows = append(res.Rows, []string{c.name, f1(mbps), rel})
		}
		res.Notes = append(res.Notes,
			"paper: vrio -8% vs elvis with HALF the sidecores; baseline -51%")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}

// fig16b is the load-imbalance experiment: only one VMhost is active, its
// I/O interposed with AES-256; both systems get a budget of two sidecores.
func fig16bPlan(quick bool) Plan {
	warm, dur := durations(quick, 5*sim.Millisecond, 100*sim.Millisecond)
	aesChain := func(p sim.Time) func(host, vm int) *interpose.Chain {
		return func(host, vm int) *interpose.Chain {
			aes, err := interpose.NewAES([]byte("0123456789abcdef0123456789abcdef"), p)
			if err != nil {
				panic(err)
			}
			return interpose.NewChain(aes)
		}
	}
	type cfg struct {
		name  string
		model core.ModelName
		side  int
		iosc  int
	}
	cfgs := []cfg{
		// Elvis: one sidecore per VMhost; the active host can only use its
		// own. vRIO: both sidecores consolidated at the IOhost serve the
		// active host.
		{"elvis (1 local sidecore usable)", core.ModelElvis, 1, 0},
		{"vrio (2 consolidated sidecores)", core.ModelVRIO, 0, 2},
	}
	var cells []Cell
	for _, c := range cfgs {
		c := c
		cells = append(cells, func() any {
			tb, wss, cs := webserverSetup(c.model, c.side, c.iosc, aesChain(params.Default().AESPerByteCost), 1, 231)
			tb.RunMeasured(warm, dur, cs...)
			return aggMbps(wss, dur)
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "fig16b",
			Title:  "Webserver+AES throughput [Mbps] under load imbalance, 2=>2 sidecores",
			Header: []string{"config", "Mbps", "vs elvis"},
		}
		base := 0.0
		for i, c := range cfgs {
			mbps := outs[i].(float64)
			rel := "0%"
			if base == 0 {
				base = mbps
			} else {
				rel = pct(mbps/base - 1)
			}
			res.Rows = append(res.Rows, []string{c.name, f1(mbps), rel})
		}
		res.Notes = append(res.Notes,
			"paper: with the same two-sidecore budget, vRIO's consolidation gives the loaded host both sidecores: +82% over Elvis")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}
