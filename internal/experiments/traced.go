package experiments

import (
	"bytes"
	"fmt"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/trace"
	"vrio/internal/workload"
)

// TraceResult is one traced vRIO run: the exported artifacts plus the live
// tracer/testbed for programmatic inspection.
type TraceResult struct {
	// Chrome is the trace-event JSON (chrome://tracing / Perfetto).
	Chrome []byte
	// Spans is the raw span log, one JSON object per line.
	Spans []byte
	// Metrics is the sim-time metrics timeseries, one JSON object per tick.
	Metrics []byte

	Tracer  *trace.Tracer
	Testbed *cluster.Testbed
}

// TraceRun executes a short netperf-RR-plus-block vRIO run with tracing on
// and metrics sampled every interval, and exports all three artifacts. The
// run is deterministic: the same seed produces byte-identical output. It is
// deliberately short (a few sim-milliseconds) — the point is a loadable
// trace of the datapath, not a statistically meaningful benchmark.
func TraceRun(seed uint64, interval sim.Time) (TraceResult, error) {
	if interval <= 0 {
		interval = sim.Millisecond / 2
	}
	tb := cluster.Build(cluster.Spec{
		Model:      core.ModelVRIO,
		VMsPerHost: 2,
		WithBlock:  true,
		Trace:      true,
		Seed:       seed,
	})
	ts := tb.StartMetricsSampling(interval)

	// RR traffic on every guest exercises guest_ring, transport_wire,
	// iohyp_worker, and completion spans end to end.
	var collectors []cluster.Measurable
	for i, g := range tb.Guests {
		workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
		rr := workload.NewRR(tb.StationFor(i), g.MAC(), 16)
		rr.Start()
		collectors = append(collectors, &rr.Results)
	}
	// A small block write/read loop on guest 0 adds blockdev spans.
	g0 := tb.Guests[0]
	data := make([]byte, 2*tb.P.SectorSize)
	for i := range data {
		data[i] = byte(i)
	}
	var blkLoop func(sector uint64)
	blkLoop = func(sector uint64) {
		g0.WriteBlock(sector, data, func(err error) {
			if err != nil {
				return
			}
			g0.ReadBlock(sector, 2, func(_ []byte, err error) {
				if err != nil {
					return
				}
				blkLoop(sector + 2)
			})
		})
	}
	blkLoop(0)

	tb.RunMeasured(sim.Millisecond, 4*sim.Millisecond, collectors...)

	res := TraceResult{Tracer: tb.Tracer, Testbed: tb}
	var buf bytes.Buffer
	if err := tb.Tracer.WriteChrome(&buf); err != nil {
		return res, fmt.Errorf("chrome export: %w", err)
	}
	res.Chrome = append([]byte{}, buf.Bytes()...)
	buf.Reset()
	if err := tb.Tracer.WriteJSONL(&buf); err != nil {
		return res, fmt.Errorf("span export: %w", err)
	}
	res.Spans = append([]byte{}, buf.Bytes()...)
	buf.Reset()
	if err := ts.WriteJSONL(&buf); err != nil {
		return res, fmt.Errorf("metrics export: %w", err)
	}
	res.Metrics = append([]byte{}, buf.Bytes()...)
	return res, nil
}
