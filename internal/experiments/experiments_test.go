package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be registered,
	// plus the DESIGN.md ablations.
	want := []string{
		"fig1", "table1", "table2", "fig3",
		"table3", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
		"table4", "fig12", "fig13", "fig14", "fig15", "fig16a", "fig16b",
		"heterogeneity", "rackscaling", "tablerack", "fabricscaling",
		"ablation-mtu", "ablation-rxring", "ablation-retransmit", "ablation-steering",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if Get("fig7") == nil {
		t.Error("Get(fig7) = nil")
	}
	if Get("nope") != nil {
		t.Error("Get(nope) != nil")
	}
}

func TestFormatRendersAllCells(t *testing.T) {
	r := Result{
		ID: "x", Title: "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	out := Format(r)
	for _, want := range []string{"x", "t", "a", "bb", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
}

// The cost experiments are cheap; assert their headline numbers precisely.
func TestCostExperimentAnchors(t *testing.T) {
	t2 := table2(true)
	if len(t2.Rows) != 2 {
		t.Fatalf("table2 rows = %d", len(t2.Rows))
	}
	if t2.Rows[0][5] != "-10%" || t2.Rows[1][5] != "-13%" {
		t.Errorf("table2 diffs = %q, %q; want -10%%, -13%%", t2.Rows[0][5], t2.Rows[1][5])
	}
	f1r := fig1(true)
	for _, row := range f1r.Rows {
		if row[0] == "CPU" && row[4] != "below" {
			t.Errorf("CPU pair %s not below the diagonal", row[1])
		}
		if row[0] == "NIC" && row[4] == "below" {
			t.Errorf("NIC pair %s below the diagonal", row[1])
		}
	}
}

// One quick end-to-end shape check: Table 3's measured event sums must
// reproduce the paper's ordering 2 <= 2 < 4 < 6 < 9.
func TestTable3ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := table3(true)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	sum := map[string]float64{}
	for _, row := range res.Rows {
		v, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("bad sum cell %q", row[6])
		}
		sum[row[0]] = v
	}
	if !(sum["optimum"] < 3 && sum["vrio"] < 3) {
		t.Errorf("optimum/vrio sums too high: %v", sum)
	}
	if !(sum["vrio"] < sum["elvis"] && sum["elvis"] < sum["vrio-nopoll"] &&
		sum["vrio-nopoll"] < sum["baseline"]) {
		t.Errorf("event-sum ordering violated: %v", sum)
	}
}

// The rack-scaling study must be deterministic run-to-run (the acceptance
// bar for the control plane: same seed => same moves, same detection
// times, same formatted table).
func TestRackScalingDeterministicQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ra := Get("rackscaling")(true)
	rb := Get("rackscaling")(true)
	a, b := Format(ra), Format(rb)
	if a != b {
		t.Errorf("rackscaling output differs between identical runs:\n%s\n---\n%s", a, b)
	}
	// Columns: config, IOhosts, kops/s, ratio W1, ratio W2, moves, rehomes,
	// detect. The no-controller cell must stay badly imbalanced in W2 while
	// the rebalanced 2-IOhost cell converges near 1.
	ratio := func(cell string) float64 {
		if cell == ">1000" {
			return 1001
		}
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", cell)
		}
		return v
	}
	if r := ratio(ra.Rows[0][4]); r < 10 {
		t.Errorf("static no-controller W2 ratio = %.1f, want >= 10:\n%s", r, a)
	}
	if r := ratio(ra.Rows[1][4]); r > 2 {
		t.Errorf("rebalanced W2 ratio = %.1f, want <= 2:\n%s", r, a)
	}
	if ra.Rows[1][5] == "0" {
		t.Errorf("rebalanced cell made no moves:\n%s", a)
	}
	if ra.Rows[4][6] == "0" || ra.Rows[4][7] == "-" {
		t.Errorf("crash cell missing rehomes or detection:\n%s", a)
	}
}

// Quick latency-shape check mirroring Figure 7's headline claims.
func TestFig7ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := fig7(true)
	get := func(row, col int) float64 {
		v, err := strconv.ParseFloat(res.Rows[row][col], 64)
		if err != nil {
			t.Fatalf("bad cell: %q", res.Rows[row][col])
		}
		return v
	}
	// Columns: VMs, baseline, vrio, elvis, optimum.
	optimum, elvis, vrio, base := get(0, 4), get(0, 3), get(0, 2), get(0, 1)
	if !(optimum < elvis && elvis < vrio && vrio <= base*1.2) {
		t.Errorf("N=1 ordering wrong: opt=%.1f elvis=%.1f vrio=%.1f base=%.1f",
			optimum, elvis, vrio, base)
	}
	gap := vrio - optimum
	if gap < 8 || gap > 18 {
		t.Errorf("vrio-optimum gap = %.1f, want ≈12", gap)
	}
}
