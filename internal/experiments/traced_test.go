package experiments

import (
	"bytes"
	"testing"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/sim"
	"vrio/internal/trace"
)

// TestTraceRunDeterministicAndComplete is the acceptance check for the
// tracing layer: a traced run produces all four core span categories, spans
// nest inside their parents, and two same-seed runs export byte-identical
// artifacts.
func TestTraceRunDeterministicAndComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	a, err := TraceRun(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TraceRun(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Chrome, b.Chrome) {
		t.Error("Chrome exports differ between same-seed runs")
	}
	if !bytes.Equal(a.Spans, b.Spans) {
		t.Error("span logs differ between same-seed runs")
	}
	if !bytes.Equal(a.Metrics, b.Metrics) {
		t.Error("metrics series differ between same-seed runs")
	}

	spans := a.Tracer.Spans()
	if len(spans) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	cats := map[trace.Category]int{}
	for i := range spans {
		cats[spans[i].Cat]++
	}
	for _, want := range []trace.Category{
		trace.CatGuestRing, trace.CatWire, trace.CatWorker,
		trace.CatCompletion, trace.CatBlockdev,
	} {
		if cats[want] == 0 {
			t.Errorf("no %s spans recorded (got %v)", want, cats)
		}
	}

	// Every closed child must lie within its parent's interval, and Root
	// must be the transitive root — that is what makes the Chrome export
	// nest correctly per track.
	for i := range spans {
		s := &spans[i]
		if s.Parent == 0 {
			continue
		}
		p := &spans[s.Parent-1]
		if s.Start < p.Start {
			t.Errorf("span %d starts at %d before parent %d at %d", i+1, s.Start, s.Parent, p.Start)
		}
		if s.End >= 0 && p.End >= 0 && s.End > p.End {
			t.Errorf("span %d ends at %d after parent %d at %d", i+1, s.End, s.Parent, p.End)
		}
		if want := spans[s.Parent-1].Root; s.Root != want {
			t.Errorf("span %d root = %d, want parent's root %d", i+1, s.Root, want)
		}
	}

	if len(a.Metrics) == 0 {
		t.Error("no metrics samples exported")
	}
	if !bytes.Contains(a.Metrics, []byte(`"iohyp/msgs":`)) {
		t.Errorf("metrics series missing iohyp/msgs:\n%.300s", a.Metrics)
	}
}

// TestUntracedRunRecordsNothing pins that the default (Trace off) leaves the
// datapath untouched: no tracer exists and nothing is recorded.
func TestUntracedRunStaysDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tb := cluster.Build(cluster.Spec{Model: core.ModelVRIO, VMsPerHost: 1, Seed: 7})
	rrRun(tb, sim.Millisecond/2, sim.Millisecond)
	if tb.Tracer.Enabled() {
		t.Error("tracer enabled without Spec.Trace")
	}
	if tb.Tracer.NumSpans() != 0 {
		t.Error("disabled tracer recorded spans")
	}
}
