package experiments

import (
	"fmt"
	"math"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/rack"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

func init() {
	register("rackscaling", rackScalingPlan)
}

// rackOut is one rack-scaling cell's measurements.
type rackOut struct {
	kopsPerSec float64
	ratioW1    string // max/min IOhost busy-delta, first measured half
	ratioW2    string // same, second half (post-rebalance / post-failure)
	moves      uint64
	rehomes    uint64
	detectUs   string // crash-to-detection latency, "-" without a crash
}

// rackCellCfg shapes one cell of the rack-scaling experiment.
type rackCellCfg struct {
	name      string
	numIO     int
	policy    func() rack.Policy
	rebalance bool
	crash     bool // kill the last IOhost at mid-run, detection via heartbeats only
}

var rackCells = []rackCellCfg{
	{"static, no controller", 2, func() rack.Policy { return rack.Static(0) }, false, false},
	{"static + rebalancer", 2, func() rack.Policy { return rack.Static(0) }, true, false},
	{"round-robin placement", 2, func() rack.Policy { return &rack.RoundRobin{} }, false, false},
	{"static + rebalancer", 4, func() rack.Policy { return rack.Static(0) }, true, false},
	{"round-robin + IOhost crash", 2, func() rack.Policy { return &rack.RoundRobin{} }, false, true},
}

// rackScalingPlan is the Figure 16b-style rack-scaling study run through the
// internal/rack control plane: an all-on-one placement is maximally
// imbalanced across IOhosts, and the controller heals it by migrating hot
// devices; a crashed IOhost is detected by heartbeats and its devices
// re-home onto the survivors with no manual failover call.
func rackScalingPlan(quick bool) Plan {
	var cells []Cell
	for _, cfg := range rackCells {
		cfg := cfg
		cells = append(cells, func() any { return runRackCell(quick, cfg) })
	}
	return Plan{
		Cells: cells,
		Assemble: func(out []any) Result {
			next := cursor(out)
			res := Result{
				ID:    "rackscaling",
				Title: "Rack scaling: placement, rebalancing, and failure recovery across IOhosts (cf. Fig. 16b, §4.6)",
				Header: []string{"configuration", "IOhosts", "kops/s",
					"busy max/min W1", "busy max/min W2", "moves", "rehomes", "detect [µs]"},
			}
			for _, cfg := range rackCells {
				o := next().(rackOut)
				res.Rows = append(res.Rows, []string{
					cfg.name, fmt.Sprintf("%d", cfg.numIO), f1(o.kopsPerSec),
					o.ratioW1, o.ratioW2,
					fmt.Sprintf("%d", o.moves), fmt.Sprintf("%d", o.rehomes), o.detectUs,
				})
			}
			res.Notes = append(res.Notes,
				"All guests on one IOhost (static) leaves the others idle: busy max/min is huge in both windows without a controller.",
				"The rebalancer reads per-IOhost busy_ns gauges and migrates the hottest device with hysteresis: W2 narrows toward 1.",
				"The crash cell kills an IOhost mid-run; heartbeats detect it within the miss window and its devices re-home onto survivors — no manual FailOverIOhost.",
			)
			return res
		},
	}
}

// runRackCell builds one multi-IOhost testbed, runs RR on every guest, and
// measures per-IOhost busy-time imbalance over two half-windows.
func runRackCell(quick bool, cfg rackCellCfg) rackOut {
	warm, dur := durations(quick, 4*sim.Millisecond, 60*sim.Millisecond)
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 4,
		NumIOhosts: cfg.numIO, Placement: rack.Placement(cfg.policy(), cfg.numIO),
		StationPerVM: true, Seed: 811,
	})
	ctlCfg := rack.Config{HeartbeatInterval: sim.Millisecond / 2, MissThreshold: 3}
	if cfg.rebalance {
		ctlCfg.RebalanceInterval = dur / 30
	}
	c := rack.New(tb, ctlCfg)
	c.Start()

	// Busy-time snapshots bounding the two measurement half-windows. The
	// last lands 1ns before RunMeasured stops the engine.
	snaps := make([][]float64, 3)
	for k, ts := range []sim.Time{warm, warm + dur/2, warm + dur - 1} {
		k, ts := k, ts
		tb.Eng.At(ts, func() {
			s := make([]float64, cfg.numIO)
			for i := range tb.IOHyps {
				if c.Down(i) {
					s[i] = math.NaN() // dead: excluded from the ratio
					continue
				}
				s[i] = float64(tb.IOHyps[i].BusyTime())
			}
			snaps[k] = s
		})
	}
	var failT sim.Time
	if cfg.crash {
		failT = warm + dur/2
		tb.Eng.At(failT, func() { tb.IOHyps[cfg.numIO-1].Fail() })
	}

	var rrs []*workload.RR
	var collectors []cluster.Measurable
	for i, g := range tb.Guests {
		workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
		rr := workload.NewRR(tb.StationFor(i), g.MAC(), 16)
		rr.Start()
		rrs = append(rrs, rr)
		collectors = append(collectors, &rr.Results)
	}
	tb.RunMeasured(warm, dur, collectors...)

	out := rackOut{
		kopsPerSec: float64(totalOps(rrs)) / (float64(dur) / float64(sim.Second)) / 1000,
		ratioW1:    busyRatio(snaps[0], snaps[1]),
		ratioW2:    busyRatio(snaps[1], snaps[2]),
		moves:      c.Counters.Get("rebalances"),
		rehomes:    c.Counters.Get("rehomes"),
		detectUs:   "-",
	}
	for _, ev := range c.Events {
		if ev.Kind == rack.EventDetect {
			out.detectUs = f1(float64(ev.T-failT) / 1000)
			break
		}
	}
	return out
}

// busyRatio is the max/min per-IOhost busy-time delta between two
// snapshots, skipping IOhosts dead in either (NaN). ">1000" stands in for
// an effectively idle IOhost in the denominator.
func busyRatio(a, b []float64) string {
	min, max := math.Inf(1), 0.0
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		d := b[i] - a[i]
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min <= 0 || max/min > 1000 {
		return ">1000"
	}
	return f1(max / min)
}
