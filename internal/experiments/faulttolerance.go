package experiments

import (
	"fmt"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/fault"
	"vrio/internal/rack"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

func init() {
	register("faulttolerance", faultTolerancePlan)
}

// faultLossSweep is the channel frame-loss sweep (§4.5's validation regime:
// "artificially dropping I/O requests"): 0 to 5% loss, each point also
// corrupting a quarter of that rate in flight.
var faultLossSweep = []float64{0, 0.005, 0.01, 0.02, 0.05}

// fault options injected by cmd/vrio-experiments' -fault-profile /
// -fault-seed flags (see SetFaultOptions).
var (
	faultExtraProfile *fault.Profile
	faultSeedOverride uint64
)

// SetFaultOptions wires the CLI fault flags into the faulttolerance
// experiment: a non-nil profile adds a "custom" row to the sweep, and a
// non-zero seed replaces the default fault-draw seed in every cell. Call
// before running; the options are read at plan-build time.
func SetFaultOptions(prof *fault.Profile, seed uint64) {
	faultExtraProfile = prof
	faultSeedOverride = seed
}

func faultSeed() uint64 {
	if faultSeedOverride != 0 {
		return faultSeedOverride
	}
	return 901
}

// ftOut is one fault-tolerance cell's measurements: throughput plus the
// exactly-once ledger. Each cell stops issuing at the measure horizon and
// then drains past the full retransmission budget, so by the time the
// ledger is read every request has resolved — completed once, or errored
// once after MaxRetransmits. "Exactly once" is then literal: dup and lost
// must both be zero.
type ftOut struct {
	issued    uint64
	completed uint64
	dup       uint64 // completions beyond the first for any request
	lost      uint64 // requests that never completed even after the drain
	devErrors uint64
	retrans   uint64
	frLost    uint64 // frames the injector consumed
	frCorrupt uint64 // frames corrupted (all die at the FCS check)
	opsPerSec float64
}

// ftDrain runs past the worst-case §4.5 give-up time: with the default
// 10ms initial timeout doubling over 6 retransmits, a request issued just
// before the stop fires its device error ~1.27s later.
const ftDrain = 1300 * sim.Millisecond

// blkWriter is one guest's closed-loop block write load with per-request
// completion counting.
type blkWriter struct {
	tb    *cluster.Testbed
	guest int
	conc  int
	size  int
	stop  bool
	// counts[i] is how many times request i's callback ran; exactly-once
	// means every entry is 0 (in flight at stop) or 1.
	counts []int
	errs   uint64
}

func (w *blkWriter) start() {
	for i := 0; i < w.conc; i++ {
		w.issue()
	}
}

func (w *blkWriter) issue() {
	if w.stop {
		return
	}
	id := len(w.counts)
	w.counts = append(w.counts, 0)
	g := w.tb.Guests[w.guest]
	data := make([]byte, w.size)
	sector := uint64((id * 17) % 1024)
	g.WriteBlock(sector, data, func(err error) {
		w.counts[id]++
		if err != nil {
			w.errs++
		}
		w.issue()
	})
}

// done counts requests whose callback has run at least once.
func (w *blkWriter) done() uint64 {
	var n uint64
	for _, c := range w.counts {
		if c >= 1 {
			n++
		}
	}
	return n
}

// tally folds the writer's post-drain ledger into out.
func (w *blkWriter) tally(out *ftOut) {
	for _, c := range w.counts {
		switch {
		case c == 0:
			out.lost++
		case c > 1:
			out.dup += uint64(c - 1)
		}
		if c >= 1 {
			out.completed++
		}
	}
	out.issued += uint64(len(w.counts))
	out.devErrors += w.errs
}

// runFaultCell drives closed-loop block writes over a faulted vRIO rack and
// returns the exactly-once ledger.
func runFaultCell(quick bool, prof *fault.Profile) ftOut {
	_, dur := durations(quick, 0, 50*sim.Millisecond)
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMHosts: 1, VMsPerHost: 4,
		WithBlock: true, Seed: 901, Fault: prof, FaultSeed: faultSeed(),
	})
	var writers []*blkWriter
	for i := range tb.Guests {
		w := &blkWriter{tb: tb, guest: i, conc: 8, size: 4096}
		w.start()
		writers = append(writers, w)
	}
	// Throughput is measured over [0, dur); the drain that follows only
	// settles the ledger.
	var doneAtStop uint64
	tb.Eng.At(dur, func() {
		for _, w := range writers {
			w.stop = true
			doneAtStop += w.done()
		}
	})
	tb.Eng.RunUntil(dur + ftDrain)

	var out ftOut
	for _, w := range writers {
		w.tally(&out)
	}
	for _, c := range tb.VRIOClients {
		out.retrans += c.Driver.Counters.Get("retransmits")
		// After the drain no request may still sit in a driver: the ledger's
		// lost column must mean lost, not late.
		if n := c.Driver.InFlightBlk(); n != 0 {
			out.lost += uint64(n)
		}
	}
	out.frLost = tb.Fault.Counters.Get("frames_dropped")
	out.frCorrupt = tb.Fault.Counters.Get("frames_corrupted")
	out.opsPerSec = float64(doneAtStop) / dur.Seconds()
	return out
}

// ftMQOut is a multi-queue fault cell's measurements: the ftOut ledger plus
// the IOhost-side per-queue in-flight tables, which must be empty after the
// drain (an entry left behind would mean a stall or crash leaked a request
// into — or out of — a queue table more than once).
type ftMQOut struct {
	ftOut
	tablesLeft int
	stalls     uint64
}

// tallyMQ folds an MQBlock ledger into out (the MQ analogue of
// blkWriter.tally).
func tallyMQ(m *workload.MQBlock, out *ftOut) {
	dup, lost := m.Ledger()
	out.dup += dup
	out.lost += lost
	out.issued += m.Issued()
	out.completed += m.Issued() - lost
	out.devErrors += m.Errs
}

// runFaultCellMQ is runFaultCell at QD>1/NQ>1 with injected worker stalls:
// closed-loop multi-queue writes over a lossy channel while every sidecore
// freezes twice mid-run. Exactly-once must survive the combination, and the
// per-queue in-flight tables must drain.
func runFaultCellMQ(quick bool, prof *fault.Profile, qd, nq int) ftMQOut {
	_, dur := durations(quick, 0, 50*sim.Millisecond)
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMHosts: 1, VMsPerHost: 4,
		WithBlock: true, BlkQueues: nq, IOhostSidecores: 2,
		Seed: 901, Fault: prof, FaultSeed: faultSeed(),
	})
	var loads []*workload.MQBlock
	for _, g := range tb.Guests {
		m := workload.NewMQBlock(tb.Eng, g, nq, qd, 4096)
		m.Start()
		loads = append(loads, m)
	}
	// Freeze every sidecore twice, early enough that the closed loops are
	// still flowing (under heavy loss they park on retransmit timers fast):
	// queued multi-queue work must wait behind the stall, and the per-queue
	// tables must still balance afterwards.
	tb.Eng.At(dur/8, func() { tb.IOHyp.StallWorkers(2 * sim.Millisecond) })
	tb.Eng.At(dur/3, func() { tb.IOHyp.StallWorkers(2 * sim.Millisecond) })
	var doneAtStop uint64
	tb.Eng.At(dur, func() {
		for _, m := range loads {
			m.Stop()
			doneAtStop += m.Done()
		}
	})
	tb.Eng.RunUntil(dur + ftDrain)

	var out ftMQOut
	for _, m := range loads {
		tallyMQ(m, &out.ftOut)
	}
	for _, c := range tb.VRIOClients {
		out.retrans += c.Driver.Counters.Get("retransmits")
		if n := c.Driver.InFlightBlk(); n != 0 {
			out.lost += uint64(n)
		}
	}
	for _, h := range tb.IOHyps {
		out.tablesLeft += h.BlkInFlight()
	}
	out.stalls = tb.IOHyp.Counters.Get("stalls")
	out.frLost = tb.Fault.Counters.Get("frames_dropped")
	out.frCorrupt = tb.Fault.Counters.Get("frames_corrupted")
	out.opsPerSec = float64(doneAtStop) / dur.Seconds()
	return out
}

// runFaultCrashCellMQ is the crash/re-home cell at QD>1/NQ>1: the dying
// IOhost strands multi-queue requests mid-flight; retransmission rides them
// onto the survivor, which re-registers the device with fresh queue tables.
// Both hosts' tables must balance to zero after the drain.
func runFaultCrashCellMQ(quick bool, qd, nq int) ftMQOut {
	_, dur := durations(quick, 0, 50*sim.Millisecond)
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 2,
		NumIOhosts: 2, Placement: rack.Placement(&rack.RoundRobin{}, 2),
		WithBlock: true, BlkQueues: nq, IOhostSidecores: 2, Seed: 902,
		Fault: fault.Lossy(0.01), FaultSeed: faultSeed(),
	})
	c := rack.New(tb, rack.Config{HeartbeatInterval: sim.Millisecond / 2, MissThreshold: 3})
	c.Start()

	var loads []*workload.MQBlock
	for _, g := range tb.Guests {
		m := workload.NewMQBlock(tb.Eng, g, nq, qd, 4096)
		m.Start()
		loads = append(loads, m)
	}
	tb.Eng.At(dur/2, func() { tb.IOHyps[1].Fail() })
	var doneAtStop uint64
	tb.Eng.At(dur, func() {
		for _, m := range loads {
			m.Stop()
			doneAtStop += m.Done()
		}
	})
	tb.Eng.RunUntil(dur + ftDrain)

	var out ftMQOut
	for _, m := range loads {
		tallyMQ(m, &out.ftOut)
	}
	for _, cl := range tb.VRIOClients {
		out.retrans += cl.Driver.Counters.Get("retransmits")
		if n := cl.Driver.InFlightBlk(); n != 0 {
			out.lost += uint64(n)
		}
	}
	for _, h := range tb.IOHyps {
		out.tablesLeft += h.BlkInFlight()
	}
	out.frLost = tb.Fault.Counters.Get("frames_dropped")
	out.frCorrupt = tb.Fault.Counters.Get("frames_corrupted")
	out.opsPerSec = float64(doneAtStop) / dur.Seconds()
	return out
}

// ftVolOut is the distributed-volume loss+crash cell: quorum writes over a
// lossy fabric while an IOhost replica dies mid-run. Exactly-once must hold
// through retransmission, quorum completion, and the rebuild engine's
// recovery traffic all at once.
type ftVolOut struct {
	ftOut
	rebuilt  uint64
	nacks    uint64 // replica write rejections (stale version or device error)
	gapNacks uint64 // writes refused because the replica missed an earlier version
	heals    uint64 // gap-nacked replicas re-silvered by the heal engine
	qlosses  uint64 // writes that failed with ErrQuorumLost
	healthy  bool
}

// runFaultVolCell drives closed-loop quorum writes (R=2, W=2, 3 IOhosts)
// over a 1%-lossy fabric, crashes IOhost 1 at the midpoint, and audits the
// ledger after the drain: every write completed exactly once and the volume
// is fully replicated again. W equals R so every committed write survives
// the crash on the other replica — the configuration under which "restored
// full replication" is actually guaranteeable. (At W=1 a crash of the lone
// acking replica loses the write's bytes outright; the gap-aware fence then
// honestly reports the extent degraded rather than serving stale data — the
// cluster tests pin that behavior directly.) W=R also leans on the heal
// engine: retransmission-reordered versions gap-fence a replica, and without
// the heal's full-extent re-silvering the write quorum would never recover.
func runFaultVolCell(quick bool) ftVolOut {
	_, dur := durations(quick, 0, 50*sim.Millisecond)
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMsPerHost: 2, NumIOhosts: 3,
		VolReplicas: 2, VolQuorum: 2, VolQueues: 2,
		Seed: 903, Fault: fault.Lossy(0.01), FaultSeed: faultSeed(),
	})
	c := rack.New(tb, rack.Config{HeartbeatInterval: sim.Millisecond / 2, MissThreshold: 3})
	c.Start()

	var writers []*volWriter
	for _, vol := range tb.Volumes {
		vw := &volWriter{eng: tb.Eng, vol: vol, conc: 8, size: 4096}
		vw.start()
		writers = append(writers, vw)
	}
	tb.Eng.At(dur/2, func() { tb.IOHyps[1].Fail() })
	var doneAtStop uint64
	tb.Eng.At(dur, func() {
		for _, vw := range writers {
			vw.stop = true
			doneAtStop += vw.done()
		}
	})
	// The vol cell drains longer than the others: a gap nack carried by one
	// of the final writes (loss can reorder versions via retransmission)
	// queues a heal, and that heal is a further read + write round trip,
	// each with its own worst-case retransmission budget. The volume must
	// report fully replicated with no rebuild/heal work still in flight.
	tb.Eng.RunUntil(dur + 4*ftDrain)

	var out ftVolOut
	out.healthy = true
	for _, vw := range writers {
		vw.tally(&out.ftOut)
	}
	for _, vol := range tb.Volumes {
		out.rebuilt += vol.Counters.Get("rebuild_extents")
		out.nacks += vol.Counters.Get("write_nacks")
		out.gapNacks += vol.Counters.Get("gap_nacks")
		out.heals += vol.Counters.Get("replica_heals")
		out.qlosses += vol.Counters.Get("quorum_losses")
		if vol.Rebuilding() || !vol.FullyReplicated() {
			out.healthy = false
		}
	}
	out.frLost = tb.Fault.Counters.Get("frames_dropped")
	out.frCorrupt = tb.Fault.Counters.Get("frames_corrupted")
	out.opsPerSec = float64(doneAtStop) / dur.Seconds()
	return out
}

// ftCrashOut is the lossy-crash cell: an IOhost dies mid-run while every
// channel loses frames; the rack controller must still detect the crash and
// re-home the victims, and the exactly-once ledger must stay clean.
type ftCrashOut struct {
	ftOut
	detectUs float64
	rehomes  uint64
}

func runFaultCrashCell(quick bool) ftCrashOut {
	_, dur := durations(quick, 0, 50*sim.Millisecond)
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 2,
		NumIOhosts: 2, Placement: rack.Placement(&rack.RoundRobin{}, 2),
		WithBlock: true, Seed: 902,
		Fault: fault.Lossy(0.01), FaultSeed: faultSeed(),
	})
	c := rack.New(tb, rack.Config{HeartbeatInterval: sim.Millisecond / 2, MissThreshold: 3})
	c.Start()

	var writers []*blkWriter
	for i := range tb.Guests {
		w := &blkWriter{tb: tb, guest: i, conc: 8, size: 4096}
		w.start()
		writers = append(writers, w)
	}
	failT := dur / 2
	tb.Eng.At(failT, func() { tb.IOHyps[1].Fail() })
	var doneAtStop uint64
	tb.Eng.At(dur, func() {
		for _, w := range writers {
			w.stop = true
			doneAtStop += w.done()
		}
	})
	// Drain past the retransmission budget: requests stranded by the crash
	// must ride retransmission onto the survivor and complete.
	tb.Eng.RunUntil(dur + ftDrain)

	var out ftCrashOut
	for _, w := range writers {
		w.tally(&out.ftOut)
	}
	for _, cl := range tb.VRIOClients {
		out.retrans += cl.Driver.Counters.Get("retransmits")
		if n := cl.Driver.InFlightBlk(); n != 0 {
			out.lost += uint64(n)
		}
	}
	out.frLost = tb.Fault.Counters.Get("frames_dropped")
	out.frCorrupt = tb.Fault.Counters.Get("frames_corrupted")
	out.opsPerSec = float64(doneAtStop) / dur.Seconds()
	out.rehomes = c.Counters.Get("rehomes")
	out.detectUs = -1
	for _, ev := range c.Events {
		if ev.Kind == rack.EventDetect {
			out.detectUs = float64(ev.T-failT) / 1000
			break
		}
	}
	return out
}

// faultTolerancePlan sweeps channel frame loss from 0 to 5% under a block
// write load and shows §4.5's claim: throughput degrades gracefully while
// every request completes exactly once. A final cell crashes an IOhost over
// an already-lossy fabric and shows detection and re-homing still work.
func faultTolerancePlan(quick bool) Plan {
	type sweepPt struct {
		name string
		prof *fault.Profile
	}
	var pts []sweepPt
	for _, rate := range faultLossSweep {
		pts = append(pts, sweepPt{fmt.Sprintf("%.1f%%", rate*100), fault.Lossy(rate)})
	}
	if faultExtraProfile != nil {
		pts = append(pts, sweepPt{"custom", faultExtraProfile})
	}
	var cells []Cell
	for _, pt := range pts {
		pt := pt
		cells = append(cells, func() any { return runFaultCell(quick, pt.prof) })
	}
	cells = append(cells, func() any { return runFaultCrashCell(quick) })
	// Multi-queue regime: the same exactly-once claims at QD=4/NQ=2, once
	// under loss + injected worker stalls, once under loss + IOhost crash.
	cells = append(cells, func() any { return runFaultCellMQ(quick, fault.Lossy(0.02), 4, 2) })
	cells = append(cells, func() any { return runFaultCrashCellMQ(quick, 4, 2) })
	// Distributed-volume regime: quorum writes under loss + replica crash +
	// rebuild (DESIGN.md §16).
	cells = append(cells, func() any { return runFaultVolCell(quick) })

	assemble := func(outs []any) Result {
		res := Result{
			ID:    "faulttolerance",
			Title: "Fault tolerance: block throughput and exactly-once completion vs channel loss (§4.5, §4.6)",
			Header: []string{"loss", "kops/s", "vs 0%", "retrans",
				"frames lost", "corrupt", "dup", "never-completed", "dev errors"},
		}
		next := cursor(outs)
		base := 0.0
		for _, pt := range pts {
			o := next().(ftOut)
			rel := "0%"
			if base == 0 {
				base = o.opsPerSec
			} else if base > 0 {
				rel = pct(o.opsPerSec/base - 1)
			}
			res.Rows = append(res.Rows, []string{
				pt.name, f1(o.opsPerSec / 1000), rel,
				fmt.Sprintf("%d", o.retrans),
				fmt.Sprintf("%d", o.frLost), fmt.Sprintf("%d", o.frCorrupt),
				fmt.Sprintf("%d", o.dup), fmt.Sprintf("%d", o.lost),
				fmt.Sprintf("%d", o.devErrors),
			})
		}
		cr := next().(ftCrashOut)
		res.Rows = append(res.Rows, []string{
			"1% + IOhost crash", f1(cr.opsPerSec / 1000), "-",
			fmt.Sprintf("%d", cr.retrans),
			fmt.Sprintf("%d", cr.frLost), fmt.Sprintf("%d", cr.frCorrupt),
			fmt.Sprintf("%d", cr.dup), fmt.Sprintf("%d", cr.lost),
			fmt.Sprintf("%d", cr.devErrors),
		})
		mqRow := func(name string, o ftMQOut) {
			res.Rows = append(res.Rows, []string{
				name, f1(o.opsPerSec / 1000), "-",
				fmt.Sprintf("%d", o.retrans),
				fmt.Sprintf("%d", o.frLost), fmt.Sprintf("%d", o.frCorrupt),
				fmt.Sprintf("%d", o.dup), fmt.Sprintf("%d", o.lost),
				fmt.Sprintf("%d", o.devErrors),
			})
		}
		mqStall := next().(ftMQOut)
		mqRow("2% QD4xNQ2 + stalls", mqStall)
		mqCrash := next().(ftMQOut)
		mqRow("1% QD4xNQ2 + crash", mqCrash)
		vc := next().(ftVolOut)
		res.Rows = append(res.Rows, []string{
			"1% vol R=2 + crash", f1(vc.opsPerSec / 1000), "-", "-",
			fmt.Sprintf("%d", vc.frLost), fmt.Sprintf("%d", vc.frCorrupt),
			fmt.Sprintf("%d", vc.dup), fmt.Sprintf("%d", vc.lost),
			fmt.Sprintf("%d", vc.devErrors),
		})
		volHealth := "restored full replication"
		if !vc.healthy {
			volHealth = "LEFT THE VOLUME DEGRADED"
		}
		res.Notes = append(res.Notes,
			fmt.Sprintf("volume cell runs R=2/W=2 quorum writes across 3 IOhosts; the crash cost %d extent replicas and the rebuild engine %s over the same lossy fabric. Its dev errors (%d, all clean quorum-loss errors) are writes the version fence refused whole — superseded by a newer concurrent version, or aimed at a replica that provably missed an earlier one (%d gap nacks, %d healed by full-extent copy) — so dup and never-completed stay 0.", vc.rebuilt, volHealth, vc.devErrors, vc.gapNacks, vc.heals),
		)
		res.Notes = append(res.Notes,
			"dup and never-completed must be 0 at every loss rate: §4.5 retransmission with stale filtering gives exactly-once completion, not at-least-once.",
			fmt.Sprintf("crash cell: heartbeats detected the dead IOhost in %.0fµs over a 1%%-lossy fabric and re-homed %d guests; stranded requests completed on the survivor via retransmission.", cr.detectUs, cr.rehomes),
			fmt.Sprintf("multi-queue cells run QD=4/NQ=2 per guest; per-queue in-flight tables drained to %d/%d entries (stall/crash cells) — both must be 0.", mqStall.tablesLeft, mqCrash.tablesLeft),
		)
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}
