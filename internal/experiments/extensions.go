package experiments

import (
	"fmt"

	"vrio/internal/cluster"
	"vrio/internal/core"
	"vrio/internal/params"
	"vrio/internal/sim"
	"vrio/internal/workload"
)

func init() {
	// migration and failover are single indivisible timelines (one testbed
	// with mid-run topology changes), so they stay one cell each.
	register("migration", single(migration))
	register("failover", single(failover))
	register("energy", energyPlan)
}

// migration exercises the §4.6 live-migration design that the paper
// describes but did not implement ("we did not implement the dynamic
// switch"): a vRIO guest moves between VMhosts sharing the IOhost while
// Netperf RR runs against its unchanged F address and a block write is in
// flight.
func migration(quick bool) Result {
	res := Result{
		ID:     "migration",
		Title:  "Live migration of a vRIO guest between VMhosts (§4.6 extension)",
		Header: []string{"phase", "RR transactions", "mean RTT [µs]"},
	}
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 1,
		WithBlock: true, Seed: 401,
	})
	g := tb.Guests[0]
	workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
	rr := workload.NewRR(tb.Stations[0], g.MAC(), 16)
	rr.Start()
	rr.Results.StartMeasuring()

	const phase = 40 * sim.Millisecond
	type snap struct {
		ops uint64
		sum float64
	}
	take := func() snap {
		return snap{rr.Results.Ops, rr.Results.Latency.Mean() * float64(rr.Results.Ops)}
	}
	var before, resumed snap
	blkOK := "no"
	t1 := phase
	t2 := t1 + tb.P.MigrationDowntime + 40*sim.Millisecond // + the RR loss-timer to fully restart
	end := t2 + phase
	tb.Eng.At(t1, func() {
		before = take()
		// A block write racing the blackout: §4.5 must carry it across.
		g.WriteBlock(10, make([]byte, 4096), func(err error) {
			if err == nil {
				blkOK = "yes"
			}
		})
		tb.MigrateVM(0, 1, nil)
	})
	tb.Eng.RunUntil(t2)
	resumed = take()
	tb.Eng.RunUntil(end)
	final := take()

	rate := func(ops uint64, window sim.Time) string {
		return fmt.Sprintf("%d (%.0f/s)", ops, float64(ops)/window.Seconds())
	}
	mean := func(s0, s1 snap) string {
		if s1.ops == s0.ops {
			return "-"
		}
		return f1((s1.sum - s0.sum) / float64(s1.ops-s0.ops) / 1000)
	}
	res.Rows = append(res.Rows,
		[]string{"before migration", rate(before.ops, t1), f1(before.sum / float64(before.ops) / 1000)},
		[]string{"blackout window", rate(resumed.ops-before.ops, t2-t1), mean(before, resumed)},
		[]string{"after migration", rate(final.ops-resumed.ops, end-t2), mean(resumed, final)},
	)
	res.Notes = append(res.Notes,
		fmt.Sprintf("blackout %v; in-flight block write survived via §4.5 retransmission: %s; retransmits=%d; F address unchanged",
			tb.P.MigrationDowntime, blkOK,
			tb.VRIOClients[0].Driver.Counters.Get("retransmits")))
	res.Notes = append(res.Notes,
		"the paper designed this switch (§4.6) but left it unimplemented; here it is exercised end to end")
	return res
}

// failover exercises §4.6's fault-tolerance design: the primary IOhost
// crashes mid-run and every IOclient re-attaches to a pre-cabled fallback
// IOhost. Net traffic resumes once the fallback speaks for the F
// addresses; block requests ride across on §4.5 retransmission (the
// fallback shares the distributed block backends).
func failover(quick bool) Result {
	res := Result{
		ID:     "failover",
		Title:  "IOhost failure with a secondary fallback (§4.6 extension)",
		Header: []string{"phase", "RR transactions", "served by"},
	}
	tb := cluster.Build(cluster.Spec{
		Model: core.ModelVRIO, VMHosts: 2, VMsPerHost: 2,
		WithBlock: true, SecondaryIOhost: true, Seed: 421,
	})
	var rrs []*workload.RR
	for i, g := range tb.Guests {
		workload.InstallRRServer(g, tb.P.NetperfRRProcessCost)
		rr := workload.NewRR(tb.StationFor(i), g.MAC(), 16)
		rr.Start()
		rr.Results.StartMeasuring()
		rrs = append(rrs, rr)
	}
	ops := func() uint64 {
		var t uint64
		for _, rr := range rrs {
			t += rr.Results.Ops
		}
		return t
	}
	const phase = 40 * sim.Millisecond
	var atFailure uint64
	tb.Eng.At(phase, func() {
		atFailure = ops()
		tb.FailOverIOhost()
	})
	tb.Eng.RunUntil(2*phase + 40*sim.Millisecond) // + the RR loss timer
	afterBlackout := ops()
	tb.Eng.RunUntil(3*phase + 40*sim.Millisecond)
	final := ops()

	res.Rows = append(res.Rows,
		[]string{"before failure", fmt.Sprintf("%d", atFailure), "primary"},
		[]string{"failure+recovery", fmt.Sprintf("%d", afterBlackout-atFailure), "-"},
		[]string{"after failover", fmt.Sprintf("%d", final-afterBlackout), "secondary"},
	)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"fallback served %d messages after the crash; paper §4.6: reachability via a secondary IOhost costs extra cables and ports (priced in Table 1's NIC rows)",
		tb.SecondaryIOHyp.Counters.Get("msgs")))
	return res
}

// energyPlan quantifies §4.6's "Energy" paragraph: spinning sidecores burn
// full power even when idle; consolidating them (vRIO) and/or waiting with
// monitor/mwait reduces the burn, mwait at a small latency cost. One cell
// per configuration.
func energyPlan(quick bool) Plan {
	warm, dur := durations(quick, 5*sim.Millisecond, 80*sim.Millisecond)
	type cfg struct {
		name  string
		model core.ModelName
		side  int
		iosc  int
		mwait bool
	}
	cfgs := []cfg{
		{"elvis spinning", core.ModelElvis, 1, 0, false},
		{"elvis mwait", core.ModelElvis, 1, 0, true},
		{"vrio spinning", core.ModelVRIO, 0, 1, false},
		{"vrio mwait", core.ModelVRIO, 0, 1, true},
	}
	var cells []Cell
	for _, c := range cfgs {
		c := c
		cells = append(cells, func() any {
			p := params.Default()
			p.MwaitEnabled = c.mwait
			tb := cluster.Build(cluster.Spec{
				Model: c.model, VMHosts: 2, VMsPerHost: 5,
				SidecoresPerHost: c.side, IOhostSidecores: c.iosc,
				WithBlock: true, WithThreads: true, Params: &p, Seed: 411,
			})
			var wss []*workload.Webserver
			var cs []cluster.Measurable
			for i, g := range tb.Guests {
				ws := workload.NewWebserver(tb.Eng, g.Threads, g, workload.WebserverConfig{
					Threads: p.WebserverThreads, Files: p.WebserverFileCount,
					MeanFileSize: p.WebserverMeanFileSize, ChunkSize: p.FilebenchIOSize,
					OpCost: p.WebserverOpCost, OpenCost: p.WebserverOpenCost,
					LogWrite:        p.WebserverLogWrite,
					CapacitySectors: tb.BlockDevices[i].Store().Capacity(),
					SectorSize:      p.SectorSize, Seed: uint64(420 + i),
				})
				ws.Start()
				wss = append(wss, ws)
				cs = append(cs, &ws.Results)
			}
			tb.RunMeasured(warm, dur, cs...)
			pollW := p.PowerPoll
			if c.mwait {
				pollW = p.PowerMwait
			}
			var energyUnits float64
			for _, sc := range tb.Sidecores {
				energyUnits += sc.Energy(p.PowerBusy, pollW, p.PowerIdle)
			}
			// Normalize to cores of continuous full-power burn.
			energyUnits /= tb.Eng.Now().Seconds()
			var bytes uint64
			for _, ws := range wss {
				bytes += ws.Results.Bytes
			}
			mbps := float64(bytes*8) / dur.Seconds() / 1e6
			return []string{
				c.name, fmt.Sprintf("%d", len(tb.Sidecores)), f2(energyUnits), f1(mbps),
			}
		})
	}
	assemble := func(outs []any) Result {
		res := Result{
			ID:     "energy",
			Title:  "Sidecore energy under the Webserver load (§4.6 extension; core-seconds at full power per second)",
			Header: []string{"config", "sidecores", "energy [cores]", "Mbps"},
		}
		for _, o := range outs {
			res.Rows = append(res.Rows, o.([]string))
		}
		res.Notes = append(res.Notes,
			"the paper notes monitor/mwait as a latency-for-energy tradeoff outside its scope; consolidation (2 sidecores -> 1) already halves the spin burn, mwait cuts the rest")
		return res
	}
	return Plan{Cells: cells, Assemble: assemble}
}
