package experiments

import (
	"testing"

	"vrio/internal/fault"
)

func runFaultPlan(quick bool) Result {
	p := faultTolerancePlan(quick)
	outs := make([]any, len(p.Cells))
	for i, c := range p.Cells {
		outs[i] = c()
	}
	return p.Assemble(outs)
}

// TestFaultToleranceDeterministicQuick is the tier-1 determinism guard for
// the fault subsystem: the whole experiment — fault draws included — must
// render byte-identically across runs with the same seeds.
func TestFaultToleranceDeterministicQuick(t *testing.T) {
	a := Format(runFaultPlan(true))
	b := Format(runFaultPlan(true))
	if a != b {
		t.Fatalf("faulttolerance is not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestFaultToleranceExactlyOnce: under 2% channel loss every block request
// completes exactly once — recovery is retransmission, never duplication.
func TestFaultToleranceExactlyOnce(t *testing.T) {
	o := runFaultCell(true, fault.Lossy(0.02))
	if o.issued == 0 || o.completed == 0 {
		t.Fatal("cell produced no block traffic")
	}
	if o.frLost == 0 {
		t.Fatal("2% loss profile injected no frame loss — the sweep is vacuous")
	}
	if o.retrans == 0 {
		t.Error("frames were lost but nothing retransmitted")
	}
	if o.dup != 0 {
		t.Errorf("%d duplicated completions, want 0", o.dup)
	}
	if o.lost != 0 {
		t.Errorf("%d requests never completed after the drain, want 0", o.lost)
	}
}

// TestFaultToleranceGracefulDegradation: more loss means less throughput,
// not a cliff and not a hang.
func TestFaultToleranceGracefulDegradation(t *testing.T) {
	clean := runFaultCell(true, nil)
	lossy := runFaultCell(true, fault.Lossy(0.05))
	if clean.frLost != 0 {
		t.Errorf("nil profile injected %d losses", clean.frLost)
	}
	if lossy.opsPerSec <= 0 {
		t.Fatal("5% loss stalled the workload entirely")
	}
	if lossy.opsPerSec >= clean.opsPerSec {
		t.Errorf("5%% loss did not reduce throughput: %.0f >= %.0f ops/s",
			lossy.opsPerSec, clean.opsPerSec)
	}
}

// TestFaultToleranceMQExactlyOnce: the exactly-once ledger must hold at
// QD=4/NQ=2 under 2% channel loss with every sidecore stalled twice
// mid-run, and the per-queue in-flight tables must drain completely.
func TestFaultToleranceMQExactlyOnce(t *testing.T) {
	o := runFaultCellMQ(true, fault.Lossy(0.02), 4, 2)
	if o.issued == 0 || o.completed == 0 {
		t.Fatal("MQ cell produced no block traffic")
	}
	if o.frLost == 0 {
		t.Fatal("2% loss profile injected no frame loss — the cell is vacuous")
	}
	if o.retrans == 0 {
		t.Error("frames were lost but nothing retransmitted")
	}
	if o.stalls < 2 {
		t.Errorf("expected 2 injected worker stalls, saw %d", o.stalls)
	}
	if o.dup != 0 {
		t.Errorf("%d duplicated completions, want 0", o.dup)
	}
	if o.lost != 0 {
		t.Errorf("%d requests never completed after the drain, want 0", o.lost)
	}
	if o.tablesLeft != 0 {
		t.Errorf("%d entries left in per-queue in-flight tables after drain, want 0", o.tablesLeft)
	}
}

// TestFaultToleranceMQCrash: crash/re-home at QD=4/NQ=2 — stranded
// multi-queue requests ride retransmission onto the survivor, exactly once,
// and both IOhosts' queue tables balance to zero.
func TestFaultToleranceMQCrash(t *testing.T) {
	o := runFaultCrashCellMQ(true, 4, 2)
	if o.issued == 0 || o.completed == 0 {
		t.Fatal("MQ crash cell produced no block traffic")
	}
	if o.dup != 0 {
		t.Errorf("%d duplicated completions across the crash, want 0", o.dup)
	}
	if o.lost != 0 {
		t.Errorf("%d requests never completed after crash+re-home, want 0", o.lost)
	}
	if o.devErrors != 0 {
		t.Errorf("%d device errors: stranded requests should retransmit onto the survivor, not fail", o.devErrors)
	}
	if o.tablesLeft != 0 {
		t.Errorf("%d entries left in per-queue in-flight tables after drain, want 0", o.tablesLeft)
	}
}

// TestFaultToleranceCrashOverLossyChannel: the rack controller must still
// detect a dead IOhost and re-home its guests when every heartbeat rides a
// 1%-lossy fabric, and the exactly-once ledger must survive the migration.
func TestFaultToleranceCrashOverLossyChannel(t *testing.T) {
	o := runFaultCrashCell(true)
	if o.detectUs < 0 {
		t.Fatal("controller never detected the crashed IOhost")
	}
	if o.rehomes == 0 {
		t.Error("no guests were re-homed off the dead IOhost")
	}
	if o.dup != 0 {
		t.Errorf("%d duplicated completions across the crash, want 0", o.dup)
	}
	if o.lost != 0 {
		t.Errorf("%d requests never completed after crash+re-home, want 0", o.lost)
	}
	if o.devErrors != 0 {
		t.Errorf("%d device errors: stranded requests should retransmit onto the survivor, not fail", o.devErrors)
	}
}

// TestFaultToleranceVolCrash: quorum writes on a striped R=2 volume over a
// 1%-lossy fabric with a replica IOhost crashing mid-run. Exactly-once must
// hold end to end, and the rebuild engine must restore full replication over
// the same lossy fabric. Device errors are allowed — they are writes the
// version fence refused whole (superseded by a newer concurrent version, or
// gap-nacked by a replica that missed an earlier one), never partial or
// duplicated applications.
func TestFaultToleranceVolCrash(t *testing.T) {
	o := runFaultVolCell(true)
	if o.issued == 0 || o.completed == 0 {
		t.Fatal("vol crash cell produced no write traffic")
	}
	if o.frLost == 0 {
		t.Fatal("1% loss profile injected no frame loss — the cell is vacuous")
	}
	if o.dup != 0 {
		t.Errorf("%d duplicated completions across loss+crash, want 0", o.dup)
	}
	if o.lost != 0 {
		t.Errorf("%d requests never completed after the drain, want 0", o.lost)
	}
	if o.rebuilt == 0 {
		t.Error("crash cost no extent replicas; the cell exercises nothing")
	}
	if !o.healthy {
		t.Error("rebuild did not restore full replication over the lossy fabric")
	}
	if o.devErrors != o.qlosses {
		t.Errorf("%d device errors but %d quorum losses: every failed write must be a clean quorum-loss error", o.devErrors, o.qlosses)
	}
}
