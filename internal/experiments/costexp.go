package experiments

import (
	"fmt"

	"vrio/internal/cost"
)

func init() {
	// The cost experiments are pure arithmetic over embedded price data —
	// each is one cheap cell.
	register("fig1", single(fig1))
	register("table1", single(table1))
	register("table2", single(table2))
	register("fig3", single(fig3))
	register("tablerack", single(tablerack))
}

// fig1 reproduces the CPU-vs-NIC upgrade scatter.
func fig1(bool) Result {
	res := Result{
		ID:     "fig1",
		Title:  "Upgrade economics: added hardware vs added cost (Figure 1)",
		Header: []string{"kind", "pair", "cost ratio", "capability ratio", "side of diagonal"},
	}
	for _, p := range cost.CPUPairs() {
		side := "below"
		if p.AboveDiagonal() {
			side = "above"
		}
		res.Rows = append(res.Rows, []string{"CPU", p.Name, f2(p.CostRatio()), f2(p.CapabilityRatio()), side})
	}
	for _, p := range cost.NICPairs() {
		side := "below"
		if p.AboveDiagonal() {
			side = "above"
		}
		res.Rows = append(res.Rows, []string{"NIC", p.Name, f2(p.CostRatio()), f2(p.CapabilityRatio()), side})
	}
	res.Notes = append(res.Notes,
		"paper: all CPU points fall below the break-even diagonal, all NIC points above — CPU upgrades carry a premium that NIC upgrades do not")
	return res
}

// table1 reproduces the per-server configurations.
func table1(bool) Result {
	res := Result{
		ID:     "table1",
		Title:  "Dell R930 per-server price, components, and throughput (Table 1)",
		Header: []string{"server", "CPUs", "memory [GB]", "price [$]", "Gbps installed", "Gbps required"},
	}
	for _, s := range []cost.Server{
		cost.ElvisServer(), cost.VMHostServer(),
		cost.LightIOHostServer(), cost.HeavyIOHostServer(),
	} {
		res.Rows = append(res.Rows, []string{
			s.Name, fmt.Sprintf("%d", s.CPUs), fmt.Sprintf("%d", s.MemoryGB()),
			fmt.Sprintf("%.0f", s.Price()), f2(s.GbpsTotal()), f2(s.GbpsRequired),
		})
	}
	res.Notes = append(res.Notes,
		"paper totals: elvis $44.5K, vmhost $47.0K, light IOhost $26.0K, heavy IOhost $44.2K")
	return res
}

// table2 reproduces the rack-level price comparison.
func table2(bool) Result {
	res := Result{
		ID:     "table2",
		Title:  "Overall price of the Elvis and vRIO setups (Table 2)",
		Header: []string{"setup", "elvis servers", "vrio servers", "elvis price [$]", "vrio price [$]", "diff"},
	}
	for _, r := range []cost.RackSetup{cost.Rack3(), cost.Rack6()} {
		res.Rows = append(res.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.ElvisServers),
			fmt.Sprintf("%d+%d", r.VMHosts, r.IOHosts),
			fmt.Sprintf("%.0f", r.ElvisPrice),
			fmt.Sprintf("%.0f", r.VRIOPrice),
			pct(r.Diff()),
		})
	}
	res.Notes = append(res.Notes, "paper: -10% and -13%")
	return res
}

// fig3 reproduces the SSD consolidation sweep.
func fig3(bool) Result {
	res := Result{
		ID:     "fig3",
		Title:  "vRIO price relative to Elvis per SSD consolidation ratio (Figure 3)",
		Header: []string{"rack", "drive", "ratio", "vrio/elvis", "vrio total [$]"},
	}
	for _, r := range cost.Figure3() {
		res.Rows = append(res.Rows, []string{
			r.Rack, r.Drive, r.Ratio,
			fmt.Sprintf("%.1f%%", r.PriceRel*100),
			fmt.Sprintf("%.0f", r.VRIOTotal),
		})
	}
	res.Notes = append(res.Notes, "paper: cost reduction between 8% and 38%")
	return res
}

// tablerack extends Table 2 across rack sizes: the IOhost price amortizes
// over more VMhosts, and the §4.6 spare's fault-tolerance premium shrinks.
func tablerack(bool) Result {
	res := Result{
		ID:     "tablerack",
		Title:  "Rack-scale amortization: Table 2 generalized over NumIOhosts",
		Header: []string{"VMhosts", "IOhosts", "vrio vs elvis", "with spare IOhost", "vrio $/VMhost"},
	}
	for _, r := range cost.RackScaleSweep(16) {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", r.VMHosts), fmt.Sprintf("%d", r.IOHosts),
			pct(r.Diff), pct(r.SpareDiff),
			fmt.Sprintf("%.0f", r.PerVMhostUSD),
		})
	}
	res.Notes = append(res.Notes,
		"VMhosts=2 and 4 reproduce Table 2's -10% and -13% rows; the Elvis side is ceil(1.5x) servers of equal guest capacity.",
		"A heavy IOhost serves 4 VMhosts, a light one 2 (Table 1 installed-vs-required bandwidth); the mix is the cheapest that carries the load.",
		"The spare column adds one standby IOhost of the largest deployed kind — the internal/rack failure detector makes it (or any survivor) take over automatically.",
	)
	return res
}
