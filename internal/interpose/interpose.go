// Package interpose implements the programmable I/O interposition layer —
// the raison d'être of interposable virtual I/O (§1 lists the services; §5
// "Load Imbalance" uses AES-256 encryption). Services transform payloads
// for real (the AES service genuinely encrypts) and report the CPU cost the
// sidecore/worker must be charged.
package interpose

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"

	"vrio/internal/sim"
)

// Direction distinguishes guest-bound from device-bound traffic.
type Direction int

// Directions.
const (
	// ToDevice is traffic leaving the guest (transmit / write).
	ToDevice Direction = iota
	// ToGuest is traffic entering the guest (receive / read).
	ToGuest
)

// Service is one interposition stage.
type Service interface {
	// Name identifies the service.
	Name() string
	// Process transforms payload, returning the (possibly new) payload,
	// the CPU cost to charge the processing core, and an error. A nil
	// payload result with nil error drops the I/O (firewalls do this).
	Process(dir Direction, deviceID uint16, payload []byte) ([]byte, sim.Time, error)
}

// Chain applies services in order for ToDevice traffic and in reverse order
// for ToGuest traffic (so encrypt-then-filter decrypts after filtering on
// the way back).
type Chain struct {
	services []Service
}

// NewChain builds a chain.
func NewChain(services ...Service) *Chain {
	return &Chain{services: services}
}

// Len reports the number of services.
func (c *Chain) Len() int { return len(c.services) }

// ErrDropped is returned when a service intentionally drops the I/O.
var ErrDropped = errors.New("interpose: dropped by policy")

// Process runs the chain. It returns the transformed payload and the total
// CPU cost. Dropped traffic returns ErrDropped.
func (c *Chain) Process(dir Direction, deviceID uint16, payload []byte) ([]byte, sim.Time, error) {
	var total sim.Time
	order := c.services
	if dir == ToGuest {
		order = make([]Service, len(c.services))
		for i, s := range c.services {
			order[len(c.services)-1-i] = s
		}
	}
	for _, s := range order {
		out, cost, err := s.Process(dir, deviceID, payload)
		total += cost
		if err != nil {
			return nil, total, fmt.Errorf("interpose: %s: %w", s.Name(), err)
		}
		if out == nil {
			return nil, total, fmt.Errorf("interpose: %s: %w", s.Name(), ErrDropped)
		}
		payload = out
	}
	return payload, total, nil
}

// Null is a no-op service with zero cost (the no-interposition baseline).
type Null struct{}

// Name implements Service.
func (Null) Name() string { return "null" }

// Process implements Service.
func (Null) Process(_ Direction, _ uint16, payload []byte) ([]byte, sim.Time, error) {
	return payload, 0, nil
}

// AES encrypts device-bound traffic and decrypts guest-bound traffic with
// AES-256-CTR (a real cipher, not a stand-in), charging PerByteCost per
// payload byte — the seamless encryption of §5's imbalance experiment.
type AES struct {
	block       cipher.Block
	iv          [aes.BlockSize]byte
	PerByteCost sim.Time
}

// NewAES builds the service from a 32-byte key.
func NewAES(key []byte, perByteCost sim.Time) (*AES, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("interpose: AES-256 needs a 32-byte key, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	a := &AES{block: block, PerByteCost: perByteCost}
	sum := sha256.Sum256(key)
	copy(a.iv[:], sum[:aes.BlockSize])
	return a, nil
}

// Name implements Service.
func (a *AES) Name() string { return "aes-256-ctr" }

// Process implements Service. CTR mode is symmetric, so both directions
// apply the same keystream; each payload is treated as an independent
// message (the per-device counter is derived from the IV).
func (a *AES) Process(_ Direction, _ uint16, payload []byte) ([]byte, sim.Time, error) {
	out := make([]byte, len(payload))
	cipher.NewCTR(a.block, a.iv[:]).XORKeyStream(out, payload)
	return out, sim.Time(len(payload)) * a.PerByteCost, nil
}

// Firewall drops device-bound payloads whose first bytes match any deny
// prefix — standing in for L2 packet filtering at the I/O hypervisor.
type Firewall struct {
	deny         [][]byte
	PerCheckCost sim.Time

	// Dropped counts payloads rejected.
	Dropped uint64
}

// NewFirewall builds a firewall with deny-prefix rules.
func NewFirewall(perCheckCost sim.Time, denyPrefixes ...[]byte) *Firewall {
	return &Firewall{deny: denyPrefixes, PerCheckCost: perCheckCost}
}

// Name implements Service.
func (f *Firewall) Name() string { return "firewall" }

// Process implements Service.
func (f *Firewall) Process(dir Direction, _ uint16, payload []byte) ([]byte, sim.Time, error) {
	for _, p := range f.deny {
		if len(payload) >= len(p) && string(payload[:len(p)]) == string(p) {
			f.Dropped++
			return nil, f.PerCheckCost, nil
		}
	}
	return payload, f.PerCheckCost, nil
}

// Meter accounts traffic per device — the metering/accounting feature SRIOV
// forfeits (§2).
type Meter struct {
	bytes   map[uint16]uint64
	packets map[uint16]uint64
}

// NewMeter builds an empty meter.
func NewMeter() *Meter {
	return &Meter{bytes: make(map[uint16]uint64), packets: make(map[uint16]uint64)}
}

// Name implements Service.
func (m *Meter) Name() string { return "meter" }

// Process implements Service.
func (m *Meter) Process(_ Direction, deviceID uint16, payload []byte) ([]byte, sim.Time, error) {
	m.bytes[deviceID] += uint64(len(payload))
	m.packets[deviceID]++
	return payload, 0, nil
}

// Bytes reports metered bytes for a device.
func (m *Meter) Bytes(deviceID uint16) uint64 { return m.bytes[deviceID] }

// Packets reports metered packets for a device.
func (m *Meter) Packets(deviceID uint16) uint64 { return m.packets[deviceID] }

// Dedup detects duplicate payloads by SHA-256 — block-level deduplication
// (§1). It never transforms data; it reports savings.
type Dedup struct {
	seen        map[[sha256.Size]byte]struct{}
	PerByteCost sim.Time

	// DupBytes counts bytes that were already stored.
	DupBytes uint64
}

// NewDedup builds an empty dedup index.
func NewDedup(perByteCost sim.Time) *Dedup {
	return &Dedup{seen: make(map[[sha256.Size]byte]struct{}), PerByteCost: perByteCost}
}

// Name implements Service.
func (d *Dedup) Name() string { return "dedup" }

// Process implements Service.
func (d *Dedup) Process(dir Direction, _ uint16, payload []byte) ([]byte, sim.Time, error) {
	cost := sim.Time(len(payload)) * d.PerByteCost
	if dir == ToDevice {
		h := sha256.Sum256(payload)
		if _, dup := d.seen[h]; dup {
			d.DupBytes += uint64(len(payload))
		} else {
			d.seen[h] = struct{}{}
		}
	}
	return payload, cost, nil
}
