package interpose

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"vrio/internal/sim"
)

func key32() []byte { return bytes.Repeat([]byte{0x42}, 32) }

func TestAESRoundTrip(t *testing.T) {
	enc, err := NewAES(key32(), 1)
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("the quick brown fox")
	ct, cost, err := enc.Process(ToDevice, 1, plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, plain) {
		t.Error("ciphertext equals plaintext")
	}
	if cost != sim.Time(len(plain)) {
		t.Errorf("cost = %v, want %d", cost, len(plain))
	}
	// CTR is symmetric: processing again decrypts.
	pt, _, err := enc.Process(ToGuest, 1, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, plain) {
		t.Errorf("decrypt mismatch: %q", pt)
	}
}

func TestAESKeyValidation(t *testing.T) {
	if _, err := NewAES(make([]byte, 16), 0); err == nil {
		t.Error("16-byte key accepted for AES-256")
	}
}

func TestAESDifferentKeysDiffer(t *testing.T) {
	a, _ := NewAES(bytes.Repeat([]byte{1}, 32), 0)
	b, _ := NewAES(bytes.Repeat([]byte{2}, 32), 0)
	msg := []byte("same message")
	ca, _, _ := a.Process(ToDevice, 0, msg)
	cb, _, _ := b.Process(ToDevice, 0, msg)
	if bytes.Equal(ca, cb) {
		t.Error("two keys produced identical ciphertext")
	}
}

// Property: encrypt-then-decrypt is the identity for arbitrary payloads.
func TestAESRoundTripProperty(t *testing.T) {
	enc, _ := NewAES(key32(), 0)
	f := func(payload []byte) bool {
		ct, _, err := enc.Process(ToDevice, 0, payload)
		if err != nil {
			return false
		}
		pt, _, err := enc.Process(ToGuest, 0, ct)
		return err == nil && bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFirewallDropsDenied(t *testing.T) {
	fw := NewFirewall(10, []byte("EVIL"))
	out, cost, err := fw.Process(ToDevice, 0, []byte("EVIL payload"))
	if out != nil || err != nil {
		t.Errorf("denied payload passed: out=%v err=%v", out, err)
	}
	if cost != 10 {
		t.Errorf("cost = %v", cost)
	}
	if fw.Dropped != 1 {
		t.Errorf("Dropped = %d", fw.Dropped)
	}
	ok, _, err := fw.Process(ToDevice, 0, []byte("GOOD payload"))
	if err != nil || string(ok) != "GOOD payload" {
		t.Error("allowed payload mangled")
	}
}

func TestMeterCounts(t *testing.T) {
	m := NewMeter()
	m.Process(ToDevice, 3, make([]byte, 100))
	m.Process(ToGuest, 3, make([]byte, 50))
	m.Process(ToDevice, 4, make([]byte, 10))
	if m.Bytes(3) != 150 || m.Packets(3) != 2 {
		t.Errorf("dev 3: bytes=%d packets=%d", m.Bytes(3), m.Packets(3))
	}
	if m.Bytes(4) != 10 || m.Packets(4) != 1 {
		t.Errorf("dev 4: bytes=%d packets=%d", m.Bytes(4), m.Packets(4))
	}
	if m.Bytes(9) != 0 {
		t.Error("unmetered device nonzero")
	}
}

func TestDedupDetectsDuplicates(t *testing.T) {
	d := NewDedup(1)
	block := bytes.Repeat([]byte{7}, 4096)
	d.Process(ToDevice, 0, block)
	if d.DupBytes != 0 {
		t.Error("first write counted as dup")
	}
	d.Process(ToDevice, 0, block)
	if d.DupBytes != 4096 {
		t.Errorf("DupBytes = %d, want 4096", d.DupBytes)
	}
	// Reads never affect the index.
	d.Process(ToGuest, 0, block)
	if d.DupBytes != 4096 {
		t.Error("read counted as dup")
	}
}

func TestChainOrderAndCost(t *testing.T) {
	enc, _ := NewAES(key32(), 2)
	m := NewMeter()
	c := NewChain(m, enc) // meter sees plaintext on the way out
	plain := []byte("hello")

	ct, cost, err := c.Process(ToDevice, 1, plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, plain) {
		t.Error("chain did not encrypt")
	}
	if cost != sim.Time(len(plain))*2 {
		t.Errorf("cost = %v", cost)
	}
	if m.Bytes(1) != uint64(len(plain)) {
		t.Error("meter did not see plaintext size")
	}

	// Reverse direction: decrypt first, then meter.
	pt, _, err := c.Process(ToGuest, 1, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, plain) {
		t.Error("chain reverse did not decrypt")
	}
	if m.Bytes(1) != 2*uint64(len(plain)) {
		t.Error("meter missed return traffic")
	}
}

func TestChainDropsPropagate(t *testing.T) {
	fw := NewFirewall(0, []byte{0xBA, 0xD0})
	c := NewChain(fw, Null{})
	_, _, err := c.Process(ToDevice, 0, []byte{0xBA, 0xD0, 1, 2})
	if !errors.Is(err, ErrDropped) {
		t.Errorf("err = %v, want ErrDropped", err)
	}
}

func TestEmptyChainIsIdentity(t *testing.T) {
	c := NewChain()
	out, cost, err := c.Process(ToDevice, 0, []byte("x"))
	if err != nil || cost != 0 || string(out) != "x" {
		t.Error("empty chain not identity")
	}
	if c.Len() != 0 {
		t.Error("Len != 0")
	}
}

func TestNullService(t *testing.T) {
	var n Null
	out, cost, err := n.Process(ToGuest, 0, []byte("y"))
	if err != nil || cost != 0 || string(out) != "y" {
		t.Error("null not identity")
	}
	if n.Name() != "null" {
		t.Error("bad name")
	}
}

// Property: a chain of [meter, aes] then its reverse restores any payload.
func TestChainInverseProperty(t *testing.T) {
	enc, _ := NewAES(key32(), 0)
	c := NewChain(NewMeter(), enc)
	f := func(payload []byte) bool {
		ct, _, err := c.Process(ToDevice, 9, payload)
		if err != nil {
			return false
		}
		pt, _, err := c.Process(ToGuest, 9, ct)
		return err == nil && bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
