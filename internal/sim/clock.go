package sim

// Clock is the timer service the transport layer (and anything else with
// timeout logic) schedules against. It exists so the same retransmission
// and control-retry state machines run on two carriers:
//
//   - *Engine implements Clock directly: AfterFunc is Engine.After and Now
//     is the discrete-event clock. Simulated runs are untouched — the
//     interface dispatches to exactly the calls the transport made before
//     the abstraction existed, so per-seed output stays byte-identical.
//   - netwire.Loop implements Clock over the OS wall clock for real-wire
//     mode: AfterFunc arms a wall timer whose callback is posted back onto
//     the loop goroutine, preserving the transport's single-threaded
//     execution model over real sockets.
//
// A Clock hands out TimerIDs, not EventIDs, so one pending-request struct
// can hold a timer from either implementation.
type Clock interface {
	// Now reports the current time: simulated nanoseconds on an engine,
	// nanoseconds since the loop epoch on a wall clock.
	Now() Time
	// AfterFunc schedules fn to run d nanoseconds from now, on the clock's
	// single execution context (the engine's event loop, or the wall
	// clock's run loop — never a bare goroutine).
	AfterFunc(d Time, fn func()) TimerID
	// CancelTimer stops a pending timer. Cancelling an already-fired or
	// already-cancelled timer is a harmless no-op, exactly like
	// Engine.Cancel. A wall clock cannot guarantee the callback isn't
	// already in flight; implementations must make a late fire a no-op.
	CancelTimer(id TimerID)
}

// ExternalTimer is the cancel handle of a non-engine timer. *time.Timer
// satisfies it directly.
type ExternalTimer interface {
	Stop() bool
}

// TimerID identifies a timer armed through a Clock. It is a small value (no
// allocation to create or store): engine timers carry their EventID, wall
// timers carry the implementation's cancel handle.
type TimerID struct {
	ev  EventID
	ext ExternalTimer
}

// ExternalTimerID wraps a non-engine timer handle as a TimerID. Used by
// wall-clock Clock implementations.
func ExternalTimerID(t ExternalTimer) TimerID { return TimerID{ext: t} }

// External returns the wrapped external handle (nil for engine timers).
func (id TimerID) External() ExternalTimer { return id.ext }

// AfterFunc implements Clock on the engine: identical to After, wrapped in
// a TimerID.
func (e *Engine) AfterFunc(d Time, fn func()) TimerID {
	return TimerID{ev: e.After(d, fn)}
}

// CancelTimer implements Clock on the engine. A TimerID that carries an
// external handle (a wall timer that migrated here by mistake) is still
// stopped rather than leaked.
func (e *Engine) CancelTimer(id TimerID) {
	if id.ext != nil {
		id.ext.Stop()
		return
	}
	e.Cancel(id.ev)
}

// The engine is the canonical Clock.
var _ Clock = (*Engine)(nil)
