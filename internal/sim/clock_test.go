package sim

import "testing"

// TestEngineClockMatchesAfter pins the byte-identical contract of the Clock
// abstraction: driving an engine through the Clock interface produces
// exactly the schedule that direct After/Cancel calls produce.
func TestEngineClockMatchesAfter(t *testing.T) {
	run := func(use func(e *Engine, d Time, fn func()) func()) []Time {
		e := NewEngine()
		var fired []Time
		var rec func(depth int) func()
		rec = func(depth int) func() {
			return func() {
				fired = append(fired, e.Now())
				if depth > 0 {
					cancelA := use(e, 5, rec(depth-1))
					use(e, 3, rec(depth-1))
					cancelA()
				}
			}
		}
		use(e, 10, rec(3))
		e.Run()
		return fired
	}

	direct := run(func(e *Engine, d Time, fn func()) func() {
		id := e.After(d, fn)
		return func() { e.Cancel(id) }
	})
	var clk Clock
	viaClock := run(func(e *Engine, d Time, fn func()) func() {
		clk = e
		id := clk.AfterFunc(d, fn)
		return func() { clk.CancelTimer(id) }
	})

	if len(direct) == 0 || len(direct) != len(viaClock) {
		t.Fatalf("fired %d direct vs %d via clock", len(direct), len(viaClock))
	}
	for i := range direct {
		if direct[i] != viaClock[i] {
			t.Fatalf("event %d fired at %v direct, %v via clock", i, direct[i], viaClock[i])
		}
	}
}

// TestEngineCancelTimerStopsExternal checks that an external handle routed
// to an engine by mistake is stopped, not leaked.
func TestEngineCancelTimerStopsExternal(t *testing.T) {
	e := NewEngine()
	ft := &fakeTimer{}
	e.CancelTimer(ExternalTimerID(ft))
	if !ft.stopped {
		t.Fatal("external timer was not stopped")
	}
}

type fakeTimer struct{ stopped bool }

func (f *fakeTimer) Stop() bool { f.stopped = true; return true }

// TestEngineInterrupt checks that Interrupt stops a run at an event
// boundary, leaves the queue intact, and stays sticky until cleared.
func TestEngineInterrupt(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 0; i < 1000; i++ {
		e.After(Time(i+1), func() {
			ran++
			if ran == 300 {
				e.Interrupt()
			}
		})
	}
	e.Run()
	if ran >= 1000 {
		t.Fatal("interrupt did not stop the run")
	}
	if !e.Interrupted() {
		t.Fatal("Interrupted() false after Interrupt")
	}
	before := ran
	e.Run() // sticky: returns immediately
	if ran != before {
		t.Fatalf("sticky interrupt still ran %d events", ran-before)
	}
	e.ClearInterrupt()
	e.Run()
	if ran != 1000 || e.Pending() != 0 {
		t.Fatalf("after clear: ran %d, pending %d", ran, e.Pending())
	}
}

// TestShardGroupInterrupt checks the group stops at a window barrier.
func TestShardGroupInterrupt(t *testing.T) {
	g := NewShardGroup(100, 0)
	a := g.AddShard()
	g.AddShard()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		a.Eng.After(100, tick)
	}
	a.Eng.After(100, tick)
	g.RunUntil(10_000, 1)
	if ticks == 0 {
		t.Fatal("no ticks")
	}
	g.Interrupt()
	before := ticks
	g.RunUntil(1_000_000, 1)
	if ticks != before {
		t.Fatalf("interrupted group still ran %d windows", ticks-before)
	}
	g.ClearInterrupt()
	g.RunUntil(20_000, 1)
	if ticks == before {
		t.Fatal("group did not resume after ClearInterrupt")
	}
}
