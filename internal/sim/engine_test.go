package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.At(at, func() { order = append(order, at) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %v, want %v", i, order[i], want[i])
		}
	}
}

func TestEngineFIFOTieBreakAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of FIFO order: %v", order)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		if e.Now() != 10 {
			t.Errorf("Now() = %v inside event at 10", e.Now())
		}
		e.After(5, func() {
			if e.Now() != 15 {
				t.Errorf("Now() = %v, want 15", e.Now())
			}
		})
	})
	e.Run()
	if e.Now() != 15 {
		t.Errorf("final Now() = %v, want 15", e.Now())
	}
	if e.Executed() != 2 {
		t.Errorf("Executed() = %d, want 2", e.Executed())
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	e.At(0, nil)
}

func TestEngineRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran %d events by deadline 20, want 2", ran)
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %v after RunUntil(20), want 20", e.Now())
	}
	e.RunUntil(100)
	if ran != 3 {
		t.Errorf("ran %d events total, want 3", ran)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++; e.Stop() })
	e.At(20, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Errorf("ran %d events, want 1 (Stop should halt)", ran)
	}
	// Run can resume afterwards.
	e.Run()
	if ran != 2 {
		t.Errorf("ran %d events after resume, want 2", ran)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.At(10, func() { ran = true })
	e.Cancel(id)
	e.Run()
	if ran {
		t.Error("cancelled event still ran")
	}
	// Double cancel is a no-op.
	e.Cancel(id)
}

func TestEngineCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.At(20, func() { ran = true })
	e.At(10, func() { e.Cancel(id) })
	e.Run()
	if ran {
		t.Error("event cancelled at t=10 still ran at t=20")
	}
}

func TestEngineTicker(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var stop func()
	stop = e.Ticker(10, func() {
		ticks++
		if ticks == 5 {
			stop()
		}
	})
	e.RunUntil(1000)
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if e.Pending() != 0 {
		// One dead event may remain scheduled but must not tick.
		e.Run()
		if ticks != 5 {
			t.Errorf("ticker ticked after stop: %d", ticks)
		}
	}
}

func TestEngineTickerPeriodValidation(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("non-positive ticker period did not panic")
		}
	}()
	e.Ticker(0, func() {})
}

func TestEnginePendingCount(t *testing.T) {
	e := NewEngine()
	a := e.At(10, func() {})
	e.At(20, func() {})
	if got := e.Pending(); got != 2 {
		t.Errorf("Pending() = %d, want 2", got)
	}
	e.Cancel(a)
	if got := e.Pending(); got != 1 {
		t.Errorf("Pending() after cancel = %d, want 1", got)
	}
}

// A stale EventID — one whose event already ran and whose struct has been
// recycled for a new event — must not cancel the new incarnation.
func TestEngineStaleCancelDoesNotHitRecycledEvent(t *testing.T) {
	e := NewEngine()
	var stale EventID
	stale = e.At(10, func() {})
	e.Run() // runs and recycles the event struct
	ran := false
	fresh := e.At(20, func() { ran = true }) // reuses the pooled struct
	if fresh.ev != stale.ev {
		t.Skip("free list did not reuse the struct; nothing to test")
	}
	e.Cancel(stale) // must be a no-op: generation differs
	e.Run()
	if !ran {
		t.Error("stale Cancel killed a recycled event")
	}
}

// Cancelling most of a large queue triggers compaction; the survivors must
// still run, in order, exactly once.
func TestEngineCancelHeavyCompaction(t *testing.T) {
	e := NewEngine()
	const n = 1000
	var ids []EventID
	var got []Time
	for i := 0; i < n; i++ {
		at := Time(10 + i)
		ids = append(ids, e.At(at, func() { got = append(got, at) }))
	}
	// Cancel all but every 10th event.
	for i, id := range ids {
		if i%10 != 0 {
			e.Cancel(id)
		}
	}
	if want := n / 10; e.Pending() != want {
		t.Fatalf("Pending() = %d after cancels, want %d", e.Pending(), want)
	}
	e.Run()
	if len(got) != n/10 {
		t.Fatalf("ran %d events, want %d", len(got), n/10)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order after compaction: %v then %v", got[i-1], got[i])
		}
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after drain, want 0", e.Pending())
	}
}

// Pending must track schedule, cancel, and execution, including cancels of
// already-cancelled and already-run events (no double decrement).
func TestEnginePendingLiveCounter(t *testing.T) {
	e := NewEngine()
	a := e.At(10, func() {})
	b := e.At(20, func() {})
	_ = b
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Cancel(a)
	e.Cancel(a) // double cancel: no second decrement
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after double cancel, want 1", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after run, want 0", e.Pending())
	}
	e.Cancel(b) // cancel after execution: no underflow
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after post-run cancel, want 0", e.Pending())
	}
}

// The process-wide executed counter must accumulate across engines.
func TestTotalExecutedAccumulates(t *testing.T) {
	before := TotalExecuted()
	e1, e2 := NewEngine(), NewEngine()
	for i := 0; i < 5; i++ {
		e1.At(Time(i), func() {})
		e2.At(Time(i), func() {})
	}
	e1.Run()
	e2.Run()
	if got := TotalExecuted() - before; got < 10 {
		t.Errorf("TotalExecuted advanced by %d, want >= 10", got)
	}
}

// Property: however events are scheduled, they execute in nondecreasing time
// order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var got []Time
		for _, ti := range times {
			at := Time(ti)
			e.At(at, func() { got = append(got, at) })
		}
		e.Run()
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{12500, "12.50µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.0000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Microsecond).Seconds(); got != 0.0015 {
		t.Errorf("Seconds() = %v, want 0.0015", got)
	}
	if got := (3 * Microsecond).Micros(); got != 3 {
		t.Errorf("Micros() = %v, want 3", got)
	}
}
